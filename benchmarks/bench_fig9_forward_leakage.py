"""Figure 9: predicting labels from forward activations.

Per-epoch attack quality when Party A predicts the test labels from the
values it can compute alone, across the paper's five curves:

* split learning (``X_A W_A``) — leaks (paper: ~0.9 AUC on w8a);
* ModelSS without GradSS at ``||V_A|| in {1x, 5x, 10x}`` — still leaks
  (the V_A offset is constant, so X_A U_A is a biased predictor);
* BlindFL (``X_A U_A``) — a coin flip (paper: ~0.5 AUC);
* NonFed-collocated — the reference model quality.

Left panel: w8a-like LR (AUC).  Right panel: news20-like MLR (accuracy),
scaled down (5 of 20 classes, 600 of 62k dims) to keep the crypto cheap.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.activation_attack import activation_attack_score
from repro.baselines.nonfed import PlainLR, PlainMLR, collocated_view, evaluate_plain, train_plain
from repro.baselines.split_learning import SplitLinear, train_split_linear
from repro.comm.party import VFLConfig, VFLContext
from repro.core.models import FederatedLR, FederatedMLR
from repro.core.optimizer import FederatedSGD
from repro.core.trainer import TrainConfig
from repro.data.loader import BatchLoader
from repro.data.partition import split_vertical
from repro.data.synthetic import make_sparse_classification
from repro.tensor.losses import bce_with_logits, softmax_cross_entropy
from repro.utils.tabulate import format_table

EPOCHS = 3
KEY_BITS = 128


def _federated_attack_curve(model_cls, vd_train, vd_test, n_classes, out_dim, cfg):
    """Train BlindFL, recording A's attack score (X_A U_A) per epoch."""
    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS, share_refresh="delta"), seed=9)
    in_a = vd_train.party("A").dense_dim
    in_b = vd_train.party("B").dense_dim
    if n_classes == 2:
        model = model_cls(ctx, in_a, in_b)
        criterion = bce_with_logits
    else:
        model = model_cls(ctx, in_a, in_b, n_classes)
        criterion = softmax_cross_entropy
    opt = FederatedSGD(model, lr=cfg.lr, momentum=cfg.momentum)
    rng = np.random.default_rng(cfg.seed)
    x_a_test = vd_test.party("A").numeric_block()
    scores = []
    for _ in range(cfg.epochs):
        for batch in BatchLoader(vd_train, cfg.batch_size, rng=rng):
            out = model.forward(batch, train=True)
            opt.zero_grad()
            loss = criterion(out, batch.y)
            loss.backward()
            model.backward_sources()
            opt.step()
        za = x_a_test.matmul_dense(model.source._a.u)
        scores.append(activation_attack_score(za, vd_test.y, n_classes))
    return scores


def _run_panel(n_classes, dim, nnz, n_train, n_test, out_dim, cfg, seed):
    full = make_sparse_classification(
        n_train + n_test, dim, nnz, n_classes=n_classes, seed=seed, flip=0.03
    )
    train = full.subset(np.arange(n_train))
    test = full.subset(np.arange(n_train, n_train + n_test))
    vd_train, vd_test = split_vertical(train), split_vertical(test)
    half = dim // 2

    curves = {}
    # Split learning and the ModelSS ablations.
    variants = [("split (W_A at A)", False, 1.0)] + [
        (f"ModelSS, ||V||={s:g}x", True, s) for s in (1.0, 5.0, 10.0)
    ]
    for label, model_ss, v_scale in variants:
        sl = SplitLinear(
            half, dim - half, out_dim, model_ss=model_ss, v_scale=v_scale, seed=0
        )
        record = train_split_linear(sl, vd_train, vd_test, cfg)
        curves[label] = [
            activation_attack_score(za, vd_test.y, n_classes)
            for za in record.za_per_epoch
        ]
    # BlindFL.
    cls = FederatedLR if n_classes == 2 else FederatedMLR
    curves["BlindFL (X_A U_A)"] = _federated_attack_curve(
        cls, vd_train, vd_test, n_classes, out_dim, cfg
    )
    # Non-federated reference (model quality, not an attack).
    plain = PlainLR(dim) if n_classes == 2 else PlainMLR(dim, n_classes)
    ref = train_plain(plain, collocated_view(train), cfg, collocated_view(test))
    curves["NonFed-collocated"] = list(ref.epoch_metrics)
    return curves


def test_fig9_w8a_lr_panel(benchmark, report):
    cfg = TrainConfig(epochs=EPOCHS, batch_size=32, lr=0.1, momentum=0.9)
    result = {}

    def run():
        result["curves"] = _run_panel(
            n_classes=2, dim=300, nnz=12, n_train=320, n_test=160,
            out_dim=1, cfg=cfg, seed=60,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    curves = result["curves"]
    rows = [
        [label] + [round(v, 3) for v in values] for label, values in curves.items()
    ]
    report(
        "Figure 9 (left) — w8a-like LR: Party A's label-attack AUC per epoch "
        "(split/ModelSS should stay high, BlindFL ~0.5)",
        format_table(["curve"] + [f"epoch {i+1}" for i in range(EPOCHS)], rows),
    )
    assert curves["split (W_A at A)"][-1] > 0.75
    assert all(c[-1] > 0.6 for k, c in curves.items() if k.startswith("ModelSS"))
    assert abs(curves["BlindFL (X_A U_A)"][-1] - 0.5) < 0.15


def test_fig9_news20_mlr_panel(benchmark, report):
    cfg = TrainConfig(epochs=2, batch_size=32, lr=0.1, momentum=0.9)
    result = {}

    def run():
        result["curves"] = _run_panel(
            n_classes=5, dim=600, nnz=40, n_train=192, n_test=96,
            out_dim=5, cfg=cfg, seed=61,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    curves = result["curves"]
    rows = [
        [label] + [round(v, 3) for v in values] for label, values in curves.items()
    ]
    report(
        "Figure 9 (right) — news20-like MLR (scaled: 5 classes, 600 dims): "
        "Party A's label-attack accuracy per epoch (chance = 0.2)",
        format_table(["curve"] + [f"epoch {i+1}" for i in range(2)], rows),
    )
    # The attack recovers ~2x chance accuracy (0.2 chance, ~0.4 observed),
    # tracking the collocated model's own accuracy — the leak is real.
    assert curves["split (W_A at A)"][-1] > 0.33
    assert abs(curves["BlindFL (X_A U_A)"][-1] - 0.2) < 0.15  # ~chance
