"""Microbenchmark for the key-owner decrypt engine.

BlindFL's federated source layers make the key owner decrypt every
HE2SS-masked transfer each batch, so once the encrypt/matmul side is fast
(PRs 1-3) ``raw_decrypt`` and blinding-pool refills dominate the serial
cost.  This bench measures the three decrypt-side optimisations:

* **Batched CRT decryption** — ``kernels.decrypt_flat`` vs the legacy
  per-``EncryptedNumber`` object path (``sk.decrypt`` per element), plus
  the same batch sharded across the :class:`~repro.crypto.parallel.
  ParallelContext` *private* worker tier (bit-identity verified; real
  speedup needs real cores — on the 1-CPU CI box the parallel row measures
  dispatch overhead and is informational only).
* **Packed decryption** — a packed tensor costs one CRT decryption per
  ``slots`` values; the CRT-pow reduction is deterministic counting.
* **λ-exponent blinding refill** — classic mode pays a ``key_bits``-bit
  exponent per ``r^n`` blinder; the λ-shortcut pays λ bits per ``h^x``
  (plus a one-time ``key_bits``-bit pow for ``h``).  Because pow cost is
  linear in exponent bits at fixed modulus, the machine-independent gate
  is **exponent bit-work**, not wall clock.

The bench key is 256-bit (pure-Python arithmetic stays fast); λ is scaled
to the toy key the same way the production deployment scales it — 2048-bit
keys use λ=128 (a 16x exponent reduction), so the 256-bit bench uses λ=32
(8x) rather than pretending the production λ is meaningful against a toy
modulus half its size.  A counting-only production row records the real
2048/λ=128 ratio without timing big-key pows.

Emits ``BENCH_decrypt.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_decrypt.py            # full grid
    PYTHONPATH=src python benchmarks/bench_decrypt.py --quick    # CI sizes
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import time
from pathlib import Path

import numpy as np

from repro.crypto import kernels
from repro.crypto.crypto_tensor import CryptoTensor, TENSOR_EXPONENT
from repro.crypto.packing import PackedCryptoTensor, protocol_layout
from repro.crypto.paillier import (
    DEFAULT_BLINDING_LAMBDA,
    PaillierPublicKey,
    generate_paillier_keypair,
)
from repro.crypto.parallel import ParallelContext

REPO_ROOT = Path(__file__).resolve().parent.parent

# Production accounting constants (counting-only row; no big-key pows).
PRODUCTION_KEY_BITS = 2048
BENCH_BLINDING_LAMBDA = 32  # key_bits/λ = 8, mirroring 2048/128 = 16 at toy scale


def _timeit(fn, repeat: int = 1) -> tuple[float, object]:
    """Best-of-``repeat`` wall time and the last result (for verification)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_decrypt_flat(pk, sk, size: int, repeat: int, workers: int) -> dict:
    """Batched CRT decrypt: legacy objects vs flat kernel vs private pool."""
    rng = np.random.default_rng(0)
    values = rng.normal(size=size)
    tensor = CryptoTensor.encrypt(pk, values, obfuscate=True)
    cts = [enc.ciphertext for enc in tensor.data.ravel()]

    t_legacy, out_legacy = _timeit(
        lambda: np.array([sk.decrypt(enc) for enc in tensor.data.ravel()]), repeat
    )
    t_kernel, out_kernel = _timeit(
        lambda: kernels.decrypt_flat(sk, cts, TENSOR_EXPONENT), repeat
    )
    if not np.array_equal(out_legacy, out_kernel):  # pragma: no cover - tripwire
        raise AssertionError("kernel and legacy decrypt disagree")
    entry = {
        "size": size,
        "crt_pows": 2 * size,  # two half-size pows per ciphertext, all paths
        "legacy_s": t_legacy,
        "kernel_s": t_kernel,
        "legacy_decrypts_per_s": size / t_legacy,
        "kernel_decrypts_per_s": size / t_kernel,
        "speedup_kernel": t_legacy / t_kernel,
        "legacy_matches_kernel": True,
    }
    if workers >= 2:
        with ParallelContext(workers=workers, min_jobs=1) as ctx:
            t_par, out_par = _timeit(
                lambda: kernels.decrypt_flat(sk, cts, TENSOR_EXPONENT, ctx), repeat
            )
        if not np.array_equal(out_kernel, out_par):  # pragma: no cover - tripwire
            raise AssertionError("parallel decrypt diverged from serial")
        entry["kernel_parallel_s"] = t_par
        entry["speedup_parallel_vs_kernel"] = t_kernel / t_par
        entry["parallel_workers"] = workers
        entry["parallel_matches_serial"] = True
    return entry


def bench_packed_decrypt(pk, sk, rows: int, cols: int, repeat: int) -> dict:
    """Packed decrypt: one CRT decryption per ``slots`` values (counting)."""
    layout = protocol_layout(pk, mask_scale=2.0**16, acc_depth=64)
    if layout is None:  # pragma: no cover - bench keys always fit two slots
        raise AssertionError("bench key too small for packing")
    rng = np.random.default_rng(1)
    values = rng.normal(size=(rows, cols))
    packed = PackedCryptoTensor.encrypt(pk, values, layout, obfuscate=True)
    unpacked = CryptoTensor.encrypt(pk, values, obfuscate=True)
    u_cts = [enc.ciphertext for enc in unpacked.data.ravel()]
    t_unpacked, out_u = _timeit(
        lambda: kernels.decrypt_flat(sk, u_cts, TENSOR_EXPONENT), repeat
    )
    t_packed, out_p = _timeit(lambda: packed.decrypt(sk), repeat)
    if not np.array_equal(np.asarray(out_u).reshape(rows, cols), out_p):
        raise AssertionError("packed decrypt disagrees with per-element decrypt")
    return {
        "rows": rows,
        "cols": cols,
        "slots": layout.slots,
        "unpacked_cts": rows * cols,
        "packed_cts": len(packed.cts),
        "crt_pow_reduction": (rows * cols) / len(packed.cts),
        "unpacked_s": t_unpacked,
        "packed_s": t_packed,
        "speedup_packed": t_unpacked / t_packed,
    }


def bench_blinding(pk, sk, count: int, lam: int, repeat: int) -> dict:
    """Blinder refill: classic ``r^n`` vs λ-shortcut ``h^x`` (same modulus).

    The gate metric is exponent bit-work (machine-independent); wall times
    ride along as informational rows.  Validity of the λ blinders is
    checked by decrypting a blinded encryption of zero.
    """
    n = pk.n
    classic = PaillierPublicKey(n, rng=random.Random(99), blinding_lambda=0)
    fast = PaillierPublicKey(n, rng=random.Random(99), blinding_lambda=lam)
    # Count *before* computing anything so the λ row pays its one-time h.
    bitwork_old = classic.blinding_bitwork(count)
    bitwork_new = fast.blinding_bitwork(count)
    t_old, _ = _timeit(lambda: classic.blinding_factors(count), repeat)
    t_new, blinders = _timeit(lambda: fast.blinding_factors(count), repeat)
    # Every λ blinder must be a valid n-th power: Enc(0) * h^x decrypts to 0.
    for b in blinders[: min(8, len(blinders))]:
        if sk.raw_decrypt(b % pk.nsquare) != 0:  # pragma: no cover - tripwire
            raise AssertionError("λ blinder is not an encryption-of-zero factor")
    return {
        "key_bits": pk.key_bits,
        "count": count,
        "blinding_lambda": lam,
        "bitwork_old": bitwork_old,
        "bitwork_new": bitwork_new,
        "bitwork_reduction": bitwork_old / bitwork_new,
        "old_s": t_old,
        "new_s": t_new,
        "speedup_timed": t_old / t_new,
        "blinders_valid": True,
    }


def production_blinding_row(count: int) -> dict:
    """Counting-only λ accounting at the paper's 2048-bit production key.

    Uses the key's own ``blinding_bitwork`` accounting (pow cost is linear
    in exponent bits at fixed modulus) against a synthetic 2048-bit modulus
    — no keygen, no 2048-bit pows timed on CI, but the gated number stays
    tied to the implementation's cost model rather than a re-derived
    formula.
    """
    lam = DEFAULT_BLINDING_LAMBDA
    n = (1 << (PRODUCTION_KEY_BITS - 1)) | 1  # bit-length is all that matters
    bitwork_old = PaillierPublicKey(n, blinding_lambda=0).blinding_bitwork(count)
    bitwork_new = PaillierPublicKey(n, blinding_lambda=lam).blinding_bitwork(count)
    return {
        "key_bits": PRODUCTION_KEY_BITS,
        "count": count,
        "blinding_lambda": lam,
        "counting_only": True,
        "bitwork_old": bitwork_old,
        "bitwork_new": bitwork_new,
        "bitwork_reduction": bitwork_old / bitwork_new,
    }


def run(
    key_bits: int = 256,
    quick: bool = False,
    workers: int = 2,
    repeat: int = 1,
    blinding_lambda: int = BENCH_BLINDING_LAMBDA,
) -> dict:
    pk, sk = generate_paillier_keypair(key_bits, seed=54321)
    if quick:
        decrypt_sizes = [64]
        packed_cfg = (8, 8)
        blinder_count = 64
    else:
        decrypt_sizes = [128, 512]
        packed_cfg = (32, 16)
        blinder_count = 256
    results: dict = {
        "meta": {
            "key_bits": key_bits,
            "quick": quick,
            "parallel_workers": workers,
            "bench_blinding_lambda": blinding_lambda,
            "default_blinding_lambda": DEFAULT_BLINDING_LAMBDA,
            "python": platform.python_version(),
            "machine": platform.machine(),
            # Parallel speedup requires real cores; on a 1-CPU box the
            # parallel rows measure pure dispatch overhead (informational).
            "cpu_count": os.cpu_count(),
        },
        "decrypt_flat": [
            bench_decrypt_flat(pk, sk, size, repeat, workers)
            for size in decrypt_sizes
        ],
        "packed_decrypt": bench_packed_decrypt(pk, sk, *packed_cfg, repeat),
        "blinding": bench_blinding(pk, sk, blinder_count, blinding_lambda, repeat),
        "blinding_production": production_blinding_row(blinder_count),
    }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--key-bits", type=int, default=256)
    parser.add_argument("--quick", action="store_true", help="small CI-sized grid")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument(
        "--blinding-lambda", type=int, default=BENCH_BLINDING_LAMBDA
    )
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_decrypt.json")
    args = parser.parse_args(argv)
    results = run(
        key_bits=args.key_bits,
        quick=args.quick,
        workers=args.workers,
        repeat=args.repeat,
        blinding_lambda=args.blinding_lambda,
    )
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    for entry in results["decrypt_flat"]:
        line = (
            f"decrypt {entry['size']}: legacy {entry['legacy_s']:.3f}s  "
            f"kernel {entry['kernel_s']:.3f}s  "
            f"speedup {entry['speedup_kernel']:.2f}x"
        )
        if "kernel_parallel_s" in entry:
            line += (
                f"  parallel({entry['parallel_workers']}w) "
                f"{entry['kernel_parallel_s']:.3f}s "
                f"({entry['speedup_parallel_vs_kernel']:.2f}x over serial)"
            )
        print(line)
    pd = results["packed_decrypt"]
    print(
        f"packed decrypt {pd['rows']}x{pd['cols']} ({pd['slots']} slots): "
        f"{pd['packed_cts']} cts vs {pd['unpacked_cts']} "
        f"({pd['crt_pow_reduction']:.1f}x fewer CRT pows, "
        f"{pd['speedup_packed']:.2f}x timed)"
    )
    bl = results["blinding"]
    pr = results["blinding_production"]
    print(
        f"blinding refill @{bl['key_bits']}b λ={bl['blinding_lambda']}: "
        f"{bl['bitwork_reduction']:.1f}x less pow bit-work "
        f"({bl['speedup_timed']:.2f}x timed); production @{pr['key_bits']}b "
        f"λ={pr['blinding_lambda']}: {pr['bitwork_reduction']:.1f}x (counting)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
