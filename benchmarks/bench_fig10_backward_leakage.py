"""Figure 10: predicting labels from backward derivatives.

Split-learning WDL hands Party A the plaintext ``grad_E_A`` every
iteration; the cosine-direction attack recovers the batch labels at any
depth of hidden layers between the embedding and the loss (the paper's 2 /
3 / 4 hidden-layer curves all reach ~100% training accuracy).

Under BlindFL, Party A receives only ``[[grad_E_A]]`` encrypted under
Party B's key; we additionally run the attack on what A *does* hold — its
random HE2SS mask pieces — to show it degenerates to chance.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.derivative_attack import attack_accuracy_over_batches
from repro.baselines.split_learning import SplitWDL, train_split_wdl
from repro.comm.party import VFLConfig, VFLContext
from repro.core.embed_matmul_layer import EmbedMatMulSource
from repro.core.trainer import TrainConfig
from repro.data.partition import split_vertical
from repro.data.synthetic import make_mixed_classification
from repro.utils.tabulate import format_table

KEY_BITS = 128


def test_fig10_derivative_attack(benchmark, report):
    full = make_mixed_classification(
        256, sparse_dim=40, nnz_per_row=6, n_fields=4, vocab_size=10, seed=70
    )
    vd = split_vertical(full)
    cfg = TrainConfig(epochs=3, batch_size=32, lr=0.1, momentum=0.9)
    rows = []
    curves = {}

    def run():
        for n_hidden in (2, 3, 4):
            model = SplitWDL(
                vd.party("A").vocab_sizes,
                vd.party("B").vocab_sizes,
                emb_dim=8,
                n_hidden=n_hidden,
                hidden_dim=32,
                seed=0,
            )
            record = train_split_wdl(model, vd, cfg)
            per_epoch = []
            batches_per_epoch = len(record.grad_e_a) // cfg.epochs
            for e in range(cfg.epochs):
                sl = slice(e * batches_per_epoch, (e + 1) * batches_per_epoch)
                per_epoch.append(
                    attack_accuracy_over_batches(
                        record.grad_e_a[sl], record.grad_labels[sl]
                    )
                )
            curves[n_hidden] = per_epoch
            rows.append(
                [f"split WDL, #hidden={n_hidden}"]
                + [round(v, 3) for v in per_epoch]
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    # BlindFL control: attack what Party A actually receives (mask pieces).
    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=10)
    layer = EmbedMatMulSource(
        ctx,
        vd.party("A").vocab_sizes,
        vd.party("B").vocab_sizes,
        emb_dim=4,
        out_dim=1,
        name="f10",
    )
    rng = np.random.default_rng(0)
    grads, labels = [], []
    for start in range(0, 96, 32):
        idx = np.arange(start, start + 32)
        batch = vd.take_rows(idx)
        layer.forward(batch.party("A").x_cat, batch.party("B").x_cat)
        y = batch.y.astype(float).reshape(-1, 1)
        layer.backward((0.5 - y) * 0.01)
        # All Party A holds about grad_E_A is psi (its mask-derived share).
        grads.append(layer._a.psi.copy())
        labels.append(batch.y.copy())
        layer.apply_updates(lr=0.05, momentum=0.9)
    blind_acc = attack_accuracy_over_batches(grads, labels)
    rows.append(["BlindFL (A's share pieces)", round(blind_acc, 3), "-", "-"])

    report(
        "Figure 10 — cosine attack on backward derivatives: fraction of "
        "training labels recovered per epoch (chance ~0.5)",
        format_table(
            ["configuration", "epoch 1", "epoch 2", "epoch 3"], rows
        ),
    )
    for n_hidden, per_epoch in curves.items():
        assert per_epoch[-1] > 0.85, f"attack should succeed at depth {n_hidden}"
    assert blind_acc < 0.75  # shares carry no label direction
