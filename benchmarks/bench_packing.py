"""Microbenchmark for SIMD-slot ciphertext packing vs per-element ciphertexts.

Measures the three places packing pays:

* **encrypt** — obfuscated encryption of a tensor: the packed path spends
  one blinding exponentiation per ``slots`` values instead of one per
  value (the dominant cost of leaving a party);
* **add** — lane-wise homomorphic addition: one mulmod covers ``slots``
  lanes;
* **bandwidth** — ciphertext count and accounted wire bytes for
  HE2SS-style forward transfers across a shape grid, including the
  paper's 2048-bit production keys.  The 2048-bit rows use a synthetic
  modulus and unobfuscated encryption (pure mulmods), because the point
  there is *counting* — the layout math and ``payload_nbytes`` accounting
  are exact regardless — while pure-python 2048-bit blinding would take
  minutes.

Emits ``BENCH_packing.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_packing.py            # full grid
    PYTHONPATH=src python benchmarks/bench_packing.py --quick    # CI sizes
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.comm import codec
from repro.comm.channel import payload_nbytes
from repro.crypto.crypto_tensor import CryptoTensor
from repro.crypto.packing import PackedCryptoTensor, protocol_layout
from repro.crypto.paillier import PaillierPublicKey, generate_paillier_keypair

REPO_ROOT = Path(__file__).resolve().parent.parent

# The paper's production key size; synthetic modulus — see module docstring.
PRODUCTION_KEY_BITS = 2048


def _timeit(fn, repeat: int = 1) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _production_key() -> PaillierPublicKey:
    """A 2048-bit modulus for layout/accounting runs (no decryption here)."""
    return PaillierPublicKey((1 << (PRODUCTION_KEY_BITS - 1)) + 9)


def bench_encrypt(pk, sk, layout, size: int, repeat: int) -> dict:
    """Obfuscated encryption: per-element vs packed (pool drained first)."""
    rng = np.random.default_rng(0)
    values = rng.normal(size=(1, size))
    t_unpacked, u = _timeit(
        lambda: CryptoTensor.encrypt(pk, values, obfuscate=True), repeat
    )
    t_packed, p = _timeit(
        lambda: PackedCryptoTensor.encrypt(pk, values, layout, obfuscate=True),
        repeat,
    )
    if not np.array_equal(p.decrypt(sk), u.decrypt(sk)):  # pragma: no cover
        raise AssertionError("packed and unpacked encryption decode differently")
    return {
        "size": size,
        "slots": layout.slots,
        "unpacked_s": t_unpacked,
        "packed_s": t_packed,
        "unpacked_ops_per_s": size / t_unpacked,
        "packed_ops_per_s": size / t_packed,
        "speedup_packed": t_unpacked / t_packed,
        "unpacked_cts": u.size,
        "packed_cts": p.n_ciphertexts,
    }


def bench_add(pk, sk, layout, shape: tuple[int, int], repeat: int) -> dict:
    """Lane-wise add vs per-element add on equal logical shapes."""
    rng = np.random.default_rng(1)
    a = rng.normal(size=shape)
    b = rng.normal(size=shape)
    ua = CryptoTensor.encrypt(pk, a, obfuscate=False)
    ub = CryptoTensor.encrypt(pk, b, obfuscate=False)
    pa = PackedCryptoTensor.encrypt(pk, a, layout, obfuscate=False)
    pb = PackedCryptoTensor.encrypt(pk, b, layout, obfuscate=False)
    t_unpacked, us = _timeit(lambda: ua + ub, repeat)
    t_packed, ps = _timeit(lambda: pa + pb, repeat)
    if not np.array_equal(ps.decrypt(sk), us.decrypt(sk)):  # pragma: no cover
        raise AssertionError("packed and unpacked add decode differently")
    return {
        "shape": list(shape),
        "unpacked_s": t_unpacked,
        "packed_s": t_packed,
        "speedup_packed": t_unpacked / t_packed,
    }


def _frame_bytes(payload) -> int:
    """Measured wire size: the payload's actual encoded frame length.

    This is what :class:`repro.comm.channel.SerializingChannel` records per
    message — body bytes (the ``payload_nbytes`` estimate) plus the codec's
    framing header — so the benchmark's wire rows report reality, not just
    the estimator.
    """
    return len(codec.encode_payload(payload))


def bench_bandwidth(key_bits: int, shapes: list[tuple[int, int]]) -> list[dict]:
    """Ciphertext count + accounted wire bytes for forward-transfer shapes."""
    if key_bits == PRODUCTION_KEY_BITS:
        pk = _production_key()
    else:
        pk, _ = generate_paillier_keypair(key_bits, seed=777)
    layout = protocol_layout(pk, mask_scale=2.0**16, acc_depth=1024)
    out = []
    for rows, cols in shapes:
        values = np.zeros((rows, cols))
        unpacked = CryptoTensor.encrypt(pk, values, obfuscate=False)
        entry = {
            "key_bits": key_bits,
            "rows": rows,
            "cols": cols,
            "unpacked_cts": unpacked.size,
            "unpacked_bytes": payload_nbytes(unpacked),
            "unpacked_frame_bytes": _frame_bytes(unpacked),
        }
        if layout is None:
            entry.update(
                {"slots": 1, "packed_cts": None, "packed_bytes": None,
                 "packed_frame_bytes": None,
                 "ct_reduction": 1.0, "byte_reduction": 1.0,
                 "frame_byte_reduction": 1.0,
                 "note": "key too small for packing; per-element fallback"}
            )
        else:
            # HE2SS transfers pack contiguously (transfer-only tensors need
            # no row alignment), so the grid models exactly that.
            packed = PackedCryptoTensor.encrypt(
                pk, values, layout, obfuscate=False, contiguous=True
            )
            entry.update(
                {
                    "slots": layout.slots,
                    "slot_bits": layout.slot_bits,
                    "packed_cts": packed.n_ciphertexts,
                    "packed_bytes": payload_nbytes(packed),
                    "packed_frame_bytes": _frame_bytes(packed),
                    "ct_reduction": unpacked.size / packed.n_ciphertexts,
                    "byte_reduction": payload_nbytes(unpacked)
                    / payload_nbytes(packed),
                    "frame_byte_reduction": _frame_bytes(unpacked)
                    / _frame_bytes(packed),
                }
            )
        out.append(entry)
    return out


def bench_lkup_bw(
    key_bits: int,
    batch: int,
    fields: int,
    emb_dim: int,
    vocab_total: int,
    repeat: int,
) -> dict:
    """Embedding forward lookup + backward ``lkup_bw`` transfer costs.

    The packed path keeps the table piece ``[[T]]`` packed through
    ``take_rows -> reshape`` (pure ciphertext-slice bookkeeping, zero
    crypto) and runs the scatter-add on *packed* gradient rows, so both
    hot embedding transfers ship ``slots``-fold fewer ciphertexts.  The
    timing contrast is scatter-then-pack (the pre-segment-aware pipeline:
    per-element scatter over the whole table, then a table-sized
    homomorphic pack before the wire) vs pack-then-scatter (the new
    pipeline: pack only the ``batch * fields`` gradient rows, then
    lane-wise mulmod scatter) — the pow count drops from one per table
    entry to one per batch-gradient entry.

    At the production key size the modulus is synthetic (no decryption;
    unobfuscated counting run, like the bandwidth grid) — the ciphertext
    counts and accounted bytes are exact either way.
    """
    real = key_bits != PRODUCTION_KEY_BITS
    if real:
        pk, sk = generate_paillier_keypair(key_bits, seed=4242)
    else:
        pk, sk = _production_key(), None
    layout = protocol_layout(pk, mask_scale=2.0**16, acc_depth=1024)
    if layout is None:
        raise ValueError(f"{key_bits}-bit keys cannot fit two slots")
    rng = np.random.default_rng(5)
    flat_idx = rng.integers(0, vocab_total, size=batch * fields)
    grads = rng.normal(size=(batch * fields, emb_dim)) * 0.1 if real else np.zeros(
        (batch * fields, emb_dim)
    )
    table = np.zeros((vocab_total, emb_dim))

    # Forward lookup: packed table -> take_rows -> reshape, no repack.
    packed_table = PackedCryptoTensor.encrypt(pk, table, layout, obfuscate=False)
    unpacked_table = CryptoTensor.encrypt(pk, table, obfuscate=False)
    lk_packed = packed_table.take_rows(flat_idx).reshape(batch, fields * emb_dim)
    lk_unpacked = unpacked_table.take_rows(flat_idx).reshape(batch, -1)

    # Backward lkup_bw: the gradient rows arrive per-element (matmul
    # products); blinding for untouched rows comes from the pool in
    # production, so prefill it out of the timed region.  The synthetic
    # production-key run skips blinding entirely (counting only — pure
    # python 2048-bit pows would take minutes).
    enc = CryptoTensor.encrypt(pk, grads, obfuscate=False)

    def pack_then_scatter():
        return enc.pack(layout, value_bits=layout.acc_operand_bits).scatter_add_rows(
            flat_idx, num_rows=vocab_total, obfuscate_empty=real
        )

    if real:
        pk.prefill_blinding(2 * (repeat + 1) * vocab_total * emb_dim)
        t_old, _ = _timeit(
            lambda: enc.scatter_add_rows(
                flat_idx, num_rows=vocab_total, obfuscate_empty=real
            ).pack(layout, contiguous=True),
            repeat,
        )
        t_new, gq_new = _timeit(pack_then_scatter, repeat)
    else:
        # Synthetic-modulus rows operate on all-residue-1 ciphertexts, so
        # loop timings would measure nothing real; run the pipeline once
        # for the counting fields and report no timings (mirrors the
        # bandwidth grid's None convention).
        t_old = t_new = None
        gq_new = pack_then_scatter()
    unpacked_gq = enc.scatter_add_rows(
        flat_idx, num_rows=vocab_total, obfuscate_empty=real
    )
    if real:
        if not np.array_equal(gq_new.decrypt(sk), unpacked_gq.decrypt(sk)):
            raise AssertionError(  # pragma: no cover
                "packed and per-element lkup_bw decode differently"
            )
    return {
        "key_bits": key_bits,
        "slots": layout.slots,
        "batch": batch,
        "fields": fields,
        "emb_dim": emb_dim,
        "vocab_total": vocab_total,
        "lkup_unpacked_cts": lk_unpacked.size,
        "lkup_packed_cts": lk_packed.n_ciphertexts,
        "lkup_ct_reduction": lk_unpacked.size / lk_packed.n_ciphertexts,
        "unpacked_cts": unpacked_gq.size,
        "packed_cts": gq_new.n_ciphertexts,
        "ct_reduction": unpacked_gq.size / gq_new.n_ciphertexts,
        "unpacked_bytes": payload_nbytes(unpacked_gq),
        "packed_bytes": payload_nbytes(gq_new),
        "byte_reduction": payload_nbytes(unpacked_gq) / payload_nbytes(gq_new),
        "unpacked_frame_bytes": _frame_bytes(unpacked_gq),
        "packed_frame_bytes": _frame_bytes(gq_new),
        "frame_byte_reduction": _frame_bytes(unpacked_gq) / _frame_bytes(gq_new),
        "scatter_then_pack_s": t_old,
        "pack_then_scatter_s": t_new,
        "speedup_pack_first": None if t_old is None else t_old / t_new,
    }


def run(key_bits: int = 256, quick: bool = False, repeat: int = 1) -> dict:
    pk, sk = generate_paillier_keypair(key_bits, seed=4242)
    layout = protocol_layout(pk, mask_scale=2.0**16, acc_depth=1024)
    if layout is None:
        raise SystemExit(
            f"--key-bits {key_bits} cannot fit two slots; use >= 224 bits"
        )
    if quick:
        encrypt_size = 48
        add_shape = (8, 8)
        bw_shapes = [(32, 64)]
        lkup_cfg = {"batch": 8, "fields": 2, "emb_dim": 4, "vocab_total": 48}
    else:
        encrypt_size = 256
        add_shape = (32, 32)
        bw_shapes = [(32, 64), (128, 16), (128, 64), (1024, 32)]
        lkup_cfg = {"batch": 16, "fields": 3, "emb_dim": 8, "vocab_total": 256}
    results: dict = {
        "meta": {
            "key_bits": key_bits,
            "quick": quick,
            "slots": layout.slots,
            "slot_bits": layout.slot_bits,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "encrypt": bench_encrypt(pk, sk, layout, encrypt_size, repeat),
        "add": bench_add(pk, sk, layout, add_shape, repeat),
        # The acceptance grid: the 2048-bit rows are where Table-5-style
        # bandwidth numbers come from.
        "bandwidth": bench_bandwidth(key_bits, bw_shapes)
        + bench_bandwidth(PRODUCTION_KEY_BITS, bw_shapes),
        # Embedding-backward acceptance rows: the packed lkup_bw transfer
        # must ship at least 2x fewer ciphertexts (slots-fold in practice).
        "lkup_bw": [
            bench_lkup_bw(key_bits, repeat=repeat, **lkup_cfg),
            bench_lkup_bw(PRODUCTION_KEY_BITS, repeat=repeat, **lkup_cfg),
        ],
    }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--key-bits", type=int, default=256)
    parser.add_argument("--quick", action="store_true", help="small CI-sized grid")
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_packing.json")
    args = parser.parse_args(argv)
    results = run(key_bits=args.key_bits, quick=args.quick, repeat=args.repeat)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    enc = results["encrypt"]
    print(
        f"encrypt {enc['size']} values ({enc['slots']} slots): unpacked "
        f"{enc['unpacked_s']:.3f}s  packed {enc['packed_s']:.3f}s  "
        f"speedup {enc['speedup_packed']:.2f}x "
        f"({enc['unpacked_cts']} -> {enc['packed_cts']} cts)"
    )
    add = results["add"]
    print(
        f"add {tuple(add['shape'])}: unpacked {add['unpacked_s']:.4f}s  "
        f"packed {add['packed_s']:.4f}s  speedup {add['speedup_packed']:.2f}x"
    )
    for row in results["lkup_bw"]:
        speedup = row["speedup_pack_first"]
        timing = (
            "timing n/a (synthetic modulus)"
            if speedup is None
            else f"pack-first speedup {speedup:.2f}x"
        )
        print(
            f"lkup_bw {row['batch']}x{row['fields']}x{row['emb_dim']} -> "
            f"{row['vocab_total']} rows @ {row['key_bits']}b: "
            f"{row['unpacked_cts']} -> {row['packed_cts']} cts "
            f"({row['ct_reduction']:.1f}x), lookup "
            f"{row['lkup_unpacked_cts']} -> {row['lkup_packed_cts']} cts, "
            f"{timing}"
        )
    for row in results["bandwidth"]:
        if row["packed_cts"] is None:
            print(
                f"bandwidth {row['rows']}x{row['cols']} @ {row['key_bits']}b: "
                f"packing unavailable ({row['note']})"
            )
        else:
            print(
                f"bandwidth {row['rows']}x{row['cols']} @ {row['key_bits']}b: "
                f"{row['unpacked_cts']} -> {row['packed_cts']} cts "
                f"({row['ct_reduction']:.1f}x), "
                f"{row['unpacked_bytes']} -> {row['packed_bytes']} B "
                f"({row['byte_reduction']:.1f}x)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
