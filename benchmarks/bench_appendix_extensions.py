"""Appendix B and C benches: SS-based top models and multi-party MatMul.

* Appendix B (Figures 13/14): training LR with a federated (SS) top model
  — not even Party B sees Z or grad_Z — must converge like the
  plaintext-top variant.
* Appendix C (Algorithm 3): the M-party MatMul layer is lossless and its
  per-batch cost grows ~linearly with the number of A parties (one
  pairwise round each).
"""

from __future__ import annotations

import numpy as np

from repro.comm.message import MessageKind
from repro.comm.party import VFLConfig, VFLContext
from repro.core.federated_top import train_lr_with_ss_top
from repro.core.models import FederatedLR
from repro.core.multiparty import MultiPartyMatMulSource
from repro.core.trainer import TrainConfig, train_federated
from repro.data.partition import split_vertical
from repro.data.synthetic import make_dense_classification
from repro.utils.tabulate import format_table
from repro.utils.timer import Timer

KEY_BITS = 128


def test_appendix_b_ss_top(benchmark, report):
    full = make_dense_classification(320, 16, seed=120, flip=0.03, nonlinear=False)
    train = split_vertical(full.subset(np.arange(224)))
    test = split_vertical(full.subset(np.arange(224, 320)))
    cfg = TrainConfig(epochs=2, batch_size=32, lr=0.1, momentum=0.9)
    result = {}

    def run():
        ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=21)
        _, result["ss"] = train_lr_with_ss_top(ctx, train, cfg, test_data=test)
        result["ss_ctx"] = ctx
        ctx2 = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=21)
        model = FederatedLR(ctx2, 8, 8)
        result["plain_top"] = train_federated(model, train, cfg, test_data=test)

    benchmark.pedantic(run, rounds=1, iterations=1)
    ss, plain_top = result["ss"], result["plain_top"]
    kinds = {m.kind for m in result["ss_ctx"].channel.transcript}
    report(
        "Appendix B — LR with a federated (SS) top model vs plaintext top",
        format_table(
            ["variant", "test AUC", "train loss", "B ever sees Z?"],
            [
                ["SS top (Fig. 13)", round(ss.epoch_metrics[-1], 3),
                 f"{ss.losses[0]:.3f}->{ss.losses[-1]:.3f}",
                 "no (no OUTPUT_SHARE msgs)" if MessageKind.OUTPUT_SHARE not in kinds
                 else "yes (bug)"],
                ["plaintext top", round(plain_top.final_metric, 3),
                 f"{plain_top.losses[0]:.3f}->{plain_top.losses[-1]:.3f}", "yes (by design)"],
            ],
        ),
    )
    assert MessageKind.OUTPUT_SHARE not in kinds
    assert abs(ss.epoch_metrics[-1] - plain_top.final_metric) < 0.08
    assert ss.losses[-1] < ss.losses[0]


def test_appendix_c_multiparty(benchmark, report):
    rng = np.random.default_rng(0)
    rows = []
    timings = {}

    def run():
        for m in (2, 3):
            ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=22, n_a_parties=m)
            dims = {name: 6 for name in ctx.a_names}
            layer = MultiPartyMatMulSource(ctx, dims, in_b=6, out_dim=1)
            x = {name: rng.normal(size=(16, 6)) for name in ctx.a_names}
            x["B"] = rng.normal(size=(16, 6))
            w0 = layer.reveal_weights()  # pre-update weights (test observer)
            timer = Timer()
            with timer:
                z = layer.forward(x)
                layer.backward(rng.normal(size=(16, 1)) * 0.01)
                layer.apply_updates(lr=0.05, momentum=0.9)
            expected = sum(x[n] @ w0[f"W_{n}"] for n in ctx.a_names)
            expected = expected + x["B"] @ w0["W_B"]
            lossless = np.allclose(z, expected, atol=1e-3)
            timings[m] = timer.elapsed
            rows.append([
                f"M={m} Party A's", round(timer.elapsed, 3),
                "lossless" if lossless else "MISMATCH",
            ])
            assert lossless

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Appendix C / Algorithm 3 — multi-party MatMul, one training "
        "iteration (batch 16)",
        format_table(["configuration", "time/batch (s)", "correctness"], rows),
    )
    # One extra pairwise round per added party: cost grows, but sub-linearly
    # vs 2x (B's share of work is amortised).
    assert timings[3] > timings[2] * 1.1
    assert timings[3] < timings[2] * 2.5
