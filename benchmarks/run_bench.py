"""Perf-regression gate: kernel path must not be slower than the object path.

Runs the kernel microbench at deliberately small sizes (well under 60 s on
the slowest CI box) and **fails** — non-zero exit from the CLI, or a raised
``AssertionError`` from :func:`check` — if the flat kernels lose to the
legacy per-``EncryptedNumber`` path on any gated primitive.  The tier-1
smoke test (``tests/test_bench_smoke.py``) calls :func:`check`, so a perf
regression in the kernels shows up as a plain test failure in
``pytest -x -q``.

The gate compares medians-of-best over a couple of repeats and only asserts
``speedup >= MIN_SPEEDUP`` on primitives where the kernels hold a structural
advantage (deduplicated exponentiations, no object churn), so timing noise
on shared CI hardware does not flap the build.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_analysis  # noqa: E402  (path bootstrap above)
import bench_decrypt  # noqa: E402
import bench_fabric  # noqa: E402
import bench_kernels  # noqa: E402
import bench_packing  # noqa: E402
import bench_trace  # noqa: E402
import bench_transport  # noqa: E402

# The kernels' structural edge on these primitives is several-fold; 1.0
# would already catch a true regression, a small margin keeps noise out.
MIN_SPEEDUP = 1.1
KEY_BITS = 128  # short keys keep the quick gate far under the 60 s budget

# Packing gates: wire-size reductions are deterministic counting (no timing
# noise), so the production-key bound is the acceptance criterion itself.
PACKING_KEY_BITS = 256  # smallest key whose layout fits two product slots
MIN_PACKED_ENCRYPT_SPEEDUP = 1.1
MIN_PRODUCTION_REDUCTION = 5.0
# The packed embedding backward must ship at least 2x fewer ciphertexts on
# the lkup_bw transfer at every benchmarked key size (slots-fold in
# practice: 2x at the 256-bit bench key, ~18x at 2048-bit production keys).
MIN_LKUP_BW_REDUCTION = 2.0

# Decrypt-engine gates are *counting-only* (the CI box has one CPU, so wall
# clock can neither show a parallel win nor be trusted for one): the
# λ-exponent blinding refill must cost at least 4x less pow bit-work than
# classic r^n refills at the bench key (λ=32 vs 256-bit exponents, one-time
# h included), and a packed tensor must need at least the slot factor (2 at
# the 256-bit bench key) fewer CRT exponentiations to decrypt.  Timed rows
# are informational; serial/parallel/legacy bit-agreement is asserted by the
# bench itself while measuring.
MIN_BLINDING_BITWORK_REDUCTION = 4.0
MIN_PACKED_DECRYPT_REDUCTION = 2.0

# Transport gate is counting-only: on a clean link the reliability layer
# must be invisible — zero retransmits/NAKs/duplicates/timeouts, zero
# extra frames, and exactly ENV_OVERHEAD envelope bytes per codec frame
# (acks piggyback on DATA).  The faulted row must still deliver every
# frame, with the recovery traffic showing up in the counters.

# Static-invariant gate is counting-only: the tree must lint clean under
# repro.analysis (custody, determinism, telemetry, wire coverage,
# transport taxonomy) *and* the checker must still detect a known-bad
# probe for every rule — a blind linter reports a clean tree forever.
ANALYSIS_RULES = ("BF001", "BF002", "BF003", "BF004", "BF005")
MIN_ANALYSIS_FILES = 50

# Fabric gate is counting-only: both the blocking and the pipelined
# 3-endpoint runs must be bit-identical to the in-memory reference
# (pipelining reorders wall clock, never frames), every per-peer link
# ledger must be clean with exact envelope accounting, and the grid must
# be a star — Party A endpoints never link to each other.  Wall clock
# and cross-role overlap stay informational on the 1-CPU CI box.
FABRIC_CLEAN_ZERO = (
    "retransmits", "naks_sent", "naks_received", "duplicates_dropped",
    "corrupt_dropped", "timeouts", "reconnects", "resumes",
)


def check(results: dict | None = None) -> dict:
    """Assert the kernel path beats legacy on every gated primitive.

    Returns the benchmark results for reporting; raises AssertionError
    with the offending numbers otherwise.
    """
    if results is None:
        results = bench_kernels.run(key_bits=KEY_BITS, quick=True, repeat=2)
    failures = []
    for entry in results["matmul_plain_cipher"]:
        if entry["speedup_kernel"] < MIN_SPEEDUP:
            failures.append(
                f"matmul {entry['s']}x{entry['m']}x{entry['k']} ({entry['kind']}): "
                f"kernel {entry['kernel_s']:.4f}s vs legacy {entry['legacy_s']:.4f}s "
                f"({entry['speedup_kernel']:.2f}x < {MIN_SPEEDUP}x)"
            )
    sp = results["sparse_matmul"]
    if sp["fwd_speedup"] < MIN_SPEEDUP:
        failures.append(f"sparse forward {sp['fwd_speedup']:.2f}x < {MIN_SPEEDUP}x")
    if sp["bwd_speedup"] < MIN_SPEEDUP:
        failures.append(f"sparse backward {sp['bwd_speedup']:.2f}x < {MIN_SPEEDUP}x")
    if results["scatter_add"]["speedup_kernel"] < MIN_SPEEDUP:
        failures.append(
            f"scatter-add {results['scatter_add']['speedup_kernel']:.2f}x "
            f"< {MIN_SPEEDUP}x"
        )
    if failures:
        raise AssertionError(
            "kernel path regressed below the legacy object path:\n  "
            + "\n  ".join(failures)
        )
    return results


def check_packing(results: dict | None = None) -> dict:
    """Assert the packing subsystem's wins hold.

    Timed gate: packed obfuscated encryption must beat per-element
    encryption (it does structurally — one blinding exponentiation per
    ``slots`` values).  Counting gate: at the paper's 2048-bit production
    keys, the HE2SS forward-transfer grid must show at least a
    ``MIN_PRODUCTION_REDUCTION``-fold drop in ciphertext count, accounted
    wire bytes, *and* measured encoded-frame bytes (the wire codec's real
    frames, not just the estimator), so the claimed bandwidth win survives
    honest serialisation overhead.
    """
    if results is None:
        results = bench_packing.run(key_bits=PACKING_KEY_BITS, quick=True, repeat=2)
    failures = []
    enc = results["encrypt"]
    if enc["speedup_packed"] < MIN_PACKED_ENCRYPT_SPEEDUP:
        failures.append(
            f"packed encrypt {enc['packed_s']:.4f}s vs unpacked "
            f"{enc['unpacked_s']:.4f}s ({enc['speedup_packed']:.2f}x < "
            f"{MIN_PACKED_ENCRYPT_SPEEDUP}x)"
        )
    production = [
        row
        for row in results["bandwidth"]
        if row["key_bits"] == bench_packing.PRODUCTION_KEY_BITS
    ]
    if not production:
        failures.append("no production-key bandwidth rows in the grid")
    for row in production:
        for metric in ("ct_reduction", "byte_reduction", "frame_byte_reduction"):
            if row[metric] is None or row[metric] < MIN_PRODUCTION_REDUCTION:
                failures.append(
                    f"{row['rows']}x{row['cols']} @ {row['key_bits']}b: "
                    f"{metric} {row[metric]} < {MIN_PRODUCTION_REDUCTION}x"
                )
    lkup_rows = results.get("lkup_bw") or []
    if not lkup_rows:
        failures.append("no lkup_bw rows in the packing benchmark")
    for row in lkup_rows:
        for metric in ("ct_reduction", "byte_reduction", "lkup_ct_reduction"):
            if row[metric] < MIN_LKUP_BW_REDUCTION:
                failures.append(
                    f"lkup_bw @ {row['key_bits']}b: {metric} "
                    f"{row[metric]:.2f} < {MIN_LKUP_BW_REDUCTION}x"
                )
    if failures:
        raise AssertionError(
            "packing subsystem regressed below its structural wins:\n  "
            + "\n  ".join(failures)
        )
    return results


def check_decrypt(results: dict | None = None) -> dict:
    """Assert the decrypt engine's counting wins hold (timing informational).

    Counting gates only — see the constants above.  The benchmark already
    raised if any parallel/legacy/packed path decrypted to different bits,
    so this function re-asserts those agreement flags and the deterministic
    operation counts, never wall clock.
    """
    if results is None:
        results = bench_decrypt.run(
            key_bits=PACKING_KEY_BITS, quick=True, repeat=2
        )
    failures = []
    for entry in results["decrypt_flat"]:
        if not entry.get("legacy_matches_kernel"):
            failures.append(f"decrypt {entry['size']}: kernel diverged from legacy")
        if "parallel_workers" in entry and not entry.get("parallel_matches_serial"):
            failures.append(f"decrypt {entry['size']}: parallel diverged from serial")
    pd = results["packed_decrypt"]
    if pd["crt_pow_reduction"] < MIN_PACKED_DECRYPT_REDUCTION:
        failures.append(
            f"packed decrypt {pd['rows']}x{pd['cols']}: CRT-pow reduction "
            f"{pd['crt_pow_reduction']:.2f}x < {MIN_PACKED_DECRYPT_REDUCTION}x"
        )
    for row_name in ("blinding", "blinding_production"):
        row = results[row_name]
        if row["bitwork_reduction"] < MIN_BLINDING_BITWORK_REDUCTION:
            failures.append(
                f"{row_name} @ {row['key_bits']}b λ={row['blinding_lambda']}: "
                f"bit-work reduction {row['bitwork_reduction']:.2f}x < "
                f"{MIN_BLINDING_BITWORK_REDUCTION}x"
            )
    if not results["blinding"].get("blinders_valid"):
        failures.append("λ blinders failed the encryption-of-zero validity check")
    if failures:
        raise AssertionError(
            "decrypt engine regressed below its structural wins:\n  "
            + "\n  ".join(failures)
        )
    return results


def check_transport(results: dict | None = None) -> dict:
    """Assert the retransmission layer costs nothing on a clean link.

    Counting-only (loopback wall clock is syscall noise): at fault rate 0
    every reliability counter must be zero on both sides, ``extra_frames``
    must be zero, and envelope bytes must equal exactly one fixed-size
    envelope per codec frame sent.  The faulted row is gated only on
    lossless delivery plus non-hidden recovery traffic.
    """
    if results is None:
        results = bench_transport.run(quick=True)
    failures = []
    env = results["meta"]["env_overhead"]
    for row in results["clean"]:
        label = f"clean {row['rounds']}x{row['frame_bytes']}B"
        if row["echoed"] != row["rounds"]:
            failures.append(
                f"{label}: echoed {row['echoed']} of {row['rounds']} frames"
            )
        for side in ("sender", "receiver"):
            stats = row[side]
            for counter in (
                "retransmits", "naks_sent", "naks_received",
                "duplicates_dropped", "corrupt_dropped", "timeouts",
                "reconnects", "resumes",
            ):
                if stats[counter] != 0:
                    failures.append(
                        f"{label} {side}: {counter}={stats[counter]} != 0 "
                        "at fault rate 0"
                    )
            extra = (
                stats["retransmits"] + stats["naks_sent"] + stats["resumes"]
            )
            if extra != 0:
                failures.append(f"{label} {side}: {extra} extra frames != 0")
            expected = stats["data_sent"] * env
            if stats["envelope_bytes"] != expected:
                failures.append(
                    f"{label} {side}: envelope_bytes {stats['envelope_bytes']} "
                    f"!= {expected} ({env}B x {stats['data_sent']} frames)"
                )
    faulted = results["faulted"]
    if faulted["echoed"] != faulted["rounds"]:
        failures.append(
            f"faulted: echoed {faulted['echoed']} of {faulted['rounds']} frames"
        )
    recovery = (
        faulted["sender"]["retransmits"] + faulted["receiver"]["naks_sent"]
    )
    if faulted["fault_plan"]["events"] and recovery == 0:
        failures.append(
            "faulted: fault plan had events but no recovery traffic was "
            "counted — the stats are hiding retransmissions"
        )
    # Cross-process leg: run_two_party returns the LinkStats of both real
    # endpoints; a clean loopback run must be as free as the in-process one,
    # with the graceful FIN exchange visible on each side.
    tp = results["two_party"]
    for side in ("guest", "host"):
        stats = tp[side]
        for counter in (
            "retransmits", "naks_sent", "duplicates_dropped",
            "corrupt_dropped", "timeouts", "reconnects", "resumes",
        ):
            if stats[counter] != 0:
                failures.append(
                    f"two-party {side}: {counter}={stats[counter]} != 0 "
                    "on a clean loopback run"
                )
        if stats["fins"] < 1:
            failures.append(f"two-party {side}: no FIN in a graceful shutdown")
        if stats["data_sent"] < tp["rounds"]:
            failures.append(
                f"two-party {side}: data_sent {stats['data_sent']} < "
                f"{tp['rounds']} rounds"
            )
    if failures:
        raise AssertionError(
            "retransmission layer is not free on a clean link:\n  "
            + "\n  ".join(failures)
        )
    return results


def check_trace(results: dict | None = None) -> dict:
    """Assert the telemetry subsystem's claims hold (counting-only).

    Every traced training run already passed ``validate_trace`` inside the
    benchmark; this gate re-asserts the four invariants the observability
    layer is allowed to promise: exact byte/frame reconciliation against
    the channel's own ledgers, identical counter totals and span skeletons
    across identically seeded runs, a strict packed-vs-unpacked ciphertext
    fold at the same key, and a clean reliable link whose traced
    ``link.*`` mirror matches ``LinkStats`` with zero reliability events.
    """
    if results is None:
        results = bench_trace.run(quick=True)
    failures = []
    for name in ("unpacked", "unpacked_repeat", "packed"):
        row = results[name]
        totals = row["totals"]
        for party, nbytes in row["bytes_by_sender"].items():
            traced = totals.get(f"bytes.sent.{party}", 0)
            if traced != nbytes:
                failures.append(
                    f"{name}: traced bytes.sent.{party} {traced} != "
                    f"channel ledger {nbytes}"
                )
        if totals.get("frames.sent", 0) != row["n_messages"]:
            failures.append(
                f"{name}: traced frames.sent {totals.get('frames.sent', 0)} "
                f"!= {row['n_messages']} transcript messages"
            )
        if totals.get("bytes.sent", 0) != row["frame_bytes"]:
            failures.append(
                f"{name}: traced bytes.sent {totals.get('bytes.sent', 0)} != "
                f"{row['frame_bytes']} measured encoded-frame bytes"
            )
    if results["unpacked"]["totals"] != results["unpacked_repeat"]["totals"]:
        failures.append("identically seeded runs produced different counter totals")
    if results["unpacked"]["skeleton"] != results["unpacked_repeat"]["skeleton"]:
        failures.append("identically seeded runs produced different span skeletons")
    unpacked_ct = results["unpacked"]["totals"]["ct.encrypted"]
    packed_ct = results["packed"]["totals"]["ct.encrypted"]
    if not packed_ct < unpacked_ct:
        failures.append(
            f"packing fold missing from the trace: packed ct.encrypted "
            f"{packed_ct} !< unpacked {unpacked_ct}"
        )
    if "ct.packed" not in results["packed"]["totals"]:
        failures.append("packed run traced no ct.packed counter")
    link = results["clean_link"]
    totals = link["totals"]
    for counter in bench_trace.LINK_RELIABILITY_EVENTS:
        if totals.get(f"link.{counter}", 0) != 0:
            failures.append(
                f"clean link: traced link.{counter}="
                f"{totals[f'link.{counter}']} != 0 at fault rate 0"
            )
    expected = link["sender"]["data_sent"] + link["receiver"]["data_sent"]
    if totals.get("link.data_sent", 0) != expected or expected != 2 * link["rounds"]:
        failures.append(
            f"clean link: traced link.data_sent "
            f"{totals.get('link.data_sent', 0)} != stats {expected} "
            f"(= 2 x {link['rounds']} rounds)"
        )
    if failures:
        raise AssertionError(
            "telemetry does not reconcile with the ground truth it mirrors:\n  "
            + "\n  ".join(failures)
        )
    return results


def check_analysis(results: dict | None = None) -> dict:
    """Assert the static-invariant sweep is clean *and* still detects.

    Gates (all counting, no timing): every rule code registered, the
    sweep covered a sane number of files, the live tree produced zero
    findings, and each rule's known-bad probe was flagged with exactly
    that rule's code.
    """
    if results is None:
        results = bench_analysis.run(quick=True)
    failures = []
    registered = tuple(results["rules_registered"])
    if registered != ANALYSIS_RULES:
        failures.append(
            f"rule registry {registered} != expected {ANALYSIS_RULES}"
        )
    if results["files_scanned"] < MIN_ANALYSIS_FILES:
        failures.append(
            f"sweep covered only {results['files_scanned']} files "
            f"(< {MIN_ANALYSIS_FILES}) — analyzer lost the tree"
        )
    if not results["zero_findings"]:
        failures.append(
            f"{results['findings']} live finding(s):\n    "
            + "\n    ".join(results["finding_lines"])
        )
    for code, row in results["detection"].items():
        if not row["detected"]:
            failures.append(
                f"{code} went blind: probe produced {row['codes']}"
            )
    if failures:
        raise AssertionError(
            "static invariants do not hold:\n  " + "\n  ".join(failures)
        )
    return results


def check_fabric(results: dict | None = None) -> dict:
    """Assert the N-party fabric is deterministic with clean links.

    Gates (all counting, no timing): the blocking and pipelined runs'
    losses are float-exact against the all-local in-memory reference and
    their pooled weight pieces array-equal; every per-peer link ledger
    counts zero recovery traffic with exactly ``ENV_OVERHEAD`` envelope
    bytes per DATA frame and zero extra frames; and the link grid is a
    star around the key owner (A endpoints never dial each other).

    The ``faulted`` row (deterministic drop+corrupt+duplicate schedule
    on the A1→B direction) is gated on the chaos contract instead:
    losses/pieces still bit-identical to memory, 100% delivery in both
    directions of every link (logical frames sent == frames accepted),
    the faulted link's ledgers showing the recovery visibly happened
    (receiver dropped corruption and duplicates and sent NAKs, sender
    retransmitted), and the untouched A2↔B link still counting zero
    recovery traffic.
    """
    if results is None:
        results = bench_fabric.run(quick=True)
    failures = []
    env = results["meta"]["env_overhead"]
    for mode in ("blocking", "pipelined"):
        row = results[mode]
        if not row["losses_match_memory"]:
            failures.append(
                f"{mode}: losses {row['losses']} != memory reference "
                f"{results['memory_losses']} — the fabric is not bit-identical"
            )
        if not row["pieces_match_memory"]:
            failures.append(
                f"{mode}: pooled weight pieces diverged from the all-local "
                f"model — a mask or blinder failed to cancel"
            )
        stats = row["link_stats"]
        for role, per_peer in stats.items():
            expected_peers = (
                {"ep_a1", "ep_a2"} if role == "ep_b" else {"ep_b"}
            )
            if set(per_peer) != expected_peers:
                failures.append(
                    f"{mode} {role}: links to {sorted(per_peer)} != "
                    f"{sorted(expected_peers)} — the grid is not a star"
                )
            for peer, ledger in per_peer.items():
                label = f"{mode} {role}<->{peer}"
                for counter in FABRIC_CLEAN_ZERO:
                    if ledger[counter] != 0:
                        failures.append(
                            f"{label}: {counter}={ledger[counter]} != 0 on a "
                            "clean loopback run"
                        )
                extra = (
                    ledger["retransmits"] + ledger["naks_sent"]
                    + ledger["resumes"]
                )
                if extra != 0:
                    failures.append(f"{label}: {extra} extra frames != 0")
                # One envelope per DATA frame plus the graceful FIN — a
                # clean link sends nothing else.
                frames = ledger["data_sent"] + ledger["fins"]
                if ledger["envelope_bytes"] != frames * env:
                    failures.append(
                        f"{label}: envelope_bytes {ledger['envelope_bytes']} "
                        f"!= {frames * env} ({env}B x {frames} frames incl. FIN)"
                    )
                if ledger["fins"] < 1:
                    failures.append(f"{label}: no FIN in a graceful shutdown")
                if ledger["data_sent"] == 0:
                    failures.append(f"{label}: no DATA frames crossed the link")
    if (
        results["blocking"]["losses"] != results["pipelined"]["losses"]
    ):
        failures.append(
            "pipelined losses diverged from blocking losses — async sends "
            "reordered protocol frames"
        )
    faulted = results.get("faulted")
    if faulted is None:
        failures.append("no faulted row — the chaos run never happened")
    else:
        if not faulted["losses_match_memory"]:
            failures.append(
                f"faulted: losses {faulted['losses']} != memory reference "
                f"{results['memory_losses']} — recovery was not bit-exact"
            )
        if not faulted["pieces_match_memory"]:
            failures.append(
                "faulted: pooled weight pieces diverged from the all-local "
                "model — recovery lost or reordered a frame's effect"
            )
        stats = faulted["link_stats"]
        for role, per_peer in stats.items():
            expected_peers = (
                {"ep_a1", "ep_a2"} if role == "ep_b" else {"ep_b"}
            )
            if set(per_peer) != expected_peers:
                failures.append(
                    f"faulted {role}: links to {sorted(per_peer)} != "
                    f"{sorted(expected_peers)} — the grid is not a star"
                )
        # 100% delivery on every direction of every link: each logical
        # frame sent was accepted exactly once at the far end.
        for sender, receiver in (
            ("ep_a1", "ep_b"), ("ep_b", "ep_a1"),
            ("ep_a2", "ep_b"), ("ep_b", "ep_a2"),
        ):
            sent = stats[sender][receiver]["data_sent"]
            got = stats[receiver][sender]["data_received"]
            if sent != got:
                failures.append(
                    f"faulted {sender}->{receiver}: {sent} frames sent but "
                    f"{got} accepted — delivery is not 100%"
                )
        # The injected faults must visibly fire and recover on the one
        # scheduled direction...
        a1 = stats["ep_a1"]["ep_b"]
        b = stats["ep_b"]["ep_a1"]
        for label, ledger, counter in (
            ("ep_b<-ep_a1 receiver", b, "corrupt_dropped"),
            ("ep_b<-ep_a1 receiver", b, "duplicates_dropped"),
            ("ep_b<-ep_a1 receiver", b, "naks_sent"),
            ("ep_a1->ep_b sender", a1, "retransmits"),
            ("ep_a1->ep_b sender", a1, "naks_received"),
        ):
            if ledger[counter] < 1:
                failures.append(
                    f"faulted {label}: {counter}=0 — the scheduled fault "
                    "never fired or recovery was invisible"
                )
        # ... while the untouched A2<->B link stays exactly clean.
        for role, peer in (("ep_a2", "ep_b"), ("ep_b", "ep_a2")):
            ledger = stats[role][peer]
            for counter in FABRIC_CLEAN_ZERO:
                if ledger[counter] != 0:
                    failures.append(
                        f"faulted {role}<->{peer}: {counter}="
                        f"{ledger[counter]} != 0 on the fault-free link"
                    )
    if failures:
        raise AssertionError(
            "the fabric determinism/clean-link contract does not hold:\n  "
            + "\n  ".join(failures)
        )
    return results


def main() -> int:
    try:
        results = check()
        packing_results = check_packing()
        decrypt_results = check_decrypt()
        transport_results = check_transport()
        fabric_results = check_fabric()
        trace_results = check_trace()
        analysis_results = check_analysis()
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(
        json.dumps(
            {
                "kernels": results,
                "packing": packing_results,
                "decrypt": decrypt_results,
                "transport": transport_results,
                "fabric": fabric_results,
                "trace": trace_results,
                "analysis": analysis_results,
            },
            indent=2,
        )
    )
    print("OK: kernel path beats the legacy object path on all gated primitives")
    print(
        "OK: packed encryption beats per-element and the production-key "
        f"transfer grid clears {MIN_PRODUCTION_REDUCTION}x"
    )
    print(
        "OK: decrypt engine bit-identical across paths; λ-blinding clears "
        f"{MIN_BLINDING_BITWORK_REDUCTION}x bit-work, packed decrypt "
        f"{MIN_PACKED_DECRYPT_REDUCTION}x fewer CRT pows"
    )
    print(
        "OK: reliable link is free at fault rate 0 (zero retransmits, zero "
        "extra frames) and lossless under the seeded fault plan"
    )
    print(
        "OK: 3-endpoint fabric is bit-identical to the in-memory reference "
        "(blocking and pipelined) over a clean star grid"
    )
    print(
        "OK: telemetry reconciles exactly (bytes/frames/link counters), is "
        "seeded-run deterministic, and shows the packing fold"
    )
    print(
        "OK: static invariants hold (BF001-BF005 lint clean over "
        f"{analysis_results['files_scanned']} files) and every rule still "
        "detects its probe"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
