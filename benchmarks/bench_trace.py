"""Telemetry benchmark: traced training runs that must reconcile exactly.

The trace subsystem's claims are counting-only, so the gate in
``run_bench.check_trace`` asserts them deterministically:

* **schema** — every traced run validates (`repro.obs.validate_trace`);
* **reconciliation** — per-party traced byte counters equal the
  channel's ``bytes_by_sender`` to the byte, ``frames.sent`` equals the
  transcript length, and on the serializing tier the traced byte total
  equals the sum of real encoded frame lengths;
* **determinism** — two identically seeded traced runs produce identical
  counter totals and span skeletons;
* **ciphertext fold** — the packed run encrypts/decrypts strictly fewer
  ciphertexts than the unpacked run at the same key;
* **clean link** — a traced ping-pong over a fault-free reliable link
  records zero reliability events (``link.retransmits`` etc.) while its
  ``link.data_sent`` matches the ``LinkStats`` ledger exactly.

Emits ``BENCH_trace.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_trace.py
    PYTHONPATH=src python benchmarks/bench_trace.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import socket
from pathlib import Path

import numpy as np

from repro.comm import codec
from repro.comm.party import VFLConfig, VFLContext
from repro.comm.transport import ReliableLink, RetryPolicy
from repro.core.models import FederatedLR
from repro.core.trainer import TrainConfig, train_federated
from repro.data.partition import split_vertical
from repro.data.synthetic import make_dense_classification
from repro.obs.report import fold_trace
from repro.obs.tracer import Tracer, counter_totals, use_tracer, validate_trace

REPO_ROOT = Path(__file__).resolve().parent.parent

KEY_BITS = 256  # smallest key whose packed layout fits two product slots

# Reliability-event counters that must stay zero on a clean traced link
# (everything in LinkStats except the data/overhead ledgers and the gauge).
LINK_RELIABILITY_EVENTS = (
    "retransmits", "naks_sent", "naks_received", "duplicates_dropped",
    "corrupt_dropped", "timeouts", "reconnects", "resumes",
)


def _traced_train(packing: bool, batches: int) -> dict:
    """One seeded serializing traced run; returns trace + channel ledgers."""
    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS, packing=packing), seed=3)
    model = FederatedLR(ctx, 3, 3)
    vd = split_vertical(make_dense_classification(48, 6, seed=50))
    cfg = TrainConfig(
        epochs=1, batch_size=16, lr=0.1, momentum=0.9, seed=0,
        channel="serializing", telemetry="memory", blinding_pool_per_epoch=4,
    )
    history = train_federated(model, vd, cfg, max_batches_per_epoch=batches)
    trace = history.trace
    validate_trace(trace)
    ch = ctx.channel
    totals = counter_totals(trace)
    return {
        "packing": packing,
        "n_spans": len(trace),
        "totals": totals,
        "skeleton": [
            [sp["phase"], sp["party"], sp["parent"]] for sp in trace
        ],
        "bytes_by_sender": dict(ch.bytes_by_sender),
        "n_messages": len(ch.transcript),
        "frame_bytes": sum(m.nbytes for m in ch.transcript),
        "fold": {
            "rows": [
                {k: v for k, v in row.items() if k != "counters"}
                for row in fold_trace(trace)["rows"]
            ],
            "parties": fold_trace(trace)["parties"],
        },
    }


def _traced_clean_link(n_rounds: int, payload_elems: int) -> dict:
    """Lockstep ping-pong over a fault-free socketpair, traced end to end.

    Single-threaded: the socketpair buffers one frame easily, so each
    round is send(A) -> recv(B) -> send(B) -> recv(A) with no echo
    thread, and both links' counters land on the tracer's root span.
    """
    frame = codec.encode_payload_frame(np.arange(payload_elems, dtype=np.float64))
    raw_a, raw_b = socket.socketpair()
    raw_a.settimeout(0.5)
    raw_b.settimeout(0.5)
    retry = RetryPolicy(max_retries=4, base_delay=0.02, max_delay=0.2,
                        jitter=0.1, seed=1)
    link_a = ReliableLink(raw_a, retry=retry)
    link_b = ReliableLink(raw_b, retry=retry)
    tracer = Tracer()
    try:
        with use_tracer(tracer):
            for _ in range(n_rounds):
                link_a.send_frame(frame)
                link_b.send_frame(link_b.recv_frame())
                link_a.recv_frame()
            # Snapshot inside the traced region: FIN/close traffic after
            # the tracer exits is deliberately out of scope.
            stats_a = link_a.stats.as_dict()
            stats_b = link_b.stats.as_dict()
    finally:
        for s in (raw_a, raw_b):
            try:
                s.close()
            except OSError:
                pass
    return {
        "rounds": n_rounds,
        "frame_bytes": len(frame),
        "totals": counter_totals(tracer.to_dicts()),
        "sender": stats_a,
        "receiver": stats_b,
    }


def run(quick: bool = False) -> dict:
    """Traced runs for the gate: unpacked x2 (determinism), packed, link."""
    batches = 2 if quick else 3
    link_rounds = 32 if quick else 128
    unpacked = _traced_train(packing=False, batches=batches)
    unpacked_repeat = _traced_train(packing=False, batches=batches)
    packed = _traced_train(packing=True, batches=batches)
    clean_link = _traced_clean_link(link_rounds, 64)
    return {
        "meta": {
            "quick": quick,
            "key_bits": KEY_BITS,
            "batches": batches,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "unpacked": unpacked,
        "unpacked_repeat": unpacked_repeat,
        "packed": packed,
        "clean_link": clean_link,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized runs")
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_trace.json")
    args = parser.parse_args(argv)
    results = run(quick=args.quick)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    for name in ("unpacked", "packed"):
        row = results[name]
        t = row["totals"]
        print(
            f"{name}: {row['n_spans']} spans, ct_enc {t.get('ct.encrypted', 0)}, "
            f"ct_dec {t.get('ct.decrypted', 0)}, bytes {t.get('bytes.sent', 0)} "
            f"(channel says {sum(row['bytes_by_sender'].values())})"
        )
    link = results["clean_link"]
    print(
        f"clean link: {link['rounds']} rounds, traced data_sent "
        f"{link['totals'].get('link.data_sent', 0)}, reliability events "
        f"{sum(link['totals'].get('link.' + k, 0) for k in LINK_RELIABILITY_EVENTS)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
