"""Table 8: scalability w.r.t. the number of layers.

connect-4-like MLP where 32-unit layers are inserted between a fixed
64-unit source layer and the head.  The paper's point: extra layers live in
the *plaintext top model*, so per-batch time barely moves (1.00x-1.02x)
while the source layer dominates.  We assert the same flatness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.party import VFLConfig, VFLContext
from repro.core.models import FederatedMLP
from repro.core.optimizer import FederatedSGD
from repro.core.trainer import TrainConfig, train_federated
from repro.data.partition import split_vertical
from repro.data.synthetic import make_sparse_classification
from repro.tensor.losses import softmax_cross_entropy
from repro.utils.tabulate import format_table
from repro.utils.timer import Timer

KEY_BITS = 128
SOURCE_WIDTH = 16
LAYER_COUNTS = [3, 4, 5, 6]
_rows: list[tuple[int, float, float]] = []


def _hidden_dims(n_layers: int) -> list[int]:
    """Fixed source width + (n-3) inserted 8-unit layers + 8-unit head."""
    return [SOURCE_WIDTH] + [8] * (n_layers - 3) + [8]


@pytest.mark.parametrize("n_layers", LAYER_COUNTS)
def test_table8_depth(benchmark, report, n_layers):
    full = make_sparse_classification(256, 126, 42, n_classes=3, seed=111, flip=0.03)
    vd = split_vertical(full.subset(np.arange(192)))
    vd_test = split_vertical(full.subset(np.arange(192, 256)))
    rng = np.random.default_rng(0)
    batch = vd.take_rows(rng.choice(192, 32, replace=False))

    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS, share_refresh="delta"), seed=19)
    model = FederatedMLP(ctx, 63, 63, hidden=_hidden_dims(n_layers), n_out=3)
    opt = FederatedSGD(model, lr=0.1, momentum=0.9)
    timer = Timer()

    def iteration():
        with timer:
            out = model.forward(batch, train=True)
            opt.zero_grad()
            loss = softmax_cross_entropy(out, batch.y)
            loss.backward()
            model.backward_sources()
            opt.step()

    benchmark.pedantic(iteration, rounds=1, iterations=1)

    ctx2 = VFLContext(VFLConfig(key_bits=KEY_BITS, share_refresh="delta"), seed=20)
    model2 = FederatedMLP(ctx2, 63, 63, hidden=_hidden_dims(n_layers), n_out=3)
    cfg = TrainConfig(epochs=1, batch_size=32, lr=0.1, momentum=0.9)
    history = train_federated(model2, vd, cfg, test_data=vd_test,
                              max_batches_per_epoch=4)
    _rows.append((n_layers, timer.elapsed, history.final_metric))

    if n_layers == LAYER_COUNTS[-1]:
        base = _rows[0][1]
        table = [
            [f"{n} layers", round(t, 3), f"{t / base:.2f}x", round(acc, 3)]
            for n, t, acc in _rows
        ]
        report(
            "Table 8 — scalability vs #layers (connect-4-like MLP; paper: "
            "1.00x/1.01x/1.02x/1.02x — top layers are plaintext and ~free)",
            format_table(
                ["config", "time/batch (s)", "relative", "val accuracy"], table
            ),
        )
        base_t = _rows[0][1]
        for _, t, _ in _rows[1:]:
            assert t / base_t < 1.5, "extra plaintext layers should be ~free"
