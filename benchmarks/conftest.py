"""Benchmark-suite plumbing.

Each bench file reproduces one table or figure of the paper and registers
a plain-text rendering of it via the ``report`` fixture; the renderings
are printed in the terminal summary (visible even with output capture on,
so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
the paper-shaped tables alongside pytest-benchmark's timing table).
"""

from __future__ import annotations

import pytest

_RESULTS: list[tuple[str, str]] = []


@pytest.fixture()
def report():
    """Register a rendered table for the end-of-run summary."""

    def _report(title: str, text: str) -> None:
        _RESULTS.append((title, text))

    return _report


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: ARG001
    if not _RESULTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    terminalreporter.write_line("PAPER REPRODUCTION RESULTS (see EXPERIMENTS.md)")
    terminalreporter.write_line("=" * 78)
    for title, text in _RESULTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
