"""Table 5: per-batch training time — BlindFL vs SecureML vs client-aided.

Reproduces the table's three columns on the scaled Table-4 datasets (see
``repro.data.catalog`` for the scale factors).  As in the paper, only the
matrix-multiplication work is timed (forward + gradient products), and the
cells the paper reports as "> 1800 s" / "OOM" are reproduced the same way:
crypto-offline cells are extrapolated from a calibrated unit cost and
reported as "> limit" when they exceed the budget, and outsourcing at the
*paper's* dimensionalities trips the densification memory guard (OOM).

Expected shape (the paper's conclusions):
* BlindFL beats SecureML-crypto everywhere, by more on sparser data;
* SecureML-crypto cannot finish the high-dimensional rows;
* client-aided wins on low-dimensional data but its dense cost grows with
  dimensionality while BlindFL's crypto cost stays ~ nnz.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.secureml import SecureMLCostModel, SecureMLMatMul, outsource
from repro.comm.party import VFLConfig, VFLContext
from repro.core.matmul_layer import MatMulSource
from repro.crypto.beaver import encode_ring, share_ring
from repro.data.catalog import CATALOG
from repro.data.synthetic import make_dense_classification, make_sparse_classification
from repro.data.partition import split_vertical
from repro.utils.tabulate import format_table
from repro.utils.timer import Timer

BATCH = 32  # paper uses 128; scaled with the datasets
KEY_BITS = 128
RUN_LIMIT_SECONDS = 10.0  # run the crypto cell for real below this estimate
CRYPTO_LIMIT_SECONDS = 30.0  # report "> limit" beyond this (paper: "> 1800")

# dataset -> out_dim of the timed source layer
ROWS = [
    ("a9a", 1),
    ("w8a", 1),
    ("connect-4", 8),  # MLP first layer
    ("higgs", 1),
    ("news20", 20),
    ("avazu-app", 1),
    ("industry", 1),
]

_results: list[list[object]] = []


def _batch_for(name: str, rng: np.random.Generator):
    entry = CATALOG[name]
    if entry.kind == "dense":
        ds = make_dense_classification(BATCH, entry.dim, seed=1)
    else:
        ds = make_sparse_classification(BATCH, entry.dim, entry.avg_nnz, seed=1)
    vd = split_vertical(ds)
    return vd.party("A").numeric_block(), vd.party("B").numeric_block(), entry


def _blindfl_iteration_factory(name: str, out_dim: int):
    rng = np.random.default_rng(0)
    x_a, x_b, entry = _batch_for(name, rng)
    ctx = VFLContext(
        VFLConfig(key_bits=KEY_BITS, share_refresh="delta"), seed=2
    )
    half = entry.dim // 2
    layer = MatMulSource(ctx, half, entry.dim - half, out_dim, name=f"t5-{name}")
    grad = rng.normal(size=(BATCH, out_dim)) * 0.01

    def one_iteration():
        layer.forward(x_a, x_b)
        layer.backward(grad)
        layer.apply_updates(lr=0.05, momentum=0.9)

    return one_iteration


@pytest.mark.parametrize("name,out_dim", ROWS, ids=[r[0] for r in ROWS])
def test_table5_row(benchmark, report, name, out_dim):
    entry = CATALOG[name]
    rng = np.random.default_rng(3)

    # ---- BlindFL (timed by pytest-benchmark).
    blindfl_iter = _blindfl_iteration_factory(name, out_dim)
    blind_timer = Timer()

    def timed_iteration():
        with blind_timer:
            blindfl_iter()

    benchmark.pedantic(timed_iteration, rounds=1, iterations=1, warmup_rounds=0)
    blindfl_s = blind_timer.elapsed

    # ---- SecureML with crypto triples: run small rows, extrapolate big ones.
    kernel = SecureMLMatMul(rng, triple_source="crypto", seed=4)
    cost = SecureMLCostModel.calibrate(kernel, n=2, m=8, k=1)
    # Forward (B x d x out) + backward (d x B x out) triples per iteration.
    predicted = cost.predict_seconds(BATCH, entry.dim, out_dim) + cost.predict_seconds(
        entry.dim, BATCH, out_dim
    )
    if predicted < RUN_LIMIT_SECONDS:
        x_a, x_b, _ = _batch_for(name, rng)
        dense = np.hstack(
            [m.to_dense() if hasattr(m, "to_dense") else m for m in (x_a, x_b)]
        )
        x_sh = outsource(dense, rng)
        w_sh = share_ring(encode_ring(rng.normal(size=(entry.dim, out_dim)) * 0.1), rng)
        kernel.offline_timer.reset()
        kernel.online_timer.reset()
        kernel.training_iteration(x_sh, w_sh)
        secureml_cell: object = round(kernel.total_time, 3)
        secureml_s = kernel.total_time
    elif predicted < CRYPTO_LIMIT_SECONDS:
        secureml_cell = f"~{predicted:.0f} (extrapolated)"
        secureml_s = predicted
    else:
        secureml_cell = f">{CRYPTO_LIMIT_SECONDS:.0f} (extrap {predicted:.0f}s)"
        secureml_s = predicted

    # ---- Client-aided SecureML: dense arithmetic only.
    client = SecureMLMatMul(rng, triple_source="client")
    x_a, x_b, _ = _batch_for(name, rng)
    dense = np.hstack(
        [m.to_dense() if hasattr(m, "to_dense") else m for m in (x_a, x_b)]
    )
    x_sh = outsource(dense, rng)
    w_sh = share_ring(encode_ring(rng.normal(size=(entry.dim, out_dim)) * 0.1), rng)
    timer = Timer()
    with timer:
        client.training_iteration(x_sh, w_sh)
    client_s = timer.elapsed

    speedup = secureml_s / blindfl_s if blindfl_s > 0 else float("inf")
    _results.append(
        [
            f"{name} ({entry.sparsity})",
            entry.paper_model,
            round(blindfl_s, 3),
            secureml_cell,
            round(client_s, 4),
            f"{speedup:.0f}x",
        ]
    )
    if name == ROWS[-1][0]:
        report(
            "Table 5 — time per mini-batch (s), matrix-multiplication only "
            f"(batch {BATCH}, {KEY_BITS}-bit keys; paper: batch 128, 2048-bit, "
            "96 cores)",
            format_table(
                ["dataset", "model", "BlindFL", "SecureML", "SecureML(client)",
                 "BlindFL vs SecureML"],
                _results,
            ),
        )


def test_table5_paper_scale_oom(benchmark, report):
    """The paper-scale avazu/industry rows: outsourcing runs out of memory."""
    rng = np.random.default_rng(5)
    rows = []

    def attempt_outsourcing():
        for name, dim in (("avazu-app", 1_000_000), ("industry", 10_000_000)):
            sparse = make_sparse_classification(4, 100, 3, seed=6).x_sparse
            # Reproduce the paper-scale shape without materialising data.
            sparse.shape = (128, dim)
            try:
                outsource(sparse, rng)
                rows.append([name, dim, "shared (unexpected)"])
            except MemoryError:
                rows.append([name, dim, "OOM (densification guard)"])

    benchmark.pedantic(attempt_outsourcing, rounds=1, iterations=1)
    report(
        "Table 5 (paper-scale columns) — data outsourcing at the paper's "
        "dimensionalities",
        format_table(["dataset", "paper dims", "SecureML outsourcing"], rows),
    )
    assert all("OOM" in r[2] for r in rows)
