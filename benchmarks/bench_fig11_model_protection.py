"""Figure 11: share pieces vs true model values, coordinate by coordinate.

The paper plots ``U_A`` against ``W_A`` (w8a LR) and ``S_A`` against
``Q_A`` (a9a WDL) after training and observes "the difference on each
coordinate is random and sufficiently large so that both the magnitudes or
signs of the ground truth values are inaccessible".  We reproduce the
statistics behind that plot: value ranges, per-coordinate correlation and
sign-agreement of piece vs truth.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.model_attack import piece_vs_weight_stats
from repro.comm.party import VFLConfig, VFLContext
from repro.core.embed_matmul_layer import EmbedMatMulSource
from repro.core.matmul_layer import MatMulSource
from repro.data.partition import split_vertical
from repro.data.synthetic import make_mixed_classification, make_sparse_classification
from repro.utils.tabulate import format_table

KEY_BITS = 128
STEPS = 10


def _train_matmul_layer():
    full = make_sparse_classification(320, 300, 12, seed=80, flip=0.03)
    vd = split_vertical(full)
    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS, share_refresh="delta"), seed=11)
    layer = MatMulSource(ctx, 150, 150, 1, name="f11-lr")
    rng = np.random.default_rng(0)
    for step in range(STEPS):
        idx = rng.choice(320, size=32, replace=False)
        batch = vd.take_rows(idx)
        z = layer.forward(
            batch.party("A").numeric_block(), batch.party("B").numeric_block()
        )
        probs = 1 / (1 + np.exp(-z))
        layer.backward((probs - batch.y.reshape(z.shape)) / 32)
        layer.apply_updates(lr=0.05, momentum=0.9)
    return layer


def _train_embed_layer():
    full = make_mixed_classification(
        192, sparse_dim=30, nnz_per_row=5, n_fields=4, vocab_size=8, seed=81
    )
    vd = split_vertical(full)
    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=12)
    layer = EmbedMatMulSource(
        ctx,
        vd.party("A").vocab_sizes,
        vd.party("B").vocab_sizes,
        emb_dim=4,
        out_dim=1,
        name="f11-wdl",
    )
    rng = np.random.default_rng(0)
    for step in range(4):
        idx = rng.choice(192, size=24, replace=False)
        batch = vd.take_rows(idx)
        z = layer.forward(batch.party("A").x_cat, batch.party("B").x_cat)
        probs = 1 / (1 + np.exp(-z))
        layer.backward((probs - batch.y.reshape(z.shape)) / 24)
        layer.apply_updates(lr=0.05, momentum=0.9)
    return layer


def test_fig11_model_protection(benchmark, report):
    layers = {}

    def run():
        layers["matmul"] = _train_matmul_layer()
        layers["embed"] = _train_embed_layer()

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    checks = []
    matmul = layers["matmul"]
    w = matmul.reveal_weights()
    stats = piece_vs_weight_stats(matmul.piece_views()["A.U_A"], w["W_A"])
    rows.append(
        ["w8a-like LR", "U_A vs W_A",
         f"[{w['W_A'].min():.2f}, {w['W_A'].max():.2f}]",
         f"[{matmul.piece_views()['A.U_A'].min():.1f}, "
         f"{matmul.piece_views()['A.U_A'].max():.1f}]",
         round(stats.correlation, 3), round(stats.sign_agreement, 3),
         round(stats.magnitude_ratio, 1)]
    )
    checks.append(stats)

    embed = layers["embed"]
    we = embed.reveal_weights()
    stats_e = piece_vs_weight_stats(embed.piece_views()["A.S_A"], we["Q_A"])
    rows.append(
        ["a9a-like WDL", "S_A vs Q_A",
         f"[{we['Q_A'].min():.2f}, {we['Q_A'].max():.2f}]",
         f"[{embed.piece_views()['A.S_A'].min():.1f}, "
         f"{embed.piece_views()['A.S_A'].max():.1f}]",
         round(stats_e.correlation, 3), round(stats_e.sign_agreement, 3),
         round(stats_e.magnitude_ratio, 1)]
    )
    checks.append(stats_e)

    report(
        "Figure 11 — model protection: pieces dwarf and decorrelate from the "
        "true values (sign agreement ~0.5 = coin flip)",
        format_table(
            ["experiment", "pair", "true value range", "piece range",
             "corr", "sign agree", "|piece|/|true|"],
            rows,
        ),
    )
    for stats in checks:
        assert stats.magnitude_ratio > 3
        assert not stats.leaks(corr_tol=0.45, sign_tol=0.3)
