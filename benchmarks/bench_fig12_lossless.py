"""Figure 12: the lossless property across datasets and models.

For each of the paper's eight dataset x model combinations we train

* NonFed-Party B   (B's features only — the floor),
* NonFed-collocated (all features in one place — the target),
* BlindFL          (federated),

with the same hyper-parameters, and report the test metric plus the
training-loss trajectory.  The paper's claims, asserted here:

* BlindFL's metric is within noise of NonFed-collocated (lossless);
* BlindFL beats NonFed-Party B (federation adds the A features' value).

Exact iteration-level equivalence of federated vs plaintext training is
proven separately in the unit suite (test_federated_models.py); this bench
covers breadth.  Datasets are the scaled Table 4 shapes; the WDL/DLRM
combos use reduced embedding widths to keep single-core crypto time sane.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.nonfed import (
    collocated_view,
    party_b_view,
    plain_model_like,
    train_plain,
)
from repro.comm.party import VFLConfig, VFLContext
from repro.core.models import (
    FederatedDLRM,
    FederatedLR,
    FederatedMLP,
    FederatedMLR,
    FederatedWDL,
)
from repro.core.trainer import TrainConfig, train_federated
from repro.data.partition import split_vertical
from repro.data.synthetic import (
    make_dense_classification,
    make_mixed_classification,
    make_sparse_classification,
)
from repro.utils.tabulate import format_table

KEY_BITS = 128
_rows: list[list[object]] = []

# name, model, generator kwargs, train/test sizes, epochs.  High-dim combos
# use a steeper Zipf feature popularity so a few hundred rows carry signal
# (the paper trains on millions of rows; see DESIGN.md on scaling).
COMBOS = [
    ("a9a", "lr", dict(kind="sparse", dim=123, nnz=14), 256, 128, 3),
    ("w8a", "lr", dict(kind="sparse", dim=300, nnz=12), 256, 128, 3),
    ("connect-4", "mlp", dict(kind="sparse", dim=126, nnz=42, classes=3), 256, 128, 3),
    ("news20", "mlr",
     dict(kind="sparse", dim=600, nnz=40, classes=5, zipf=1.0), 320, 128, 3),
    ("higgs", "lr", dict(kind="dense", dim=28), 256, 128, 3),
    ("avazu", "lr", dict(kind="sparse", dim=2000, nnz=14, zipf=1.1), 512, 128, 2),
    ("avazu", "wdl", dict(kind="mixed", dim=200, nnz=10, fields=4, vocab=8), 224, 96, 4),
    ("industry", "dlrm",
     dict(kind="mixed", dim=200, nnz=8, fields=4, vocab=8, seed=338), 256, 128, 5),
]


def _make_data(spec: dict, n_train: int, n_test: int, seed: int):
    n = n_train + n_test
    if spec["kind"] == "dense":
        full = make_dense_classification(n, spec["dim"], seed=seed, flip=0.03)
    elif spec["kind"] == "sparse":
        full = make_sparse_classification(
            n, spec["dim"], spec["nnz"], n_classes=spec.get("classes", 2),
            seed=seed, flip=0.03, zipf=spec.get("zipf", 0.6),
        )
    else:
        full = make_mixed_classification(
            n, sparse_dim=spec["dim"], nnz_per_row=spec["nnz"],
            n_fields=spec["fields"], vocab_size=spec["vocab"], seed=seed,
            flip=0.03,
        )
    train, test = full.subset(np.arange(n_train)), full.subset(
        np.arange(n_train, n)
    )
    return train, test


def _build_federated(model_name: str, vd, ctx):
    in_a = vd.party("A").dense_dim
    in_b = vd.party("B").dense_dim
    if model_name == "lr":
        return FederatedLR(ctx, in_a, in_b)
    if model_name == "mlr":
        return FederatedMLR(ctx, in_a, in_b, vd.n_classes)
    if model_name == "mlp":
        return FederatedMLP(ctx, in_a, in_b, hidden=[16], n_out=vd.n_classes)
    if model_name == "wdl":
        return FederatedWDL(
            ctx, in_a, in_b, vd.party("A").vocab_sizes, vd.party("B").vocab_sizes,
            emb_dim=4, deep_hidden=[8],
        )
    if model_name == "dlrm":
        return FederatedDLRM(
            ctx, in_a, in_b, vd.party("A").vocab_sizes, vd.party("B").vocab_sizes,
            emb_dim=4, arm_dim=6, top_hidden=[8],
        )
    raise ValueError(model_name)


def _plain_twin(model_name: str, view, seed=0):
    from repro.baselines.nonfed import (
        PlainDLRM, PlainLR, PlainMLP, PlainMLR, PlainWDL,
    )

    if model_name == "lr":
        return PlainLR(view.numeric_dim, seed=seed)
    if model_name == "mlr":
        return PlainMLR(view.numeric_dim, view.n_classes, seed=seed)
    if model_name == "mlp":
        return PlainMLP(view.numeric_dim, [16], view.n_classes, seed=seed)
    if model_name == "wdl":
        return PlainWDL(view.numeric_dim, view.vocab_sizes, emb_dim=4,
                        deep_hidden=[8], seed=seed)
    return PlainDLRM(view.numeric_dim, view.vocab_sizes, emb_dim=4, arm_dim=6,
                     top_hidden=[8], seed=seed)


@pytest.mark.parametrize(
    "name,model_name,spec,n_train,n_test,epochs",
    COMBOS,
    ids=[f"{c[0]}-{c[1]}" for c in COMBOS],
)
def test_fig12_combo(benchmark, report, name, model_name, spec, n_train, n_test, epochs):
    import zlib

    seed = spec.get("seed", zlib.crc32(f"{name}-{model_name}".encode()) % 1000)
    train, test = _make_data(spec, n_train, n_test, seed)
    vd_train, vd_test = split_vertical(train), split_vertical(test)
    cfg = TrainConfig(epochs=epochs, batch_size=32, lr=0.1, momentum=0.9)

    result = {}

    def run_federated():
        ctx = VFLContext(
            VFLConfig(key_bits=KEY_BITS, share_refresh="delta"), seed=13
        )
        model = _build_federated(model_name, vd_train, ctx)
        result["fed"] = train_federated(model, vd_train, cfg, test_data=vd_test)

    benchmark.pedantic(run_federated, rounds=1, iterations=1)
    fed = result["fed"]

    collocated = train_plain(
        _plain_twin(model_name, collocated_view(train)),
        collocated_view(train), cfg, collocated_view(test),
    )
    b_only = train_plain(
        _plain_twin(model_name, party_b_view(vd_train), seed=1),
        party_b_view(vd_train), cfg, party_b_view(vd_test),
    )

    _rows.append(
        [
            f"{name}, {model_name.upper()}",
            round(b_only.final_metric, 3),
            round(collocated.final_metric, 3),
            round(fed.final_metric, 3),
            f"{fed.final_metric - b_only.final_metric:+.3f}",
            f"{fed.losses[0]:.3f}->{fed.losses[-1]:.3f}",
            f"{collocated.losses[0]:.3f}->{collocated.losses[-1]:.3f}",
        ]
    )
    if (name, model_name) == (COMBOS[-1][0], COMBOS[-1][1]):
        report(
            "Figure 12 — lossless property: test AUC/accuracy of the three "
            "systems plus train-loss trajectories (BlindFL ~ collocated, "
            "> Party-B-only)",
            format_table(
                ["dataset, model", "NonFed-B", "NonFed-colloc", "BlindFL",
                 "BlindFL vs B", "BlindFL loss", "colloc loss"],
                _rows,
            ),
        )
    # Lossless within small-data noise; better than B-only on average.
    assert fed.final_metric > collocated.final_metric - 0.09
    assert fed.losses[-1] < fed.losses[0]
