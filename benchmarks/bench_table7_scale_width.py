"""Table 7: scalability w.r.t. the source layer's output dimensionality.

connect-4-like data, 3-layer MLP; the first (source) layer's width varies.
The paper reports per-batch time growing proportionally (1x / 1.91x /
3.94x / 8.06x for 32/64/128/256 hidden units) with slightly rising
accuracy; we sweep 8/16/32/64 (scaled alongside the datasets) and assert
the same near-linear scaling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.party import VFLConfig, VFLContext
from repro.core.matmul_layer import MatMulSource
from repro.core.models import FederatedMLP
from repro.core.trainer import TrainConfig, train_federated
from repro.data.partition import split_vertical
from repro.data.synthetic import make_sparse_classification
from repro.utils.tabulate import format_table
from repro.utils.timer import Timer

KEY_BITS = 128
WIDTHS = [8, 16, 32, 64]
_rows: list[tuple[int, float, float]] = []


@pytest.mark.parametrize("width", WIDTHS)
def test_table7_width(benchmark, report, width):
    full = make_sparse_classification(256, 126, 42, n_classes=3, seed=110, flip=0.03)
    vd = split_vertical(full.subset(np.arange(192)))
    vd_test = split_vertical(full.subset(np.arange(192, 256)))
    rng = np.random.default_rng(0)
    batch = vd.take_rows(rng.choice(192, 32, replace=False))
    x_a = batch.party("A").numeric_block()
    x_b = batch.party("B").numeric_block()

    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS, share_refresh="delta"), seed=17)
    layer = MatMulSource(ctx, 63, 63, width, name=f"t7-{width}")
    grad = rng.normal(size=(32, width)) * 0.01
    timer = Timer()

    def iteration():
        with timer:
            layer.forward(x_a, x_b)
            layer.backward(grad)
            layer.apply_updates(lr=0.05, momentum=0.9)

    benchmark.pedantic(iteration, rounds=1, iterations=1)

    # Validation accuracy for the same width (short run).
    ctx2 = VFLContext(VFLConfig(key_bits=KEY_BITS, share_refresh="delta"), seed=18)
    model = FederatedMLP(ctx2, 63, 63, hidden=[width, 8], n_out=3)
    cfg = TrainConfig(epochs=1, batch_size=32, lr=0.1, momentum=0.9)
    history = train_federated(model, vd, cfg, test_data=vd_test,
                              max_batches_per_epoch=4)
    _rows.append((width, timer.elapsed, history.final_metric))

    if width == WIDTHS[-1]:
        base = _rows[0][1]
        table = [
            [f"hidden={w}", round(t, 3), f"{t / base:.2f}x", round(acc, 3)]
            for w, t, acc in _rows
        ]
        report(
            "Table 7 — scalability vs source-layer output width "
            "(connect-4-like, 3-layer MLP; paper: 1x/1.91x/3.94x/8.06x)",
            format_table(
                ["config", "time/batch (s)", "relative", "val accuracy"], table
            ),
        )
        times = [t for _, t, _ in _rows]
        # Near-proportional growth: doubling width should land within a
        # generous band around 2x (fixed per-batch overheads shrink it).
        for i in range(1, len(times)):
            ratio = times[i] / times[i - 1]
            assert 1.3 < ratio < 3.0, f"width scaling ratio {ratio:.2f} off-trend"
