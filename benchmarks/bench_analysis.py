"""Static-invariant sweep: run ``repro.analysis`` over the live tree.

The analyzer (:mod:`repro.analysis`) is itself a gated artifact: the tree
it ships in must be clean, every rule must be registered, and the checker
must still *detect* — a lint pass that silently went blind would report
a clean tree forever.  So the bench records three counting-only facts,
and ``run_bench.check_analysis`` gates on all of them:

* **live sweep** — files scanned, findings (must be zero), per-rule
  finding counts, pragma suppressions in use;
* **detection self-check** — a known-bad snippet per rule, analyzed
  under its virtual in-repo path, must produce exactly that rule's code
  (the same both-directions pinning as ``tests/test_analysis.py``, but
  cheap enough to re-assert on every bench run);
* **wall time** — informational; the sweep is stdlib ``ast`` over ~70
  files and should stay well under a second.

Emits ``BENCH_analysis.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_analysis.py
    PYTHONPATH=src python benchmarks/bench_analysis.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from collections import Counter
from pathlib import Path

from repro.analysis import RULES, analyze_paths, analyze_source

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"

# One minimal must-flag probe per rule, each under the virtual path that
# puts it in the rule's scope.  The richer corpus lives in
# tests/data/analysis_fixtures/; these are the bench's canaries.
DETECTION_PROBES = {
    "BF001": (
        "src/repro/core/probe.py",
        "def f(channel, private_key):\n"
        "    channel.send('a', 'b', 't', None, private_key.crt_params)\n",
    ),
    "BF002": (
        "src/repro/crypto/probe.py",
        "import random\nx = random.random()\n",
    ),
    "BF003": (
        "src/repro/crypto/probe.py",
        "from repro.obs.tracer import get_tracer\n"
        "def f(items):\n"
        "    for it in items:\n"
        "        get_tracer().count('x', 1)\n",
    ),
    "BF004": (
        "src/repro/comm/codec.py",
        "T_INT = 1\n"
        "_TYPE_NAMES = {T_INT: 'int'}\n"
        "def encode_payload(obj):\n"
        "    return bytes([T_INT])\n"
        "def decode_payload(buf):\n"
        "    return 0\n",
    ),
    "BF005": (
        "src/repro/comm/transport.py",
        "def f():\n    raise Exception('boom')\n",
    ),
}


def run(quick: bool = False, repeat: int = 1) -> dict:
    """Sweep the live tree and self-check detection per rule."""
    best_wall = None
    findings = []
    files_scanned = 0
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        findings, files_scanned = analyze_paths([SRC_TREE])
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall = wall
    by_rule = Counter(f.rule_code for f in findings)
    detection = {}
    for code, (virtual_path, snippet) in DETECTION_PROBES.items():
        got = sorted({f.rule_code for f in analyze_source(snippet, path=virtual_path)})
        detection[code] = {"detected": got == [code], "codes": got}
    return {
        "meta": {
            "quick": quick,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "rules_registered": sorted(RULES),
        "files_scanned": files_scanned,
        "findings": len(findings),
        "zero_findings": not findings,
        "findings_by_rule": {code: by_rule.get(code, 0) for code in sorted(RULES)},
        "finding_lines": [f.format() for f in findings],
        "detection": detection,
        "wall_s": best_wall,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="single sweep, no repeats")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_analysis.json"
    )
    args = parser.parse_args(argv)
    results = run(quick=args.quick, repeat=1 if args.quick else args.repeat)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(
        f"sweep: {results['files_scanned']} files, {results['findings']} "
        f"finding(s), {len(results['rules_registered'])} rules, "
        f"{results['wall_s']:.3f}s"
    )
    for code, row in results["detection"].items():
        status = "ok" if row["detected"] else "BLIND"
        print(f"detect {code}: {status}")
    return 0 if results["zero_findings"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
