"""Microbenchmark for the flat ciphertext kernels vs the legacy object path.

Measures the primitives the BlindFL protocols spend their time in —
obfuscated encryption, ``plain @ cipher`` matmuls over an s×m×k grid,
sparse ``X.T @ cipher`` and scatter-add — on the legacy per-
``EncryptedNumber`` path, the flat kernel path, and (where exponentiations
dominate) the kernel path sharded across a
:class:`~repro.crypto.parallel.ParallelContext`.

Plaintext operands are drawn the way BlindFL's workloads look: feature
matrices are sparse *binary* (one-hot / multi-hot categorical features,
density ``--density``), which is exactly where the kernels' per-matmul
raw-mul cache collapses ``nnz`` exponentiations per ciphertext element into
one.  A dense-gaussian matmul config is included for the worst case, where
the kernels only save Python object overhead.

Emits ``BENCH_kernels.json`` at the repo root so the perf trajectory has a
baseline::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full grid
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick    # CI sizes
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.crypto.crypto_tensor import (
    CryptoTensor,
    legacy_encrypt,
    legacy_matmul_plain_cipher,
    legacy_matmul_sparse_cipher,
    legacy_scatter_add_rows,
    legacy_sparse_t_matmul_cipher,
)
from repro.crypto.crypto_tensor import (
    matmul_plain_cipher,
    sparse_matmul_cipher,
    sparse_t_matmul_cipher,
)
from repro.crypto.paillier import generate_paillier_keypair
from repro.crypto.parallel import ParallelContext
from repro.tensor.sparse import CSRMatrix

REPO_ROOT = Path(__file__).resolve().parent.parent


def _timeit(fn, repeat: int = 1) -> tuple[float, object]:
    """Best-of-``repeat`` wall time and the last result (for verification)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _feature_matrix(
    rng: np.random.Generator, s: int, m: int, kind: str, density: float
) -> np.ndarray:
    if kind == "binary":
        return (rng.random((s, m)) < density).astype(np.float64)
    return rng.normal(size=(s, m))


def bench_encrypt(pk, size: int, repeat: int, workers: int) -> dict:
    """Obfuscated encryption: legacy objects vs flat kernel vs pooled pool."""
    rng = np.random.default_rng(0)
    values = rng.normal(size=size)
    t_legacy, _ = _timeit(lambda: legacy_encrypt(pk, values, obfuscate=True), repeat)
    t_kernel, _ = _timeit(
        lambda: CryptoTensor.encrypt(pk, values, obfuscate=True), repeat
    )
    # Pool path: prefill off the hot path, then measure the drained encrypt.
    t_prefill, _ = _timeit(lambda: pk.prefill_blinding(size))
    t_pooled, _ = _timeit(lambda: CryptoTensor.encrypt(pk, values, obfuscate=True))
    entry = {
        "size": size,
        "legacy_s": t_legacy,
        "kernel_s": t_kernel,
        "pool_prefill_s": t_prefill,
        "kernel_pooled_s": t_pooled,
        "legacy_ops_per_s": size / t_legacy,
        "kernel_ops_per_s": size / t_kernel,
        "kernel_pooled_ops_per_s": size / t_pooled,
        "speedup_kernel": t_legacy / t_kernel,
        "speedup_pooled": t_legacy / t_pooled,
    }
    if workers >= 2:
        with ParallelContext(workers=workers, min_jobs=1) as ctx:
            t_par, _ = _timeit(
                lambda: CryptoTensor.encrypt(pk, values, obfuscate=True, parallel=ctx),
                repeat,
            )
        entry["kernel_parallel_s"] = t_par
        entry["kernel_parallel_ops_per_s"] = size / t_par
        entry["speedup_parallel_vs_kernel"] = t_kernel / t_par
        entry["parallel_workers"] = workers
    return entry


def bench_matmul(
    pk, sk, s: int, m: int, k: int, kind: str, density: float, repeat: int,
    workers: int, parallel_on: bool,
) -> dict:
    """``plain (s x m) @ cipher (m x k)`` across all three execution paths."""
    rng = np.random.default_rng(1)
    x = _feature_matrix(rng, s, m, kind, density)
    v = rng.normal(size=(m, k))
    enc_v = CryptoTensor.encrypt(pk, v, obfuscate=False)
    t_legacy, out_legacy = _timeit(lambda: legacy_matmul_plain_cipher(x, enc_v), repeat)
    t_kernel, out_kernel = _timeit(lambda: matmul_plain_cipher(x, enc_v), repeat)
    if not np.allclose(
        out_legacy.decrypt(sk), out_kernel.decrypt(sk), atol=1e-6
    ):  # pragma: no cover - correctness tripwire
        raise AssertionError("kernel and legacy matmul disagree")
    entry = {
        "s": s, "m": m, "k": k, "kind": kind,
        "density": density if kind == "binary" else 1.0,
        "legacy_s": t_legacy,
        "kernel_s": t_kernel,
        "legacy_matmuls_per_s": 1.0 / t_legacy,
        "kernel_matmuls_per_s": 1.0 / t_kernel,
        "speedup_kernel": t_legacy / t_kernel,
    }
    if parallel_on and workers >= 2:
        with ParallelContext(workers=workers, min_jobs=1) as ctx:
            t_par, out_par = _timeit(
                lambda: matmul_plain_cipher(x, enc_v, parallel=ctx), repeat
            )
        if not np.allclose(out_kernel.decrypt(sk), out_par.decrypt(sk), atol=1e-9):
            raise AssertionError("parallel matmul diverged from serial")
        entry["kernel_parallel_s"] = t_par
        entry["speedup_parallel_vs_kernel"] = t_kernel / t_par
        entry["speedup_parallel_vs_legacy"] = t_legacy / t_par
        entry["parallel_workers"] = workers
    return entry


def bench_sparse(
    pk, sk, batch: int, m: int, k: int, density: float, repeat: int
) -> dict:
    """CSR forward (``X @ [[V]]``) and backward (``X.T @ [[gZ]]``) products."""
    rng = np.random.default_rng(2)
    x = CSRMatrix.from_dense(_feature_matrix(rng, batch, m, "binary", density))
    v = rng.normal(size=(m, k))
    gz = rng.normal(size=(batch, k))
    enc_v = CryptoTensor.encrypt(pk, v, obfuscate=False)
    enc_gz = CryptoTensor.encrypt(pk, gz, obfuscate=False)
    t_fwd_legacy, o1 = _timeit(lambda: legacy_matmul_sparse_cipher(x, enc_v), repeat)
    t_fwd_kernel, o2 = _timeit(lambda: sparse_matmul_cipher(x, enc_v), repeat)
    t_bwd_legacy, o3 = _timeit(lambda: legacy_sparse_t_matmul_cipher(x, enc_gz), repeat)
    t_bwd_kernel, o4 = _timeit(lambda: sparse_t_matmul_cipher(x, enc_gz), repeat)
    if not np.allclose(o1.decrypt(sk), o2.decrypt(sk), atol=1e-6):
        raise AssertionError("kernel and legacy sparse forward disagree")
    if not np.allclose(o3.decrypt(sk), o4.decrypt(sk), atol=1e-6):
        raise AssertionError("kernel and legacy sparse backward disagree")
    return {
        "batch": batch, "m": m, "k": k, "density": density, "nnz": x.nnz,
        "fwd_legacy_s": t_fwd_legacy,
        "fwd_kernel_s": t_fwd_kernel,
        "fwd_speedup": t_fwd_legacy / t_fwd_kernel,
        "bwd_legacy_s": t_bwd_legacy,
        "bwd_kernel_s": t_bwd_kernel,
        "bwd_speedup": t_bwd_legacy / t_bwd_kernel,
    }


def bench_scatter(pk, sk, batch: int, dim: int, rows: int, repeat: int) -> dict:
    """Encrypted ``lkup_bw`` (scatter-add): pure-mulmod kernel vs objects.

    The kernel blinds untouched table rows (the legacy path leaves them as
    the recognisable raw residue ``1``); production draws those blinders
    from the precomputed pool refilled off the hot path, so the bench
    prefills accordingly and times the in-batch cost.
    """
    rng = np.random.default_rng(3)
    grads = rng.normal(size=(batch, dim))
    idx = rng.integers(0, rows, size=batch)
    enc = CryptoTensor.encrypt(pk, grads, obfuscate=False)
    t_legacy, o1 = _timeit(lambda: legacy_scatter_add_rows(enc, idx, rows), repeat)
    pk.prefill_blinding((repeat + 1) * rows * dim)
    t_kernel, o2 = _timeit(lambda: enc.scatter_add_rows(idx, num_rows=rows), repeat)
    if not np.allclose(o1.decrypt(sk), o2.decrypt(sk), atol=1e-6):
        raise AssertionError("kernel and legacy scatter-add disagree")
    return {
        "batch": batch, "dim": dim, "rows": rows,
        "legacy_s": t_legacy,
        "kernel_s": t_kernel,
        "speedup_kernel": t_legacy / t_kernel,
    }


def run(
    key_bits: int = 256,
    quick: bool = False,
    workers: int = 2,
    density: float = 0.3,
    repeat: int = 1,
) -> dict:
    pk, sk = generate_paillier_keypair(key_bits, seed=12345)
    if quick:
        encrypt_size = 64
        matmul_grid = [(8, 16, 4, "binary"), (16, 32, 8, "binary")]
        parallel_from = 10**9  # never — quick mode stays serial
        sparse_cfg = (16, 64, 4)
        scatter_cfg = (32, 4, 16)
    else:
        encrypt_size = 256
        matmul_grid = [
            (8, 16, 4, "binary"),
            (32, 64, 16, "binary"),   # the acceptance config
            (32, 64, 16, "gaussian"),  # dense worst case for the raw-mul cache
            (64, 128, 16, "binary"),  # large config, parallel measured here
        ]
        parallel_from = 64 * 128 * 16
        sparse_cfg = (64, 256, 8)
        scatter_cfg = (128, 8, 64)
    results: dict = {
        "meta": {
            "key_bits": key_bits,
            "quick": quick,
            "parallel_workers": workers,
            "binary_density": density,
            "python": platform.python_version(),
            "machine": platform.machine(),
            # Parallel speedup requires real cores; on a 1-CPU box the
            # 2-worker numbers measure pure dispatch overhead.
            "cpu_count": os.cpu_count(),
        },
        "encrypt": bench_encrypt(pk, encrypt_size, repeat, workers),
        "matmul_plain_cipher": [
            bench_matmul(
                pk, sk, s, m, k, kind, density, repeat, workers,
                parallel_on=(s * m * k >= parallel_from),
            )
            for s, m, k, kind in matmul_grid
        ],
        "sparse_matmul": bench_sparse(pk, sk, *sparse_cfg, density, repeat),
        "scatter_add": bench_scatter(pk, sk, *scatter_cfg, repeat),
    }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--key-bits", type=int, default=256)
    parser.add_argument("--quick", action="store_true", help="small CI-sized grid")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--density", type=float, default=0.3)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_kernels.json"
    )
    args = parser.parse_args(argv)
    results = run(
        key_bits=args.key_bits,
        quick=args.quick,
        workers=args.workers,
        density=args.density,
        repeat=args.repeat,
    )
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    for entry in results["matmul_plain_cipher"]:
        line = (
            f"matmul {entry['s']}x{entry['m']}x{entry['k']} ({entry['kind']}): "
            f"legacy {entry['legacy_s']:.3f}s  kernel {entry['kernel_s']:.3f}s  "
            f"speedup {entry['speedup_kernel']:.2f}x"
        )
        if "speedup_parallel_vs_kernel" in entry:
            line += (
                f"  parallel({entry['parallel_workers']}w) "
                f"{entry['kernel_parallel_s']:.3f}s "
                f"({entry['speedup_parallel_vs_kernel']:.2f}x over serial kernel)"
            )
        print(line)
    sp = results["sparse_matmul"]
    print(
        f"sparse fwd speedup {sp['fwd_speedup']:.2f}x, bwd speedup "
        f"{sp['bwd_speedup']:.2f}x; scatter-add speedup "
        f"{results['scatter_add']['speedup_kernel']:.2f}x; encrypt kernel "
        f"{results['encrypt']['speedup_kernel']:.2f}x "
        f"(pooled {results['encrypt']['speedup_pooled']:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
