"""N-party fabric benchmark: blocking vs pipelined endpoint grids.

Runs one 3-endpoint federation (two Party A processes + the key owner)
twice — async sends off and on — and emits the evidence behind the
fabric's two claims, gated by ``run_bench.check_fabric``:

* **determinism** — both runs' losses are float-exact against the
  all-local in-memory reference and the pooled per-endpoint weight
  pieces are array-equal: pipelining reorders wall clock, never frames;
* **clean links** — every per-peer ledger counts zero recovery traffic
  (loopback, fault-free), envelope bytes are exactly ``ENV_OVERHEAD``
  per DATA frame, and the grid is a star: Party A endpoints only ever
  link to the key owner;
* **chaos survival** — a third run injects a deterministic
  drop+corrupt+duplicate schedule on the one A1→B link: delivery stays
  100% (sender's logical frames == receiver's accepted frames), losses
  and weight pieces stay bit-identical to the all-local reference, the
  faulted link's ledgers show the recovery actually happened
  (NAKs, retransmits, dropped corruption/duplicates all nonzero), and
  the untouched A2↔B link still counts zero recovery traffic.

Wall clock and the cross-role batch-overlap seconds (from the merged
per-endpoint traces, see :mod:`repro.obs.collect`) are informational —
the 1-CPU CI box cannot show a real pipelining win, so nothing times is
gated.

Emits ``BENCH_fabric.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_fabric.py
    PYTHONPATH=src python benchmarks/bench_fabric.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.comm.fabric import run_federation
from repro.comm.faults import FaultEvent, FaultPlan
from repro.comm.party import VFLConfig, VFLContext
from repro.comm.transport import ENV_OVERHEAD
from repro.core.multiparty import MultiPartyLR
from repro.obs import JsonlSink, Tracer, use_tracer
from repro.obs import span as obs_span
from repro.obs.collect import cross_role_overlap, merge_traces, read_jsonl_trace

REPO_ROOT = Path(__file__).resolve().parent.parent

FABRIC_TIMEOUT = 90.0
GRID = {"ep_a1": ("A1",), "ep_a2": ("A2",), "ep_b": ("B",)}
IN_DIMS = {"A1": 4, "A2": 3}
IN_B = 3
N_ROWS = 16
LR = 0.1

# Chaos row: a fixed fault schedule on the one A1→B direction.  Explicit
# events rather than seeded rates — the quick run pushes only a handful
# of frames down that link, and the row is gated on every fault class
# visibly firing *and* recovering.
FAULT_PLANS = {
    ("ep_a1", "ep_b"): FaultPlan(
        events=(
            FaultEvent(2, "corrupt"),
            FaultEvent(4, "drop"),
            FaultEvent(6, "duplicate"),
        )
    )
}
FAULT_SOCK_TIMEOUT = 0.5


def _data():
    rng = np.random.default_rng(1234)
    x = {
        "A1": rng.normal(size=(N_ROWS, IN_DIMS["A1"])),
        "A2": rng.normal(size=(N_ROWS, IN_DIMS["A2"])),
        "B": rng.normal(size=(N_ROWS, IN_B)),
    }
    y = (rng.random(N_ROWS) < 0.5).astype(np.float64)
    return x, y


def _build(channel=None):
    local = getattr(channel, "local_parties", None)
    ctx = VFLContext(
        VFLConfig(key_bits=128),
        seed=31,
        n_a_parties=2,
        channel=channel,
        local_parties=local,
    )
    return ctx, MultiPartyLR(ctx, dict(IN_DIMS), IN_B)


def fabric_program(channel, steps, trace_dir):
    """Per-endpoint side of the benchmark run (module scope: picklable)."""
    ctx, model = _build(channel)
    x_full, y = _data()
    x = {k: v for k, v in x_full.items() if ctx.is_local(k)}
    labels = y if ctx.is_local("B") else None
    tracer = None
    if trace_dir is not None:
        tracer = Tracer(
            sink=JsonlSink(os.path.join(trace_dir, f"{channel.role}.jsonl"))
        )
    losses = []
    with use_tracer(tracer):
        for k in range(steps):
            with obs_span("batch", batch=k):
                losses.append(model.train_step(x, labels, lr=LR))
    return {
        "losses": losses,
        "pieces": model.source.local_weight_pieces(),
    }


def _reference(steps: int):
    ctx, model = _build()
    x, y = _data()
    losses = [model.train_step(x, y, lr=LR) for _ in range(steps)]
    return losses, model.source.local_weight_pieces()


def _fabric_run(
    steps: int,
    pipeline: bool,
    trace_dir: str | None,
    fault_plans: dict | None = None,
    sock_timeout: float | None = None,
) -> dict:
    start = time.perf_counter()
    out = run_federation(
        fabric_program,
        (steps, trace_dir),
        roles=GRID,
        timeout=FABRIC_TIMEOUT,
        pipeline=pipeline,
        fault_plans=fault_plans,
        sock_timeout=sock_timeout,
    )
    wall = time.perf_counter() - start
    results = out["results"]
    pooled: dict[str, np.ndarray] = {}
    for role in GRID:
        pooled.update(results[role]["pieces"])
    return {
        "pipeline": pipeline,
        "wall_s": wall,
        "losses": results["ep_b"]["losses"],
        "pooled_pieces": pooled,
        "link_stats": out["link_stats"],
    }


def run(quick: bool = False) -> dict:
    steps = 3 if quick else 6
    ref_losses, ref_pieces = _reference(steps)

    blocking = _fabric_run(steps, pipeline=False, trace_dir=None)
    trace_dir = tempfile.mkdtemp(prefix="bench_fabric_")
    pipelined = _fabric_run(steps, pipeline=True, trace_dir=trace_dir)
    faulted = _fabric_run(
        steps,
        pipeline=False,
        trace_dir=None,
        fault_plans=FAULT_PLANS,
        sock_timeout=FAULT_SOCK_TIMEOUT,
    )
    traces = {
        role: read_jsonl_trace(os.path.join(trace_dir, f"{role}.jsonl"))
        for role in GRID
    }
    merged = merge_traces(traces)
    overlap_s = cross_role_overlap(merged, phase="batch")

    def summarise(row: dict) -> dict:
        pooled = row.pop("pooled_pieces")
        return {
            **row,
            "losses_match_memory": row["losses"] == ref_losses,
            "pieces_match_memory": set(pooled) == set(ref_pieces)
            and all(
                np.array_equal(pooled[name], ref_pieces[name])
                for name in ref_pieces
            ),
        }

    return {
        "meta": {
            "quick": quick,
            "steps": steps,
            "grid": {role: list(parties) for role, parties in GRID.items()},
            "env_overhead": ENV_OVERHEAD,
            "faulted_link": ["ep_a1", "ep_b"],
            "fault_schedule": [
                [ev.frame, ev.action]
                for ev in FAULT_PLANS[("ep_a1", "ep_b")].events
            ],
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "memory_losses": ref_losses,
        "blocking": summarise(blocking),
        "pipelined": summarise(pipelined),
        "faulted": summarise(faulted),
        "overlap_s": overlap_s,
        "n_spans_merged": len(merged),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized run")
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_fabric.json"
    )
    args = parser.parse_args(argv)
    results = run(quick=args.quick)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    for mode in ("blocking", "pipelined", "faulted"):
        row = results[mode]
        b_stats = row["link_stats"]["ep_b"]
        frames = sum(s["data_sent"] + s["data_received"] for s in b_stats.values())
        print(
            f"{mode}: {row['wall_s']:.2f}s for {results['meta']['steps']} steps, "
            f"losses_match={row['losses_match_memory']}, "
            f"pieces_match={row['pieces_match_memory']}, "
            f"{frames} frames through the key owner"
        )
    a1 = results["faulted"]["link_stats"]["ep_a1"]["ep_b"]
    b = results["faulted"]["link_stats"]["ep_b"]["ep_a1"]
    print(
        f"faulted A1->B recovery: {a1['retransmits']} retransmits / "
        f"{b['naks_sent']} NAKs / {b['corrupt_dropped']} corrupt + "
        f"{b['duplicates_dropped']} duplicates dropped"
    )
    print(
        f"cross-role batch overlap (pipelined, informational): "
        f"{results['overlap_s'] * 1e3:.1f}ms over {results['n_spans_merged']} spans"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
