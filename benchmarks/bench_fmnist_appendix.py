"""Table 6 + Figure 15 (Appendix D.1): Fashion-MNIST MLP.

Each image is split into two halves to simulate the VFL partitioning; the
MLP's first layer is the MatMul source layer.  Two results:

* Table 6 — per-batch time: BlindFL faster than SecureML-crypto, slower
  than client-aided (dense data, so no sparsity to exploit);
* Figure 15 — lossless: BlindFL ~ NonFed-collocated > NonFed-Party-B.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.nonfed import (
    PlainMLP,
    collocated_view,
    party_b_view,
    train_plain,
)
from repro.baselines.secureml import SecureMLCostModel, SecureMLMatMul, outsource
from repro.comm.party import VFLConfig, VFLContext
from repro.core.matmul_layer import MatMulSource
from repro.core.models import FederatedMLP
from repro.core.trainer import TrainConfig, train_federated
from repro.crypto.beaver import encode_ring, share_ring
from repro.data.partition import split_vertical
from repro.data.synthetic import make_image_like
from repro.utils.tabulate import format_table
from repro.utils.timer import Timer

KEY_BITS = 128
BATCH = 16
DIM = 784
HIDDEN = 8
N_CLASSES = 10


def test_table6_fmnist_efficiency(benchmark, report):
    rng = np.random.default_rng(0)
    images = make_image_like(BATCH, n_classes=N_CLASSES, seed=100)
    vd = split_vertical(images)
    x_a = vd.party("A").x_dense
    x_b = vd.party("B").x_dense

    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=14)
    layer = MatMulSource(ctx, DIM // 2, DIM - DIM // 2, HIDDEN, name="t6")
    grad = rng.normal(size=(BATCH, HIDDEN)) * 0.01
    timer = Timer()

    def blindfl_iteration():
        with timer:
            layer.forward(x_a, x_b)
            layer.backward(grad)
            layer.apply_updates(lr=0.05, momentum=0.9)

    benchmark.pedantic(blindfl_iteration, rounds=1, iterations=1)
    blindfl_s = timer.elapsed

    crypto = SecureMLMatMul(rng, triple_source="crypto", seed=15)
    cost = SecureMLCostModel.calibrate(crypto, n=2, m=8, k=1)
    predicted = cost.predict_seconds(BATCH, DIM, HIDDEN) + cost.predict_seconds(
        DIM, BATCH, HIDDEN
    )

    client = SecureMLMatMul(rng, triple_source="client")
    dense = np.hstack([x_a, x_b])
    x_sh = outsource(dense, rng)
    w_sh = share_ring(encode_ring(rng.normal(size=(DIM, HIDDEN)) * 0.1), rng)
    client_timer = Timer()
    with client_timer:
        client.training_iteration(x_sh, w_sh)

    report(
        "Table 6 — fmnist MLP, time per mini-batch (s)",
        format_table(
            ["dataset", "model", "BlindFL", "SecureML (extrap)", "SecureML(client)"],
            [[
                "fmnist (Dense)", "MLP", round(blindfl_s, 3),
                f"~{predicted:.0f}", round(client_timer.elapsed, 4),
            ]],
        ),
    )
    # The paper's ordering: client-aided < BlindFL < SecureML.
    assert client_timer.elapsed < blindfl_s < predicted


def test_fig15_fmnist_lossless(benchmark, report):
    # Class signal is concentrated in Party A's half (top_half_boost) so the
    # B-only baseline genuinely underperforms, as in the paper's Figure 15.
    full = make_image_like(
        288, n_classes=N_CLASSES, seed=101, noise=1.5, top_half_boost=2.5
    )
    train = full.subset(np.arange(160))
    test = full.subset(np.arange(160, 288))
    vd_train, vd_test = split_vertical(train), split_vertical(test)
    cfg = TrainConfig(epochs=2, batch_size=32, lr=0.05, momentum=0.9)

    result = {}

    def run_federated():
        ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=16)
        model = FederatedMLP(
            ctx, DIM // 2, DIM - DIM // 2, hidden=[HIDDEN], n_out=N_CLASSES
        )
        result["fed"] = train_federated(model, vd_train, cfg, test_data=vd_test)

    benchmark.pedantic(run_federated, rounds=1, iterations=1)
    fed = result["fed"]

    collocated = train_plain(
        PlainMLP(DIM, [HIDDEN], N_CLASSES),
        collocated_view(train), cfg, collocated_view(test),
    )
    b_only = train_plain(
        PlainMLP(DIM // 2, [HIDDEN], N_CLASSES, seed=1),
        party_b_view(vd_train), cfg, party_b_view(vd_test),
    )
    report(
        "Figure 15 — fmnist MLP lossless check (test accuracy; 10 classes, "
        "chance = 0.1)",
        format_table(
            ["system", "test accuracy", "train loss"],
            [
                ["NonFed-Party B", round(b_only.final_metric, 3),
                 f"{b_only.losses[0]:.2f}->{b_only.losses[-1]:.2f}"],
                ["NonFed-collocated", round(collocated.final_metric, 3),
                 f"{collocated.losses[0]:.2f}->{collocated.losses[-1]:.2f}"],
                ["BlindFL", round(fed.final_metric, 3),
                 f"{fed.losses[0]:.2f}->{fed.losses[-1]:.2f}"],
            ],
        ),
    )
    assert fed.final_metric > 0.3  # well above 10-class chance
    assert fed.final_metric > b_only.final_metric  # A's half adds real signal
    assert fed.final_metric > collocated.final_metric - 0.12
