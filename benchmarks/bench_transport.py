"""Microbenchmark for the reliable link's retransmission overhead.

The reliability sublayer (ack/NAK retransmission, see
:mod:`repro.comm.transport`) must be *free on a clean link*: acks
piggyback on DATA envelopes, NAKs are receiver-driven, and nothing is
ever sent twice unless something was actually lost.  The measurable
claim, and the gate in ``run_bench.check_transport``, is counting-only
(wall clock on a loopback socketpair is all syscall noise):

* **fault rate 0** — zero retransmits, zero NAKs, zero duplicates, zero
  extra frames; link overhead is exactly ``ENV_OVERHEAD`` bytes per
  codec frame, and every byte beyond that is protocol payload;
* **fault rate > 0** (informational row) — the same transfer completes,
  delivering every frame exactly once, with the recovery traffic
  visible in the stats instead of hidden in the accounting.

Emits ``BENCH_transport.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_transport.py
    PYTHONPATH=src python benchmarks/bench_transport.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import socket
import threading
import time
from pathlib import Path

import numpy as np

from repro.comm import codec
from repro.comm.faults import FaultPlan, FaultySocket
from repro.comm.message import MessageKind
from repro.comm.transport import (
    ENV_OVERHEAD,
    ReliableLink,
    RetryPolicy,
    run_two_party,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

TWO_PARTY_TIMEOUT = 60.0


def _retry() -> RetryPolicy:
    return RetryPolicy(max_retries=8, base_delay=0.02, max_delay=0.2,
                       jitter=0.1, seed=1)


def _exchange(n_rounds: int, payload_elems: int, plan: FaultPlan | None) -> dict:
    """Ping-pong ``n_rounds`` codec frames through a link.

    The mirrored protocol is lockstep — every send is answered before the
    next — so the bench uses the same shape: side A sends and waits for
    the echo, side B echoes every frame.  Each ``recv_frame`` services
    pending NAKs, and piggybacked acks keep the resend buffer at one
    frame, exactly as in a real training run.  ``plan`` (if any) faults
    side A's outgoing DATA envelopes.
    """
    frame = codec.encode_payload_frame(np.arange(payload_elems, dtype=np.float64))
    raw_a, raw_b = socket.socketpair()
    raw_a.settimeout(0.5)
    raw_b.settimeout(0.5)
    sock_a = FaultySocket(raw_a, plan) if plan is not None else raw_a
    link_a = ReliableLink(sock_a, retry=_retry())
    link_b = ReliableLink(raw_b, retry=_retry())
    echoed = 0
    errors: list[BaseException] = []

    def echo_side() -> None:
        nonlocal echoed
        try:
            for _ in range(n_rounds):
                body = link_b.recv_frame()
                link_b.send_frame(body)
                echoed += 1
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    thread = threading.Thread(target=echo_side, daemon=True)
    start = time.perf_counter()
    thread.start()
    for _ in range(n_rounds):
        link_a.send_frame(frame)
        link_a.recv_frame()
    elapsed = time.perf_counter() - start
    thread.join(timeout=30.0)
    try:
        if errors:
            raise errors[0]
        if thread.is_alive():
            raise RuntimeError("bench echo thread wedged")
        return {
            "rounds": n_rounds,
            "frame_bytes": len(frame),
            "payload_elems": payload_elems,
            "echoed": echoed,
            "wall_s": elapsed,
            "round_trips_per_s": n_rounds / elapsed if elapsed > 0 else None,
            "protocol_bytes": 2 * n_rounds * len(frame),
            "env_overhead_per_frame": ENV_OVERHEAD,
            "sender": link_a.stats.as_dict(),
            "receiver": link_b.stats.as_dict(),
        }
    finally:
        for s in (raw_a, raw_b):
            try:
                s.close()
            except OSError:
                pass


def pingpong_program(channel, n_rounds, payload_elems):
    """Mirrored cross-process ping-pong (module scope: picklable by spawn).

    Both endpoints execute the same sends, as every NetworkChannel program
    does; the channel routes each message locally or over the socket
    depending on which party lives where.  Link stats deliberately are
    NOT returned here — the bench reads them from ``run_two_party``'s
    ``link_stats`` key to exercise that surfacing path.
    """
    payload = np.arange(payload_elems, dtype=np.float64)
    for i in range(n_rounds):
        channel.send("A", "B", f"ping.{i}", payload, MessageKind.PUBLIC)
        channel.recv("B", f"ping.{i}")
        channel.send("B", "A", f"pong.{i}", payload, MessageKind.PUBLIC)
        channel.recv("A", f"pong.{i}")
    return {"bytes_by_sender": dict(channel.bytes_by_sender)}


def _two_party(n_rounds: int, payload_elems: int) -> dict:
    """Real two-process run; recovery counters come from the return value."""
    start = time.perf_counter()
    results = run_two_party(
        pingpong_program, (n_rounds, payload_elems),
        timeout=TWO_PARTY_TIMEOUT, sock_timeout=0.5, retry=_retry(),
    )
    elapsed = time.perf_counter() - start
    stats = results["link_stats"]
    return {
        "rounds": n_rounds,
        "payload_elems": payload_elems,
        "wall_s": elapsed,
        "bytes_by_sender": results["results"]["guest"]["bytes_by_sender"],
        "guest": stats["guest"],
        "host": stats["host"],
    }


def run(quick: bool = False, repeat: int = 1) -> dict:
    """The grid: clean rows (gated) plus one faulted row (informational)."""
    if quick:
        clean_cases = [(64, 16), (64, 512)]
        faulted_rounds, faulted_elems = 64, 64
    else:
        clean_cases = [(256, 16), (256, 512), (1024, 128)]
        faulted_rounds, faulted_elems = 256, 128
    clean_rows = []
    for n_rounds, elems in clean_cases:
        best = None
        for _ in range(repeat):
            row = _exchange(n_rounds, elems, plan=None)
            if best is None or row["wall_s"] < best["wall_s"]:
                best = row
        clean_rows.append(best)
    plan = FaultPlan.seeded(
        97, frames=faulted_rounds * 2, drop_rate=0.05, corrupt_rate=0.05,
        duplicate_rate=0.03,
    )
    faulted_row = _exchange(faulted_rounds, faulted_elems, plan=plan)
    faulted_row["fault_plan"] = {
        "seed": plan.seed,
        "events": len(plan.events),
        "drop_rate": 0.05,
        "corrupt_rate": 0.05,
        "duplicate_rate": 0.03,
    }
    two_party_row = _two_party(16 if quick else 64, 64)
    return {
        "meta": {
            "quick": quick,
            "env_overhead": ENV_OVERHEAD,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "clean": clean_rows,
        "faulted": faulted_row,
        "two_party": two_party_row,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized grid")
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_transport.json"
    )
    args = parser.parse_args(argv)
    results = run(quick=args.quick, repeat=args.repeat)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    for row in results["clean"]:
        stats = row["sender"]
        print(
            f"clean {row['rounds']}x{row['frame_bytes']}B: "
            f"{row['round_trips_per_s']:.0f} round-trips/s, retransmits "
            f"{stats['retransmits']}, naks {row['receiver']['naks_sent']}, "
            f"overhead {ENV_OVERHEAD}B/frame"
        )
    f = results["faulted"]
    print(
        f"faulted {f['rounds']}x{f['frame_bytes']}B: echoed "
        f"{f['echoed']}/{f['rounds']}, retransmits "
        f"{f['sender']['retransmits']}, naks {f['receiver']['naks_sent']}, "
        f"duplicates dropped {f['receiver']['duplicates_dropped']}"
    )
    tp = results["two_party"]
    print(
        f"two-party {tp['rounds']} rounds: guest data_sent "
        f"{tp['guest']['data_sent']}, host data_sent {tp['host']['data_sent']}, "
        f"fins {tp['guest']['fins']}+{tp['host']['fins']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
