"""Quickstart: two-party federated logistic regression with BlindFL.

Walks the full VFL pipeline of the paper:

1. two parties discover their overlapping instances with PSI;
2. a federated LR is trained with the MatMul source layer (Figure 6) —
   neither party ever sees the other's features, the model weights, or
   any unaggregated activation.  The run uses the *serializing* channel
   tier, so every cross-party value actually round-trips through the wire
   codec and the reported communication is measured frame bytes, not an
   estimate (see examples/two_process_sockets.py for the same protocol
   over real TCP between separate OS processes);
3. the result is compared against the two non-federated yardsticks
   (collocated and Party-B-only) to show the lossless property.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import collocated_view, party_b_view, train_plain, PlainLR
from repro.comm import VFLConfig, VFLContext
from repro.core import FederatedLR, TrainConfig, train_federated
from repro.data import hashed_psi, make_dense_classification, split_vertical


def main() -> None:
    # ------------------------------------------------------------------ data
    # A bank (Party B, holds labels: did the customer default?) and a social
    # platform (Party A) each hold 12 features for an overlapping user set.
    full = make_dense_classification(n=400, dim=24, seed=7, flip=0.05)
    train, test = full.subset(np.arange(300)), full.subset(np.arange(300, 400))

    # -------------------------------------------------------------------- PSI
    # Parties only share salted hashes of user ids; the intersection aligns
    # their rows without revealing non-members.
    ids_a = [f"user-{i}" for i in range(0, 300)]  # platform's users
    ids_b = [f"user-{i}" for i in range(0, 300)]  # bank's users (same here)
    psi = hashed_psi(ids_a, ids_b)
    print(f"PSI aligned {len(psi.ids)} overlapping instances")

    train_vd = split_vertical(train)
    test_vd = split_vertical(test)

    # ------------------------------------------------------------- federated
    # channel="serializing": every payload crosses as honest bytes
    # (encode -> decode per send) and byte counts are measured frames.
    ctx = VFLContext(VFLConfig(key_bits=256, channel="serializing"), seed=0)
    model = FederatedLR(ctx, in_a=12, in_b=12)
    config = TrainConfig(epochs=3, batch_size=32, lr=0.1, momentum=0.9)
    history = train_federated(model, train_vd, config, test_data=test_vd)
    print(f"BlindFL           test AUC: {history.final_metric:.3f}")
    mb = ctx.channel.total_bytes() / 2**20
    print(f"  (communication: {mb:.1f} MiB of measured wire frames, "
          f"{len(ctx.channel.transcript)} protocol messages, zero plaintext)")

    # -------------------------------------------------------------- baselines
    collocated = train_plain(
        PlainLR(24), collocated_view(train), config, collocated_view(test)
    )
    b_only = train_plain(
        PlainLR(12, seed=1), party_b_view(train_vd), config, party_b_view(test_vd)
    )
    print(f"NonFed-collocated test AUC: {collocated.final_metric:.3f}")
    print(f"NonFed-Party B    test AUC: {b_only.final_metric:.3f}")
    print(
        "\nLossless check: BlindFL ~= collocated "
        f"(diff {abs(history.final_metric - collocated.final_metric):.3f}), "
        f"and beats Party-B-only by {history.final_metric - b_only.final_metric:+.3f}"
    )


if __name__ == "__main__":
    main()
