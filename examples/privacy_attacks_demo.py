"""Privacy-attack demonstration: why local bottom models leak (§3, §7.2).

Reproduces the paper's two headline attacks against split learning and
shows both fail against BlindFL:

1. forward-activation attack (Figure 9): Party A predicts the labels from
   its own bottom-model output ``X_A W_A``;
2. backward-derivative attack (Figure 10): Party A clusters the plaintext
   ``grad_E_A`` it receives by cosine direction and recovers the batch
   labels.

Run:  python examples/privacy_attacks_demo.py
"""

import numpy as np

from repro.attacks import (
    activation_attack_score,
    attack_accuracy_over_batches,
)
from repro.baselines import SplitLinear, SplitWDL, train_split_linear, train_split_wdl
from repro.comm import VFLConfig, VFLContext
from repro.core import FederatedLR, FederatedSGD
from repro.data import BatchLoader, make_dense_classification, make_mixed_classification, split_vertical
from repro.tensor.losses import bce_with_logits
from repro.core.trainer import TrainConfig


def main() -> None:
    cfg = TrainConfig(epochs=3, batch_size=32, lr=0.1, momentum=0.9)

    # ----------------------------------------------- attack 1: activations
    full = make_dense_classification(360, 24, seed=31, flip=0.03, nonlinear=False)
    train = split_vertical(full.subset(np.arange(260)))
    test = split_vertical(full.subset(np.arange(260, 360)))

    split_model = SplitLinear(12, 12, seed=0)
    record = train_split_linear(split_model, train, test, cfg)
    split_leak = activation_attack_score(record.za_per_epoch[-1], test.y)

    ctx = VFLContext(VFLConfig(key_bits=128), seed=3)
    fed = FederatedLR(ctx, 12, 12)
    opt = FederatedSGD(fed, lr=cfg.lr, momentum=cfg.momentum)
    rng = np.random.default_rng(0)
    for _ in range(cfg.epochs):
        for batch in BatchLoader(train, cfg.batch_size, rng=rng):
            out = fed.forward(batch, train=True)
            opt.zero_grad()
            loss = bce_with_logits(out, batch.y)
            loss.backward()
            fed.backward_sources()
            opt.step()
    blind_leak = activation_attack_score(
        test.party("A").x_dense @ fed.source._a.u, test.y
    )
    print("Attack 1 — Party A predicts labels from its forward values")
    print(f"  split learning (X_A W_A):  AUC {split_leak:.3f}   <- leaks")
    print(f"  BlindFL       (X_A U_A):  AUC {blind_leak:.3f}   <- coin flip")

    # ---------------------------------------------- attack 2: derivatives
    mixed = make_mixed_classification(
        256, sparse_dim=40, nnz_per_row=6, n_fields=4, vocab_size=10, seed=32
    )
    vd = split_vertical(mixed)
    wdl = SplitWDL(
        vd.party("A").vocab_sizes, vd.party("B").vocab_sizes,
        emb_dim=8, n_hidden=3, hidden_dim=32,
    )
    rec = train_split_wdl(wdl, vd, TrainConfig(epochs=3, batch_size=32, lr=0.1))
    grad_attack = attack_accuracy_over_batches(rec.grad_e_a, rec.grad_labels)
    print("\nAttack 2 — Party A clusters the derivatives it receives")
    print(f"  split learning (grad_E_A plaintext): {grad_attack:.1%} of labels")
    print(
        "  BlindFL: Party A only ever receives [[grad_E_A]] *encrypted* under\n"
        "  Party B's key — there is nothing to cluster (structural immunity)."
    )


if __name__ == "__main__":
    main()
