"""Trace quickstart: where does federated training actually spend?

Trains the quickstart's federated LR for two batches with telemetry
switched on (``TrainConfig.telemetry="memory"``), then folds the trace
into the paper's computation-vs-communication breakdown (Table 5's
shape): per party and per phase, wall/own seconds, modular
exponentiations, ciphertexts moved, and measured wire bytes.

The counters are exact, not sampled — ``pow.*`` counts every modular
exponentiation by exponent class, ``bytes.sent.<party>`` mirrors the
channel's own ledger byte-for-byte (asserted here), and a re-run with the
same seeds reproduces the same totals.  Set ``telemetry="jsonl"`` or
``"chrome"`` (plus ``telemetry_path``) to export the same spans to a file
instead of memory; chrome traces load in ``chrome://tracing`` / Perfetto
with one lane per party.

Run:  python examples/trace_quickstart.py
"""

from repro.comm import VFLConfig, VFLContext
from repro.core import FederatedLR, TrainConfig, train_federated
from repro.data import make_dense_classification, split_vertical
from repro.obs import counter_totals, fold_trace, format_report


def main() -> None:
    # Same setup as examples/quickstart.py, shrunk to two batches — the
    # point here is the trace, not the model.  The serializing channel
    # makes every traced byte a real encoded wire frame.
    full = make_dense_classification(n=64, dim=24, seed=7, flip=0.05)
    train_vd = split_vertical(full)

    ctx = VFLContext(VFLConfig(key_bits=256), seed=0)
    model = FederatedLR(ctx, in_a=12, in_b=12)
    config = TrainConfig(
        epochs=1, batch_size=32, lr=0.1, momentum=0.9,
        channel="serializing", telemetry="memory",
    )
    history = train_federated(model, train_vd, config, max_batches_per_epoch=2)

    # History.trace carries the closed spans; fold them into the paper's
    # per-party phase table and print it.
    print(format_report(fold_trace(history.trace)))

    # The headline property: traced counters ARE the channel's accounting.
    totals = counter_totals(history.trace)
    for party, nbytes in sorted(ctx.channel.bytes_by_sender.items()):
        traced = totals[f"bytes.sent.{party}"]
        assert traced == nbytes, (party, traced, nbytes)
        print(f"party {party}: traced {traced} B == channel ledger {nbytes} B")
    pows = sum(v for k, v in totals.items() if k.startswith("pow."))
    print(
        f"total modular exponentiations: {pows} "
        f"({totals.get('ct.encrypted', 0)} ct encrypted, "
        f"{totals.get('ct.decrypted', 0)} ct decrypted)"
    )


if __name__ == "__main__":
    main()
