"""Credit-risk scoring with a federated Wide & Deep model.

The paper's motivating Fintech scenario (§1): a lender (Party B) holds
repayment labels plus its own transaction features; a consumer platform
(Party A) holds behavioural features for the same customers.  The WDL
model (Figure 5) uses *two* federated source layers:

* a MatMul layer over the sparse numerical features (the wide part);
* an Embed-MatMul layer over the categorical fields (the deep part) —
  embedding tables are secretly shared, so neither party can even perform
  its own lookups in the clear.

Run:  python examples/credit_risk_wdl.py
"""

import numpy as np

from repro.baselines import (
    PlainWDL,
    collocated_view,
    evaluate_plain,
    party_b_view,
    train_plain,
)
from repro.comm import VFLConfig, VFLContext
from repro.core import FederatedWDL, TrainConfig, evaluate_federated, train_federated
from repro.data import make_mixed_classification, split_vertical


def main() -> None:
    # Sparse behaviour counters + categorical profile fields (device type,
    # region, occupation band, ...), split across the two companies.
    full = make_mixed_classification(
        n=320, sparse_dim=120, nnz_per_row=10, n_fields=6, vocab_size=12, seed=11
    )
    train, test = full.subset(np.arange(240)), full.subset(np.arange(240, 320))
    train_vd, test_vd = split_vertical(train), split_vertical(test)

    ctx = VFLContext(VFLConfig(key_bits=128, share_refresh="delta"), seed=1)
    model = FederatedWDL(
        ctx,
        in_a=60,
        in_b=60,
        vocab_a=train_vd.party("A").vocab_sizes,
        vocab_b=train_vd.party("B").vocab_sizes,
        emb_dim=4,
        deep_hidden=[8],
    )
    config = TrainConfig(epochs=2, batch_size=32, lr=0.1, momentum=0.9)
    history = train_federated(model, train_vd, config, test_data=test_vd)
    print(f"BlindFL WDL       test AUC: {history.final_metric:.3f}")
    print(f"  loss {history.losses[0]:.3f} -> {history.losses[-1]:.3f} over "
          f"{len(history.losses)} iterations")

    lender_only = train_plain(
        PlainWDL(60, train_vd.party("B").vocab_sizes, emb_dim=4, deep_hidden=[8]),
        party_b_view(train_vd),
        config,
        party_b_view(test_vd),
    )
    collocated = train_plain(
        PlainWDL(120, list(full.vocab_sizes), emb_dim=4, deep_hidden=[8]),
        collocated_view(train),
        config,
        collocated_view(test),
    )
    print(f"Lender-only WDL   test AUC: {lender_only.final_metric:.3f}")
    print(f"Collocated WDL    test AUC: {collocated.final_metric:.3f}")
    print(
        f"\nThe platform's features lift AUC by "
        f"{history.final_metric - lender_only.final_metric:+.3f} without either "
        "company revealing a single feature value, embedding, or weight."
    )


if __name__ == "__main__":
    main()
