"""Two-process BlindFL: guest and host in separate PIDs over real sockets.

The paper's deployment runs each party on its own server; this example is
that topology in miniature.  A federated LR trains with Party A living in
one OS process and Party B in another, connected only by a loopback TCP
socket carrying versioned wire frames (see ``repro.comm.codec`` for the
frame layout).  Nothing crosses the trust boundary except bytes.

Both endpoints run the same seeded program in lockstep (the protocol code
is written as one interleaved control flow); each endpoint's *own* party is
driven entirely by decoded frames read off the socket, and every incoming
frame is verified against the mirrored prediction — so the run doubles as
a protocol-conformance check.  The result is bit-identical to the
single-process quickstart.

Run:  python examples/two_process_sockets.py
"""

import numpy as np

from repro.comm import VFLConfig, VFLContext
from repro.comm.transport import run_two_party
from repro.core import FederatedLR, TrainConfig, train_federated
from repro.data import make_dense_classification, split_vertical


def train_on(channel):
    """The shared program: build the federation on ``channel`` and train.

    Everything is derived from fixed seeds, so the guest and host
    processes stay in lockstep; only wire frames synchronise them.
    """
    full = make_dense_classification(n=240, dim=24, seed=7, flip=0.05)
    train_vd = split_vertical(full.subset(np.arange(180)))
    test_vd = split_vertical(full.subset(np.arange(180, 240)))
    ctx = VFLContext(
        VFLConfig(key_bits=256, packing=True), seed=0, channel=channel
    )
    model = FederatedLR(ctx, in_a=12, in_b=12)
    config = TrainConfig(epochs=2, batch_size=32, lr=0.1, momentum=0.9)
    history = train_federated(model, train_vd, config, test_data=test_vd)
    return {
        "auc": history.final_metric,
        "losses": history.losses,
        "wire_bytes": channel.total_bytes(),
        "messages": len(channel.transcript),
    }


def main() -> None:
    print("spawning guest (Party A) and host (Party B) processes ...")
    results = run_two_party(train_on, timeout=600.0)
    guest, host = results["results"]["guest"], results["results"]["host"]
    print(f"guest PID view: AUC {guest['auc']:.3f}, "
          f"{guest['messages']} messages, {guest['wire_bytes'] / 2**20:.1f} MiB on the wire")
    print(f"host  PID view: AUC {host['auc']:.3f}, "
          f"{host['messages']} messages, {host['wire_bytes'] / 2**20:.1f} MiB on the wire")
    assert guest["losses"] == host["losses"], "endpoints diverged!"
    print("loss trajectories bit-identical across processes — the protocol "
          "is fully determined by the bytes on the wire")


if __name__ == "__main__":
    main()
