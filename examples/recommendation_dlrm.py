"""Click-through-rate prediction with a federated DLRM.

The paper's E-commerce scenario (§1): a shop (Party B) holds purchase
labels and behavioural features; an ad/social platform (Party A) holds
interest features for the same users.  The DLRM-style model runs a dense
MatMul arm and a categorical Embed-MatMul arm through BlindFL source
layers, then computes feature interactions in the plaintext top model at
Party B.

Run:  python examples/recommendation_dlrm.py
"""

import numpy as np

from repro.baselines import PlainDLRM, collocated_view, party_b_view, train_plain
from repro.comm import VFLConfig, VFLContext
from repro.core import FederatedDLRM, TrainConfig, train_federated
from repro.data import make_mixed_classification, split_vertical


def main() -> None:
    full = make_mixed_classification(
        n=400, sparse_dim=60, nnz_per_row=8, n_fields=4, vocab_size=8, seed=22,
        flip=0.03,
    )
    train, test = full.subset(np.arange(300)), full.subset(np.arange(300, 400))
    train_vd, test_vd = split_vertical(train), split_vertical(test)

    ctx = VFLContext(VFLConfig(key_bits=128, share_refresh="delta"), seed=2)
    model = FederatedDLRM(
        ctx,
        in_a=30,
        in_b=30,
        vocab_a=train_vd.party("A").vocab_sizes,
        vocab_b=train_vd.party("B").vocab_sizes,
        emb_dim=4,
        arm_dim=8,
        top_hidden=[8],
    )
    config = TrainConfig(epochs=3, batch_size=32, lr=0.1, momentum=0.9)
    history = train_federated(model, train_vd, config, test_data=test_vd)
    print(f"BlindFL DLRM      test AUC: {history.final_metric:.3f}")

    shop_only = train_plain(
        PlainDLRM(30, train_vd.party("B").vocab_sizes, emb_dim=4, arm_dim=8),
        party_b_view(train_vd),
        config,
        party_b_view(test_vd),
    )
    collocated = train_plain(
        PlainDLRM(60, list(full.vocab_sizes), emb_dim=4, arm_dim=8),
        collocated_view(train),
        config,
        collocated_view(test),
    )
    print(f"Shop-only DLRM    test AUC: {shop_only.final_metric:.3f}")
    print(f"Collocated DLRM   test AUC: {collocated.final_metric:.3f}")
    per_iter = ctx.channel.total_bytes() / max(len(history.losses), 1) / 2**10
    print(f"\nCommunication: ~{per_iter:.0f} KiB per training iteration "
          "(ciphertexts + shares only).")


if __name__ == "__main__":
    main()
