"""Multi-party vertical federated learning (Appendix C, Algorithm 3).

Three data providers (two Party A's and the label-holding Party B) train a
single logistic-regression model: each A(i) shares its weights with B
pairwise, and B's weights are broken into M+1 pieces so no subset of
parties can reconstruct them.

Run:  python examples/multiparty_lr.py
"""

import numpy as np

from repro.comm import VFLConfig, VFLContext
from repro.core.multiparty import MultiPartyMatMulSource
from repro.data import BatchLoader, make_dense_classification, split_vertical
from repro.utils import roc_auc


def main() -> None:
    full = make_dense_classification(300, 18, seed=41, flip=0.03, nonlinear=False)
    train = full.subset(np.arange(220))
    test = full.subset(np.arange(220, 300))
    names = ("A1", "A2", "B")
    train_vd = split_vertical(train, party_names=names)
    test_vd = split_vertical(test, party_names=names)

    ctx = VFLContext(VFLConfig(key_bits=128), seed=4, n_a_parties=2)
    layer = MultiPartyMatMulSource(
        ctx, in_dims={"A1": 6, "A2": 6}, in_b=6, out_dim=1, name="mp-lr"
    )

    lr, momentum, epochs, batch_size = 0.1, 0.9, 3, 32
    rng = np.random.default_rng(0)
    for epoch in range(epochs):
        losses = []
        for batch in BatchLoader(train_vd, batch_size, rng=rng):
            x = {n: batch.party(n).numeric_block() for n in names}
            z = layer.forward(x)
            probs = 1.0 / (1.0 + np.exp(-z))
            y = batch.y.reshape(z.shape).astype(float)
            losses.append(
                float(np.mean(-(y * np.log(probs + 1e-12)
                                + (1 - y) * np.log(1 - probs + 1e-12))))
            )
            layer.backward((probs - y) / y.shape[0])
            layer.apply_updates(lr, momentum)
        x_test = {n: test_vd.party(n).numeric_block() for n in names}
        z_test = layer.forward(x_test, train=False)
        auc = roc_auc(test_vd.y, z_test.ravel())
        print(f"epoch {epoch + 1}: train loss {np.mean(losses):.4f}, test AUC {auc:.3f}")

    print(
        f"\n3-party federation done — {len(ctx.channel.transcript)} protocol "
        f"messages, {ctx.channel.total_bytes() / 2**20:.1f} MiB, no plaintext."
    )


if __name__ == "__main__":
    main()
