# analysis-fixture: path=src/repro/crypto/fixture.py expect=BF003,BF003
"""Must-flag: a second tracer consult in one function, and a consult
inside a loop body."""
from repro.obs.tracer import get_tracer


def double_consult(values):
    tracer = get_tracer()
    with tracer.span("encrypt"):
        out = [v * 2 for v in values]
    tracer2 = get_tracer()  # second consult — hoist to the first
    tracer2.count("encrypt.ops", len(values))
    return out


def consult_in_loop(batches):
    out = []
    for batch in batches:
        tracer = get_tracer()  # per-iteration registry hit
        with tracer.span("batch"):
            out.append(sum(batch))
    return out
