# analysis-fixture: path=src/repro/comm/transport.py expect=
"""Must-pass transport: every raise commits to retryable or fatal (or a
local subclass of one), bare re-raises and non-transport builtins stay
legal."""


class TransportError(Exception):
    pass


class RetryableTransportError(TransportError):
    pass


class FatalTransportError(TransportError):
    pass


class HandshakeRejected(FatalTransportError):
    pass


def recv_frame(sock):
    data = sock.recv(4)
    if not data:
        raise RetryableTransportError("peer closed mid-stream")
    if len(data) < 4:
        raise RetryableTransportError("short read")
    return data


def handshake(hello, expected):
    if hello is None:
        raise ValueError("hello frame required")  # caller bug, not transport
    if hello != expected:
        raise HandshakeRejected("protocol mismatch")
    return True


def forward(exc):
    try:
        raise exc
    except RetryableTransportError:
        raise  # bare re-raise preserves the taxonomy
