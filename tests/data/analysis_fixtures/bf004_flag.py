# analysis-fixture: path=src/repro/comm/codec.py expect=BF004,BF004,BF004,BF004
"""Must-flag codec: T_BYTES has no decoder, T_GHOST has no encoder and no
_TYPE_NAMES entry, and one raise site uses a bare ValueError."""
import struct


class WireFormatError(ValueError):
    pass


T_INT = 0x01
T_BYTES = 0x02
T_GHOST = 0x03


_TYPE_NAMES = {
    T_INT: "int",
    T_BYTES: "bytes",
}


def encode_payload(obj):
    if isinstance(obj, int):
        return bytes([T_INT]) + struct.pack(">q", obj)
    if isinstance(obj, bytes):
        return bytes([T_BYTES]) + obj
    raise ValueError("unsupported")  # must be a WireFormatError subclass


def decode_payload(buf):
    tag = buf[0]
    if tag == T_INT:
        return struct.unpack(">q", buf[1:9])[0]
    if tag == T_GHOST:
        return None
    raise WireFormatError("bad tag")
