# analysis-fixture: path=src/repro/core/fixture.py expect=BF001,BF001,BF001,BF001
"""Must-flag: four distinct custody-taint flows into four sink families."""
import multiprocessing
import pickle

from repro.comm import codec
from repro.crypto.paillier import PaillierPrivateKey


def leak_over_channel(channel, party):
    # attribute read of .private_key taints the expression fed to send
    channel.send("a", "b", "t", None, party.private_key)


def leak_into_pickle(public, p, q):
    key = PaillierPrivateKey(public, p, q)  # ctor result tainted via alias
    return pickle.dumps(key)


def leak_into_codec(private_key):
    # parameter named private_key is a taint seed
    return codec.encode_payload_frame(private_key.crt_params)


def leak_into_pool(private_key, init):
    return multiprocessing.Pool(2, initializer=init, initargs=private_key.crt_params)
