# analysis-fixture: path=src/repro/comm/codec.py expect=
"""Must-pass codec: every wire type appears in an encoder, a decoder, and
the _TYPE_NAMES table, and raise sites stay inside the wire taxonomy."""
import struct


class WireFormatError(ValueError):
    pass


class TruncatedFrame(WireFormatError):
    pass


T_INT = 0x01
T_BYTES = 0x02


_TYPE_NAMES = {
    T_INT: "int",
    T_BYTES: "bytes",
}


def encode_payload(obj):
    if isinstance(obj, bool):
        raise WireFormatError("bool is not a wire type")
    if isinstance(obj, int):
        return bytes([T_INT]) + struct.pack(">q", obj)
    if isinstance(obj, bytes):
        return bytes([T_BYTES]) + obj
    raise WireFormatError("unsupported")


def decode_payload(buf):
    if len(buf) < 1:
        raise TruncatedFrame("empty frame")
    tag = buf[0]
    if tag == T_INT:
        return struct.unpack(">q", buf[1:9])[0]
    if tag == T_BYTES:
        return bytes(buf[1:])
    raise WireFormatError("bad tag %r (%s)" % (tag, _TYPE_NAMES.get(tag)))
