# analysis-fixture: path=src/repro/crypto/fixture.py expect=
"""Must-pass: explicit seeded generators, generator *methods*, a pragma'd
entropy site, and time.sleep (delay, not decision)."""
import random
import time

import numpy as np

from repro.utils.rng import new_rng


def draw(seed):
    rng = random.Random(seed)
    return rng.random()  # method on a seeded instance, not the module


def init_weights(shape, seed):
    gen = np.random.default_rng(seed)
    helper = new_rng(seed + 1)
    return gen.normal(size=shape), helper


def production_keygen(seed):
    # repro: nondeterministic-ok production entropy by contract
    return random.Random(seed) if seed is not None else random.SystemRandom()


def polite_wait():
    time.sleep(0.01)  # sleeping is allowed; deciding on the clock is not
