# analysis-fixture: path=src/repro/comm/transport.py expect=BF005,BF005,BF005
"""Must-flag transport: raise sites outside the Retryable/Fatal split."""


class TransportError(Exception):
    pass


def recv_frame(sock):
    data = sock.recv(4)
    if not data:
        raise TransportError("peer closed")  # ambiguous base class
    if len(data) < 4:
        raise RuntimeError("short read")  # not transport taxonomy at all
    return data


def connect(addr, attempts):
    if attempts <= 0:
        raise Exception("out of attempts")  # bare Exception
    return addr
