# analysis-fixture: path=src/repro/comm/message.py expect=BF004,BF004
"""Must-flag message side: ACK has no wire code, and the table maps a
name that is not a MessageKind member."""
import enum


class MessageKind(enum.Enum):
    TENSOR = "tensor"
    CONTROL = "control"
    ACK = "ack"


_WIRE_CODES = {
    MessageKind.TENSOR: 1,
    MessageKind.CONTROL: 2,
    MessageKind.PHANTOM: 9,
}
