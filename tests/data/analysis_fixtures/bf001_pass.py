# analysis-fixture: path=src/repro/core/fixture.py expect=
"""Must-pass: public material flows freely; referencing the private-key
class (isinstance refusal checks) is not a taint source, and the blessed
private-pool initargs site in crypto/parallel.py is impersonated by the
companion bf001_pass_parallel fixture, not this one."""
import pickle

from repro.comm import codec
from repro.crypto.paillier import PaillierPrivateKey


def send_public(channel, party):
    channel.send("a", "b", "t", None, party.public_key)


def refuse(payload):
    # Class reference only — you cannot extract (p, q) from the class.
    if isinstance(payload, PaillierPrivateKey):
        raise TypeError("refused")
    return codec.encode_payload(payload)


def pickle_weights(model):
    return pickle.dumps(model.weights)


def decrypt_locally(private_key, cts):
    # Holding and *using* the key locally is exactly what the key owner
    # does every batch; only sink flows are custody violations.
    return [private_key.raw_decrypt(c) for c in cts]
