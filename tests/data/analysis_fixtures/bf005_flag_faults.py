# analysis-fixture: path=src/repro/comm/faults.py expect=BF005,BF005
"""Must-flag faults: the chaos layer may not raise catch-alls — its
induced failures land in the transport recovery loops, which key on the
exception class to pick retry vs abort."""


class FaultySocket:
    def __init__(self, sock, plan):
        self.sock = sock
        self.plan = plan

    def sendall(self, data):
        if self.plan is None:
            raise RuntimeError("no fault plan bound")  # catch-all
        self.sock.sendall(data)

    def rebind(self, sock):
        if sock is None:
            raise Exception("rebind needs a live socket")  # bare Exception
        self.sock = sock
