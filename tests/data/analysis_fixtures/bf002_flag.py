# analysis-fixture: path=src/repro/crypto/fixture.py expect=BF002,BF002,BF002,BF002,BF002,BF002
"""Must-flag: global-state, unseeded, and OS-entropy RNGs plus a
wall-clock read in the protocol core."""
import random
import time

import numpy as np


def draw():
    return random.random()  # global-state generator


def shuffle_batch(order):
    rng = random.Random()  # unseeded
    rng.shuffle(order)
    return order


def production_entropy():
    return random.SystemRandom()  # OS entropy, no pragma


def init_weights(shape):
    gen = np.random.default_rng()  # unseeded
    return gen.normal(size=shape) + np.random.rand(*shape)  # and global-state


def backoff(deadline):
    return time.monotonic() > deadline  # wall clock in crypto/
