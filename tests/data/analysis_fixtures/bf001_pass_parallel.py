# analysis-fixture: path=src/repro/crypto/parallel.py expect=
"""Must-pass: the one blessed custody flow — the private decrypt pool's
``initargs`` inside ``crypto/parallel.py``'s ``_ensure_private_pool``,
an OS pipe from the key owner to its own children."""
import multiprocessing


def _init_private_worker(p, q, hp, hq, p_inverse):
    pass


class ParallelContext:
    def _ensure_private_pool(self, private_key):
        ctx = multiprocessing.get_context("fork")
        return ctx.Pool(
            2,
            initializer=_init_private_worker,
            initargs=private_key.crt_params,
        )
