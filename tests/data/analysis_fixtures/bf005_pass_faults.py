# analysis-fixture: path=src/repro/comm/faults.py expect=
"""Must-pass faults: injected failures raise the real socket exceptions
the recovery loops classify (``ConnectionResetError``/``BrokenPipeError``
are retryable-shaped at the OS level), and plan misconfiguration raises
``ValueError`` — an API-misuse signal, not a link failure."""


class FaultySocket:
    def __init__(self, sock, plan):
        if plan is None:
            raise ValueError("FaultySocket needs a FaultPlan")
        self.sock = sock
        self.plan = plan

    def sendall(self, data):
        action = self.plan.next_action()
        if action == "disconnect":
            raise ConnectionResetError("injected disconnect")
        if action == "sever":
            raise BrokenPipeError("injected severed pipe")
        self.sock.sendall(data)

    def rebind(self, sock):
        if sock is None:
            raise ValueError("rebind needs a live socket")
        self.sock = sock
