# analysis-fixture: path=src/repro/crypto/fixture.py expect=
"""Must-pass: the blessed pattern — consult the tracer registry once at
function entry, reuse the handle everywhere, including inside loops."""
from repro.obs.tracer import get_tracer


def hoisted(batches):
    tracer = get_tracer()
    out = []
    for batch in batches:
        with tracer.span("batch"):
            out.append(sum(batch))
    tracer.count("batches", len(batches))
    return out


def single(values):
    tracer = get_tracer()
    with tracer.span("encrypt"):
        return [v * 2 for v in values]


def helper_scope(values):
    # A nested function body is its own scope with its own single consult.
    def inner():
        tracer = get_tracer()
        return tracer
    tracer = get_tracer()
    return tracer, inner
