"""Chaos tests for the N-party fabric: faults, deaths, and resume.

Tier-1 keeps the headline cases under hard timeouts:

* a seeded drop+corrupt+duplicate+disconnect schedule on the A1<->B pair
  of a 3-endpoint star that must land **bit-identical** (losses
  float-exact, pooled weight pieces array-equal) to the all-local
  in-memory reference, with the recovery visible in that pair's ledgers
  and the untouched A2<->B pair still counting zero;
* the whole grid killed mid-epoch (injected ``TrainingInterrupted``
  after each endpoint's checkpoint) and resumed via
  ``run_federation(resume_from=...)`` to the uninterrupted trajectory;
* one endpoint dying without a FIN: the driver fails fast with the dead
  role named (kill-one-of-three), and a surviving endpoint's ``recv``
  surfaces ``peer ... unreachable`` once the reconnect budget is spent
  instead of hanging until the protocol deadline.

The heavier 4-endpoint grids carry the ``chaos`` marker:
``pytest -m chaos``.
"""

from __future__ import annotations

import os
import socket
import time

import numpy as np
import pytest

from test_fabric import (
    FABRIC_TIMEOUT,
    GRID3,
    IN_B,
    IN_DIMS,
    TRAIN_LR,
    TRAIN_STEPS,
    _assert_clean,
    _batches,
    _make_ctx,
    _memory_reference,
    train_program,
)

from repro.comm.fabric import FabricChannel, FabricTopology, run_federation
from repro.comm.faults import FaultPlan
from repro.comm.transport import (
    FatalTransportError,
    RetryPolicy,
    TransportError,
)
from repro.core.checkpoint import TrainingInterrupted, endpoint_checkpoint_path
from repro.core.multiparty import MultiPartyLR
from repro.core.trainer import TrainConfig, train_multiparty

GRID4 = {
    "ep_a1": ("A1",),
    "ep_a2": ("A2",),
    "ep_a3": ("A3",),
    "ep_b": ("B",),
}
IN_DIMS4 = {"A1": 3, "A2": 2, "A3": 2}


def _chaos_retry():
    return RetryPolicy(max_retries=6, base_delay=0.02, max_delay=0.25,
                       jitter=0.2, seed=5)


def _pooled_pieces(out):
    pooled = {}
    for role in out["results"]:
        pooled.update(out["results"][role]["pieces"])
    return pooled


# ---------------------------------------------------------------------------
# Programs (module scope: picklable under both fork and spawn).


def chaos_ckpt_program(channel, in_dims, steps, ckpt_base, every, crash_after):
    """Train the N-party LR with per-endpoint checkpoints; crash or resume.

    Each endpoint checkpoints only its local parties' state under
    ``endpoint_checkpoint_path(ckpt_base, role)``; on resume the driver
    hands the same per-role path back as ``channel.resume_from``.
    """
    ctx = _make_ctx(channel, n_a=len(in_dims))
    model = MultiPartyLR(ctx, dict(in_dims), IN_B)
    x_full, y = _batches()
    x = {k: v for k, v in x_full.items() if ctx.is_local(k)}
    labels = y if ctx.is_local("B") else None
    config = TrainConfig(
        lr=TRAIN_LR,
        momentum=0.9,
        checkpoint_path=(
            None
            if ckpt_base is None
            else endpoint_checkpoint_path(ckpt_base, channel.role)
        ),
        checkpoint_every=every,
        crash_after_batches=crash_after,
    )
    try:
        losses = train_multiparty(
            model, x, labels, config, steps=steps,
            resume_from=channel.resume_from,
        )
    except TrainingInterrupted as exc:
        return {"interrupted": True, "checkpoint": exc.checkpoint_path}
    return {
        "losses": losses,
        "pieces": model.source.local_weight_pieces(),
    }


def dying_program(channel, in_dims, steps):
    """ep_a2 vanishes after step 1 — no FIN, no result report, just gone."""
    ctx = _make_ctx(channel, n_a=len(in_dims))
    model = MultiPartyLR(ctx, dict(in_dims), IN_B)
    x_full, y = _batches()
    x = {k: v for k, v in x_full.items() if ctx.is_local(k)}
    labels = y if ctx.is_local("B") else None
    for k in range(steps):
        model.train_step(x, labels, lr=TRAIN_LR)
        if k == 0 and channel.role == "ep_a2":
            os._exit(9)  # a real crash: skips shutdown, FIN and reporting
    return True


# ---------------------------------------------------------------------------
# Tier-1: faults on one pair of the star, bit-identical to memory.


def test_fabric_chaos_faulted_pair_is_bit_identical():
    """Seeded drops, corruption, duplicates and one mid-run disconnect on
    BOTH directions of the A1<->B pair; the grid must still train
    bit-identically to the all-local reference, the recovery must be
    visible in that pair's ledgers, and the untouched A2<->B pair must
    stay exactly clean."""
    plans = {
        ("ep_a1", "ep_b"): FaultPlan.seeded(
            61, frames=200, drop_rate=0.08, corrupt_rate=0.08,
            duplicate_rate=0.05, disconnect_at=5,
        ),
        ("ep_b", "ep_a1"): FaultPlan.seeded(
            62, frames=200, drop_rate=0.08, corrupt_rate=0.08,
            duplicate_rate=0.05,
        ),
    }
    out = run_federation(
        train_program, (IN_DIMS,), roles=GRID3, timeout=FABRIC_TIMEOUT,
        sock_timeout=0.5, retry=_chaos_retry(), fault_plans=plans,
    )
    ref_losses, ref_pieces, _ = _memory_reference()
    assert out["results"]["ep_b"]["losses"] == ref_losses
    pooled = _pooled_pieces(out)
    assert set(pooled) == set(ref_pieces)
    for name, value in ref_pieces.items():
        np.testing.assert_array_equal(pooled[name], value)
    stats = out["link_stats"]
    a1 = stats["ep_a1"]["ep_b"]
    b = stats["ep_b"]["ep_a1"]
    # The injected disconnect forces one reconnect, seen from both ends.
    assert a1["reconnects"] >= 1 and a1["resumes"] >= 1
    assert b["reconnects"] >= 1 and b["resumes"] >= 1
    recovery = sum(
        side[counter]
        for side in (a1, b)
        for counter in ("retransmits", "naks_sent", "corrupt_dropped",
                        "duplicates_dropped", "timeouts")
    )
    assert recovery > 0, (a1, b)
    # 100% delivery on the faulted pair: every logical frame accepted.
    assert a1["data_sent"] == b["data_received"]
    assert b["data_sent"] == a1["data_received"]
    # The fault-free pair never paid for its neighbours' chaos.
    _assert_clean(stats["ep_a2"]["ep_b"])
    _assert_clean(stats["ep_b"]["ep_a2"])


# ---------------------------------------------------------------------------
# Tier-1: kill the whole grid mid-epoch, resume bit-identically.


def test_fabric_kill_grid_then_resume_bit_identical(tmp_path):
    """All three endpoints die after checkpointing step 2 of 4; a fresh
    grid resumed via ``run_federation(resume_from=...)`` finishes with
    the uninterrupted run's exact losses and weight pieces."""
    base = str(tmp_path / "grid.ckpt")
    steps = 4
    first = run_federation(
        chaos_ckpt_program, (IN_DIMS, steps, base, 2, 2),
        roles=GRID3, timeout=FABRIC_TIMEOUT,
    )
    for role in GRID3:
        assert first["results"][role]["interrupted"] is True
        expected = endpoint_checkpoint_path(base, role)
        assert first["results"][role]["checkpoint"] == expected
        assert os.path.exists(expected)
    # Leg 2: fresh processes, fresh sockets, resume from the checkpoints.
    second = run_federation(
        chaos_ckpt_program, (IN_DIMS, steps, None, 0, None),
        roles=GRID3, timeout=FABRIC_TIMEOUT, resume_from=base,
    )
    ref_losses, ref_pieces, _ = _memory_reference(steps=steps)
    assert second["results"]["ep_b"]["losses"] == ref_losses
    pooled = _pooled_pieces(second)
    assert set(pooled) == set(ref_pieces)
    for name, value in ref_pieces.items():
        np.testing.assert_array_equal(pooled[name], value)


# ---------------------------------------------------------------------------
# Tier-1: endpoint death is detected fast and named.


def test_fabric_kill_one_of_three_fails_fast_with_role_named():
    """ep_a2 dies without a FIN mid-run: the driver must fail the grid
    well inside the protocol deadline with the dead role named, instead
    of letting the survivors hang out the full timeout."""
    start = time.monotonic()
    with pytest.raises(TransportError, match="ep_a2.*exit code 9"):
        run_federation(
            dying_program, (IN_DIMS, TRAIN_STEPS),
            roles=GRID3, timeout=FABRIC_TIMEOUT, retry=_chaos_retry(),
        )
    elapsed = time.monotonic() - start
    assert elapsed < FABRIC_TIMEOUT / 2, (
        f"death detection took {elapsed:.1f}s — the watchdog is not "
        f"polling liveness"
    )


def test_fabric_inband_peer_death_names_unreachable_role():
    """A surviving endpoint whose established link dies FIN-less must
    surface ``peer ... unreachable`` from recv() once the bounded
    reconnect budget is spent — never hang."""
    topo = FabricTopology({"ep_a": ("A1",), "ep_z": ("B",)})
    listener_a = socket.create_server(("127.0.0.1", 0))
    listener_z = socket.create_server(("127.0.0.1", 0))
    ports = {
        "ep_a": listener_a.getsockname()[1],
        "ep_z": listener_z.getsockname()[1],
    }
    retry = RetryPolicy(max_retries=2, base_delay=0.02, max_delay=0.05,
                        jitter=0.1, seed=3)
    cha = FabricChannel("ep_a", topo, ports, listener_a, retry=retry,
                        timeout=30.0, close_timeout=0.5)
    chz = FabricChannel("ep_z", topo, ports, listener_z, retry=retry,
                        timeout=30.0, close_timeout=0.5)
    try:
        cha._ensure_link("ep_z")
        # Wait for ep_z's acceptor to register its side of the link.
        for _ in range(200):
            with chz._grid:
                if "ep_a" in chz._links:
                    break
            time.sleep(0.01)
        else:
            pytest.fail("ep_z never registered the accepted link")
        # FIN-less death of ep_z: sockets and listener vanish, no drain.
        chz._closing = True
        with chz._grid:
            dead_socks = [link.sock for link in chz._links.values()]
        for dead in dead_socks:
            dead.close()
        listener_z.close()
        with pytest.raises(FatalTransportError, match="peer 'ep_z' unreachable"):
            cha.recv("A1", tag="never.arrives")
    finally:
        cha._closing = True
        chz._closing = True
        for ch in (cha, chz):
            with ch._grid:
                socks = [link.sock for link in ch._links.values()]
            for s in socks:
                try:
                    s.close()
                except OSError:
                    pass
        for lst in (listener_a, listener_z):
            try:
                lst.close()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# The heavier grids (pytest -m chaos).


@pytest.mark.chaos
def test_chaos_four_endpoint_grid_bit_identical():
    """Faults on three of the star's directed links — disconnects
    included — across a 4-endpoint grid."""
    plans = {
        ("ep_a1", "ep_b"): FaultPlan.seeded(
            71, frames=400, drop_rate=0.06, corrupt_rate=0.06,
            duplicate_rate=0.04, disconnect_at=7,
        ),
        ("ep_b", "ep_a3"): FaultPlan.seeded(
            72, frames=400, drop_rate=0.06, corrupt_rate=0.06,
            duplicate_rate=0.04,
        ),
        ("ep_a2", "ep_b"): FaultPlan.seeded(
            73, frames=400, drop_rate=0.05, corrupt_rate=0.05,
            disconnect_at=11,
        ),
    }
    out = run_federation(
        train_program, (IN_DIMS4,), roles=GRID4, timeout=FABRIC_TIMEOUT * 2,
        sock_timeout=0.5, retry=_chaos_retry(), fault_plans=plans,
    )
    ref_losses, ref_pieces, _ = _memory_reference(in_dims=IN_DIMS4)
    assert out["results"]["ep_b"]["losses"] == ref_losses
    pooled = _pooled_pieces(out)
    for name, value in ref_pieces.items():
        np.testing.assert_array_equal(pooled[name], value)


@pytest.mark.chaos
def test_chaos_kill_grid_and_resume_under_faults(tmp_path):
    """Kill-and-resume with link faults active on BOTH legs."""
    base = str(tmp_path / "chaotic-grid.ckpt")
    steps = 4
    plans = {
        ("ep_a1", "ep_b"): FaultPlan.seeded(
            81, frames=300, drop_rate=0.05, corrupt_rate=0.05,
            disconnect_at=9,
        ),
    }
    first = run_federation(
        chaos_ckpt_program, (IN_DIMS, steps, base, 2, 2),
        roles=GRID3, timeout=FABRIC_TIMEOUT, sock_timeout=0.5,
        retry=_chaos_retry(), fault_plans=plans,
    )
    assert all(first["results"][role]["interrupted"] for role in GRID3)
    resume_plans = {
        ("ep_b", "ep_a1"): FaultPlan.seeded(
            82, frames=300, drop_rate=0.05, corrupt_rate=0.05,
        ),
    }
    second = run_federation(
        chaos_ckpt_program, (IN_DIMS, steps, None, 0, None),
        roles=GRID3, timeout=FABRIC_TIMEOUT, sock_timeout=0.5,
        retry=_chaos_retry(), fault_plans=resume_plans, resume_from=base,
    )
    ref_losses, ref_pieces, _ = _memory_reference(steps=steps)
    assert second["results"]["ep_b"]["losses"] == ref_losses
    pooled = _pooled_pieces(second)
    for name, value in ref_pieces.items():
        np.testing.assert_array_equal(pooled[name], value)
