"""Tests for the channel/party runtime."""

import numpy as np
import pytest

from repro.comm import codec
from repro.comm.channel import (
    Channel,
    SerializingChannel,
    make_channel,
    payload_nbytes,
)
from repro.comm.message import Message, MessageKind
from repro.comm.party import VFLConfig, VFLContext
from repro.crypto.crypto_tensor import CryptoTensor


def test_send_recv_fifo():
    ch = Channel()
    ch.send("A", "B", "t1", 1, MessageKind.PUBLIC)
    ch.send("A", "B", "t2", 2, MessageKind.PUBLIC)
    assert ch.recv("B", "t1") == 1
    assert ch.recv("B", "t2") == 2


def test_recv_empty_raises():
    ch = Channel()
    with pytest.raises(LookupError):
        ch.recv("B")


def test_recv_tag_mismatch_raises():
    ch = Channel()
    ch.send("A", "B", "x", 1, MessageKind.PUBLIC)
    with pytest.raises(LookupError, match="desync"):
        ch.recv("B", "y")


def test_self_send_rejected():
    ch = Channel()
    with pytest.raises(ValueError):
        ch.send("A", "A", "t", 1, MessageKind.PUBLIC)


def test_transcript_and_views():
    ch = Channel()
    ch.send("A", "B", "t", 1, MessageKind.SHARE)
    ch.send("B", "A", "u", 2, MessageKind.CIPHERTEXT)
    assert len(ch.transcript) == 2
    assert [m.tag for m in ch.view_of("B")] == ["t"]
    assert [m.tag for m in ch.view_of("A")] == ["u"]
    assert ch.messages_by_kind[MessageKind.SHARE] == 1
    ch.recv("B")
    ch.recv("A")


def test_byte_accounting(ctx):
    # Ciphertext bytes derive from the *actual* key: a ciphertext lives mod
    # n^2, i.e. 2 * key_bits / 8 bytes (the test context uses short keys).
    # The in-memory tier charges exactly the estimator; the serializing
    # tier charges the measured frame (estimate + small framing overhead).
    cipher_bytes = 2 * ctx.B.public_key.key_bits // 8
    serializing = isinstance(ctx.channel, SerializingChannel)
    arr = np.ones((4, 4))
    ctx.channel.send("A", "B", "t", arr, MessageKind.SHARE)
    sent = ctx.channel.bytes_by_sender["A"]
    if serializing:
        assert arr.nbytes < sent <= arr.nbytes + 128
    else:
        assert sent == arr.nbytes
    ct = CryptoTensor.encrypt(ctx.B.public_key, np.ones(3))
    ctx.channel.send("A", "B", "c", ct, MessageKind.CIPHERTEXT)
    estimate = arr.nbytes + 3 * cipher_bytes
    if serializing:
        assert estimate < ctx.channel.total_bytes() <= estimate + 256
    else:
        assert ctx.channel.total_bytes() == estimate
    ctx.channel.recv("B")
    ctx.channel.recv("B")


def test_payload_nbytes_variants(ctx):
    assert payload_nbytes(3) == 8
    assert payload_nbytes([np.ones(2), 1.0]) == 16 + 8
    # Strings/bytes are priced at their body size; None carries nothing.
    assert payload_nbytes("metadata") == len(b"metadata")
    assert payload_nbytes(b"\x00\x01") == 2
    assert payload_nbytes(True) == 1
    assert payload_nbytes(None) == 0
    enc = ctx.A.public_key.encrypt(1.0)
    # Derived from the key (128-bit test keys here)...
    assert payload_nbytes(enc) == 2 * ctx.A.public_key.key_bits // 8
    # ... unless the caller pins an explicit per-ciphertext size.
    assert payload_nbytes(enc, cipher_bytes=512) == 512


def test_payload_nbytes_numpy_scalars():
    """Regression: numpy scalars are priced at their storage width.

    ``np.int64`` is *not* a Python ``int`` subclass, so an integer that
    came off an ndarray (``arr[0]``, ``arr.sum()``) used to fall through
    every branch and raise the unpriceable-payload TypeError."""
    assert payload_nbytes(np.int64(7)) == 8
    assert payload_nbytes(np.int32(7)) == 4
    assert payload_nbytes(np.float64(1.5)) == 8
    assert payload_nbytes(np.float32(1.5)) == 4
    assert payload_nbytes(np.bool_(True)) == 1
    # The exact shapes that bit in practice: values plucked off arrays.
    arr = np.arange(5, dtype=np.int64)
    assert payload_nbytes(arr[0]) == 8
    assert payload_nbytes(arr.sum()) == 8
    assert payload_nbytes([arr[0], arr[1]]) == 16


def test_payload_nbytes_dicts():
    """Regression: the codec carries dict containers, so the estimator
    must price them (sum of keys + values) instead of raising."""
    assert payload_nbytes({}) == 0
    assert payload_nbytes({"k": 1.0}) == 1 + 8
    assert payload_nbytes({"w": np.ones(3), "step": np.int64(2)}) == (
        1 + 24 + 4 + 8
    )
    # Nested containers recurse.
    assert payload_nbytes({"a": [1.0, 2.0]}) == 1 + 16
    with pytest.raises(TypeError, match="cannot price"):
        payload_nbytes({"bad": object()})


def test_bytes_by_sender_probe_does_not_mutate_ledger():
    """Regression: the ledger was a ``defaultdict(int)``, so a
    reconciliation probe of a never-sent party *planted a zero entry on
    read* — masking a missing sender from byte-equality checks."""
    ch = Channel()
    ch.send("A", "B", "t", 1.0, MessageKind.PUBLIC)
    assert "B" not in ch.bytes_by_sender
    with pytest.raises(KeyError):
        ch.bytes_by_sender["B"]  # probing must not invent a zero entry
    assert "B" not in ch.bytes_by_sender
    assert ch.bytes_by_sender.get("B", 0) == 0
    assert set(ch.bytes_by_sender) == {"A"}
    ch.recv("B")


def test_payload_nbytes_production_key_is_512():
    """At the paper's 2048-bit deployment keys the old constant is exact."""
    from repro.crypto.paillier import EncryptedNumber, PaillierPublicKey

    pk = PaillierPublicKey((1 << 2047) + 1)  # any 2048-bit modulus will do
    enc = EncryptedNumber(pk, 1, 0)
    assert payload_nbytes(enc) == 512


def test_payload_nbytes_rejects_unpriceable_payloads():
    """An unknown payload type fails at the accounting site, not with a
    silent 0-byte undercount (the codec refuses to serialise it anyway)."""

    class Opaque:
        pass

    with pytest.raises(TypeError, match="cannot price"):
        payload_nbytes(Opaque())
    with pytest.raises(TypeError, match="cannot price"):
        payload_nbytes([1.0, Opaque()])  # nested inside a container too


def test_reset_stats_requires_drained_queues():
    ch = Channel()
    ch.send("A", "B", "t", 1, MessageKind.PUBLIC)
    with pytest.raises(RuntimeError):
        ch.reset_stats()
    ch.recv("B")
    ch.reset_stats()
    assert ch.transcript == [] and ch.total_bytes() == 0


def test_context_two_party_default(ctx):
    assert ctx.A.name == "A" and ctx.B.name == "B"
    assert ctx.A.peer_key("B") == ctx.B.public_key
    assert ctx.B.peer_key("A") == ctx.A.public_key
    assert ctx.A.public_key != ctx.B.public_key


def test_context_multi_party():
    mctx = VFLContext(VFLConfig(key_bits=128), seed=3, n_a_parties=3)
    names = [p.name for p in mctx.a_parties()]
    assert names == ["A1", "A2", "A3"]
    assert mctx.parties["A2"].peer_key("B") == mctx.B.public_key
    assert mctx.parties["A1"].public_key != mctx.parties["A2"].public_key


def test_context_validation():
    with pytest.raises(ValueError):
        VFLContext(n_a_parties=0)
    with pytest.raises(ValueError):
        VFLConfig(share_refresh="bogus")


def test_peer_key_unknown_party(ctx):
    with pytest.raises(KeyError):
        ctx.A.peer_key("C")


# ---------------------------------------------------------------------------
# Channel tiers (factory, serializing semantics, context plumbing).


def test_make_channel_factory():
    assert type(make_channel("memory")) is Channel
    assert type(make_channel("serializing")) is SerializingChannel
    with pytest.raises(ValueError, match="unknown channel kind"):
        make_channel("carrier-pigeon")
    with pytest.raises(ValueError, match="channel must be one of"):
        VFLConfig(channel="carrier-pigeon")


def test_config_channel_knob_selects_tier():
    mem = VFLContext(VFLConfig(key_bits=128), seed=1)
    ser = VFLContext(VFLConfig(key_bits=128, channel="serializing"), seed=1)
    assert type(mem.channel) is Channel
    assert type(ser.channel) is SerializingChannel
    # The context registered its party keys with the codec ring.
    assert set(ser.channel.key_ring) == {
        p.public_key.n for p in ser.parties.values()
    }


def test_serializing_channel_delivers_decoded_objects(ctx):
    """What the receiver gets is rebuilt from bytes, not the sent object."""
    if not isinstance(ctx.channel, SerializingChannel):
        pytest.skip("serializing tier only")
    ct = CryptoTensor.encrypt(ctx.A.public_key, np.ones((2, 2)))
    ctx.channel.send("B", "A", "t", ct, MessageKind.CIPHERTEXT)
    received = ctx.channel.recv("A", "t")
    assert received is not ct  # a new object decoded from the frame...
    assert received.public_key is ctx.A.public_key  # ...on the live key
    assert [e.ciphertext for e in received.data.ravel()] == [
        e.ciphertext for e in ct.data.ravel()
    ]


def test_serializing_transcript_frames_reencode_identically(ctx):
    """Transcript messages re-encode to the exact nbytes they recorded."""
    if not isinstance(ctx.channel, SerializingChannel):
        pytest.skip("serializing tier only")
    ctx.channel.send("A", "B", "x", np.arange(5.0), MessageKind.SHARE)
    ctx.channel.send("B", "A", "y", 7, MessageKind.PUBLIC)
    for msg in ctx.channel.transcript:
        assert len(codec.encode_message(msg)) == msg.nbytes
    ctx.channel.recv("B")
    ctx.channel.recv("A")


def test_set_channel_swaps_at_quiescence_only():
    ctx = VFLContext(VFLConfig(key_bits=128), seed=5)
    ctx.channel.send("A", "B", "t", 1, MessageKind.PUBLIC)
    with pytest.raises(RuntimeError, match="undelivered"):
        ctx.set_channel(make_channel("serializing"))
    ctx.channel.recv("B")
    fresh = make_channel("serializing")
    ctx.set_channel(fresh)
    assert ctx.channel is fresh
    assert set(fresh.key_ring) == {p.public_key.n for p in ctx.parties.values()}


def test_message_kind_wire_codes_round_trip():
    for kind in MessageKind:
        assert MessageKind.from_wire(kind.wire_code) is kind
    with pytest.raises(ValueError):
        MessageKind.from_wire(0)
