"""Autograd engine tests, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.tensor.tensor import Tensor, no_grad


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(build, x0: np.ndarray, atol: float = 1e-5):
    """Compare autograd against finite differences for scalar outputs."""
    t = Tensor(x0.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    num = numerical_grad(lambda arr: build(Tensor(arr)).item(), x0.copy())
    np.testing.assert_allclose(t.grad, num, atol=atol)


@pytest.fixture()
def x(rng):
    return rng.normal(size=(3, 4))


def test_add_grad(x):
    check_grad(lambda t: (t + 2.0).sum(), x)


def test_mul_grad(x, rng):
    other = rng.normal(size=x.shape)
    check_grad(lambda t: (t * other).sum(), x)


def test_broadcast_add_grad(x, rng):
    row = rng.normal(size=(1, x.shape[1]))
    check_grad(lambda t: (t + row).sum(), x)
    bias = Tensor(row.copy(), requires_grad=True)
    out = (Tensor(x) + bias).sum()
    out.backward()
    assert bias.grad.shape == row.shape
    np.testing.assert_allclose(bias.grad, np.full(row.shape, x.shape[0]))


def test_matmul_grad(x, rng):
    w = rng.normal(size=(4, 2))
    check_grad(lambda t: (t @ w).sum(), x)
    wt = Tensor(w.copy(), requires_grad=True)
    ((Tensor(x) @ wt).sum()).backward()
    np.testing.assert_allclose(wt.grad, x.T @ np.ones((3, 2)) @ np.eye(2), atol=1e-9)


def test_matmul_vector_grad(rng):
    v = rng.normal(size=4)
    check_grad(lambda t: (t @ np.ones(4)).sum(), rng.normal(size=(3, 4)))
    t = Tensor(v.copy(), requires_grad=True)
    (Tensor(np.ones((2, 4))) @ t).sum().backward()
    np.testing.assert_allclose(t.grad, 2 * np.ones(4))


@pytest.mark.parametrize(
    "op", ["relu", "sigmoid", "tanh", "exp"]
)
def test_unary_grads(op, x):
    check_grad(lambda t: getattr(t, op)().sum(), x)


def test_log_grad(rng):
    x = rng.uniform(0.5, 2.0, size=(3, 3))
    check_grad(lambda t: t.log().sum(), x)


def test_pow_grad(rng):
    x = rng.uniform(0.5, 2.0, size=(2, 3))
    check_grad(lambda t: t.pow(3.0).sum(), x)


def test_div_grad(rng):
    x = rng.uniform(0.5, 2.0, size=(2, 3))
    other = rng.uniform(1.0, 2.0, size=(2, 3))
    check_grad(lambda t: (t / other).sum(), x)
    check_grad(lambda t: (Tensor(other) / t).sum(), x)


def test_sum_axis_grads(x):
    check_grad(lambda t: t.sum(axis=0).sum(), x)
    check_grad(lambda t: t.sum(axis=1, keepdims=True).sum(), x)
    check_grad(lambda t: t.mean(axis=1).sum(), x)
    check_grad(lambda t: t.mean().sum(), x)


def test_reshape_transpose_grads(x):
    check_grad(lambda t: (t.reshape(4, 3) @ np.ones((3, 1))).sum(), x)
    check_grad(lambda t: (t.T @ np.ones((3, 1))).sum(), x)


def test_getitem_grad(x):
    check_grad(lambda t: t[1].sum(), x)
    check_grad(lambda t: t[:, 2].sum(), x)


def test_concat_grad(rng):
    a0 = rng.normal(size=(2, 3))
    b0 = rng.normal(size=(2, 2))
    a = Tensor(a0, requires_grad=True)
    b = Tensor(b0, requires_grad=True)
    out = Tensor.concat([a, b], axis=1)
    (out * out).sum().backward()
    np.testing.assert_allclose(a.grad, 2 * a0, atol=1e-9)
    np.testing.assert_allclose(b.grad, 2 * b0, atol=1e-9)


def test_grad_accumulates_across_uses(rng):
    x0 = rng.normal(size=(2, 2))
    t = Tensor(x0, requires_grad=True)
    out = (t + t).sum() + (t * 3.0).sum()
    out.backward()
    np.testing.assert_allclose(t.grad, 5 * np.ones_like(x0))


def test_diamond_graph_grad():
    t = Tensor(np.array([2.0]), requires_grad=True)
    a = t * 3.0
    b = t * 4.0
    ((a + b) * 2.0).sum().backward()
    np.testing.assert_allclose(t.grad, [14.0])


def test_backward_requires_scalar():
    t = Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(RuntimeError):
        (t * 2.0).backward()


def test_backward_with_explicit_grad():
    t = Tensor(np.ones((2, 2)), requires_grad=True)
    out = t * 3.0
    out.backward(np.full((2, 2), 0.5))
    np.testing.assert_allclose(t.grad, np.full((2, 2), 1.5))
    with pytest.raises(ValueError):
        out.backward(np.ones(3))


def test_no_grad_blocks_graph():
    t = Tensor(np.ones(2), requires_grad=True)
    with no_grad():
        out = (t * 2.0).sum()
    assert not out.requires_grad
    assert out._prev == ()


def test_detach_cuts_graph():
    t = Tensor(np.ones(2), requires_grad=True)
    out = (t.detach() * 2.0).sum()
    assert not out.requires_grad


def test_deep_graph_no_recursion_limit():
    """Iterative topo-sort must handle graphs deeper than the C stack."""
    t = Tensor(np.array([1.0]), requires_grad=True)
    out = t
    for _ in range(5000):
        out = out + 1.0
    out.sum().backward()
    np.testing.assert_allclose(t.grad, [1.0])
