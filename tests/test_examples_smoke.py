"""Smoke tests: every example script imports cleanly and exposes main().

The examples are exercised end-to-end manually (they take ~30-60 s each
with real crypto); here we guard against import rot and API drift so a
refactor cannot silently break the documented entry points.
"""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "credit_risk_wdl",
        "recommendation_dlrm",
        "privacy_attacks_demo",
        "multiparty_lr",
        "two_process_sockets",
        "trace_quickstart",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    func_names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in func_names
    # Must be import-safe (no work at module scope beyond imports).
    guarded = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    )
    assert guarded, f"{path.name} lacks an __main__ guard"


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_imports_resolve(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # runs imports + defs only (guarded main)
    assert callable(module.main)
