"""Federation telemetry: span tracer, sinks, reports, and reconciliation.

The acceptance properties under test:

* **zero overhead when disabled** — instrumentation sites consult the
  tracer once per kernel/protocol call, never per element (pinned by a
  counting monkeypatch over ``repro.obs.tracer.get_tracer``);
* **exact reconciliation** — a traced run's per-party byte counters equal
  ``Channel.bytes_by_sender`` to the byte on every tier (estimated
  payload bytes on the memory tier, measured frame lengths on the
  serializing tier, real socket frames on the network tier), and traced
  ``link.*`` counters equal the ``LinkStats`` deltas by construction;
* **determinism** — two identically seeded runs produce identical
  counter totals, and parallel execution counts exactly what serial
  does (workers report pow deltas back through the result pipe).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from test_transport import _BUILDERS

from repro.comm.party import VFLConfig, VFLContext
from repro.comm.transport import run_two_party
from repro.core.trainer import TrainConfig, train_federated
from repro.crypto.crypto_tensor import CryptoTensor
from repro.crypto.paillier import generate_paillier_keypair
from repro.crypto.parallel import ParallelContext
from repro.obs.report import fold_trace, format_report, report_json, write_report
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    NullSink,
    TeeSink,
    make_sink,
)
from repro.obs.tracer import (
    ROOT_PHASE,
    Tracer,
    counter_totals,
    get_tracer,
    use_tracer,
    validate_trace,
)
from repro.obs import tracer as obs_tracer

SOCKET_TIMEOUT = 60.0


# ---------------------------------------------------------------------------
# Tracer core


def test_tracer_nests_spans_and_attributes_counters():
    trc = Tracer()
    with trc.span("epoch", epoch=0) as epoch:
        trc.add("pow.mul", 3)
        with trc.span("encrypt", party="B") as enc:
            trc.add("ct.encrypted", 4)
            assert trc.current is enc
        trc.add("pow.mul", 2)
        assert trc.current is epoch
    trc.close()
    spans = trc.to_dicts()
    validate_trace(spans)
    by_phase = {sp["phase"]: sp for sp in spans}
    assert by_phase["encrypt"]["counters"] == {"ct.encrypted": 4}
    assert by_phase["encrypt"]["party"] == "B"
    assert by_phase["epoch"]["counters"] == {"pow.mul": 5}
    assert by_phase["epoch"]["attrs"] == {"epoch": 0}
    # Nesting: encrypt's parent is epoch, epoch's parent is the root.
    assert by_phase["encrypt"]["parent"] == by_phase["epoch"]["id"]
    assert by_phase["epoch"]["parent"] == by_phase[ROOT_PHASE]["id"]
    assert by_phase["encrypt"]["depth"] == 2
    # Durations come from the nesting-safe Timer and nest sanely.
    assert by_phase["epoch"]["dur_s"] >= by_phase["encrypt"]["dur_s"] >= 0


def test_tracer_out_of_order_close_raises():
    trc = Tracer()
    outer = trc._open("a", None, {})
    trc._open("b", None, {})
    with pytest.raises(RuntimeError, match="out of order"):
        trc._close(outer)


def test_tracer_close_drains_open_spans_root_last():
    trc = Tracer()
    trc._open("epoch", None, {})
    trc._open("batch", None, {})
    trc.close()
    assert [sp.phase for sp in trc.spans] == ["batch", "epoch", ROOT_PHASE]
    validate_trace(trc.to_dicts())


def test_use_tracer_installs_restores_and_closes():
    assert get_tracer() is None
    trc = Tracer()
    with use_tracer(trc) as active:
        assert active is trc and get_tracer() is trc
        with obs_tracer.span("encrypt", party="A"):
            obs_tracer.add("ct.encrypted", 2)
    assert get_tracer() is None
    assert counter_totals(trc.to_dicts()) == {"ct.encrypted": 2}


def test_disabled_module_api_is_inert():
    assert get_tracer() is None
    # span() returns the shared null context; add() is a no-op.
    with obs_tracer.span("encrypt") as sp:
        assert sp is None
        obs_tracer.add("ct.encrypted", 5)
    obs_tracer.add_many({"pow.mul": 3})


def test_validate_trace_rejects_malformed():
    trc = Tracer()
    with trc.span("encrypt"):
        pass
    trc.close()
    good = trc.to_dicts()
    validate_trace(good)

    def corrupted(mutate):
        spans = [dict(sp, counters=dict(sp["counters"])) for sp in good]
        mutate(spans)
        return spans

    cases = [
        lambda s: s[0].__setitem__("id", s[1]["id"]),  # duplicate id
        lambda s: s[0].__setitem__("parent", 999),  # unresolvable parent
        lambda s: s[0]["counters"].__setitem__("pow.mul", -1),
        lambda s: s[0].__setitem__("dur_s", -0.5),
        lambda s: s[0].__setitem__("parent", None),  # two roots
        lambda s: s[0].__setitem__("depth", 7),
        lambda s: s[0].pop("phase"),
    ]
    for mutate in cases:
        with pytest.raises(ValueError):
            validate_trace(corrupted(mutate))
    with pytest.raises(ValueError):
        validate_trace([])


# ---------------------------------------------------------------------------
# Sinks


def test_jsonl_sink_streams_span_dicts(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    trc = Tracer(sink=JsonlSink(path))
    with trc.span("encrypt", party="A"):
        trc.add("ct.encrypted", 3)
    trc.close()
    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    validate_trace(lines)
    assert lines[0]["phase"] == "encrypt"
    assert lines[0]["counters"] == {"ct.encrypted": 3}
    assert lines[-1]["phase"] == ROOT_PHASE  # close order: root last


def test_chrome_sink_writes_loadable_trace(tmp_path):
    path = str(tmp_path / "trace.json")
    trc = Tracer(sink=ChromeTraceSink(path))
    with trc.span("decrypt", party="A"):
        trc.add("ct.decrypted", 2)
    with trc.span("encrypt", party="B"):
        pass
    trc.close()
    payload = json.loads(open(path, encoding="utf-8").read())
    events = payload["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in xs} == {"decrypt", "encrypt", ROOT_PHASE}
    # One lane per party, named for the trace viewer.
    assert {m["args"]["name"] for m in metas} == {"A", "B", "-"}
    decrypt = next(e for e in xs if e["name"] == "decrypt")
    assert decrypt["args"]["ct.decrypted"] == 2
    assert decrypt["dur"] >= 0


def test_make_sink_mapping(tmp_path):
    assert make_sink("off") is None
    assert make_sink("memory") is None
    assert isinstance(make_sink("null"), NullSink)
    assert isinstance(make_sink("jsonl", str(tmp_path / "t.jsonl")), JsonlSink)
    assert isinstance(make_sink("chrome", str(tmp_path / "t.json")), ChromeTraceSink)
    with pytest.raises(ValueError, match="telemetry_path"):
        make_sink("jsonl")
    with pytest.raises(ValueError, match="unknown telemetry kind"):
        make_sink("bogus")


def test_tee_sink_fans_out(tmp_path):
    a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
    trc = Tracer(sink=TeeSink(JsonlSink(a), JsonlSink(b)))
    with trc.span("pack"):
        pass
    trc.close()
    assert open(a, encoding="utf-8").read() == open(b, encoding="utf-8").read()


# ---------------------------------------------------------------------------
# Report folding


def _traced_run(telemetry="memory", channel="serializing", packing=False,
                key_bits=128, telemetry_path=None, seed=3):
    ctx = VFLContext(VFLConfig(key_bits=key_bits, packing=packing), seed=seed)
    model, vd = _BUILDERS["lr"](ctx)
    cfg = TrainConfig(
        epochs=1, batch_size=16, lr=0.1, momentum=0.9, seed=0,
        channel=channel, telemetry=telemetry, telemetry_path=telemetry_path,
        blinding_pool_per_epoch=4,
    )
    history = train_federated(model, vd, cfg, max_batches_per_epoch=2)
    return history, ctx


def test_fold_trace_and_report(tmp_path):
    history, _ = _traced_run()
    folded = fold_trace(history.trace)
    phases = {(r["party"], r["phase"]) for r in folded["rows"]}
    # The span taxonomy shows up with party attribution on the crypto legs.
    assert ("A", "decrypt") in phases and ("B", "decrypt") in phases
    assert ("B", "encrypt") in phases
    assert any(p[1] == "he2ss_send" for p in phases)
    assert ("-", "fw_transfer") in phases and ("-", "bw_transfer") in phases
    assert ("-", "epoch") in phases and ("-", "batch") in phases
    assert ("-", "blinding_refill") in phases
    # own_s never exceeds wall_s, pows/cts are non-negative ints.
    for row in folded["rows"]:
        assert 0 <= row["own_s"] <= row["wall_s"] + 1e-9
        assert row["pows"] >= 0 and row["ct_enc"] >= 0
    # Party summaries classify compute vs comm and attribute bytes.
    assert folded["parties"]["A"]["bytes_sent"] > 0
    assert folded["parties"]["B"]["bytes_sent"] > 0
    assert folded["link_events"] == 0  # no reliable link on this tier
    report = format_report(folded)
    assert "per-party phase costs" in report and "party summary" in report
    assert "he2ss_send" in report
    path = tmp_path / "report.json"
    write_report(folded, str(path))
    assert json.loads(path.read_text()) == json.loads(report_json(folded))


def test_jsonl_telemetry_from_trainer(tmp_path):
    path = tmp_path / "train.jsonl"
    history, _ = _traced_run(telemetry="jsonl", telemetry_path=str(path))
    exported = [json.loads(line) for line in path.read_text().splitlines()]
    validate_trace(exported)
    # The export is the same trace History carries.
    assert counter_totals(exported) == counter_totals(history.trace)


# ---------------------------------------------------------------------------
# Reconciliation: traced counters == channel accounting, exactly.


@pytest.mark.parametrize("channel", ["memory", "serializing"])
def test_traced_bytes_reconcile_with_channel(channel):
    history, ctx = _traced_run(channel=channel)
    totals = counter_totals(history.trace)
    ch = ctx.channel
    assert ch.bytes_by_sender, "training must have sent traffic"
    for party, nbytes in ch.bytes_by_sender.items():
        assert totals["bytes.sent." + party] == nbytes
    assert totals["bytes.sent"] == sum(ch.bytes_by_sender.values())
    assert totals["frames.sent"] == len(ch.transcript)
    # On the serializing tier nbytes is the measured frame length, so the
    # traced total equals the sum of real encoded frames.
    assert totals["bytes.sent"] == sum(m.nbytes for m in ch.transcript)


def test_traced_ciphertext_fold_under_packing():
    unpacked, _ = _traced_run(packing=False, key_bits=256)
    packed, _ = _traced_run(packing=True, key_bits=256)
    tu, tp = counter_totals(unpacked.trace), counter_totals(packed.trace)
    # Packing folds lanes into shared ciphertexts: fewer fresh encryptions
    # and decrypts, and ``ct.packed`` appears only on the packed run.
    assert tp["ct.encrypted"] < tu["ct.encrypted"]
    assert tp["ct.decrypted"] < tu["ct.decrypted"]
    assert tp.get("ct.packed", 0) > 0
    assert "ct.packed" not in tu


def test_counter_totals_deterministic_across_seeded_runs():
    first, _ = _traced_run()
    second, _ = _traced_run()
    assert counter_totals(first.trace) == counter_totals(second.trace)
    # Span structure is deterministic too, not just totals.
    skeleton = lambda trace: [
        (sp["phase"], sp["party"], sp["parent"], sp["counters"])
        for sp in trace
    ]
    assert skeleton(first.trace) == skeleton(second.trace)


def test_parallel_counts_identical_to_serial():
    """Workers report pow deltas through the pool; totals match serial."""
    values = np.arange(1.0, 13.0).reshape(3, 4)

    def run(parallel):
        # Fresh identically-seeded keys per run: the one-time λ-base ``h``
        # pow is cached on the key, so sharing keys would let the first
        # run pay it for both.
        pub, priv = generate_paillier_keypair(128, seed=7)
        trc = Tracer()
        with use_tracer(trc):
            ct = CryptoTensor.encrypt(pub, values, obfuscate=True,
                                      parallel=parallel)
            prod = ct * 3.0
            (prod + ct).decrypt(priv, parallel=parallel)
        return counter_totals(trc.to_dicts())

    serial = run(None)
    with ParallelContext(workers=2, min_jobs=1) as pctx:
        parallel = run(pctx)
    assert serial == parallel
    assert serial["pow.crt"] == 2 * serial["ct.decrypted"]


# ---------------------------------------------------------------------------
# Zero-overhead-when-disabled: tracer consulted per call, never per element.


def test_disabled_tracer_never_consulted_per_element(monkeypatch):
    pub, priv = generate_paillier_keypair(128, seed=9)
    calls = {"n": 0}

    def counting_get_tracer():
        calls["n"] += 1
        return None

    monkeypatch.setattr("repro.obs.tracer.get_tracer", counting_get_tracer)

    def consultations(size):
        calls["n"] = 0
        values = np.arange(1.0, size + 1.0).reshape(1, -1)
        ct = CryptoTensor.encrypt(pub, values, obfuscate=True)
        prod = ct * 3.0
        (prod + ct).decrypt(priv)
        return calls["n"]

    consultations(2)  # warm-up: the one-time λ-base pow consults once
    small, big = consultations(4), consultations(64)
    # The consultation count is a property of the call graph, not of the
    # tensor size: a 16x larger tensor asks exactly as often.
    assert small == big
    assert 0 < big <= 20


# ---------------------------------------------------------------------------
# Two-party socket run: traced counters reconcile across real processes.


def traced_socket_program(channel):
    """Train two traced batches over the socket tier; return the ledgers.

    Runs in the child process: the tracer is installed there, and the
    link-stats snapshots bracket the traced region so the ``link.*``
    counter deltas are directly comparable.
    """
    ctx = VFLContext(VFLConfig(key_bits=128), seed=3, channel=channel)
    model, vd = _BUILDERS["lr"](ctx)
    # Layer init already sent traffic on this channel (no channel swap on
    # the socket tier), so the reconciliation brackets the traced region
    # with before/after snapshots of every ledger.
    bytes_before = dict(channel.bytes_by_sender)
    frames_before = len(channel.transcript)
    link_before = channel.link.stats.as_dict()
    cfg = TrainConfig(epochs=1, batch_size=16, lr=0.1, momentum=0.9, seed=0,
                      telemetry="memory")
    history = train_federated(model, vd, cfg, max_batches_per_epoch=2)
    link_after = channel.link.stats.as_dict()
    return {
        "totals": counter_totals(history.trace),
        "n_spans": len(history.trace),
        "bytes_by_sender": {
            party: nbytes - bytes_before.get(party, 0)
            for party, nbytes in channel.bytes_by_sender.items()
        },
        "frame_bytes": sum(
            m.nbytes for m in channel.transcript[frames_before:]
        ),
        "n_frames": len(channel.transcript) - frames_before,
        "link_before": link_before,
        "link_after": link_after,
    }


def test_socket_run_traced_counters_reconcile_exactly():
    results = run_two_party(traced_socket_program, (), timeout=SOCKET_TIMEOUT)
    for role in ("guest", "host"):
        r = results["results"][role]
        totals = r["totals"]
        assert r["n_spans"] > 0
        # Byte reconciliation: traced == channel accounting == real frames.
        for party, nbytes in r["bytes_by_sender"].items():
            assert totals["bytes.sent." + party] == nbytes
        assert totals["bytes.sent"] == r["frame_bytes"]
        assert totals["frames.sent"] == r["n_frames"]
        # Link reconciliation: every traced link.* counter equals the
        # LinkStats delta over the traced region, by construction.
        for stat, after in r["link_after"].items():
            if stat == "resend_highwater":  # gauge, not a counter
                continue
            delta = after - r["link_before"][stat]
            assert totals.get("link." + stat, 0) == delta, stat
        assert totals["link.data_sent"] > 0
    # Satellite: run_two_party surfaces the final LinkStats per role, and
    # the post-shutdown snapshot is a superset of the traced region.
    stats = results["link_stats"]
    assert set(stats) == {"guest", "host"}
    for role in ("guest", "host"):
        assert stats[role]["fins"] >= 1
        assert (
            stats[role]["data_sent"]
            >= results["results"][role]["link_after"]["data_sent"]
        )
