"""Protocol-conformance golden tests.

A seeded one-step MatMul and Embed-MatMul transcript (packed and unpacked,
reencrypt and delta) is recorded in ``tests/data/protocol_golden.json`` —
tags, kinds, sender/receiver order, sequence numbers, frame sizes and
payload wire headers, but not ciphertext bytes.  These tests replay the
same seeded scenarios and require exact equality, so a refactor cannot
*silently* change what crosses the trust boundary: any intentional
protocol change must regenerate the golden file
(``PYTHONPATH=src python tests/golden_transcript.py``) and show up in
review as a JSON diff.
"""

from __future__ import annotations

import json

import pytest

import golden_transcript


@pytest.fixture(scope="module")
def golden():
    assert golden_transcript.GOLDEN_PATH.exists(), (
        "golden transcript missing; regenerate with "
        "`PYTHONPATH=src python tests/golden_transcript.py`"
    )
    return json.loads(golden_transcript.GOLDEN_PATH.read_text())


def test_golden_covers_every_scenario(golden):
    assert set(golden) == set(golden_transcript.SCENARIOS)


@pytest.mark.parametrize("scenario", sorted(golden_transcript.SCENARIOS))
def test_transcript_matches_golden(golden, scenario):
    current = golden_transcript.build_transcript(scenario)
    recorded = golden[scenario]
    # Compare message-by-message for a reviewable failure, then whole-list
    # to catch length drift.
    for i, (cur, rec) in enumerate(zip(current, recorded)):
        assert cur == rec, (
            f"{scenario}: message {i} drifted from the recorded protocol\n"
            f"  recorded: {rec}\n  current:  {cur}\n"
            f"If this change is intentional, regenerate the golden file and "
            f"review the diff."
        )
    assert len(current) == len(recorded), (
        f"{scenario}: transcript length drifted "
        f"({len(current)} vs recorded {len(recorded)})"
    )


def test_golden_records_no_ciphertext_material(golden):
    """The checked-in file holds structure only — no residues, no arrays."""
    text = json.dumps(golden)
    for scenario in golden.values():
        for record in scenario:
            assert set(record) == {
                "seq", "sender", "receiver", "tag", "kind", "nbytes", "payload"
            }
    # A ciphertext residue would be a huge integer literal; the largest
    # numbers in the file are frame sizes and accumulation depths.
    for token in text.replace("{", " ").replace("}", " ").split():
        digits = token.strip('",:[]')
        if digits.isdigit():
            assert int(digits) < 10**9, "suspiciously large integer in golden file"
