"""Checkpoint/resume: bit-identity, key custody, and corruption detection.

The contract under test (see :mod:`repro.core.checkpoint`):

* a run that crashes mid-epoch and resumes from its checkpoint finishes
  **bit-identical** to a run that was never interrupted — same losses,
  same revealed weights, because every RNG/blinding/momentum stream was
  captured;
* a checkpoint file **never** contains private-key material — the codec's
  structural refusal guards the disk boundary, and a byte-level scan of a
  real checkpoint confirms the primes are absent (while public moduli are
  demonstrably present, so the scan is looking at real key material);
* a corrupted/truncated/foreign checkpoint fails loudly at load time.
"""

import numpy as np
import pytest

from repro.comm import codec
from repro.comm.party import VFLConfig, VFLContext
from repro.core.checkpoint import (
    CheckpointError,
    TrainingInterrupted,
    load_checkpoint,
    model_key_ring,
    save_checkpoint,
)
from repro.core.models import FederatedLR
from repro.core.trainer import TrainConfig, train_federated
from repro.data.partition import split_vertical
from repro.data.synthetic import make_dense_classification

KEY_BITS = 128


@pytest.fixture(scope="module")
def train_vd():
    full = make_dense_classification(48, 6, seed=50, flip=0.02, nonlinear=False)
    return split_vertical(full)


def _make_model():
    """Rebuild the *same* model every call: identical seeds, identical keys.

    This reconstruction is also the custody story: the key owner's private
    key comes back from the federation seed, never from the checkpoint.
    """
    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=3)
    return FederatedLR(ctx, 3, 3)


def _config(**overrides):
    base = dict(epochs=2, batch_size=16, lr=0.1, momentum=0.9, seed=0,
                blinding_pool_per_epoch=4)
    base.update(overrides)
    return TrainConfig(**base)


def _weights(model):
    return {
        f"{layer.name}.{name}": value
        for layer in model.source_layers()
        for name, value in layer.reveal_weights().items()
    }


def _train_to_checkpoint(train_vd, path, crash_after=4):
    """Run until the injected crash; returns the interrupted model."""
    model = _make_model()
    with pytest.raises(TrainingInterrupted) as excinfo:
        train_federated(
            model, train_vd,
            _config(checkpoint_path=path, checkpoint_every=1,
                    crash_after_batches=crash_after),
        )
    assert excinfo.value.checkpoint_path == path
    return model


# --------------------------------------------------------------------------
# bit-identity


def test_crash_and_resume_is_bit_identical(train_vd, tmp_path):
    """Kill after 4 of 6 batches (mid-epoch 1), resume, match exactly."""
    reference_model = _make_model()
    reference = train_federated(reference_model, train_vd, _config())
    assert len(reference.losses) == 6  # 2 epochs x 3 batches

    path = str(tmp_path / "lr.ckpt")
    _train_to_checkpoint(train_vd, path, crash_after=4)

    resumed_model = _make_model()
    resumed = train_federated(resumed_model, train_vd, _config(),
                              resume_from=path)
    assert resumed.losses == reference.losses  # float-exact, all 6
    ref_w, res_w = _weights(reference_model), _weights(resumed_model)
    assert set(ref_w) == set(res_w)
    for name, value in ref_w.items():
        np.testing.assert_array_equal(res_w[name], value)


def test_resume_at_epoch_boundary(train_vd, tmp_path):
    """Crash exactly at the end of epoch 0; epoch 1 must replay exactly."""
    reference = train_federated(_make_model(), train_vd, _config())
    path = str(tmp_path / "boundary.ckpt")
    _train_to_checkpoint(train_vd, path, crash_after=3)
    resumed = train_federated(_make_model(), train_vd, _config(),
                              resume_from=path)
    assert resumed.losses == reference.losses


def test_checkpoint_interval_respected(train_vd, tmp_path):
    """``checkpoint_every=3`` writes at batches 3 and 6 only."""
    path = str(tmp_path / "sparse.ckpt")
    model = _make_model()
    train_federated(model, train_vd,
                    _config(checkpoint_path=path, checkpoint_every=3))
    sections = load_checkpoint(path, key_ring=model_key_ring(model))
    epoch, next_batch, order, _ = sections["trainer"]
    assert (epoch, next_batch) == (1, 3)  # written after the final batch
    assert sorted(order.tolist()) == list(range(48))
    losses, _, metric = sections["history"]
    assert len(losses) == 6 and metric == "auc"


# --------------------------------------------------------------------------
# key custody


def _prime_bytes(private_key):
    return [
        v.to_bytes((v.bit_length() + 7) // 8, "big")
        for v in (private_key.p, private_key.q)
    ]


def test_checkpoint_file_contains_no_private_key_material(train_vd, tmp_path):
    """Byte-level scan: the primes never reach disk, the public modulus does.

    The modulus check keeps the scan honest — ciphertext frames embed
    ``n``, so key material *of the permitted kind* is visibly present and
    an absent prime is a real absence, not a scan that matches nothing.
    """
    path = str(tmp_path / "custody.ckpt")
    _train_to_checkpoint(train_vd, path)
    blob = open(path, "rb").read()

    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=3)  # same seeds
    for party in ctx.parties.values():
        n = party.public_key.n
        assert n.to_bytes((n.bit_length() + 7) // 8, "big") in blob
        for secret in _prime_bytes(party.private_key):
            assert secret not in blob
    # Scan machinery sanity: a deliberately leaked prime *is* found.
    leaked = blob + _prime_bytes(ctx.B.private_key)[0]
    assert _prime_bytes(ctx.B.private_key)[0] in leaked


def test_checkpoint_frame_encoder_refuses_private_keys():
    """The disk format is codec frames, so the codec's refusal IS the
    custody guard: a private key (or carrier) cannot be framed at all."""
    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=7)
    with pytest.raises(codec.UnsupportedWireType, match="private-key material"):
        codec.encode_payload_frame(ctx.B.private_key)
    with pytest.raises(codec.UnsupportedWireType, match="key owner's"):
        codec.encode_payload_frame(("ckpt", ctx.B))


def test_resend_buffer_never_holds_private_key_material():
    """The reliability layer buffers *frames*; since no frame can encode a
    private key, the resend buffer inherits the custody guarantee.  Scan
    a live buffer holding ciphertext traffic to confirm."""
    import socket

    from repro.comm.transport import ReliableLink
    from repro.crypto.crypto_tensor import CryptoTensor

    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=8)
    ct = CryptoTensor.encrypt(ctx.A.public_key, np.arange(6.0).reshape(2, 3))
    raw_a, raw_b = socket.socketpair()
    raw_a.settimeout(0.5)
    link = ReliableLink(raw_a)
    try:
        for i in range(3):
            link.send_frame(codec.encode_payload_frame((f"ct{i}", ct)))
        assert len(link._resend) == 3  # nothing acked yet: all buffered
        buffered = b"".join(link._resend.values())
        n = ctx.A.public_key.n
        assert n.to_bytes((n.bit_length() + 7) // 8, "big") in buffered
        for secret in _prime_bytes(ctx.A.private_key):
            assert secret not in buffered
    finally:
        raw_a.close()
        raw_b.close()


# --------------------------------------------------------------------------
# corruption / mismatch detection at load time


def _checkpoint_on_disk(train_vd, tmp_path):
    path = str(tmp_path / "victim.ckpt")
    model = _train_to_checkpoint(train_vd, path)
    return path, model


def test_truncated_checkpoint_raises(train_vd, tmp_path):
    path, model = _checkpoint_on_disk(train_vd, tmp_path)
    blob = open(path, "rb").read()
    open(path, "wb").write(blob[: len(blob) - 7])
    with pytest.raises(codec.WireFormatError, match="truncated frame stream"):
        load_checkpoint(path, key_ring=model_key_ring(model))


def test_bit_flipped_checkpoint_raises_integrity_error(train_vd, tmp_path):
    path, model = _checkpoint_on_disk(train_vd, tmp_path)
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0x08  # one flipped bit, anywhere in a body
    open(path, "wb").write(bytes(blob))
    with pytest.raises(codec.FrameIntegrityError, match="CRC32"):
        load_checkpoint(path, key_ring=model_key_ring(model))


def test_foreign_file_raises_checkpoint_error(tmp_path):
    path = str(tmp_path / "not-a-checkpoint.ckpt")
    open(path, "wb").write(codec.encode_payload_frame(("something", "else")))
    with pytest.raises(CheckpointError, match="not a BlindFL checkpoint"):
        load_checkpoint(path)
    open(path, "wb").write(
        codec.encode_payload_frame(("blindfl-checkpoint", 999))
    )
    with pytest.raises(CheckpointError, match="version 999 not supported"):
        load_checkpoint(path)
    open(path, "wb").write(b"")
    with pytest.raises(CheckpointError, match="is empty"):
        load_checkpoint(path)


def test_missing_section_raises(train_vd, tmp_path):
    path, model = _checkpoint_on_disk(train_vd, tmp_path)
    ring = model_key_ring(model)
    blob = open(path, "rb").read()
    # Walk the frame stream, dropping the layers section byte-identically.
    offset, out = 0, []
    for _, body in codec.iter_frames(blob):
        size = codec.PREAMBLE_SIZE + len(body) + codec.CRC_SIZE
        frame = blob[offset : offset + size]
        offset += size
        payload = codec.decode_payload(body, ring)
        if not (isinstance(payload, tuple) and payload and payload[0] == "layers"):
            out.append(frame)
    open(path, "wb").write(b"".join(out))
    with pytest.raises(CheckpointError, match="missing sections.*layers"):
        load_checkpoint(path, key_ring=model_key_ring(model))


def test_resume_onto_mismatched_model_raises(train_vd, tmp_path):
    path, _ = _checkpoint_on_disk(train_vd, tmp_path)
    wrong = FederatedLR(VFLContext(VFLConfig(key_bits=KEY_BITS), seed=3), 4, 2)
    with pytest.raises(CheckpointError):
        train_federated(wrong, train_vd, _config(), resume_from=path)
