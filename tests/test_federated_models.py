"""End-to-end tests for the federated models and trainer.

These are the integration layer: every model trains on a Table-4-shaped
synthetic dataset, its loss must fall, and for LR/MLR we additionally check
*exact* equivalence with a plaintext model initialised from the revealed
weights — the lossless property at full-training granularity.
"""

import numpy as np
import pytest

from repro.baselines.nonfed import PlainInputs, evaluate_plain, train_plain
from repro.comm.party import VFLConfig, VFLContext
from repro.core.models import (
    FederatedDLRM,
    FederatedLR,
    FederatedMLP,
    FederatedMLR,
    FederatedWDL,
)
from repro.core.optimizer import FederatedSGD
from repro.core.trainer import (
    TrainConfig,
    batch_of,
    evaluate_federated,
    predict,
    train_federated,
)
from repro.data.partition import split_vertical
from repro.data.synthetic import (
    make_categorical_classification,
    make_dense_classification,
    make_mixed_classification,
    make_sparse_classification,
)

KEY_BITS = 128
FAST = TrainConfig(epochs=2, batch_size=16, lr=0.1, momentum=0.9, seed=0)


def ctx_factory(seed=7, **kwargs):
    return VFLContext(VFLConfig(key_bits=KEY_BITS, **kwargs), seed=seed)


@pytest.fixture(scope="module")
def dense_vertical():
    full = make_dense_classification(240, 10, seed=20, flip=0.02, nonlinear=False)
    train = full.subset(np.arange(160))
    test = full.subset(np.arange(160, 240))
    return split_vertical(train), split_vertical(test)


def test_federated_lr_trains_and_beats_chance(dense_vertical):
    train_vd, test_vd = dense_vertical
    model = FederatedLR(ctx_factory(), in_a=5, in_b=5)
    history = train_federated(model, train_vd, FAST, test_data=test_vd)
    assert history.losses[-1] < history.losses[0]
    assert history.final_metric > 0.6
    assert history.metric_name == "auc"


def test_federated_lr_exactly_matches_plaintext_training(dense_vertical):
    """The lossless property, end to end: same init, same batches, same
    updates -> identical losses and identical final weights."""
    train_vd, _ = dense_vertical
    model = FederatedLR(ctx_factory(), in_a=5, in_b=5)
    w0 = model.source.reveal_weights()

    # Plaintext twin seeded with the *same* effective initial weights.
    from repro.tensor.losses import bce_with_logits
    from repro.tensor.tensor import Tensor
    from repro.tensor.optim import SGD
    from repro.data.loader import BatchLoader

    w_cat = Tensor(np.vstack([w0["W_A"], w0["W_B"]]), requires_grad=True)
    bias = Tensor(np.zeros(1), requires_grad=True)
    plain_opt = SGD([w_cat, bias], lr=FAST.lr, momentum=FAST.momentum)

    fed_opt = FederatedSGD(model, lr=FAST.lr, momentum=FAST.momentum)
    from repro.tensor.losses import bce_with_logits as crit

    rng = np.random.default_rng(0)
    fed_losses, plain_losses = [], []
    loader = BatchLoader(train_vd, 16, rng=rng)
    for batch in loader:
        out = model.forward(batch, train=True)
        fed_opt.zero_grad()
        loss = crit(out, batch.y)
        loss.backward()
        model.backward_sources()
        fed_opt.step()
        fed_losses.append(loss.item())

        x = np.hstack(
            [batch.party("A").x_dense, batch.party("B").x_dense]
        )
        plain_out = Tensor(x) @ w_cat + bias
        plain_opt.zero_grad()
        p_loss = bce_with_logits(plain_out, batch.y)
        p_loss.backward()
        plain_opt.step()
        plain_losses.append(p_loss.item())

    np.testing.assert_allclose(fed_losses, plain_losses, atol=1e-4)
    w1 = model.source.reveal_weights()
    np.testing.assert_allclose(
        np.vstack([w1["W_A"], w1["W_B"]]), w_cat.data, atol=1e-4
    )


def test_federated_mlr_on_multiclass(dense_vertical):
    train = make_dense_classification(120, 8, n_classes=3, seed=22, flip=0.02)
    vd = split_vertical(train)
    model = FederatedMLR(ctx_factory(), in_a=4, in_b=4, n_classes=3)
    history = train_federated(model, vd, FAST, test_data=vd)
    assert history.metric_name == "accuracy"
    assert history.final_metric > 0.5
    assert history.losses[-1] < history.losses[0]


def test_federated_mlp_trains(dense_vertical):
    train_vd, test_vd = dense_vertical
    model = FederatedMLP(ctx_factory(), in_a=5, in_b=5, hidden=[8], n_out=1)
    history = train_federated(model, train_vd, FAST, test_data=test_vd)
    assert history.losses[-1] < history.losses[0]
    assert history.final_metric > 0.55


def test_federated_mlp_on_sparse_input():
    train = make_sparse_classification(96, 60, nnz_per_row=8, seed=23, flip=0.02)
    vd = split_vertical(train)
    cfg = TrainConfig(epochs=1, batch_size=16, lr=0.1, momentum=0.0, seed=0)
    model = FederatedMLP(ctx_factory(), in_a=30, in_b=30, hidden=[6], n_out=1)
    history = train_federated(model, vd, cfg, test_data=vd)
    assert history.losses[-1] < history.losses[0] * 1.2  # moving, not diverging
    assert history.final_metric > 0.55


def test_federated_wdl_trains():
    train = make_mixed_classification(
        96, sparse_dim=40, nnz_per_row=6, n_fields=4, vocab_size=10, seed=24
    )
    vd = split_vertical(train)
    model = FederatedWDL(
        ctx_factory(),
        in_a=20,
        in_b=20,
        vocab_a=vd.party("A").vocab_sizes,
        vocab_b=vd.party("B").vocab_sizes,
        emb_dim=3,
        deep_hidden=[6],
    )
    cfg = TrainConfig(epochs=2, batch_size=16, lr=0.1, momentum=0.9)
    history = train_federated(model, vd, cfg, test_data=vd)
    assert history.losses[-1] < history.losses[0]
    assert history.final_metric > 0.55


def test_federated_dlrm_trains():
    train = make_mixed_classification(
        80, sparse_dim=30, nnz_per_row=5, n_fields=4, vocab_size=8, seed=25
    )
    vd = split_vertical(train)
    model = FederatedDLRM(
        ctx_factory(),
        in_a=15,
        in_b=15,
        vocab_a=vd.party("A").vocab_sizes,
        vocab_b=vd.party("B").vocab_sizes,
        emb_dim=3,
        arm_dim=4,
        top_hidden=[8],
    )
    cfg = TrainConfig(epochs=2, batch_size=16, lr=0.05, momentum=0.9)
    history = train_federated(model, vd, cfg)
    assert history.losses[-1] < history.losses[0]


def test_categorical_only_wdl_equivalent():
    """Embed-MatMul end-to-end on pure categorical data (news20-like MLR is
    MatMul; this covers the embedding path with labels)."""
    train = make_categorical_classification(64, n_fields=4, vocab_size=6, seed=26)
    vd = split_vertical(train)
    model = FederatedDLRM(
        ctx_factory(),
        in_a=1,
        in_b=1,
        vocab_a=vd.party("A").vocab_sizes,
        vocab_b=vd.party("B").vocab_sizes,
        emb_dim=2,
        arm_dim=3,
        top_hidden=[4],
    )
    # No numeric features in this dataset: fabricate tiny dense blocks.
    for name in ("A", "B"):
        vd.parties[name].x_dense = np.ones((train.n, 1))
    cfg = TrainConfig(epochs=1, batch_size=16, lr=0.05, momentum=0.0)
    history = train_federated(model, vd, cfg)
    assert len(history.losses) == 4


def test_predict_and_evaluate(dense_vertical):
    train_vd, test_vd = dense_vertical
    model = FederatedLR(ctx_factory(), in_a=5, in_b=5)
    scores = predict(model, test_vd, batch_size=32)
    assert scores.shape == (test_vd.n, 1)
    metrics = evaluate_federated(model, test_vd)
    assert 0.0 <= metrics["auc"] <= 1.0


def test_federated_sgd_validation(dense_vertical):
    train_vd, _ = dense_vertical
    model = FederatedLR(ctx_factory(), in_a=5, in_b=5)
    with pytest.raises(ValueError):
        FederatedSGD(model, lr=0.0)
    with pytest.raises(ValueError):
        FederatedSGD(model, lr=0.1, momentum=1.0)


def test_model_source_layer_discovery(dense_vertical):
    model = FederatedWDL(
        ctx_factory(), in_a=2, in_b=2, vocab_a=[3], vocab_b=[3], emb_dim=2,
        deep_hidden=[4],
    )
    layers = list(model.source_layers())
    assert {l.name for l in layers} == {"wdl.wide", "wdl.deep"}
    params = model.federated_parameters()
    assert len(params) == 2 + 4  # MatMul: W_A,W_B; Embed: Q_A,Q_B,W_A,W_B


def test_backward_sources_without_forward(dense_vertical):
    model = FederatedLR(ctx_factory(), in_a=5, in_b=5)
    with pytest.raises(RuntimeError, match="no cached activations"):
        model.backward_sources()


def test_batch_of_helper(dense_vertical):
    train_vd, _ = dense_vertical
    batch = batch_of(train_vd, 12, seed=3)
    assert batch.size == 12
    assert batch.party("A").x_dense.shape == (12, 5)
