"""Hypothesis property tests on CryptoTensor arithmetic.

Encrypted-tensor operations must commute with decryption for arbitrary
(well-conditioned) inputs — the algebraic backbone every protocol relies
on.  Shapes stay tiny so each example costs a handful of modexps.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.crypto_tensor import CryptoTensor, sparse_t_matmul_cipher
from repro.tensor.sparse import CSRMatrix

values = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


def arrays(rows, cols):
    return st.lists(
        st.lists(values, min_size=cols, max_size=cols),
        min_size=rows,
        max_size=rows,
    ).map(lambda rows_: np.array(rows_, dtype=np.float64))


@given(arrays(2, 3), arrays(2, 3))
@settings(max_examples=10, deadline=None)
def test_addition_homomorphism(keypair, a, b):
    pk, sk = keypair
    out = CryptoTensor.encrypt(pk, a) + CryptoTensor.encrypt(pk, b)
    np.testing.assert_allclose(out.decrypt(sk), a + b, atol=1e-6)


@given(arrays(2, 2), st.floats(min_value=-50, max_value=50, allow_nan=False))
@settings(max_examples=10, deadline=None)
def test_scalar_mul_homomorphism(keypair, a, c):
    pk, sk = keypair
    out = CryptoTensor.encrypt(pk, a) * c
    np.testing.assert_allclose(out.decrypt(sk), a * c, atol=1e-4)


@given(arrays(2, 3), arrays(3, 2))
@settings(max_examples=10, deadline=None)
def test_matmul_homomorphism(keypair, x, v):
    pk, sk = keypair
    out = x @ CryptoTensor.encrypt(pk, v)
    np.testing.assert_allclose(out.decrypt(sk), x @ v, atol=1e-3)


@given(arrays(3, 4))
@settings(max_examples=10, deadline=None)
def test_negation_involution(keypair, a):
    pk, sk = keypair
    out = -(-CryptoTensor.encrypt(pk, a))
    np.testing.assert_allclose(out.decrypt(sk), a, atol=1e-6)


@given(arrays(3, 4))
@settings(max_examples=8, deadline=None)
def test_sparse_t_matmul_matches_dense(keypair, dense):
    pk, sk = keypair
    dense = dense.copy()
    dense[np.abs(dense) < 30] = 0.0  # sparsify
    csr = CSRMatrix.from_dense(dense)
    g = np.arange(1.0, 7.0).reshape(3, 2)
    ct = CryptoTensor.encrypt(pk, g)
    out = sparse_t_matmul_cipher(csr, ct)
    np.testing.assert_allclose(out.decrypt(sk), dense.T @ g, atol=1e-3)


def test_sparse_t_matmul_restricted_columns(keypair, rng):
    pk, sk = keypair
    dense = np.zeros((3, 8))
    dense[:, [1, 4, 6]] = rng.normal(size=(3, 3))
    csr = CSRMatrix.from_dense(dense)
    g = rng.normal(size=(3, 2))
    ct = CryptoTensor.encrypt(pk, g)
    cols = np.array([1, 4, 6])
    out = sparse_t_matmul_cipher(csr, ct, columns=cols)
    np.testing.assert_allclose(out.decrypt(sk), dense[:, cols].T @ g, atol=1e-6)


def test_sparse_t_matmul_rejects_column_outside_support(keypair, rng):
    import pytest

    pk, _ = keypair
    dense = np.zeros((2, 5))
    dense[:, 2] = 1.0
    csr = CSRMatrix.from_dense(dense)
    ct = CryptoTensor.encrypt(pk, rng.normal(size=(2, 1)))
    with pytest.raises(IndexError):
        sparse_t_matmul_cipher(csr, ct, columns=np.array([0, 1]))


def test_sparse_t_matmul_shape_mismatch(keypair, rng):
    import pytest

    pk, _ = keypair
    csr = CSRMatrix.from_dense(rng.normal(size=(4, 3)))
    ct = CryptoTensor.encrypt(pk, rng.normal(size=(5, 1)))
    with pytest.raises(ValueError):
        sparse_t_matmul_cipher(csr, ct)
