"""Packed/unpacked equivalence: the SIMD-slot subsystem must decode
identically to the per-element ciphertext path on every primitive, across
key sizes — mirroring ``test_kernels_equivalence.py`` one layer up.

The packed kernels reuse the flat kernels' mantissa encodings and exponent
alignment exactly, so assertions here are *bit-level on the decoded
floats* (``np.array_equal``, not ``allclose``).  Guard-band overflow must
raise loudly, both from the conservative op-time bookkeeping and from the
decoder's borrow-chain check when the bookkeeping is bypassed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.channel import payload_nbytes
from repro.comm.message import MessageKind
from repro.comm.party import VFLConfig, VFLContext
from repro.crypto.crypto_tensor import (
    CryptoTensor,
    matmul_plain_cipher,
    sparse_matmul_cipher,
)
from repro.crypto.kernels import TENSOR_EXPONENT
from repro.crypto.packing import (
    PackedCryptoTensor,
    SlotLayout,
    pack_add_flat,
    protocol_layout,
)
from repro.crypto.paillier import PaillierPublicKey, generate_paillier_keypair
from repro.crypto.parallel import ParallelContext
from repro.crypto.secret_sharing import he2ss_receive, he2ss_split
from repro.tensor.sparse import CSRMatrix

KEY_BITS = [128, 192, 256]
PRODUCT_KEY_BITS = [192, 256]  # 72 fractional product bits never fit 128


@pytest.fixture(scope="module", params=KEY_BITS)
def sized_keypair(request):
    return generate_paillier_keypair(request.param, seed=2000 + request.param)


@pytest.fixture(scope="module", params=PRODUCT_KEY_BITS)
def product_keypair(request):
    return generate_paillier_keypair(request.param, seed=3000 + request.param)


def _sum_layout(pk) -> SlotLayout:
    """An add-only layout (no plaintext products) that fits even 128 bits.

    ``value_frac_bits=53`` budgets for plain adds at float-natural
    precision, which align the ciphertext below ``TENSOR_EXPONENT``.
    """
    return SlotLayout.design(
        pk, value_frac_bits=53, value_mag_bits=4, plain_mag_bits=1,
        acc_depth=2, mask_scale=8.0, plain_frac_bits=0,
    )


def _product_layout(pk) -> SlotLayout:
    """A layout with full 72-bit product precision (needs >= 192-bit keys)."""
    return SlotLayout.design(
        pk, value_mag_bits=4, plain_mag_bits=4, acc_depth=16, mask_scale=2.0**8
    )


# ---------------------------------------------------------------------------
# Layout math.


def test_layout_slot_width_formula():
    pk = PaillierPublicKey((1 << 2047) + 1)  # layout math needs only n
    layout = SlotLayout.design(
        pk, value_mag_bits=8, plain_mag_bits=8, acc_depth=1024,
        mask_scale=2.0**16,
    )
    # slot = max(2*precision-ish product width + depth guard, mask width) + 2
    product = (40 + 8) + (32 + 8) + 10
    mask = 40 + 32 + 17
    assert layout.slot_bits == max(product, mask) + 2
    cap = pk.max_int.bit_length() - 1
    assert layout.slots == cap // layout.slot_bits
    assert layout.slots >= 20  # the ~25x ROADMAP ballpark at 2048 bits
    assert layout.slot_bits * layout.slots <= cap


def test_layout_rejects_keys_too_small():
    pk, _ = generate_paillier_keypair(64, seed=9)
    with pytest.raises(ValueError):
        SlotLayout.design(pk)


def test_layout_ct_count_rounds_up():
    layout = SlotLayout(slot_bits=50, slots=3, key_bits=256, base_value_bits=40)
    assert layout.ct_count(1) == 1
    assert layout.ct_count(3) == 1
    assert layout.ct_count(4) == 2
    assert layout.ct_count(7) == 3


def test_protocol_layout_falls_back_to_none_on_short_keys():
    pk, _ = generate_paillier_keypair(128, seed=10)
    assert protocol_layout(pk, mask_scale=2.0**16, acc_depth=64) is None
    big = PaillierPublicKey((1 << 2047) + 1)
    layout = protocol_layout(big, mask_scale=2.0**16, acc_depth=64)
    assert layout is not None and layout.slots >= 5


# ---------------------------------------------------------------------------
# Round trips.


def test_pack_encrypt_roundtrip_bit_identical(sized_keypair):
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    assert layout.slots >= 2
    rng = np.random.default_rng(0)
    arr = rng.normal(size=(4, 5))
    packed = PackedCryptoTensor.encrypt(pk, arr, layout, obfuscate=True)
    unpacked = CryptoTensor.encrypt(pk, arr, obfuscate=False)
    assert packed.n_ciphertexts == 4 * layout.ct_count(5)
    assert packed.n_ciphertexts < unpacked.size
    assert np.array_equal(packed.decrypt(sk), unpacked.decrypt(sk))


def test_homomorphic_pack_and_unpack_roundtrip(sized_keypair):
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    rng = np.random.default_rng(1)
    arr = rng.normal(size=(3, 7))  # 7 does not divide the slot count
    tensor = CryptoTensor.encrypt(pk, arr, obfuscate=True)
    packed = tensor.pack(layout)
    assert np.array_equal(packed.decrypt(sk), tensor.decrypt(sk))
    lowered = packed.unpack(sk)
    assert isinstance(lowered, CryptoTensor)
    assert np.array_equal(lowered.decrypt(sk), tensor.decrypt(sk))


def test_pack_1d_tensor(sized_keypair):
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    arr = np.array([0.5, -1.25, 2.0])
    packed = PackedCryptoTensor.encrypt(pk, arr, layout)
    out = packed.decrypt(sk)
    assert out.shape == (3,)
    assert np.array_equal(out, CryptoTensor.encrypt(pk, arr).decrypt(sk))


# ---------------------------------------------------------------------------
# Elementwise ops.


def test_packed_add_sub_match_unpacked(sized_keypair):
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    rng = np.random.default_rng(2)
    a = rng.normal(size=(3, 5))
    b = rng.normal(size=(3, 5))
    pa = PackedCryptoTensor.encrypt(pk, a, layout)
    pb = PackedCryptoTensor.encrypt(pk, b, layout)
    ua = CryptoTensor.encrypt(pk, a, obfuscate=False)
    ub = CryptoTensor.encrypt(pk, b, obfuscate=False)
    assert np.array_equal((pa + pb).decrypt(sk), (ua + ub).decrypt(sk))
    assert np.array_equal((pa - pb).decrypt(sk), (ua - ub).decrypt(sk))
    assert np.array_equal((-pa).decrypt(sk), -pa.decrypt(sk))


def test_packed_plain_add_matches_unpacked(sized_keypair):
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    rng = np.random.default_rng(3)
    a = rng.normal(size=(2, 4))
    b = rng.normal(size=(2, 4))
    pa = PackedCryptoTensor.encrypt(pk, a, layout)
    ua = CryptoTensor.encrypt(pk, a, obfuscate=False)
    assert np.array_equal((pa + b).decrypt(sk), (ua + b).decrypt(sk))
    assert np.array_equal((pa - b).decrypt(sk), (ua - b).decrypt(sk))


def test_packed_scalar_mul_matches_unpacked(product_keypair):
    pk, sk = product_keypair
    layout = _product_layout(pk)
    rng = np.random.default_rng(4)
    a = rng.normal(size=(2, 5))
    pa = PackedCryptoTensor.encrypt(pk, a, layout)
    ua = CryptoTensor.encrypt(pk, a, obfuscate=False)
    for c in (2.5, -1.75, 1.0, 0.0):
        assert np.array_equal((pa * c).decrypt(sk), (ua * c).decrypt(sk)), c


def test_packed_row_gather_and_scatter(sized_keypair):
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    rng = np.random.default_rng(5)
    a = rng.normal(size=(5, 4))
    pa = PackedCryptoTensor.encrypt(pk, a, layout)
    taken = pa.take_rows(np.array([3, 0, 3]))
    expected = CryptoTensor.encrypt(pk, a, obfuscate=False).take_rows(
        np.array([3, 0, 3])
    )
    assert np.array_equal(taken.decrypt(sk), expected.decrypt(sk))
    fresh_rows = rng.normal(size=(2, 4))
    replacement = PackedCryptoTensor.encrypt(pk, fresh_rows, layout)
    pa.set_rows(np.array([1, 4]), replacement)
    out = pa.decrypt(sk)
    ref = a.copy()
    ref[[1, 4]] = fresh_rows
    ref_enc = CryptoTensor.encrypt(pk, ref, obfuscate=False).decrypt(sk)
    assert np.array_equal(out, ref_enc)


# ---------------------------------------------------------------------------
# Matmuls (packed along the output dimension).


def test_packed_dense_matmul_matches_unpacked(product_keypair):
    pk, sk = product_keypair
    layout = _product_layout(pk)
    assert layout.slots >= 2
    rng = np.random.default_rng(6)
    x = rng.normal(size=(5, 6))
    x[rng.random(x.shape) < 0.3] = 0.0  # exercise zero-skipping
    v = rng.normal(size=(6, 5)) * 0.1
    pv = PackedCryptoTensor.encrypt(pk, v, layout)
    uv = CryptoTensor.encrypt(pk, v, obfuscate=False)
    packed = matmul_plain_cipher(x, pv)
    unpacked = matmul_plain_cipher(x, uv)
    assert isinstance(packed, PackedCryptoTensor)
    assert packed.n_ciphertexts < unpacked.size
    assert np.array_equal(packed.decrypt(sk), unpacked.decrypt(sk))


def test_packed_sparse_matmul_matches_unpacked(product_keypair):
    pk, sk = product_keypair
    layout = _product_layout(pk)
    rng = np.random.default_rng(7)
    dense = (rng.random((6, 8)) < 0.4).astype(np.float64)
    x = CSRMatrix.from_dense(dense)
    v = rng.normal(size=(8, 4)) * 0.1
    pv = PackedCryptoTensor.encrypt(pk, v, layout)
    uv = CryptoTensor.encrypt(pk, v, obfuscate=False)
    packed = sparse_matmul_cipher(x, pv)
    unpacked = sparse_matmul_cipher(x, uv)
    assert np.array_equal(packed.decrypt(sk), unpacked.decrypt(sk))


def test_packed_matmul_operator_dispatch(product_keypair):
    pk, sk = product_keypair
    layout = _product_layout(pk)
    rng = np.random.default_rng(8)
    x = rng.normal(size=(3, 4))
    v = rng.normal(size=(4, 5)) * 0.1
    pv = PackedCryptoTensor.encrypt(pk, v, layout)
    uv = CryptoTensor.encrypt(pk, v, obfuscate=False)
    assert np.array_equal((x @ pv).decrypt(sk), (x @ uv).decrypt(sk))
    with pytest.raises(TypeError):
        pv @ x  # cipher @ plain needs per-lane multipliers
    with pytest.raises(TypeError):
        pv.T  # lanes run along the last axis only


# ---------------------------------------------------------------------------
# HE2SS mask path.


def test_packed_he2ss_mask_add_bit_identical(product_keypair):
    pk, sk = product_keypair
    layout = _product_layout(pk)
    rng = np.random.default_rng(9)
    x = rng.normal(size=(4, 3))
    v = rng.normal(size=(3, 5)) * 0.1
    phi = rng.uniform(-8, 8, size=(4, 5))
    pv = PackedCryptoTensor.encrypt(pk, v, layout)
    uv = CryptoTensor.encrypt(pk, v, obfuscate=False)
    packed_masked = matmul_plain_cipher(x, pv).add_plain(
        -phi, encode_exponent=TENSOR_EXPONENT, obfuscate=True
    )
    unpacked_masked = matmul_plain_cipher(x, uv) + CryptoTensor.encrypt(
        pk, -phi, exponent=TENSOR_EXPONENT, obfuscate=True
    )
    assert np.array_equal(packed_masked.decrypt(sk), unpacked_masked.decrypt(sk))


def test_he2ss_split_with_packing_layout(product_keypair):
    """Protocol-level: pack-before-send decodes identically + sends fewer cts."""
    pk, sk = product_keypair
    key_bits = pk.key_bits
    cfg = VFLConfig(key_bits=key_bits, mask_scale=2.0**8)
    ctx = VFLContext(cfg, seed=21)
    a, b = ctx.A, ctx.B
    layout = _product_layout(b.public_key)
    rng = np.random.default_rng(10)
    values = rng.normal(size=(3, 6))
    ct = CryptoTensor.encrypt(b.public_key, values, obfuscate=True)

    # Unpacked reference (fresh context so rng streams align).
    ctx2 = VFLContext(VFLConfig(key_bits=key_bits, mask_scale=2.0**8), seed=21)
    a2, b2 = ctx2.A, ctx2.B
    ct2 = CryptoTensor.encrypt(b2.public_key, values, obfuscate=True)

    phi = he2ss_split(ct, a, "B", ctx.channel, "t", cfg.mask_scale, packing=layout)
    share = he2ss_receive(b, ctx.channel, "t")
    phi2 = he2ss_split(ct2, a2, "B", ctx2.channel, "t", cfg.mask_scale)
    share2 = he2ss_receive(b2, ctx2.channel, "t")
    assert np.array_equal(phi, phi2)
    assert np.array_equal(share, share2)
    packed_bytes = ctx.channel.transcript[-1].nbytes
    unpacked_bytes = ctx2.channel.transcript[-1].nbytes
    assert packed_bytes * (layout.slots - 1) < unpacked_bytes <= packed_bytes * layout.slots


def test_contiguous_pack_covers_column_vectors(sized_keypair):
    """Transfer-only packs span rows: a (n, 1) tensor still fills slots."""
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    rng = np.random.default_rng(14)
    col = rng.normal(size=(6, 1))
    tensor = CryptoTensor.encrypt(pk, col, obfuscate=True)
    row_packed = tensor.pack(layout)
    contiguous = PackedCryptoTensor.pack(tensor, layout, contiguous=True)
    assert row_packed.n_ciphertexts == 6  # row-aligned lanes: no win
    assert contiguous.n_ciphertexts == layout.ct_count(6)  # dense stream
    assert np.array_equal(contiguous.decrypt(sk), tensor.decrypt(sk))
    # Masking and lane-wise arithmetic still work on the dense stream.
    phi = rng.uniform(-2, 2, size=(6, 1))
    masked = contiguous.add_plain(-phi, encode_exponent=TENSOR_EXPONENT)
    ref = tensor + CryptoTensor.encrypt(pk, -phi, exponent=TENSOR_EXPONENT)
    assert np.array_equal(masked.decrypt(sk), ref.decrypt(sk))
    # Row ops and matmuls are structurally unavailable.
    with pytest.raises(TypeError):
        contiguous.take_rows(np.array([0]))
    with pytest.raises(TypeError):
        np.ones((2, 6)) @ contiguous


def test_he2ss_packs_column_vectors_contiguously(sized_keypair):
    """The LR-shaped transfer (out_dim == 1) must still shrink on the wire."""
    pk, _ = sized_keypair
    cfg = VFLConfig(key_bits=pk.key_bits, mask_scale=4.0)
    ctx = VFLContext(cfg, seed=33)
    layout = _sum_layout(ctx.B.public_key)
    values = np.arange(8.0).reshape(8, 1) / 16.0
    ct = CryptoTensor.encrypt(ctx.B.public_key, values, obfuscate=True)
    phi = he2ss_split(ct, ctx.A, "B", ctx.channel, "t", cfg.mask_scale, packing=layout)
    share = he2ss_receive(ctx.B, ctx.channel, "t")
    assert share.shape == (8, 1)
    assert phi.shape == (8, 1)
    sent = ctx.channel.transcript[-1]
    per_ct = 2 * ctx.B.public_key.key_bits // 8
    assert sent.nbytes == layout.ct_count(8) * per_ct  # not 8 * per_ct


# ---------------------------------------------------------------------------
# Segment-aware reshape: lanes survive ``take_rows -> reshape`` as pure
# ciphertext-slice bookkeeping (the packed embedding-lookup pipeline).


@pytest.mark.parametrize("emb_dim", [3, 4])  # slots=2 divides 4 but not 3
def test_take_rows_reshape_bit_identical(sized_keypair, emb_dim):
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    rng = np.random.default_rng(20)
    table = rng.normal(size=(7, emb_dim))
    pt = PackedCryptoTensor.encrypt(pk, table, layout)
    ut = CryptoTensor.encrypt(pk, table, obfuscate=False)
    flat = np.array([2, 6, 0, 2, 5, 1])  # batch=3 rows of fields=2 lookups
    before = list(pt.cts)
    lk = pt.take_rows(flat).reshape(3, 2 * emb_dim)
    assert pt.cts == before  # gather/reshape never touch a ciphertext
    ref = ut.take_rows(flat).reshape(3, -1)
    assert lk.shape == (3, 2 * emb_dim)
    assert np.array_equal(lk.decrypt(sk), ref.decrypt(sk))
    # And back down to per-lookup rows — still pure bookkeeping.
    back = lk.reshape(6, emb_dim)
    assert np.array_equal(back.decrypt(sk), ut.take_rows(flat).decrypt(sk))


def test_take_rows_reshape_matmul_matches_unpacked(product_keypair):
    pk, sk = product_keypair
    layout = _product_layout(pk)
    rng = np.random.default_rng(21)
    table = rng.normal(size=(6, 2 * layout.slots)) * 0.1
    pt = PackedCryptoTensor.encrypt(pk, table, layout)
    ut = CryptoTensor.encrypt(pk, table, obfuscate=False)
    flat = np.array([1, 4, 0, 5])
    lk = pt.take_rows(flat).reshape(2, -1)
    ref = ut.take_rows(flat).reshape(2, -1)
    x = rng.normal(size=(3, 2))
    packed = matmul_plain_cipher(x, lk)
    unpacked = matmul_plain_cipher(x, ref)
    assert isinstance(packed, PackedCryptoTensor)
    assert packed.n_ciphertexts < unpacked.size
    assert np.array_equal(packed.decrypt(sk), unpacked.decrypt(sk))


def test_reshape_fallback_rules(sized_keypair):
    """A reshape that would split a segment (ciphertext) across rows must
    refuse loudly; contiguous packs have no row structure at all."""
    pk, _ = sized_keypair
    layout = _sum_layout(pk)
    rng = np.random.default_rng(22)
    pt = PackedCryptoTensor.encrypt(pk, rng.normal(size=(4, 3)), layout)
    assert pt.seg_cols == 3  # slots=2 does not divide 3: whole-row segments
    with pytest.raises(TypeError, match="segment"):
        pt.reshape(3, 4)  # 4 % 3 != 0 would split a ciphertext
    with pytest.raises(ValueError):
        pt.reshape(5, 2)  # wrong element count
    assert pt.reshape(2, 6).shape == (2, 6)  # whole segments regroup fine
    assert pt.reshape(-1, 6).shape == (2, 6)
    dense = PackedCryptoTensor.encrypt(pk, rng.normal(size=(4, layout.slots)), layout)
    assert dense.seg_cols == layout.slots  # dense lanes: canonical segments
    assert dense.reshape(2, 2 * layout.slots).shape == (2, 2 * layout.slots)
    cont = PackedCryptoTensor.encrypt(
        pk, rng.normal(size=(4, 2)), layout, contiguous=True
    )
    with pytest.raises(TypeError):
        cont.reshape(2, 4)


# ---------------------------------------------------------------------------
# Packed scatter-add (the packed ``lkup_bw``).


def test_packed_scatter_add_matches_unpacked(sized_keypair):
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    rng = np.random.default_rng(23)
    grads = rng.normal(size=(4, 3))
    idx = np.array([3, 0, 3, 1])  # at most 2 hits: inside acc_depth=2
    enc = CryptoTensor.encrypt(pk, grads, obfuscate=True)
    packed = enc.pack(layout, value_bits=layout.acc_operand_bits)
    out = packed.scatter_add_rows(idx, num_rows=5)
    ref = enc.scatter_add_rows(idx, num_rows=5)
    assert out.shape == (5, 3)
    assert out.n_ciphertexts < ref.size
    assert np.array_equal(out.decrypt(sk), ref.decrypt(sk))


def test_packed_scatter_add_after_reshape(product_keypair):
    """The full embedding-backward shape dance: (batch, F*D) gradient rows
    reshaped to (batch*F, D) and scattered into the table, packed."""
    pk, sk = product_keypair
    layout = _product_layout(pk)
    rng = np.random.default_rng(24)
    emb_dim, fields, batch, total = 3, 2, 4, 9
    grad_e = rng.normal(size=(batch, fields * emb_dim)) * 0.1
    flat_idx = rng.integers(0, total, size=batch * fields)
    enc = CryptoTensor.encrypt(pk, grad_e, obfuscate=True)
    rows = CryptoTensor(pk, enc.data.reshape(-1, emb_dim))
    packed = rows.pack(layout, value_bits=layout.acc_operand_bits)
    out = packed.scatter_add_rows(flat_idx, num_rows=total)
    ref = rows.scatter_add_rows(flat_idx, num_rows=total)
    assert np.array_equal(out.decrypt(sk), ref.decrypt(sk))


def test_scatter_overflow_raises_before_executing(sized_keypair):
    """A fan-in deeper than the layout's designed acc_depth must raise from
    the bookkeeping, before any mulmod runs."""
    pk, _ = sized_keypair
    layout = _sum_layout(pk)  # designed for acc_depth=2
    rng = np.random.default_rng(25)
    batch = 64  # every row lands on table row 0: fan-in 64 >> 2
    enc = CryptoTensor.encrypt(pk, rng.normal(size=(batch, 2)), obfuscate=False)
    packed = enc.pack(layout, value_bits=layout.acc_operand_bits)
    with pytest.raises(OverflowError, match="scatter-add"):
        packed.scatter_add_rows(np.zeros(batch, dtype=int), num_rows=3)


def test_scatter_add_output_is_rerandomised(sized_keypair):
    """Regression (untouched-row leak): every scatter output ciphertext must
    be blinded — raw residue-1 rows would advertise exactly which table rows
    the private indices missed."""
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    rng = np.random.default_rng(26)
    grads = rng.normal(size=(3, 2))
    idx = np.array([0, 4, 0])  # rows 1, 2, 3 untouched
    enc = CryptoTensor.encrypt(pk, grads, obfuscate=True)
    flat_out = enc.scatter_add_rows(idx, num_rows=5)
    assert all(e.ciphertext != 1 for e in flat_out.data.ravel())
    expected = np.zeros((5, 2))
    np.add.at(expected, idx, grads)
    np.testing.assert_allclose(flat_out.decrypt(sk), expected, atol=1e-9)
    packed_out = enc.pack(layout, value_bits=layout.acc_operand_bits).scatter_add_rows(
        idx, num_rows=5
    )
    assert all(ct != 1 for ct in packed_out.cts)
    assert np.array_equal(packed_out.decrypt(sk), flat_out.decrypt(sk))


# ---------------------------------------------------------------------------
# Guard-band overflow must be loud.


def test_deep_accumulation_raises_before_lane_corruption(sized_keypair):
    pk, _ = sized_keypair
    layout = _sum_layout(pk)
    t = PackedCryptoTensor.encrypt(pk, np.full((2, 4), 3.0), layout)
    with pytest.raises(OverflowError, match="lane|guard"):
        for _ in range(layout.slot_bits):
            t = t + t


def test_encode_rejects_values_beyond_lane_budget(sized_keypair):
    pk, _ = sized_keypair
    layout = _sum_layout(pk)
    with pytest.raises(OverflowError, match="slot|lane"):
        PackedCryptoTensor.encrypt(pk, np.array([[2.0**40]]), layout)


def test_matmul_depth_budget_enforced(product_keypair):
    pk, _ = product_keypair
    layout = _product_layout(pk)  # budgeted for acc_depth=16-ish
    rng = np.random.default_rng(11)
    m = 2048  # far beyond the layout's accumulation budget
    x = np.ones((1, m)) * 15.0
    v = rng.normal(size=(m, layout.slots)) * 15.0
    pv = PackedCryptoTensor.encrypt(pk, v, layout)
    with pytest.raises(OverflowError, match="lane|guard"):
        matmul_plain_cipher(x, pv)


def test_decoder_borrow_chain_check_catches_bypassed_overflow(sized_keypair):
    """Even with the bookkeeping bypassed, decode detects corrupted lanes."""
    pk, sk = sized_keypair
    layout = _sum_layout(pk)
    base = PackedCryptoTensor.encrypt(pk, np.full((1, layout.slots), 9.0), layout)
    cts = list(base.cts)
    for _ in range(layout.slot_bits):  # double far past the lane budget
        cts = pack_add_flat(pk, cts, cts)
    rogue = PackedCryptoTensor(
        pk, layout, cts, base.shape, base.exponent, value_bits=1  # lie about bounds
    )
    with pytest.raises(OverflowError):
        rogue.decrypt(sk)


# ---------------------------------------------------------------------------
# Parallel context equivalence (the multicore engine must not change bits).


def test_packed_ops_bit_identical_under_parallel():
    pk, sk = generate_paillier_keypair(256, seed=91)
    layout = _product_layout(pk)
    rng = np.random.default_rng(12)
    x = rng.normal(size=(4, 5))
    v = rng.normal(size=(5, 4)) * 0.1
    pv = PackedCryptoTensor.encrypt(pk, v, layout)
    serial = matmul_plain_cipher(x, pv)
    with ParallelContext(workers=2, min_jobs=1) as par:
        parallel = matmul_plain_cipher(x, pv, parallel=par)
        packed_par = CryptoTensor.encrypt(pk, v, obfuscate=False).pack(
            layout, parallel=par
        )
    assert serial.cts == parallel.cts
    packed_serial = CryptoTensor.encrypt(pk, v, obfuscate=False).pack(layout)
    assert packed_serial.cts == packed_par.cts


# ---------------------------------------------------------------------------
# Byte accounting is packing-aware.


def test_payload_nbytes_counts_ciphertexts_not_elements(product_keypair):
    pk, _ = product_keypair
    layout = _product_layout(pk)
    arr = np.zeros((4, 2 * layout.slots))
    packed = PackedCryptoTensor.encrypt(pk, arr, layout)
    unpacked = CryptoTensor.encrypt(pk, arr, obfuscate=False)
    per_ct = 2 * pk.key_bits // 8
    assert payload_nbytes(unpacked) == arr.size * per_ct
    assert payload_nbytes(packed) == packed.n_ciphertexts * per_ct
    assert payload_nbytes(packed) * layout.slots == payload_nbytes(unpacked)


# ---------------------------------------------------------------------------
# End-to-end: source layers with the VFLConfig / TrainConfig knobs.


def _run_matmul_layer(packing: bool, refresh: str = "reencrypt"):
    from repro.core.matmul_layer import MatMulSource

    ctx = VFLContext(
        VFLConfig(key_bits=256, packing=packing, share_refresh=refresh), seed=11
    )
    layer = MatMulSource(ctx, in_a=4, in_b=3, out_dim=5)
    rng = np.random.default_rng(3)
    outs = []
    for _ in range(2):
        z = layer.forward(rng.normal(size=(5, 4)), rng.normal(size=(5, 3)))
        outs.append(z.copy())
        layer.backward(rng.normal(size=(5, 5)))
        layer.apply_updates(0.05, 0.9)
    return outs, layer.reveal_weights(), ctx.channel


def test_matmul_layer_packing_bit_identical_and_cheaper():
    outs0, w0, ch0 = _run_matmul_layer(False)
    outs1, w1, ch1 = _run_matmul_layer(True)
    for z0, z1 in zip(outs0, outs1):
        assert np.array_equal(z0, z1)
    for key in w0:
        assert np.array_equal(w0[key], w1[key])
    assert ch1.total_bytes() < ch0.total_bytes()


def test_packed_he2ss_metadata_is_data_independent(product_keypair):
    """The wire payload's lane-bound field must not encode private operand
    statistics (feature magnitudes / sparsity) — it is canonicalised to the
    layout constant before sending."""
    pk, _ = product_keypair
    cfg = VFLConfig(key_bits=pk.key_bits, mask_scale=2.0**8)
    layout = _product_layout(pk)

    def payload_for(x):
        ctx = VFLContext(cfg, seed=44)
        v = np.full((4, layout.slots), 0.01)
        pv = PackedCryptoTensor.encrypt(ctx.B.public_key, v, _product_layout(ctx.B.public_key))
        ct = matmul_plain_cipher(x, pv)
        he2ss_split(ct, ctx.A, "B", ctx.channel, "t", cfg.mask_scale)
        return ctx.channel.transcript[-1].payload

    sparse_small = np.eye(4) * 0.5
    dense_large = np.full((4, 4), 14.0)
    p1 = payload_for(sparse_small)
    p2 = payload_for(dense_large)
    assert p1.value_bits == p2.value_bits == p1.layout.lane_cap_bits


def test_delta_mode_survives_packing_toggle_off_mid_run():
    """Packed resident copy + packing switched off: the next delta refresh
    must downgrade to per-element instead of crashing."""
    from repro.core.matmul_layer import MatMulSource

    ctx = VFLContext(
        VFLConfig(key_bits=256, packing=True, share_refresh="delta"), seed=17
    )
    layer = MatMulSource(ctx, in_a=4, in_b=3, out_dim=5)
    rng = np.random.default_rng(6)
    x_a = CSRMatrix.from_dense((rng.random((5, 4)) < 0.5).astype(np.float64))
    x_b = rng.normal(size=(5, 3))

    def step():
        layer.forward(x_a, x_b)
        layer.backward(rng.normal(size=(5, 5)))
        layer.apply_updates(0.05, 0.9)

    step()  # packed resident copy established
    assert isinstance(layer._a.enc_v_own, PackedCryptoTensor)
    ctx.config.packing = False  # e.g. TrainConfig(packing=False) override
    step()  # must not raise; migrates back to per-element
    assert isinstance(layer._a.enc_v_own, CryptoTensor)
    ctx.config.packing = True
    step()  # and the upgrade path still works afterwards
    assert isinstance(layer._a.enc_v_own, PackedCryptoTensor)


def _run_embed_layer(packing, emb_dim=3, refresh="reencrypt", steps=2, key_bits=256):
    from repro.core.embed_matmul_layer import EmbedMatMulSource

    ctx = VFLContext(
        VFLConfig(key_bits=key_bits, packing=packing, share_refresh=refresh),
        seed=13,
    )
    layer = EmbedMatMulSource(
        ctx, vocab_a=[3, 4], vocab_b=[5], emb_dim=emb_dim, out_dim=4
    )
    rng = np.random.default_rng(2)
    outs = []
    for _ in range(steps):
        xa = np.stack(
            [rng.integers(0, 3, size=4), rng.integers(0, 4, size=4)], axis=1
        )
        xb = rng.integers(0, 5, size=(4, 1))
        z = layer.forward(xa, xb)
        outs.append(z)
        layer.backward(rng.normal(size=(4, 4)))
        layer.apply_updates(0.05, 0.9)
    return outs, layer.reveal_weights(), ctx.channel, layer


# emb_dim 4 keeps dense lanes at 256-bit (2 slots); 3 forces padded segments.
@pytest.mark.parametrize("emb_dim", [3, 4])
@pytest.mark.parametrize("refresh", ["reencrypt", "delta"])
def test_embed_layer_packing_bit_identical(emb_dim, refresh):
    z0, w0, ch0, _ = _run_embed_layer(False, emb_dim=emb_dim, refresh=refresh)
    z1, w1, ch1, layer = _run_embed_layer(True, emb_dim=emb_dim, refresh=refresh)
    for a, b in zip(z0, z1):
        assert np.array_equal(a, b)
    for key in w0:
        assert np.array_equal(w0[key], w1[key])
    assert ch1.total_bytes() < ch0.total_bytes()
    # The tentpole invariant: [[T]] lives packed end to end, so the forward
    # lookup and backward lkup_bw transfers never repack per element.
    assert isinstance(layer._a.enc_t_own, PackedCryptoTensor)
    assert isinstance(layer._b.enc_t_own, PackedCryptoTensor)


def test_embed_delta_mode_survives_packing_toggle_off_mid_run():
    """Packed resident [[T]] + packing switched off: the next delta refresh
    must migrate back to per-element instead of crashing (and back again)."""
    from repro.core.embed_matmul_layer import EmbedMatMulSource

    ctx = VFLContext(
        VFLConfig(key_bits=256, packing=True, share_refresh="delta"), seed=17
    )
    layer = EmbedMatMulSource(ctx, vocab_a=[4], vocab_b=[3], emb_dim=3, out_dim=2)
    rng = np.random.default_rng(6)

    def step():
        xa = rng.integers(0, 4, size=(3, 1))
        xb = rng.integers(0, 3, size=(3, 1))
        layer.forward(xa, xb)
        layer.backward(rng.normal(size=(3, 2)))
        layer.apply_updates(0.05, 0.9)

    step()
    assert isinstance(layer._a.enc_t_own, PackedCryptoTensor)
    ctx.config.packing = False
    step()  # must not raise; migrates back to per-element
    assert isinstance(layer._a.enc_t_own, CryptoTensor)
    ctx.config.packing = True
    step()  # and the upgrade path still works afterwards
    assert isinstance(layer._a.enc_t_own, PackedCryptoTensor)


def test_batch_beyond_designed_depth_raises_at_step_time(monkeypatch):
    """PACKING_DEPTH_FLOOR only *floors* the designed accumulation depth; a
    batch larger than what the layouts budgeted for must raise loudly at
    step time instead of silently corrupting lanes."""
    from repro.core.embed_matmul_layer import EmbedMatMulSource
    from repro.core.matmul_layer import MatMulSource

    # The embed guard charges (out_dim + 1)-term rows per lane (its
    # scattered gradient rows are themselves out_dim-deep contractions);
    # the layout budgets (out_dim + 1) * floor at init, so the floor keeps
    # its batch-row meaning.
    monkeypatch.setattr(EmbedMatMulSource, "PACKING_DEPTH_FLOOR", 4)
    monkeypatch.setattr(MatMulSource, "PACKING_DEPTH_FLOOR", 4)

    ctx = VFLContext(VFLConfig(key_bits=256, packing=True), seed=19)
    layer = EmbedMatMulSource(ctx, vocab_a=[4], vocab_b=[3], emb_dim=4, out_dim=2)
    rng = np.random.default_rng(7)
    small = (rng.integers(0, 4, size=(4, 1)), rng.integers(0, 3, size=(4, 1)))
    layer.forward(*small)  # at the designed batch floor: fine
    big = (rng.integers(0, 4, size=(9, 1)), rng.integers(0, 3, size=(9, 1)))
    with pytest.raises(OverflowError, match="accumulation depth"):
        layer.forward(*big)
    # Inference never runs the batch-deep backward contraction: exempt.
    layer.forward(*big, train=False)

    ctx2 = VFLContext(VFLConfig(key_bits=256, packing=True), seed=19)
    mm = MatMulSource(ctx2, in_a=3, in_b=2, out_dim=4)
    mm.forward(rng.normal(size=(4, 3)), rng.normal(size=(4, 2)))
    with pytest.raises(OverflowError, match="accumulation depth"):
        mm.forward(rng.normal(size=(9, 3)), rng.normal(size=(9, 2)))
    mm.forward(rng.normal(size=(9, 3)), rng.normal(size=(9, 2)), train=False)


@pytest.mark.bigkey
def test_embed_layer_packing_bit_identical_at_production_key():
    """The 2048-bit acceptance case (opt in with ``pytest -m bigkey``): the
    full Embed-MatMul step at the paper's production key size, packed vs
    per-element, bit-identical with a slots-fold cheaper wire."""
    z0, w0, ch0, _ = _run_embed_layer(
        False, emb_dim=4, steps=1, key_bits=2048
    )
    z1, w1, ch1, layer = _run_embed_layer(
        True, emb_dim=4, steps=1, key_bits=2048
    )
    for a, b in zip(z0, z1):
        assert np.array_equal(a, b)
    for key in w0:
        assert np.array_equal(w0[key], w1[key])
    assert isinstance(layer._a.enc_t_own, PackedCryptoTensor)
    assert ch1.total_bytes() * 2 < ch0.total_bytes()

    def gq_bytes(ch):
        return {
            m.tag: m.nbytes for m in ch.transcript if ".bwd.gQ_" in m.tag
        }

    packed_gq, unpacked_gq = gq_bytes(ch1), gq_bytes(ch0)
    assert packed_gq and packed_gq.keys() == unpacked_gq.keys()
    for tag, nbytes in packed_gq.items():
        # The acceptance criterion: the lkup_bw transfer ships at least 2x
        # fewer ciphertexts/bytes (emb_dim-fold here: whole rows fit one
        # ciphertext at 18 production slots).
        assert nbytes * 2 <= unpacked_gq[tag]


def test_train_config_packing_override_flips_vfl_config():
    from repro.core.models import FederatedLR
    from repro.core.trainer import TrainConfig, train_federated
    from repro.data import make_dense_classification, split_vertical

    full = make_dense_classification(32, 6, seed=5, flip=0.02, nonlinear=False)
    data = split_vertical(full)
    ctx = VFLContext(VFLConfig(key_bits=256), seed=7)
    assert ctx.config.packing is False
    model = FederatedLR(ctx, in_a=3, in_b=3)
    history = train_federated(
        model,
        data,
        TrainConfig(epochs=1, batch_size=16, packing=True),
        max_batches_per_epoch=1,
    )
    assert ctx.config.packing is True
    assert all(np.isfinite(loss) for loss in history.losses)
