"""Cross-process socket transport tests.

The tier-1 smoke runs one small two-process training over loopback TCP
with a hard timeout (a deadlocked protocol fails fast instead of hanging
``pytest -x -q``) and checks the run is bit-identical to the in-memory
serializing tier.  The heavier grid — quickstart-sized MatMul and
Embed-MatMul, packed and unpacked, delta and reencrypt refresh — carries
the ``net`` marker (run with ``pytest -m net``).

Program functions live at module scope so the runner works under both
``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import os
import socket
import time

import numpy as np
import pytest

from repro.comm import VFLConfig, VFLContext, codec
from repro.comm.channel import make_channel
from repro.comm.message import MessageKind
from repro.comm.transport import NetworkChannel, TransportError, run_two_party
from repro.core.models import FederatedLR, FederatedWDL
from repro.core.trainer import TrainConfig, train_federated
from repro.data.partition import split_vertical
from repro.data.synthetic import (
    make_dense_classification,
    make_mixed_classification,
)

SMOKE_TIMEOUT = 60.0
NET_TIMEOUT = 300.0


# ---------------------------------------------------------------------------
# Deterministic training programs (identical in every process / tier).


def _lr_model(ctx):
    return FederatedLR(ctx, 3, 3), split_vertical(
        make_dense_classification(48, 6, seed=50)
    )


def _quickstart_model(ctx):
    """The quickstart shape: 12 + 12 dense features, federated LR."""
    full = make_dense_classification(96, 24, seed=51)
    return FederatedLR(ctx, 12, 12), split_vertical(full)


def _wdl_model(ctx):
    full = make_mixed_classification(
        40, sparse_dim=12, nnz_per_row=3, n_fields=2, vocab_size=5, seed=52
    )
    vd = split_vertical(full)
    pa, pb = vd.party("A"), vd.party("B")
    return (
        FederatedWDL(
            ctx,
            pa.dense_dim,
            pb.dense_dim,
            pa.vocab_sizes,
            pb.vocab_sizes,
            emb_dim=4,
            deep_hidden=[4],
        ),
        vd,
    )


_BUILDERS = {"lr": _lr_model, "quickstart": _quickstart_model, "wdl": _wdl_model}


def train_program(
    channel,
    model_kind: str,
    packing: bool,
    key_bits: int,
    share_refresh: str = "reencrypt",
    epochs: int = 1,
    batch_size: int = 16,
):
    """Build a seeded federation on ``channel``, train, return a digest."""
    cfg = VFLConfig(
        key_bits=key_bits, packing=packing, share_refresh=share_refresh
    )
    ctx = VFLContext(cfg, seed=3, channel=channel)
    model, vd = _BUILDERS[model_kind](ctx)
    tc = TrainConfig(
        epochs=epochs, batch_size=batch_size, lr=0.1, momentum=0.9, seed=0
    )
    history = train_federated(model, vd, tc)
    weights = {}
    for layer in model.source_layers():
        for name, value in layer.reveal_weights().items():
            weights[f"{layer.name}.{name}"] = value
    return {
        "losses": history.losses,
        "weights": weights,
        "total_bytes": channel.total_bytes(),
        "n_messages": len(channel.transcript),
        "kinds": sorted(
            (k.value, v) for k, v in channel.messages_by_kind.items()
        ),
    }


def _reference(*case):
    """The same program on the in-memory serializing tier."""
    return train_program(make_channel("serializing"), *case)


def _assert_digests_match(result, reference):
    assert result["losses"] == reference["losses"]
    assert result["n_messages"] == reference["n_messages"]
    assert result["total_bytes"] == reference["total_bytes"]
    assert result["kinds"] == reference["kinds"]
    assert set(result["weights"]) == set(reference["weights"])
    for name, value in reference["weights"].items():
        np.testing.assert_array_equal(result["weights"][name], value)


# ---------------------------------------------------------------------------
# Tier-1: one fast smoke, hard timeout, bit-for-bit against honest bytes.


def test_two_process_socket_smoke_matches_serializing_run():
    """Separate PIDs + loopback TCP == in-memory honest bytes, bit-for-bit.

    This is the acceptance property in miniature: the packed quickstart
    protocol trains across a real socket and lands on exactly the same
    decoded weights and loss trajectory as the single-process
    SerializingChannel run.
    """
    case = ("lr", True, 256)
    results = run_two_party(train_program, case, timeout=SMOKE_TIMEOUT)
    reference = _reference(*case)
    assert reference["n_messages"] > 0 and reference["total_bytes"] > 0
    for role in ("guest", "host"):
        _assert_digests_match(results["results"][role], reference)


def test_serializing_drop_in_matches_memory_bit_for_bit():
    """The honest-bytes tier is a drop-in: identical training trajectory."""
    for packing, key_bits in ((False, 128), (True, 256)):
        mem = train_program(make_channel("memory"), "lr", packing, key_bits)
        ser = _reference("lr", packing, key_bits)
        assert mem["losses"] == ser["losses"]
        for name, value in mem["weights"].items():
            np.testing.assert_array_equal(ser["weights"][name], value)
        # Byte accounting differs by design: estimator vs measured frames.
        assert ser["total_bytes"] > mem["total_bytes"]
        assert ser["n_messages"] == mem["n_messages"]


# ---------------------------------------------------------------------------
# NetworkChannel unit behaviour on a socketpair (no child processes).


def _paired_channels(timeout=1.0):
    left, right = socket.socketpair()
    left.settimeout(timeout)
    right.settimeout(timeout)
    return (
        NetworkChannel(left, {"A"}),
        NetworkChannel(right, {"B"}),
    )


def test_network_channel_handshake_and_frame_flow():
    import threading

    cha, chb = _paired_channels()
    peer_of_a: list[frozenset] = []
    # handshake() sends then blocks on the peer's hello; drive one endpoint
    # from a thread so the single-process test can interleave both sides.
    t = threading.Thread(target=lambda: peer_of_a.append(cha.handshake()))
    t.start()
    assert chb.handshake() == frozenset({"A"})
    t.join(timeout=5.0)
    assert peer_of_a == [frozenset({"B"})]
    payload = np.arange(6.0).reshape(2, 3)
    # Mirrored lockstep: BOTH endpoints execute every send.
    cha.send("A", "B", "t", payload, MessageKind.SHARE)  # A-side: transmits
    chb.send("A", "B", "t", payload, MessageKind.SHARE)  # B-side: expects
    got = chb.recv("B", "t")
    np.testing.assert_array_equal(got, payload)
    assert cha.total_bytes() == chb.total_bytes() > payload.nbytes
    cha.recv("B", "t")  # A's mirrored copy of the remote delivery
    cha.shutdown()
    chb.shutdown()


def test_network_channel_overlapping_ownership_fails():
    left, right = socket.socketpair()
    left.settimeout(1.0)
    right.settimeout(1.0)
    cha = NetworkChannel(left, {"A", "B"})
    chb = NetworkChannel(right, {"B"})
    cha.sock.sendall(codec.encode_hello(["A", "B"]))
    with pytest.raises(TransportError, match="ownership"):
        chb.handshake()
    left.close()
    right.close()


def test_network_channel_desync_detected():
    """A frame that differs from the mirrored prediction fails loudly."""
    cha, chb = _paired_channels()
    # A transmits tag "x"; B's mirror predicted tag "y" for the same slot.
    cha.send("A", "B", "x", 1, MessageKind.PUBLIC)
    chb.send("A", "B", "y", 1, MessageKind.PUBLIC)
    with pytest.raises(TransportError, match="diverged"):
        chb.recv("B")
    cha.sock.close()
    chb.sock.close()


def test_network_channel_hard_timeout_fails_fast():
    """A wedged peer trips the socket timeout, not an infinite hang."""
    cha, chb = _paired_channels(timeout=0.2)
    chb.send("A", "B", "t", 1, MessageKind.PUBLIC)  # expectation, no bytes
    with pytest.raises(TransportError, match="timed out"):
        chb.recv("B")
    cha.sock.close()
    chb.sock.close()


def test_network_channel_colocated_parties_use_local_hop():
    """Two parties on one endpoint exchange without touching the socket."""
    left, right = socket.socketpair()
    left.settimeout(0.5)
    ch = NetworkChannel(left, {"A1", "A2"})
    payload = np.arange(3.0)
    ch.send("A1", "A2", "t", payload, MessageKind.SHARE)
    np.testing.assert_array_equal(ch.recv("A2", "t"), payload)
    ch.shutdown()
    right.close()


def test_network_channel_preserves_fifo_across_local_and_wire():
    """Local-hop deliveries and socket frames interleave in send order."""
    cha, chb = _paired_channels()
    # B-side endpoint owns only B; first a wire-bound message, then the
    # mirrored remote hop, received in the order they were sent.
    cha.send("A", "B", "first", 1, MessageKind.PUBLIC)   # transmits
    chb.send("A", "B", "first", 1, MessageKind.PUBLIC)   # expectation
    chb.send("B", "A", "second", 2, MessageKind.PUBLIC)  # transmits
    assert chb.recv("B", "first") == 1  # reads the socket frame
    cha.sock.close()
    chb.sock.close()


def test_network_channel_shutdown_rejects_unconsumed_mirror():
    """A mirror delivery that was never recv'd fails the drain check."""
    left, right = socket.socketpair()
    left.settimeout(0.5)
    ch = NetworkChannel(left, {"A"})
    ch.send("A", "B", "t", 1, MessageKind.PUBLIC)  # transmits + mirrors
    with pytest.raises(TransportError, match="undelivered"):
        ch.shutdown()
    right.close()


def test_network_channel_shutdown_rejects_undrained_protocol():
    cha, chb = _paired_channels()
    chb.send("A", "B", "t", 1, MessageKind.PUBLIC)
    with pytest.raises(TransportError, match="undelivered"):
        chb.shutdown()
    cha.sock.close()


def test_runner_surfaces_child_failures():
    with pytest.raises(TransportError, match="boom"):
        run_two_party(_crashing_program, timeout=SMOKE_TIMEOUT)


def _crashing_program(channel):
    raise RuntimeError("boom")


def test_runner_fails_fast_when_an_endpoint_dies_silently():
    """A child killed before it can report (OOM, SIGKILL) must surface as
    an "endpoint died" error within a liveness-poll grace period, not
    burn the whole run timeout."""
    start = time.monotonic()
    with pytest.raises(TransportError, match="endpoint died.*exit code"):
        run_two_party(_dying_program, timeout=SMOKE_TIMEOUT)
    assert time.monotonic() - start < SMOKE_TIMEOUT / 2


def _dying_program(channel):
    os._exit(3)  # no exception, no result: the process just vanishes


# ---------------------------------------------------------------------------
# The full grid: quickstart-sized runs over real sockets (pytest -m net).


@pytest.mark.net
@pytest.mark.parametrize(
    "model_kind,packing,key_bits,share_refresh",
    [
        ("lr", False, 128, "reencrypt"),
        ("lr", True, 256, "reencrypt"),
        ("wdl", False, 128, "reencrypt"),
        ("wdl", True, 256, "reencrypt"),
        ("wdl", False, 128, "delta"),
        ("wdl", True, 256, "delta"),
    ],
    ids=lambda v: str(v),
)
def test_two_process_training_grid(model_kind, packing, key_bits, share_refresh):
    """MatMul and Embed-MatMul, packed and unpacked, delta and reencrypt."""
    case = (model_kind, packing, key_bits, share_refresh)
    results = run_two_party(train_program, case, timeout=NET_TIMEOUT)
    reference = _reference(*case)
    for role in ("guest", "host"):
        _assert_digests_match(results["results"][role], reference)


@pytest.mark.net
def test_two_process_quickstart_sized_packed_matmul():
    """The acceptance case at quickstart scale: 12+12 features, 96 rows."""
    case = ("quickstart", True, 256, "reencrypt", 1, 32)
    results = run_two_party(train_program, case, timeout=NET_TIMEOUT)
    reference = _reference(*case)
    for role in ("guest", "host"):
        _assert_digests_match(results["results"][role], reference)
