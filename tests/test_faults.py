"""Fault-injection primitives and the reliable link's recovery behaviour.

Unit-level coverage for :mod:`repro.comm.faults` (seeded fault plans,
socket/channel fault wrappers) and for :class:`repro.comm.transport.
ReliableLink` (ack/NAK retransmission over a socketpair, with faults
injected on the sender's socket).

The link tests follow the protocol's lockstep discipline: the sender
finishes its sends and then *blocks in* ``recv_frame`` waiting for a
reply — that is where NAKs from the receiver get serviced, exactly as in
the mirrored training protocol where every endpoint alternates sends and
blocking reads.
"""

import socket
import threading

import pytest

from repro.comm import codec
from repro.comm.faults import (
    FaultEvent,
    FaultPlan,
    FaultyChannel,
    FaultySocket,
    corrupt_codec_frame,
    flip_bit,
)
from repro.comm.message import MessageKind
from repro.comm.transport import (
    ENV_DATA,
    ENV_OVERHEAD,
    ReliableLink,
    RetryPolicy,
    RetryableTransportError,
    TransportTimeout,
    encode_envelope,
    is_data_envelope,
    read_frame,
)

# --------------------------------------------------------------------------
# fault plans


def test_fault_plan_seeded_is_deterministic():
    kwargs = dict(frames=200, drop_rate=0.1, duplicate_rate=0.05,
                  corrupt_rate=0.1, delay_rate=0.02, disconnect_at=37)
    a = FaultPlan.seeded(11, **kwargs)
    b = FaultPlan.seeded(11, **kwargs)
    assert a.events == b.events
    assert a.events  # rates this high must schedule something in 200 frames
    c = FaultPlan.seeded(12, **kwargs)
    assert c.events != a.events
    # The requested disconnect is always present, exactly once.
    disconnects = [ev for ev in a.events if ev.action == "disconnect"]
    assert [ev.frame for ev in disconnects] == [37]
    assert a.events_for(37) == tuple(disconnects)


def test_fault_plan_rate_extremes():
    none = FaultPlan.seeded(3, frames=50)
    assert not none and none.events == ()
    everything = FaultPlan.seeded(3, frames=50, drop_rate=1.0)
    assert len(everything.events) == 50
    assert all(ev.action == "drop" for ev in everything.events)


def test_fault_event_validation():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultEvent(1, "explode")
    with pytest.raises(ValueError, match="1-based"):
        FaultEvent(0, "drop")


def test_corrupt_codec_frame_is_detectable_and_seeded():
    frame = codec.encode_payload_frame([1.0, 2.0, 3.0])
    bad = corrupt_codec_frame(frame, salt=4)
    assert bad != frame and len(bad) == len(frame)
    assert bad == corrupt_codec_frame(frame, salt=4)  # same salt, same flip
    with pytest.raises(codec.FrameIntegrityError):
        codec.check_frame(bad)
    assert flip_bit(bad, *_diff_at(frame, bad)) == frame  # exactly one bit


def _diff_at(a, b):
    (offset,) = [i for i in range(len(a)) if a[i] != b[i]]
    return offset, a[offset] ^ b[offset]


# --------------------------------------------------------------------------
# retry policy


def test_retry_policy_delays_deterministic_and_bounded():
    policy = RetryPolicy(max_retries=6, base_delay=0.05, max_delay=0.4,
                         jitter=0.25, seed=9)
    first = list(policy.delays())
    assert first == list(policy.delays())  # fresh generator, same schedule
    assert len(first) == 6
    for attempt, delay in enumerate(first):
        base = min(0.4, 0.05 * 2.0**attempt)
        assert base <= delay < base * 1.25  # backoff floor, jitter ceiling
    assert list(RetryPolicy(max_retries=6, seed=10).delays()) != first


# --------------------------------------------------------------------------
# reliable link over a socketpair


def _paired_links(plan=None, timeout=0.25, max_retries=8):
    """Two ReliableLinks over a socketpair; ``plan`` faults side A's sends."""
    raw_a, raw_b = socket.socketpair()
    raw_a.settimeout(timeout)
    raw_b.settimeout(timeout)
    sock_a = FaultySocket(raw_a, plan) if plan is not None else raw_a
    link_a = ReliableLink(
        sock_a, retry=RetryPolicy(max_retries=max_retries, base_delay=0.02,
                                  max_delay=0.2, jitter=0.1, seed=1))
    link_b = ReliableLink(
        raw_b, retry=RetryPolicy(max_retries=max_retries, base_delay=0.02,
                                 max_delay=0.2, jitter=0.1, seed=2))
    return link_a, link_b


def _frames(n):
    return [codec.encode_payload_frame(("frame", i, [float(i)] * 3))
            for i in range(n)]


DONE = codec.encode_payload_frame("done")


def _exchange(link_a, link_b, frames):
    """A sends ``frames`` then blocks for B's reply; B receives then replies.

    Returns what B received, in order.  A's trailing ``recv_frame`` is the
    window in which it services any NAK/RESUME traffic from B.
    """
    errors = []

    def sender():
        try:
            for frame in frames:
                link_a.send_frame(frame)
            assert link_a.recv_frame() == DONE
        except BaseException as exc:  # surface in the main thread
            errors.append(exc)

    thread = threading.Thread(target=sender, daemon=True)
    thread.start()
    received = [link_b.recv_frame() for _ in frames]
    link_b.send_frame(DONE)
    thread.join(timeout=10.0)
    assert not thread.is_alive(), "sender thread wedged"
    if errors:
        raise errors[0]
    return received


def test_clean_link_delivers_in_order_with_zero_extra_frames():
    link_a, link_b = _paired_links()
    frames = _frames(6)
    assert _exchange(link_a, link_b, frames) == frames
    for stats in (link_a.stats, link_b.stats):
        assert stats.extra_frames() == 0
        assert stats.retransmits == 0
        assert stats.naks_sent == stats.naks_received == 0
        assert stats.duplicates_dropped == stats.corrupt_dropped == 0
        assert stats.timeouts == 0
    assert link_a.stats.data_sent == 6 and link_b.stats.data_received == 6
    # The DONE frame carried ack=6, so A's resend buffer is fully pruned.
    assert not link_a._resend
    assert link_a.stats.envelope_bytes == 6 * ENV_OVERHEAD  # sends only


def test_dropped_frame_is_naked_and_retransmitted():
    plan = FaultPlan(events=(FaultEvent(3, "drop"),))
    link_a, link_b = _paired_links(plan)
    frames = _frames(5)
    assert _exchange(link_a, link_b, frames) == frames
    assert ("drop" in {a for _, a in link_a.sock.applied})
    # The drop shows up as a sequence gap when frame 4 lands, so the NAK
    # fires immediately — no timeout needed to notice it.
    assert link_b.stats.naks_sent >= 1
    assert link_a.stats.naks_received >= 1
    assert link_a.stats.retransmits >= 1


def test_corrupted_frame_is_dropped_and_recovered():
    plan = FaultPlan(events=(FaultEvent(2, "corrupt"),))
    link_a, link_b = _paired_links(plan)
    frames = _frames(4)
    assert _exchange(link_a, link_b, frames) == frames
    assert link_b.stats.corrupt_dropped >= 1
    assert link_b.stats.timeouts == 0  # CRC fails immediately, no timeout
    assert link_b.stats.naks_sent >= 1
    assert link_a.stats.retransmits >= 1


def test_duplicated_frame_is_discarded():
    plan = FaultPlan(events=(FaultEvent(2, "duplicate"),
                             FaultEvent(4, "duplicate")))
    link_a, link_b = _paired_links(plan)
    frames = _frames(5)
    assert _exchange(link_a, link_b, frames) == frames
    assert link_b.stats.duplicates_dropped == 2
    assert link_b.stats.data_received == 5  # delivered exactly once each
    assert link_a.stats.retransmits == 0  # duplicates need no recovery


def test_mixed_fault_schedule_still_delivers_everything():
    plan = FaultPlan(events=(FaultEvent(1, "drop"), FaultEvent(2, "corrupt"),
                             FaultEvent(4, "duplicate"), FaultEvent(5, "drop"),
                             FaultEvent(7, "delay", delay=0.01)))
    link_a, link_b = _paired_links(plan)
    frames = _frames(8)
    assert _exchange(link_a, link_b, frames) == frames
    applied = {action for _, action in link_a.sock.applied}
    assert applied == {"drop", "corrupt", "duplicate", "delay"}


def test_faulty_socket_rebind_preserves_schedule_across_reconnect():
    """The fault-frame counter survives a real reconnect: an injected
    disconnect at frame 2 swaps the socket via ``rebind``, and the
    corrupt scheduled for frame 4 still fires on the *new* connection.
    A counter that reset at the swap would replay frame indices and
    re-fire the disconnect instead."""
    plan = FaultPlan(events=(FaultEvent(2, "disconnect"),
                             FaultEvent(4, "corrupt")))
    raw_a, raw_b = socket.socketpair()
    spare_a, spare_b = socket.socketpair()
    for s in (raw_a, raw_b, spare_a, spare_b):
        s.settimeout(0.25)
    fsock = FaultySocket(raw_a, plan)
    link_a = ReliableLink(
        fsock,
        retry=RetryPolicy(max_retries=8, base_delay=0.02, max_delay=0.2,
                          jitter=0.1, seed=1),
        reconnect=lambda: fsock.rebind(spare_a),
    )
    link_b = ReliableLink(
        raw_b,
        retry=RetryPolicy(max_retries=8, base_delay=0.02, max_delay=0.2,
                          jitter=0.1, seed=2),
        reconnect=lambda: spare_b,
    )
    frames = _frames(5)
    try:
        assert _exchange(link_a, link_b, frames) == frames
    finally:
        for s in (raw_a, raw_b, spare_a, spare_b):
            try:
                s.close()
            except OSError:
                pass
    # The link recovered onto the SAME wrapper, now bound to the spare.
    assert link_a.sock is fsock
    assert fsock._sock is spare_a
    # Exactly one disconnect fired (index 2 never recurred after the
    # swap) and the frame-4 corrupt fired on the new socket.
    assert [a for _, a in fsock.applied if a == "disconnect"] == ["disconnect"]
    assert (2, "disconnect") in fsock.applied
    assert (4, "corrupt") in fsock.applied
    assert link_a.stats.reconnects == 1 and link_a.stats.resumes == 1
    assert link_b.stats.reconnects == 1
    # Full delivery despite the swap and the post-swap corruption.
    assert link_b.stats.data_received == 5
    assert link_b.stats.corrupt_dropped >= 1
    assert link_a.stats.retransmits >= 1


def test_silent_peer_exhausts_retry_budget_with_retryable_error():
    raw_a, raw_b = socket.socketpair()
    raw_b.settimeout(0.05)
    link_b = ReliableLink(raw_b, retry=RetryPolicy(max_retries=2,
                                                   base_delay=0.01, seed=0))
    try:
        with pytest.raises(TransportTimeout) as excinfo:
            link_b.recv_frame()
        assert isinstance(excinfo.value, RetryableTransportError)
        assert link_b.stats.timeouts >= 3  # initial read + both retries
        assert link_b.stats.naks_sent >= 1  # it did try to recover
    finally:
        raw_a.close()
        raw_b.close()


# --------------------------------------------------------------------------
# fault wrappers


def test_faulty_socket_never_touches_control_traffic():
    """Handshake frames and NAK envelopes pass a drop-everything plan."""
    plan = FaultPlan.seeded(0, frames=100, drop_rate=1.0)
    raw_a, raw_b = socket.socketpair()
    raw_a.settimeout(0.5)
    raw_b.settimeout(0.5)
    fsock = FaultySocket(raw_a, plan)
    try:
        hello = codec.encode_hello(["A"])
        fsock.sendall(hello)  # bare codec frame: below the ARQ, unfaulted
        assert read_frame(raw_b) == hello
        nak = encode_envelope(0x4E, 0, 3)
        fsock.sendall(nak)  # control envelope: forwarded verbatim
        assert raw_b.recv(len(nak)) == nak
        assert fsock.data_frames == 0 and fsock.applied == []
        data = encode_envelope(ENV_DATA, 1, 0, hello)
        assert is_data_envelope(data)
        fsock.sendall(data)  # DATA: swallowed by the plan
        assert fsock.data_frames == 1 and fsock.applied == [(1, "drop")]
        with pytest.raises(socket.timeout):
            raw_b.recv(1)
    finally:
        raw_a.close()
        raw_b.close()


def _faulty_channel(plan):
    channel = FaultyChannel(plan)
    import numpy as np

    def send(tag="t.step"):
        channel.send("A", "B", tag, np.arange(3.0), MessageKind.SHARE)

    return channel, send


def test_faulty_channel_corruption_surfaces_at_send():
    channel, send = _faulty_channel(FaultPlan(events=(FaultEvent(1, "corrupt"),)))
    with pytest.raises(codec.FrameIntegrityError, match="CRC32"):
        send()


def test_faulty_channel_drop_fails_loudly_at_recv():
    channel, send = _faulty_channel(FaultPlan(events=(FaultEvent(1, "drop"),)))
    send()
    assert channel.pending("B") == 0
    with pytest.raises(LookupError, match="no pending message"):
        channel.recv("B", "t.step")


def test_faulty_channel_duplicate_surfaces_as_desync():
    channel, send = _faulty_channel(FaultPlan(events=(FaultEvent(1, "duplicate"),)))
    send()
    assert channel.pending("B") == 2
    channel.recv("B", "t.step")
    with pytest.raises(LookupError, match="desync"):
        channel.recv("B", "t.other")


def test_faulty_channel_disconnect_raises_broken_pipe():
    channel, send = _faulty_channel(
        FaultPlan(events=(FaultEvent(2, "disconnect"),)))
    send()  # frame 1 passes
    with pytest.raises(BrokenPipeError, match="injected disconnect"):
        send()
