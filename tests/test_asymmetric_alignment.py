"""§8 integration: training without revealing intersection membership.

Liu et al. [42] (asymmetric PSI): only Party B learns which rows are in
the intersection; Party A processes a superset.  The paper notes BlindFL
accommodates this "by tweaking Line 9 of Figure 6": Party B zeroes the
derivatives of non-member rows, so they contribute nothing to any
gradient.  These tests verify that claim end-to-end on the real protocol.
"""

import numpy as np
import pytest

from repro.comm.party import VFLConfig, VFLContext
from repro.core.matmul_layer import MatMulSource
from repro.data.psi import asymmetric_psi

KEY_BITS = 128


def test_zeroed_derivatives_make_nonmembers_inert(rng):
    """Superset batch + masked grad == intersection-only batch, exactly."""
    ctx1 = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=30)
    ctx2 = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=30)  # same init
    layer_super = MatMulSource(ctx1, 5, 4, 1, name="asym")
    layer_inter = MatMulSource(ctx2, 5, 4, 1, name="asym")
    w0_super = layer_super.reveal_weights()
    w0_inter = layer_inter.reveal_weights()
    np.testing.assert_allclose(w0_super["W_A"], w0_inter["W_A"])  # same seed

    x_a = rng.normal(size=(8, 5))
    x_b = rng.normal(size=(8, 4))
    member = np.array([1, 0, 1, 1, 0, 1, 0, 1], dtype=bool)
    grad_full = rng.normal(size=(8, 1)) * 0.1

    # Superset run: B zeroes non-member derivatives (the §8 tweak).
    layer_super.forward(x_a, x_b)
    masked = grad_full * member[:, None]
    layer_super.backward(masked)
    layer_super.apply_updates(lr=0.1, momentum=0.0)

    # Reference run: only the intersection rows exist.
    layer_inter.forward(x_a[member], x_b[member])
    layer_inter.backward(grad_full[member])
    layer_inter.apply_updates(lr=0.1, momentum=0.0)

    w_super = layer_super.reveal_weights()
    w_inter = layer_inter.reveal_weights()
    np.testing.assert_allclose(w_super["W_A"], w_inter["W_A"], atol=1e-5)
    np.testing.assert_allclose(w_super["W_B"], w_inter["W_B"], atol=1e-6)


def test_asymmetric_psi_feeds_the_masking(rng):
    """The PSI output drives the derivative mask without informing A."""
    ids_a = [f"u{i}" for i in range(10)]
    ids_b = [f"u{i}" for i in range(5, 15)]  # overlap: u5..u9
    order_a, index_b, member = asymmetric_psi(ids_a, ids_b, rng)
    # A's processing order covers all of A's rows (A learns nothing).
    assert sorted(order_a.tolist()) == list(range(10))
    # B knows exactly which aligned positions are members.
    assert member.sum() == 5
    for pos in np.nonzero(member)[0]:
        assert ids_a[order_a[pos]] == ids_b[index_b[pos]]
    # The mask B derives is what test_zeroed_derivatives... applies.
    grad = rng.normal(size=(10, 1))
    masked = grad * member[:, None]
    assert np.all(masked[~member] == 0)
    assert np.all(masked[member] == grad[member])


def test_all_nonmember_batch_is_a_noop(rng):
    """A batch entirely outside the intersection must not move the model."""
    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=31)
    layer = MatMulSource(ctx, 4, 4, 1, name="noop")
    w0 = layer.reveal_weights()
    layer.forward(rng.normal(size=(4, 4)), rng.normal(size=(4, 4)))
    layer.backward(np.zeros((4, 1)))
    layer.apply_updates(lr=0.1, momentum=0.0)
    w1 = layer.reveal_weights()
    np.testing.assert_allclose(w1["W_A"], w0["W_A"], atol=1e-6)
    np.testing.assert_allclose(w1["W_B"], w0["W_B"], atol=1e-9)
