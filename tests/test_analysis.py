"""Tier-1 gate for the ``repro.analysis`` static invariant checker.

Three layers of coverage:

1. **The gate itself** — ``src/repro`` must produce zero findings.  Any
   new custody leak, unseeded RNG, per-loop tracer consult, codec
   coverage gap, or off-taxonomy transport raise fails ``pytest -x -q``
   with a clickable ``file:line`` message.
2. **Self-test fixtures** — every rule is pinned in *both* directions by
   snippets under ``tests/data/analysis_fixtures/``.  Each fixture's
   first line declares the virtual in-repo path it impersonates and the
   exact rule codes it must (or must not) raise, so a rule that goes
   blind *or* trigger-happy breaks the suite, not just the lint run.
3. **CLI semantics** — exit 0 on a clean tree, 1 on findings (with the
   right rule code on a deliberately re-introduced violation), 2 on
   usage errors; JSON output shape; pragma suppression incl. the BF006
   unused/unknown-pragma check.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    UNUSED_PRAGMA_CODE,
    analyze_paths,
    analyze_source,
)
from repro.analysis.__main__ import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
FIXTURE_DIR = REPO_ROOT / "tests" / "data" / "analysis_fixtures"

pytestmark = pytest.mark.analysis


# ---------------------------------------------------------------------------
# 1. The gate: the live tree is clean.
# ---------------------------------------------------------------------------


def test_src_tree_has_zero_findings():
    findings, files_scanned = analyze_paths([SRC_TREE])
    assert files_scanned > 50, "analyzer saw suspiciously few files"
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_cli_exits_zero_on_src_tree(capsys):
    assert lint_main([str(SRC_TREE)]) == 0
    capsys.readouterr()


def test_all_rules_registered():
    assert sorted(RULES) == ["BF001", "BF002", "BF003", "BF004", "BF005"]


# ---------------------------------------------------------------------------
# 2. Fixtures: each rule pinned in both directions.
# ---------------------------------------------------------------------------


def _load_fixture(path: Path):
    text = path.read_text()
    header = text.splitlines()[0]
    assert header.startswith("# analysis-fixture:"), (
        f"{path.name} missing '# analysis-fixture:' header"
    )
    fields = dict(
        part.split("=", 1) for part in header.split(":", 1)[1].split()
    )
    expected = sorted(code for code in fields["expect"].split(",") if code)
    return text, fields["path"], expected


FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))


def test_fixture_corpus_covers_every_rule_both_ways():
    flagged, passed = set(), set()
    for fixture in FIXTURES:
        _, _, expected = _load_fixture(fixture)
        (flagged if expected else passed).update(
            expected or {fixture.stem.split("_")[0].upper()}
        )
    for code in RULES:
        assert code in flagged, f"no must-flag fixture for {code}"
        assert code in passed, f"no must-pass fixture for {code}"


@pytest.mark.parametrize(
    "fixture", FIXTURES, ids=lambda p: p.stem
)
def test_fixture(fixture):
    text, virtual_path, expected = _load_fixture(fixture)
    findings = analyze_source(text, path=virtual_path)
    got = sorted(f.rule_code for f in findings)
    detail = "\n".join(f.format() for f in findings)
    assert got == expected, (
        f"{fixture.name} impersonating {virtual_path}: "
        f"expected {expected}, got {got}\n{detail}"
    )


# ---------------------------------------------------------------------------
# 3. CLI semantics: both acceptance directions, JSON, exit codes, pragmas.
# ---------------------------------------------------------------------------


def _copy_tree_with(tmp_path, rel_path, mutate):
    """Copy src/repro to tmp and rewrite one file through ``mutate``."""
    import shutil

    tree = tmp_path / "repro"
    shutil.copytree(SRC_TREE, tree)
    target = tree / rel_path
    target.write_text(mutate(target.read_text()))
    return tree


def _run_cli(*args):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", *map(str, args)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        cwd=REPO_ROOT,
    )
    return proc


def test_reintroduced_custody_leak_fails_with_bf001(tmp_path):
    tree = _copy_tree_with(
        tmp_path,
        Path("crypto") / "parallel.py",
        lambda src: src
        + (
            "\n\ndef _leak(channel, private_key):\n"
            "    channel.send('a', 'b', 'leak', None, private_key.crt_params)\n"
        ),
    )
    proc = _run_cli("--json", tree)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    codes = {f["rule_code"] for f in report["findings"]}
    assert codes == {"BF001"}


def test_reintroduced_unseeded_random_fails_with_bf002(tmp_path):
    tree = _copy_tree_with(
        tmp_path,
        Path("crypto") / "paillier.py",
        lambda src: src
        + (
            "\n\ndef _jitter():\n"
            "    import random\n"
            "    return random.random()\n"
        ),
    )
    proc = _run_cli("--json", tree)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    codes = {f["rule_code"] for f in report["findings"]}
    assert codes == {"BF002"}


def test_cli_json_shape_and_summary(tmp_path):
    tree = _copy_tree_with(
        tmp_path,
        Path("crypto") / "paillier.py",
        lambda src: src + "\n\nimport random\n_X = random.random()\n",
    )
    proc = _run_cli("--json", tree)
    report = json.loads(proc.stdout)
    assert set(report) == {"files_scanned", "findings", "rules"}
    assert report["files_scanned"] > 0
    assert "BF002" in report["rules"]
    finding = report["findings"][0]
    assert set(finding) == {"file", "line", "rule_code", "severity", "message"}
    assert finding["line"] > 0


def test_cli_text_output_is_clickable(tmp_path):
    snippet = tmp_path / "repro" / "crypto" / "bad.py"
    snippet.parent.mkdir(parents=True)
    snippet.write_text("import random\nx = random.random()\n")
    proc = _run_cli(snippet.parent.parent)
    assert proc.returncode == 1
    line = proc.stdout.strip().splitlines()[0]
    # file:line: CODE [severity] message — clickable in editors/terminals
    assert f"{snippet}:2: BF002 [error]" in line


def test_cli_usage_errors_exit_two(tmp_path):
    assert _run_cli("--rules", "BF999", SRC_TREE).returncode == 2
    assert _run_cli(tmp_path / "does-not-exist").returncode == 2


def test_cli_rule_filter(tmp_path):
    snippet = tmp_path / "repro" / "crypto" / "bad.py"
    snippet.parent.mkdir(parents=True)
    snippet.write_text("import random\nx = random.random()\n")
    # Filtering to an unrelated rule silences the BF002 finding.
    proc = _run_cli("--rules", "BF005", snippet.parent.parent)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_pragma_suppresses_and_unused_pragma_reports_bf006():
    suppressed = (
        "import random\n"
        "# repro: nondeterministic-ok fixture jitter\n"
        "x = random.random()\n"
    )
    findings = analyze_source(suppressed, path="src/repro/crypto/demo.py")
    assert findings == []

    unused = (
        "# repro: nondeterministic-ok nothing nondeterministic here\n"
        "x = 1\n"
    )
    findings = analyze_source(unused, path="src/repro/crypto/demo.py")
    assert [f.rule_code for f in findings] == [UNUSED_PRAGMA_CODE]
    assert findings[0].severity == "warning"

    unknown = "# repro: totally-made-up-tag because reasons\nx = 1\n"
    findings = analyze_source(unknown, path="src/repro/crypto/demo.py")
    assert [f.rule_code for f in findings] == [UNUSED_PRAGMA_CODE]
    assert findings[0].severity == "error"


def test_syntax_error_reports_bf000():
    findings = analyze_source("def broken(:\n", path="src/repro/crypto/x.py")
    assert [f.rule_code for f in findings] == ["BF000"]
