"""Chaos tests: training through injected faults, kills, and resumes.

Tier-1 keeps two cases under hard timeouts:

* a seeded drop+corrupt+duplicate+reconnect schedule over a real
  two-process run that must land **bit-identical** to the in-memory
  serializing tier — including ``total_bytes``, because retransmitted
  envelopes are link overhead, never protocol bytes;
* a kill-and-resume: both endpoints die mid-epoch (injected
  ``TrainingInterrupted`` after the checkpoint), restart, resume from
  their checkpoints and finish with the uninterrupted trajectory.

The full grid (more fault mixes, delays, Embed-MatMul) carries the
``chaos`` marker: ``pytest -m chaos``.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_transport import (
    _BUILDERS,
    _assert_digests_match,
    _reference,
    train_program,
)

from repro.comm import VFLConfig, VFLContext
from repro.comm.faults import FaultPlan
from repro.comm.transport import RetryPolicy, run_two_party
from repro.core.checkpoint import TrainingInterrupted
from repro.core.trainer import TrainConfig, train_federated

CHAOS_TIMEOUT = 90.0
GRID_TIMEOUT = 300.0


def _chaos_retry():
    return RetryPolicy(max_retries=6, base_delay=0.02, max_delay=0.25,
                       jitter=0.2, seed=5)


# ---------------------------------------------------------------------------
# Programs (module scope: picklable under both fork and spawn).


def checkpoint_train_program(channel, base_path, resume, crash_after):
    """Train LR with per-batch checkpoints; optionally crash or resume.

    Each endpoint checkpoints its *own* parties' state under a
    role-specific path — in a real federation neither side could hold the
    other's secret state, and on resume each side restores only its half.
    """
    ctx = VFLContext(VFLConfig(key_bits=128, packing=True), seed=3,
                     channel=channel)
    model, vd = _BUILDERS["lr"](ctx)
    role = "guest" if "A" in channel.local_parties else "host"
    tc = TrainConfig(
        epochs=2, batch_size=16, lr=0.1, momentum=0.9, seed=0,
        checkpoint_path=f"{base_path}.{role}", checkpoint_every=1,
        crash_after_batches=crash_after,
    )
    try:
        history = train_federated(
            model, vd, tc,
            resume_from=f"{base_path}.{role}" if resume else None,
        )
    except TrainingInterrupted as exc:
        return {"interrupted": True, "checkpoint": exc.checkpoint_path}
    weights = {}
    for layer in model.source_layers():
        for name, value in layer.reveal_weights().items():
            weights[f"{layer.name}.{name}"] = value
    return {"losses": history.losses, "weights": weights}


# ---------------------------------------------------------------------------
# Tier-1 smoke: faults on both endpoints, bit-identical to honest bytes.


def test_chaos_smoke_drop_corrupt_reconnect_is_bit_identical():
    """Seeded drops, corruption, duplicates and one mid-run disconnect on
    EACH endpoint; the run must match the serializing tier bit-for-bit,
    total_bytes included (retransmissions are not protocol traffic)."""
    case = ("lr", True, 128)
    plans = {
        "guest": FaultPlan.seeded(
            41, frames=600, drop_rate=0.06, corrupt_rate=0.06,
            duplicate_rate=0.04, disconnect_at=23,
        ),
        "host": FaultPlan.seeded(
            42, frames=600, drop_rate=0.06, corrupt_rate=0.06,
            duplicate_rate=0.04, disconnect_at=57,
        ),
    }
    results = run_two_party(
        train_program, case, timeout=CHAOS_TIMEOUT, sock_timeout=0.5,
        retry=_chaos_retry(), fault_plans=plans,
    )
    reference = _reference(*case)
    for role in ("guest", "host"):
        _assert_digests_match(results["results"][role], reference)
    # The recovery counters come back with the results now (no side
    # channel): the injected faults must be visible in each endpoint's
    # LinkStats, and the graceful shutdown must have exchanged FINs.
    stats = results["link_stats"]
    assert set(stats) == {"guest", "host"}
    summed = {
        key: stats["guest"][key] + stats["host"][key] for key in stats["guest"]
    }
    recovery = (
        summed["retransmits"] + summed["naks_sent"] + summed["corrupt_dropped"]
        + summed["duplicates_dropped"] + summed["timeouts"]
    )
    assert recovery > 0, summed
    for role in ("guest", "host"):
        assert stats[role]["fins"] >= 1
        assert stats[role]["data_sent"] > 0


def test_kill_mid_epoch_then_resume_finishes_identically(tmp_path):
    """The headline scenario: both endpoints die mid-epoch under an
    injected disconnect, restart from their checkpoints, and the final
    losses/weights equal an uninterrupted run's exactly."""
    base = str(tmp_path / "federated.ckpt")
    # Leg 1: train under a disconnect fault, die after batch 4 of 6.
    plans = {"guest": FaultPlan.seeded(7, frames=400, disconnect_at=31)}
    first = run_two_party(
        checkpoint_train_program, (base, False, 4),
        timeout=CHAOS_TIMEOUT, sock_timeout=0.5, retry=_chaos_retry(),
        fault_plans=plans,
    )
    for role in ("guest", "host"):
        assert first["results"][role]["interrupted"] is True
        assert first["results"][role]["checkpoint"] == f"{base}.{role}"
    # Leg 2: fresh processes, fresh sockets, resume from the checkpoints.
    second = run_two_party(
        checkpoint_train_program, (base, True, None), timeout=CHAOS_TIMEOUT
    )
    # Reference: the same program uninterrupted (losses/weights only —
    # the resumed leg's channel counters start at the resume point).
    reference = _reference("lr", True, 128, "reencrypt", 2, 16)
    assert len(reference["losses"]) == 6
    for role in ("guest", "host"):
        assert second["results"][role]["losses"] == reference["losses"]
        assert set(second["results"][role]["weights"]) == set(reference["weights"])
        for name, value in reference["weights"].items():
            np.testing.assert_array_equal(
                second["results"][role]["weights"][name], value
            )


# ---------------------------------------------------------------------------
# The full grid (pytest -m chaos).


@pytest.mark.chaos
@pytest.mark.parametrize(
    "model_kind,packing,key_bits,guest_seed,host_seed,disconnects",
    [
        ("lr", False, 128, 11, 12, (None, None)),
        ("lr", True, 256, 13, 14, (29, None)),
        ("wdl", False, 128, 15, 16, (None, 43)),
        ("wdl", True, 256, 17, 18, (37, 71)),
    ],
    ids=lambda v: str(v),
)
def test_chaos_grid_trains_bit_identically(
    model_kind, packing, key_bits, guest_seed, host_seed, disconnects
):
    """Heavier fault mixes (including delays) across both model families."""
    case = (model_kind, packing, key_bits)
    rates = dict(frames=1200, drop_rate=0.08, corrupt_rate=0.08,
                 duplicate_rate=0.05, delay_rate=0.03, delay=0.01)
    plans = {
        "guest": FaultPlan.seeded(guest_seed, disconnect_at=disconnects[0],
                                  **rates),
        "host": FaultPlan.seeded(host_seed, disconnect_at=disconnects[1],
                                 **rates),
    }
    results = run_two_party(
        train_program, case, timeout=GRID_TIMEOUT, sock_timeout=0.5,
        retry=_chaos_retry(), fault_plans=plans,
    )
    reference = _reference(*case)
    for role in ("guest", "host"):
        _assert_digests_match(results["results"][role], reference)


@pytest.mark.chaos
def test_chaos_kill_and_resume_under_faults(tmp_path):
    """Kill-and-resume with faults active on BOTH legs of the run."""
    base = str(tmp_path / "chaotic.ckpt")
    plans = {
        "guest": FaultPlan.seeded(21, frames=600, drop_rate=0.05,
                                  corrupt_rate=0.05, disconnect_at=19),
        "host": FaultPlan.seeded(22, frames=600, drop_rate=0.05,
                                 corrupt_rate=0.05),
    }
    first = run_two_party(
        checkpoint_train_program, (base, False, 4), timeout=GRID_TIMEOUT,
        sock_timeout=0.5, retry=_chaos_retry(), fault_plans=plans,
    )
    assert all(
        first["results"][role]["interrupted"] for role in ("guest", "host")
    )
    resume_plans = {
        "guest": FaultPlan.seeded(23, frames=400, drop_rate=0.05,
                                  corrupt_rate=0.05),
        "host": FaultPlan.seeded(24, frames=400, drop_rate=0.05,
                                 corrupt_rate=0.05, disconnect_at=13),
    }
    second = run_two_party(
        checkpoint_train_program, (base, True, None), timeout=GRID_TIMEOUT,
        sock_timeout=0.5, retry=_chaos_retry(), fault_plans=resume_plans,
    )
    reference = _reference("lr", True, 128, "reencrypt", 2, 16)
    for role in ("guest", "host"):
        assert second["results"][role]["losses"] == reference["losses"]
        for name, value in reference["weights"].items():
            np.testing.assert_array_equal(
                second["results"][role]["weights"][name], value
            )
