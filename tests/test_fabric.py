"""N-party fabric tests: non-mirrored endpoints over the link grid.

The tier-1 core runs one 3-endpoint federation (two Party A processes
plus the key owner) under a hard timeout and checks it is bit-identical
to the all-local in-memory tier — losses float-exact, weight pieces
array-equal — plus a golden-transcript conformance check of the
non-mirrored protocol and the cross-endpoint trace collector.  The wider
grids (4+ endpoint processes) carry the ``nparty`` marker.

Program functions live at module scope so the runner works under both
``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

import golden_transcript
from repro.comm.codec import message_summary
from repro.comm.fabric import FabricTopology, run_federation
from repro.comm.party import VFLConfig, VFLContext
from repro.comm.transport import (
    FatalTransportError,
    TwoPartyResult,
)
from repro.core.multiparty import MultiPartyLR, MultiPartyMatMulSource
from repro.obs import JsonlSink, Tracer, use_tracer
from repro.obs import span as obs_span
from repro.obs.collect import (
    chrome_timeline,
    cross_role_overlap,
    merge_traces,
    read_jsonl_trace,
)

FABRIC_TIMEOUT = 90.0
TRAIN_STEPS = 3
TRAIN_LR = 0.1

GRID3 = {"ep_a1": ("A1",), "ep_a2": ("A2",), "ep_b": ("B",)}
IN_DIMS = {"A1": 3, "A2": 2}
IN_B = 2

# Counters that must stay zero on a clean loopback run: the reliability
# layer may only contribute the fixed envelope, never recovery traffic.
CLEAN_ZERO = (
    "retransmits",
    "naks_sent",
    "naks_received",
    "duplicates_dropped",
    "corrupt_dropped",
    "timeouts",
    "reconnects",
    "resumes",
)


def _batches():
    rng = np.random.default_rng(42)
    x = {
        "A1": rng.normal(size=(12, 3)),
        "A2": rng.normal(size=(12, 2)),
        "B": rng.normal(size=(12, 2)),
    }
    y = (rng.random(12) < 0.5).astype(np.float64)
    return x, y


def _make_ctx(channel=None, n_a=2, channel_kind=None):
    local = getattr(channel, "local_parties", None)
    cfg_kwargs = {} if channel_kind is None else {"channel": channel_kind}
    return VFLContext(
        VFLConfig(key_bits=128, **cfg_kwargs),
        seed=5,
        n_a_parties=n_a,
        channel=channel,
        local_parties=local,
    )


def train_program(channel, in_dims, steps=TRAIN_STEPS, traced_dir=None):
    """Per-endpoint training: each process runs only its parties' side."""
    ctx = _make_ctx(channel, n_a=len(in_dims))
    model = MultiPartyLR(ctx, dict(in_dims), IN_B)
    x_full, y = _batches()
    if len(in_dims) != 2:  # wider grids re-slice the A features
        rng = np.random.default_rng(42)
        x_full = {
            name: rng.normal(size=(12, dim)) for name, dim in in_dims.items()
        }
        x_full["B"] = rng.normal(size=(12, IN_B))
    x = {k: v for k, v in x_full.items() if ctx.is_local(k)}
    labels = y if ctx.is_local("B") else None

    tracer = None
    if traced_dir is not None:
        tracer = Tracer(
            sink=JsonlSink(os.path.join(traced_dir, f"{channel.role}.jsonl"))
        )
    losses = []
    with use_tracer(tracer):
        for k in range(steps):
            with obs_span("batch", batch=k):
                losses.append(model.train_step(x, labels, lr=TRAIN_LR))
    return {
        "losses": losses,
        "pieces": model.source.local_weight_pieces(),
        "bytes_by_sender": dict(channel.bytes_by_sender),
    }


def _memory_reference(in_dims=IN_DIMS, steps=TRAIN_STEPS, channel_kind=None):
    """The all-local run every fabric trajectory must reproduce exactly."""
    ctx = _make_ctx(n_a=len(in_dims), channel_kind=channel_kind)
    model = MultiPartyLR(ctx, dict(in_dims), IN_B)
    x, y = _batches()
    if len(in_dims) != 2:
        rng = np.random.default_rng(42)
        x = {name: rng.normal(size=(12, dim)) for name, dim in in_dims.items()}
        x["B"] = rng.normal(size=(12, IN_B))
    losses = [model.train_step(x, y, lr=TRAIN_LR) for _ in range(steps)]
    return losses, model.source.local_weight_pieces(), ctx.channel


def _assert_clean(stats: dict) -> None:
    for key in CLEAN_ZERO:
        assert stats[key] == 0, f"link counter {key} nonzero: {stats}"


# ---------------------------------------------------------------------------
# Topology and driver validation (no processes spawned).


def test_topology_validation():
    topo = FabricTopology(GRID3)
    assert set(topo.parties) == {"A1", "A2", "B"}
    assert topo.home_of("A2") == "ep_a2"
    with pytest.raises(LookupError, match="not placed"):
        topo.home_of("A9")
    with pytest.raises(ValueError, match="at least two"):
        FabricTopology({"solo": ("A1", "A2", "B")})
    with pytest.raises(ValueError, match="hosts no parties"):
        FabricTopology({"x": (), "y": ("B",)})
    with pytest.raises(ValueError, match="claimed by both"):
        FabricTopology({"x": ("A1", "B"), "y": ("B",)})


def test_run_federation_mode_validation():
    from repro.comm.faults import FaultPlan

    plan = FaultPlan.seeded(1, frames=10, drop_rate=0.5)
    with pytest.raises(ValueError, match="exactly two endpoints"):
        run_federation(train_program, roles=GRID3, mirror=True)
    with pytest.raises(ValueError, match="fabric-mode only"):
        run_federation(
            train_program,
            roles={"guest": ("A1", "A2"), "host": ("B",)},
            resume_from="ckpt",
        )
    with pytest.raises(ValueError, match="must be a FaultPlan"):
        run_federation(
            train_program, roles=GRID3, fault_plans={"ep_b": object()}
        )
    with pytest.raises(ValueError, match="unknown fabric role"):
        run_federation(
            train_program, roles=GRID3, fault_plans={("ep_zz", "ep_b"): plan}
        )
    with pytest.raises(ValueError, match="two distinct roles"):
        run_federation(
            train_program, roles=GRID3, fault_plans={("ep_b", "B"): plan}
        )
    with pytest.raises(ValueError, match="role name or a"):
        run_federation(
            train_program,
            roles=GRID3,
            fault_plans={("ep_a1", "ep_a2", "ep_b"): plan},
        )
    with pytest.raises(ValueError, match="sock_timeout must be positive"):
        run_federation(train_program, roles=GRID3, sock_timeout=0.0)


def test_per_link_plan_addressing():
    """Directed pairs, party-name aliases, and role shorthand normalise."""
    from repro.comm.faults import FaultPlan, per_link_plans

    a = FaultPlan.seeded(1, frames=5, drop_rate=0.5)
    b = FaultPlan.seeded(2, frames=5, corrupt_rate=0.5)
    aliases = {p: r for r, ps in GRID3.items() for p in ps}
    plans = per_link_plans(
        {("A1", "B"): a, "ep_b": b}, GRID3, aliases
    )
    # The pair key targets one direction; the shorthand fans out to every
    # outbound link of the key owner.
    assert plans["ep_a1"] == {"ep_b": a}
    assert plans["ep_b"] == {"ep_a1": b, "ep_a2": b}
    assert "ep_a2" not in plans
    # An explicit pair overrides the shorthand for the same link.
    plans = per_link_plans(
        {"ep_b": b, ("ep_b", "ep_a2"): a}, GRID3, aliases
    )
    assert plans["ep_b"] == {"ep_a1": b, "ep_a2": a}


def test_fabric_endpoint_rejects_remote_actors():
    """No mirroring: acting for a party homed elsewhere is fatal."""
    import socket

    from repro.comm.fabric import FabricChannel
    from repro.comm.message import MessageKind

    listener = socket.create_server(("127.0.0.1", 0))
    ch = FabricChannel("ep_a1", FabricTopology(GRID3), {}, listener)
    try:
        with pytest.raises(FatalTransportError, match="do not mirror"):
            ch.send("B", "A1", "t", 1.0, MessageKind.PUBLIC)
        with pytest.raises(FatalTransportError, match="do not mirror"):
            ch.recv("B")
    finally:
        ch.shutdown()


# ---------------------------------------------------------------------------
# The core 3-endpoint run: bit-identical, clean links, structured result.


def test_three_endpoints_bit_identical():
    ref_losses, ref_pieces, _ = _memory_reference()
    out = run_federation(
        train_program,
        (IN_DIMS,),
        roles=GRID3,
        timeout=FABRIC_TIMEOUT,
    )
    # Structured shape: role results never share a namespace with stats.
    assert set(out) == {"results", "link_stats"}
    results = out["results"]
    assert set(results) == set(GRID3)

    # Losses materialise at the key owner only and are float-exact.
    assert results["ep_b"]["losses"] == ref_losses
    assert results["ep_a1"]["losses"] == [None] * TRAIN_STEPS
    assert results["ep_a2"]["losses"] == [None] * TRAIN_STEPS

    # Pooled per-endpoint weight pieces == the all-local model's pieces,
    # array-equal: blinders and HE2SS masks cancelled exactly.
    pooled = {}
    for role in GRID3:
        pieces = results[role]["pieces"]
        assert not set(pieces) & set(pooled), "piece owned by two endpoints"
        pooled.update(pieces)
    assert set(pooled) == set(ref_pieces)
    for name, arr in ref_pieces.items():
        np.testing.assert_array_equal(pooled[name], arr, err_msg=name)

    # Every protocol message touches the key owner, so its two links
    # carry everything; A1<->A2 never talk and must never have dialled.
    stats = out["link_stats"]
    assert set(stats["ep_b"]) == {"ep_a1", "ep_a2"}
    assert set(stats["ep_a1"]) == {"ep_b"}
    assert set(stats["ep_a2"]) == {"ep_b"}
    for role, per_peer in stats.items():
        for peer, ledger in per_peer.items():
            _assert_clean(ledger)
            mirror = stats[peer][role]
            assert ledger["data_sent"] == mirror["data_received"]
            assert ledger["data_received"] == mirror["data_sent"]
            assert ledger["data_sent"] > 0


def test_fabric_byte_ledger_reconciles_with_serializing_tier():
    """The key owner's ledger (every message touches B) equals the
    all-local serializing run's per-sender byte ledger exactly."""
    _, _, channel = _memory_reference(channel_kind="serializing")
    out = run_federation(
        train_program, (IN_DIMS,), roles=GRID3, timeout=FABRIC_TIMEOUT
    )
    assert out["results"]["ep_b"]["bytes_by_sender"] == dict(
        channel.bytes_by_sender
    )


def test_colocated_parties_short_circuit():
    """A role hosting two parties keeps their hops in-process (codec
    round-trip, no socket) and still matches the reference trajectory."""
    ref_losses, ref_pieces, _ = _memory_reference()
    out = run_federation(
        train_program,
        (IN_DIMS,),
        roles={"edge": ("A1",), "hub": ("A2", "B")},
        mirror=False,  # two endpoints default to the mirrored tier
        timeout=FABRIC_TIMEOUT,
    )
    results = out["results"]
    assert results["hub"]["losses"] == ref_losses
    pooled = {**results["edge"]["pieces"], **results["hub"]["pieces"]}
    for name, arr in ref_pieces.items():
        np.testing.assert_array_equal(pooled[name], arr, err_msg=name)
    # A2<->B ran co-located: the only link in the grid is edge<->hub.
    assert set(out["link_stats"]["edge"]) == {"hub"}
    assert set(out["link_stats"]["hub"]) == {"edge"}


def test_pipelined_run_bit_identical_and_overlapping(tmp_path):
    """Pipelining reorders wall-clock only: the trajectory is unchanged,
    and the merged timeline shows batch k+1 compute over batch k frames."""
    ref_losses, ref_pieces, _ = _memory_reference(steps=4)
    trace_dir = str(tmp_path)
    out = run_federation(
        train_program,
        (IN_DIMS, 4, trace_dir),
        roles=GRID3,
        timeout=FABRIC_TIMEOUT,
        pipeline=True,
    )
    results = out["results"]
    assert results["ep_b"]["losses"] == ref_losses
    pooled = {}
    for role in GRID3:
        pooled.update(results[role]["pieces"])
    for name, arr in ref_pieces.items():
        np.testing.assert_array_equal(pooled[name], arr, err_msg=name)
    for per_peer in out["link_stats"].values():
        for ledger in per_peer.values():
            _assert_clean(ledger)

    # --- the collector on real per-endpoint traces -----------------------
    traces = {
        role: read_jsonl_trace(os.path.join(trace_dir, f"{role}.jsonl"))
        for role in GRID3
    }
    merged = merge_traces(traces)
    ids = [s["id"] for s in merged]
    assert len(ids) == len(set(ids)), "merged span ids must be unique"
    assert all(s["id"].startswith(f"{s['role']}:") for s in merged)

    timeline = chrome_timeline(merged)
    lanes = {
        e["args"]["name"]: e["pid"]
        for e in timeline["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert set(lanes) == set(GRID3), "one process lane per endpoint"
    assert len(set(lanes.values())) == len(GRID3)

    # Pipelining evidence: some endpoint's batch k+1 span overlaps
    # another endpoint's still-running batch k span — async sends mean
    # batch k's frames are still in flight (transfer + decode at the
    # peer) while the next batch's compute has already started.
    # perf_counter is CLOCK_MONOTONIC on Linux: one axis across the
    # local endpoint processes.
    def batch_intervals(role):
        spans = [
            s for s in merged if s["role"] == role and s.get("phase") == "batch"
        ]
        return {
            s["attrs"]["batch"]: (s["t_start"], s["t_start"] + s["dur_s"])
            for s in spans
        }

    intervals = {role: batch_intervals(role) for role in GRID3}
    assert all(set(iv) == {0, 1, 2, 3} for iv in intervals.values())
    overlapped = [
        (ahead, behind, k)
        for ahead in GRID3
        for behind in GRID3
        if ahead != behind
        for k in (0, 1, 2)
        if max(intervals[ahead][k + 1][0], intervals[behind][k][0])
        < min(intervals[ahead][k + 1][1], intervals[behind][k][1])
    ]
    assert overlapped, "no batch k+1 span overlapped a peer's batch k"
    assert cross_role_overlap(merged, phase="batch") > 0.0


# ---------------------------------------------------------------------------
# Golden conformance: the non-mirrored protocol on the wire.


def transcript_program(channel):
    """The golden ``multiparty`` scenario, executed non-mirrored."""
    local = getattr(channel, "local_parties", None)
    ctx = VFLContext(
        VFLConfig(key_bits=128),
        seed=77,
        n_a_parties=2,
        channel=channel,
        local_parties=local,
    )
    layer = MultiPartyMatMulSource(
        ctx, {"A1": 3, "A2": 2}, in_b=2, out_dim=2, name="gm"
    )
    # Every endpoint replays the full draw sequence so B's grad matches
    # the golden stream; only local slices are ever fed to the layer.
    rng = np.random.default_rng(13)
    x_full = {
        "A1": rng.normal(size=(3, 3)),
        "A2": rng.normal(size=(3, 2)),
        "B": rng.normal(size=(3, 2)),
    }
    grad = rng.normal(size=(3, 2)) * 0.1
    x = {k: v for k, v in x_full.items() if ctx.is_local(k)}
    layer.forward(x)
    layer.backward(grad if ctx.is_local("B") else None)
    layer.apply_updates(lr=0.05, momentum=0.9)
    return [message_summary(m) for m in channel.transcript]


def _by_pair(records):
    """Group summaries by directed (sender, receiver) pair, seq dropped.

    Cross-sender arrival order is scheduling-dependent and per-endpoint
    ``seq`` counters differ from the all-local global counter; per-pair
    FIFO order, tags, kinds, frame sizes and payload headers are the
    protocol and must match the golden exactly.
    """
    pairs: dict[tuple[str, str], list[dict]] = {}
    for rec in records:
        rec = {k: v for k, v in rec.items() if k != "seq"}
        pairs.setdefault((rec["sender"], rec["receiver"]), []).append(rec)
    return pairs


def test_fabric_transcript_matches_multiparty_golden():
    golden = json.loads(golden_transcript.GOLDEN_PATH.read_text())
    expected = _by_pair(golden["multiparty"])
    out = run_federation(
        transcript_program, roles=GRID3, timeout=FABRIC_TIMEOUT
    )
    locals_of = {role: set(parties) for role, parties in GRID3.items()}
    for role, records in out["results"].items():
        actual = _by_pair(records)
        # An endpoint's transcript covers exactly the directed pairs that
        # touch its local parties — outbound at send, inbound at decode.
        touching = {
            pair
            for pair in expected
            if set(pair) & locals_of[role]
        }
        assert set(actual) == touching, f"{role}: unexpected pair set"
        for pair, msgs in actual.items():
            assert msgs == expected[pair], f"{role}: pair {pair} diverged"
    # The key owner saw every protocol message (no A<->A traffic exists).
    assert set(_by_pair(out["results"]["ep_b"])) == set(expected)


# ---------------------------------------------------------------------------
# Collector unit tests (synthetic traces).


def _span(sid, t0, dur, phase="batch", parent=None, party=None, **attrs):
    return {
        "id": sid,
        "parent": parent,
        "phase": phase,
        "party": party,
        "t_start": t0,
        "dur_s": dur,
        "attrs": attrs,
        "counters": {},
    }


def test_merge_traces_namespaces_and_orders():
    merged = merge_traces(
        {
            "b": [_span("s0", 1.0, 0.5), _span("s1", 2.0, 0.5, parent="s0")],
            "a": [_span("s0", 0.0, 0.5)],  # raw id collides across roles
        }
    )
    assert [s["id"] for s in merged] == ["a:s0", "b:s0", "b:s1"]
    assert merged[2]["parent"] == "b:s0"
    assert merged[0]["parent"] is None
    assert [s["role"] for s in merged] == ["a", "b", "b"]


def test_merge_traces_rejects_duplicate_id_within_role():
    with pytest.raises(ValueError, match="duplicate span id"):
        merge_traces({"a": [_span("s0", 0.0, 1.0), _span("s0", 2.0, 1.0)]})


def test_read_jsonl_trace_validates(tmp_path):
    good = tmp_path / "good.jsonl"
    good.write_text(
        json.dumps(_span("s0", 0.0, 1.0)) + "\n\n"  # blank lines skipped
        + json.dumps(_span("s1", 1.0, 1.0)) + "\n"
    )
    assert [s["id"] for s in read_jsonl_trace(str(good))] == ["s0", "s1"]
    bad_json = tmp_path / "bad.jsonl"
    bad_json.write_text("{not json\n")
    with pytest.raises(ValueError, match="bad.jsonl:1"):
        read_jsonl_trace(str(bad_json))
    no_id = tmp_path / "noid.jsonl"
    no_id.write_text('{"phase": "batch"}\n')
    with pytest.raises(ValueError, match="no 'id' field"):
        read_jsonl_trace(str(no_id))


def test_chrome_timeline_one_lane_per_role():
    merged = merge_traces(
        {
            "a": [_span("s0", 0.0, 1.0, party="A1", batch=0)],
            "b": [
                _span("s0", 0.2, 1.0, party="B", batch=0),
                _span("s1", 1.4, 1.0, party="B", batch=1),
            ],
        }
    )
    timeline = chrome_timeline(merged)
    names = {
        e["args"]["name"]: e["pid"]
        for e in timeline["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert set(names) == {"a", "b"}
    assert len(set(names.values())) == 2
    events = [e for e in timeline["traceEvents"] if e["ph"] == "X"]
    assert {e["pid"] for e in events} == set(names.values())
    assert all(e["args"]["span_id"].count(":") == 1 for e in events)
    by_id = {e["args"]["span_id"]: e for e in events}
    assert by_id["a:s0"]["ts"] == 0.0 and by_id["a:s0"]["dur"] == 1e6
    assert by_id["b:s0"]["args"]["batch"] == 0


def test_cross_role_overlap_sweep():
    merged = merge_traces(
        {
            "a": [_span("s0", 0.0, 1.0)],
            "b": [_span("s0", 0.5, 1.0)],  # overlaps a:s0 on [0.5, 1.0]
        }
    )
    assert cross_role_overlap(merged) == pytest.approx(0.5)
    # Same-role concurrency is not cross-role overlap.
    solo = merge_traces(
        {"a": [_span("s0", 0.0, 1.0), _span("s1", 0.2, 1.0)]}
    )
    assert cross_role_overlap(solo) == 0.0
    assert cross_role_overlap(merged, phase="other") == 0.0


# ---------------------------------------------------------------------------
# Two-party result shim (satellite of the link_stats collision fix).


def test_two_party_result_shim_warns_on_flat_access():
    result = TwoPartyResult(
        {
            "results": {"host": 1, "guest": 2},
            "link_stats": {"host": {"data_sent": 3}},
        }
    )
    assert result["results"]["guest"] == 2  # structured reads stay silent
    assert result["link_stats"]["host"]["data_sent"] == 3
    with pytest.warns(DeprecationWarning, match="deprecated flat"):
        assert result["guest"] == 2
    assert "guest" in result and "results" in result
    with pytest.raises(KeyError):
        result["nobody"]


# ---------------------------------------------------------------------------
# Wider grids (4+ endpoint processes) — opt in with ``pytest -m nparty``.


@pytest.mark.nparty
def test_four_endpoint_grid_bit_identical():
    in_dims = {"A1": 3, "A2": 2, "A3": 2}
    ref_losses, ref_pieces, _ = _memory_reference(in_dims=in_dims)
    out = run_federation(
        train_program,
        (in_dims,),
        roles={
            "ep_a1": ("A1",),
            "ep_a2": ("A2",),
            "ep_a3": ("A3",),
            "ep_b": ("B",),
        },
        timeout=FABRIC_TIMEOUT * 2,
    )
    results = out["results"]
    assert results["ep_b"]["losses"] == ref_losses
    pooled = {}
    for role in results:
        pooled.update(results[role]["pieces"])
    assert set(pooled) == set(ref_pieces)
    for name, arr in ref_pieces.items():
        np.testing.assert_array_equal(pooled[name], arr, err_msg=name)
    # Star topology: every link touches the key owner, A's never connect.
    stats = out["link_stats"]
    assert set(stats["ep_b"]) == {"ep_a1", "ep_a2", "ep_a3"}
    for role in ("ep_a1", "ep_a2", "ep_a3"):
        assert set(stats[role]) == {"ep_b"}
        _assert_clean(stats[role]["ep_b"])


@pytest.mark.nparty
def test_four_endpoint_grid_pipelined_bit_identical():
    in_dims = {"A1": 3, "A2": 2, "A3": 2}
    ref_losses, _, _ = _memory_reference(in_dims=in_dims)
    out = run_federation(
        train_program,
        (in_dims,),
        roles={
            "ep_a1": ("A1",),
            "ep_a2": ("A2",),
            "ep_a3": ("A3",),
            "ep_b": ("B",),
        },
        timeout=FABRIC_TIMEOUT * 2,
        pipeline=True,
    )
    assert out["results"]["ep_b"]["losses"] == ref_losses
