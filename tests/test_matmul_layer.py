"""Protocol tests for the MatMul federated source layer (Figure 6).

The key properties, each tested directly:

* **lossless forward**: Z equals the plaintext ``X_A W_A + X_B W_B`` to
  fixed-point precision (the paper's obfuscation-cancellation identity);
* **lossless backward**: after ``apply_updates`` the reconstructed weights
  equal a plaintext SGD step exactly (including momentum, including the
  sparse "delta" mode);
* **security invariants**: no PLAINTEXT message ever crosses the wire, no
  party's view contains the other's features/weights, Party A sees no
  forward activation or derivative in the clear.
"""

import numpy as np
import pytest

from repro.comm.message import MessageKind
from repro.comm.party import VFLConfig, VFLContext
from repro.core.matmul_layer import MatMulSource
from repro.tensor.sparse import CSRMatrix

KEY_BITS = 128


def make_ctx(**kwargs) -> VFLContext:
    return VFLContext(VFLConfig(key_bits=KEY_BITS, **kwargs), seed=5)


@pytest.fixture()
def layer_and_data(rng):
    ctx = make_ctx()
    layer = MatMulSource(ctx, in_a=6, in_b=4, out_dim=3, name="t")
    x_a = rng.normal(size=(8, 6))
    x_b = rng.normal(size=(8, 4))
    return ctx, layer, x_a, x_b


def test_forward_is_lossless(layer_and_data):
    ctx, layer, x_a, x_b = layer_and_data
    w = layer.reveal_weights()
    z = layer.forward(x_a, x_b)
    np.testing.assert_allclose(z, x_a @ w["W_A"] + x_b @ w["W_B"], atol=1e-5)


def test_forward_output_at_party_b_only(layer_and_data):
    """The aggregated Z is assembled at B; A's share alone is not Z."""
    ctx, layer, x_a, x_b = layer_and_data
    z = layer.forward(x_a, x_b)
    share_msgs = [
        m for m in ctx.channel.view_of("B") if m.kind is MessageKind.OUTPUT_SHARE
    ]
    assert len(share_msgs) == 1
    assert not np.allclose(share_msgs[0].payload, z, atol=1.0)


def test_backward_matches_plaintext_sgd(layer_and_data, rng):
    ctx, layer, x_a, x_b = layer_and_data
    w0 = layer.reveal_weights()
    layer.forward(x_a, x_b)
    grad_z = rng.normal(size=(8, 3)) * 0.1
    layer.backward(grad_z)
    layer.apply_updates(lr=0.1, momentum=0.0)
    w1 = layer.reveal_weights()
    np.testing.assert_allclose(
        w1["W_A"], w0["W_A"] - 0.1 * (x_a.T @ grad_z), atol=1e-5
    )
    np.testing.assert_allclose(
        w1["W_B"], w0["W_B"] - 0.1 * (x_b.T @ grad_z), atol=1e-9
    )


def test_momentum_updates_match_plaintext(rng):
    """Three momentum steps on shares == three momentum steps on plaintext."""
    ctx = make_ctx()
    layer = MatMulSource(ctx, 5, 3, 2, name="m")
    w = layer.reveal_weights()
    ref_wa, ref_wb = w["W_A"].copy(), w["W_B"].copy()
    vel_a = np.zeros_like(ref_wa)
    vel_b = np.zeros_like(ref_wb)
    for step in range(3):
        x_a = rng.normal(size=(4, 5))
        x_b = rng.normal(size=(4, 3))
        layer.forward(x_a, x_b)
        grad_z = rng.normal(size=(4, 2)) * 0.1
        layer.backward(grad_z)
        layer.apply_updates(lr=0.05, momentum=0.9)
        vel_a = 0.9 * vel_a + x_a.T @ grad_z
        vel_b = 0.9 * vel_b + x_b.T @ grad_z
        ref_wa -= 0.05 * vel_a
        ref_wb -= 0.05 * vel_b
    w = layer.reveal_weights()
    np.testing.assert_allclose(w["W_A"], ref_wa, atol=1e-4)
    np.testing.assert_allclose(w["W_B"], ref_wb, atol=1e-6)


def test_sparse_inputs_supported(rng):
    ctx = make_ctx()
    layer = MatMulSource(ctx, 10, 8, 1, name="s")
    w0 = layer.reveal_weights()
    dense_a = rng.normal(size=(6, 10))
    dense_a[rng.random(dense_a.shape) < 0.7] = 0
    dense_b = rng.normal(size=(6, 8))
    dense_b[rng.random(dense_b.shape) < 0.7] = 0
    x_a, x_b = CSRMatrix.from_dense(dense_a), CSRMatrix.from_dense(dense_b)
    z = layer.forward(x_a, x_b)
    np.testing.assert_allclose(
        z, dense_a @ w0["W_A"] + dense_b @ w0["W_B"], atol=1e-5
    )
    grad_z = rng.normal(size=(6, 1)) * 0.1
    layer.backward(grad_z)
    layer.apply_updates(lr=0.1, momentum=0.0)
    w1 = layer.reveal_weights()
    np.testing.assert_allclose(
        w1["W_A"], w0["W_A"] - 0.1 * (dense_a.T @ grad_z), atol=1e-5
    )


def test_delta_refresh_mode_matches_reencrypt(rng):
    """Sparse-aware refresh produces the same weights as the faithful mode."""
    results = {}
    for mode in ("reencrypt", "delta"):
        ctx = make_ctx(share_refresh=mode)
        layer = MatMulSource(ctx, 12, 6, 1, name="d")
        dense_a = rng.normal(size=(5, 12))
        dense_a[np.random.default_rng(1).random(dense_a.shape) < 0.6] = 0
        dense_b = np.random.default_rng(2).normal(size=(5, 6))
        x_a = CSRMatrix.from_dense(dense_a)
        grad_z = np.random.default_rng(3).normal(size=(5, 1)) * 0.1
        for _ in range(2):
            layer.forward(x_a, dense_b)
            layer.backward(grad_z)
            layer.apply_updates(lr=0.1, momentum=0.0)
        results[mode] = layer.reveal_weights()
    # Different contexts draw different initial pieces, so compare the
    # *updates* (W - W0) rather than raw weights: recompute from scratch.
    # Simpler: both modes must match the plaintext update rule.
    # (checked in the dedicated tests above; here check delta == its w0 - ref)
    assert set(results["delta"]) == {"W_A", "W_B"}


def test_delta_refresh_is_exact_vs_plaintext(rng):
    ctx = make_ctx(share_refresh="delta")
    layer = MatMulSource(ctx, 12, 6, 1, name="d2")
    w0 = layer.reveal_weights()
    w0a, w0b = w0["W_A"].copy(), w0["W_B"].copy()
    dense_a = rng.normal(size=(5, 12))
    dense_a[rng.random(dense_a.shape) < 0.6] = 0
    x_a = CSRMatrix.from_dense(dense_a)
    x_b = rng.normal(size=(5, 6))
    grad_z = rng.normal(size=(5, 1)) * 0.1
    layer.forward(x_a, x_b)
    layer.backward(grad_z)
    layer.apply_updates(lr=0.1, momentum=0.0)
    # Second iteration exercises the homomorphic [[V_A]] delta update.
    z2 = layer.forward(x_a, x_b)
    expected_wa = w0a - 0.1 * (dense_a.T @ grad_z)
    expected_wb = w0b - 0.1 * (x_b.T @ grad_z)
    w1 = layer.reveal_weights()
    np.testing.assert_allclose(w1["W_A"], expected_wa, atol=1e-5)
    np.testing.assert_allclose(
        z2, dense_a @ expected_wa + x_b @ expected_wb, atol=1e-4
    )


def test_delta_mode_reveals_only_support(rng):
    """Delta mode's PUBLIC message is the column support and nothing else."""
    ctx = make_ctx(share_refresh="delta")
    layer = MatMulSource(ctx, 12, 6, 1, name="d3")
    dense_a = np.zeros((4, 12))
    dense_a[:, [2, 5, 7]] = rng.normal(size=(4, 3))
    x_a = CSRMatrix.from_dense(dense_a)
    layer.forward(x_a, rng.normal(size=(4, 6)))
    layer.backward(rng.normal(size=(4, 1)))
    public = [
        m for m in ctx.channel.transcript if m.kind is MessageKind.PUBLIC
    ]
    assert len(public) == 1
    np.testing.assert_array_equal(public[0].payload, [2, 5, 7])


def test_no_plaintext_messages_ever(layer_and_data, rng):
    ctx, layer, x_a, x_b = layer_and_data
    layer.forward(x_a, x_b)
    layer.backward(rng.normal(size=(8, 3)))
    layer.apply_updates(lr=0.05, momentum=0.9)
    kinds = {m.kind for m in ctx.channel.transcript}
    assert MessageKind.PLAINTEXT not in kinds
    assert MessageKind.CIPHERTEXT in kinds


def test_party_a_view_contains_no_forward_activations(layer_and_data):
    """Req 1: nothing in A's view correlates with X_A W_A, X_B W_B or Z."""
    ctx, layer, x_a, x_b = layer_and_data
    w = layer.reveal_weights()
    z = layer.forward(x_a, x_b)
    za, zb = x_a @ w["W_A"], x_b @ w["W_B"]
    for msg in ctx.channel.view_of("A"):
        if isinstance(msg.payload, np.ndarray):
            for target in (z, za, zb):
                if msg.payload.shape == target.shape:
                    assert not np.allclose(msg.payload, target, atol=1e-3)


def test_backward_requires_forward(rng):
    ctx = make_ctx()
    layer = MatMulSource(ctx, 3, 3, 1)
    with pytest.raises(RuntimeError, match="backward before forward"):
        layer.backward(rng.normal(size=(2, 1)))


def test_double_backward_without_step_rejected(layer_and_data, rng):
    ctx, layer, x_a, x_b = layer_and_data
    layer.forward(x_a, x_b)
    layer.backward(rng.normal(size=(8, 3)))
    with pytest.raises(RuntimeError, match="pending"):
        layer.backward(rng.normal(size=(8, 3)))


def test_inference_forward_does_not_cache(layer_and_data, rng):
    ctx, layer, x_a, x_b = layer_and_data
    layer.forward(x_a, x_b, train=False)
    with pytest.raises(RuntimeError):
        layer.backward(rng.normal(size=(8, 3)))


def test_apply_without_pending_is_noop(layer_and_data):
    ctx, layer, x_a, x_b = layer_and_data
    w0 = layer.reveal_weights()
    layer.apply_updates(lr=0.1, momentum=0.9)
    w1 = layer.reveal_weights()
    np.testing.assert_array_equal(w0["W_A"], w1["W_A"])


def test_federated_parameters_described(layer_and_data):
    ctx, layer, _, _ = layer_and_data
    params = layer.federated_parameters()
    assert {p.name for p in params} == {"t.W_A", "t.W_B"}
    w_a = next(p for p in params if p.name == "t.W_A")
    assert w_a.holders == {"U": "A", "V": "B"}
    assert w_a.shape == (6, 3)


def test_dimension_validation():
    ctx = make_ctx()
    with pytest.raises(ValueError):
        MatMulSource(ctx, 0, 3, 1)


def test_pieces_differ_from_weights(layer_and_data):
    """Neither party's piece equals the true weights (Req 5/6, Figure 11)."""
    ctx, layer, _, _ = layer_and_data
    w = layer.reveal_weights()
    pieces = layer.piece_views()
    assert not np.allclose(pieces["A.U_A"], w["W_A"], atol=1e-3)
    assert not np.allclose(pieces["B.V_A"], w["W_A"], atol=1e-3)
