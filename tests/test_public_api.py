"""Public-API sanity: every documented entry point imports and is exported.

Downstream users consume the package through the subpackage ``__init__``
re-exports; these tests pin that surface so refactors cannot silently
remove documented names.
"""

import importlib

import numpy as np
import pytest

SURFACES = {
    "repro.crypto": [
        "generate_paillier_keypair", "PaillierPublicKey", "PaillierPrivateKey",
        "EncryptedNumber", "EncodedNumber", "CryptoTensor",
        "additive_share", "reconstruct", "he2ss_split", "he2ss_receive",
        "ss2he_send", "ss2he_combine", "BeaverTriple", "ClientAidedDealer",
        "PaillierTripleGenerator", "beaver_matmul",
    ],
    "repro.tensor": [
        "Tensor", "no_grad", "CSRMatrix", "Module", "Linear", "Embedding",
        "Sequential", "SGD", "Adam", "bce_with_logits", "softmax_cross_entropy",
        "embedding", "sparse_linear", "mlp",
    ],
    "repro.comm": [
        "Channel", "Message", "MessageKind", "Party", "VFLConfig", "VFLContext",
        "FabricChannel", "FabricTopology", "run_federation",
    ],
    "repro.core": [
        "MatMulSource", "EmbedMatMulSource", "MultiPartyMatMulSource",
        "FederatedModule", "FederatedParameter", "FederatedSGD",
        "FederatedLR", "FederatedMLR", "FederatedMLP", "FederatedWDL",
        "FederatedDLRM", "TrainConfig", "train_federated", "evaluate_federated",
        "predict", "IdealSSTop", "train_lr_with_ss_top",
    ],
    "repro.baselines": [
        "PlainLR", "PlainMLR", "PlainMLP", "PlainWDL", "PlainDLRM",
        "SplitLinear", "SplitWDL", "SecureMLMatMul", "SecureMLCostModel",
        "outsource", "collocated_view", "party_b_view", "train_plain",
    ],
    "repro.attacks": [
        "activation_attack_score", "cosine_direction_attack",
        "attack_accuracy_over_batches", "pairwise_distance_correlation",
        "piece_vs_weight_stats",
    ],
    "repro.data": [
        "load_dataset", "CATALOG", "BatchLoader", "split_vertical",
        "hashed_psi", "asymmetric_psi", "union_alignment",
        "make_dense_classification", "make_sparse_classification",
        "make_categorical_classification", "make_mixed_classification",
        "make_image_like",
    ],
    "repro.utils": ["roc_auc", "accuracy", "format_table", "Timer", "new_rng"],
}


@pytest.mark.parametrize("module_name", sorted(SURFACES))
def test_exports_present(module_name):
    module = importlib.import_module(module_name)
    for name in SURFACES[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"
        assert name in module.__all__, f"{module_name}.{name} not in __all__"


def test_package_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_multiparty_lr_wrapper_trains():
    from repro.comm import VFLConfig, VFLContext
    from repro.core.multiparty import MultiPartyLR
    from repro.data import make_dense_classification, split_vertical

    full = make_dense_classification(96, 9, seed=66, flip=0.02, nonlinear=False)
    vd = split_vertical(full, party_names=("A1", "A2", "B"))
    ctx = VFLContext(VFLConfig(key_bits=128), seed=25, n_a_parties=2)
    model = MultiPartyLR(ctx, {"A1": 3, "A2": 3}, in_b=3)
    x = {n: vd.party(n).numeric_block() for n in ("A1", "A2", "B")}
    losses = [model.train_step(x, vd.y, lr=0.2) for _ in range(6)]
    assert losses[-1] < losses[0]
    logits = model.forward(x, train=False)
    assert logits.shape == (96, 1)
