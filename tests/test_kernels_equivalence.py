"""Kernel/legacy equivalence: the flat kernels must decrypt identically to
the per-EncryptedNumber object path on every primitive, across key sizes.

The kernels mirror the legacy arithmetic exactly (same encodings, same
inversion trick, same exponent bookkeeping), so most assertions here are
*bit-level* on the ciphertexts, with float decrypt comparisons as a
backstop for the paths where exponent choices legitimately differ (the
mul-by-one shortcut).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.crypto_tensor import (
    CryptoTensor,
    legacy_encrypt,
    legacy_matmul_cipher_plain,
    legacy_matmul_plain_cipher,
    legacy_matmul_sparse_cipher,
    legacy_obfuscate,
    legacy_scatter_add_rows,
    legacy_sparse_t_matmul_cipher,
    matmul_cipher_plain,
    matmul_plain_cipher,
    sparse_matmul_cipher,
    sparse_t_matmul_cipher,
)
from repro.crypto.paillier import generate_paillier_keypair
from repro.crypto.parallel import ParallelContext, set_default_context, use_parallel
from repro.tensor.sparse import CSRMatrix

KEY_BITS = [128, 192, 256]


@pytest.fixture(scope="module", params=KEY_BITS)
def sized_keypair(request):
    return generate_paillier_keypair(request.param, seed=1000 + request.param)


def _bit_identical(a: CryptoTensor, b: CryptoTensor) -> bool:
    return all(
        p.ciphertext == q.ciphertext and p.exponent == q.exponent
        for p, q in zip(a.data.ravel(), b.data.ravel())
    )


def _binary_matrix(rng, shape, density=0.4):
    return (rng.random(shape) < density).astype(np.float64)


def test_encrypt_unobfuscated_bit_identical(sized_keypair):
    pk, _ = sized_keypair
    rng = np.random.default_rng(0)
    arr = rng.normal(size=(4, 5))
    assert _bit_identical(
        legacy_encrypt(pk, arr, obfuscate=False),
        CryptoTensor.encrypt(pk, arr, obfuscate=False),
    )


def test_encrypt_obfuscated_same_blinder_stream():
    """Seeded keys: kernel and legacy paths consume the rng identically."""
    arr = np.random.default_rng(1).normal(size=(3, 3))
    pk_a, _ = generate_paillier_keypair(128, seed=77)
    pk_b, _ = generate_paillier_keypair(128, seed=77)
    assert _bit_identical(
        legacy_encrypt(pk_a, arr, obfuscate=True),
        CryptoTensor.encrypt(pk_b, arr, obfuscate=True),
    )


def test_encrypt_pool_prefill_preserves_stream():
    """A prefilled blinding pool must not change the ciphertexts."""
    arr = np.random.default_rng(2).normal(size=(2, 4))
    pk_a, _ = generate_paillier_keypair(128, seed=78)
    pk_b, _ = generate_paillier_keypair(128, seed=78)
    pk_b.prefill_blinding(5)  # fewer than needed: pool + fresh draws mix
    assert _bit_identical(
        CryptoTensor.encrypt(pk_a, arr, obfuscate=True),
        CryptoTensor.encrypt(pk_b, arr, obfuscate=True),
    )


def test_dense_matmul_plain_cipher_bit_identical(sized_keypair):
    pk, sk = sized_keypair
    rng = np.random.default_rng(3)
    x = rng.normal(size=(5, 6))
    x[rng.random(x.shape) < 0.3] = 0.0  # exercise zero-skipping
    enc_v = CryptoTensor.encrypt(pk, rng.normal(size=(6, 3)), obfuscate=False)
    legacy = legacy_matmul_plain_cipher(x, enc_v)
    kernel = matmul_plain_cipher(x, enc_v)
    assert _bit_identical(legacy, kernel)
    np.testing.assert_allclose(
        kernel.decrypt(sk), x @ enc_v.decrypt(sk), atol=1e-6
    )


def test_dense_matmul_cipher_plain_bit_identical(sized_keypair):
    pk, sk = sized_keypair
    rng = np.random.default_rng(4)
    enc_g = CryptoTensor.encrypt(pk, rng.normal(size=(4, 3)), obfuscate=False)
    u = rng.normal(size=(3, 5))
    u[rng.random(u.shape) < 0.3] = 0.0
    legacy = legacy_matmul_cipher_plain(enc_g, u)
    kernel = matmul_cipher_plain(enc_g, u)
    assert _bit_identical(legacy, kernel)
    np.testing.assert_allclose(kernel.decrypt(sk), enc_g.decrypt(sk) @ u, atol=1e-6)


def test_sparse_forward_matmul_equivalent(sized_keypair):
    pk, sk = sized_keypair
    rng = np.random.default_rng(5)
    x = CSRMatrix.from_dense(_binary_matrix(rng, (6, 10)))
    enc_v = CryptoTensor.encrypt(pk, rng.normal(size=(10, 3)), obfuscate=False)
    legacy = legacy_matmul_sparse_cipher(x, enc_v)
    kernel = sparse_matmul_cipher(x, enc_v)
    assert _bit_identical(legacy, kernel)
    np.testing.assert_allclose(
        kernel.decrypt(sk), x.to_dense() @ enc_v.decrypt(sk), atol=1e-6
    )


def test_sparse_t_matmul_equivalent(sized_keypair):
    pk, sk = sized_keypair
    rng = np.random.default_rng(6)
    dense = _binary_matrix(rng, (5, 8)) * rng.choice([1.0, 2.5], size=(5, 8))
    x = CSRMatrix.from_dense(dense)
    enc_g = CryptoTensor.encrypt(pk, rng.normal(size=(5, 3)), obfuscate=False)
    legacy = legacy_sparse_t_matmul_cipher(x, enc_g)
    kernel = sparse_t_matmul_cipher(x, enc_g)
    assert _bit_identical(legacy, kernel)
    np.testing.assert_allclose(
        kernel.decrypt(sk), dense.T @ enc_g.decrypt(sk), atol=1e-6
    )


def test_sparse_t_matmul_column_restricted(sized_keypair):
    pk, sk = sized_keypair
    rng = np.random.default_rng(7)
    dense = np.zeros((4, 9))
    dense[:, [1, 4, 7]] = rng.normal(size=(4, 3))
    x = CSRMatrix.from_dense(dense)
    cols = x.column_support()
    enc_g = CryptoTensor.encrypt(pk, rng.normal(size=(4, 2)), obfuscate=False)
    legacy = legacy_sparse_t_matmul_cipher(x, enc_g, columns=cols)
    kernel = sparse_t_matmul_cipher(x, enc_g, columns=cols)
    assert _bit_identical(legacy, kernel)
    np.testing.assert_allclose(
        kernel.decrypt(sk), dense[:, cols].T @ enc_g.decrypt(sk), atol=1e-6
    )


def test_scatter_add_equivalent(sized_keypair):
    pk, sk = sized_keypair
    rng = np.random.default_rng(8)
    grads = rng.normal(size=(7, 3))
    idx = rng.integers(0, 4, size=7)
    enc = CryptoTensor.encrypt(pk, grads, obfuscate=False)
    legacy = legacy_scatter_add_rows(enc, idx, 4)
    kernel = enc.scatter_add_rows(idx, num_rows=4)
    assert _bit_identical(legacy, kernel)
    expected = np.zeros((4, 3))
    np.add.at(expected, idx, grads)
    np.testing.assert_allclose(kernel.decrypt(sk), expected, atol=1e-6)


def test_obfuscate_equivalent_values(sized_keypair):
    pk, sk = sized_keypair
    rng = np.random.default_rng(9)
    arr = rng.normal(size=(3, 3))
    enc = CryptoTensor.encrypt(pk, arr, obfuscate=False)
    np.testing.assert_allclose(legacy_obfuscate(enc).decrypt(sk), arr, atol=1e-9)
    np.testing.assert_allclose(enc.obfuscate().decrypt(sk), arr, atol=1e-9)


def test_elementwise_ops_match_reference(sized_keypair):
    pk, sk = sized_keypair
    rng = np.random.default_rng(10)
    a = rng.normal(size=(3, 4))
    b = rng.normal(size=(3, 4))
    ea = CryptoTensor.encrypt(pk, a)
    eb = CryptoTensor.encrypt(pk, b)
    np.testing.assert_allclose((ea + eb).decrypt(sk), a + b, atol=1e-9)
    np.testing.assert_allclose((ea - eb).decrypt(sk), a - b, atol=1e-9)
    np.testing.assert_allclose((ea + b).decrypt(sk), a + b, atol=1e-9)
    np.testing.assert_allclose((ea - b).decrypt(sk), a - b, atol=1e-9)
    np.testing.assert_allclose((ea * b).decrypt(sk), a * b, atol=1e-8)


def test_mixed_zero_one_multipliers_keep_bookkeeping(sized_keypair):
    """The 0/1 mul shortcuts leave ragged exponents; downstream ops and
    decryption must still be exact."""
    pk, sk = sized_keypair
    rng = np.random.default_rng(11)
    a = rng.normal(size=(2, 3))
    mult = np.array([[1.0, 0.0, 2.5], [0.0, 1.0, -3.25]])
    ea = CryptoTensor.encrypt(pk, a)
    prod = ea * mult
    np.testing.assert_allclose(prod.decrypt(sk), a * mult, atol=1e-8)
    # Ragged-exponent tensor through add, matmul and scatter-add.
    b = rng.normal(size=(2, 3))
    np.testing.assert_allclose((prod + b).decrypt(sk), a * mult + b, atol=1e-8)
    x = rng.normal(size=(4, 2))
    np.testing.assert_allclose(
        matmul_plain_cipher(x, prod).decrypt(sk), x @ (a * mult), atol=1e-6
    )
    out = prod.scatter_add_rows(np.array([1, 1]), num_rows=2)
    expected = np.zeros((2, 3))
    np.add.at(expected, [1, 1], a * mult)
    np.testing.assert_allclose(out.decrypt(sk), expected, atol=1e-7)


def test_parallel_context_bit_identical_to_serial():
    """A 2-worker pool (forced past the gate) reproduces serial results."""
    pk, sk = generate_paillier_keypair(128, seed=90)
    rng = np.random.default_rng(12)
    x = _binary_matrix(rng, (6, 8))
    enc_v = CryptoTensor.encrypt(pk, rng.normal(size=(8, 3)), obfuscate=False)
    serial = matmul_plain_cipher(x, enc_v)
    g = CryptoTensor.encrypt(pk, rng.normal(size=(6, 2)), obfuscate=False)
    u = rng.normal(size=(2, 4))
    serial_cp = matmul_cipher_plain(g, u)
    with ParallelContext(workers=2, min_jobs=1) as ctx:
        parallel = matmul_plain_cipher(x, enc_v, parallel=ctx)
        parallel_cp = matmul_cipher_plain(g, u, parallel=ctx)
    assert _bit_identical(serial, parallel)
    assert _bit_identical(serial_cp, parallel_cp)
    np.testing.assert_allclose(parallel.decrypt(sk), x @ enc_v.decrypt(sk), atol=1e-6)


def test_default_context_is_used_and_restored():
    pk, _ = generate_paillier_keypair(128, seed=91)
    rng = np.random.default_rng(13)
    x = _binary_matrix(rng, (4, 6))
    enc_v = CryptoTensor.encrypt(pk, rng.normal(size=(6, 2)), obfuscate=False)
    serial = matmul_plain_cipher(x, enc_v)
    assert set_default_context(None) is None  # nothing installed beforehand
    with use_parallel(ParallelContext(workers=2, min_jobs=1)) as ctx:
        from repro.crypto.parallel import get_default_context

        assert get_default_context() is ctx
        via_default = x @ enc_v  # operator path picks up the default
    from repro.crypto.parallel import get_default_context

    assert get_default_context() is None
    assert _bit_identical(serial, via_default)


def test_cross_key_add_rejected(sized_keypair, second_keypair):
    """Mixing ciphertexts from two parties must stay a loud error."""
    pk, _ = sized_keypair
    pk2, _ = second_keypair
    a = CryptoTensor.encrypt(pk, np.array([1.0, 2.0]))
    b = CryptoTensor.encrypt(pk2, np.array([3.0, 4.0]))
    with pytest.raises(ValueError):
        a + b
    with pytest.raises(ValueError):
        a - b


def test_non_finite_values_rejected_as_value_error(sized_keypair):
    """NaN/inf must raise ValueError (not a misleading OverflowError)."""
    pk, _ = sized_keypair
    for bad in (np.nan, np.inf, -np.inf):
        with pytest.raises(ValueError):
            CryptoTensor.encrypt(pk, np.array([1.0, bad]))
