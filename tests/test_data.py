"""Tests for synthetic datasets, partitioning, loaders, catalog and PSI."""

import numpy as np
import pytest

from repro.data.catalog import CATALOG, dataset_names, load_dataset
from repro.data.loader import BatchLoader
from repro.data.partition import split_csr_columns, split_vertical
from repro.data.psi import asymmetric_psi, hashed_psi, union_alignment
from repro.data.synthetic import (
    make_categorical_classification,
    make_dense_classification,
    make_image_like,
    make_mixed_classification,
    make_sparse_classification,
)

# ---------- generators ----------


def test_dense_generator_shapes():
    ds = make_dense_classification(100, 12, seed=1)
    assert ds.x_dense.shape == (100, 12)
    assert set(np.unique(ds.y)) <= {0, 1}


def test_dense_generator_has_signal():
    """A linear probe on the planted data must beat chance comfortably."""
    ds = make_dense_classification(2000, 10, seed=2, flip=0.0)
    x, y = ds.x_dense, ds.y
    w = np.linalg.lstsq(x, 2.0 * y - 1.0, rcond=None)[0]
    acc = ((x @ w > 0) == y).mean()
    assert acc > 0.75


def test_sparse_generator_nnz_matches_target():
    ds = make_sparse_classification(300, 500, nnz_per_row=14, seed=3)
    assert ds.x_sparse.shape == (300, 500)
    avg = ds.x_sparse.nnz / 300
    assert 10 <= avg <= 18


def test_sparse_generator_multiclass():
    ds = make_sparse_classification(200, 100, 10, n_classes=5, seed=4)
    assert ds.n_classes == 5
    assert ds.y.max() < 5


def test_categorical_generator():
    ds = make_categorical_classification(150, n_fields=6, vocab_size=20, seed=5)
    assert ds.x_cat.shape == (150, 6)
    assert ds.x_cat.max() < 20
    assert ds.vocab_sizes == [20] * 6


def test_mixed_generator_blocks():
    ds = make_mixed_classification(
        120, sparse_dim=200, nnz_per_row=10, n_fields=4, vocab_size=16, seed=6
    )
    assert ds.x_sparse is not None and ds.x_cat is not None
    assert ds.x_cat.shape == (120, 4)


def test_image_generator_class_structure():
    ds = make_image_like(400, n_classes=4, seed=7, noise=0.3)
    assert ds.x_dense.shape == (400, 784)
    # Same-class images are closer than cross-class ones on average.
    c0 = ds.x_dense[ds.y == 0]
    c1 = ds.x_dense[ds.y == 1]
    within = np.linalg.norm(c0[0] - c0[1])
    across = np.linalg.norm(c0[0] - c1[0])
    assert within < across


def test_dataset_subset_consistency():
    ds = make_mixed_classification(60, 100, 8, 4, 10, seed=8)
    sub = ds.subset(np.arange(10))
    assert sub.n == 10
    assert sub.x_sparse.shape == (10, 100)
    assert sub.x_cat.shape == (10, 4)


# ---------- partitioning ----------


def test_split_csr_columns_partitions():
    ds = make_sparse_classification(50, 40, 8, seed=9)
    left, right = split_csr_columns(ds.x_sparse, [25])
    assert left.shape == (50, 25) and right.shape == (50, 15)
    dense = ds.x_sparse.to_dense()
    np.testing.assert_array_equal(left.to_dense(), dense[:, :25])
    np.testing.assert_array_equal(right.to_dense(), dense[:, 25:])


def test_split_csr_bad_boundaries():
    ds = make_sparse_classification(10, 20, 4, seed=10)
    with pytest.raises(ValueError):
        split_csr_columns(ds.x_sparse, [0])


def test_split_vertical_dense():
    ds = make_dense_classification(30, 10, seed=11)
    vd = split_vertical(ds)
    assert vd.party("A").x_dense.shape == (30, 5)
    assert vd.party("B").x_dense.shape == (30, 5)
    np.testing.assert_array_equal(
        np.hstack([vd.party("A").x_dense, vd.party("B").x_dense]), ds.x_dense
    )


def test_split_vertical_categorical_round_robin():
    ds = make_categorical_classification(20, n_fields=5, vocab_size=8, seed=12)
    vd = split_vertical(ds)
    assert vd.party("A").x_cat.shape == (20, 3)  # fields 0, 2, 4
    assert vd.party("B").x_cat.shape == (20, 2)  # fields 1, 3
    np.testing.assert_array_equal(vd.party("A").x_cat[:, 0], ds.x_cat[:, 0])
    np.testing.assert_array_equal(vd.party("B").x_cat[:, 0], ds.x_cat[:, 1])


def test_split_vertical_multiparty():
    ds = make_dense_classification(15, 12, seed=13)
    vd = split_vertical(ds, party_names=("A1", "A2", "B"))
    assert vd.party("A1").x_dense.shape == (15, 4)
    assert vd.party("B").x_dense.shape == (15, 4)


def test_split_vertical_validation():
    ds = make_dense_classification(10, 4, seed=14)
    with pytest.raises(ValueError):
        split_vertical(ds, party_names=("A",))


# ---------- loader ----------


def test_loader_batch_shapes():
    ds = split_vertical(make_dense_classification(105, 8, seed=15))
    loader = BatchLoader(ds, batch_size=20, rng=np.random.default_rng(0))
    batches = list(loader)
    assert len(batches) == 5 == len(loader)
    assert all(b.size == 20 for b in batches)
    assert batches[0].party("A").x_dense.shape == (20, 4)


def test_loader_covers_all_rows_without_shuffle():
    ds = split_vertical(make_dense_classification(40, 4, seed=16))
    loader = BatchLoader(ds, batch_size=10, shuffle=False)
    seen = np.concatenate([b.indices for b in loader])
    np.testing.assert_array_equal(seen, np.arange(40))


def test_loader_keep_last():
    ds = split_vertical(make_dense_classification(45, 4, seed=17))
    loader = BatchLoader(ds, batch_size=10, drop_last=False, shuffle=False)
    assert len(loader) == 5
    assert list(loader)[-1].size == 5


def test_loader_validation():
    ds = split_vertical(make_dense_classification(10, 4, seed=18))
    with pytest.raises(ValueError):
        BatchLoader(ds, batch_size=0)
    with pytest.raises(ValueError):
        BatchLoader(ds, batch_size=11)


# ---------- catalog ----------


def test_catalog_contains_every_table4_dataset():
    for name in ["a9a", "w8a", "connect-4", "news20", "higgs", "avazu-app", "industry"]:
        assert name in CATALOG


def test_catalog_load_roundtrip():
    train, test = load_dataset("a9a", seed=1)
    entry = CATALOG["a9a"]
    assert train.n == entry.n_train and test.n == entry.n_test
    assert train.x_sparse.shape[1] == entry.dim


def test_catalog_dense_and_image_entries():
    train, _ = load_dataset("higgs")
    assert train.x_dense.shape[1] == 28
    train, _ = load_dataset("fmnist")
    assert train.x_dense.shape[1] == 784 and train.n_classes == 10


def test_catalog_unknown_name():
    with pytest.raises(KeyError, match="unknown dataset"):
        load_dataset("mnist-supreme")


def test_catalog_names_listed():
    assert "news20" in dataset_names()


# ---------- PSI ----------


def test_hashed_psi_intersection():
    res = hashed_psi([10, 20, 30, 40], [40, 50, 10])
    assert sorted(res.ids) == [10, 40]
    for pos, ident in enumerate(res.ids):
        assert [10, 20, 30, 40][res.index_a[pos]] == ident
        assert [40, 50, 10][res.index_b[pos]] == ident


def test_hashed_psi_rejects_duplicates():
    with pytest.raises(ValueError):
        hashed_psi([1, 1], [2])


def test_hashed_psi_disjoint_sets():
    res = hashed_psi([1, 2], [3, 4])
    assert res.ids == []


def test_asymmetric_psi_a_sees_all_rows():
    rng = np.random.default_rng(0)
    order_a, index_b, mask = asymmetric_psi([1, 2, 3, 4], [3, 4, 5], rng)
    assert sorted(order_a.tolist()) == [0, 1, 2, 3]  # A processes everything
    assert mask.sum() == 2
    for pos in np.nonzero(mask)[0]:
        assert [1, 2, 3, 4][order_a[pos]] == [3, 4, 5][index_b[pos]]


def test_union_alignment():
    union_ids, idx_a, idx_b = union_alignment([1, 2], [2, 3])
    assert sorted(union_ids) == [1, 2, 3]
    for pos, ident in enumerate(union_ids):
        if idx_a[pos] >= 0:
            assert [1, 2][idx_a[pos]] == ident
        if idx_b[pos] >= 0:
            assert [2, 3][idx_b[pos]] == ident
    # Every union row is owned by at least one party.
    assert np.all((idx_a >= 0) | (idx_b >= 0))
