"""Unit and property tests for the Paillier cryptosystem.

These check exactly the operation list of §2.2: Enc/Dec roundtrip,
homomorphic addition, scalar addition, scalar multiplication — plus the
fixed-point machinery (exponent alignment, overflow guard band).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encoding import EncodedNumber
from repro.crypto.paillier import generate_paillier_keypair

floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def test_keypair_shapes(keypair):
    pk, sk = keypair
    assert pk.n.bit_length() == 128
    assert sk.p * sk.q == pk.n
    assert sk.p != sk.q


def test_keypair_rejects_tiny_keys():
    with pytest.raises(ValueError):
        generate_paillier_keypair(32, seed=0)


def test_keypair_deterministic_with_seed():
    pk1, _ = generate_paillier_keypair(96, seed=9)
    pk2, _ = generate_paillier_keypair(96, seed=9)
    assert pk1.n == pk2.n


@pytest.mark.parametrize("value", [0, 1, -1, 3.25, -3.25, 123456, -99.75, 1e-9, 2**40])
def test_encrypt_decrypt_roundtrip(keypair, value):
    pk, sk = keypair
    assert sk.decrypt(pk.encrypt(value)) == pytest.approx(value, rel=1e-12, abs=1e-12)


@given(floats)
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(keypair, value):
    pk, sk = keypair
    assert sk.decrypt(pk.encrypt(value)) == pytest.approx(value, rel=1e-9, abs=1e-9)


@given(floats, floats)
@settings(max_examples=30, deadline=None)
def test_homomorphic_addition(keypair, u, v):
    pk, sk = keypair
    total = pk.encrypt(u) + pk.encrypt(v)
    assert sk.decrypt(total) == pytest.approx(u + v, rel=1e-9, abs=1e-6)


@given(floats, floats)
@settings(max_examples=30, deadline=None)
def test_scalar_addition(keypair, u, v):
    pk, sk = keypair
    assert sk.decrypt(pk.encrypt(u) + v) == pytest.approx(u + v, rel=1e-9, abs=1e-6)


@given(floats, st.floats(min_value=-1e3, max_value=1e3, allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_scalar_multiplication(keypair, v, scalar):
    pk, sk = keypair
    assert sk.decrypt(pk.encrypt(v) * scalar) == pytest.approx(
        v * scalar, rel=1e-9, abs=1e-6
    )


def test_subtraction_and_negation(keypair):
    pk, sk = keypair
    enc = pk.encrypt(10.5)
    assert sk.decrypt(enc - 4.0) == pytest.approx(6.5)
    assert sk.decrypt(4.0 - enc) == pytest.approx(-6.5)
    assert sk.decrypt(-enc) == pytest.approx(-10.5)
    assert sk.decrypt(enc - pk.encrypt(0.5)) == pytest.approx(10.0)


def test_ciphertext_times_ciphertext_is_rejected(keypair):
    pk, _ = keypair
    with pytest.raises(TypeError):
        pk.encrypt(2.0) * pk.encrypt(3.0)  # additive HE only


def test_cross_key_addition_is_rejected(keypair, second_keypair):
    pk1, _ = keypair
    pk2, _ = second_keypair
    with pytest.raises(ValueError):
        pk1.encrypt(1.0) + pk2.encrypt(1.0)


def test_cross_key_decryption_is_rejected(keypair, second_keypair):
    pk1, _ = keypair
    _, sk2 = second_keypair
    with pytest.raises(ValueError):
        sk2.decrypt(pk1.encrypt(1.0))


def test_obfuscation_changes_ciphertext_not_value(keypair):
    pk, sk = keypair
    enc = pk.encrypt(7.25, obfuscate=False)
    blinded = enc.obfuscate()
    assert blinded.ciphertext != enc.ciphertext
    assert sk.decrypt(blinded) == pytest.approx(7.25)


def test_unobfuscated_encryptions_are_deterministic(keypair):
    pk, _ = keypair
    a = pk.encrypt(5.0, exponent=-16, obfuscate=False)
    b = pk.encrypt(5.0, exponent=-16, obfuscate=False)
    assert a.ciphertext == b.ciphertext


def test_obfuscated_encryptions_are_randomised(keypair):
    pk, _ = keypair
    a = pk.encrypt(5.0, exponent=-16, obfuscate=True)
    b = pk.encrypt(5.0, exponent=-16, obfuscate=True)
    assert a.ciphertext != b.ciphertext


def test_exponent_alignment_on_addition(keypair):
    pk, sk = keypair
    coarse = pk.encrypt(1.5, exponent=-8)
    fine = pk.encrypt(0.125, exponent=-32)
    total = coarse + fine
    assert total.exponent == -32
    assert sk.decrypt(total) == pytest.approx(1.625)


def test_decrease_exponent_preserves_value(keypair):
    pk, sk = keypair
    enc = pk.encrypt(2.75, exponent=-8)
    finer = enc.decrease_exponent_to(-24)
    assert finer.exponent == -24
    assert sk.decrypt(finer) == pytest.approx(2.75)
    with pytest.raises(ValueError):
        enc.decrease_exponent_to(0)


def test_plaintext_overflow_is_detected(keypair):
    pk, _ = keypair
    with pytest.raises(OverflowError):
        EncodedNumber.encode(pk, 2.0 ** 200, exponent=-40)


def test_guard_band_overflow_raises_on_decode(keypair):
    pk, sk = keypair
    # Two near-max encodings summed land in the guard band.
    big = math.ldexp(float(pk.max_int), -40) * 0.9
    total = pk.encrypt(big, exponent=-40) + pk.encrypt(big, exponent=-40)
    with pytest.raises(OverflowError):
        sk.decrypt(total)


def test_encoding_roundtrip_ints_exact(keypair):
    pk, _ = keypair
    for v in (0, 1, -1, 2**52, -(2**52)):
        enc = EncodedNumber.encode(pk, v)
        assert enc.exponent == 0
        assert enc.decode() == v


def test_encoding_rejects_non_finite(keypair):
    pk, _ = keypair
    with pytest.raises(ValueError):
        EncodedNumber.encode(pk, float("nan"))
    with pytest.raises(ValueError):
        EncodedNumber.encode(pk, float("inf"))


def test_larger_key_roundtrip():
    pk, sk = generate_paillier_keypair(512, seed=3)
    value = 123456.789
    assert sk.decrypt(pk.encrypt(value) * 2.0 + 1.0) == pytest.approx(2 * value + 1)


# ---------------------------------------------------------------------------
# Blinding pool, gcd guard, and the exact mul-by-0/1 shortcuts.


def test_blinding_guard_skips_noninvertible_r():
    """With a contrived tiny modulus, r sharing a factor with n is common;
    every blinder must still be invertible mod n^2."""
    import random

    from repro.crypto.paillier import PaillierPublicKey

    pk = PaillierPublicKey(3 * 5, rng=random.Random(0))
    for _ in range(200):
        blinder = pk._random_blinding()
        assert math.gcd(blinder, pk.nsquare) == 1


def test_blinding_pool_prefill_and_drain(keypair):
    pk, sk = keypair
    pk.prefill_blinding(4)
    assert len(pk._blind_pool) >= 4
    enc = pk.encrypt(1.5, obfuscate=True)
    assert sk.decrypt(enc) == pytest.approx(1.5)
    # Draining past the pool falls back to fresh computation.
    factors = pk.blinding_factors(10)
    assert len(factors) == 10
    assert all(math.gcd(b, pk.nsquare) == 1 for b in factors)


def test_mul_by_exact_one_is_identity(keypair):
    """The 1.0 shortcut returns the ciphertext and exponent untouched."""
    pk, sk = keypair
    enc = pk.encrypt(-7.25)
    for one in (1, 1.0):
        prod = enc * one
        assert prod.ciphertext == enc.ciphertext
        assert prod.exponent == enc.exponent
        assert sk.decrypt(prod) == pytest.approx(-7.25)


def test_mul_by_exact_zero_is_trivial_zero(keypair):
    pk, sk = keypair
    enc = pk.encrypt(42.0)
    for zero in (0, 0.0):
        prod = enc * zero
        assert prod.ciphertext == 1  # the unobfuscated encryption of zero
        assert prod.exponent == enc.exponent
        assert sk.decrypt(prod) == 0.0


def test_mul_shortcut_exponent_bookkeeping_composes(keypair):
    """Products from the shortcuts must still align and add correctly with
    ordinary ciphertexts (the regression the shortcut could have broken)."""
    pk, sk = keypair
    a = pk.encrypt(3.5)
    b = pk.encrypt(1.25)
    combined = (a * 1.0) + (b * 0.0) + (a * 2.0)
    assert sk.decrypt(combined) == pytest.approx(3.5 + 0.0 + 7.0)
