"""Tests for the non-federated, split-learning and SecureML baselines."""

import numpy as np
import pytest

from repro.baselines.nonfed import (
    PlainDLRM,
    PlainLR,
    PlainMLP,
    PlainMLR,
    PlainWDL,
    collocated_view,
    evaluate_plain,
    party_b_view,
    plain_model_like,
    train_plain,
)
from repro.baselines.secureml import SecureMLCostModel, SecureMLMatMul, outsource
from repro.baselines.split_learning import (
    SplitLinear,
    SplitWDL,
    train_split_linear,
    train_split_wdl,
)
from repro.comm.channel import Channel
from repro.comm.message import MessageKind
from repro.core.trainer import TrainConfig
from repro.crypto.beaver import decode_ring, reconstruct_ring
from repro.data.partition import split_vertical
from repro.data.synthetic import (
    make_dense_classification,
    make_mixed_classification,
    make_sparse_classification,
)

CFG = TrainConfig(epochs=3, batch_size=16, lr=0.1, momentum=0.9, seed=0)


@pytest.fixture(scope="module")
def dense_data():
    full = make_dense_classification(300, 10, seed=30, flip=0.03)
    train, test = full.subset(np.arange(220)), full.subset(np.arange(220, 300))
    return train, test


# ---------- non-federated ----------


def test_plain_lr_trains(dense_data):
    train, test = dense_data
    model = PlainLR(10)
    hist = train_plain(model, collocated_view(train), CFG, collocated_view(test))
    assert hist.final_metric > 0.75
    assert hist.losses[-1] < hist.losses[0]


def test_collocated_beats_party_b(dense_data):
    """The premise of VFL (Figure 12): B's half alone underperforms."""
    train, test = dense_data
    vd_train, vd_test = split_vertical(train), split_vertical(test)
    collocated = train_plain(
        PlainLR(10), collocated_view(train), CFG, collocated_view(test)
    )
    b_only = train_plain(
        PlainLR(5, seed=1), party_b_view(vd_train), CFG, party_b_view(vd_test)
    )
    assert collocated.final_metric > b_only.final_metric + 0.02


def test_plain_mlr_multiclass():
    full = make_dense_classification(240, 8, n_classes=4, seed=31, flip=0.02)
    train, test = full.subset(np.arange(180)), full.subset(np.arange(180, 240))
    hist = train_plain(
        PlainMLR(8, 4), collocated_view(train), CFG, collocated_view(test)
    )
    assert hist.metric_name == "accuracy"
    assert hist.final_metric > 0.5


def test_plain_mlp_on_sparse():
    full = make_sparse_classification(200, 80, nnz_per_row=10, seed=32, flip=0.02)
    train, test = full.subset(np.arange(150)), full.subset(np.arange(150, 200))
    hist = train_plain(
        PlainMLP(80, [16], 1), collocated_view(train), CFG, collocated_view(test)
    )
    assert hist.final_metric > 0.6


def test_plain_wdl_and_dlrm_train():
    full = make_mixed_classification(
        160, sparse_dim=50, nnz_per_row=8, n_fields=4, vocab_size=10, seed=33
    )
    train, test = full.subset(np.arange(120)), full.subset(np.arange(120, 160))
    for cls in (PlainWDL, PlainDLRM):
        model = cls(50, [10, 10, 10, 10], emb_dim=4)
        hist = train_plain(model, collocated_view(train), CFG, collocated_view(test))
        assert hist.losses[-1] < hist.losses[0]


def test_plain_model_like_factory(dense_data):
    train, _ = dense_data
    view = collocated_view(train)
    assert isinstance(plain_model_like("lr", view), PlainLR)
    assert isinstance(plain_model_like("mlp", view), PlainMLP)
    with pytest.raises(ValueError):
        plain_model_like("transformer", view)


# ---------- split learning ----------


def test_split_linear_trains_and_leaks(dense_data):
    """Split LR learns — and its bottom model predicts labels (the leak)."""
    train, test = dense_data
    vd_train, vd_test = split_vertical(train), split_vertical(test)
    model = SplitLinear(5, 5, seed=0)
    record = train_split_linear(model, vd_train, vd_test, CFG)
    assert len(record.za_per_epoch) == CFG.epochs
    from repro.attacks.activation_attack import activation_attack_score

    leak_auc = activation_attack_score(record.za_per_epoch[-1], vd_test.y)
    assert leak_auc > 0.70  # Party A alone predicts the labels


def test_split_linear_plaintext_messages_on_channel(dense_data):
    train, _ = dense_data
    vd = split_vertical(train)
    ch = Channel()
    model = SplitLinear(5, 5, seed=0, channel=ch)
    batch = vd.take_rows(np.arange(16))
    logits = model.forward(
        batch.party("A").numeric_block(), batch.party("B").numeric_block()
    )
    assert logits.shape == (16, 1)
    kinds = {m.kind for m in ch.transcript}
    assert kinds == {MessageKind.PLAINTEXT}  # the defining insecurity


def test_split_model_ss_ablation_still_leaks(dense_data):
    """ModelSS without GradSS (Figure 9): sharing at init does not help."""
    train, test = dense_data
    vd_train, vd_test = split_vertical(train), split_vertical(test)
    from repro.attacks.activation_attack import activation_attack_score

    for v_scale in (1.0, 5.0, 10.0):
        model = SplitLinear(5, 5, model_ss=True, v_scale=v_scale, seed=0)
        record = train_split_linear(model, vd_train, vd_test, CFG)
        leak = activation_attack_score(record.za_per_epoch[-1], vd_test.y)
        assert leak > 0.65, f"v_scale={v_scale} should still leak"


def test_split_wdl_records_derivatives():
    full = make_mixed_classification(
        96, sparse_dim=20, nnz_per_row=5, n_fields=4, vocab_size=8, seed=34
    )
    vd = split_vertical(full)
    model = SplitWDL(
        vd.party("A").vocab_sizes, vd.party("B").vocab_sizes, emb_dim=4, n_hidden=2
    )
    record = train_split_wdl(model, vd, TrainConfig(epochs=1, batch_size=16, lr=0.1))
    assert len(record.grad_e_a) == 6
    assert record.grad_e_a[0].shape == (16, 2 * 4)


# ---------- SecureML ----------


def test_secureml_client_aided_matmul_correct(rng):
    kernel = SecureMLMatMul(rng, triple_source="client")
    x = rng.normal(size=(8, 6))
    w = rng.normal(size=(6, 2))
    x_sh = outsource(x, rng)
    w_sh = outsource(w, rng)
    z_sh = kernel.matmul(x_sh, w_sh)
    np.testing.assert_allclose(
        decode_ring(reconstruct_ring(*z_sh)), x @ w, atol=1e-3
    )
    assert kernel.online_timer.elapsed > 0


def test_secureml_crypto_matmul_correct(rng):
    kernel = SecureMLMatMul(rng, triple_source="crypto", seed=9)
    x = rng.normal(size=(3, 4))
    w = rng.normal(size=(4, 1))
    z_sh = kernel.matmul(outsource(x, rng), outsource(w, rng))
    np.testing.assert_allclose(
        decode_ring(reconstruct_ring(*z_sh)), x @ w, atol=1e-3
    )
    assert kernel.offline_timer.elapsed > 0


def test_secureml_training_iteration_shapes(rng):
    kernel = SecureMLMatMul(rng, triple_source="client")
    x_sh = outsource(rng.normal(size=(8, 5)), rng)
    w_sh = outsource(rng.normal(size=(5, 1)), rng)
    g_sh = kernel.training_iteration(x_sh, w_sh)
    assert g_sh[0].shape == (5, 1)


def test_secureml_densifies_sparse_inputs(rng):
    sparse = make_sparse_classification(20, 40, 5, seed=35).x_sparse
    shares = outsource(sparse, rng)
    assert shares[0].shape == (20, 40)  # fully dense, zeros hidden


def test_secureml_oom_guard(rng):
    sparse = make_sparse_classification(64, 200_000, 3, seed=36).x_sparse
    with pytest.raises(MemoryError, match="densify"):
        outsource(sparse, rng, dense_limit_bytes=1024 * 1024)


def test_secureml_cost_model_extrapolates(rng):
    kernel = SecureMLMatMul(rng, triple_source="crypto", seed=10)
    cost = SecureMLCostModel.calibrate(kernel, n=2, m=6, k=1)
    assert cost.measured_seconds > 0
    small = cost.predict_seconds(2, 6, 1)
    big = cost.predict_seconds(128, 10_000, 1)
    assert big > small * 1000


def test_secureml_validates_triple_source(rng):
    with pytest.raises(ValueError):
        SecureMLMatMul(rng, triple_source="magic")
    kernel = SecureMLMatMul(rng, triple_source="client")
    with pytest.raises(ValueError):
        SecureMLCostModel.calibrate(kernel)
