"""Unit tests for the number-theory primitives."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.math_utils import (
    crt_pair,
    generate_prime,
    invmod,
    is_probable_prime,
    lcm,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, (1 << 61) - 1]
KNOWN_COMPOSITES = [1, 4, 9, 15, 91, 561, 41041, 825265, (1 << 61) - 3]


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes_pass(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_fail(n):
    # 561, 41041, 825265 are Carmichael numbers - Fermat liars for all bases.
    assert not is_probable_prime(n)


def test_negative_and_zero_are_not_prime():
    assert not is_probable_prime(0)
    assert not is_probable_prime(-7)


def test_generate_prime_has_exact_bit_length():
    rng = random.Random(1)
    for bits in (16, 32, 64, 128):
        p = generate_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_generate_prime_rejects_tiny_sizes():
    with pytest.raises(ValueError):
        generate_prime(4, random.Random(0))


def test_generate_prime_is_deterministic_per_seed():
    assert generate_prime(64, random.Random(5)) == generate_prime(64, random.Random(5))


@given(st.integers(min_value=2, max_value=10**9))
@settings(max_examples=60)
def test_invmod_inverts(a):
    m = (1 << 61) - 1  # prime modulus, every nonzero residue invertible
    a %= m
    if a == 0:
        a = 1
    inv = invmod(a, m)
    assert (a * inv) % m == 1


def test_invmod_raises_when_not_coprime():
    with pytest.raises(ValueError):
        invmod(6, 9)


@given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=10**6))
@settings(max_examples=60)
def test_lcm_divisible_by_both(a, b):
    ell = lcm(a, b)
    assert ell % a == 0 and ell % b == 0
    assert ell <= a * b


def test_crt_pair_reconstructs():
    p, q = 10007, 10009
    q_inv_p = invmod(q, p)
    for value in (0, 1, 12345, p * q - 1, 99999999):
        v = value % (p * q)
        assert crt_pair(v % p, v % q, p, q, q_inv_p) == v


# ---------------------------------------------------------------------------
# Optional gmpy2 fast path: both implementations must agree, the flag must
# be loud about misconfiguration, and the pure fallback must always work.

from repro.crypto.math_utils import (  # noqa: E402  (grouped with their tests)
    gmpy2_enabled,
    have_gmpy2,
    invert,
    powmod,
    to_mpz,
    use_gmpy2,
)

_POWMOD_CASES = [
    (2, 10, 1_000_003),
    (12345678901234567890, 987654321, (1 << 127) - 1),
    (3, (1 << 61) - 1, (1 << 89) - 1),
    ((1 << 200) + 7, (1 << 100) + 3, (1 << 255) + 95),
]


def _pure_results():
    previous = use_gmpy2(False)
    try:
        pows = [powmod(b, e, m) for b, e, m in _POWMOD_CASES]
        invs = [invert(b % m, m) for b, _, m in _POWMOD_CASES]
    finally:
        use_gmpy2(previous and have_gmpy2())
    return pows, invs


def test_pure_powmod_matches_builtin_pow():
    pows, invs = _pure_results()
    assert pows == [pow(b, e, m) for b, e, m in _POWMOD_CASES]
    assert invs == [pow(b % m, -1, m) for b, _, m in _POWMOD_CASES]


@pytest.mark.skipif(not have_gmpy2(), reason="gmpy2 not installed")
def test_gmpy2_path_agrees_with_pure_python():
    pure_pows, pure_invs = _pure_results()
    previous = use_gmpy2(True)
    try:
        fast_pows = [powmod(b, e, m) for b, e, m in _POWMOD_CASES]
        fast_invs = [invert(b % m, m) for b, _, m in _POWMOD_CASES]
        assert all(isinstance(x, int) for x in fast_pows + fast_invs)
    finally:
        use_gmpy2(previous)
    assert fast_pows == pure_pows
    assert fast_invs == pure_invs


@pytest.mark.skipif(not have_gmpy2(), reason="gmpy2 not installed")
def test_gmpy2_crypto_results_bit_identical():
    """A full encrypt/decrypt cycle must not depend on the backend."""
    import numpy as np

    from repro.crypto.crypto_tensor import CryptoTensor
    from repro.crypto.paillier import generate_paillier_keypair

    arr = np.random.default_rng(0).normal(size=(3, 4))
    previous = use_gmpy2(False)
    try:
        pk, sk = generate_paillier_keypair(128, seed=55)
        pure = CryptoTensor.encrypt(pk, arr, obfuscate=True)
        pure_dec = pure.decrypt(sk)
        use_gmpy2(True)
        pk2, sk2 = generate_paillier_keypair(128, seed=55)
        fast = CryptoTensor.encrypt(pk2, arr, obfuscate=True)
        fast_dec = fast.decrypt(sk2)
    finally:
        use_gmpy2(previous)
    assert all(
        p.ciphertext == f.ciphertext
        for p, f in zip(pure.data.ravel(), fast.data.ravel())
    )
    assert (pure_dec == fast_dec).all()


def test_use_gmpy2_without_library_raises():
    if have_gmpy2():
        pytest.skip("gmpy2 is installed; enabling is legitimate here")
    with pytest.raises(RuntimeError):
        use_gmpy2(True)
    # Disabling is always fine and reports the previous state.
    assert use_gmpy2(False) in (True, False)
    assert gmpy2_enabled() is False


def test_to_mpz_is_identity_on_pure_path():
    previous = use_gmpy2(False)
    try:
        assert to_mpz(12345) == 12345
        assert isinstance(to_mpz(12345), int)
    finally:
        use_gmpy2(previous and have_gmpy2())
