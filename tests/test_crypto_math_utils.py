"""Unit tests for the number-theory primitives."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.math_utils import (
    crt_pair,
    generate_prime,
    invmod,
    is_probable_prime,
    lcm,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, (1 << 61) - 1]
KNOWN_COMPOSITES = [1, 4, 9, 15, 91, 561, 41041, 825265, (1 << 61) - 3]


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes_pass(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_fail(n):
    # 561, 41041, 825265 are Carmichael numbers - Fermat liars for all bases.
    assert not is_probable_prime(n)


def test_negative_and_zero_are_not_prime():
    assert not is_probable_prime(0)
    assert not is_probable_prime(-7)


def test_generate_prime_has_exact_bit_length():
    rng = random.Random(1)
    for bits in (16, 32, 64, 128):
        p = generate_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_generate_prime_rejects_tiny_sizes():
    with pytest.raises(ValueError):
        generate_prime(4, random.Random(0))


def test_generate_prime_is_deterministic_per_seed():
    assert generate_prime(64, random.Random(5)) == generate_prime(64, random.Random(5))


@given(st.integers(min_value=2, max_value=10**9))
@settings(max_examples=60)
def test_invmod_inverts(a):
    m = (1 << 61) - 1  # prime modulus, every nonzero residue invertible
    a %= m
    if a == 0:
        a = 1
    inv = invmod(a, m)
    assert (a * inv) % m == 1


def test_invmod_raises_when_not_coprime():
    with pytest.raises(ValueError):
        invmod(6, 9)


@given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=10**6))
@settings(max_examples=60)
def test_lcm_divisible_by_both(a, b):
    ell = lcm(a, b)
    assert ell % a == 0 and ell % b == 0
    assert ell <= a * b


def test_crt_pair_reconstructs():
    p, q = 10007, 10009
    q_inv_p = invmod(q, p)
    for value in (0, 1, 12345, p * q - 1, 99999999):
        v = value % (p * q)
        assert crt_pair(v % p, v % q, p, q, q_inv_p) == v
