"""Security-property tests: the empirical counterpart of §5.3/§6.3.

We cannot run the ideal-real simulation proof mechanically, but we can
verify its observable consequences on real protocol transcripts:

* structural invariants — every message is ciphertext / share / public;
* statistical invariants — shares on the wire are uncorrelated with the
  secrets they carry (hypothesis-driven over random instances);
* the attack suite fails against BlindFL while succeeding against split
  learning (the paper's §7.2 experiments in miniature).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.activation_attack import activation_attack_score
from repro.attacks.feature_similarity import pairwise_distance_correlation
from repro.attacks.model_attack import piece_vs_weight_stats
from repro.comm.message import MessageKind
from repro.comm.party import VFLConfig, VFLContext
from repro.core.embed_matmul_layer import EmbedMatMulSource
from repro.core.matmul_layer import MatMulSource
from repro.core.models import FederatedLR
from repro.core.optimizer import FederatedSGD
from repro.data.loader import BatchLoader
from repro.data.partition import split_vertical
from repro.data.synthetic import make_dense_classification
from repro.tensor.losses import bce_with_logits

KEY_BITS = 128


def fresh_ctx(seed=0):
    return VFLContext(VFLConfig(key_bits=KEY_BITS), seed=seed)


ALLOWED_KINDS = {MessageKind.CIPHERTEXT, MessageKind.SHARE, MessageKind.OUTPUT_SHARE,
                 MessageKind.PUBLIC}


def test_full_training_transcript_is_classified(rng):
    """Every message of a full LR training run is a permitted kind."""
    full = make_dense_classification(64, 6, seed=50)
    vd = split_vertical(full)
    ctx = fresh_ctx()
    model = FederatedLR(ctx, 3, 3)
    opt = FederatedSGD(model, lr=0.05, momentum=0.9)
    for batch in BatchLoader(vd, 16, rng=np.random.default_rng(0)):
        out = model.forward(batch, train=True)
        opt.zero_grad()
        loss = bce_with_logits(out, batch.y)
        loss.backward()
        model.backward_sources()
        opt.step()
    assert len(ctx.channel.transcript) > 20
    assert {m.kind for m in ctx.channel.transcript} <= ALLOWED_KINDS


def test_party_a_never_receives_label_dependent_plaintext(rng):
    """Everything A receives is either a ciphertext or a masked share."""
    full = make_dense_classification(48, 6, seed=51)
    vd = split_vertical(full)
    ctx = fresh_ctx()
    model = FederatedLR(ctx, 3, 3)
    opt = FederatedSGD(model, lr=0.05, momentum=0.9)
    for batch in BatchLoader(vd, 16, rng=np.random.default_rng(0)):
        out = model.forward(batch, train=True)
        opt.zero_grad()
        loss = bce_with_logits(out, batch.y)
        loss.backward()
        model.backward_sources()
        opt.step()
    from repro.crypto.crypto_tensor import CryptoTensor

    for msg in ctx.channel.view_of("A"):
        assert isinstance(msg.payload, (CryptoTensor, np.ndarray))
        if isinstance(msg.payload, np.ndarray):
            # Only masked shares reach A as arrays; they must dwarf any
            # data-scale values (masks are >= 2^16 scaled).
            assert msg.kind in (MessageKind.SHARE, MessageKind.OUTPUT_SHARE,
                                MessageKind.PUBLIC)


def test_wire_share_uncorrelated_with_activation(rng):
    """The X_A V_A - eps share B receives carries no X_A W_A signal."""
    ctx = fresh_ctx(seed=3)
    layer = MatMulSource(ctx, 8, 4, 1, name="sec")
    w = layer.reveal_weights()
    x_a = rng.normal(size=(64, 8))
    x_b = rng.normal(size=(64, 4))
    layer.forward(x_a, x_b)
    za = (x_a @ w["W_A"]).ravel()
    # B's received share of A's contribution is the decrypted HE2SS output;
    # reproduce B's view: the only array message for B is Z'_A.
    arrays = [
        m.payload
        for m in ctx.channel.view_of("B")
        if isinstance(m.payload, np.ndarray)
    ]
    assert arrays, "B received output shares"
    for arr in arrays:
        corr = np.corrcoef(arr.ravel(), za)[0, 1]
        assert abs(corr) < 0.25


def test_b_cannot_rank_feature_similarity_from_its_view(rng):
    """Req 2, empirically: B's received arrays carry no X_A structure."""
    ctx = fresh_ctx(seed=4)
    layer = MatMulSource(ctx, 10, 4, 2, name="sim")
    x_a = rng.normal(size=(40, 10))
    x_b = rng.normal(size=(40, 4))
    layer.forward(x_a, x_b)
    for msg in ctx.channel.view_of("B"):
        if isinstance(msg.payload, np.ndarray) and msg.payload.shape[0] == 40:
            corr = pairwise_distance_correlation(x_a, msg.payload)
            assert abs(corr) < 0.2


def test_activation_attack_fails_against_blindfl(rng):
    """Figure 9's BlindFL curve: X_A U_A is a coin flip on the labels."""
    full = make_dense_classification(160, 24, seed=52, flip=0.02, nonlinear=False)
    vd = split_vertical(full)
    ctx = fresh_ctx(seed=5)
    model = FederatedLR(ctx, 12, 12)
    opt = FederatedSGD(model, lr=0.1, momentum=0.9)
    for _ in range(2):
        for batch in BatchLoader(vd, 16, rng=np.random.default_rng(1)):
            out = model.forward(batch, train=True)
            opt.zero_grad()
            loss = bce_with_logits(out, batch.y)
            loss.backward()
            model.backward_sources()
            opt.step()
    x_a_all = vd.party("A").x_dense
    za_attack = x_a_all @ model.source._a.u  # all A can compute alone
    score = activation_attack_score(za_attack, vd.y)
    # Sanity: the full federated model *does* fit the labels.
    w = model.source.reveal_weights()
    z_full = x_a_all @ w["W_A"] + vd.party("B").x_dense @ w["W_B"]
    full_score = activation_attack_score(z_full, vd.y)
    assert full_score > 0.8
    assert abs(score - 0.5) < 0.17  # chance level (U_A is a random walk)
    assert score < full_score - 0.25  # far from the real model's skill


def test_model_pieces_leak_nothing_after_training(rng):
    """Figure 11's property on a trained layer: pieces >> weights, corr ~ 0."""
    ctx = fresh_ctx(seed=6)
    layer = MatMulSource(ctx, 12, 6, 1, name="f11")
    for step in range(8):
        x_a = rng.normal(size=(16, 12))
        x_b = rng.normal(size=(16, 6))
        layer.forward(x_a, x_b)
        layer.backward(rng.normal(size=(16, 1)) * 0.05)
        layer.apply_updates(lr=0.05, momentum=0.9)
    w = layer.reveal_weights()
    stats = piece_vs_weight_stats(layer.piece_views()["A.U_A"], w["W_A"])
    assert stats.magnitude_ratio > 3
    assert not stats.leaks(corr_tol=0.5, sign_tol=0.35)


def test_embed_layer_transcript_classified(rng):
    ctx = fresh_ctx(seed=7)
    layer = EmbedMatMulSource(ctx, [6], [5], emb_dim=2, out_dim=1, name="esec")
    x_a = rng.integers(0, 6, size=(4, 1))
    x_b = rng.integers(0, 5, size=(4, 1))
    layer.forward(x_a, x_b)
    layer.backward(rng.normal(size=(4, 1)))
    layer.apply_updates(lr=0.05, momentum=0.9)
    assert {m.kind for m in ctx.channel.transcript} <= ALLOWED_KINDS


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=3))
@settings(max_examples=6, deadline=None)
def test_matmul_lossless_property(batch, out_dim):
    """Property: forward is lossless for random shapes and inputs."""
    rng = np.random.default_rng(batch * 10 + out_dim)
    ctx = fresh_ctx(seed=batch * 7 + out_dim)
    layer = MatMulSource(ctx, 3, 2, out_dim, name="prop")
    w = layer.reveal_weights()
    x_a = rng.normal(size=(batch, 3))
    x_b = rng.normal(size=(batch, 2))
    z = layer.forward(x_a, x_b)
    np.testing.assert_allclose(z, x_a @ w["W_A"] + x_b @ w["W_B"], atol=1e-4)


def _packed_step_headers(seed, data_scale, sparsity_mask, key_bits=256):
    """Wire headers of every message in one packed MatMul training step.

    The header is everything :func:`repro.comm.codec.split_payload` returns
    before the ciphertext body — key modulus, slot layout, ``seg_cols``,
    shapes, exponents, ``value_bits``.  ``data_scale`` and ``sparsity_mask``
    vary the *private* operands between runs; headers must not notice.
    """
    from repro.comm import codec

    ctx = VFLContext(
        VFLConfig(key_bits=key_bits, packing=True, channel="serializing"),
        seed=seed,
    )
    layer = MatMulSource(ctx, 4, 3, 2, name="wl")
    rng = np.random.default_rng(77)
    x_a = rng.normal(size=(5, 4)) * data_scale
    x_a *= sparsity_mask
    x_b = rng.normal(size=(5, 3)) * data_scale
    layer.forward(x_a, x_b)
    layer.backward(rng.normal(size=(5, 2)) * 0.01 * data_scale)
    layer.apply_updates(lr=0.05, momentum=0.9)
    headers = []
    for msg in ctx.channel.transcript:
        blob = codec.encode_payload(msg.payload)
        code, header, _body = codec.split_payload(blob)
        headers.append((msg.tag, msg.kind.value, code, header))
    return headers


def test_packed_wire_headers_carry_only_layout_constants():
    """Serialized packed headers are byte-equal across private inputs.

    Two training steps with different feature magnitudes and a different
    sparsity pattern must produce byte-identical wire *headers* at every
    transcript position: the packed metadata (slot layout, ``seg_cols``,
    ``value_bits``, exponents, shapes) is canonicalised to public layout
    constants, so the only thing that varies on the wire is ciphertext
    bodies and masked share values — exactly what the unpacked protocol
    reveals.  A data-dependent ``value_bits`` (derived from private
    magnitudes or per-row fan-in) would fail this byte-for-byte check.
    """
    mask_dense = np.ones((5, 4))
    mask_sparse = np.ones((5, 4))
    mask_sparse[1:4, 1:3] = 0.0  # different sparsity pattern
    run1 = _packed_step_headers(seed=8, data_scale=0.05, sparsity_mask=mask_dense)
    run2 = _packed_step_headers(seed=8, data_scale=4.0, sparsity_mask=mask_sparse)
    assert len(run1) == len(run2)
    saw_packed = False
    from repro.comm import codec

    for (tag1, kind1, code1, header1), (tag2, kind2, code2, header2) in zip(
        run1, run2
    ):
        assert (tag1, kind1, code1) == (tag2, kind2, code2)
        assert header1 == header2, (
            f"wire header for {tag1!r} depends on private operands"
        )
        saw_packed = saw_packed or code1 == codec.T_PACKED_TENSOR
    assert saw_packed, "scenario never exercised a packed payload"


@given(st.integers(min_value=2, max_value=6))
@settings(max_examples=5, deadline=None)
def test_embed_lossless_property(vocab):
    rng = np.random.default_rng(vocab)
    ctx = fresh_ctx(seed=vocab)
    layer = EmbedMatMulSource(ctx, [vocab], [vocab], emb_dim=2, out_dim=1, name="eprop")
    w = layer.reveal_weights()
    x_a = rng.integers(0, vocab, size=(3, 1))
    x_b = rng.integers(0, vocab, size=(3, 1))
    z = layer.forward(x_a, x_b)
    e_a = w["Q_A"][x_a.ravel()].reshape(3, -1)
    e_b = w["Q_B"][x_b.ravel()].reshape(3, -1)
    np.testing.assert_allclose(z, e_a @ w["W_A"] + e_b @ w["W_B"], atol=1e-4)


# ---------------------------------------------------------------------------
# Key custody: private-key material must be unable to leave its process.
#
# These runtime refusals are complemented statically by rule BF001 in
# repro.analysis (gated in tests/test_analysis.py): the linter flags any
# *source-level* flow of PaillierPrivateKey / crt_params / (p, q) into
# Channel.send, codec encode_*, pickle, checkpoint writers, or
# multiprocessing args — including paths no test executes.


def test_codec_refuses_private_key():
    """There is deliberately no wire format for (p, q): encoding a private
    key — the catastrophic leak of the whole trust model — fails loudly."""
    from repro.comm import codec

    ctx = fresh_ctx(seed=60)
    with pytest.raises(codec.UnsupportedWireType, match="private-key material"):
        codec.encode_payload(ctx.B.private_key)


def test_codec_refuses_private_key_carriers():
    """Any object exposing a private key (e.g. a whole Party) is refused
    with the custody error, not the generic unknown-type one."""
    from repro.comm import codec

    ctx = fresh_ctx(seed=61)
    with pytest.raises(codec.UnsupportedWireType, match="key owner's"):
        codec.encode_payload(ctx.A)


def test_channel_send_refuses_private_key():
    """A private key cannot cross even an in-process serializing channel."""
    from repro.comm import codec

    cfg = VFLConfig(key_bits=KEY_BITS, channel="serializing")
    ctx = VFLContext(cfg, seed=62)
    with pytest.raises(codec.UnsupportedWireType):
        ctx.channel.send("A", "B", "leak", ctx.A.private_key, MessageKind.PUBLIC)


def test_private_key_is_unpicklable():
    """Pickle (multiprocessing tasks, caches, copies) refuses private keys;
    the sanctioned escape hatch is crt_params into a pool initializer."""
    import pickle

    ctx = fresh_ctx(seed=63)
    with pytest.raises(TypeError, match="custody|unpicklable"):
        pickle.dumps(ctx.B.private_key)
    # The public key ships fine — that is the one key material peers need.
    from repro.comm import codec

    assert codec.decode_payload(codec.encode_payload(ctx.B.public_key)) is not None
