"""Tests for the privacy-attack implementations (§7.2).

These check the attacks themselves (they must work where the paper says
they work) AND the defenses (they must fail against BlindFL's protocols).
"""

import numpy as np
import pytest

from repro.attacks.activation_attack import activation_attack_score
from repro.attacks.derivative_attack import (
    attack_accuracy_over_batches,
    cosine_direction_attack,
)
from repro.attacks.feature_similarity import pairwise_distance_correlation
from repro.attacks.model_attack import piece_vs_weight_stats


# ---------- activation attack ----------


def test_activation_attack_detects_informative_logits(rng):
    y = rng.integers(0, 2, size=400)
    logits = (2.0 * y - 1.0) + rng.normal(0, 0.5, size=400)
    assert activation_attack_score(logits, y) > 0.9


def test_activation_attack_random_logits_are_chance(rng):
    y = rng.integers(0, 2, size=400)
    logits = rng.normal(size=400)
    assert abs(activation_attack_score(logits, y) - 0.5) < 0.1


def test_activation_attack_multiclass(rng):
    y = rng.integers(0, 3, size=300)
    logits = np.eye(3)[y] * 2.0 + rng.normal(0, 0.3, size=(300, 3))
    assert activation_attack_score(logits, y, n_classes=3) > 0.9
    with pytest.raises(ValueError):
        activation_attack_score(np.zeros((10, 2)), y[:10], n_classes=3)


# ---------- derivative attack ----------


def test_cosine_attack_recovers_opposite_directions(rng):
    """Binary logistic derivatives: positives vs negatives anti-align."""
    direction = rng.normal(size=12)
    y = rng.integers(0, 2, size=64)
    sign = 2.0 * y - 1.0
    grads = sign[:, None] * direction[None, :] * rng.uniform(0.5, 1.5, (64, 1))
    grads += rng.normal(0, 0.05, size=grads.shape)
    clusters = cosine_direction_attack(grads)
    acc = max((clusters == y).mean(), (clusters != y).mean())
    assert acc > 0.95


def test_cosine_attack_over_batches(rng):
    direction = rng.normal(size=8)
    grads, labels = [], []
    for _ in range(5):
        y = rng.integers(0, 2, size=32)
        g = (2.0 * y - 1.0)[:, None] * direction[None, :]
        g += rng.normal(0, 0.02, size=g.shape)
        grads.append(g)
        labels.append(y)
    assert attack_accuracy_over_batches(grads, labels) > 0.97


def test_cosine_attack_on_noise_is_chance(rng):
    grads = [rng.normal(size=(40, 8)) for _ in range(4)]
    labels = [rng.integers(0, 2, size=40) for _ in range(4)]
    acc = attack_accuracy_over_batches(grads, labels)
    assert acc < 0.75  # max(acc, 1-acc) on noise stays near 0.5-0.65


def test_cosine_attack_input_validation(rng):
    with pytest.raises(ValueError):
        cosine_direction_attack(np.zeros(5))
    with pytest.raises(ValueError):
        attack_accuracy_over_batches([], [])
    assert not cosine_direction_attack(np.zeros((4, 3))).any()


# ---------- model piece analysis ----------


def test_piece_stats_detect_leak(rng):
    w = rng.normal(size=500)
    leaky_piece = w + rng.normal(0, 0.1, size=500)  # almost the weights
    stats = piece_vs_weight_stats(leaky_piece, w)
    assert stats.leaks()
    assert stats.correlation > 0.9
    assert stats.sign_agreement > 0.9


def test_piece_stats_no_leak_for_random_pieces(rng):
    w = rng.normal(size=500) * 0.05
    piece = rng.uniform(-50, 50, size=500)
    stats = piece_vs_weight_stats(piece, w)
    assert not stats.leaks()
    assert stats.magnitude_ratio > 100
    assert abs(stats.sign_agreement - 0.5) < 0.1


def test_piece_stats_validation(rng):
    with pytest.raises(ValueError):
        piece_vs_weight_stats(np.ones(3), np.ones(4))
    with pytest.raises(ValueError):
        piece_vs_weight_stats(np.ones(1), np.ones(1))
    stats = piece_vs_weight_stats(np.zeros(10), np.zeros(10))
    assert stats.correlation == 0.0


# ---------- feature similarity ----------


def test_similarity_attack_on_linear_transform(rng):
    """X_A W_A preserves distance structure -> high correlation (the leak)."""
    x = rng.normal(size=(40, 10))
    w = rng.normal(size=(10, 8))
    corr = pairwise_distance_correlation(x, x @ w)
    # A random projection preserves most of the distance structure; the
    # contrast with the masked-share case below is the point.
    assert corr > 0.45


def test_similarity_attack_on_masked_share(rng):
    """A masked share (BlindFL's Z'_A) carries no distance structure."""
    x = rng.normal(size=(40, 10))
    observed = x @ rng.normal(size=(10, 6)) + rng.uniform(-1000, 1000, (40, 6))
    corr = pairwise_distance_correlation(x, observed)
    assert abs(corr) < 0.2


def test_similarity_validation(rng):
    with pytest.raises(ValueError):
        pairwise_distance_correlation(np.ones((3, 2)), np.ones((4, 2)))
    with pytest.raises(ValueError):
        pairwise_distance_correlation(np.ones((2, 2)), np.ones((2, 2)))
    assert pairwise_distance_correlation(np.ones((5, 2)), np.ones((5, 2))) == 0.0
