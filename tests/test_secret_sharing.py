"""Tests for additive sharing and the HE2SS / SS2HE conversions."""

import numpy as np
import pytest

from repro.comm.message import MessageKind
from repro.crypto.crypto_tensor import CryptoTensor
from repro.crypto.secret_sharing import (
    additive_share,
    he2ss_receive,
    he2ss_split,
    reconstruct,
    ss2he_combine,
    ss2he_send,
)


def test_additive_share_reconstructs(rng):
    values = rng.normal(size=(4, 3))
    a, b = additive_share(values, rng, scale=1000.0)
    np.testing.assert_allclose(reconstruct(a, b), values, atol=1e-9)


def test_additive_share_pieces_hide_values(rng):
    """Each piece alone is uncorrelated with the secret."""
    values = np.ones((2000,))
    a, b = additive_share(values, rng, scale=1000.0)
    # piece magnitudes dwarf the secret and correlation with it is ~0
    assert np.abs(a).mean() > 100
    corr = np.corrcoef(a, values + rng.normal(size=2000))[0, 1]
    assert abs(corr) < 0.1


def test_additive_share_rejects_bad_scale(rng):
    with pytest.raises(ValueError):
        additive_share(np.ones(3), rng, scale=0.0)


def test_he2ss_roundtrip(ctx):
    """Algorithm 1: [[v]] at A (under B's key) -> shares summing to v."""
    a, b, channel = ctx.A, ctx.B, ctx.channel
    values = a.rng.normal(size=(3, 2))
    ct = CryptoTensor.encrypt(b.public_key, values)  # [[v]]_B held by A
    phi = he2ss_split(ct, a, "B", channel, tag="t", mask_scale=2.0**16)
    other = he2ss_receive(b, channel, tag="t")
    np.testing.assert_allclose(phi + other, values, atol=1e-6)


def test_he2ss_message_is_ciphertext_kind(ctx):
    a, b, channel = ctx.A, ctx.B, ctx.channel
    ct = CryptoTensor.encrypt(b.public_key, np.ones((2, 2)))
    he2ss_split(ct, a, "B", channel, tag="t", mask_scale=2.0**16)
    assert channel.transcript[-1].kind is MessageKind.CIPHERTEXT
    he2ss_receive(b, channel, tag="t")


def test_he2ss_rerandomises_ciphertexts(ctx):
    """The wire ciphertexts must differ from the held ones (fresh blinding)."""
    a, b, channel = ctx.A, ctx.B, ctx.channel
    ct = CryptoTensor.encrypt(b.public_key, np.ones((2, 2)), obfuscate=False)
    he2ss_split(ct, a, "B", channel, tag="t", mask_scale=2.0**16)
    wire = channel.transcript[-1].payload
    held = {c.ciphertext for c in ct.data.ravel()}
    assert all(c.ciphertext not in held for c in wire.data.ravel())
    he2ss_receive(b, channel, tag="t")


def test_he2ss_wrong_key_rejected(ctx):
    a = ctx.A
    ct = CryptoTensor.encrypt(a.public_key, np.ones(2))  # own key: invalid
    with pytest.raises(ValueError):
        he2ss_split(ct, a, "B", ctx.channel, tag="t", mask_scale=1.0)


def test_ss2he_roundtrip(ctx):
    """Algorithm 2: shares <v_a, v_b> -> [[v]] under the peer's key."""
    a, b, channel = ctx.A, ctx.B, ctx.channel
    values = a.rng.normal(size=(2, 3))
    piece_a, piece_b = additive_share(values, a.rng, scale=100.0)
    # Both parties send their encrypted piece; each combines with its own.
    ss2he_send(piece_a, a, "B", channel, tag="s")
    ss2he_send(piece_b, b, "A", channel, tag="s")
    ct_at_a = ss2he_combine(piece_a, a, channel, tag="s")  # under B's key
    ct_at_b = ss2he_combine(piece_b, b, channel, tag="s")  # under A's key
    np.testing.assert_allclose(ct_at_a.decrypt(b.private_key), values, atol=1e-6)
    np.testing.assert_allclose(ct_at_b.decrypt(a.private_key), values, atol=1e-6)


def test_ss2he_then_he2ss_composes(ctx):
    """SS -> HE -> SS keeps the secret intact (used in Appendix B tops)."""
    a, b, channel = ctx.A, ctx.B, ctx.channel
    values = b.rng.normal(size=(2, 2))
    piece_a, piece_b = additive_share(values, b.rng, scale=50.0)
    ss2he_send(piece_b, b, "A", channel, tag="x")
    ct_at_a = ss2he_combine(piece_a, a, channel, tag="x")  # [[v]]_B at A
    phi = he2ss_split(ct_at_a, a, "B", channel, tag="y", mask_scale=2.0**16)
    rest = he2ss_receive(b, channel, tag="y")
    np.testing.assert_allclose(phi + rest, values, atol=1e-5)
