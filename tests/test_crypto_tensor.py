"""Tests for the CryptoTensor vectorised encrypted-tensor abstraction."""

import numpy as np
import pytest

from repro.crypto.crypto_tensor import CryptoTensor


@pytest.fixture()
def pk_sk(keypair):
    return keypair


def test_encrypt_decrypt_roundtrip_matrix(pk_sk, rng):
    pk, sk = pk_sk
    arr = rng.normal(size=(3, 4))
    np.testing.assert_allclose(CryptoTensor.encrypt(pk, arr).decrypt(sk), arr, atol=1e-9)


def test_encrypt_decrypt_roundtrip_vector(pk_sk, rng):
    pk, sk = pk_sk
    arr = rng.normal(size=5)
    np.testing.assert_allclose(CryptoTensor.encrypt(pk, arr).decrypt(sk), arr, atol=1e-9)


def test_zeros_decrypt_to_zero(pk_sk):
    pk, sk = pk_sk
    np.testing.assert_array_equal(CryptoTensor.zeros(pk, (2, 3)).decrypt(sk), 0.0)


def test_elementwise_add_cipher_cipher(pk_sk, rng):
    pk, sk = pk_sk
    a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
    out = CryptoTensor.encrypt(pk, a) + CryptoTensor.encrypt(pk, b)
    np.testing.assert_allclose(out.decrypt(sk), a + b, atol=1e-9)


def test_elementwise_add_cipher_plain(pk_sk, rng):
    pk, sk = pk_sk
    a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
    np.testing.assert_allclose(
        (CryptoTensor.encrypt(pk, a) + b).decrypt(sk), a + b, atol=1e-9
    )
    np.testing.assert_allclose(
        (b + CryptoTensor.encrypt(pk, a)).decrypt(sk), a + b, atol=1e-9
    )


def test_elementwise_sub_and_neg(pk_sk, rng):
    pk, sk = pk_sk
    a, b = rng.normal(size=(2, 2)), rng.normal(size=(2, 2))
    enc = CryptoTensor.encrypt(pk, a)
    np.testing.assert_allclose((enc - b).decrypt(sk), a - b, atol=1e-9)
    np.testing.assert_allclose((b - enc).decrypt(sk), b - a, atol=1e-9)
    np.testing.assert_allclose((-enc).decrypt(sk), -a, atol=1e-9)


def test_scalar_and_array_multiplication(pk_sk, rng):
    pk, sk = pk_sk
    a = rng.normal(size=(2, 3))
    w = rng.normal(size=(2, 3))
    enc = CryptoTensor.encrypt(pk, a)
    np.testing.assert_allclose((enc * 2.5).decrypt(sk), 2.5 * a, atol=1e-8)
    np.testing.assert_allclose((w * enc).decrypt(sk), w * a, atol=1e-8)


def test_cipher_by_cipher_multiplication_rejected(pk_sk, rng):
    pk, _ = pk_sk
    enc = CryptoTensor.encrypt(pk, rng.normal(size=(2, 2)))
    with pytest.raises(TypeError):
        enc * enc


def test_shape_mismatch_rejected(pk_sk, rng):
    pk, _ = pk_sk
    enc = CryptoTensor.encrypt(pk, rng.normal(size=(2, 2)))
    with pytest.raises(ValueError):
        enc + rng.normal(size=(3, 2))


def test_plain_matmul_cipher(pk_sk, rng):
    pk, sk = pk_sk
    x = rng.normal(size=(4, 3))
    v = rng.normal(size=(3, 2))
    out = x @ CryptoTensor.encrypt(pk, v)
    np.testing.assert_allclose(out.decrypt(sk), x @ v, atol=1e-7)


def test_plain_matmul_cipher_skips_zeros(pk_sk, rng):
    """Zero plaintext entries must not perturb the result (and are skipped)."""
    pk, sk = pk_sk
    x = rng.normal(size=(4, 6))
    x[x < 0.5] = 0.0  # heavily sparse
    v = rng.normal(size=(6, 2))
    out = x @ CryptoTensor.encrypt(pk, v)
    np.testing.assert_allclose(out.decrypt(sk), x @ v, atol=1e-7)


def test_cipher_matmul_plain(pk_sk, rng):
    pk, sk = pk_sk
    g = rng.normal(size=(4, 2))
    u = rng.normal(size=(2, 5))
    out = CryptoTensor.encrypt(pk, g) @ u
    np.testing.assert_allclose(out.decrypt(sk), g @ u, atol=1e-7)


def test_matmul_shape_mismatch(pk_sk, rng):
    pk, _ = pk_sk
    enc = CryptoTensor.encrypt(pk, rng.normal(size=(3, 2)))
    with pytest.raises(ValueError):
        rng.normal(size=(4, 5)) @ enc


def test_transpose_and_reshape(pk_sk, rng):
    pk, sk = pk_sk
    a = rng.normal(size=(2, 3))
    enc = CryptoTensor.encrypt(pk, a)
    np.testing.assert_allclose(enc.T.decrypt(sk), a.T, atol=1e-9)
    np.testing.assert_allclose(enc.reshape(3, 2).decrypt(sk), a.reshape(3, 2), atol=1e-9)


def test_take_rows_is_encrypted_lookup(pk_sk, rng):
    pk, sk = pk_sk
    table = rng.normal(size=(6, 3))
    idx = np.array([4, 0, 4, 2])
    out = CryptoTensor.encrypt(pk, table).take_rows(idx)
    np.testing.assert_allclose(out.decrypt(sk), table[idx], atol=1e-9)


def test_scatter_add_rows_is_encrypted_lkup_bw(pk_sk, rng):
    pk, sk = pk_sk
    grads = rng.normal(size=(5, 2))
    idx = np.array([1, 3, 1, 0, 3])
    out = CryptoTensor.encrypt(pk, grads).scatter_add_rows(idx, num_rows=4)
    expected = np.zeros((4, 2))
    np.add.at(expected, idx, grads)
    np.testing.assert_allclose(out.decrypt(sk), expected, atol=1e-8)


def test_scatter_add_rejects_out_of_range(pk_sk, rng):
    pk, _ = pk_sk
    enc = CryptoTensor.encrypt(pk, rng.normal(size=(2, 2)))
    with pytest.raises(IndexError):
        enc.scatter_add_rows(np.array([0, 5]), num_rows=3)


def test_vstack_hstack(pk_sk, rng):
    pk, sk = pk_sk
    a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
    ea, eb = CryptoTensor.encrypt(pk, a), CryptoTensor.encrypt(pk, b)
    np.testing.assert_allclose(
        CryptoTensor.vstack([ea, eb]).decrypt(sk), np.vstack([a, b]), atol=1e-9
    )
    np.testing.assert_allclose(
        CryptoTensor.hstack([ea, eb]).decrypt(sk), np.hstack([a, b]), atol=1e-9
    )


def test_obfuscate_preserves_values(pk_sk, rng):
    pk, sk = pk_sk
    a = rng.normal(size=(2, 2))
    enc = CryptoTensor.encrypt(pk, a, obfuscate=False)
    blinded = enc.obfuscate()
    assert all(
        x.ciphertext != y.ciphertext
        for x, y in zip(enc.data.ravel(), blinded.data.ravel())
    )
    np.testing.assert_allclose(blinded.decrypt(sk), a, atol=1e-9)


def test_sparse_matmul_matches_dense(pk_sk, rng):
    """CSR @ cipher must equal dense @ cipher (nnz-proportional path)."""
    from repro.tensor.sparse import CSRMatrix

    pk, sk = pk_sk
    dense = rng.normal(size=(3, 8))
    dense[rng.random(dense.shape) < 0.7] = 0.0
    sparse = CSRMatrix.from_dense(dense)
    v = rng.normal(size=(8, 2))
    enc_v = CryptoTensor.encrypt(pk, v)
    np.testing.assert_allclose(
        (sparse @ enc_v).decrypt(sk), dense @ v, atol=1e-7
    )
