"""Seeded protocol transcripts for the golden conformance tests.

Each scenario runs one training step (forward + backward + update) of a
source layer on fixed seeds and summarises every transcript message with
:func:`repro.comm.codec.message_summary` — tags, kinds, sender/receiver
order, frame sizes and payload headers (shapes, exponents, slot layouts),
but never ciphertext bytes, so the records are reproducible across
machines while still pinning everything a refactor could silently change
about the wire protocol.

Regenerate the checked-in golden file after an *intentional* protocol
change::

    PYTHONPATH=src python tests/golden_transcript.py

and review the diff of ``tests/data/protocol_golden.json`` like any other
protocol-design decision.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.comm.codec import message_summary
from repro.comm.party import VFLConfig, VFLContext
from repro.core.embed_matmul_layer import EmbedMatMulSource
from repro.core.matmul_layer import MatMulSource
from repro.core.multiparty import MultiPartyMatMulSource

GOLDEN_PATH = Path(__file__).parent / "data" / "protocol_golden.json"


def _matmul_step(key_bits: int, packing: bool, share_refresh: str) -> VFLContext:
    cfg = VFLConfig(
        key_bits=key_bits,
        packing=packing,
        share_refresh=share_refresh,
        channel="serializing",
    )
    ctx = VFLContext(cfg, seed=123)
    layer = MatMulSource(ctx, in_a=4, in_b=3, out_dim=2, name="g")
    rng = np.random.default_rng(9)
    layer.forward(rng.normal(size=(3, 4)), rng.normal(size=(3, 3)))
    layer.backward(rng.normal(size=(3, 2)) * 0.1)
    layer.apply_updates(lr=0.05, momentum=0.9)
    return ctx


def _embed_step(key_bits: int, packing: bool, share_refresh: str) -> VFLContext:
    cfg = VFLConfig(
        key_bits=key_bits,
        packing=packing,
        share_refresh=share_refresh,
        channel="serializing",
    )
    ctx = VFLContext(cfg, seed=321)
    layer = EmbedMatMulSource(
        ctx, vocab_a=[4, 3], vocab_b=[5], emb_dim=2, out_dim=1, name="ge"
    )
    rng = np.random.default_rng(11)
    x_a = rng.integers(0, [4, 3], size=(3, 2))
    x_b = rng.integers(0, 5, size=(3, 1))
    layer.forward(x_a, x_b)
    layer.backward(rng.normal(size=(3, 1)) * 0.1)
    layer.apply_updates(lr=0.05, momentum=0.9)
    return ctx


def _multiparty_step(key_bits: int) -> VFLContext:
    """One step of the Appendix C layer — the non-mirrored fabric protocol.

    Recorded all-local on the serializing tier, which produces the exact
    per-(sender, receiver) message schedule every fabric endpoint must
    reproduce: a fabric run's transcripts are compared against this
    golden *per pair* (cross-sender arrival order at the key owner is
    scheduling-dependent; per-pair FIFO order is part of the protocol).
    """
    cfg = VFLConfig(key_bits=key_bits, channel="serializing")
    ctx = VFLContext(cfg, seed=77, n_a_parties=2)
    layer = MultiPartyMatMulSource(
        ctx, {"A1": 3, "A2": 2}, in_b=2, out_dim=2, name="gm"
    )
    rng = np.random.default_rng(13)
    x = {
        "A1": rng.normal(size=(3, 3)),
        "A2": rng.normal(size=(3, 2)),
        "B": rng.normal(size=(3, 2)),
    }
    layer.forward(x)
    layer.backward(rng.normal(size=(3, 2)) * 0.1)
    layer.apply_updates(lr=0.05, momentum=0.9)
    return ctx


# Packed scenarios need a key that fits at least two product slots
# (protocol_layout falls back to per-element below ~224 bits).
SCENARIOS = {
    "matmul": lambda: _matmul_step(128, packing=False, share_refresh="reencrypt"),
    "matmul_packed": lambda: _matmul_step(256, packing=True, share_refresh="reencrypt"),
    "embed": lambda: _embed_step(128, packing=False, share_refresh="reencrypt"),
    "embed_packed": lambda: _embed_step(256, packing=True, share_refresh="reencrypt"),
    "embed_delta": lambda: _embed_step(128, packing=False, share_refresh="delta"),
    "multiparty": lambda: _multiparty_step(128),
}


def build_transcript(scenario: str) -> list[dict]:
    """The conformance records of one seeded scenario's full transcript."""
    ctx = SCENARIOS[scenario]()
    return [message_summary(msg) for msg in ctx.channel.transcript]


def build_all() -> dict[str, list[dict]]:
    return {name: build_transcript(name) for name in SCENARIOS}


def regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(build_all(), indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    regenerate()
