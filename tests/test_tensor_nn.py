"""Tests for nn modules, losses, optimizers, functional ops and CSR."""

import numpy as np
import pytest

from repro.tensor.functional import embedding, linear, sparse_linear
from repro.tensor.losses import bce_with_logits, mse, softmax_cross_entropy
from repro.tensor.nn import Bias, Embedding, Linear, ReLU, Sequential, mlp
from repro.tensor.optim import SGD, Adam
from repro.tensor.sparse import CSRMatrix
from repro.tensor.tensor import Tensor


# ---------- nn modules ----------


def test_linear_forward_shape(rng):
    layer = Linear(4, 3, rng=rng)
    out = layer(Tensor(rng.normal(size=(5, 4))))
    assert out.shape == (5, 3)


def test_linear_parameters_discovered(rng):
    layer = Linear(4, 3, rng=rng)
    params = list(layer.parameters())
    assert len(params) == 2  # weight + bias


def test_linear_without_bias(rng):
    layer = Linear(4, 3, bias=False, rng=rng)
    assert len(list(layer.parameters())) == 1


def test_sequential_collects_nested_params(rng):
    net = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    assert len(list(net.parameters())) == 4
    assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2


def test_mlp_builder(rng):
    net = mlp([6, 4, 2], rng=rng)
    out = net(Tensor(rng.normal(size=(3, 6))))
    assert out.shape == (3, 2)
    assert len(net) == 3  # Linear, ReLU, Linear


def test_train_eval_mode_propagates(rng):
    net = Sequential(Linear(2, 2, rng=rng), ReLU())
    net.eval()
    assert not net.training and not net.layers[0].training
    net.train()
    assert net.training and net.layers[0].training


def test_bias_module():
    b = Bias(3)
    out = b(Tensor(np.zeros((2, 3))))
    assert out.shape == (2, 3)
    assert len(list(b.parameters())) == 1


def test_embedding_module(rng):
    emb = Embedding(10, 4, rng=rng)
    out = emb(np.array([[1, 2], [3, 4]]))
    assert out.shape == (2, 2, 4)


# ---------- functional ----------


def test_linear_functional_grad(rng):
    x = rng.normal(size=(5, 3))
    w = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
    out = linear(x, w)
    out.sum().backward()
    np.testing.assert_allclose(w.grad, x.T @ np.ones((5, 2)), atol=1e-9)


def test_sparse_linear_matches_dense(rng):
    dense = rng.normal(size=(6, 8))
    dense[rng.random(dense.shape) < 0.6] = 0
    csr = CSRMatrix.from_dense(dense)
    w_dense = Tensor(rng.normal(size=(8, 3)), requires_grad=True)
    w_sparse = Tensor(w_dense.data.copy(), requires_grad=True)
    out_d = linear(dense, w_dense)
    out_s = sparse_linear(csr, w_sparse)
    np.testing.assert_allclose(out_s.data, out_d.data, atol=1e-9)
    out_d.sum().backward()
    out_s.sum().backward()
    np.testing.assert_allclose(w_sparse.grad, w_dense.grad, atol=1e-9)


def test_embedding_grad_scatter(rng):
    table = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
    idx = np.array([0, 2, 2, 4])
    out = embedding(table, idx)
    out.sum().backward()
    expected = np.zeros((5, 3))
    np.add.at(expected, idx, np.ones((4, 3)))
    np.testing.assert_allclose(table.grad, expected)


def test_embedding_rejects_bad_index(rng):
    table = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
    with pytest.raises(IndexError):
        embedding(table, np.array([7]))


# ---------- losses ----------


def test_bce_matches_reference(rng):
    logits = Tensor(rng.normal(size=(8, 1)), requires_grad=True)
    y = (rng.random((8, 1)) > 0.5).astype(float)
    loss = bce_with_logits(logits, y)
    probs = 1 / (1 + np.exp(-logits.data))
    ref = -(y * np.log(probs) + (1 - y) * np.log(1 - probs)).mean()
    assert loss.item() == pytest.approx(ref, abs=1e-9)
    loss.backward()
    np.testing.assert_allclose(logits.grad, (probs - y) / y.size, atol=1e-9)


def test_bce_stable_at_extreme_logits():
    logits = Tensor(np.array([[100.0], [-100.0]]), requires_grad=True)
    loss = bce_with_logits(logits, np.array([[1.0], [0.0]]))
    assert np.isfinite(loss.item())
    loss.backward()
    assert np.all(np.isfinite(logits.grad))


def test_softmax_ce_matches_reference(rng):
    logits = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
    labels = rng.integers(0, 4, size=6)
    loss = softmax_cross_entropy(logits, labels)
    z = logits.data - logits.data.max(axis=1, keepdims=True)
    probs = np.exp(z) / np.exp(z).sum(axis=1, keepdims=True)
    ref = -np.log(probs[np.arange(6), labels]).mean()
    assert loss.item() == pytest.approx(ref, abs=1e-9)
    loss.backward()
    expected = probs.copy()
    expected[np.arange(6), labels] -= 1
    np.testing.assert_allclose(logits.grad, expected / 6, atol=1e-9)


def test_softmax_ce_shape_check(rng):
    with pytest.raises(ValueError):
        softmax_cross_entropy(Tensor(rng.normal(size=(3, 2))), np.array([0, 1]))


def test_mse(rng):
    pred = Tensor(rng.normal(size=(4, 1)), requires_grad=True)
    y = rng.normal(size=(4, 1))
    loss = mse(pred, y)
    assert loss.item() == pytest.approx(((pred.data - y) ** 2).mean())


# ---------- optimizers ----------


def test_sgd_converges_on_quadratic():
    w = Tensor(np.array([5.0, -3.0]), requires_grad=True)
    opt = SGD([w], lr=0.1)
    for _ in range(200):
        opt.zero_grad()
        loss = (w * w).sum()
        loss.backward()
        opt.step()
    np.testing.assert_allclose(w.data, [0.0, 0.0], atol=1e-6)


def test_sgd_momentum_matches_manual():
    w = Tensor(np.array([1.0]), requires_grad=True)
    opt = SGD([w], lr=0.1, momentum=0.9)
    manual_w, vel = 1.0, 0.0
    for _ in range(5):
        opt.zero_grad()
        (w * w).sum().backward()
        opt.step()
        grad = 2 * manual_w
        vel = 0.9 * vel + grad
        manual_w -= 0.1 * vel
    assert w.data[0] == pytest.approx(manual_w)


def test_sgd_weight_decay():
    w = Tensor(np.array([1.0]), requires_grad=True)
    opt = SGD([w], lr=0.1, weight_decay=0.5)
    opt.zero_grad()
    (w * 0.0).sum().backward()
    opt.step()
    assert w.data[0] == pytest.approx(1.0 - 0.1 * 0.5)


def test_sgd_validates_inputs():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        SGD([Tensor(np.ones(1), requires_grad=True)], lr=0.0)


def test_adam_converges_on_quadratic():
    w = Tensor(np.array([5.0, -3.0]), requires_grad=True)
    opt = Adam([w], lr=0.2)
    for _ in range(300):
        opt.zero_grad()
        ((w - 1.0) * (w - 1.0)).sum().backward()
        opt.step()
    np.testing.assert_allclose(w.data, [1.0, 1.0], atol=1e-3)


# ---------- CSR ----------


def test_csr_dense_roundtrip(rng):
    dense = rng.normal(size=(4, 6))
    dense[rng.random(dense.shape) < 0.5] = 0
    np.testing.assert_array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)


def test_csr_matmul_and_t_matmul(rng):
    dense = rng.normal(size=(5, 7))
    dense[rng.random(dense.shape) < 0.6] = 0
    csr = CSRMatrix.from_dense(dense)
    w = rng.normal(size=(7, 2))
    g = rng.normal(size=(5, 2))
    np.testing.assert_allclose(csr.matmul_dense(w), dense @ w, atol=1e-9)
    np.testing.assert_allclose(csr.t_matmul_dense(g), dense.T @ g, atol=1e-9)


def test_csr_matmul_vector(rng):
    dense = rng.normal(size=(3, 4))
    csr = CSRMatrix.from_dense(dense)
    v = rng.normal(size=4)
    np.testing.assert_allclose(csr.matmul_dense(v), dense @ v, atol=1e-9)


def test_csr_take_rows(rng):
    dense = rng.normal(size=(6, 4))
    dense[rng.random(dense.shape) < 0.4] = 0
    csr = CSRMatrix.from_dense(dense)
    sub = csr.take_rows(np.array([4, 1, 1]))
    np.testing.assert_array_equal(sub.to_dense(), dense[[4, 1, 1]])


def test_csr_density_and_support(rng):
    dense = np.zeros((4, 10))
    dense[0, 3] = 1.0
    dense[2, 7] = 2.0
    csr = CSRMatrix.from_dense(dense)
    assert csr.nnz == 2
    assert csr.density == pytest.approx(2 / 40)
    np.testing.assert_array_equal(csr.column_support(), [3, 7])


def test_csr_scale_rows(rng):
    dense = rng.normal(size=(3, 4))
    csr = CSRMatrix.from_dense(dense)
    scaled = csr.scale_rows(np.array([1.0, 2.0, 0.5]))
    np.testing.assert_allclose(
        scaled.to_dense(), dense * np.array([[1.0], [2.0], [0.5]]), atol=1e-12
    )


def test_csr_shape_validation():
    with pytest.raises(ValueError):
        CSRMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), (1, 3))
    with pytest.raises(ValueError):
        CSRMatrix(np.array([0]), np.array([]), np.array([]), (1, 3))
