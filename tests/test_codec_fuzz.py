"""Fuzz/property suite for the wire codec's failure behaviour.

The property under test: *no* malformed frame — truncated, bit-flipped,
length-lied, wrong-magic — is ever decoded into a partial payload or
causes a hang.  Every mutation must raise :class:`WireFormatError` (with
CRC disagreements classified as :class:`FrameIntegrityError`), across all
three frame kinds (message, bare payload, hello).

The schedules are seeded, so a failing case replays exactly.
"""

import numpy as np
import pytest

from repro.comm import codec
from repro.comm.message import Message, MessageKind
from repro.crypto.crypto_tensor import CryptoTensor
from repro.crypto.paillier import generate_paillier_keypair


@pytest.fixture(scope="module")
def frames():
    """One representative frame per kind, with crypto-bearing payloads."""
    pk, _sk = generate_paillier_keypair(128, seed=77)
    ct = CryptoTensor.encrypt(pk, np.arange(4.0).reshape(2, 2))
    message = codec.encode_message(
        Message(
            sender="A", receiver="B", tag="fuzz.t", kind=MessageKind.CIPHERTEXT,
            payload=[ct, np.arange(3.0), ("nested", 7, None)], seq=9,
        )
    )
    payload = codec.encode_payload_frame((True, 2.5, b"\x00\x01", [1, 2, 3]))
    hello = codec.encode_hello(["A", "B"])
    return {"message": message, "payload": payload, "hello": hello}


def _decoders(kind):
    """Every decode entry point that accepts this frame kind."""
    if kind == "message":
        return [codec.decode_message]
    if kind == "payload":
        return [codec.decode_payload_frame]
    return [codec.decode_hello]


def _assert_rejected(kind, frame):
    """The frame must raise WireFormatError from every relevant decoder."""
    for decode in _decoders(kind):
        with pytest.raises(codec.WireFormatError):
            decode(frame)
    with pytest.raises(codec.WireFormatError):
        codec.check_frame(frame)


@pytest.mark.parametrize("kind", ["message", "payload", "hello"])
def test_truncation_at_every_boundary_raises(frames, kind):
    """Prefixes cut inside the preamble, body and CRC trailer all raise."""
    frame = frames[kind]
    cuts = {0, 1, codec.PREAMBLE_SIZE - 1, codec.PREAMBLE_SIZE,
            codec.PREAMBLE_SIZE + 1, len(frame) // 2,
            len(frame) - codec.CRC_SIZE - 1, len(frame) - codec.CRC_SIZE,
            len(frame) - 1}
    rng = np.random.default_rng(101)
    cuts |= set(int(x) for x in rng.integers(0, len(frame), size=32))
    for cut in sorted(cuts):
        if cut >= len(frame):
            continue
        _assert_rejected(kind, frame[:cut])


@pytest.mark.parametrize("kind", ["message", "payload", "hello"])
def test_seeded_bit_flips_always_raise(frames, kind):
    """A single flipped bit anywhere in the frame is always detected.

    Body and trailer flips break the CRC (FrameIntegrityError); preamble
    flips break magic/version/kind/length first — either way the decode
    raises instead of returning garbage.
    """
    frame = frames[kind]
    rng = np.random.default_rng(202)
    positions = {(int(o), int(b)) for o, b in zip(
        rng.integers(0, len(frame), size=96), rng.integers(0, 8, size=96)
    )}
    # Force coverage of every structural region regardless of the draw.
    positions |= {(0, 0), (2, 0), (3, 1), (5, 7),
                  (codec.PREAMBLE_SIZE, 0), (len(frame) - 1, 3)}
    for offset, bit in sorted(positions):
        mutated = bytearray(frame)
        mutated[offset] ^= 1 << bit
        _assert_rejected(kind, bytes(mutated))


@pytest.mark.parametrize("kind", ["message", "payload", "hello"])
def test_body_corruption_is_classified_as_integrity_error(frames, kind):
    """Flips strictly inside the body are CRC failures, i.e. retryable."""
    frame = frames[kind]
    rng = np.random.default_rng(303)
    body_span = len(frame) - codec.PREAMBLE_SIZE - codec.CRC_SIZE
    for offset in rng.integers(0, body_span, size=16):
        mutated = bytearray(frame)
        mutated[codec.PREAMBLE_SIZE + int(offset)] ^= 0x10
        for decode in _decoders(kind):
            with pytest.raises(codec.FrameIntegrityError):
                decode(bytes(mutated))


@pytest.mark.parametrize("kind", ["message", "payload", "hello"])
def test_length_field_lies_raise(frames, kind):
    """A length field that disagrees with the byte count is structural."""
    frame = frames[kind]
    true_len = len(frame) - codec.PREAMBLE_SIZE - codec.CRC_SIZE
    for lied in (0, true_len - 1, true_len + 1, true_len + 4096, 0xFFFFFFFF):
        if lied == true_len:
            continue
        mutated = bytearray(frame)
        mutated[4:8] = int(lied).to_bytes(4, "big")
        with pytest.raises(codec.WireFormatError):
            codec.check_frame(bytes(mutated))


@pytest.mark.parametrize("kind", ["message", "payload", "hello"])
def test_consistent_length_lie_with_fixed_crc_still_raises(frames, kind):
    """The adversarial case: truncate the body AND repair length + CRC.

    The frame-level checks now pass, so the *payload* parser must reject
    it — the partially-decoded payload is never returned.
    """
    frame = frames[kind]
    true_len = len(frame) - codec.PREAMBLE_SIZE - codec.CRC_SIZE
    cut = true_len - 3
    head = bytearray(frame[: codec.PREAMBLE_SIZE + cut])
    head[4:8] = cut.to_bytes(4, "big")
    import zlib

    forged = bytes(head) + (zlib.crc32(bytes(head)) & 0xFFFFFFFF).to_bytes(4, "big")
    codec.check_frame(forged)  # frame-level checks cannot see this one
    for decode in _decoders(kind):
        with pytest.raises(codec.WireFormatError):
            decode(forged)


@pytest.mark.parametrize("kind", ["message", "payload", "hello"])
def test_wrong_magic_version_and_kind_raise(frames, kind):
    frame = frames[kind]
    for mutate, pattern in (
        (lambda f: b"XX" + f[2:], "magic"),
        (lambda f: f[:2] + bytes([99]) + f[3:], "version"),
        (lambda f: f[:3] + bytes([0x5A]) + f[4:], "kind"),
    ):
        with pytest.raises(codec.WireFormatError, match=pattern):
            codec.check_frame(mutate(frame))


def test_kind_cross_decoding_rejected(frames):
    """Each decoder refuses the other kinds' (well-formed) frames."""
    with pytest.raises(codec.WireFormatError, match="not a protocol message"):
        codec.decode_message(frames["hello"])
    with pytest.raises(codec.WireFormatError, match="not a bare payload"):
        codec.decode_payload_frame(frames["message"])
    with pytest.raises(codec.WireFormatError, match="not a handshake"):
        codec.decode_hello(frames["payload"])


def test_iter_frames_round_trips_and_rejects_truncated_tail(frames):
    stream = frames["payload"] + frames["hello"] + frames["message"]
    kinds = [kind for kind, _ in codec.iter_frames(stream)]
    assert kinds == [codec.FRAME_PAYLOAD, codec.FRAME_HELLO, codec.FRAME_MESSAGE]
    with pytest.raises(codec.WireFormatError, match="truncated frame stream"):
        list(codec.iter_frames(stream[:-2]))
    with pytest.raises(codec.WireFormatError, match="truncated frame stream"):
        list(codec.iter_frames(stream + frames["payload"][:5]))


def test_wire_corruption_detected_at_read_frame():
    """The transport read site classifies corruption before any decode."""
    import socket

    from repro.comm.transport import read_frame

    frame = codec.encode_payload_frame([1.0, 2.0, 3.0])
    corrupted = bytearray(frame)
    corrupted[codec.PREAMBLE_SIZE + 2] ^= 0x40
    left, right = socket.socketpair()
    left.settimeout(1.0)
    right.settimeout(1.0)
    try:
        left.sendall(bytes(corrupted))
        with pytest.raises(codec.FrameIntegrityError, match="CRC32"):
            read_frame(right)
        left.sendall(frame)
        assert read_frame(right) == frame
    finally:
        left.close()
        right.close()
