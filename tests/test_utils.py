"""Tests for metrics, table formatting, timers and RNG management."""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.metrics import accuracy, binary_logloss, roc_auc, softmax_logloss
from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.tabulate import format_table
from repro.utils.timer import Timer


# ---------- roc_auc ----------


def test_auc_perfect_separation():
    y = np.array([0, 0, 1, 1])
    assert roc_auc(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
    assert roc_auc(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0


def test_auc_chance_for_constant_scores():
    y = np.array([0, 1, 0, 1])
    assert roc_auc(y, np.zeros(4)) == pytest.approx(0.5)  # all tied -> 0.5


def test_auc_handles_ties_with_midranks():
    y = np.array([0, 1, 1, 0])
    s = np.array([0.5, 0.5, 0.9, 0.1])
    # pairs: (1a vs 0a): tie=0.5; (1a vs 0b): win; (1b vs 0a): win; (1b vs 0b): win
    assert roc_auc(y, s) == pytest.approx((0.5 + 3) / 4)


def test_auc_validation():
    with pytest.raises(ValueError, match="at least one"):
        roc_auc(np.ones(4), np.arange(4))
    with pytest.raises(ValueError, match="shape"):
        roc_auc(np.array([0, 1]), np.arange(3))


@given(st.integers(min_value=2, max_value=50))
@settings(max_examples=20)
def test_auc_antisymmetry(n):
    rng = np.random.default_rng(n)
    y = rng.integers(0, 2, size=n)
    if y.min() == y.max():
        y[0] = 1 - y[0]
    s = rng.normal(size=n)
    assert roc_auc(y, s) == pytest.approx(1.0 - roc_auc(y, -s), abs=1e-12)


def test_auc_matches_pairwise_definition(rng):
    y = rng.integers(0, 2, size=30)
    y[:2] = [0, 1]
    s = rng.normal(size=30)
    pos, neg = s[y == 1], s[y == 0]
    wins = sum((p > q) + 0.5 * (p == q) for p in pos for q in neg)
    assert roc_auc(y, s) == pytest.approx(wins / (len(pos) * len(neg)))


# ---------- other metrics ----------


def test_accuracy_basic():
    assert accuracy([1, 2, 3], [1, 2, 4]) == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        accuracy([], [])
    with pytest.raises(ValueError):
        accuracy([1], [1, 2])


def test_binary_logloss_reference(rng):
    y = rng.integers(0, 2, size=20).astype(float)
    p = rng.uniform(0.01, 0.99, size=20)
    ref = -np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))
    assert binary_logloss(y, p) == pytest.approx(ref)
    # Clipping keeps extreme probabilities finite.
    assert np.isfinite(binary_logloss(np.array([1.0]), np.array([0.0])))


def test_softmax_logloss_reference(rng):
    logits = rng.normal(size=(10, 3))
    y = rng.integers(0, 3, size=10)
    z = logits - logits.max(axis=1, keepdims=True)
    probs = np.exp(z) / np.exp(z).sum(axis=1, keepdims=True)
    ref = -np.mean(np.log(probs[np.arange(10), y]))
    assert softmax_logloss(y, logits) == pytest.approx(ref, abs=1e-9)
    with pytest.raises(ValueError):
        softmax_logloss(y, logits[:5])


# ---------- tabulate ----------


def test_format_table_alignment():
    out = format_table(["col", "x"], [["a", 1], ["long-cell", 2.5]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "long-cell" in out
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows aligned to the same width


def test_format_table_scientific_for_extremes():
    out = format_table(["v"], [[0.0000001], [1e7]])
    assert "e-07" in out and "e+07" in out


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_table_integers_stay_exact():
    # Counter columns (pow/ciphertext counts) must print as exact ints,
    # never float-formatted.
    out = format_table(["n"], [[123456]])
    assert "123456" in out and "1.2" not in out


def test_binary_logloss_validation():
    with pytest.raises(ValueError):
        binary_logloss(np.array([0.0, 1.0]), np.array([0.5]))
    with pytest.raises(ValueError):
        binary_logloss(np.array([]), np.array([]))


def test_accuracy_perfect_and_zero():
    assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0
    assert accuracy([0, 0, 0], [1, 1, 1]) == 0.0


# ---------- timer ----------


def test_timer_accumulates():
    t = Timer()
    with t:
        time.sleep(0.01)
    first = t.elapsed
    with t:
        time.sleep(0.01)
    assert t.elapsed > first >= 0.01
    t.reset()
    assert t.elapsed == 0.0


def test_timer_misuse():
    t = Timer()
    with pytest.raises(RuntimeError):
        t.__exit__(None, None, None)


def test_timer_nesting_accumulates_outermost_interval_once():
    """Re-entrant use (the span API nests spans freely) counts the
    outermost interval exactly once — inner exits must neither accumulate
    nor reset the running start."""
    t = Timer()
    with t:
        time.sleep(0.005)
        with t:
            time.sleep(0.005)
        assert t.running  # inner exit left the outer interval open
        assert t.elapsed == 0.0  # nothing accumulated yet
        time.sleep(0.005)
    assert not t.running
    # One interval covering all three sleeps, not double-counted.
    assert 0.015 <= t.elapsed < 0.5


def test_timer_nested_exit_beyond_depth_raises():
    t = Timer()
    with t:
        with t:
            pass
    with pytest.raises(RuntimeError):
        t.__exit__(None, None, None)


def test_timer_reset_clears_depth_and_elapsed():
    t = Timer()
    with t:
        pass
    assert t.elapsed > 0.0
    t.reset()
    assert t.elapsed == 0.0 and not t.running
    with t:  # usable again after reset
        pass
    assert t.elapsed > 0.0


# ---------- rng ----------


def test_new_rng_deterministic():
    assert new_rng(5).integers(0, 100) == new_rng(5).integers(0, 100)


def test_spawn_rngs_independent():
    a, b = spawn_rngs(1, 2)
    assert a.integers(0, 2**30) != b.integers(0, 2**30)
    with pytest.raises(ValueError):
        spawn_rngs(1, 0)


def test_spawn_rngs_reproducible():
    a1, _ = spawn_rngs(9, 2)
    a2, _ = spawn_rngs(9, 2)
    assert a1.integers(0, 2**30) == a2.integers(0, 2**30)
