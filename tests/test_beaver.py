"""Tests for the Z_2^64 fixed-point sharing and Beaver-triple matmul."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.beaver import (
    ClientAidedDealer,
    PaillierTripleGenerator,
    beaver_matmul,
    decode_ring,
    encode_ring,
    reconstruct_ring,
    share_ring,
    truncate_share,
)
from repro.crypto.paillier import generate_paillier_keypair


def test_ring_encode_decode_roundtrip(rng):
    x = rng.normal(size=(5, 4)) * 100
    np.testing.assert_allclose(decode_ring(encode_ring(x)), x, atol=1e-5)


def test_ring_encode_negative_values():
    x = np.array([-1.5, -1e6, 0.0, 1e6])
    np.testing.assert_allclose(decode_ring(encode_ring(x)), x, atol=1e-5)


def test_ring_encode_overflow_guard():
    with pytest.raises(OverflowError):
        encode_ring(np.array([1e13]))


@given(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
@settings(max_examples=50)
def test_ring_roundtrip_property(x):
    assert decode_ring(encode_ring(np.array([x])))[0] == pytest.approx(x, abs=1e-5)


def test_share_ring_reconstructs(rng):
    x = encode_ring(rng.normal(size=(3, 3)) * 10)
    p0, p1 = share_ring(x, rng)
    np.testing.assert_array_equal(reconstruct_ring(p0, p1), x)


def test_share_ring_pieces_are_uniformish(rng):
    x = encode_ring(np.ones((10000,)))
    p0, _ = share_ring(x, rng)
    # Top bit of a uniform share should be ~50/50.
    top = (p0 >> np.uint64(63)).astype(float).mean()
    assert 0.45 < top < 0.55


def test_truncation_restores_scale(rng):
    a = rng.normal(size=(4, 4))
    b = rng.normal(size=(4, 4))
    prod = encode_ring(a) * encode_ring(b)  # scale 2^40
    s0, s1 = share_ring(prod, rng)
    t0 = truncate_share(s0, server=0)
    t1 = truncate_share(s1, server=1)
    np.testing.assert_allclose(
        decode_ring(reconstruct_ring(t0, t1)), a * b, atol=1e-4
    )


def test_truncate_rejects_bad_server(rng):
    with pytest.raises(ValueError):
        truncate_share(np.zeros(2, dtype=np.uint64), server=2)


def test_client_aided_matmul(rng):
    x = rng.normal(size=(6, 5))
    w = rng.normal(size=(5, 3))
    dealer = ClientAidedDealer(rng)
    triple = dealer.deal(6, 5, 3)
    x_sh = share_ring(encode_ring(x), rng)
    w_sh = share_ring(encode_ring(w), rng)
    z0, z1 = beaver_matmul(x_sh, w_sh, triple)
    np.testing.assert_allclose(
        decode_ring(reconstruct_ring(z0, z1)), x @ w, atol=1e-3
    )


def test_beaver_matmul_shape_check(rng):
    dealer = ClientAidedDealer(rng)
    triple = dealer.deal(2, 3, 1)
    x_sh = share_ring(encode_ring(rng.normal(size=(4, 3))), rng)
    w_sh = share_ring(encode_ring(rng.normal(size=(3, 1))), rng)
    with pytest.raises(ValueError):
        beaver_matmul(x_sh, w_sh, triple)


def test_paillier_triple_generation(rng):
    """The crypto offline phase produces valid triples (small shapes only)."""
    pk0, sk0 = generate_paillier_keypair(192, seed=1)
    pk1, sk1 = generate_paillier_keypair(192, seed=2)
    gen = PaillierTripleGenerator(rng, pk0, sk0, pk1, sk1)
    triple = gen.deal(2, 3, 2)
    a = reconstruct_ring(*triple.a)
    b = reconstruct_ring(*triple.b)
    c = reconstruct_ring(*triple.c)
    with np.errstate(over="ignore"):
        np.testing.assert_array_equal(c, a @ b)


def test_paillier_triple_rejects_small_keys(rng):
    pk0, sk0 = generate_paillier_keypair(128, seed=1)
    pk1, sk1 = generate_paillier_keypair(128, seed=2)
    with pytest.raises(ValueError):
        PaillierTripleGenerator(rng, pk0, sk0, pk1, sk1)


def test_paillier_triple_matmul_end_to_end(rng):
    pk0, sk0 = generate_paillier_keypair(192, seed=3)
    pk1, sk1 = generate_paillier_keypair(192, seed=4)
    gen = PaillierTripleGenerator(rng, pk0, sk0, pk1, sk1)
    x = rng.normal(size=(2, 3))
    w = rng.normal(size=(3, 2))
    triple = gen.deal(2, 3, 2)
    z0, z1 = beaver_matmul(
        share_ring(encode_ring(x), rng), share_ring(encode_ring(w), rng), triple
    )
    np.testing.assert_allclose(
        decode_ring(reconstruct_ring(z0, z1)), x @ w, atol=1e-3
    )


def test_unit_cost_estimate_monotone():
    small = PaillierTripleGenerator.unit_cost_ops(2, 4, 1)
    large = PaillierTripleGenerator.unit_cost_ops(2, 400, 1)
    assert large > small * 50
