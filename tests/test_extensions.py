"""Tests for the appendix extensions: multi-party (Alg. 3) and SS tops (App. B)."""

import numpy as np
import pytest

from repro.comm.message import MessageKind
from repro.comm.party import VFLConfig, VFLContext
from repro.core.federated_top import (
    IdealSSTop,
    matmul_backward_from_shares,
    train_lr_with_ss_top,
)
from repro.core.matmul_layer import MatMulSource
from repro.core.multiparty import MultiPartyMatMulSource
from repro.core.trainer import TrainConfig
from repro.data.partition import split_vertical
from repro.data.synthetic import make_dense_classification

KEY_BITS = 128


def mp_ctx(m=2, seed=8):
    return VFLContext(VFLConfig(key_bits=KEY_BITS), seed=seed, n_a_parties=m)


def two_ctx(seed=8):
    return VFLContext(VFLConfig(key_bits=KEY_BITS), seed=seed)


# ---------- Algorithm 3: multi-party ----------


def test_multiparty_forward_lossless(rng):
    ctx = mp_ctx(m=2)
    layer = MultiPartyMatMulSource(ctx, {"A1": 4, "A2": 3}, in_b=5, out_dim=2)
    w = layer.reveal_weights()
    x = {
        "A1": rng.normal(size=(6, 4)),
        "A2": rng.normal(size=(6, 3)),
        "B": rng.normal(size=(6, 5)),
    }
    z = layer.forward(x)
    expected = x["A1"] @ w["W_A1"] + x["A2"] @ w["W_A2"] + x["B"] @ w["W_B"]
    np.testing.assert_allclose(z, expected, atol=1e-4)


def test_multiparty_three_a_parties(rng):
    ctx = mp_ctx(m=3)
    dims = {"A1": 3, "A2": 3, "A3": 2}
    layer = MultiPartyMatMulSource(ctx, dims, in_b=4, out_dim=1)
    w = layer.reveal_weights()
    x = {name: rng.normal(size=(5, d)) for name, d in dims.items()}
    x["B"] = rng.normal(size=(5, 4))
    z = layer.forward(x)
    expected = sum(x[n] @ w[f"W_{n}"] for n in dims) + x["B"] @ w["W_B"]
    np.testing.assert_allclose(z, expected, atol=1e-4)


def test_multiparty_backward_matches_plaintext(rng):
    ctx = mp_ctx(m=2)
    layer = MultiPartyMatMulSource(ctx, {"A1": 4, "A2": 3}, in_b=5, out_dim=1)
    w0 = layer.reveal_weights()
    x = {
        "A1": rng.normal(size=(6, 4)),
        "A2": rng.normal(size=(6, 3)),
        "B": rng.normal(size=(6, 5)),
    }
    layer.forward(x)
    grad_z = rng.normal(size=(6, 1)) * 0.1
    layer.backward(grad_z)
    layer.apply_updates(lr=0.1, momentum=0.0)
    w1 = layer.reveal_weights()
    for name in ("A1", "A2", "B"):
        np.testing.assert_allclose(
            w1[f"W_{name}"],
            w0[f"W_{name}"] - 0.1 * (x[name].T @ grad_z),
            atol=1e-4,
        )


def test_multiparty_no_plaintext_messages(rng):
    ctx = mp_ctx(m=2)
    layer = MultiPartyMatMulSource(ctx, {"A1": 3, "A2": 3}, in_b=3, out_dim=1)
    x = {n: rng.normal(size=(4, 3)) for n in ("A1", "A2", "B")}
    layer.forward(x)
    layer.backward(rng.normal(size=(4, 1)))
    layer.apply_updates(lr=0.05, momentum=0.9)
    assert MessageKind.PLAINTEXT not in {m.kind for m in ctx.channel.transcript}


def test_multiparty_validation():
    ctx = two_ctx()
    with pytest.raises(ValueError, match="two-party"):
        MultiPartyMatMulSource(ctx, {"A": 3}, in_b=3, out_dim=1)
    mctx = mp_ctx(m=2)
    with pytest.raises(ValueError, match="cover"):
        MultiPartyMatMulSource(mctx, {"A1": 3}, in_b=3, out_dim=1)


def test_multiparty_federated_parameters():
    ctx = mp_ctx(m=2)
    layer = MultiPartyMatMulSource(ctx, {"A1": 3, "A2": 4}, in_b=5, out_dim=1)
    params = {p.name: p for p in layer.federated_parameters()}
    assert set(params) == {"mp-matmul.W_A1", "mp-matmul.W_A2", "mp-matmul.W_B"}
    assert params["mp-matmul.W_B"].holders == {"U": "B", "V(A1)": "A1", "V(A2)": "A2"}


def test_multiparty_momentum_training_steps(rng):
    ctx = mp_ctx(m=2)
    layer = MultiPartyMatMulSource(ctx, {"A1": 3, "A2": 3}, in_b=3, out_dim=1)
    w = layer.reveal_weights()
    ref = {k: v.copy() for k, v in w.items()}
    vel = {k: np.zeros_like(v) for k, v in w.items()}
    for _ in range(2):
        x = {n: rng.normal(size=(4, 3)) for n in ("A1", "A2", "B")}
        layer.forward(x)
        gz = rng.normal(size=(4, 1)) * 0.1
        layer.backward(gz)
        layer.apply_updates(lr=0.05, momentum=0.9)
        for n in ("A1", "A2", "B"):
            vel[f"W_{n}"] = 0.9 * vel[f"W_{n}"] + x[n].T @ gz
            ref[f"W_{n}"] -= 0.05 * vel[f"W_{n}"]
    w1 = layer.reveal_weights()
    for k in ref:
        np.testing.assert_allclose(w1[k], ref[k], atol=1e-4)


# ---------- Appendix B: SS-based top model ----------


def test_ss_top_backward_matches_plaintext(rng):
    """Figure 13 backward must equal the plaintext update exactly."""
    ctx = two_ctx()
    layer = MatMulSource(ctx, 4, 3, 1, name="sst")
    w0 = layer.reveal_weights()
    x_a = rng.normal(size=(6, 4))
    x_b = rng.normal(size=(6, 3))
    z_a, z_b = layer.forward_shares(x_a, x_b)
    w = layer.reveal_weights()
    np.testing.assert_allclose(
        z_a + z_b, x_a @ w["W_A"] + x_b @ w["W_B"], atol=1e-5
    )
    grad_z = rng.normal(size=(6, 1)) * 0.1
    eps = rng.uniform(-100, 100, size=(6, 1))
    matmul_backward_from_shares(layer, eps, grad_z - eps, lr=0.1, momentum=0.0)
    w1 = layer.reveal_weights()
    np.testing.assert_allclose(w1["W_A"], w0["W_A"] - 0.1 * x_a.T @ grad_z, atol=1e-4)
    np.testing.assert_allclose(w1["W_B"], w0["W_B"] - 0.1 * x_b.T @ grad_z, atol=1e-4)


def test_ss_top_second_iteration_consistent(rng):
    """After the dual refresh, the next forward uses the updated weights."""
    ctx = two_ctx()
    layer = MatMulSource(ctx, 3, 3, 1, name="sst2")
    x_a, x_b = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
    layer.forward_shares(x_a, x_b)
    grad_z = rng.normal(size=(4, 1)) * 0.1
    eps = rng.uniform(-10, 10, size=(4, 1))
    matmul_backward_from_shares(layer, eps, grad_z - eps, lr=0.1, momentum=0.0)
    w1 = layer.reveal_weights()
    z_a, z_b = layer.forward_shares(x_a, x_b)
    np.testing.assert_allclose(
        z_a + z_b, x_a @ w1["W_A"] + x_b @ w1["W_B"], atol=1e-4
    )


def test_ideal_ss_top_grad_is_bce_grad(rng):
    top = IdealSSTop(rng)
    z_a = rng.normal(size=(8, 1))
    z_b = rng.normal(size=(8, 1))
    y = rng.integers(0, 2, size=(8, 1)).astype(float)
    eps, rest, loss = top.backward_shares(z_a, z_b, y)
    z = z_a + z_b
    probs = 1 / (1 + np.exp(-z))
    np.testing.assert_allclose(eps + rest, (probs - y) / 8, atol=1e-9)
    assert loss > 0


def test_train_lr_with_ss_top_converges():
    full = make_dense_classification(160, 8, seed=40, flip=0.02, nonlinear=False)
    train = split_vertical(full.subset(np.arange(120)))
    test = split_vertical(full.subset(np.arange(120, 160)))
    ctx = two_ctx()
    cfg = TrainConfig(epochs=2, batch_size=16, lr=0.1, momentum=0.9)
    layer, history = train_lr_with_ss_top(ctx, train, cfg, test_data=test)
    assert history.losses[-1] < history.losses[0]
    assert history.epoch_metrics[-1] > 0.6
    # Party B never received the aggregated Z: no OUTPUT_SHARE messages.
    kinds = {m.kind for m in ctx.channel.transcript}
    assert MessageKind.OUTPUT_SHARE not in kinds
    assert MessageKind.PLAINTEXT not in kinds
