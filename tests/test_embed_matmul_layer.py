"""Protocol tests for the Embed-MatMul federated source layer (Figure 7)."""

import numpy as np
import pytest

from repro.comm.message import MessageKind
from repro.comm.party import VFLConfig, VFLContext
from repro.core.embed_matmul_layer import EmbedMatMulSource

KEY_BITS = 128


def make_ctx(**kwargs) -> VFLContext:
    return VFLContext(VFLConfig(key_bits=KEY_BITS, **kwargs), seed=6)


def reference_forward(layer, x_a, x_b):
    """Plaintext E_A W_A + E_B W_B from the revealed tables/weights."""
    w = layer.reveal_weights()
    e_a = lookup(w["Q_A"], x_a, layer._a.offsets)
    e_b = lookup(w["Q_B"], x_b, layer._b.offsets)
    return e_a @ w["W_A"] + e_b @ w["W_B"], (e_a, e_b)


def lookup(table, x_cat, offsets):
    flat = (np.asarray(x_cat, dtype=np.int64) + offsets[None, :]).ravel()
    batch = x_cat.shape[0]
    return table[flat].reshape(batch, -1)


@pytest.fixture()
def layer_and_data(rng):
    ctx = make_ctx()
    layer = EmbedMatMulSource(
        ctx, vocab_a=[5, 7], vocab_b=[6], emb_dim=3, out_dim=2, name="e"
    )
    x_a = rng.integers(0, 5, size=(4, 2))
    x_a[:, 1] = rng.integers(0, 7, size=4)
    x_b = rng.integers(0, 6, size=(4, 1))
    return ctx, layer, x_a, x_b


def test_forward_is_lossless(layer_and_data):
    ctx, layer, x_a, x_b = layer_and_data
    expected, _ = reference_forward(layer, x_a, x_b)
    z = layer.forward(x_a, x_b)
    np.testing.assert_allclose(z, expected, atol=1e-4)


def test_forward_shares_sum_to_z(layer_and_data):
    ctx, layer, x_a, x_b = layer_and_data
    expected, _ = reference_forward(layer, x_a, x_b)
    z_a, z_b = layer.forward_shares(x_a, x_b)
    np.testing.assert_allclose(z_a + z_b, expected, atol=1e-4)
    # Each share alone must be far from Z (it contains the random masks).
    assert not np.allclose(z_b, expected, atol=1e-2)


def test_backward_weight_gradients_match_plaintext(layer_and_data, rng):
    ctx, layer, x_a, x_b = layer_and_data
    w0 = layer.reveal_weights()
    expected, (e_a, e_b) = reference_forward(layer, x_a, x_b)
    layer.forward(x_a, x_b)
    grad_z = rng.normal(size=(4, 2)) * 0.1
    layer.backward(grad_z)
    layer.apply_updates(lr=0.1, momentum=0.0)
    w1 = layer.reveal_weights()
    np.testing.assert_allclose(w1["W_A"], w0["W_A"] - 0.1 * e_a.T @ grad_z, atol=1e-4)
    np.testing.assert_allclose(w1["W_B"], w0["W_B"] - 0.1 * e_b.T @ grad_z, atol=1e-4)


def test_backward_table_gradients_match_plaintext(layer_and_data, rng):
    ctx, layer, x_a, x_b = layer_and_data
    w0 = layer.reveal_weights()
    _, _ = reference_forward(layer, x_a, x_b)
    layer.forward(x_a, x_b)
    grad_z = rng.normal(size=(4, 2)) * 0.1
    layer.backward(grad_z)
    layer.apply_updates(lr=0.1, momentum=0.0)
    w1 = layer.reveal_weights()
    # Reference lkup_bw: grad_E = grad_Z W^T, scattered into the table.
    for who, x_cat in (("A", x_a), ("B", x_b)):
        state = layer._a if who == "A" else layer._b
        total = layer.total_a if who == "A" else layer.total_b
        grad_e = grad_z @ w0[f"W_{who}"].T  # (batch, F*D)
        flat = (x_cat + state.offsets[None, :]).ravel()
        grad_q = np.zeros((total, layer.emb_dim))
        np.add.at(grad_q, flat, grad_e.reshape(-1, layer.emb_dim))
        np.testing.assert_allclose(
            w1[f"Q_{who}"], w0[f"Q_{who}"] - 0.1 * grad_q, atol=1e-4
        )


def test_momentum_training_step_is_exact(layer_and_data, rng):
    ctx, layer, x_a, x_b = layer_and_data
    w0 = layer.reveal_weights()
    ref = {k: v.copy() for k, v in w0.items()}
    vel = {k: np.zeros_like(v) for k, v in w0.items()}
    for _ in range(2):
        _, (e_a, e_b) = reference_forward(layer, x_a, x_b)
        layer.forward(x_a, x_b)
        grad_z = rng.normal(size=(4, 2)) * 0.1
        layer.backward(grad_z)
        layer.apply_updates(lr=0.05, momentum=0.9)
        grads = {
            "W_A": e_a.T @ grad_z,
            "W_B": e_b.T @ grad_z,
        }
        for who, x_cat in (("A", x_a), ("B", x_b)):
            state = layer._a if who == "A" else layer._b
            total = layer.total_a if who == "A" else layer.total_b
            grad_e = grad_z @ ref[f"W_{who}"].T
            flat = (x_cat + state.offsets[None, :]).ravel()
            grad_q = np.zeros((total, layer.emb_dim))
            np.add.at(grad_q, flat, grad_e.reshape(-1, layer.emb_dim))
            grads[f"Q_{who}"] = grad_q
        for key in ref:
            vel[key] = 0.9 * vel[key] + grads[key]
            ref[key] -= 0.05 * vel[key]
    w1 = layer.reveal_weights()
    for key in ref:
        np.testing.assert_allclose(w1[key], ref[key], atol=1e-3)


def test_delta_mode_is_exact(rng):
    ctx = make_ctx(share_refresh="delta")
    layer = EmbedMatMulSource(ctx, [8], [6], emb_dim=2, out_dim=1, name="ed")
    w0 = layer.reveal_weights()
    x_a = rng.integers(0, 8, size=(3, 1))
    x_b = rng.integers(0, 6, size=(3, 1))
    grad_z = rng.normal(size=(3, 1)) * 0.1
    layer.forward(x_a, x_b)
    layer.backward(grad_z)
    layer.apply_updates(lr=0.1, momentum=0.0)
    # Second forward must see the refreshed encrypted rows.
    z2 = layer.forward(x_a, x_b)
    e_a0 = w0["Q_A"][x_a.ravel()]
    grad_e_a = (grad_z @ w0["W_A"].T).reshape(-1, 2)
    grad_q_a = np.zeros_like(w0["Q_A"])
    np.add.at(grad_q_a, x_a.ravel(), grad_e_a)
    q_a1 = w0["Q_A"] - 0.1 * grad_q_a
    w_a1 = w0["W_A"] - 0.1 * e_a0.reshape(3, -1).T @ grad_z
    w1 = layer.reveal_weights()
    np.testing.assert_allclose(w1["Q_A"], q_a1, atol=1e-4)
    np.testing.assert_allclose(w1["W_A"], w_a1, atol=1e-4)
    # And z2 must reflect updated tables & weights.
    e_b0 = w0["Q_B"][x_b.ravel()]
    grad_e_b = (grad_z @ w0["W_B"].T).reshape(-1, 2)
    grad_q_b = np.zeros_like(w0["Q_B"])
    np.add.at(grad_q_b, x_b.ravel(), grad_e_b)
    q_b1 = w0["Q_B"] - 0.1 * grad_q_b
    w_b1 = w0["W_B"] - 0.1 * e_b0.reshape(3, -1).T @ grad_z
    expected_z2 = (
        q_a1[x_a.ravel()].reshape(3, -1) @ w_a1
        + q_b1[x_b.ravel()].reshape(3, -1) @ w_b1
    )
    np.testing.assert_allclose(z2, expected_z2, atol=1e-3)


def test_no_plaintext_messages(layer_and_data, rng):
    ctx, layer, x_a, x_b = layer_and_data
    layer.forward(x_a, x_b)
    layer.backward(rng.normal(size=(4, 2)))
    layer.apply_updates(lr=0.05, momentum=0.9)
    assert MessageKind.PLAINTEXT not in {m.kind for m in ctx.channel.transcript}


def test_embedding_entries_never_on_wire_in_clear(layer_and_data):
    """Req: E_A and E_B exist only as shares — check A's and B's views."""
    ctx, layer, x_a, x_b = layer_and_data
    w = layer.reveal_weights()
    e_a = lookup(w["Q_A"], x_a, layer._a.offsets)
    e_b = lookup(w["Q_B"], x_b, layer._b.offsets)
    layer.forward(x_a, x_b)
    for msg in ctx.channel.transcript:
        if isinstance(msg.payload, np.ndarray):
            for target in (e_a, e_b):
                if msg.payload.shape == target.shape:
                    assert not np.allclose(msg.payload, target, atol=1e-3)


def test_backward_before_forward_rejected(rng):
    ctx = make_ctx()
    layer = EmbedMatMulSource(ctx, [4], [4], 2, 1)
    with pytest.raises(RuntimeError, match="backward before forward"):
        layer.backward(rng.normal(size=(2, 1)))


def test_batch_size_mismatch_rejected(layer_and_data):
    ctx, layer, x_a, x_b = layer_and_data
    with pytest.raises(ValueError, match="differently sized"):
        layer.forward(x_a, x_b[:2])


def test_field_count_validation(layer_and_data, rng):
    ctx, layer, x_a, x_b = layer_and_data
    with pytest.raises(ValueError, match="categorical"):
        layer.forward(x_a[:, :1], x_b)


def test_federated_parameters_catalogued(layer_and_data):
    ctx, layer, _, _ = layer_and_data
    names = {p.name for p in layer.federated_parameters()}
    assert names == {"e.Q_A", "e.Q_B", "e.W_A", "e.W_B"}
    q_a = next(p for p in layer.federated_parameters() if p.name == "e.Q_A")
    assert q_a.shape == (12, 3)  # vocab 5+7 packed
    assert q_a.holders == {"S": "A", "T": "B"}


def test_dimension_validation():
    ctx = make_ctx()
    with pytest.raises(ValueError):
        EmbedMatMulSource(ctx, [], [4], 2, 1)
    with pytest.raises(ValueError):
        EmbedMatMulSource(ctx, [4], [4], 0, 1)
