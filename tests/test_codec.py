"""Wire-codec conformance: decode(encode(x)) is bit-identical, sizes honest.

The codec is the trust boundary — these tests pin three things:

* **Round-trip fidelity** (property loops over dtypes, shapes and key
  sizes): every payload type that crosses ``Channel.send`` survives
  ``encode -> decode`` bit-identically, including the packed tensors'
  five-integer ``SlotLayout`` header, ``seg_cols`` and the canonicalised
  ``value_bits``, and empty/scalar edge shapes.
* **Loud failure**: unknown payload types and malformed/truncated/
  wrong-version frames raise immediately, never mis-decode.
* **Honest sizes**: the ``payload_nbytes`` estimator agrees with real
  encoded frames up to a small fixed framing overhead, so wire-byte
  accounting on the in-memory tier is a faithful stand-in for measured
  frames.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import codec
from repro.comm.channel import Channel, SerializingChannel, payload_nbytes
from repro.comm.message import Message, MessageKind
from repro.crypto.crypto_tensor import CryptoTensor
from repro.crypto.packing import PackedCryptoTensor, SlotLayout, protocol_layout
from repro.crypto.paillier import PaillierPublicKey, generate_paillier_keypair

KEY_GRID = [128, 192, 256]


@pytest.fixture(scope="module")
def keys():
    """One seeded key pair per grid size (shared across this module)."""
    return {bits: generate_paillier_keypair(bits, seed=bits) for bits in KEY_GRID}


def ring_for(pk):
    return {pk.n: pk}


# ---------------------------------------------------------------------------
# Primitives and containers.


PRIMITIVES = [
    None,
    True,
    False,
    0,
    -1,
    12345678901234567890123456789,
    -(2**200),
    0.0,
    -1.5,
    2.0**-40,
    float(np.finfo(np.float64).max),
    "tag.step.payload",
    "",
    b"\x00\xffraw",
    b"",
]


@pytest.mark.parametrize("value", PRIMITIVES, ids=[repr(v)[:28] for v in PRIMITIVES])
def test_primitive_round_trip(value):
    decoded = codec.decode_payload(codec.encode_payload(value))
    assert type(decoded) is type(value)
    assert decoded == value


def test_container_round_trip():
    payload = [1, 2.5, "s", None, [True, b"x"], (3, (4.0,))]
    decoded = codec.decode_payload(codec.encode_payload(payload))
    assert decoded == payload
    assert isinstance(decoded[5], tuple) and isinstance(decoded[4], list)


NDARRAY_CASES = [
    np.zeros((0,), dtype=np.float64),  # empty
    np.float64(3.25),  # scalar -> 0-d
    np.arange(12, dtype=np.int64).reshape(3, 4),
    np.arange(6, dtype=np.int32).reshape(2, 3),
    np.random.default_rng(0).normal(size=(5, 2)),
    np.array([True, False, True]),
    np.arange(4, dtype=np.uint8),
    np.zeros((2, 0, 3), dtype=np.float32),
]


@pytest.mark.parametrize("arr", NDARRAY_CASES, ids=[
    f"{np.asarray(a).dtype}-{np.asarray(a).shape}" for a in NDARRAY_CASES
])
def test_ndarray_round_trip_bit_identical(arr):
    decoded = codec.decode_payload(codec.encode_payload(arr))
    arr = np.asarray(arr)
    assert decoded.dtype == arr.dtype.newbyteorder("<") or decoded.dtype == arr.dtype
    assert decoded.shape == arr.shape
    assert decoded.tobytes() == np.ascontiguousarray(arr).tobytes()
    if decoded.size:  # decoded arrays must be writable (gradients get used)
        decoded.ravel()[0] = decoded.ravel()[0]


def test_big_endian_array_canonicalised():
    arr = np.arange(4, dtype=">f8")
    decoded = codec.decode_payload(codec.encode_payload(arr))
    assert decoded.dtype == np.dtype("<f8")
    np.testing.assert_array_equal(decoded, arr)


# ---------------------------------------------------------------------------
# Crypto payloads across the key grid.


@pytest.mark.parametrize("bits", KEY_GRID)
@pytest.mark.parametrize(
    "shape", [(1,), (3,), (2, 3), (1, 1), (4, 1), (0, 3)], ids=str
)
def test_crypto_tensor_round_trip(keys, bits, shape):
    pk, sk = keys[bits]
    rng = np.random.default_rng(bits + len(shape))
    values = rng.normal(size=shape)
    tensor = CryptoTensor.encrypt(pk, values)
    decoded = codec.decode_payload(codec.encode_payload(tensor), ring_for(pk))
    assert decoded.public_key is pk  # key ring resolves to the live object
    assert decoded.shape == tensor.shape
    assert [e.ciphertext for e in decoded.data.ravel()] == [
        e.ciphertext for e in tensor.data.ravel()
    ]
    assert [e.exponent for e in decoded.data.ravel()] == [
        e.exponent for e in tensor.data.ravel()
    ]
    if values.size:
        np.testing.assert_array_equal(decoded.decrypt(sk), tensor.decrypt(sk))


def test_crypto_tensor_mixed_exponents_round_trip(keys):
    pk, sk = keys[128]
    a = CryptoTensor.encrypt(pk, np.ones((2, 2)), exponent=-40)
    b = CryptoTensor.encrypt(pk, np.ones((2, 2)), exponent=-20)
    mixed = CryptoTensor(pk, np.concatenate([a.data, b.data], axis=0))
    decoded = codec.decode_payload(codec.encode_payload(mixed), ring_for(pk))
    assert [e.exponent for e in decoded.data.ravel()] == [-40] * 4 + [-20] * 4
    np.testing.assert_array_equal(decoded.decrypt(sk), mixed.decrypt(sk))


def _layout(pk) -> SlotLayout:
    layout = protocol_layout(pk, mask_scale=2.0**16, acc_depth=1024)
    assert layout is not None
    return layout


def test_slot_layout_wire_tuple_round_trip(keys):
    pk, _ = keys[256]
    layout = _layout(pk)
    fields = layout.to_wire()
    assert fields == (
        layout.slot_bits,
        layout.slots,
        layout.key_bits,
        layout.base_value_bits,
        layout.acc_depth,
    )
    assert SlotLayout.from_wire(fields) == layout


@pytest.mark.parametrize("shape", [(2, 4), (3, 2), (1, 6), (5, 4)], ids=str)
@pytest.mark.parametrize("contiguous", [False, True], ids=["rows", "contig"])
def test_packed_tensor_round_trip(keys, shape, contiguous):
    pk, sk = keys[256]
    layout = _layout(pk)
    rng = np.random.default_rng(sum(shape))
    values = rng.normal(size=shape)
    tensor = PackedCryptoTensor.encrypt(pk, values, layout, contiguous=contiguous)
    decoded = codec.decode_payload(codec.encode_payload(tensor), ring_for(pk))
    assert decoded.public_key is pk
    assert decoded.cts == tensor.cts  # ciphertexts bit-identical
    assert decoded.shape == tensor.shape
    assert decoded.layout == tensor.layout
    assert decoded.contiguous == tensor.contiguous
    assert decoded.seg_cols == tensor.seg_cols
    assert decoded.exponent == tensor.exponent
    # value_bits crosses canonicalised to the layout constant the header
    # advertises — never the private magnitude-derived bound.
    assert decoded.value_bits == tensor.wire_value_bits
    assert decoded.value_bits in (layout.base_value_bits, layout.lane_cap_bits)
    np.testing.assert_array_equal(decoded.decrypt(sk), tensor.decrypt(sk))


def test_packed_tensor_segmented_reshape_survives_wire(keys):
    """A take_rows -> reshape pipeline's segment metadata crosses intact."""
    pk, sk = keys[256]
    layout = _layout(pk)
    table = PackedCryptoTensor.encrypt(
        pk, np.random.default_rng(5).normal(size=(6, 4)), layout
    )
    looked_up = table.take_rows(np.array([1, 3, 5, 0])).reshape(2, 8)
    decoded = codec.decode_payload(codec.encode_payload(looked_up), ring_for(pk))
    assert decoded.seg_cols == looked_up.seg_cols
    assert decoded.shape == (2, 8)
    np.testing.assert_array_equal(decoded.decrypt(sk), looked_up.decrypt(sk))


def test_encrypted_number_and_public_key_round_trip(keys):
    pk, sk = keys[192]
    enc = pk.encrypt(-3.75)
    decoded = codec.decode_payload(codec.encode_payload(enc), ring_for(pk))
    assert decoded.ciphertext == enc.ciphertext
    assert decoded.exponent == enc.exponent
    assert sk.decrypt(decoded) == -3.75
    key_back = codec.decode_payload(codec.encode_payload(pk))
    assert isinstance(key_back, PaillierPublicKey) and key_back == pk


def test_unknown_modulus_falls_back_to_fresh_key(keys):
    pk, sk = keys[128]
    tensor = CryptoTensor.encrypt(pk, np.ones((2, 2)))
    decoded = codec.decode_payload(codec.encode_payload(tensor), key_ring={})
    assert decoded.public_key is not pk and decoded.public_key == pk
    np.testing.assert_array_equal(decoded.decrypt(sk), tensor.decrypt(sk))


@pytest.mark.bigkey
def test_round_trip_at_production_key_size():
    """The 2048-bit production setting: same codec, same bit-fidelity."""
    pk, sk = generate_paillier_keypair(2048, seed=7)
    ring = ring_for(pk)
    values = np.random.default_rng(9).normal(size=(2, 36))
    tensor = CryptoTensor.encrypt(pk, values, obfuscate=False)
    decoded = codec.decode_payload(codec.encode_payload(tensor), ring)
    np.testing.assert_array_equal(decoded.decrypt(sk), tensor.decrypt(sk))
    layout = protocol_layout(pk, mask_scale=2.0**16, acc_depth=4096)
    assert layout.slots >= 16  # the ~18-lane production layout
    packed = PackedCryptoTensor.encrypt(pk, values, layout, obfuscate=False)
    back = codec.decode_payload(codec.encode_payload(packed), ring)
    assert back.cts == packed.cts
    np.testing.assert_array_equal(back.decrypt(sk), packed.decrypt(sk))
    # One 2048-bit ciphertext costs 512 wire bytes, as accounted.
    blob = codec.encode_payload(packed)
    _, _, body = codec.split_payload(blob)
    assert len(body) == packed.n_ciphertexts * 512


# ---------------------------------------------------------------------------
# Loud errors.


class _Opaque:
    pass


def test_unknown_payload_type_raises_loudly():
    with pytest.raises(codec.UnsupportedWireType, match="_Opaque"):
        codec.encode_payload(_Opaque())


def test_object_dtype_array_rejected(keys):
    pk, _ = keys[128]
    tensor = CryptoTensor.encrypt(pk, np.ones(2))
    with pytest.raises(codec.UnsupportedWireType, match="object-dtype"):
        codec.encode_payload(tensor.data)  # the raw object array, not the tensor


def test_serializing_channel_rejects_unknown_payloads():
    ch = SerializingChannel()
    with pytest.raises(codec.UnsupportedWireType):
        ch.send("A", "B", "t", _Opaque(), MessageKind.PUBLIC)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda f: f[:-1],  # truncated
        lambda f: b"XX" + f[2:],  # bad magic
        lambda f: f[:2] + bytes([99]) + f[3:],  # unknown version
        lambda f: f[:3] + bytes([0x7A]) + f[4:],  # unknown frame kind
        lambda f: f + b"\x00",  # trailing bytes
    ],
    ids=["truncated", "magic", "version", "frame-kind", "trailing"],
)
def test_malformed_frames_raise(mutate):
    frame = codec.encode_message(
        Message("A", "B", "t", MessageKind.PUBLIC, 1, seq=1)
    )
    with pytest.raises(codec.WireFormatError):
        codec.decode_message(mutate(frame))


def test_wrong_residue_count_raises(keys):
    pk, _ = keys[128]
    tensor = CryptoTensor.encrypt(pk, np.ones((2, 2)))
    blob = codec.encode_payload(tensor)
    with pytest.raises(codec.WireFormatError):
        codec.decode_payload(blob[:-16], ring_for(pk))


# ---------------------------------------------------------------------------
# payload_nbytes vs measured frames (the estimator-drift satellite).
#
# The estimator prices payload *bodies*; the codec adds framing (type byte,
# lengths, modulus, shapes, exponents).  For every payload type the body
# must match the estimate exactly, and the header must stay within a small
# bound that depends only on public structure (key size, shape rank), never
# on the data.

HEADER_ALLOWANCE = 96  # type byte + lengths + shape + layout + exponent slack


def _assert_reconciled(payload, pk=None):
    est = payload_nbytes(payload)
    blob = codec.encode_payload(payload)
    _, header, body = codec.split_payload(blob)
    assert len(body) == est
    key_overhead = ((pk.key_bits + 7) // 8 + 5) if pk is not None else 0
    assert len(blob) - est <= HEADER_ALLOWANCE + key_overhead


def test_estimator_matches_frames_for_arrays():
    _assert_reconciled(np.random.default_rng(0).normal(size=(7, 3)))
    _assert_reconciled(np.arange(11, dtype=np.int64))
    _assert_reconciled(np.zeros((0, 4)))


@pytest.mark.parametrize("bits", KEY_GRID)
def test_estimator_matches_frames_for_cipher_payloads(keys, bits):
    pk, _ = keys[bits]
    tensor = CryptoTensor.encrypt(pk, np.random.default_rng(1).normal(size=(4, 3)))
    _assert_reconciled(tensor, pk)
    _assert_reconciled(pk.encrypt(2.0), pk)


def test_estimator_matches_frames_for_packed_payloads(keys):
    pk, _ = keys[256]
    layout = _layout(pk)
    packed = PackedCryptoTensor.encrypt(
        pk, np.random.default_rng(2).normal(size=(4, 6)), layout
    )
    _assert_reconciled(packed, pk)
    contig = PackedCryptoTensor.encrypt(
        pk, np.random.default_rng(3).normal(size=(4, 6)), layout, contiguous=True
    )
    _assert_reconciled(contig, pk)


def test_serializing_channel_records_measured_bytes(keys):
    """The honest-bytes tier accounts len(frame), not the estimate."""
    pk, _ = keys[128]
    ch = SerializingChannel()
    ch.register_public_key(pk)
    tensor = CryptoTensor.encrypt(pk, np.ones((3, 2)))
    frame_len = len(
        codec.encode_message(
            Message("A", "B", "t", MessageKind.CIPHERTEXT, tensor, seq=1)
        )
    )
    ch.send("A", "B", "t", tensor, MessageKind.CIPHERTEXT)
    assert ch.bytes_by_sender["A"] == frame_len
    assert ch.total_bytes() > payload_nbytes(tensor)  # framing is real bytes
    received = ch.recv("B", "t")
    assert received.public_key is pk
    # In-memory tier on the same message still uses the estimator.
    mem = Channel()
    mem.send("A", "B", "t", tensor, MessageKind.CIPHERTEXT)
    assert mem.bytes_by_sender["A"] == payload_nbytes(tensor)
