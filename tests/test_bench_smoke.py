"""Tier-1 perf smoke: the kernel path must beat the legacy object path.

Runs the quick microbench gate from ``benchmarks/run_bench.py`` (sub-second
sizes) so a perf regression in the flat kernels fails ``pytest -x -q``
directly, and checks the emitted benchmark JSON is well-formed.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import run_bench  # noqa: E402  (path bootstrap above)


def test_kernel_path_not_slower_than_legacy():
    results = run_bench.check()
    # Every gated primitive must clear the margin (check() raised otherwise);
    # spot-check the numbers are sane, not just present.
    for entry in results["matmul_plain_cipher"]:
        assert entry["kernel_s"] > 0
        assert entry["speedup_kernel"] >= run_bench.MIN_SPEEDUP
    assert results["sparse_matmul"]["fwd_speedup"] >= run_bench.MIN_SPEEDUP
    assert results["sparse_matmul"]["bwd_speedup"] >= run_bench.MIN_SPEEDUP


def test_bench_json_roundtrips(tmp_path):
    import bench_kernels

    out = tmp_path / "BENCH_kernels.json"
    rc = bench_kernels.main(
        ["--quick", "--key-bits", "128", "--workers", "0", "--out", str(out)]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["meta"]["key_bits"] == 128
    assert payload["matmul_plain_cipher"]
    assert payload["scatter_add"]["speedup_kernel"] > 0


def test_packing_gate_holds():
    """Packed encrypt must beat per-element; 2048-bit grid must clear 5x."""
    results = run_bench.check_packing()
    assert results["encrypt"]["speedup_packed"] >= run_bench.MIN_PACKED_ENCRYPT_SPEEDUP
    production = [
        row
        for row in results["bandwidth"]
        if row["key_bits"] == 2048 and (row["rows"], row["cols"]) == (32, 64)
    ]
    assert production, "the 32x64 @ 2048-bit acceptance row must be in the grid"
    assert production[0]["ct_reduction"] >= run_bench.MIN_PRODUCTION_REDUCTION
    assert production[0]["byte_reduction"] >= run_bench.MIN_PRODUCTION_REDUCTION
    # The packed embedding backward acceptance rows: >= 2x fewer lkup_bw
    # ciphertexts at the bench key, slots-fold at the production key.
    lkup = {row["key_bits"]: row for row in results["lkup_bw"]}
    assert run_bench.PACKING_KEY_BITS in lkup and 2048 in lkup
    for row in lkup.values():
        assert row["ct_reduction"] >= run_bench.MIN_LKUP_BW_REDUCTION
        assert row["lkup_ct_reduction"] >= run_bench.MIN_LKUP_BW_REDUCTION
    # Row-aligned table lanes cap the reduction at emb_dim / ceil(emb_dim /
    # slots); at 2048-bit production slots the whole row fits one ciphertext.
    assert lkup[2048]["ct_reduction"] == lkup[2048]["emb_dim"]


def test_bench_packing_json_roundtrips(tmp_path):
    import bench_packing

    out = tmp_path / "BENCH_packing.json"
    rc = bench_packing.main(["--quick", "--key-bits", "256", "--out", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["meta"]["key_bits"] == 256
    assert payload["meta"]["slots"] >= 2
    assert payload["encrypt"]["packed_cts"] < payload["encrypt"]["unpacked_cts"]
    assert payload["bandwidth"]


def test_decrypt_gate_holds():
    """Decrypt-engine counting gates: bit-identity across paths, λ-blinding
    bit-work ≥ 4x, packed decrypt ≥ slot-fold fewer CRT pows.

    All assertions are counting-only — the 1-CPU CI box cannot show a
    parallel wall-clock win, so timed rows stay informational.
    """
    results = run_bench.check_decrypt()
    bl = results["blinding"]
    assert bl["bitwork_reduction"] >= run_bench.MIN_BLINDING_BITWORK_REDUCTION
    assert bl["blinders_valid"]
    # The acceptance criterion: λ-shortcut refill beats r^n refills by ≥ 4x
    # in pow bit-work at the 256-bit bench key (and at the production key).
    assert bl["key_bits"] == 256
    pr = results["blinding_production"]
    assert pr["key_bits"] == 2048 and pr["blinding_lambda"] == 128
    assert pr["bitwork_reduction"] >= run_bench.MIN_BLINDING_BITWORK_REDUCTION
    pd = results["packed_decrypt"]
    assert pd["crt_pow_reduction"] >= run_bench.MIN_PACKED_DECRYPT_REDUCTION
    assert pd["packed_cts"] < pd["unpacked_cts"]
    for entry in results["decrypt_flat"]:
        assert entry["legacy_matches_kernel"]
        if "parallel_workers" in entry:
            assert entry["parallel_matches_serial"]


def test_transport_gate_holds():
    """Retransmission-overhead gate: at fault rate 0 the reliability layer
    counts nothing — zero retransmits, zero NAKs, zero duplicates, zero
    extra frames, exactly one fixed envelope per codec frame — and the
    seeded faulted row still delivers every frame with its recovery
    traffic visible in the counters."""
    results = run_bench.check_transport()
    env = results["meta"]["env_overhead"]
    for row in results["clean"]:
        for side in ("sender", "receiver"):
            stats = row[side]
            assert stats["retransmits"] == 0
            assert stats["naks_sent"] == 0
            assert stats["duplicates_dropped"] == 0
            assert stats["retransmits"] + stats["naks_sent"] + stats["resumes"] == 0
            assert stats["envelope_bytes"] == stats["data_sent"] * env
    faulted = results["faulted"]
    assert faulted["echoed"] == faulted["rounds"]
    assert faulted["sender"]["retransmits"] + faulted["receiver"]["naks_sent"] > 0


def test_bench_transport_json_roundtrips(tmp_path):
    import bench_transport

    out = tmp_path / "BENCH_transport.json"
    rc = bench_transport.main(["--quick", "--out", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["meta"]["env_overhead"] == 27
    assert payload["clean"] and payload["faulted"]["fault_plan"]["events"] > 0
    # The cross-process row reads its counters from run_two_party's
    # link_stats return value, not a side channel.
    assert payload["two_party"]["guest"]["data_sent"] >= payload["two_party"]["rounds"]


def test_fabric_gate_holds():
    """Fabric gate: blocking and pipelined 3-endpoint runs bit-identical
    to the in-memory reference, clean per-peer link ledgers with exact
    envelope accounting, star grid around the key owner.  Counting-only —
    wall clock and overlap seconds stay informational."""
    results = run_bench.check_fabric()
    for mode in ("blocking", "pipelined"):
        row = results[mode]
        assert row["losses_match_memory"] and row["pieces_match_memory"]
        for role, per_peer in row["link_stats"].items():
            for ledger in per_peer.values():
                assert all(ledger[c] == 0 for c in run_bench.FABRIC_CLEAN_ZERO)
                assert ledger["envelope_bytes"] == (
                    ledger["data_sent"] + ledger["fins"]
                ) * results["meta"]["env_overhead"]
        assert set(row["link_stats"]["ep_b"]) == {"ep_a1", "ep_a2"}
    assert results["blocking"]["losses"] == results["pipelined"]["losses"]


def test_bench_fabric_json_roundtrips(tmp_path):
    import bench_fabric

    out = tmp_path / "BENCH_fabric.json"
    rc = bench_fabric.main(["--quick", "--out", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["meta"]["steps"] == 3
    assert payload["blocking"]["losses_match_memory"] is True
    assert payload["pipelined"]["losses_match_memory"] is True
    assert payload["pipelined"]["pieces_match_memory"] is True
    assert payload["n_spans_merged"] > 0
    # The pipelined row's traces merged into one comparable axis; overlap
    # is informational but must at least be a finite non-negative number.
    assert payload["overlap_s"] >= 0.0


def test_trace_gate_holds():
    """Telemetry gate: traced counters reconcile exactly with the channel's
    own ledgers, seeded runs trace identically, the packing fold is visible
    in ``ct.encrypted``, and a clean traced link mirrors its LinkStats with
    zero reliability events.  Counting-only — no wall clock is gated."""
    results = run_bench.check_trace()
    up, rep, pk = (
        results["unpacked"], results["unpacked_repeat"], results["packed"]
    )
    assert up["totals"] == rep["totals"]
    assert up["skeleton"] == rep["skeleton"]
    assert pk["totals"]["ct.encrypted"] < up["totals"]["ct.encrypted"]
    assert "ct.packed" in pk["totals"] and "ct.packed" not in up["totals"]
    for row in (up, pk):
        assert row["totals"]["bytes.sent"] == sum(row["bytes_by_sender"].values())
        assert row["totals"]["frames.sent"] == row["n_messages"]
    link = results["clean_link"]
    assert link["totals"]["link.data_sent"] == 2 * link["rounds"]
    assert all(
        link["totals"].get(f"link.{c}", 0) == 0
        for c in run_bench.bench_trace.LINK_RELIABILITY_EVENTS
    )


def test_bench_trace_json_roundtrips(tmp_path):
    import bench_trace

    out = tmp_path / "BENCH_trace.json"
    rc = bench_trace.main(["--quick", "--out", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["meta"]["key_bits"] == 256
    assert payload["unpacked"]["n_spans"] > 0
    assert payload["unpacked"]["fold"]["rows"]
    assert payload["packed"]["totals"]["ct.packed"] > 0
    assert payload["clean_link"]["totals"]["link.data_sent"] > 0


def test_analysis_gate_holds():
    """Static-invariant gate: the tree lints clean under repro.analysis and
    every rule still flags its known-bad probe.  Counting-only — the sweep
    is stdlib ast over the source tree, no timing is gated."""
    results = run_bench.check_analysis()
    assert tuple(results["rules_registered"]) == run_bench.ANALYSIS_RULES
    assert results["files_scanned"] >= run_bench.MIN_ANALYSIS_FILES
    assert results["zero_findings"] and results["findings"] == 0
    assert all(row["detected"] for row in results["detection"].values())


def test_bench_analysis_json_roundtrips(tmp_path):
    import bench_analysis

    out = tmp_path / "BENCH_analysis.json"
    rc = bench_analysis.main(["--quick", "--out", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["zero_findings"] is True
    assert payload["findings_by_rule"] == {
        code: 0 for code in run_bench.ANALYSIS_RULES
    }
    assert payload["wall_s"] > 0


def test_bench_decrypt_json_roundtrips(tmp_path):
    import bench_decrypt

    out = tmp_path / "BENCH_decrypt.json"
    rc = bench_decrypt.main(
        ["--quick", "--key-bits", "256", "--workers", "0", "--out", str(out)]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["meta"]["key_bits"] == 256
    assert payload["decrypt_flat"]
    assert payload["blinding"]["bitwork_old"] > payload["blinding"]["bitwork_new"]
    assert payload["packed_decrypt"]["crt_pow_reduction"] >= 2.0
