"""Decrypt-engine equivalence: parallel CRT decryption must be bit-identical
to serial on every path, and the λ-exponent blinding pool must produce valid
re-randomisations, across key sizes.

The private worker tier receives the key owner's CRT constants through the
pool initializer and mirrors ``raw_decrypt`` exactly, so every assertion
here is bit-level (``np.array_equal`` on decoded floats, ``==`` on raw
residues) — never ``allclose``.  The custody properties themselves (private
keys are unpicklable, the codec refuses them) live in
``tests/test_security_properties.py``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.crypto import kernels
from repro.crypto.crypto_tensor import CryptoTensor, TENSOR_EXPONENT
from repro.crypto.packing import PackedCryptoTensor, protocol_layout
from repro.crypto.paillier import PaillierPublicKey, generate_paillier_keypair
from repro.crypto.parallel import ParallelContext, use_parallel

KEY_BITS = [128, 192, 256]


@pytest.fixture(scope="module", params=KEY_BITS)
def sized_keypair(request):
    return generate_paillier_keypair(request.param, seed=2000 + request.param)


@pytest.fixture(scope="module")
def parallel_ctx():
    """A 2-worker context with the dispatch gate forced open."""
    with ParallelContext(workers=2, min_jobs=1) as ctx:
        yield ctx


# ---------------------------------------------------------------------------
# Serial vs parallel CRT decryption.


def test_crt_decrypt_many_matches_raw_decrypt(sized_keypair):
    pk, sk = sized_keypair
    rng = np.random.default_rng(0)
    cts = kernels.encrypt_flat(pk, rng.normal(size=40), TENSOR_EXPONENT)
    batched = kernels.crt_decrypt_many(sk, cts)
    assert batched == [sk.raw_decrypt(c) for c in cts]


def test_decrypt_flat_parallel_bit_identical(sized_keypair, parallel_ctx):
    pk, sk = sized_keypair
    rng = np.random.default_rng(1)
    values = rng.normal(size=(6, 7))
    cts = kernels.encrypt_flat(pk, values.ravel(), TENSOR_EXPONENT)
    serial = kernels.decrypt_flat(sk, cts, TENSOR_EXPONENT)
    parallel = kernels.decrypt_flat(sk, cts, TENSOR_EXPONENT, parallel_ctx)
    assert np.array_equal(serial, parallel)
    np.testing.assert_allclose(serial, values.ravel(), atol=2.0**TENSOR_EXPONENT)


def test_decrypt_flat_parallel_ragged_exponents(sized_keypair, parallel_ctx):
    """Per-element exponents (post mul-by-one tensors) shard identically."""
    pk, sk = sized_keypair
    rng = np.random.default_rng(2)
    values = rng.normal(size=12)
    exps = [TENSOR_EXPONENT - (i % 3) * 8 for i in range(12)]
    cts = [
        kernels.encrypt_flat(pk, np.array([v]), e)[0] for v, e in zip(values, exps)
    ]
    serial = kernels.decrypt_flat(sk, cts, exps)
    parallel = kernels.decrypt_flat(sk, cts, exps, parallel_ctx)
    assert np.array_equal(serial, parallel)


def test_tensor_decrypt_uses_default_context(sized_keypair, parallel_ctx):
    """``CryptoTensor.decrypt`` resolves the installed process default."""
    pk, sk = sized_keypair
    rng = np.random.default_rng(3)
    values = rng.normal(size=(4, 5))
    tensor = CryptoTensor.encrypt(pk, values, obfuscate=True)
    serial = tensor.decrypt(sk)
    with use_parallel(ParallelContext(workers=2, min_jobs=1)):
        via_default = tensor.decrypt(sk)
    assert np.array_equal(serial, via_default)


def test_packed_decrypt_parallel_bit_identical(sized_keypair, parallel_ctx):
    """Packed borrow-split decode after a parallel CRT pass is bit-equal."""
    pk, sk = sized_keypair
    layout = protocol_layout(pk, mask_scale=2.0**16, acc_depth=16)
    if layout is None:
        pytest.skip("key too small for two slots")
    rng = np.random.default_rng(4)
    values = rng.normal(size=(5, 6))
    packed = PackedCryptoTensor.encrypt(pk, values, layout, obfuscate=True)
    serial = packed.decrypt(sk)
    parallel = packed.decrypt(sk, parallel=parallel_ctx)
    assert np.array_equal(serial, parallel)
    # And the packed decode agrees bit-for-bit with the per-element path.
    unpacked = CryptoTensor.encrypt(pk, values, obfuscate=False).decrypt(sk)
    assert np.array_equal(serial, unpacked)


def test_unpack_batches_the_decrypt_loop(sized_keypair, parallel_ctx):
    """``unpack`` (the per-ciphertext raw_decrypt fallback) now routes
    through ``crt_decrypt_many`` — serial and parallel must round-trip to
    the identical per-element tensor."""
    pk, sk = sized_keypair
    layout = protocol_layout(pk, mask_scale=2.0**16, acc_depth=16)
    if layout is None:
        pytest.skip("key too small for two slots")
    rng = np.random.default_rng(5)
    values = rng.normal(size=(3, 5))
    tensor = CryptoTensor.encrypt(pk, values, obfuscate=False)
    packed = tensor.pack(layout)
    serial = packed.unpack(sk)
    parallel = packed.unpack(sk, parallel=parallel_ctx)
    assert all(
        a.ciphertext == b.ciphertext and a.exponent == b.exponent
        for a, b in zip(serial.data.ravel(), parallel.data.ravel())
    )
    assert np.array_equal(serial.decrypt(sk), tensor.decrypt(sk))


@pytest.mark.bigkey
def test_decrypt_parallel_bit_identical_production_key():
    """The 2048-bit acceptance case (opt in with ``pytest -m bigkey``)."""
    pk, sk = generate_paillier_keypair(2048, seed=4048)
    rng = np.random.default_rng(6)
    values = rng.normal(size=16)
    cts = kernels.encrypt_flat(pk, values, TENSOR_EXPONENT)
    with ParallelContext(workers=2, min_jobs=1) as ctx:
        assert np.array_equal(
            kernels.decrypt_flat(sk, cts, TENSOR_EXPONENT),
            kernels.decrypt_flat(sk, cts, TENSOR_EXPONENT, ctx),
        )
    layout = protocol_layout(pk, mask_scale=2.0**16, acc_depth=4096)
    packed = PackedCryptoTensor.encrypt(
        pk, values.reshape(2, 8), layout, obfuscate=True
    )
    with ParallelContext(workers=2, min_jobs=1) as ctx:
        assert np.array_equal(packed.decrypt(sk), packed.decrypt(sk, parallel=ctx))


# ---------------------------------------------------------------------------
# λ-exponent blinding pool.


def test_lambda_pool_ciphertexts_decrypt_identically(sized_keypair):
    """Pool-drawn λ blinders re-randomise without changing any decode."""
    pk, sk = sized_keypair
    assert pk.blinding_lambda > 0  # the new default
    rng = np.random.default_rng(7)
    values = rng.normal(size=(4, 4))
    pk.prefill_blinding(values.size)
    blinded = CryptoTensor.encrypt(pk, values, obfuscate=True)
    nude = CryptoTensor.encrypt(pk, values, obfuscate=False)
    assert np.array_equal(blinded.decrypt(sk), nude.decrypt(sk))
    # Re-randomised: every ciphertext differs from its unobfuscated twin.
    assert all(
        a.ciphertext != b.ciphertext
        for a, b in zip(blinded.data.ravel(), nude.data.ravel())
    )


def test_lambda_pool_stream_same_pooled_or_on_demand():
    """A seeded key draws the identical blinder stream either way."""
    n = generate_paillier_keypair(128, seed=77)[0].n
    pooled = PaillierPublicKey(n, rng=random.Random(5), blinding_lambda=128)
    pooled.prefill_blinding(6)
    on_demand = PaillierPublicKey(n, rng=random.Random(5), blinding_lambda=128)
    assert [pooled._random_blinding() for _ in range(6)] == [
        on_demand._random_blinding() for _ in range(6)
    ]


def test_lambda_blinders_are_nth_powers(sized_keypair):
    """Every λ blinder is a valid obfuscation factor: Enc(0)*b decrypts to 0."""
    pk, sk = sized_keypair
    for b in pk.blinding_factors(8):
        assert sk.raw_decrypt(b) == 0


def test_classic_mode_still_available(sized_keypair):
    """``blinding_lambda=0`` restores the fresh-r^n-per-blinder behaviour."""
    pk, sk = sized_keypair
    classic = PaillierPublicKey(pk.n, rng=random.Random(9), blinding_lambda=0)
    for b in classic.blinding_factors(4):
        assert sk.raw_decrypt(b) == 0
    assert classic.blinding_bitwork(10) == 10 * pk.key_bits
    fast = PaillierPublicKey(pk.n, rng=random.Random(9), blinding_lambda=32)
    assert fast.blinding_bitwork(10) == 10 * 32 + pk.key_bits  # one-time h
    fast._ensure_h()
    assert fast.blinding_bitwork(10) == 10 * 32  # h amortised away


def test_set_blinding_lambda_flips_mode(sized_keypair):
    pk, sk = sized_keypair
    key = PaillierPublicKey(pk.n, rng=random.Random(11), blinding_lambda=0)
    key.prefill_blinding(2)
    key.set_blinding_lambda(64)
    # Pooled classic blinders drain first, then λ blinders follow — all
    # stay valid encryption-of-zero factors.
    for b in key.blinding_factors(5):
        assert sk.raw_decrypt(b) == 0
    with pytest.raises(ValueError):
        key.set_blinding_lambda(-1)


def test_parallel_lambda_refill_bit_identical(sized_keypair, parallel_ctx):
    """Pool refills shard across workers without changing the stream."""
    pk, _ = sized_keypair
    serial_key = PaillierPublicKey(pk.n, rng=random.Random(13), blinding_lambda=64)
    parallel_key = PaillierPublicKey(pk.n, rng=random.Random(13), blinding_lambda=64)
    serial = serial_key._compute_blinders(8, None)
    parallel = parallel_key._compute_blinders(8, parallel_ctx)
    assert serial == parallel
