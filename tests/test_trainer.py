"""Tests for the training driver, config and history bookkeeping."""

import numpy as np
import pytest

from repro.comm.party import VFLConfig, VFLContext
from repro.core.models import FederatedLR
from repro.core.trainer import (
    History,
    TrainConfig,
    batch_of,
    evaluate_federated,
    predict,
    train_federated,
)
from repro.data.partition import split_vertical
from repro.data.synthetic import make_dense_classification

KEY_BITS = 128


@pytest.fixture(scope="module")
def small_vertical():
    full = make_dense_classification(120, 8, seed=55, flip=0.02, nonlinear=False)
    return split_vertical(full.subset(np.arange(80))), split_vertical(
        full.subset(np.arange(80, 120))
    )


def make_model():
    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=23)
    return FederatedLR(ctx, 4, 4)


def test_history_counts_losses_and_epochs(small_vertical):
    train_vd, test_vd = small_vertical
    cfg = TrainConfig(epochs=2, batch_size=16, lr=0.1, momentum=0.0)
    history = train_federated(make_model(), train_vd, cfg, test_data=test_vd)
    assert len(history.losses) == 2 * (80 // 16)
    assert len(history.epoch_metrics) == 2
    assert history.metric_name == "auc"
    assert history.final_metric == history.epoch_metrics[-1]


def test_max_batches_per_epoch_caps_iterations(small_vertical):
    train_vd, _ = small_vertical
    cfg = TrainConfig(epochs=2, batch_size=16, lr=0.1)
    history = train_federated(
        make_model(), train_vd, cfg, max_batches_per_epoch=2
    )
    assert len(history.losses) == 4
    assert history.epoch_metrics == []  # no test set given


def test_predict_covers_every_row_in_order(small_vertical):
    train_vd, test_vd = small_vertical
    model = make_model()
    scores = predict(model, test_vd, batch_size=16)
    assert scores.shape == (test_vd.n, 1)
    # Deterministic: same inputs -> same outputs (inference has fresh masks
    # internally, but they cancel exactly in the aggregated Z).
    scores2 = predict(model, test_vd, batch_size=40)
    np.testing.assert_allclose(scores, scores2, atol=1e-5)


def test_evaluate_multiclass_metric_name():
    full = make_dense_classification(60, 6, n_classes=3, seed=56)
    vd = split_vertical(full)
    from repro.core.models import FederatedMLR

    ctx = VFLContext(VFLConfig(key_bits=KEY_BITS), seed=24)
    model = FederatedMLR(ctx, 3, 3, n_classes=3)
    metrics = evaluate_federated(model, vd)
    assert set(metrics) == {"accuracy"}
    assert 0.0 <= metrics["accuracy"] <= 1.0


def test_train_config_defaults_match_paper():
    cfg = TrainConfig()
    assert cfg.lr == 0.05
    assert cfg.batch_size == 128
    assert cfg.momentum == 0.9
    assert cfg.epochs == 10


def test_batch_of_caps_at_dataset_size(small_vertical):
    train_vd, _ = small_vertical
    batch = batch_of(train_vd, 10_000, seed=1)
    assert batch.size == train_vd.n


def test_history_dataclass_defaults():
    h = History(metric_name="auc")
    assert h.losses == [] and h.epoch_metrics == []
    with pytest.raises(IndexError):
        _ = h.final_metric  # no epochs recorded yet


def test_blinding_lambda_override_flips_party_keys(small_vertical):
    """``TrainConfig.blinding_lambda`` reconfigures every party key for the
    run (0 = classic r^n blinders) without changing what training computes."""
    train_vd, _ = small_vertical
    model = make_model()
    keys = [p.public_key for ctx in model.federation_contexts()
            for p in ctx.parties.values()]
    assert all(k.blinding_lambda > 0 for k in keys)  # the build default
    cfg = TrainConfig(epochs=1, batch_size=16, lr=0.1, blinding_lambda=0)
    history = train_federated(model, train_vd, cfg, max_batches_per_epoch=2)
    assert all(k.blinding_lambda == 0 for k in keys)
    assert len(history.losses) == 2 and np.isfinite(history.losses).all()
    # And back to the λ-shortcut mid-life: pooled blinders stay valid.
    cfg = TrainConfig(epochs=1, batch_size=16, lr=0.1, blinding_lambda=64,
                      blinding_pool_per_epoch=8)
    history = train_federated(model, train_vd, cfg, max_batches_per_epoch=2)
    assert all(k.blinding_lambda == 64 for k in keys)
    assert np.isfinite(history.losses).all()
