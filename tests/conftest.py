"""Shared fixtures: short Paillier keys and federation contexts.

Key sizes here are deliberately small (fast pure-Python arithmetic); the
protocols are key-size agnostic and a couple of tests exercise larger keys
explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.party import VFLConfig, VFLContext
from repro.crypto.paillier import generate_paillier_keypair

TEST_KEY_BITS = 128


@pytest.fixture(scope="session")
def keypair():
    """A session-wide short key pair for crypto unit tests."""
    return generate_paillier_keypair(TEST_KEY_BITS, seed=42)


@pytest.fixture(scope="session")
def second_keypair():
    return generate_paillier_keypair(TEST_KEY_BITS, seed=43)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


@pytest.fixture()
def ctx():
    """A fresh two-party federation with short keys per test."""
    return VFLContext(VFLConfig(key_bits=TEST_KEY_BITS), seed=11)
