"""Shared fixtures: short Paillier keys and federation contexts.

Key sizes here are deliberately small (fast pure-Python arithmetic); the
protocols are key-size agnostic and a couple of tests exercise larger keys
explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.party import VFLConfig, VFLContext
from repro.crypto.paillier import generate_paillier_keypair

TEST_KEY_BITS = 128


@pytest.fixture(scope="session")
def keypair():
    """A session-wide short key pair for crypto unit tests."""
    return generate_paillier_keypair(TEST_KEY_BITS, seed=42)


@pytest.fixture(scope="session")
def second_keypair():
    return generate_paillier_keypair(TEST_KEY_BITS, seed=43)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


@pytest.fixture(params=["memory", "serializing"])
def ctx(request):
    """A fresh two-party federation with short keys per test.

    Parametrised over the two in-process channel tiers, so every protocol
    test that runs through this fixture also proves the codec round-trip
    is a drop-in: with ``"serializing"`` each payload crosses the party
    boundary as honest bytes (encode -> decode on every send).
    """
    return VFLContext(
        VFLConfig(key_bits=TEST_KEY_BITS, channel=request.param), seed=11
    )
