"""Setuptools shim.

The runtime environment has no network access and no ``wheel`` package, so
pip's PEP-517 editable path (which builds a wheel) is unavailable.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` fall
back to the classic ``setup.py develop`` flow, and is the single source of
packaging metadata (there is deliberately no ``pyproject.toml``).

The ``[fast]`` extra pulls in gmpy2, which the crypto substrate uses as an
optional GMP-backed fast path for modular exponentiation and inversion
(see :mod:`repro.crypto.math_utils`); without it the pure-python
implementations are used automatically.

The ``[lint]`` extra is intentionally empty: the ``blindfl-lint`` console
script (:mod:`repro.analysis`) is pure stdlib ``ast``/``tokenize``, so
installing the extra just documents intent — there is nothing to pull in.
"""

from setuptools import find_packages, setup

setup(
    name="blindfl-repro",
    packages=find_packages("src"),
    package_dir={"": "src"},
    entry_points={
        "console_scripts": [
            "blindfl-lint = repro.analysis.__main__:main",
        ],
    },
    extras_require={
        "fast": ["gmpy2>=2.1"],
        "lint": [],
    },
)
