"""Setuptools shim.

The runtime environment has no network access and no ``wheel`` package, so
pip's PEP-517 editable path (which builds a wheel) is unavailable.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` fall
back to the classic ``setup.py develop`` flow.  All metadata lives in
``pyproject.toml``.

The ``[fast]`` extra pulls in gmpy2, which the crypto substrate uses as an
optional GMP-backed fast path for modular exponentiation and inversion
(see :mod:`repro.crypto.math_utils`); without it the pure-python
implementations are used automatically.
"""

from setuptools import setup

setup(
    extras_require={
        "fast": ["gmpy2>=2.1"],
    },
)
