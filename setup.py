"""Setuptools shim.

The runtime environment has no network access and no ``wheel`` package, so
pip's PEP-517 editable path (which builds a wheel) is unavailable.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` fall
back to the classic ``setup.py develop`` flow.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
