"""The MatMul federated source layer — Figure 6 of the paper.

Computes ``Z = X_A @ W_A + X_B @ W_B`` where neither party ever sees either
weight matrix, any unaggregated activation (``X_A W_A`` / ``X_B W_B``), or
any model gradient, satisfying every restriction of Table 2:

* weights are secretly shared at initialisation: ``W_x = U_x + V_x`` with
  ``U_x`` at the owner and ``V_x`` at the peer, and each party caches the
  *encrypted* peer piece ``[[V_own]]`` under the peer's key;
* the forward pass turns ``X [[V]]`` into shares via HE2SS (Alg. 1) so the
  obfuscation terms cancel exactly — the layer is lossless;
* the backward pass ships ``[[grad_Z]]`` to Party A, produces the secretly
  shared gradient ``<phi, grad_W_A - phi>``, and updates both pieces in the
  complementary way ``(U - lr*phi) + (V - lr*(grad_W - phi))``, so
  ``grad_W_A`` is never reconstructed anywhere.

Two refresh modes keep Party A's cached ``[[V_A]]`` consistent after Party
B updates its plaintext ``V_A`` (see ``VFLConfig.share_refresh``):
``"reencrypt"`` resends the full tensor (faithful to Figure 6);
``"delta"`` exploits sparsity — only coordinates touched by the batch are
masked, shared and refreshed, making per-iteration crypto cost O(nnz)
(the Table 5 scaling; the column support becomes visible to Party B,
a tradeoff documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.message import MessageKind
from repro.comm.party import VFLContext
from repro.crypto.crypto_tensor import (
    CryptoTensor,
    matmul_plain_cipher,
    sparse_matmul_cipher,
    sparse_t_matmul_cipher,
)
from repro.crypto.packing import PackedCryptoTensor
from repro.crypto.parallel import ParallelContext
from repro.crypto.secret_sharing import he2ss_receive
from repro.core.federated import FederatedParameter, SourceLayer
from repro.obs import tracer as _obs
from repro.tensor.sparse import CSRMatrix

__all__ = ["MatMulSource", "matmul_any"]


def _batch_rows(x: object) -> int:
    """Row count of a dense or CSR batch (tolerates plain sequences)."""
    shape = getattr(x, "shape", None)
    if shape is not None:
        return int(shape[0])
    return int(np.asarray(x).shape[0])


def matmul_any(x: np.ndarray | CSRMatrix, w: np.ndarray) -> np.ndarray:
    """``x @ w`` for dense or CSR ``x`` (plaintext, local to one party)."""
    if isinstance(x, CSRMatrix):
        return x.matmul_dense(w)
    return np.asarray(x, dtype=np.float64) @ w


def t_matmul_any(x: np.ndarray | CSRMatrix, g: np.ndarray) -> np.ndarray:
    """``x.T @ g`` for dense or CSR ``x``."""
    if isinstance(x, CSRMatrix):
        return x.t_matmul_dense(g)
    return np.asarray(x, dtype=np.float64).T @ g


def _matmul_cipher(
    x: np.ndarray | CSRMatrix,
    ct: CryptoTensor | PackedCryptoTensor,
    parallel: ParallelContext | None = None,
) -> CryptoTensor | PackedCryptoTensor:
    """``x @ [[v]]`` for dense or CSR ``x`` (homomorphic).

    A packed ``[[v]]`` (lanes along the output dimension) yields a packed
    product: each plaintext entry scales a whole row segment with one
    exponentiation, the slot-count saving of the packing subsystem.
    """
    if isinstance(x, CSRMatrix):
        return sparse_matmul_cipher(x, ct, parallel=parallel)
    return matmul_plain_cipher(np.asarray(x, dtype=np.float64), ct, parallel=parallel)


def _t_matmul_cipher(
    x: np.ndarray | CSRMatrix,
    ct: CryptoTensor,
    columns: np.ndarray | None = None,
    parallel: ParallelContext | None = None,
) -> CryptoTensor:
    """``x.T @ [[g]]`` for dense or CSR ``x`` (homomorphic)."""
    if isinstance(x, CSRMatrix):
        return sparse_t_matmul_cipher(x, ct, columns=columns, parallel=parallel)
    if columns is not None:
        x = np.asarray(x)[:, columns]
    return matmul_plain_cipher(np.asarray(x, dtype=np.float64).T, ct, parallel=parallel)


@dataclass
class _PieceState:
    """One party's piece holdings for this layer."""

    u: np.ndarray  # own piece of own weights
    v_peer: np.ndarray  # plaintext piece of the *peer's* weights
    enc_v_own: CryptoTensor | PackedCryptoTensor  # [[V_own]] under the peer's key
    # Velocity buffers are derived from the pieces in __post_init__; they
    # are never constructor arguments and never None after construction.
    vel_u: np.ndarray = field(init=False)
    vel_v_peer: np.ndarray = field(init=False)
    x_cache: object = None
    pending: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.vel_u = np.zeros_like(self.u)
        self.vel_v_peer = np.zeros_like(self.v_peer)


class MatMulSource(SourceLayer):
    """Federated ``Z = X_A W_A + X_B W_B`` for numerical features."""

    def __init__(
        self,
        ctx: VFLContext,
        in_a: int,
        in_b: int,
        out_dim: int,
        init_scale: float = 0.05,
        name: str = "matmul",
        parallel: ParallelContext | None = None,
    ):
        if min(in_a, in_b, out_dim) <= 0:
            raise ValueError("dimensions must be positive")
        self.ctx = ctx
        self.name = name
        # Multicore execution engine for this layer's kernels; None falls
        # back to the process default (see repro.crypto.parallel).
        self.parallel = parallel
        self.in_a, self.in_b, self.out_dim = in_a, in_b, out_dim
        self._step = 0
        cfg = ctx.config
        self._cfg = cfg
        a, b, ch = ctx.A, ctx.B, ctx.channel
        piece_std = init_scale / np.sqrt(2.0)
        # Figure 6 lines 1-4: A draws U_A and V_B; B draws U_B and V_A; each
        # encrypts the V piece it drew under its *own* key and ships it.
        # With packing on, the V pieces travel (and are later consumed by
        # the forward matmul) with ``slots`` lanes per ciphertext.
        u_a = a.rng.normal(0.0, piece_std, size=(in_a, out_dim))
        v_b = a.rng.normal(0.0, piece_std, size=(in_b, out_dim))
        u_b = b.rng.normal(0.0, piece_std, size=(in_b, out_dim))
        v_a = b.rng.normal(0.0, piece_std, size=(in_a, out_dim))
        ch.send(
            a.name, b.name, f"{name}.init.encV_B",
            self._encrypt_piece(a.public_key, v_b),
            MessageKind.CIPHERTEXT,
        )
        ch.send(
            b.name, a.name, f"{name}.init.encV_A",
            self._encrypt_piece(b.public_key, v_a),
            MessageKind.CIPHERTEXT,
        )
        enc_v_a = ch.recv(a.name, f"{name}.init.encV_A")
        enc_v_b = ch.recv(b.name, f"{name}.init.encV_B")
        self._a = _PieceState(u=u_a, v_peer=v_b, enc_v_own=enc_v_a)
        self._b = _PieceState(u=u_b, v_peer=v_a, enc_v_own=enc_v_b)

    # ------------------------------------------------------------------ packing

    def _packing_contraction(self) -> int:
        return max(self.in_a, self.in_b, 2)

    # ------------------------------------------------------------------ forward

    def forward(
        self,
        x_a: np.ndarray | CSRMatrix,
        x_b: np.ndarray | CSRMatrix,
        train: bool = True,
    ) -> np.ndarray:
        """Figure 6 lines 5-8; returns Z at Party B."""
        self._step += 1
        tag = f"{self.name}.{self._step}"
        with _obs.span("fw_transfer", tag=tag):
            ctx, cfg = self.ctx, self._cfg
            a, b, ch = ctx.A, ctx.B, ctx.channel
            # The backward transfer contracts over the batch dimension; a
            # batch deeper than the packed layouts budgeted for must fail
            # loudly now.  Inference passes never run that contraction, so
            # they are exempt.
            if train:
                self._check_packing_depth(_batch_rows(x_a))
                self._a.x_cache = x_a
                self._b.x_cache = x_b
            # Line 5-6 at A: [[X_A V_A]] -> <eps_A, X_A V_A - eps_A>.
            ct_a = _matmul_cipher(x_a, self._a.enc_v_own, parallel=self.parallel)
            eps_a = self._he2ss(ct_a, a, "B", f"{tag}.fwd.XV_A", cfg.mask_scale)
            # Symmetric at B.
            ct_b = _matmul_cipher(x_b, self._b.enc_v_own, parallel=self.parallel)
            eps_b = self._he2ss(ct_b, b, "A", f"{tag}.fwd.XV_B", cfg.mask_scale)
            xv_b_share = he2ss_receive(a, ch, f"{tag}.fwd.XV_B")  # X_B V_B - eps_B
            xv_a_share = he2ss_receive(b, ch, f"{tag}.fwd.XV_A")  # X_A V_A - eps_A
            # Line 7: per-party output shares.
            z_a = matmul_any(x_a, self._a.u) + eps_a + xv_b_share
            z_b = matmul_any(x_b, self._b.u) + eps_b + xv_a_share
            # Line 8: A releases its share of Z (Party B is entitled to Z).
            ch.send(a.name, b.name, f"{tag}.fwd.Z_A", z_a, MessageKind.OUTPUT_SHARE)
            z_a_at_b = ch.recv(b.name, f"{tag}.fwd.Z_A")
            return z_a_at_b + z_b

    def forward_shares(
        self, x_a: np.ndarray | CSRMatrix, x_b: np.ndarray | CSRMatrix, train: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Appendix B variant: keep <Z'_A, Z'_B> secret-shared (no release).

        Used when a *federated* top model follows the source layer, so not
        even Party B sees Z.
        """
        self._step += 1
        tag = f"{self.name}.{self._step}"
        with _obs.span("fw_transfer", tag=tag):
            ctx, cfg = self.ctx, self._cfg
            a, b, ch = ctx.A, ctx.B, ctx.channel
            if train:
                self._check_packing_depth(_batch_rows(x_a))
                self._a.x_cache = x_a
                self._b.x_cache = x_b
            ct_a = _matmul_cipher(x_a, self._a.enc_v_own, parallel=self.parallel)
            eps_a = self._he2ss(ct_a, a, "B", f"{tag}.fwd.XV_A", cfg.mask_scale)
            ct_b = _matmul_cipher(x_b, self._b.enc_v_own, parallel=self.parallel)
            eps_b = self._he2ss(ct_b, b, "A", f"{tag}.fwd.XV_B", cfg.mask_scale)
            xv_b_share = he2ss_receive(a, ch, f"{tag}.fwd.XV_B")
            xv_a_share = he2ss_receive(b, ch, f"{tag}.fwd.XV_A")
            z_a = matmul_any(x_a, self._a.u) + eps_a + xv_b_share
            z_b = matmul_any(x_b, self._b.u) + eps_b + xv_a_share
            return z_a, z_b

    # ----------------------------------------------------------------- backward

    def backward(self, grad_z: np.ndarray) -> None:
        """Figure 6 lines 9-10: secretly share grad_W_A; compute grad_W_B."""
        if self._a.x_cache is None:
            raise RuntimeError("backward before forward (or inference-only forward)")
        if self._a.pending or self._b.pending:
            raise RuntimeError("pending updates not applied; call apply_updates")
        tag = f"{self.name}.{self._step}"
        with _obs.span("bw_transfer", tag=tag):
            ctx, cfg = self.ctx, self._cfg
            a, b, ch = ctx.A, ctx.B, ctx.channel
            grad_z = np.asarray(grad_z, dtype=np.float64).reshape(-1, self.out_dim)
            # Line 9: B encrypts the derivatives (label protection, Req 3).
            with _obs.span("encrypt", party=b.name, tag=f"{tag}.bwd.gZ"):
                enc_gz = CryptoTensor.encrypt(
                    b.public_key, grad_z, obfuscate=True, parallel=self.parallel
                )
            ch.send(b.name, a.name, f"{tag}.bwd.gZ", enc_gz, MessageKind.CIPHERTEXT)
            enc_gz_at_a = ch.recv(a.name, f"{tag}.bwd.gZ")
            x_a = self._a.x_cache
            use_delta = cfg.share_refresh == "delta" and isinstance(x_a, CSRMatrix)
            if use_delta:
                # Sparse-aware: only the column support of this batch carries
                # gradient; restrict the crypto to those coordinates.
                support = x_a.column_support()
                ch.send(
                    a.name, b.name, f"{tag}.bwd.support", support, MessageKind.PUBLIC
                )
                enc_gw = _t_matmul_cipher(
                    x_a, enc_gz_at_a, columns=support, parallel=self.parallel
                )
            else:
                support = None
                enc_gw = _t_matmul_cipher(x_a, enc_gz_at_a, parallel=self.parallel)
            # Line 10: <phi, grad_W_A - phi>.
            phi = self._he2ss(enc_gw, a, "B", f"{tag}.bwd.gW_A", cfg.grad_mask_scale)
            support_at_b = ch.recv(b.name, f"{tag}.bwd.support") if use_delta else None
            gw_minus_phi = he2ss_receive(b, ch, f"{tag}.bwd.gW_A")
            self._a.pending = {"phi": phi, "support": support}
            self._b.pending = {
                "gw_a_share": gw_minus_phi,
                "support": support_at_b,
                "gw_b": t_matmul_any(self._b.x_cache, grad_z),  # line 11, local at B
            }

    # --------------------------------------------------------------------- step

    def apply_updates(self, lr: float, momentum: float) -> None:
        """Figure 6 lines 11-12 plus the [[V_A]] refresh."""
        if not self._a.pending:
            return
        tag = f"{self.name}.{self._step}"
        a, b, ch = self.ctx.A, self.ctx.B, self.ctx.channel
        support = self._a.pending["support"]
        # Party A: U_A update with its gradient piece phi.
        _momentum_update(
            self._a.u, self._a.vel_u, self._a.pending["phi"], lr, momentum, support
        )
        # Party B: V_A update with the complementary piece.
        v_a_before = self._b.v_peer.copy() if support is not None else None
        _momentum_update(
            self._b.v_peer,
            self._b.vel_v_peer,
            self._b.pending["gw_a_share"],
            lr,
            momentum,
            self._b.pending["support"],
        )
        # Party B: its own weights take the full (plaintext) gradient.
        _momentum_update(
            self._b.u, self._b.vel_u, self._b.pending["gw_b"], lr, momentum, None
        )
        # Refresh A's cached [[V_A]]_B.
        layout = self._piece_layout(b.public_key)
        packed_resident = isinstance(self._a.enc_v_own, PackedCryptoTensor)
        if support is None or (layout is not None) != packed_resident:
            # Full re-encrypt: the faithful Figure 6 refresh — and the one
            # step that migrates the cached copy between packed and
            # per-element forms when the packing knob flips mid-run
            # (either direction).
            fresh = self._encrypt_piece(b.public_key, self._b.v_peer)
            ch.send(b.name, a.name, f"{tag}.upd.encV_A", fresh, MessageKind.CIPHERTEXT)
            self._a.enc_v_own = ch.recv(a.name, f"{tag}.upd.encV_A")
        elif packed_resident:
            # Packed delta mode: lanes cannot be patched additively without
            # spending guard bits every step, so B re-encrypts just the
            # touched rows (same wire cost as an encrypted delta) and A
            # swaps them into the packed copy.
            payload = PackedCryptoTensor.encrypt(
                b.public_key,
                self._b.v_peer[self._b.pending["support"]],
                layout,
                obfuscate=True,
                parallel=self.parallel,
            )
            ch.send(b.name, a.name, f"{tag}.upd.dV_A", payload, MessageKind.CIPHERTEXT)
            fresh_rows = ch.recv(a.name, f"{tag}.upd.dV_A")
            self._a.enc_v_own.set_rows(support, fresh_rows)
        else:
            delta = self._b.v_peer[self._b.pending["support"]] - v_a_before[
                self._b.pending["support"]
            ]
            enc_delta = CryptoTensor.encrypt(
                b.public_key, delta, obfuscate=True, parallel=self.parallel
            )
            ch.send(
                b.name, a.name, f"{tag}.upd.dV_A", enc_delta, MessageKind.CIPHERTEXT
            )
            enc_delta_at_a = ch.recv(a.name, f"{tag}.upd.dV_A")
            updated = self._a.enc_v_own[support] + enc_delta_at_a
            self._a.enc_v_own.data[support] = updated.data
        self.zero_pending()

    def zero_pending(self) -> None:
        self._a.pending = {}
        self._b.pending = {}

    # --------------------------------------------------------------- checkpoint

    def checkpoint_state(self) -> tuple:
        """Codec-serialisable snapshot of this layer at a batch boundary.

        Pieces, velocities and the cached encrypted peer pieces (live
        ciphertext payloads — the codec carries those natively) plus the
        step counter the protocol tags derive from.  Batch-transient state
        (``x_cache``, ``pending``) is provably stale between batches and
        is *not* captured; :meth:`load_checkpoint_state` resets it.
        """

        def side(st: _PieceState) -> tuple:
            return (st.u, st.v_peer, st.vel_u, st.vel_v_peer, st.enc_v_own)

        return ("matmul", self._step, side(self._a), side(self._b))

    def load_checkpoint_state(self, state: tuple) -> None:
        kind, step, a, b = state
        if kind != "matmul":
            raise ValueError(
                f"layer {self.name!r} is a MatMul source but the checkpoint "
                f"holds a {kind!r} layer"
            )
        self._step = int(step)
        for st, vals in ((self._a, a), (self._b, b)):
            u, v_peer, vel_u, vel_v_peer, enc_v_own = vals
            u = np.asarray(u, dtype=np.float64)
            if u.shape != st.u.shape:
                raise ValueError(
                    f"layer {self.name!r}: checkpoint piece shape {u.shape} "
                    f"does not match the model's {st.u.shape}"
                )
            st.u = u
            st.v_peer = np.asarray(v_peer, dtype=np.float64)
            st.vel_u = np.asarray(vel_u, dtype=np.float64)
            st.vel_v_peer = np.asarray(vel_v_peer, dtype=np.float64)
            st.enc_v_own = enc_v_own
            st.x_cache = None
            st.pending = {}

    # -------------------------------------------------------------- introspection

    def federated_parameters(self) -> list[FederatedParameter]:
        return [
            FederatedParameter(
                name=f"{self.name}.W_A",
                owner="A",
                shape=(self.in_a, self.out_dim),
                holders={"U": "A", "V": "B"},
            ),
            FederatedParameter(
                name=f"{self.name}.W_B",
                owner="B",
                shape=(self.in_b, self.out_dim),
                holders={"U": "B", "V": "A"},
            ),
        ]

    def reveal_weights(self) -> dict[str, np.ndarray]:
        """TEST/DEBUG ONLY: reconstruct W_A, W_B as a global observer.

        This deliberately violates the trust model (no real party can do
        it); the test-suite uses it to verify losslessness against the
        plaintext reference implementation.
        """
        return {
            "W_A": self._a.u + self._b.v_peer,
            "W_B": self._b.u + self._a.v_peer,
        }

    def piece_views(self) -> dict[str, np.ndarray]:
        """The pieces each party can see (for the Figure 11 analysis)."""
        return {
            "A.U_A": self._a.u,
            "A.V_B": self._a.v_peer,
            "B.U_B": self._b.u,
            "B.V_A": self._b.v_peer,
        }


def _momentum_update(
    weights: np.ndarray,
    velocity: np.ndarray,
    grad: np.ndarray,
    lr: float,
    momentum: float,
    support: np.ndarray | None,
) -> None:
    """Classical momentum on a piece; ``support`` enables lazy sparse mode."""
    if support is None:
        if momentum:
            velocity *= momentum
            velocity += grad
            weights -= lr * velocity
        else:
            weights -= lr * grad
        return
    if momentum:
        velocity[support] *= momentum
        velocity[support] += grad
        weights[support] -= lr * velocity[support]
    else:
        weights[support] -= lr * grad
