"""Training and evaluation driver for federated models.

Implements the Figure 8 training routine once, for every model:

    for X, y in loader:
        output = model(X)            # federated forward
        fed_optimizer.zero_grad()
        loss = criterion(output, y)
        loss.backward()              # top-model autograd
        model.backward_sources()     # federated backward
        fed_optimizer.step()         # update shares + top model

plus the metric bookkeeping the Figure 12 / Figure 9 benchmarks need
(per-iteration training loss, per-epoch test metric).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.crypto.parallel import ParallelContext, use_parallel
from repro.core.federated import FederatedModule
from repro.obs.sinks import make_sink
from repro.obs.tracer import Tracer, use_tracer
from repro.obs import tracer as _obs
from repro.core.optimizer import FederatedSGD
from repro.data.loader import Batch, BatchLoader
from repro.data.partition import VerticalDataset
from repro.tensor.losses import bce_with_logits, softmax_cross_entropy
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.metrics import accuracy, roc_auc

__all__ = [
    "TrainConfig",
    "History",
    "train_federated",
    "train_multiparty",
    "evaluate_federated",
    "predict",
]


@dataclass
class TrainConfig:
    """Hyper-parameters (paper defaults: lr 0.05, batch 128, momentum 0.9).

    ``parallel_workers >= 2`` installs a
    :class:`~repro.crypto.parallel.ParallelContext` as the process default
    for the duration of training, so every homomorphic kernel in the source
    layers shards its exponentiations across that many processes.
    ``blinding_pool_per_epoch`` pre-computes that many ``r^n`` obfuscation
    blinders per party key at each epoch boundary (off the hot path), so
    in-epoch encryptions only pay a mulmod for re-randomisation.
    ``packing`` overrides every source layer's
    :attr:`~repro.comm.party.VFLConfig.packing` knob for this run (``None``
    leaves the federation config as built): SIMD-slot ciphertext batching
    cuts ciphertext count, blinding exponentiations and wire bytes by the
    slot factor on forward transfers and share refreshes.
    ``channel`` swaps every federation context onto a different in-process
    channel tier before the first batch (``"memory"`` object passing or
    ``"serializing"`` honest bytes with measured sizes; ``None`` keeps the
    channel the contexts were built with).  The swap starts transcript and
    byte counters fresh, so a training run's accounting excludes the
    layers' initialisation traffic.
    ``blinding_lambda`` overrides every party key's obfuscation mode for
    this run (``None`` keeps the keys as built): λ > 0 switches to the
    λ-exponent blinding shortcut (blinders ``h^x`` for random λ-bit ``x``
    instead of a fresh ``key_bits``-bit ``r^n`` pow each — the blinding
    pool refills ~``key_bits``/λ times faster), 0 restores the classic
    mode.
    ``checkpoint_path`` + ``checkpoint_every`` persist the full training
    state (see :mod:`repro.core.checkpoint`) every N batches as codec
    frames on disk; resuming via ``train_federated(resume_from=...)`` is
    bit-identical to never having stopped.  ``crash_after_batches`` is the
    fault-injection knob for testing that property: the trainer raises
    :class:`~repro.core.checkpoint.TrainingInterrupted` after that many
    batches have run in this process.
    ``telemetry`` turns on the phase tracer (see :mod:`repro.obs`) for the
    run: ``"memory"`` keeps the trace on ``History.trace`` only, ``"null"``
    additionally streams spans to a no-op sink (plumbing check),
    ``"jsonl"``/``"chrome"`` also export to ``telemetry_path``.  ``None``
    (or ``"off"``) is the default: no tracer is installed and every
    instrumentation site short-circuits on one ``is None`` check.
    ``pipeline`` enables async sends on fabric channels for the run (see
    :meth:`~repro.comm.fabric.FabricChannel.set_pipeline`): batch ``k``'s
    outbound frames are still in flight while batch ``k + 1`` encrypts
    and packs.  Determinism contract: pipelining reorders *wall-clock*
    only — frame order and content are untouched, so seeded trajectories
    (losses, weights, transcripts) stay bit-identical with the knob on or
    off; it defaults off so the blocking tier remains the reference.  On
    channels without a pipeline (the in-process tiers, the mirrored
    socket tier) the knob is a no-op.
    """

    epochs: int = 10
    batch_size: int = 128
    lr: float = 0.05
    momentum: float = 0.9
    seed: int = 0
    parallel_workers: int = 0
    blinding_pool_per_epoch: int = 0
    packing: bool | None = None
    channel: str | None = None
    blinding_lambda: int | None = None
    checkpoint_path: str | None = None
    checkpoint_every: int = 0
    crash_after_batches: int | None = None
    telemetry: str | None = None
    telemetry_path: str | None = None
    pipeline: bool = False


@dataclass
class History:
    """Convergence record: loss per iteration, metric per epoch."""

    losses: list[float] = field(default_factory=list)
    epoch_metrics: list[float] = field(default_factory=list)
    metric_name: str = ""
    # Span dicts from the run's tracer (``TrainConfig.telemetry``); None
    # when telemetry was off.  Not checkpointed — a resumed run records
    # only its own process's trace.
    trace: list[dict] | None = None

    @property
    def final_metric(self) -> float:
        return self.epoch_metrics[-1]


def _criterion(n_classes: int) -> Callable[[Tensor, np.ndarray], Tensor]:
    if n_classes == 2:
        return bce_with_logits
    return softmax_cross_entropy


def train_federated(
    model: FederatedModule,
    train_data: VerticalDataset,
    config: TrainConfig,
    test_data: VerticalDataset | None = None,
    max_batches_per_epoch: int | None = None,
    resume_from: str | None = None,
) -> History:
    """Train with FederatedSGD; returns the convergence history.

    ``resume_from`` restores a checkpoint written by an earlier run onto
    this (freshly rebuilt, identically seeded) model and continues from
    the exact batch after it — RNG streams, blinding pools, momentum
    buffers and the mini-batch order all resume bit-identically, so the
    final trajectory matches an uninterrupted run.  The checkpoint never
    holds private keys; rebuilding the model from its seeds is what
    brings the key owner's private key back.
    """
    from repro.core.checkpoint import (
        TrainingInterrupted,
        load_checkpoint,
        model_key_ring,
        restore_checkpoint,
        save_checkpoint,
    )

    optimizer = FederatedSGD(model, lr=config.lr, momentum=config.momentum)
    criterion = _criterion(train_data.n_classes)
    rng = np.random.default_rng(config.seed)
    metric_name = "auc" if train_data.n_classes == 2 else "accuracy"
    history = History(metric_name=metric_name)
    if config.packing is not None:
        _set_packing(model, config.packing)
    if config.channel is not None:
        _set_channel(model, config.channel)
    if config.blinding_lambda is not None:
        _set_blinding_lambda(model, config.blinding_lambda)
    if config.pipeline:
        _set_pipeline(model, True)
    start_epoch, resume_order, resume_batch = 0, None, 0
    if resume_from is not None:
        sections = load_checkpoint(resume_from, key_ring=model_key_ring(model))
        resume = restore_checkpoint(model, optimizer, rng, sections)
        start_epoch = resume.epoch
        resume_order = resume.order
        resume_batch = resume.next_batch
        history = resume.history
    if config.parallel_workers >= 2:
        engine = use_parallel(ParallelContext(workers=config.parallel_workers))
    else:
        engine = contextlib.nullcontext(None)
    tracer: Tracer | None = None
    if config.telemetry is not None and config.telemetry != "off":
        tracer = Tracer(sink=make_sink(config.telemetry, config.telemetry_path))
        scope = use_tracer(tracer)
    else:
        scope = contextlib.nullcontext(None)
    batches_run = 0
    with engine as parallel, scope:
        for epoch in range(start_epoch, config.epochs):
            with _obs.span("epoch", epoch=epoch):
                resuming = epoch == start_epoch and resume_order is not None
                if resuming:
                    # Mid-epoch re-entry: the prefill and the order shuffle
                    # already happened before the checkpoint was written —
                    # their effects live in the restored RNG/pool states.
                    order, first_batch = resume_order, resume_batch
                else:
                    if config.blinding_pool_per_epoch > 0:
                        with _obs.span("blinding_refill", epoch=epoch):
                            _prefill_blinding(
                                model, config.blinding_pool_per_epoch, parallel
                            )
                    order, first_batch = None, 0
                loader = BatchLoader(train_data, config.batch_size, rng=rng)
                if order is None:
                    order = loader.draw_order()
                for batch_no, batch in loader.batches(order, start=first_batch):
                    if (
                        max_batches_per_epoch is not None
                        and batch_no >= max_batches_per_epoch
                    ):
                        break
                    with _obs.span("batch", epoch=epoch, batch=batch_no):
                        output = model.forward(batch, train=True)
                        optimizer.zero_grad()
                        loss = criterion(output, batch.y)
                        loss.backward()
                        model.backward_sources()
                        optimizer.step()
                        history.losses.append(loss.item())
                        batches_run += 1
                        if (
                            config.checkpoint_path is not None
                            and config.checkpoint_every > 0
                            and batches_run % config.checkpoint_every == 0
                        ):
                            with _obs.span("checkpoint", epoch=epoch, batch=batch_no):
                                save_checkpoint(
                                    config.checkpoint_path, model, optimizer,
                                    epoch=epoch, next_batch=batch_no + 1,
                                    order=order, loader_rng=rng, history=history,
                                )
                    if (
                        config.crash_after_batches is not None
                        and batches_run >= config.crash_after_batches
                    ):
                        raise TrainingInterrupted(
                            f"injected crash after {batches_run} batches "
                            f"(epoch {epoch}, batch {batch_no})",
                            checkpoint_path=config.checkpoint_path,
                        )
                if test_data is not None:
                    history.epoch_metrics.append(
                        evaluate_federated(
                            model, test_data, config.batch_size
                        )[metric_name]
                    )
    if tracer is not None:
        # use_tracer closed the tracer on scope exit (root span included),
        # so the dict view below is the complete trace.
        history.trace = tracer.to_dicts()
    return history


def train_multiparty(
    model,
    x_by_party: dict[str, object],
    labels: np.ndarray | None,
    config: TrainConfig,
    *,
    steps: int,
    resume_from: str | None = None,
) -> list[float | None]:
    """Fixed-batch SGD loop for the N-party models (:mod:`repro.core.multiparty`).

    Runs ``steps`` calls to ``model.train_step`` on one aligned batch and
    returns the per-step losses (``None`` entries on endpoints where Party B
    is remote — loss only materialises at B).  Honours the same
    checkpointing knobs as :func:`train_federated`, adapted to the
    per-endpoint fabric layout: when ``config.checkpoint_path`` +
    ``config.checkpoint_every`` are set, each endpoint writes its *own*
    local-parties checkpoint (see
    :func:`repro.core.checkpoint.save_endpoint_checkpoint`) every N steps,
    and ``resume_from`` restores such a file onto a freshly built,
    identically seeded model so the continued trajectory is bit-identical
    to an uninterrupted run.  ``config.crash_after_batches`` injects a
    :class:`~repro.core.checkpoint.TrainingInterrupted` after that many
    steps have run in this process (checkpoint-then-crash ordering, as in
    :func:`train_federated`).
    """
    from repro.core.checkpoint import (
        TrainingInterrupted,
        restore_endpoint_checkpoint,
        save_endpoint_checkpoint,
    )

    start = 0
    losses: list[float | None] = []
    if resume_from is not None:
        start, saved = restore_endpoint_checkpoint(resume_from, model)
        if model.ctx.is_local("B"):
            losses = list(saved)
        else:
            # Non-B endpoints never see losses; keep index parity with B.
            losses = [None] * start
    ran = 0
    for k in range(start, steps):
        losses.append(
            model.train_step(
                x_by_party, labels, lr=config.lr, momentum=config.momentum
            )
        )
        ran += 1
        if (
            config.checkpoint_path is not None
            and config.checkpoint_every > 0
            and (k + 1) % config.checkpoint_every == 0
        ):
            save_endpoint_checkpoint(
                config.checkpoint_path, model, step=k + 1, losses=losses
            )
        if (
            config.crash_after_batches is not None
            and ran >= config.crash_after_batches
        ):
            raise TrainingInterrupted(
                f"injected crash after {ran} fabric steps (step {k + 1})",
                checkpoint_path=config.checkpoint_path,
            )
    return losses


def _set_packing(model: FederatedModule, enabled: bool) -> None:
    """Flip the packing knob on every federation config the model uses.

    Layers consult their ``VFLConfig`` at transfer/refresh time, so the
    switch takes effect from the next message on — encrypted weight copies
    upgrade to packed form at their next share refresh.
    """
    seen: set[int] = set()
    for ctx in model.federation_contexts():
        cfg = getattr(ctx, "config", None)
        if cfg is not None and id(cfg) not in seen and hasattr(cfg, "packing"):
            seen.add(id(cfg))
            cfg.packing = enabled


def _set_channel(model: FederatedModule, kind: str) -> None:
    """Swap every federation context onto a fresh channel of ``kind``.

    Layer construction already drained its init traffic, so the swap is a
    quiescence-point operation; :meth:`VFLContext.set_channel` re-registers
    the party keys with the new channel's codec ring.
    """
    from repro.comm.channel import make_channel

    for ctx in model.federation_contexts():
        ctx.set_channel(
            make_channel(kind, record_transcript=ctx.config.record_transcript)
        )


def _set_pipeline(model: FederatedModule, on: bool) -> None:
    """Toggle async sends on every fabric channel the model trains over.

    Channels without a pipeline (the in-process tiers, the mirrored
    socket tier) are left untouched — the knob only changes *when* frames
    hit the wire, never their order or content, so it is safe to apply
    blindly across heterogeneous contexts.
    """
    for ctx in model.federation_contexts():
        set_pipeline = getattr(ctx.channel, "set_pipeline", None)
        if set_pipeline is not None:
            set_pipeline(on)


def _set_blinding_lambda(model: FederatedModule, blinding_lambda: int) -> None:
    """Flip every party key's blinding mode for this run.

    Pooled blinders stay valid across the flip (both modes produce n-th
    powers) and drain FIFO before the new mode computes anything.
    """
    seen: set[int] = set()
    for ctx in model.federation_contexts():
        parties = getattr(ctx, "parties", None)
        if not parties:
            continue
        for party in parties.values():
            if id(party.public_key) not in seen:
                seen.add(id(party.public_key))
                party.public_key.set_blinding_lambda(blinding_lambda)


def _prefill_blinding(
    model: FederatedModule, count: int, parallel: ParallelContext | None
) -> None:
    """Refill every party key's obfuscation pool at an epoch boundary."""
    seen: set[int] = set()
    for ctx in model.federation_contexts():
        parties = getattr(ctx, "parties", None)
        if not parties:
            continue
        for party in parties.values():
            if id(party.public_key) not in seen:
                seen.add(id(party.public_key))
                party.public_key.prefill_blinding(count, parallel=parallel)


def predict(
    model: FederatedModule, data: VerticalDataset, batch_size: int = 256
) -> np.ndarray:
    """Inference-mode forward over a dataset; returns raw model outputs."""
    outputs = []
    loader = BatchLoader(data, min(batch_size, data.n), shuffle=False, drop_last=False)
    with no_grad():
        for batch in loader:
            outputs.append(model.forward(batch, train=False).numpy())
    return np.vstack(outputs)


def evaluate_federated(
    model: FederatedModule, data: VerticalDataset, batch_size: int = 256
) -> dict[str, float]:
    """Test AUC (binary) or accuracy (multi-class), as in Figure 12."""
    scores = predict(model, data, batch_size)
    if data.n_classes == 2:
        return {"auc": roc_auc(data.y, scores.ravel())}
    return {"accuracy": accuracy(data.y, scores.argmax(axis=1))}


def batch_of(data: VerticalDataset, size: int, seed: int = 0) -> Batch:
    """Convenience: one random aligned batch (used by benches and tests)."""
    rng = np.random.default_rng(seed)
    idx = rng.choice(data.n, size=min(size, data.n), replace=False)
    sliced = data.take_rows(idx)
    return Batch(parties=sliced.parties, y=sliced.y, indices=idx)
