"""Training and evaluation driver for federated models.

Implements the Figure 8 training routine once, for every model:

    for X, y in loader:
        output = model(X)            # federated forward
        fed_optimizer.zero_grad()
        loss = criterion(output, y)
        loss.backward()              # top-model autograd
        model.backward_sources()     # federated backward
        fed_optimizer.step()         # update shares + top model

plus the metric bookkeeping the Figure 12 / Figure 9 benchmarks need
(per-iteration training loss, per-epoch test metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.federated import FederatedModule
from repro.core.optimizer import FederatedSGD
from repro.data.loader import Batch, BatchLoader
from repro.data.partition import VerticalDataset
from repro.tensor.losses import bce_with_logits, softmax_cross_entropy
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.metrics import accuracy, roc_auc

__all__ = ["TrainConfig", "History", "train_federated", "evaluate_federated", "predict"]


@dataclass
class TrainConfig:
    """Hyper-parameters (paper defaults: lr 0.05, batch 128, momentum 0.9)."""

    epochs: int = 10
    batch_size: int = 128
    lr: float = 0.05
    momentum: float = 0.9
    seed: int = 0


@dataclass
class History:
    """Convergence record: loss per iteration, metric per epoch."""

    losses: list[float] = field(default_factory=list)
    epoch_metrics: list[float] = field(default_factory=list)
    metric_name: str = ""

    @property
    def final_metric(self) -> float:
        return self.epoch_metrics[-1]


def _criterion(n_classes: int) -> Callable[[Tensor, np.ndarray], Tensor]:
    if n_classes == 2:
        return bce_with_logits
    return softmax_cross_entropy


def train_federated(
    model: FederatedModule,
    train_data: VerticalDataset,
    config: TrainConfig,
    test_data: VerticalDataset | None = None,
    max_batches_per_epoch: int | None = None,
) -> History:
    """Train with FederatedSGD; returns the convergence history."""
    optimizer = FederatedSGD(model, lr=config.lr, momentum=config.momentum)
    criterion = _criterion(train_data.n_classes)
    rng = np.random.default_rng(config.seed)
    metric_name = "auc" if train_data.n_classes == 2 else "accuracy"
    history = History(metric_name=metric_name)
    for _ in range(config.epochs):
        loader = BatchLoader(train_data, config.batch_size, rng=rng)
        for batch_no, batch in enumerate(loader):
            if max_batches_per_epoch is not None and batch_no >= max_batches_per_epoch:
                break
            output = model.forward(batch, train=True)
            optimizer.zero_grad()
            loss = criterion(output, batch.y)
            loss.backward()
            model.backward_sources()
            optimizer.step()
            history.losses.append(loss.item())
        if test_data is not None:
            history.epoch_metrics.append(
                evaluate_federated(model, test_data, config.batch_size)[metric_name]
            )
    return history


def predict(
    model: FederatedModule, data: VerticalDataset, batch_size: int = 256
) -> np.ndarray:
    """Inference-mode forward over a dataset; returns raw model outputs."""
    outputs = []
    loader = BatchLoader(data, min(batch_size, data.n), shuffle=False, drop_last=False)
    with no_grad():
        for batch in loader:
            outputs.append(model.forward(batch, train=False).numpy())
    return np.vstack(outputs)


def evaluate_federated(
    model: FederatedModule, data: VerticalDataset, batch_size: int = 256
) -> dict[str, float]:
    """Test AUC (binary) or accuracy (multi-class), as in Figure 12."""
    scores = predict(model, data, batch_size)
    if data.n_classes == 2:
        return {"auc": roc_auc(data.y, scores.ravel())}
    return {"accuracy": accuracy(data.y, scores.argmax(axis=1))}


def batch_of(data: VerticalDataset, size: int, seed: int = 0) -> Batch:
    """Convenience: one random aligned batch (used by benches and tests)."""
    rng = np.random.default_rng(seed)
    idx = rng.choice(data.n, size=min(size, data.n), replace=False)
    sliced = data.take_rows(idx)
    return Batch(parties=sliced.parties, y=sliced.y, indices=idx)
