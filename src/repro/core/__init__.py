"""BlindFL core: federated source layers, models, optimizer, trainer."""

from repro.core.embed_matmul_layer import EmbedMatMulSource
from repro.core.federated import FederatedModule, FederatedParameter, SourceLayer
from repro.core.federated_top import (
    IdealSSTop,
    matmul_backward_from_shares,
    train_lr_with_ss_top,
)
from repro.core.matmul_layer import MatMulSource
from repro.core.multiparty import MultiPartyMatMulSource
from repro.core.models import (
    FederatedDLRM,
    FederatedLR,
    FederatedMLP,
    FederatedMLR,
    FederatedWDL,
)
from repro.core.optimizer import FederatedSGD
from repro.core.trainer import (
    History,
    TrainConfig,
    batch_of,
    evaluate_federated,
    predict,
    train_federated,
)

__all__ = [
    "EmbedMatMulSource",
    "MatMulSource",
    "MultiPartyMatMulSource",
    "IdealSSTop",
    "matmul_backward_from_shares",
    "train_lr_with_ss_top",
    "FederatedModule",
    "FederatedParameter",
    "SourceLayer",
    "FederatedLR",
    "FederatedMLR",
    "FederatedMLP",
    "FederatedWDL",
    "FederatedDLRM",
    "FederatedSGD",
    "History",
    "TrainConfig",
    "batch_of",
    "evaluate_federated",
    "predict",
    "train_federated",
]
