"""FederatedSGD — the optimizer of Figure 8.

Updates two kinds of state with the same learning-rate/momentum schedule:

* the plaintext top-model parameters at Party B (delegated to the plain
  :class:`repro.tensor.optim.SGD`);
* the secretly shared source-layer pieces, by triggering each layer's
  ``apply_updates`` protocol (momentum is applied per piece at its holder —
  momentum is linear, so the piecewise velocities sum to the velocity of
  the full gradient and the update is exactly classical momentum SGD).

Adaptive optimizers (Adam) are *not* offered for source layers: their
updates are non-linear in the gradient, which additive shares cannot
express — precisely the open problem the paper's §9 leaves as future work.
"""

from __future__ import annotations

from repro.core.federated import FederatedModule
from repro.tensor.optim import SGD

__all__ = ["FederatedSGD"]


class FederatedSGD:
    """Momentum SGD over a federated model (source layers + top model)."""

    def __init__(self, model: FederatedModule, lr: float, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.layers = list(model.source_layers())
        top_params = model.top_parameters()
        self._top = SGD(top_params, lr, momentum) if top_params else None

    def zero_grad(self) -> None:
        if self._top is not None:
            self._top.zero_grad()
        for layer in self.layers:
            layer.zero_pending()

    def step(self) -> None:
        if self._top is not None:
            self._top.step()
        for layer in self.layers:
            layer.apply_updates(self.lr, self.momentum)
