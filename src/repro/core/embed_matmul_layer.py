"""The Embed-MatMul federated source layer — Figure 7 of the paper.

Computes ``Z = E_A @ W_A + E_B @ W_B`` where ``E_x = lkup(Q_x, X_x)`` is an
embedding lookup over categorical fields, satisfying every restriction of
Table 3.  Beyond the MatMul layer's sharing of the weights, the embedding
tables themselves are secretly shared — ``Q_x = S_x + T_x`` with ``S_x`` at
the owner and ``T_x`` at the peer — so *neither party can even perform its
own lookup in the clear*:

* the forward lookup runs against the local plaintext piece ``S`` and the
  *encrypted* peer piece ``[[T]]`` (categorical indices stay local, which is
  exactly why data outsourcing cannot do this, §3), then HE2SS splits the
  result so the embedding entries exist only as shares ``<psi, E - psi>``;
* the backward pass computes ``[[grad_E]]`` homomorphically, performs the
  scatter-add ``lkup_bw`` *inside the ciphertext*, and shares the table
  gradient ``<rho, grad_Q - rho>``, updating ``S``/``T`` complementarily.

Each party owns a bank of categorical fields; per-field vocabularies are
packed into one offset-indexed table per party, matching how WDL/DLRM
implementations lay out embedding storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.message import MessageKind
from repro.comm.party import Party, VFLContext
from repro.crypto.crypto_tensor import (
    CryptoTensor,
    matmul_cipher_plain,
    matmul_plain_cipher,
)
from repro.crypto.packing import PackedCryptoTensor
from repro.crypto.parallel import ParallelContext
from repro.crypto.secret_sharing import he2ss_receive
from repro.core.federated import FederatedParameter, SourceLayer
from repro.obs import tracer as _obs

__all__ = ["EmbedMatMulSource"]


@dataclass
class _EmbedState:
    """One party's holdings for this layer (see module docstring)."""

    s: np.ndarray  # own piece of own table Q
    t_peer: np.ndarray  # piece of the *peer's* table
    u: np.ndarray  # own piece of own weights W
    v_peer: np.ndarray  # piece of the peer's weights
    enc_t_own: CryptoTensor | PackedCryptoTensor  # [[T_own]] under the peer's key
    enc_u_peer: CryptoTensor | PackedCryptoTensor  # [[U_peer]] under the peer's key
    enc_v_own: CryptoTensor  # [[V_own]] under the peer's key
    offsets: np.ndarray  # per-field offsets into the packed table
    # Velocity buffers are derived from the pieces in __post_init__; they
    # are never constructor arguments and never None after construction.
    vel_s: np.ndarray = field(init=False)
    vel_t_peer: np.ndarray = field(init=False)
    vel_u: np.ndarray = field(init=False)
    vel_v_peer: np.ndarray = field(init=False)
    flat_idx: np.ndarray | None = None
    psi: np.ndarray | None = None
    e_minus_psi_peer: np.ndarray | None = None  # share of the PEER's E
    pending: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.vel_s = np.zeros_like(self.s)
        self.vel_t_peer = np.zeros_like(self.t_peer)
        self.vel_u = np.zeros_like(self.u)
        self.vel_v_peer = np.zeros_like(self.v_peer)


def _pack_offsets(vocab_sizes: list[int]) -> tuple[np.ndarray, int]:
    offsets = np.zeros(len(vocab_sizes), dtype=np.int64)
    total = 0
    for i, v in enumerate(vocab_sizes):
        offsets[i] = total
        total += int(v)
    return offsets, total


class EmbedMatMulSource(SourceLayer):
    """Federated ``Z = lkup(Q_A, X_A) W_A + lkup(Q_B, X_B) W_B``."""

    def __init__(
        self,
        ctx: VFLContext,
        vocab_a: list[int],
        vocab_b: list[int],
        emb_dim: int,
        out_dim: int,
        init_scale: float = 0.05,
        name: str = "embed",
        parallel: ParallelContext | None = None,
    ):
        if emb_dim <= 0 or out_dim <= 0 or not vocab_a or not vocab_b:
            raise ValueError("invalid Embed-MatMul dimensions")
        self.ctx = ctx
        self.name = name
        # Multicore execution engine for this layer's kernels; None falls
        # back to the process default (see repro.crypto.parallel).
        self.parallel = parallel
        self.emb_dim, self.out_dim = emb_dim, out_dim
        self.vocab_a, self.vocab_b = list(vocab_a), list(vocab_b)
        self._step = 0
        self._cfg = ctx.config
        a, b = ctx.A, ctx.B
        off_a, total_a = _pack_offsets(self.vocab_a)
        off_b, total_b = _pack_offsets(self.vocab_b)
        self.total_a, self.total_b = total_a, total_b
        self.flat_in_a = len(vocab_a) * emb_dim
        self.flat_in_b = len(vocab_b) * emb_dim
        piece = init_scale / np.sqrt(2.0)
        # Figure 7 lines 1-4.  A draws S_A, T_B, U_A, V_B; B draws the
        # symmetric set; encrypted pieces [[T_B]]_A, [[U_A]]_A, [[V_B]]_A go
        # to B (and vice versa).
        s_a = a.rng.normal(0.0, piece, size=(total_a, emb_dim))
        t_b = a.rng.normal(0.0, piece, size=(total_b, emb_dim))
        u_a = a.rng.normal(0.0, piece, size=(self.flat_in_a, out_dim))
        v_b = a.rng.normal(0.0, piece, size=(self.flat_in_b, out_dim))
        s_b = b.rng.normal(0.0, piece, size=(total_b, emb_dim))
        t_a = b.rng.normal(0.0, piece, size=(total_a, emb_dim))
        u_b = b.rng.normal(0.0, piece, size=(self.flat_in_b, out_dim))
        v_a = b.rng.normal(0.0, piece, size=(self.flat_in_a, out_dim))
        # With packing on, the U pieces — only ever consumed as
        # ``plain @ cipher`` right operands — travel and live packed along
        # the output dimension, and the T pieces live packed along the
        # embedding dimension: lanes never span table rows, and the
        # segment-aware reshape regroups whole row segments, so the
        # ``take_rows -> reshape`` lookup pipeline is pure ciphertext-slice
        # bookkeeping on the packed form.  V stays per-element (the
        # backward pass uses its transpose).
        packed_widths = {
            "U_A": self.out_dim, "U_B": self.out_dim,
            "T_A": self.emb_dim, "T_B": self.emb_dim,
        }
        self._send_init(
            a, b, {"T_B": t_b, "U_A": u_a, "V_B": v_b}, packed=packed_widths
        )
        self._send_init(
            b, a, {"T_A": t_a, "U_B": u_b, "V_A": v_a}, packed=packed_widths
        )
        enc_at_a = self._recv_init(a, ["T_A", "U_B", "V_A"])
        enc_at_b = self._recv_init(b, ["T_B", "U_A", "V_B"])
        self._a = _EmbedState(
            s=s_a, t_peer=t_b, u=u_a, v_peer=v_b,
            enc_t_own=enc_at_a["T_A"], enc_u_peer=enc_at_a["U_B"],
            enc_v_own=enc_at_a["V_A"], offsets=off_a,
        )
        self._b = _EmbedState(
            s=s_b, t_peer=t_a, u=u_b, v_peer=v_a,
            enc_t_own=enc_at_b["T_B"], enc_u_peer=enc_at_b["U_A"],
            enc_v_own=enc_at_b["V_B"], offsets=off_b,
        )

    def _send_init(
        self, sender: Party, receiver: Party, pieces: dict, packed: dict | None = None
    ) -> None:
        packed = packed or {}
        for key, arr in pieces.items():
            if key in packed:
                tensor: object = self._encrypt_piece(
                    sender.public_key, arr, width=packed[key]
                )
            else:
                tensor = CryptoTensor.encrypt(
                    sender.public_key, arr, obfuscate=True, parallel=self.parallel
                )
            self.ctx.channel.send(
                sender.name,
                receiver.name,
                f"{self.name}.init.{key}",
                tensor,
                MessageKind.CIPHERTEXT,
            )

    def _packing_contraction(self) -> int:
        return max(self.flat_in_a, self.flat_in_b, 2)

    def _packing_depth(self) -> int:
        # The backward scatter accumulates batch rows that are themselves
        # (out_dim + 1)-deep contractions (gZ @ U^T plus the gZ V^T term);
        # out_dim is known at init, so budget the compound fan-in up front
        # — costing ~log2(out_dim) extra guard bits per slot — and
        # PACKING_DEPTH_FLOOR keeps its meaning of a batch-row floor.  The
        # budget is the exact power of two the step-time bit check sums to,
        # so a batch at the floor always passes even when the floor itself
        # is not a power of two.
        from repro.crypto.packing import _acc_bits

        return max(
            self._packing_contraction(),
            1 << (_acc_bits(self.out_dim + 1) + _acc_bits(self.PACKING_DEPTH_FLOOR)),
        )

    def _recv_init(self, receiver: Party, keys: list[str]) -> dict:
        return {
            key: self.ctx.channel.recv(receiver.name, f"{self.name}.init.{key}")
            for key in keys
        }

    # ------------------------------------------------------------------ helpers

    def _flat_indices(self, state: _EmbedState, x_cat: np.ndarray) -> np.ndarray:
        x_cat = np.asarray(x_cat, dtype=np.int64)
        if x_cat.ndim != 2 or x_cat.shape[1] != state.offsets.shape[0]:
            raise ValueError(
                f"{self.name}: expected (batch, {state.offsets.shape[0]}) categorical"
            )
        return (x_cat + state.offsets[None, :]).ravel()

    def _party_pair(self, who: str) -> tuple[_EmbedState, Party, Party]:
        if who == "A":
            return self._a, self.ctx.A, self.ctx.B
        return self._b, self.ctx.B, self.ctx.A

    # ------------------------------------------------------------------ forward

    def forward(
        self, x_cat_a: np.ndarray, x_cat_b: np.ndarray, train: bool = True
    ) -> np.ndarray:
        """Figure 7 lines 5-11; returns Z at Party B."""
        z_a, z_b = self.forward_shares(x_cat_a, x_cat_b, train=train)
        ch = self.ctx.channel
        tag = f"{self.name}.{self._step}"
        ch.send(
            self.ctx.A.name, self.ctx.B.name, f"{tag}.fwd.Z_A", z_a,
            MessageKind.OUTPUT_SHARE,
        )
        return ch.recv(self.ctx.B.name, f"{tag}.fwd.Z_A") + z_b

    def forward_shares(
        self, x_cat_a: np.ndarray, x_cat_b: np.ndarray, train: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lines 5-10 only: output stays secret-shared (Appendix B tops)."""
        self._step += 1
        tag = f"{self.name}.{self._step}"
        with _obs.span("fw_transfer", tag=tag):
            cfg, ch = self._cfg, self.ctx.channel
            batch = np.asarray(x_cat_a).shape[0]
            if np.asarray(x_cat_b).shape[0] != batch:
                raise ValueError("parties received differently sized batches")
            # The backward scatter-add accumulates up to ``batch`` gradient
            # rows per lane, each itself a contraction over ``out_dim``
            # products plus the gZ V^T term — the compound fan-in must fit
            # the layouts' designed accumulation depth or lanes would
            # overflow the slot guard band.  Fail loudly now, before any
            # ciphertext is produced.  Inference passes never run that
            # backward, so they are exempt.
            if train:
                self._check_packing_depth(batch, row_terms=self.out_dim + 1)
            contributions = {"A": [], "B": []}

            # ---- Embed stage (lines 5-7), once per party.
            shares = {}
            for who, x_cat in (("A", x_cat_a), ("B", x_cat_b)):
                state, me, peer = self._party_pair(who)
                flat = self._flat_indices(state, x_cat)
                lk_enc = state.enc_t_own.take_rows(flat).reshape(batch, -1)
                eps = self._he2ss(
                    lk_enc, me, peer.name, f"{tag}.fwd.lkT_{who}", cfg.mask_scale
                )
                lk_t_share = he2ss_receive(peer, ch, f"{tag}.fwd.lkT_{who}")
                psi = eps + state.s[flat].reshape(batch, -1)
                shares[who] = (psi, lk_t_share)  # psi at `who`, E-psi at peer
                if train:
                    state.flat_idx = flat
                    state.psi = psi
                else:
                    state.flat_idx = None
                    state.psi = None
            self._a.e_minus_psi_peer = shares["B"][1] if train else None
            self._b.e_minus_psi_peer = shares["A"][1] if train else None

            # ---- MatMul stage, line 8: Z'_1 contributions from psi pieces.
            for who in ("A", "B"):
                state, me, peer = self._party_pair(who)
                psi = shares[who][0]
                ct = matmul_plain_cipher(psi, state.enc_v_own, parallel=self.parallel)
                eps1 = self._he2ss(
                    ct, me, peer.name, f"{tag}.fwd.psiV_{who}", cfg.mask_scale
                )
                peer_share = he2ss_receive(peer, ch, f"{tag}.fwd.psiV_{who}")
                contributions[who].append(psi @ state.u + eps1)
                contributions[peer.name].append(peer_share)

            # ---- MatMul stage, line 9: Z'_2 contributions from (E-psi) pieces.
            for who in ("A", "B"):
                # The peer holds (E_who - psi_who), V_who, and [[U_who]]_who.
                state, me, peer = self._party_pair(who)
                peer_state = self._b if who == "A" else self._a
                e_share = shares[who][1]  # at peer
                # [[ (E-psi) U_who ]]_who
                ct = matmul_plain_cipher(
                    e_share, peer_state.enc_u_peer, parallel=self.parallel
                )
                eps2 = self._he2ss(
                    ct, peer, me.name, f"{tag}.fwd.eU_{who}", cfg.mask_scale
                )
                my_share = he2ss_receive(me, ch, f"{tag}.fwd.eU_{who}")
                contributions[peer.name].append(e_share @ peer_state.v_peer + eps2)
                contributions[who].append(my_share)

            z_a = sum(contributions["A"])
            z_b = sum(contributions["B"])
            return z_a, z_b

    # ----------------------------------------------------------------- backward

    def backward(self, grad_z: np.ndarray) -> None:
        """Figure 7 lines 12-16 and 21-23: share every gradient."""
        if self._a.psi is None:
            raise RuntimeError("backward before forward (or inference-only forward)")
        if self._a.pending or self._b.pending:
            raise RuntimeError("pending updates not applied; call apply_updates")
        tag = f"{self.name}.{self._step}"
        with _obs.span("bw_transfer", tag=tag):
            cfg, ch = self._cfg, self.ctx.channel
            a, b = self.ctx.A, self.ctx.B
            grad_z = np.asarray(grad_z, dtype=np.float64).reshape(-1, self.out_dim)

            # Line 12: B encrypts grad_Z and grad_Z V_A^T (it holds V_A).
            with _obs.span("encrypt", party=b.name, tag=f"{tag}.bwd.gZ"):
                enc_gz = CryptoTensor.encrypt(
                    b.public_key, grad_z, obfuscate=True, parallel=self.parallel
                )
                enc_gzva = CryptoTensor.encrypt(
                    b.public_key, grad_z @ self._b.v_peer.T, obfuscate=True,
                    parallel=self.parallel,
                )
            ch.send(b.name, a.name, f"{tag}.bwd.gZ", enc_gz, MessageKind.CIPHERTEXT)
            ch.send(b.name, a.name, f"{tag}.bwd.gZVA", enc_gzva, MessageKind.CIPHERTEXT)
            enc_gz_at_a = ch.recv(a.name, f"{tag}.bwd.gZ")
            enc_gzva_at_a = ch.recv(a.name, f"{tag}.bwd.gZVA")

            # Line 13-14: <phi, grad_W_A - phi>.
            ct = matmul_plain_cipher(self._a.psi.T, enc_gz_at_a, parallel=self.parallel)
            phi = self._he2ss(ct, a, "B", f"{tag}.bwd.psiTgZ", cfg.grad_mask_scale)
            psi_t_gz_share = he2ss_receive(b, ch, f"{tag}.bwd.psiTgZ")
            gw_a_minus_phi = self._b.e_minus_psi_peer.T @ grad_z + psi_t_gz_share

            # Line 15-16: <xi, grad_W_B - xi>.
            ct = matmul_plain_cipher(
                self._a.e_minus_psi_peer.T, enc_gz_at_a, parallel=self.parallel
            )
            xi = self._he2ss(ct, a, "B", f"{tag}.bwd.eTgZ", cfg.grad_mask_scale)
            e_t_gz_share = he2ss_receive(b, ch, f"{tag}.bwd.eTgZ")
            gw_b_minus_xi = self._b.psi.T @ grad_z + e_t_gz_share

            # Line 21 at A: [[grad_E_A]]_B = [[gZ]] U_A^T + [[gZ V_A^T]].
            enc_ge_a = (
                matmul_cipher_plain(enc_gz_at_a, self._a.u.T, parallel=self.parallel)
                + enc_gzva_at_a
            )
            # Line 21 at B: [[grad_E_B]]_A = gZ U_B^T + gZ [[V_B^T]]_A.
            enc_ge_b = matmul_plain_cipher(
                grad_z, self._b.enc_v_own.T, parallel=self.parallel
            ) + (grad_z @ self._b.u.T)

            # Lines 22-23: encrypted lkup_bw, then <rho, grad_Q - rho>.
            use_delta = cfg.share_refresh == "delta"
            rho, gq_share, touched = {}, {}, {}
            for who, enc_ge in (("A", enc_ge_a), ("B", enc_ge_b)):
                state, me, peer = self._party_pair(who)
                total = self.total_a if who == "A" else self.total_b
                with _obs.span("lkup_bw", party=me.name, tag=f"{tag}.bwd.gQ_{who}"):
                    rows: CryptoTensor | PackedCryptoTensor = CryptoTensor(
                        enc_ge.public_key,
                        enc_ge.data.reshape(-1, self.emb_dim),
                    )
                    # Packed lkup_bw: lift the (batch * fields) gradient rows
                    # into lanes once — far fewer elements than the table the
                    # scatter lands in — then scatter-add with lane-wise
                    # mulmods.  The table gradient stays packed all the way
                    # through HE2SS, so the transfer ships (and the key owner
                    # decrypts/blinds) ``slots``-fold fewer ciphertexts.  The
                    # pack promises the layout's pre-accumulation operand
                    # budget widened by the rows' own out_dim-deep
                    # contraction (gZ @ U^T plus the gZ V^T term), so a batch
                    # whose compound fan-in exceeds the designed depth raises
                    # before the scatter executes.
                    layout = self._piece_layout(enc_ge.public_key, width=self.emb_dim)
                    if layout is not None:
                        rows = rows.pack(
                            layout,
                            value_bits=layout.acc_operand_bits_for(self.out_dim + 1),
                            parallel=self.parallel,
                        )
                    # ``obfuscate_empty=False``: the scatter result goes
                    # straight into ``_he2ss`` below, which homomorphically
                    # adds a *freshly blinded* mask encryption to every
                    # ciphertext — untouched rows are re-randomised at the
                    # party boundary anyway, so paying a blinder per
                    # untouched table cell here would be pure waste on large
                    # vocabularies.
                    if use_delta:
                        uniq, remap = np.unique(state.flat_idx, return_inverse=True)
                        touched[who] = uniq
                        ch.send(
                            me.name, peer.name, f"{tag}.bwd.touched_{who}", uniq,
                            MessageKind.PUBLIC,
                        )
                        enc_gq = rows.scatter_add_rows(
                            remap, num_rows=uniq.shape[0], parallel=self.parallel,
                            obfuscate_empty=False,
                        )
                    else:
                        touched[who] = None
                        enc_gq = rows.scatter_add_rows(
                            state.flat_idx, num_rows=total, parallel=self.parallel,
                            obfuscate_empty=False,
                        )
                    rho[who] = self._he2ss(
                        enc_gq, me, peer.name, f"{tag}.bwd.gQ_{who}",
                        cfg.grad_mask_scale,
                    )
                    if use_delta:
                        touched[who + "_peer"] = ch.recv(
                            peer.name, f"{tag}.bwd.touched_{who}"
                        )
                    gq_share[who] = he2ss_receive(peer, ch, f"{tag}.bwd.gQ_{who}")

            self._a.pending = {
                "phi": phi,  # piece of grad_W_A
                "xi": xi,  # piece of grad_W_B (updates V_B at A)
                "rho": rho["A"],  # piece of grad_Q_A (updates S_A at A)
                "gq_peer": gq_share["B"],  # grad_Q_B - rho_B (updates T_B at A)
                "touched_own": touched["A"],
                "touched_peer": touched.get("B_peer"),
            }
            self._b.pending = {
                "gw_a_share": gw_a_minus_phi,  # updates V_A at B
                "gw_b_share": gw_b_minus_xi,  # updates U_B at B
                "rho": rho["B"],  # updates S_B at B
                "gq_peer": gq_share["A"],  # grad_Q_A - rho_A (updates T_A at B)
                "touched_own": touched["B"],
                "touched_peer": touched.get("A_peer"),
            }

    # --------------------------------------------------------------------- step

    def apply_updates(self, lr: float, momentum: float) -> None:
        """Figure 7 lines 17-20 and 24-26, plus all encrypted-copy refreshes."""
        if not self._a.pending:
            return
        from repro.core.matmul_layer import _momentum_update

        tag = f"{self.name}.{self._step}"
        a, b, ch = self.ctx.A, self.ctx.B, self.ctx.channel
        pa, pb = self._a.pending, self._b.pending

        # -- weight pieces (always dense; the W matrices are small).
        _momentum_update(self._a.u, self._a.vel_u, pa["phi"], lr, momentum, None)
        _momentum_update(
            self._b.v_peer, self._b.vel_v_peer, pb["gw_a_share"], lr, momentum, None
        )
        _momentum_update(self._b.u, self._b.vel_u, pb["gw_b_share"], lr, momentum, None)
        _momentum_update(
            self._a.v_peer, self._a.vel_v_peer, pa["xi"], lr, momentum, None
        )

        # -- table pieces (possibly restricted to touched rows).
        _momentum_update(
            self._a.s, self._a.vel_s, pa["rho"], lr, momentum, pa["touched_own"]
        )
        _momentum_update(
            self._b.t_peer, self._b.vel_t_peer, pb["gq_peer"], lr, momentum,
            pb["touched_peer"],
        )
        _momentum_update(
            self._b.s, self._b.vel_s, pb["rho"], lr, momentum, pb["touched_own"]
        )
        _momentum_update(
            self._a.t_peer, self._a.vel_t_peer, pa["gq_peer"], lr, momentum,
            pa["touched_peer"],
        )

        # -- refresh every encrypted copy that went stale.
        use_delta = pa["touched_own"] is not None
        self._refresh(b, a, f"{tag}.upd.V_A", self._b.v_peer, "enc_v_own", self._a)
        self._refresh(a, b, f"{tag}.upd.V_B", self._a.v_peer, "enc_v_own", self._b)
        self._refresh(
            a, b, f"{tag}.upd.U_A", self._a.u, "enc_u_peer", self._b,
            width=self.out_dim,
        )
        self._refresh(
            b, a, f"{tag}.upd.U_B", self._b.u, "enc_u_peer", self._a,
            width=self.out_dim,
        )
        # A delta refresh must match the resident tensor's form; when the
        # packing knob flipped mid-run, fall back to a full re-encrypt —
        # the one step that migrates [[T]] between packed and per-element.
        t_migrates = any(
            (self._piece_layout(sender.public_key, width=self.emb_dim) is not None)
            != isinstance(state.enc_t_own, PackedCryptoTensor)
            for sender, state in ((b, self._a), (a, self._b))
        )
        if not use_delta or t_migrates:
            self._refresh(
                b, a, f"{tag}.upd.T_A", self._b.t_peer, "enc_t_own", self._a,
                width=self.emb_dim,
            )
            self._refresh(
                a, b, f"{tag}.upd.T_B", self._a.t_peer, "enc_t_own", self._b,
                width=self.emb_dim,
            )
        else:
            # Only touched table rows changed; re-encrypt just those rows.
            self._refresh_rows(
                b, a, f"{tag}.upd.dT_A", self._b.t_peer, pb["touched_peer"],
                self._a, "enc_t_own",
            )
            self._refresh_rows(
                a, b, f"{tag}.upd.dT_B", self._a.t_peer, pa["touched_peer"],
                self._b, "enc_t_own",
            )
        self.zero_pending()

    def _refresh(
        self,
        sender: Party,
        receiver: Party,
        tag: str,
        plain: np.ndarray,
        attr: str,
        target_state: _EmbedState,
        width: int | None = None,
    ) -> None:
        """Full re-encrypt of a piece; ``width`` opts into the packing policy."""
        if width is not None:
            fresh: object = self._encrypt_piece(sender.public_key, plain, width=width)
        else:
            fresh = CryptoTensor.encrypt(
                sender.public_key, plain, obfuscate=True, parallel=self.parallel
            )
        self.ctx.channel.send(
            sender.name, receiver.name, tag, fresh, MessageKind.CIPHERTEXT
        )
        setattr(target_state, attr, self.ctx.channel.recv(receiver.name, tag))

    def _refresh_rows(
        self,
        sender: Party,
        receiver: Party,
        tag: str,
        plain: np.ndarray,
        rows: np.ndarray,
        target_state: _EmbedState,
        attr: str,
    ) -> None:
        """Re-encrypt and replace only the given rows of an encrypted copy.

        A packed resident copy takes packed replacement rows under its own
        layout (lane-additive patches would spend a guard bit per step, so
        packed delta refreshes *replace* rows — see the wire-format spec).
        """
        enc = getattr(target_state, attr)
        if isinstance(enc, PackedCryptoTensor):
            payload: object = PackedCryptoTensor.encrypt(
                sender.public_key, plain[rows], enc.layout,
                obfuscate=True, parallel=self.parallel,
            )
        else:
            payload = CryptoTensor.encrypt(
                sender.public_key, plain[rows], obfuscate=True, parallel=self.parallel
            )
        self.ctx.channel.send(
            sender.name, receiver.name, tag, payload, MessageKind.CIPHERTEXT
        )
        received = self.ctx.channel.recv(receiver.name, tag)
        if isinstance(enc, PackedCryptoTensor):
            enc.set_rows(rows, received)
        else:
            enc.data[rows] = received.data

    def zero_pending(self) -> None:
        self._a.pending = {}
        self._b.pending = {}

    # --------------------------------------------------------------- checkpoint

    def checkpoint_state(self) -> tuple:
        """Codec-serialisable snapshot of this layer at a batch boundary.

        Table and weight pieces, all four velocity buffers, the cached
        encrypted peer pieces and the step counter.  Batch-transient
        lookup state (``flat_idx``, ``psi``, ``e_minus_psi_peer``,
        ``pending``) is stale between batches and is reset on load; the
        static ``offsets`` come back with the rebuilt layer.
        """

        def side(st: _EmbedState) -> tuple:
            return (
                st.s, st.t_peer, st.u, st.v_peer,
                st.vel_s, st.vel_t_peer, st.vel_u, st.vel_v_peer,
                st.enc_t_own, st.enc_u_peer, st.enc_v_own,
            )

        return ("embed", self._step, side(self._a), side(self._b))

    def load_checkpoint_state(self, state: tuple) -> None:
        kind, step, a, b = state
        if kind != "embed":
            raise ValueError(
                f"layer {self.name!r} is an Embed-MatMul source but the "
                f"checkpoint holds a {kind!r} layer"
            )
        self._step = int(step)
        for st, vals in ((self._a, a), (self._b, b)):
            (s, t_peer, u, v_peer, vel_s, vel_t_peer, vel_u, vel_v_peer,
             enc_t_own, enc_u_peer, enc_v_own) = vals
            s = np.asarray(s, dtype=np.float64)
            if s.shape != st.s.shape:
                raise ValueError(
                    f"layer {self.name!r}: checkpoint piece shape {s.shape} "
                    f"does not match the model's {st.s.shape}"
                )
            st.s = s
            st.t_peer = np.asarray(t_peer, dtype=np.float64)
            st.u = np.asarray(u, dtype=np.float64)
            st.v_peer = np.asarray(v_peer, dtype=np.float64)
            st.vel_s = np.asarray(vel_s, dtype=np.float64)
            st.vel_t_peer = np.asarray(vel_t_peer, dtype=np.float64)
            st.vel_u = np.asarray(vel_u, dtype=np.float64)
            st.vel_v_peer = np.asarray(vel_v_peer, dtype=np.float64)
            st.enc_t_own = enc_t_own
            st.enc_u_peer = enc_u_peer
            st.enc_v_own = enc_v_own
            st.flat_idx = None
            st.psi = None
            st.e_minus_psi_peer = None
            st.pending = {}

    # -------------------------------------------------------------- introspection

    def federated_parameters(self) -> list[FederatedParameter]:
        return [
            FederatedParameter(
                f"{self.name}.Q_A", "A", (self.total_a, self.emb_dim),
                {"S": "A", "T": "B"},
            ),
            FederatedParameter(
                f"{self.name}.Q_B", "B", (self.total_b, self.emb_dim),
                {"S": "B", "T": "A"},
            ),
            FederatedParameter(
                f"{self.name}.W_A", "A", (self.flat_in_a, self.out_dim),
                {"U": "A", "V": "B"},
            ),
            FederatedParameter(
                f"{self.name}.W_B", "B", (self.flat_in_b, self.out_dim),
                {"U": "B", "V": "A"},
            ),
        ]

    def reveal_weights(self) -> dict[str, np.ndarray]:
        """TEST/DEBUG ONLY — global-observer reconstruction (see MatMul)."""
        return {
            "Q_A": self._a.s + self._b.t_peer,
            "Q_B": self._b.s + self._a.t_peer,
            "W_A": self._a.u + self._b.v_peer,
            "W_B": self._b.u + self._a.v_peer,
        }

    def piece_views(self) -> dict[str, np.ndarray]:
        """Per-party visible pieces (Figure 11 analysis)."""
        return {
            "A.S_A": self._a.s,
            "A.U_A": self._a.u,
            "B.T_A": self._b.t_peer,
            "B.S_B": self._b.s,
        }
