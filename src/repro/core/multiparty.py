"""Multi-party MatMul source layer — Algorithm 3 (Appendix C).

Generalises Figure 6 to ``M`` Party A's plus Party B: each ``A(i)`` shares
its weights with B exactly as in the two-party layer, while B's weights are
broken into ``M + 1`` pieces, ``W_B = U_B + sum_i V_B(i)``, with ``V_B(i)``
managed by ``A(i)``.  The forward pass runs the pairwise MatMul routine
once per ``A(i)`` (B contributing ``U_B / M`` each time, per the paper's
equation) and sums the results; the backward pass shares each
``grad_W_A(i)`` pairwise and lets B update ``U_B`` with the full local
gradient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.message import MessageKind
from repro.comm.party import VFLContext
from repro.core.federated import FederatedParameter, SourceLayer
from repro.core.matmul_layer import _momentum_update, matmul_any, t_matmul_any
from repro.crypto.crypto_tensor import CryptoTensor
from repro.crypto.secret_sharing import he2ss_receive, he2ss_split
from repro.tensor.sparse import CSRMatrix

__all__ = ["MultiPartyMatMulSource", "MultiPartyLR"]


@dataclass
class _AState:
    u: np.ndarray  # U_A(i) at A(i)
    v_b: np.ndarray  # V_B(i) at A(i)
    enc_v_own: CryptoTensor  # [[V_A(i)]]_B at A(i)
    vel_u: np.ndarray = None  # type: ignore[assignment]
    x_cache: object = None

    def __post_init__(self) -> None:
        self.vel_u = np.zeros_like(self.u)


@dataclass
class _BState:
    u: np.ndarray  # U_B
    v_a: dict[str, np.ndarray]  # V_A(i) per A party
    enc_v_b: dict[str, CryptoTensor]  # [[V_B(i)]]_{A(i)} per A party
    vel_u: np.ndarray = None  # type: ignore[assignment]
    vel_v_a: dict[str, np.ndarray] = field(default_factory=dict)
    x_cache: object = None

    def __post_init__(self) -> None:
        self.vel_u = np.zeros_like(self.u)
        self.vel_v_a = {k: np.zeros_like(v) for k, v in self.v_a.items()}


class MultiPartyMatMulSource(SourceLayer):
    """``Z = sum_i X_A(i) W_A(i) + X_B W_B`` with M Party A's."""

    def __init__(
        self,
        ctx: VFLContext,
        in_dims: dict[str, int],
        in_b: int,
        out_dim: int,
        init_scale: float = 0.05,
        name: str = "mp-matmul",
    ):
        if len(ctx.a_names) < 2:
            raise ValueError("use MatMulSource for the two-party setting")
        if set(in_dims) != set(ctx.a_names):
            raise ValueError(f"in_dims must cover parties {ctx.a_names}")
        self.ctx = ctx
        self.name = name
        self.in_dims = dict(in_dims)
        self.in_b, self.out_dim = in_b, out_dim
        self._cfg = ctx.config
        self._step = 0
        b, ch = ctx.B, ctx.channel
        m = len(ctx.a_names)
        piece = init_scale / np.sqrt(2.0)
        # Algorithm 3, MultiPartyMatMulInit.
        self._b = _BState(
            u=b.rng.normal(0.0, piece, size=(in_b, out_dim)),
            v_a={},
            enc_v_b={},
        )
        self._a: dict[str, _AState] = {}
        for a_name in ctx.a_names:
            a = ctx.parties[a_name]
            in_a = in_dims[a_name]
            v_a = b.rng.normal(0.0, piece, size=(in_a, out_dim))
            self._b.v_a[a_name] = v_a
            ch.send(
                b.name, a_name, f"{name}.init.encV_{a_name}",
                CryptoTensor.encrypt(b.public_key, v_a, obfuscate=True),
                MessageKind.CIPHERTEXT,
            )
            u_a = a.rng.normal(0.0, piece, size=(in_a, out_dim))
            v_b = a.rng.normal(0.0, piece / np.sqrt(m), size=(in_b, out_dim))
            ch.send(
                a_name, b.name, f"{name}.init.encVB_{a_name}",
                CryptoTensor.encrypt(a.public_key, v_b, obfuscate=True),
                MessageKind.CIPHERTEXT,
            )
            self._a[a_name] = _AState(
                u=u_a, v_b=v_b, enc_v_own=ch.recv(a_name, f"{name}.init.encV_{a_name}")
            )
            self._b.enc_v_b[a_name] = ch.recv(b.name, f"{name}.init.encVB_{a_name}")
        self._b.__post_init__()

    # ------------------------------------------------------------------ forward

    def forward(
        self, x_by_party: dict[str, np.ndarray | CSRMatrix], train: bool = True
    ) -> np.ndarray:
        """Algorithm 3, MultiPartyMatMulFw: sum of pairwise MatMul rounds."""
        self._step += 1
        tag = f"{self.name}.{self._step}"
        cfg, ch = self._cfg, self.ctx.channel
        b = self.ctx.B
        x_b = x_by_party["B"]
        if train:
            self._b.x_cache = x_b
        m = len(self.ctx.a_names)
        z_total = None
        for a_name in self.ctx.a_names:
            a = self.ctx.parties[a_name]
            state = self._a[a_name]
            x_a = x_by_party[a_name]
            if train:
                state.x_cache = x_a
            # Pairwise Figure 6 forward, with B contributing U_B / M.
            ct_a = x_a @ state.enc_v_own
            eps_a = he2ss_split(
                ct_a, a, "B", ch, f"{tag}.fwd.XV_{a_name}", cfg.mask_scale
            )
            ct_b = x_b @ self._b.enc_v_b[a_name]
            eps_b = he2ss_split(
                ct_b, b, a_name, ch, f"{tag}.fwd.XVB_{a_name}", cfg.mask_scale
            )
            xvb_share = he2ss_receive(a, ch, f"{tag}.fwd.XVB_{a_name}")
            xva_share = he2ss_receive(b, ch, f"{tag}.fwd.XV_{a_name}")
            z_a = matmul_any(x_a, state.u) + eps_a + xvb_share
            ch.send(a_name, b.name, f"{tag}.fwd.Z_{a_name}", z_a, MessageKind.OUTPUT_SHARE)
            z_i = (
                ch.recv(b.name, f"{tag}.fwd.Z_{a_name}")
                + matmul_any(x_b, self._b.u / m)
                + eps_b
                + xva_share
            )
            z_total = z_i if z_total is None else z_total + z_i
        return z_total

    # ----------------------------------------------------------------- backward

    def backward(self, grad_z: np.ndarray) -> None:
        """Algorithm 3, MultiPartyMatMulBw (gradient sharing per A party)."""
        if self._b.x_cache is None:
            raise RuntimeError("backward before forward")
        tag = f"{self.name}.{self._step}"
        cfg, ch = self._cfg, self.ctx.channel
        b = self.ctx.B
        grad_z = np.asarray(grad_z, dtype=np.float64).reshape(-1, self.out_dim)
        enc_gz = CryptoTensor.encrypt(b.public_key, grad_z, obfuscate=True)
        self._pending_b = {"gw_b": t_matmul_any(self._b.x_cache, grad_z), "shares": {}}
        self._pending_a: dict[str, np.ndarray] = {}
        for a_name in self.ctx.a_names:
            a = self.ctx.parties[a_name]
            state = self._a[a_name]
            ch.send(b.name, a_name, f"{tag}.bwd.gZ_{a_name}", enc_gz, MessageKind.CIPHERTEXT)
            enc_gz_at_a = ch.recv(a_name, f"{tag}.bwd.gZ_{a_name}")
            if isinstance(state.x_cache, CSRMatrix):
                from repro.crypto.crypto_tensor import sparse_t_matmul_cipher

                enc_gw = sparse_t_matmul_cipher(state.x_cache, enc_gz_at_a)
            else:
                enc_gw = np.asarray(state.x_cache).T @ enc_gz_at_a
            phi = he2ss_split(
                enc_gw, a, "B", ch, f"{tag}.bwd.gW_{a_name}", cfg.grad_mask_scale
            )
            self._pending_b["shares"][a_name] = he2ss_receive(
                b, ch, f"{tag}.bwd.gW_{a_name}"
            )
            self._pending_a[a_name] = phi

    def apply_updates(self, lr: float, momentum: float) -> None:
        if not getattr(self, "_pending_a", None):
            return
        tag = f"{self.name}.{self._step}"
        b, ch = self.ctx.B, self.ctx.channel
        for a_name in self.ctx.a_names:
            state = self._a[a_name]
            _momentum_update(
                state.u, state.vel_u, self._pending_a[a_name], lr, momentum, None
            )
            _momentum_update(
                self._b.v_a[a_name],
                self._b.vel_v_a[a_name],
                self._pending_b["shares"][a_name],
                lr,
                momentum,
                None,
            )
            fresh = CryptoTensor.encrypt(
                b.public_key, self._b.v_a[a_name], obfuscate=True
            )
            ch.send(
                b.name, a_name, f"{tag}.upd.encV_{a_name}", fresh, MessageKind.CIPHERTEXT
            )
            state.enc_v_own = ch.recv(a_name, f"{tag}.upd.encV_{a_name}")
        _momentum_update(
            self._b.u, self._b.vel_u, self._pending_b["gw_b"], lr, momentum, None
        )
        self.zero_pending()

    def zero_pending(self) -> None:
        self._pending_a = {}
        self._pending_b = {}

    # -------------------------------------------------------------- introspection

    def federated_parameters(self) -> list[FederatedParameter]:
        params = [
            FederatedParameter(
                f"{self.name}.W_{a}", a, (self.in_dims[a], self.out_dim),
                {"U": a, "V": "B"},
            )
            for a in self.ctx.a_names
        ]
        holders = {"U": "B"}
        for a in self.ctx.a_names:
            holders[f"V({a})"] = a
        params.append(
            FederatedParameter(
                f"{self.name}.W_B", "B", (self.in_b, self.out_dim), holders
            )
        )
        return params

    def reveal_weights(self) -> dict[str, np.ndarray]:
        """TEST/DEBUG ONLY — global-observer reconstruction."""
        out = {
            f"W_{a}": self._a[a].u + self._b.v_a[a] for a in self.ctx.a_names
        }
        out["W_B"] = self._b.u + sum(self._a[a].v_b for a in self.ctx.a_names)
        return out


class MultiPartyLR:
    """Logistic regression over M Party A's + Party B (Appendix C).

    A thin model wrapper around :class:`MultiPartyMatMulSource` with a bias
    term at Party B, exposing the same forward/backward/step cadence as the
    two-party models (see ``examples/multiparty_lr.py`` for the loop).
    """

    def __init__(self, ctx: VFLContext, in_dims: dict[str, int], in_b: int):
        self.ctx = ctx
        self.source = MultiPartyMatMulSource(ctx, in_dims, in_b, 1, name="mp-lr")
        self.bias = 0.0
        self._vel_bias = 0.0

    def forward(self, x_by_party: dict[str, object], train: bool = True) -> np.ndarray:
        """Logits at Party B for an aligned multi-party batch."""
        return self.source.forward(x_by_party, train=train) + self.bias

    def train_step(
        self,
        x_by_party: dict[str, object],
        labels: np.ndarray,
        lr: float,
        momentum: float = 0.9,
    ) -> float:
        """One BCE step; returns the training loss."""
        logits = self.forward(x_by_party, train=True)
        y = np.asarray(labels, dtype=np.float64).reshape(logits.shape)
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
        loss = float(
            np.mean(
                np.maximum(logits, 0)
                - logits * y
                + np.log1p(np.exp(-np.abs(logits)))
            )
        )
        grad_z = (probs - y) / y.shape[0]
        self.source.backward(grad_z)
        self.source.apply_updates(lr, momentum)
        self._vel_bias = momentum * self._vel_bias + float(grad_z.sum())
        self.bias -= lr * self._vel_bias
        return loss
