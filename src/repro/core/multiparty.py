"""Multi-party MatMul source layer — Algorithm 3 (Appendix C).

Generalises Figure 6 to ``M`` Party A's plus Party B: each ``A(i)`` shares
its weights with B exactly as in the two-party layer, while B's weights are
broken into ``M + 1`` pieces, ``W_B = U_B + sum_i V_B(i)``, with ``V_B(i)``
managed by ``A(i)``.  The forward pass runs the pairwise MatMul routine
once per ``A(i)`` (B contributing ``U_B / M`` each time, per the paper's
equation) and sums the results; the backward pass shares each
``grad_W_A(i)`` pairwise and lets B update ``U_B`` with the full local
gradient.

Non-mirrored execution
----------------------
Every statement below belongs to exactly one actor (some ``A(i)`` or B),
and is guarded by ``ctx.is_local(actor)``.  In the single-process
simulation all parties are local, so the guards are all true and the layer
runs the original interleaved schedule — bit-identical to the pre-fabric
implementation.  On a fabric endpoint (see :mod:`repro.comm.fabric`) only
the local party's statements execute: remote state objects are never
constructed, remote RNG streams are never drawn from, and every
cross-party value arrives through the channel.  Per-party *draw order* is
preserved exactly, which is the only thing bit-identity of losses and
weights depends on — obfuscation blinders never survive decryption, and
HE2SS masks cancel exactly in the weight-piece sums.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.message import MessageKind
from repro.comm.party import VFLContext
from repro.core.federated import FederatedParameter, SourceLayer
from repro.core.matmul_layer import _momentum_update, matmul_any, t_matmul_any
from repro.crypto.crypto_tensor import CryptoTensor
from repro.crypto.secret_sharing import he2ss_receive, he2ss_split
from repro.tensor.sparse import CSRMatrix

__all__ = ["MultiPartyMatMulSource", "MultiPartyLR"]


@dataclass
class _AState:
    u: np.ndarray  # U_A(i) at A(i)
    v_b: np.ndarray  # V_B(i) at A(i)
    enc_v_own: CryptoTensor  # [[V_A(i)]]_B at A(i)
    vel_u: np.ndarray = None  # type: ignore[assignment]
    x_cache: object = None

    def __post_init__(self) -> None:
        self.vel_u = np.zeros_like(self.u)


@dataclass
class _BState:
    u: np.ndarray  # U_B
    v_a: dict[str, np.ndarray]  # V_A(i) per A party
    enc_v_b: dict[str, CryptoTensor]  # [[V_B(i)]]_{A(i)} per A party
    vel_u: np.ndarray = None  # type: ignore[assignment]
    vel_v_a: dict[str, np.ndarray] = field(default_factory=dict)
    x_cache: object = None

    def __post_init__(self) -> None:
        self.vel_u = np.zeros_like(self.u)
        self.vel_v_a = {k: np.zeros_like(v) for k, v in self.v_a.items()}


class MultiPartyMatMulSource(SourceLayer):
    """``Z = sum_i X_A(i) W_A(i) + X_B W_B`` with M Party A's."""

    def __init__(
        self,
        ctx: VFLContext,
        in_dims: dict[str, int],
        in_b: int,
        out_dim: int,
        init_scale: float = 0.05,
        name: str = "mp-matmul",
    ):
        if len(ctx.a_names) < 2:
            raise ValueError("use MatMulSource for the two-party setting")
        if set(in_dims) != set(ctx.a_names):
            raise ValueError(f"in_dims must cover parties {ctx.a_names}")
        self.ctx = ctx
        self.name = name
        self.in_dims = dict(in_dims)
        self.in_b, self.out_dim = in_b, out_dim
        self._cfg = ctx.config
        self._step = 0
        b, ch = ctx.B, ctx.channel
        local = ctx.is_local
        m = len(ctx.a_names)
        piece = init_scale / np.sqrt(2.0)
        # Algorithm 3, MultiPartyMatMulInit.  B's state exists only where
        # B is local — an A(i) endpoint must never hold B's plaintext
        # pieces, nor advance B's RNG stream.
        self._b = (
            _BState(
                u=b.rng.normal(0.0, piece, size=(in_b, out_dim)),
                v_a={},
                enc_v_b={},
            )
            if local("B")
            else None
        )
        self._a: dict[str, _AState] = {}
        for a_name in ctx.a_names:
            a = ctx.parties[a_name]
            in_a = in_dims[a_name]
            if local("B"):
                v_a = b.rng.normal(0.0, piece, size=(in_a, out_dim))
                self._b.v_a[a_name] = v_a
                ch.send(
                    b.name, a_name, f"{name}.init.encV_{a_name}",
                    CryptoTensor.encrypt(b.public_key, v_a, obfuscate=True),
                    MessageKind.CIPHERTEXT,
                )
            if local(a_name):
                u_a = a.rng.normal(0.0, piece, size=(in_a, out_dim))
                v_b = a.rng.normal(
                    0.0, piece / np.sqrt(m), size=(in_b, out_dim)
                )
                ch.send(
                    a_name, b.name, f"{name}.init.encVB_{a_name}",
                    CryptoTensor.encrypt(a.public_key, v_b, obfuscate=True),
                    MessageKind.CIPHERTEXT,
                )
                self._a[a_name] = _AState(
                    u=u_a,
                    v_b=v_b,
                    enc_v_own=ch.recv(a_name, f"{name}.init.encV_{a_name}"),
                )
            if local("B"):
                self._b.enc_v_b[a_name] = ch.recv(
                    b.name, f"{name}.init.encVB_{a_name}"
                )
        if local("B"):
            self._b.__post_init__()

    # ------------------------------------------------------------------ forward

    def forward(
        self, x_by_party: dict[str, np.ndarray | CSRMatrix], train: bool = True
    ) -> np.ndarray | None:
        """Algorithm 3, MultiPartyMatMulFw: sum of pairwise MatMul rounds.

        Returns the summed output shares at Party B; ``None`` on endpoints
        where B is remote (the logits only ever materialise at B).
        ``x_by_party`` need only cover this endpoint's local parties.
        """
        self._step += 1
        tag = f"{self.name}.{self._step}"
        cfg, ch = self._cfg, self.ctx.channel
        b = self.ctx.B
        local = self.ctx.is_local
        if local("B"):
            x_b = x_by_party["B"]
            if train:
                self._b.x_cache = x_b
        m = len(self.ctx.a_names)
        z_total = None
        for a_name in self.ctx.a_names:
            a = self.ctx.parties[a_name]
            if local(a_name):
                state = self._a[a_name]
                x_a = x_by_party[a_name]
                if train:
                    state.x_cache = x_a
                # Pairwise Figure 6 forward, with B contributing U_B / M.
                ct_a = x_a @ state.enc_v_own
                eps_a = he2ss_split(
                    ct_a, a, "B", ch, f"{tag}.fwd.XV_{a_name}", cfg.mask_scale
                )
            if local("B"):
                ct_b = x_b @ self._b.enc_v_b[a_name]
                eps_b = he2ss_split(
                    ct_b, b, a_name, ch, f"{tag}.fwd.XVB_{a_name}", cfg.mask_scale
                )
            if local(a_name):
                xvb_share = he2ss_receive(a, ch, f"{tag}.fwd.XVB_{a_name}")
            if local("B"):
                xva_share = he2ss_receive(b, ch, f"{tag}.fwd.XV_{a_name}")
            if local(a_name):
                z_a = matmul_any(x_a, state.u) + eps_a + xvb_share
                ch.send(
                    a_name, b.name, f"{tag}.fwd.Z_{a_name}", z_a,
                    MessageKind.OUTPUT_SHARE,
                )
            if local("B"):
                z_i = (
                    ch.recv(b.name, f"{tag}.fwd.Z_{a_name}")
                    + matmul_any(x_b, self._b.u / m)
                    + eps_b
                    + xva_share
                )
                z_total = z_i if z_total is None else z_total + z_i
        return z_total

    # ----------------------------------------------------------------- backward

    def backward(self, grad_z: np.ndarray | None) -> None:
        """Algorithm 3, MultiPartyMatMulBw (gradient sharing per A party).

        ``grad_z`` is only meaningful where B is local (the loss gradient
        exists at B); pass ``None`` on A-only endpoints.
        """
        local = self.ctx.is_local
        if local("B"):
            if self._b.x_cache is None:
                raise RuntimeError("backward before forward")
        elif any(s.x_cache is None for s in self._a.values()):
            raise RuntimeError("backward before forward")
        tag = f"{self.name}.{self._step}"
        cfg, ch = self._cfg, self.ctx.channel
        b = self.ctx.B
        if local("B"):
            grad_z = np.asarray(grad_z, dtype=np.float64).reshape(
                -1, self.out_dim
            )
            enc_gz = CryptoTensor.encrypt(b.public_key, grad_z, obfuscate=True)
            self._pending_b = {
                "gw_b": t_matmul_any(self._b.x_cache, grad_z),
                "shares": {},
            }
        else:
            self._pending_b = {}
        self._pending_a: dict[str, np.ndarray] = {}
        for a_name in self.ctx.a_names:
            a = self.ctx.parties[a_name]
            if local("B"):
                ch.send(
                    b.name, a_name, f"{tag}.bwd.gZ_{a_name}", enc_gz,
                    MessageKind.CIPHERTEXT,
                )
            if local(a_name):
                state = self._a[a_name]
                enc_gz_at_a = ch.recv(a_name, f"{tag}.bwd.gZ_{a_name}")
                if isinstance(state.x_cache, CSRMatrix):
                    from repro.crypto.crypto_tensor import sparse_t_matmul_cipher

                    enc_gw = sparse_t_matmul_cipher(state.x_cache, enc_gz_at_a)
                else:
                    enc_gw = np.asarray(state.x_cache).T @ enc_gz_at_a
                phi = he2ss_split(
                    enc_gw, a, "B", ch, f"{tag}.bwd.gW_{a_name}",
                    cfg.grad_mask_scale,
                )
                self._pending_a[a_name] = phi
            if local("B"):
                self._pending_b["shares"][a_name] = he2ss_receive(
                    b, ch, f"{tag}.bwd.gW_{a_name}"
                )

    def apply_updates(self, lr: float, momentum: float) -> None:
        if not (
            getattr(self, "_pending_a", None) or getattr(self, "_pending_b", None)
        ):
            return
        tag = f"{self.name}.{self._step}"
        b, ch = self.ctx.B, self.ctx.channel
        local = self.ctx.is_local
        for a_name in self.ctx.a_names:
            if local(a_name):
                state = self._a[a_name]
                _momentum_update(
                    state.u, state.vel_u, self._pending_a[a_name], lr,
                    momentum, None,
                )
            if local("B"):
                _momentum_update(
                    self._b.v_a[a_name],
                    self._b.vel_v_a[a_name],
                    self._pending_b["shares"][a_name],
                    lr,
                    momentum,
                    None,
                )
                fresh = CryptoTensor.encrypt(
                    b.public_key, self._b.v_a[a_name], obfuscate=True
                )
                ch.send(
                    b.name, a_name, f"{tag}.upd.encV_{a_name}", fresh,
                    MessageKind.CIPHERTEXT,
                )
            if local(a_name):
                state = self._a[a_name]
                state.enc_v_own = ch.recv(a_name, f"{tag}.upd.encV_{a_name}")
        if local("B"):
            _momentum_update(
                self._b.u, self._b.vel_u, self._pending_b["gw_b"], lr,
                momentum, None,
            )
        self.zero_pending()

    def zero_pending(self) -> None:
        self._pending_a = {}
        self._pending_b = {}

    # ------------------------------------------------------------- checkpointing

    def checkpoint_state(self) -> tuple:
        """Codec-serialisable snapshot of this endpoint's slice of the layer.

        Only *local* actors' state is captured — an A(i) endpoint snapshots
        its own pieces plus the cached ``[[V_A(i)]]_B`` ciphertext, the key
        owner snapshots ``U_B`` and every ``V_A(i)``/``[[V_B(i)]]_{A(i)}``
        — together with the step counter the protocol tags derive from.
        Batch-transient state (``x_cache``, pendings) is provably stale at
        the batch boundaries checkpoints are written on and is reset by
        :meth:`load_checkpoint_state`.
        """
        a_section = [
            (name, st.u, st.v_b, st.vel_u, st.enc_v_own)
            for name, st in sorted(self._a.items())
        ]
        b_section = (
            None
            if self._b is None
            else (
                self._b.u,
                self._b.vel_u,
                sorted(self._b.v_a.items()),
                sorted(self._b.vel_v_a.items()),
                sorted(self._b.enc_v_b.items()),
            )
        )
        return ("mp-matmul", self._step, a_section, b_section)

    def load_checkpoint_state(self, state: tuple) -> None:
        kind, step, a_section, b_section = state
        if kind != "mp-matmul":
            raise ValueError(
                f"layer {self.name!r} is a multi-party MatMul source but "
                f"the checkpoint holds a {kind!r} layer"
            )
        saved_a = {str(name): rest for name, *rest in a_section}
        if set(saved_a) != set(self._a):
            raise ValueError(
                f"layer {self.name!r}: checkpoint covers A parties "
                f"{sorted(saved_a)} but this endpoint hosts "
                f"{sorted(self._a)}"
            )
        if (self._b is None) != (b_section is None):
            raise ValueError(
                f"layer {self.name!r}: checkpoint and endpoint disagree on "
                f"hosting Party B"
            )
        self._step = int(step)
        for name, st in self._a.items():
            u, v_b, vel_u, enc_v_own = saved_a[name]
            u = np.asarray(u, dtype=np.float64)
            if u.shape != st.u.shape:
                raise ValueError(
                    f"layer {self.name!r}: checkpoint piece shape {u.shape} "
                    f"does not match the model's {st.u.shape}"
                )
            st.u = u
            st.v_b = np.asarray(v_b, dtype=np.float64)
            st.vel_u = np.asarray(vel_u, dtype=np.float64)
            st.enc_v_own = enc_v_own
            st.x_cache = None
        if self._b is not None:
            u, vel_u, v_a, vel_v_a, enc_v_b = b_section
            u = np.asarray(u, dtype=np.float64)
            if u.shape != self._b.u.shape:
                raise ValueError(
                    f"layer {self.name!r}: checkpoint U_B shape {u.shape} "
                    f"does not match the model's {self._b.u.shape}"
                )
            saved_v_a = {str(k): v for k, v in v_a}
            if set(saved_v_a) != set(self._b.v_a):
                raise ValueError(
                    f"layer {self.name!r}: checkpoint V_A pieces cover "
                    f"{sorted(saved_v_a)} but the model manages "
                    f"{sorted(self._b.v_a)}"
                )
            self._b.u = u
            self._b.vel_u = np.asarray(vel_u, dtype=np.float64)
            self._b.v_a = {
                k: np.asarray(v, dtype=np.float64) for k, v in saved_v_a.items()
            }
            self._b.vel_v_a = {
                str(k): np.asarray(v, dtype=np.float64) for k, v in vel_v_a
            }
            self._b.enc_v_b = {str(k): v for k, v in enc_v_b}
            self._b.x_cache = None
        self.zero_pending()

    # -------------------------------------------------------------- introspection

    def federated_parameters(self) -> list[FederatedParameter]:
        params = [
            FederatedParameter(
                f"{self.name}.W_{a}", a, (self.in_dims[a], self.out_dim),
                {"U": a, "V": "B"},
            )
            for a in self.ctx.a_names
        ]
        holders = {"U": "B"}
        for a in self.ctx.a_names:
            holders[f"V({a})"] = a
        params.append(
            FederatedParameter(
                f"{self.name}.W_B", "B", (self.in_b, self.out_dim), holders
            )
        )
        return params

    def local_weight_pieces(self) -> dict[str, np.ndarray]:
        """This endpoint's plaintext weight pieces, keyed for reassembly.

        ``A(i)`` contributes ``U_{A(i)}`` and ``VB_{A(i)}``; B contributes
        ``U_B`` and every ``V_{A(i)}``.  A *test-side* global observer can
        reassemble ``W_{A(i)} = U_{A(i)} + V_{A(i)}`` and ``W_B = U_B +
        sum_i VB_{A(i)}`` by pooling the pieces of all endpoints — no
        single endpoint ever holds both pieces of a weight.
        """
        out: dict[str, np.ndarray] = {}
        for a_name, state in self._a.items():
            out[f"U_{a_name}"] = np.array(state.u)
            out[f"VB_{a_name}"] = np.array(state.v_b)
        if self._b is not None:
            out["U_B"] = np.array(self._b.u)
            for a_name, v_a in self._b.v_a.items():
                out[f"V_{a_name}"] = np.array(v_a)
        return out

    def reveal_weights(self) -> dict[str, np.ndarray]:
        """TEST/DEBUG ONLY — global-observer reconstruction (all-local)."""
        if self._b is None or len(self._a) != len(self.ctx.a_names):
            raise RuntimeError(
                "reveal_weights needs every party local; on a fabric "
                "endpoint pool local_weight_pieces() across endpoints"
            )
        out = {
            f"W_{a}": self._a[a].u + self._b.v_a[a] for a in self.ctx.a_names
        }
        out["W_B"] = self._b.u + sum(self._a[a].v_b for a in self.ctx.a_names)
        return out


class MultiPartyLR:
    """Logistic regression over M Party A's + Party B (Appendix C).

    A thin model wrapper around :class:`MultiPartyMatMulSource` with a bias
    term at Party B, exposing the same forward/backward/step cadence as the
    two-party models (see ``examples/multiparty_lr.py`` for the loop).
    Loss, labels and bias live at Party B only: on endpoints where B is
    remote, :meth:`forward` and :meth:`train_step` return ``None``.
    """

    def __init__(self, ctx: VFLContext, in_dims: dict[str, int], in_b: int):
        self.ctx = ctx
        self.source = MultiPartyMatMulSource(ctx, in_dims, in_b, 1, name="mp-lr")
        self.bias = 0.0
        self._vel_bias = 0.0

    def checkpoint_state(self) -> tuple:
        """Bias term (Party B state, but a float travels harmlessly) plus
        the source layer's per-endpoint snapshot."""
        return (
            float(self.bias),
            float(self._vel_bias),
            self.source.checkpoint_state(),
        )

    def load_checkpoint_state(self, state: tuple) -> None:
        bias, vel_bias, source_state = state
        self.source.load_checkpoint_state(source_state)
        self.bias = float(bias)
        self._vel_bias = float(vel_bias)

    def forward(
        self, x_by_party: dict[str, object], train: bool = True
    ) -> np.ndarray | None:
        """Logits at Party B for an aligned multi-party batch."""
        z = self.source.forward(x_by_party, train=train)
        if z is None:  # non-B endpoint: logits only materialise at B
            return None
        return z + self.bias

    def train_step(
        self,
        x_by_party: dict[str, object],
        labels: np.ndarray | None,
        lr: float,
        momentum: float = 0.9,
    ) -> float | None:
        """One BCE step; returns the training loss (``None`` off Party B)."""
        logits = self.forward(x_by_party, train=True)
        loss = None
        grad_z = None
        if logits is not None:
            y = np.asarray(labels, dtype=np.float64).reshape(logits.shape)
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
            loss = float(
                np.mean(
                    np.maximum(logits, 0)
                    - logits * y
                    + np.log1p(np.exp(-np.abs(logits)))
                )
            )
            grad_z = (probs - y) / y.shape[0]
        self.source.backward(grad_z)
        self.source.apply_updates(lr, momentum)
        if grad_z is not None:
            self._vel_bias = momentum * self._vel_bias + float(grad_z.sum())
            self.bias -= lr * self._vel_bias
        return loss
