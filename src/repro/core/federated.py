"""Federated module/parameter plumbing (the Figure 8 API surface).

``FederatedParameter`` describes one logical tensor whose pieces live on
different parties (W = U + V, Q = S + T); no single object ever holds the
reconstructed value — reconstruction exists only in the test-suite, which
is allowed to play "global observer" to check losslessness.

``FederatedModule`` mirrors ``torch.nn.Module``: it collects federated
source layers (for :class:`repro.core.optimizer.FederatedSGD`) and plain
:class:`repro.tensor.nn.Module` top-model parameters (for a plaintext
optimizer), so the Figure 8 training loop works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.tensor.nn import Module
from repro.tensor.tensor import Tensor

__all__ = ["FederatedParameter", "FederatedModule", "SourceLayer"]


@dataclass
class FederatedParameter:
    """Bookkeeping for one secretly shared tensor.

    Attributes:
        name: logical name ("W_A", "Q_B", ...).
        owner: the party the parameter logically belongs to.
        shape: full tensor shape.
        holders: mapping piece-name -> party holding it, e.g.
            ``{"U": "A", "V": "B"}``.
    """

    name: str
    owner: str
    shape: tuple[int, ...]
    holders: dict[str, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))


class SourceLayer:
    """Base class for federated source layers.

    Concrete layers (MatMul, Embed-MatMul) implement:

    * ``forward(batch) -> np.ndarray`` — runs the federated forward protocol
      and returns the aggregated activations Z *at Party B*;
    * ``backward(grad_z) -> None`` — runs the federated backward protocol,
      leaving secretly shared gradient pieces pending on each party;
    * ``apply_updates(lr, momentum) -> None`` — momentum update of every
      piece at its holder plus the encrypted-copy refresh protocol.

    ``federated_parameters`` describes what is shared where (used by tests
    and by the repr).
    """

    name: str = "source"

    def forward(self, batch: object) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_z: np.ndarray) -> None:
        raise NotImplementedError

    def apply_updates(self, lr: float, momentum: float) -> None:
        raise NotImplementedError

    def federated_parameters(self) -> list[FederatedParameter]:
        raise NotImplementedError

    def zero_pending(self) -> None:
        raise NotImplementedError


class FederatedModule(Module):
    """A model made of federated source layers plus a plaintext top model."""

    def source_layers(self) -> Iterator[SourceLayer]:
        """Yield every source layer reachable from this module."""
        seen: set[int] = set()
        for value in self.__dict__.values():
            yield from _collect_sources(value, seen)

    def federated_parameters(self) -> list[FederatedParameter]:
        params: list[FederatedParameter] = []
        for layer in self.source_layers():
            params.extend(layer.federated_parameters())
        return params

    def top_parameters(self) -> list[Tensor]:
        """The plaintext (Party B) parameters."""
        return list(self.parameters())


def _collect_sources(value: object, seen: set[int]) -> Iterator[SourceLayer]:
    if isinstance(value, SourceLayer):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, FederatedModule):
        for sub in value.__dict__.values():
            yield from _collect_sources(sub, seen)
    elif isinstance(value, Module):
        for sub in value.__dict__.values():
            yield from _collect_sources(sub, seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_sources(item, seen)
