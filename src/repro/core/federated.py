"""Federated module/parameter plumbing (the Figure 8 API surface).

``FederatedParameter`` describes one logical tensor whose pieces live on
different parties (W = U + V, Q = S + T); no single object ever holds the
reconstructed value — reconstruction exists only in the test-suite, which
is allowed to play "global observer" to check losslessness.

``FederatedModule`` mirrors ``torch.nn.Module``: it collects federated
source layers (for :class:`repro.core.optimizer.FederatedSGD`) and plain
:class:`repro.tensor.nn.Module` top-model parameters (for a plaintext
optimizer), so the Figure 8 training loop works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.tensor.nn import Module
from repro.tensor.tensor import Tensor

__all__ = ["FederatedParameter", "FederatedModule", "SourceLayer"]


@dataclass
class FederatedParameter:
    """Bookkeeping for one secretly shared tensor.

    Attributes:
        name: logical name ("W_A", "Q_B", ...).
        owner: the party the parameter logically belongs to.
        shape: full tensor shape.
        holders: mapping piece-name -> party holding it, e.g.
            ``{"U": "A", "V": "B"}``.
    """

    name: str
    owner: str
    shape: tuple[int, ...]
    holders: dict[str, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))


class SourceLayer:
    """Base class for federated source layers.

    Concrete layers (MatMul, Embed-MatMul) implement:

    * ``forward(batch) -> np.ndarray`` — runs the federated forward protocol
      and returns the aggregated activations Z *at Party B*;
    * ``backward(grad_z) -> None`` — runs the federated backward protocol,
      leaving secretly shared gradient pieces pending on each party;
    * ``apply_updates(lr, momentum) -> None`` — momentum update of every
      piece at its holder plus the encrypted-copy refresh protocol.

    ``federated_parameters`` describes what is shared where (used by tests
    and by the repr).
    """

    name: str = "source"
    # Set by concrete layers: protocol config, per-layer ParallelContext,
    # the federation context and the layer's output width.
    parallel = None
    out_dim: int = 0

    def forward(self, batch: object) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_z: np.ndarray) -> None:
        raise NotImplementedError

    def apply_updates(self, lr: float, momentum: float) -> None:
        raise NotImplementedError

    def federated_parameters(self) -> list[FederatedParameter]:
        raise NotImplementedError

    def zero_pending(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------- packing policy
    #
    # Shared by every source layer so the MatMul and Embed-MatMul protocols
    # cannot silently diverge on layout parameters.  Gated by
    # ``VFLConfig.packing``; see repro.crypto.packing for the subsystem.

    # Accumulation-depth floor for slot budgets.  Backward transfers
    # (``X.T @ [[grad_Z]]``, ``psi.T @ [[grad_Z]]``) contract over the
    # *batch* dimension, which is unknown when a layout is fixed at
    # init/refresh time — so every layout budgets guard bits for
    # contractions up to this depth on top of the layer's own widest
    # feature dimension.
    PACKING_DEPTH_FLOOR: int = 4096

    def _packing_contraction(self) -> int:
        """The layer's widest forward contraction dimension (override)."""
        raise NotImplementedError

    def _packing_depth(self) -> int:
        """Designed accumulation-depth budget for this layer's layouts.

        Layers whose backward accumulates rows that are themselves
        contractions (the embedding scatter-add) override this to budget
        the compound fan-in, so ``PACKING_DEPTH_FLOOR`` keeps its meaning
        of a *batch-row* floor for every layer.
        """
        return max(self._packing_contraction(), self.PACKING_DEPTH_FLOOR)

    def _pack_layout(self, public_key):
        """Slot layout for ciphertexts under ``public_key`` (None = off).

        Derived deterministically from the config and the key, so both
        parties agree without negotiation; the depth budget covers the
        layer's contractions and batch-deep backward transfers up to
        ``PACKING_DEPTH_FLOOR`` rows (see :meth:`_packing_depth`).
        """
        cfg = getattr(self, "_cfg", None)
        if cfg is None or not getattr(cfg, "packing", False):
            return None
        from repro.crypto.packing import protocol_layout

        return protocol_layout(
            public_key,
            mask_scale=max(cfg.mask_scale, cfg.grad_mask_scale),
            acc_depth=self._packing_depth(),
        )

    def _piece_layout(self, public_key, width: int | None = None):
        """Layout for resident weight/table pieces, or None when not a win.

        ``width`` is the piece's row width — the output dimension for
        weight pieces (the default), the embedding dimension for table
        pieces.  Row-aligned lanes only pay when a row spans fewer
        ciphertexts than values — for narrow rows (e.g. ``out_dim == 1``
        logistic regression) the pieces stay per-element and the HE2SS
        transfers still pack contiguously downstream.
        """
        if width is None:
            width = self.out_dim
        layout = self._pack_layout(public_key)
        if layout is not None and layout.ct_count(width) < width:
            return layout
        return None

    def _encrypt_piece(self, public_key, array: np.ndarray, width: int | None = None):
        """Encrypt a piece, packed along its ``width``-wide rows when it pays."""
        from repro.crypto.crypto_tensor import CryptoTensor
        from repro.crypto.packing import PackedCryptoTensor

        layout = self._piece_layout(public_key, width)
        if layout is not None:
            return PackedCryptoTensor.encrypt(
                public_key, array, layout, obfuscate=True, parallel=self.parallel
            )
        return CryptoTensor.encrypt(
            public_key, array, obfuscate=True, parallel=self.parallel
        )

    def _check_packing_depth(self, batch: int, row_terms: int = 1) -> None:
        """Validate a step's worst-case lane fan-in against the layouts.

        A lane may accumulate up to ``batch`` rows this step, each itself a
        ``row_terms``-deep contraction (1 for plain ``X.T @ [[grad_Z]]``
        rows, ``out_dim + 1`` for the embedding backward's gradient rows).
        The check mirrors the packed bookkeeping's exact bit arithmetic —
        ``ceil(log2(row_terms)) + ceil(log2(batch))`` guard bits must fit
        the ``ceil(log2(acc_depth))`` the layout budgeted — so a step that
        passes here cannot die later in the backward's guard-band checks,
        and one that fails raises *before* any ciphertext is produced.
        ``PACKING_DEPTH_FLOOR`` only *floors* the designed depth;
        exceeding it would otherwise quietly cross the slot guard band and
        corrupt neighbouring lanes in ways the borrow-chain decoder cannot
        always detect.

        This is a safety check: it reads ``self._cfg`` and ``self.ctx``
        directly so a mis-wired subclass fails loudly (AttributeError)
        rather than silently skipping the guard.
        """
        if not self._cfg.packing:
            return
        from repro.crypto.packing import _acc_bits

        need = _acc_bits(max(row_terms, 1)) + _acc_bits(max(batch, 1))
        for party in self.ctx.parties.values():
            layout = self._pack_layout(party.public_key)
            if layout is not None and need > _acc_bits(layout.acc_depth):
                raise OverflowError(
                    f"a {batch}-row batch of {row_terms}-term rows needs "
                    f"{need} lane guard bits but the layout's designed "
                    f"accumulation depth of {layout.acc_depth} budgets only "
                    f"{_acc_bits(layout.acc_depth)} (fixed at init time); "
                    f"reduce the batch size or raise {type(self).__name__}."
                    f"PACKING_DEPTH_FLOOR before building the layer"
                )

    def _he2ss(self, ciphertext, holder, owner_name: str, tag: str, scale: float):
        """HE2SS send with this layer's packing policy applied to the wire."""
        from repro.crypto.secret_sharing import he2ss_split

        return he2ss_split(
            ciphertext, holder, owner_name, self.ctx.channel, tag, scale,
            parallel=self.parallel,
            packing=self._pack_layout(ciphertext.public_key),
        )


class FederatedModule(Module):
    """A model made of federated source layers plus a plaintext top model."""

    def source_layers(self) -> Iterator[SourceLayer]:
        """Yield every source layer reachable from this module."""
        seen: set[int] = set()
        for value in self.__dict__.values():
            yield from _collect_sources(value, seen)

    def federated_parameters(self) -> list[FederatedParameter]:
        params: list[FederatedParameter] = []
        for layer in self.source_layers():
            params.extend(layer.federated_parameters())
        return params

    def federation_contexts(self) -> Iterator[object]:
        """Every distinct :class:`~repro.comm.party.VFLContext` in the model.

        Multi-source models (WDL, DLRM) usually share one context, but the
        API allows one per layer; trainer-level knobs that touch federation
        state (packing, channel tier, blinding pools) iterate this to hit
        each context exactly once.
        """
        seen: set[int] = set()
        for layer in self.source_layers():
            ctx = getattr(layer, "ctx", None)
            if ctx is not None and id(ctx) not in seen:
                seen.add(id(ctx))
                yield ctx

    def top_parameters(self) -> list[Tensor]:
        """The plaintext (Party B) parameters."""
        return list(self.parameters())


def _collect_sources(value: object, seen: set[int]) -> Iterator[SourceLayer]:
    if isinstance(value, SourceLayer):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, FederatedModule):
        for sub in value.__dict__.values():
            yield from _collect_sources(sub, seen)
    elif isinstance(value, Module):
        for sub in value.__dict__.values():
            yield from _collect_sources(sub, seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_sources(item, seen)
