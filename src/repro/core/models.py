"""The federated models evaluated in the paper (§7.1): LR, MLR, MLP, WDL,
DLRM.

Every model follows the BlindFL architecture of Figure 4: one or more
*federated source layers* unite the two parties' features into aggregated
activations ``Z``, and a *plaintext top model at Party B* maps ``Z`` to
predictions.  The backward path hands ``grad_Z`` (computed by the top
model's autograd) to each source layer's federated backward protocol.

The ``forward(batch)`` / ``loss.backward()`` / ``backward_sources()`` /
``optimizer.step()`` cadence mirrors the Figure 8 listing.
"""

from __future__ import annotations

import numpy as np

from repro.comm.party import VFLContext
from repro.core.embed_matmul_layer import EmbedMatMulSource
from repro.core.federated import FederatedModule
from repro.core.matmul_layer import MatMulSource
from repro.data.loader import Batch
from repro.tensor.nn import Bias, ReLU, Sequential, mlp
from repro.tensor.tensor import Tensor

__all__ = [
    "FederatedLR",
    "FederatedMLR",
    "FederatedMLP",
    "FederatedWDL",
    "FederatedDLRM",
]


class _SourceBacked(FederatedModule):
    """Common forward/backward plumbing for source-layer models."""

    def __init__(self) -> None:
        super().__init__()
        self._leaves: list[tuple[object, Tensor]] = []

    def _leaf(self, source: object, z: np.ndarray, train: bool) -> Tensor:
        """Wrap a source-layer output as an autograd leaf at Party B."""
        leaf = Tensor(z, requires_grad=train)
        if train:
            self._leaves.append((source, leaf))
        return leaf

    def backward_sources(self) -> None:
        """After ``loss.backward()``: run each source layer's backward."""
        if not self._leaves:
            raise RuntimeError("no cached activations; run a training forward first")
        for source, leaf in self._leaves:
            if leaf.grad is None:
                raise RuntimeError("top model backward did not reach the source output")
            source.backward(leaf.grad)
        self._leaves = []


class FederatedLR(_SourceBacked):
    """Logistic regression: MatMul source (OUT=1) + bias + sigmoid at B.

    ``y_hat = sigmoid((X_A W_A + X_B W_B) + bias)`` — the worked example of
    §4.1 and Figure 8 (the sigmoid lives in the loss for stability).
    """

    def __init__(self, ctx: VFLContext, in_a: int, in_b: int):
        super().__init__()
        self.source = MatMulSource(ctx, in_a, in_b, 1, name="lr")
        self.top = Bias(1)

    def forward(self, batch: Batch, train: bool = True) -> Tensor:
        z = self.source.forward(
            batch.party("A").numeric_block(),
            batch.party("B").numeric_block(),
            train=train,
        )
        return self.top(self._leaf(self.source, z, train))


class FederatedMLR(_SourceBacked):
    """Multinomial LR: MatMul source with OUT = n_classes."""

    def __init__(self, ctx: VFLContext, in_a: int, in_b: int, n_classes: int):
        super().__init__()
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self.source = MatMulSource(ctx, in_a, in_b, n_classes, name="mlr")
        self.top = Bias(n_classes)

    def forward(self, batch: Batch, train: bool = True) -> Tensor:
        z = self.source.forward(
            batch.party("A").numeric_block(),
            batch.party("B").numeric_block(),
            train=train,
        )
        return self.top(self._leaf(self.source, z, train))


class FederatedMLP(_SourceBacked):
    """MLP: the first (widest) layer is the MatMul source; the rest run at B.

    This is the architecture behind Tables 7/8: the source layer's output
    dimensionality dominates cost, extra top layers are nearly free.
    """

    def __init__(
        self,
        ctx: VFLContext,
        in_a: int,
        in_b: int,
        hidden: list[int],
        n_out: int,
        seed: int = 0,
    ):
        super().__init__()
        if not hidden:
            raise ValueError("an MLP needs at least one hidden layer")
        self.source = MatMulSource(ctx, in_a, in_b, hidden[0], name="mlp")
        rng = np.random.default_rng(seed)
        self.top = Sequential(ReLU(), mlp([*hidden, n_out], rng=rng))

    def forward(self, batch: Batch, train: bool = True) -> Tensor:
        z = self.source.forward(
            batch.party("A").numeric_block(),
            batch.party("B").numeric_block(),
            train=train,
        )
        return self.top(self._leaf(self.source, z, train))


class FederatedWDL(_SourceBacked):
    """Wide & Deep (Figure 5): MatMul wide part + Embed-MatMul deep part.

    ``logit = (X W)_wide + MLP(E W)_deep + bias`` — the wide source handles
    the sparse numerical features, the deep source the categorical fields.
    """

    def __init__(
        self,
        ctx: VFLContext,
        in_a: int,
        in_b: int,
        vocab_a: list[int],
        vocab_b: list[int],
        emb_dim: int = 8,
        deep_hidden: list[int] | None = None,
        seed: int = 0,
    ):
        super().__init__()
        deep_hidden = deep_hidden or [16]
        self.wide = MatMulSource(ctx, in_a, in_b, 1, name="wdl.wide")
        self.deep = EmbedMatMulSource(
            ctx, vocab_a, vocab_b, emb_dim, deep_hidden[0], name="wdl.deep"
        )
        rng = np.random.default_rng(seed)
        self.deep_top = Sequential(ReLU(), mlp([*deep_hidden, 1], rng=rng))
        self.bias = Bias(1)

    def forward(self, batch: Batch, train: bool = True) -> Tensor:
        pa, pb = batch.party("A"), batch.party("B")
        z_wide = self.wide.forward(pa.numeric_block(), pb.numeric_block(), train=train)
        z_deep = self.deep.forward(pa.x_cat, pb.x_cat, train=train)
        wide_leaf = self._leaf(self.wide, z_wide, train)
        deep_leaf = self._leaf(self.deep, z_deep, train)
        return self.bias(wide_leaf + self.deep_top(deep_leaf))


class FederatedDLRM(_SourceBacked):
    """DLRM-style model: dense-feature arm, embedding arm, interactions.

    The dense arm is a MatMul source (the "bottom MLP" first layer); the
    categorical arm an Embed-MatMul source projecting to the same width;
    the top model at B computes their elementwise interaction (the dot-
    product feature of DLRM) and an MLP over ``[dense, emb, dense*emb]``.
    """

    def __init__(
        self,
        ctx: VFLContext,
        in_a: int,
        in_b: int,
        vocab_a: list[int],
        vocab_b: list[int],
        emb_dim: int = 8,
        arm_dim: int = 16,
        top_hidden: list[int] | None = None,
        seed: int = 0,
    ):
        super().__init__()
        top_hidden = top_hidden or [16]
        self.dense_arm = MatMulSource(ctx, in_a, in_b, arm_dim, name="dlrm.dense")
        self.emb_arm = EmbedMatMulSource(
            ctx, vocab_a, vocab_b, emb_dim, arm_dim, name="dlrm.emb"
        )
        rng = np.random.default_rng(seed)
        self.top = Sequential(ReLU(), mlp([3 * arm_dim, *top_hidden, 1], rng=rng))

    def forward(self, batch: Batch, train: bool = True) -> Tensor:
        pa, pb = batch.party("A"), batch.party("B")
        z_dense = self.dense_arm.forward(
            pa.numeric_block(), pb.numeric_block(), train=train
        )
        z_emb = self.emb_arm.forward(pa.x_cat, pb.x_cat, train=train)
        dense_leaf = self._leaf(self.dense_arm, z_dense, train)
        emb_leaf = self._leaf(self.emb_arm, z_emb, train)
        interaction = dense_leaf * emb_leaf
        return self.top(Tensor.concat([dense_leaf, emb_leaf, interaction], axis=1))
