"""Checkpoint/resume for federated training — codec frames on disk.

A checkpoint must make a *resumed* run bit-identical to an uninterrupted
one, which for this protocol stack means capturing every stateful stream
the training loop consumes, not just the weights:

* the loader RNG state plus the current epoch's instance order and the
  next batch index (mini-batch schedule);
* each party's numpy RNG state (HE2SS obfuscation masks are drawn from
  these every batch);
* each party key's blinding state — the precomputed ``r^n`` pool, the
  key's Python RNG, the λ-blinding base ``h`` and the λ parameter itself
  (ciphertext re-randomisation draws from this stream);
* each source layer's secret-shared pieces, momentum velocities, cached
  *encrypted* peer pieces and step counter (protocol tags derive from it);
* the plaintext top model's parameters and optimizer velocities;
* the convergence history recorded so far.

Custody rule: a checkpoint **never** contains private-key material.  The
file format is a concatenation of wire-codec payload frames
(:func:`repro.comm.codec.encode_payload_frame`), so the codec's structural
refusal — there is deliberately no wire format for ``(p, q)`` — guards the
disk boundary exactly as it guards the network boundary, and every frame
carries a CRC32 trailer, so a corrupted checkpoint is detected at load
time instead of resuming from garbage.  On resume, the key owner
re-derives its private key from the federation seed when the model is
rebuilt; the checkpoint only restores *state around* the keys.

File layout::

    frame 0   ("blindfl-checkpoint", version)
    frame 1.. ("<section-name>", section-payload)

Sections are codec-native trees (tuples/lists/ndarrays/crypto tensors);
encrypted pieces are stored as live ciphertext payloads and re-bound to
the rebuilt model's seeded key objects through a key ring at load time, so
blinding streams continue bit-identically.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.comm import codec

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "TrainingInterrupted",
    "ResumePoint",
    "save_checkpoint",
    "load_checkpoint",
    "restore_checkpoint",
    "model_key_ring",
    "endpoint_checkpoint_path",
    "save_endpoint_checkpoint",
    "restore_endpoint_checkpoint",
]

CHECKPOINT_MAGIC = "blindfl-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is malformed, incomplete, or does not match the
    model it is being restored onto."""


class TrainingInterrupted(RuntimeError):
    """Raised by the trainer's fault-injection knob (``crash_after_batches``)
    to simulate a mid-epoch crash after the latest checkpoint was written.

    Carries ``checkpoint_path`` so the catcher can hand it straight to
    ``train_federated(resume_from=...)``.
    """

    def __init__(self, message: str, checkpoint_path: str | None = None):
        super().__init__(message)
        self.checkpoint_path = checkpoint_path


@dataclass
class ResumePoint:
    """Where a restored run picks up: mid-epoch, mid-order, mid-history."""

    epoch: int
    next_batch: int
    order: np.ndarray
    history: object  # repro.core.trainer.History (import cycle)


# ---------------------------------------------------------------------------
# RNG state flattening: the codec has no dict frame, so generator states
# travel as fixed-position tuples.


def np_rng_state(gen: np.random.Generator) -> tuple:
    """Flatten a numpy Generator's bit-generator state to a codec tuple."""
    st = gen.bit_generator.state
    if st["bit_generator"] != "PCG64":  # pragma: no cover - repo-wide default
        raise CheckpointError(
            f"unsupported bit generator {st['bit_generator']!r}"
        )
    return (
        st["bit_generator"],
        int(st["state"]["state"]),
        int(st["state"]["inc"]),
        int(st["has_uint32"]),
        int(st["uinteger"]),
    )


def set_np_rng_state(gen: np.random.Generator, state: tuple) -> None:
    name, inner, inc, has_uint32, uinteger = state
    gen.bit_generator.state = {
        "bit_generator": str(name),
        "state": {"state": int(inner), "inc": int(inc)},
        "has_uint32": int(has_uint32),
        "uinteger": int(uinteger),
    }


def py_rng_state(rng) -> tuple:
    """Flatten a ``random.Random`` state (version, words, gauss-cache)."""
    version, internal, gauss_next = rng.getstate()
    return (int(version), [int(x) for x in internal], gauss_next)


def set_py_rng_state(rng, state: tuple) -> None:
    version, internal, gauss_next = state
    rng.setstate((int(version), tuple(int(x) for x in internal), gauss_next))


def _blinding_state(public_key) -> tuple:
    """The key's obfuscation stream: pool, RNG, λ-base, λ.

    All of it is *public-key-side* state (n-th powers and exponent draws);
    nothing here helps an adversary decrypt, but all of it must resume
    exactly for ciphertext transcripts to stay bit-identical.
    """
    return (
        [int(b) for b in public_key._blind_pool],
        py_rng_state(public_key._rng),
        None if public_key._h is None else int(public_key._h),
        int(public_key.blinding_lambda),
    )


def _restore_blinding(public_key, state: tuple) -> None:
    pool, rng_state, h, blinding_lambda = state
    public_key._blind_pool = deque(int(b) for b in pool)
    set_py_rng_state(public_key._rng, rng_state)
    public_key._h = None if h is None else int(h)
    public_key.blinding_lambda = int(blinding_lambda)


# ---------------------------------------------------------------------------
# Model traversal.


def model_key_ring(model) -> dict[int, object]:
    """``n -> PaillierPublicKey`` over every party key the model uses.

    Load-time decoding resolves ciphertext frames through this ring, so
    restored encrypted pieces are bound to the *same seeded key objects*
    as the rebuilt model — their blinding streams continue, not restart.
    """
    ring: dict[int, object] = {}
    for ctx in model.federation_contexts():
        parties = getattr(ctx, "parties", None) or {}
        for party in parties.values():
            ring[party.public_key.n] = party.public_key
    return ring


def _model_parties(model) -> dict[str, object]:
    parties: dict[str, object] = {}
    for ctx in model.federation_contexts():
        for name, party in (getattr(ctx, "parties", None) or {}).items():
            parties.setdefault(name, party)
    return parties


def _collect_sections(model, optimizer, *, epoch, next_batch, order,
                      loader_rng, history) -> list[tuple[str, object]]:
    parties = _model_parties(model)
    party_section = [
        (name, np_rng_state(party.rng), _blinding_state(party.public_key))
        for name, party in sorted(parties.items())
    ]
    layer_section = []
    for layer in model.source_layers():
        state_fn = getattr(layer, "checkpoint_state", None)
        if state_fn is None:
            raise CheckpointError(
                f"source layer {layer.name!r} ({type(layer).__name__}) does "
                f"not support checkpointing"
            )
        layer_section.append((layer.name, state_fn()))
    top = optimizer._top
    top_section = (
        None
        if top is None
        else (
            [np.asarray(p.data) for p in top.params],
            [np.asarray(v) for v in top._velocity],
        )
    )
    return [
        (
            "trainer",
            (
                int(epoch),
                int(next_batch),
                np.asarray(order, dtype=np.int64),
                np_rng_state(loader_rng),
            ),
        ),
        (
            "history",
            (
                [float(x) for x in history.losses],
                [float(x) for x in history.epoch_metrics],
                history.metric_name,
            ),
        ),
        ("parties", party_section),
        ("layers", layer_section),
        ("top", top_section),
    ]


# ---------------------------------------------------------------------------
# Save / load.


def save_checkpoint(path: str, model, optimizer, *, epoch: int,
                    next_batch: int, order: np.ndarray,
                    loader_rng: np.random.Generator, history) -> str:
    """Persist the full training state as codec frames; atomic replace.

    Every section goes through :func:`codec.encode_payload_frame`, so an
    object with no wire format — including anything carrying private-key
    material — fails loudly here rather than reaching disk.
    """
    sections = _collect_sections(
        model, optimizer, epoch=epoch, next_batch=next_batch, order=order,
        loader_rng=loader_rng, history=history,
    )
    frames = [codec.encode_payload_frame((CHECKPOINT_MAGIC, CHECKPOINT_VERSION))]
    frames.extend(
        codec.encode_payload_frame((name, payload)) for name, payload in sections
    )
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        for frame in frames:
            fh.write(frame)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str, key_ring: dict | None = None) -> dict[str, object]:
    """Read and CRC-validate a checkpoint; returns ``{section: payload}``."""
    return _load_sections(
        path, key_ring, required={"trainer", "history", "parties", "layers", "top"}
    )


def _load_sections(
    path: str, key_ring: dict | None, required: set[str]
) -> dict[str, object]:
    with open(path, "rb") as fh:
        blob = fh.read()
    sections: dict[str, object] = {}
    header = None
    for kind, body in codec.iter_frames(blob):
        if kind != codec.FRAME_PAYLOAD:
            raise CheckpointError(
                f"checkpoint contains a non-payload frame kind 0x{kind:02x}"
            )
        payload = codec.decode_payload(body, key_ring)
        if header is None:
            header = payload
            if (
                not isinstance(header, tuple)
                or len(header) != 2
                or header[0] != CHECKPOINT_MAGIC
            ):
                raise CheckpointError(
                    f"{path!r} is not a BlindFL checkpoint (bad header frame)"
                )
            if header[1] != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint version {header[1]} not supported "
                    f"(speaking {CHECKPOINT_VERSION})"
                )
            continue
        name, section = payload
        if name in sections:
            raise CheckpointError(f"duplicate checkpoint section {name!r}")
        sections[str(name)] = section
    if header is None:
        raise CheckpointError(f"{path!r} is empty")
    missing = required - set(sections)
    if missing:
        raise CheckpointError(
            f"checkpoint is missing sections {sorted(missing)}"
        )
    return sections


def restore_checkpoint(model, optimizer, loader_rng: np.random.Generator,
                       sections: dict[str, object]) -> ResumePoint:
    """Overwrite a freshly *rebuilt* model's state from checkpoint sections.

    The caller constructs the model exactly as the original run did (same
    seeds — which is also how the key owner's private key reappears
    without ever having been serialized), then this function swaps in the
    trained state: RNGs, blinding streams, layer pieces, top parameters
    and history.
    """
    from repro.core.trainer import History

    # Parties: numpy RNG + key blinding streams.
    parties = _model_parties(model)
    saved_parties = {name: (rng, blind) for name, rng, blind in sections["parties"]}
    if set(saved_parties) != set(parties):
        raise CheckpointError(
            f"checkpoint parties {sorted(saved_parties)} do not match the "
            f"model's {sorted(parties)}"
        )
    restored_keys: set[int] = set()
    for name, party in parties.items():
        rng_state, blind_state = saved_parties[name]
        set_np_rng_state(party.rng, rng_state)
        if id(party.public_key) not in restored_keys:
            restored_keys.add(id(party.public_key))
            _restore_blinding(party.public_key, blind_state)

    # Source layers, matched by name.
    layers = {layer.name: layer for layer in model.source_layers()}
    saved_layers = dict(sections["layers"])
    if set(saved_layers) != set(layers):
        raise CheckpointError(
            f"checkpoint layers {sorted(saved_layers)} do not match the "
            f"model's {sorted(layers)}"
        )
    for name, layer in layers.items():
        try:
            layer.load_checkpoint_state(saved_layers[name])
        except ValueError as exc:
            raise CheckpointError(
                f"layer {name!r} rejected its checkpoint state: {exc}"
            ) from exc

    # Plaintext top model + optimizer velocities.
    top_section = sections["top"]
    top = optimizer._top
    if (top is None) != (top_section is None):
        raise CheckpointError(
            "checkpoint top-model section does not match the optimizer"
        )
    if top is not None:
        params, velocities = top_section
        if len(params) != len(top.params) or len(velocities) != len(params):
            raise CheckpointError(
                f"checkpoint holds {len(params)} top parameters, the model "
                f"has {len(top.params)}"
            )
        for tensor, data in zip(top.params, params):
            if tuple(tensor.data.shape) != tuple(np.asarray(data).shape):
                raise CheckpointError("top parameter shape mismatch")
            tensor.data = np.asarray(data, dtype=np.float64)
        top._velocity = [np.asarray(v, dtype=np.float64) for v in velocities]

    epoch, next_batch, order, rng_state = sections["trainer"]
    set_np_rng_state(loader_rng, rng_state)
    losses, epoch_metrics, metric_name = sections["history"]
    history = History(
        losses=list(losses), epoch_metrics=list(epoch_metrics),
        metric_name=str(metric_name),
    )
    return ResumePoint(
        epoch=int(epoch),
        next_batch=int(next_batch),
        order=np.asarray(order, dtype=np.int64),
        history=history,
    )


# ---------------------------------------------------------------------------
# Per-endpoint checkpoints for the N-party fabric.
#
# A fabric run has no single process that sees all state: each endpoint
# writes its *own* file covering exactly its slice — the local model
# state plus every party object's RNG/blinding stream position *in this
# process* (each endpoint constructs all Party objects from the
# federation seed; remote parties' streams sit untouched at their seed
# state, so snapshotting them is both cheap and exact).  The custody
# rule is inherited wholesale: sections travel as codec payload frames,
# so private-key material is structurally unserialisable, and on resume
# the key owner re-derives ``(p, q)`` from the federation seed when the
# context is rebuilt.

ENDPOINT_SECTIONS = {"fabric", "parties", "model"}


def endpoint_checkpoint_path(base: str, role: str) -> str:
    """The per-role file of a federation checkpoint family.

    ``run_federation(resume_from=base)`` hands each endpoint exactly this
    path as ``channel.resume_from``, so programs that write checkpoints
    with this helper resume without any extra coordination.
    """
    return f"{base}.{role}"


def save_endpoint_checkpoint(
    path: str, model, *, step: int, losses
) -> str:
    """Persist one fabric endpoint's local training state; atomic replace.

    ``model`` is a fabric model holding a single
    :class:`~repro.comm.party.VFLContext` (e.g.
    :class:`~repro.core.multiparty.MultiPartyLR`) whose
    ``checkpoint_state()`` covers only this endpoint's local actors.
    ``losses`` is the per-step loss list (``None`` entries off Party B
    are dropped; the step counter alone reconstructs their count).
    """
    ctx = model.ctx
    party_section = [
        (name, np_rng_state(party.rng), _blinding_state(party.public_key))
        for name, party in sorted(ctx.parties.items())
    ]
    sections = [
        (
            "fabric",
            (int(step), [float(x) for x in losses if x is not None]),
        ),
        ("parties", party_section),
        ("model", model.checkpoint_state()),
    ]
    frames = [codec.encode_payload_frame((CHECKPOINT_MAGIC, CHECKPOINT_VERSION))]
    frames.extend(
        codec.encode_payload_frame((name, payload)) for name, payload in sections
    )
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        for frame in frames:
            fh.write(frame)
    os.replace(tmp, path)
    return path


def restore_endpoint_checkpoint(path: str, model) -> tuple[int, list[float]]:
    """Overwrite a freshly rebuilt fabric model from its endpoint file.

    The caller constructs the context and model exactly as the original
    run did (same federation seed — which is how the key owner's private
    key reappears without ever touching the disk), then this swaps in
    the trained state.  Returns ``(step, losses)`` — the batch boundary
    to resume from and the Party-B losses recorded up to it (empty on
    endpoints that never see a loss).
    """
    ctx = model.ctx
    ring = {
        party.public_key.n: party.public_key for party in ctx.parties.values()
    }
    sections = _load_sections(path, ring, required=set(ENDPOINT_SECTIONS))
    saved = {
        str(name): (rng, blind) for name, rng, blind in sections["parties"]
    }
    if set(saved) != set(ctx.parties):
        raise CheckpointError(
            f"endpoint checkpoint covers parties {sorted(saved)} but this "
            f"process holds {sorted(ctx.parties)}"
        )
    restored_keys: set[int] = set()
    for name, party in ctx.parties.items():
        rng_state, blind_state = saved[name]
        set_np_rng_state(party.rng, rng_state)
        if id(party.public_key) not in restored_keys:
            restored_keys.add(id(party.public_key))
            _restore_blinding(party.public_key, blind_state)
    try:
        model.load_checkpoint_state(sections["model"])
    except ValueError as exc:
        raise CheckpointError(
            f"model rejected its endpoint checkpoint state: {exc}"
        ) from exc
    step, losses = sections["fabric"]
    return int(step), [float(x) for x in losses]
