"""Federated (SS-based) top models — Appendix B (Figures 13/14).

With a plaintext top model, Party B sees ``Z`` and ``grad_Z``.  Appendix B
strengthens this: the source layer emits secret *shares* ``<Z'_A, Z'_B>``
(``forward_shares``) and consumes secret-shared derivatives
``<eps, grad_Z - eps>``, so not even Party B observes the aggregated
activations.

The appendix *assumes* a secure top model realising the ideal
functionality ``F_TopSS`` (input: Z shares + labels; output: grad_Z
shares) — e.g. a SecureML-style SS network — and proves the source
layer's SS-in/SS-out interface secure.  We follow the same structure:
:class:`IdealSSTop` is an explicit stand-in for that ideal functionality
(reconstruction happens only inside its sealed scope, mirroring how the
simulation proof treats F_TopSS as a black box), and
:func:`matmul_backward_from_shares` implements the real protocol of
Figure 13 lines 2-8: SS2HE both ways, then both parties' gradients are
secretly shared and both encrypted copies refreshed.
"""

from __future__ import annotations

import numpy as np

from repro.comm.message import MessageKind
from repro.core.matmul_layer import MatMulSource, _momentum_update
from repro.core.trainer import History, TrainConfig
from repro.crypto.crypto_tensor import CryptoTensor
from repro.crypto.secret_sharing import (
    he2ss_receive,
    he2ss_split,
    ss2he_combine,
    ss2he_send,
)
from repro.data.loader import BatchLoader
from repro.data.partition import VerticalDataset
from repro.utils.metrics import roc_auc

__all__ = ["IdealSSTop", "matmul_backward_from_shares", "train_lr_with_ss_top"]


class IdealSSTop:
    """Stand-in for the ideal functionality F_TopSS (binary LR head).

    Inputs: shares ``<Z'_A, Z'_B>`` and the labels (held by B).  Outputs:
    shares ``<eps, grad_Z - eps>`` of the loss derivative, plus the scalar
    loss for monitoring.  The reconstruction of Z happens *only inside
    this object* — it models the sealed box the simulation proof assumes;
    neither party's state ever references the plaintext Z.
    """

    def __init__(self, rng: np.random.Generator, mask_scale: float = 2.0**16):
        self._rng = rng
        self._mask_scale = mask_scale

    def backward_shares(
        self, z_a: np.ndarray, z_b: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Return (eps for A, grad_Z - eps for B, loss value)."""
        z = z_a + z_b  # sealed-scope reconstruction (ideal functionality)
        y = np.asarray(labels, dtype=np.float64).reshape(z.shape)
        probs = 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
        grad_z = (probs - y) / y.shape[0]
        loss = float(
            np.mean(np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z))))
        )
        eps = self._rng.uniform(-self._mask_scale, self._mask_scale, size=z.shape)
        return eps, grad_z - eps, loss

    def predict_scores(self, z_a: np.ndarray, z_b: np.ndarray) -> np.ndarray:
        """Inference output (the VFL goal: predictions released to B)."""
        return z_a + z_b


def matmul_backward_from_shares(
    layer: MatMulSource,
    eps_at_a: np.ndarray,
    gz_share_at_b: np.ndarray,
    lr: float,
    momentum: float,
) -> None:
    """Figure 13 lines 2-8: backward when grad_Z arrives secret-shared.

    Both parties convert their share into ciphertexts under each other's
    keys (SS2HE), compute their *own* encrypted gradient under the peer's
    key, and secretly share it.  Unlike the plaintext-top backward, B's
    gradient ``grad_W_B`` is now *also* shared (B no longer knows grad_Z),
    so both parties' pieces update and both encrypted caches refresh.
    """
    ctx, cfg = layer.ctx, layer._cfg
    a, b, ch = ctx.A, ctx.B, ctx.channel
    tag = f"{layer.name}.{layer._step}.sstop"
    eps_at_a = np.asarray(eps_at_a, dtype=np.float64).reshape(-1, layer.out_dim)
    gz_share_at_b = np.asarray(gz_share_at_b, dtype=np.float64).reshape(
        -1, layer.out_dim
    )
    # Line 3: SS2HE in both directions.
    ss2he_send(eps_at_a, a, "B", ch, f"{tag}.gZpiece_A")
    ss2he_send(gz_share_at_b, b, "A", ch, f"{tag}.gZpiece_B")
    enc_gz_under_b = ss2he_combine(eps_at_a, a, ch, f"{tag}.gZpiece_B")
    enc_gz_under_a = ss2he_combine(gz_share_at_b, b, ch, f"{tag}.gZpiece_A")

    # Lines 4-6: each party computes its encrypted gradient and shares it.
    from repro.core.matmul_layer import _t_matmul_cipher, t_matmul_any

    enc_gw_a = _t_matmul_cipher(layer._a.x_cache, enc_gz_under_b)
    phi_a = he2ss_split(enc_gw_a, a, "B", ch, f"{tag}.gW_A", cfg.grad_mask_scale)
    gw_a_share = he2ss_receive(b, ch, f"{tag}.gW_A")

    enc_gw_b = _t_matmul_cipher(layer._b.x_cache, enc_gz_under_a)
    phi_b = he2ss_split(enc_gw_b, b, "A", ch, f"{tag}.gW_B", cfg.grad_mask_scale)
    gw_b_share = he2ss_receive(a, ch, f"{tag}.gW_B")

    # Lines 7-8: complementary updates on all four pieces.
    _momentum_update(layer._a.u, layer._a.vel_u, phi_a, lr, momentum, None)
    _momentum_update(
        layer._b.v_peer, layer._b.vel_v_peer, gw_a_share, lr, momentum, None
    )
    _momentum_update(layer._b.u, layer._b.vel_u, phi_b, lr, momentum, None)
    _momentum_update(
        layer._a.v_peer, layer._a.vel_v_peer, gw_b_share, lr, momentum, None
    )
    # Refresh both encrypted caches (V_A at A, V_B at B).
    fresh_va = CryptoTensor.encrypt(b.public_key, layer._b.v_peer, obfuscate=True)
    ch.send(b.name, a.name, f"{tag}.upd.encV_A", fresh_va, MessageKind.CIPHERTEXT)
    layer._a.enc_v_own = ch.recv(a.name, f"{tag}.upd.encV_A")
    fresh_vb = CryptoTensor.encrypt(a.public_key, layer._a.v_peer, obfuscate=True)
    ch.send(a.name, b.name, f"{tag}.upd.encV_B", fresh_vb, MessageKind.CIPHERTEXT)
    layer._b.enc_v_own = ch.recv(b.name, f"{tag}.upd.encV_B")


def train_lr_with_ss_top(
    ctx,
    train_data: VerticalDataset,
    config: TrainConfig,
    test_data: VerticalDataset | None = None,
) -> tuple[MatMulSource, History]:
    """Train binary LR where even Z is hidden from Party B (Appendix B)."""
    in_a = train_data.party("A").dense_dim
    in_b = train_data.party("B").dense_dim
    layer = MatMulSource(ctx, in_a, in_b, 1, name="sstop-lr")
    top = IdealSSTop(ctx.B.rng, mask_scale=ctx.config.mask_scale)
    rng = np.random.default_rng(config.seed)
    history = History(metric_name="auc")
    for _ in range(config.epochs):
        loader = BatchLoader(train_data, config.batch_size, rng=rng)
        for batch in loader:
            z_a, z_b = layer.forward_shares(
                batch.party("A").numeric_block(), batch.party("B").numeric_block()
            )
            eps, gz_share, loss = top.backward_shares(z_a, z_b, batch.y)
            matmul_backward_from_shares(
                layer, eps, gz_share, config.lr, config.momentum
            )
            history.losses.append(loss)
        if test_data is not None:
            z_a, z_b = layer.forward_shares(
                test_data.party("A").numeric_block(),
                test_data.party("B").numeric_block(),
                train=False,
            )
            scores = top.predict_scores(z_a, z_b)
            history.epoch_metrics.append(roc_auc(test_data.y, scores.ravel()))
    return layer, history
