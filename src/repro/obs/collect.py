"""Cross-endpoint trace collector: N per-role JSONL traces, one timeline.

Every fabric endpoint traces into its own process-local sink (see
:mod:`repro.obs.sinks`), so a federation run leaves one JSONL file per
role.  This module merges them into a single namespaced trace and renders
it as one Chrome/Perfetto timeline with **one process lane per endpoint**
— which is what makes cross-party overlap visible: with pipelining on,
an A endpoint's ``batch k+1`` span sits directly above the key owner's
still-running ``batch k`` span.

Span ids are only unique *within* one tracer, so merging namespaces both
``id`` and ``parent`` as ``"<role>:<id>"`` — the role prefix is the
endpoint's name in the federation topology, making every merged span id
globally unique by construction (a collision inside one role's trace is
corrupt input and raises).

Clock caveat: span timestamps come from ``time.perf_counter``, which on
Linux is ``CLOCK_MONOTONIC`` — a *shared* clock across processes on one
host, so fabric endpoints (all local OS processes) land on one comparable
axis.  On platforms where ``perf_counter`` is per-process, cross-role
offsets are meaningless and only within-role ordering holds.
"""

from __future__ import annotations

import json

__all__ = [
    "read_jsonl_trace",
    "merge_traces",
    "chrome_timeline",
    "write_chrome_timeline",
    "cross_role_overlap",
]


def read_jsonl_trace(path: str) -> list[dict]:
    """Load one endpoint's JSONL trace (one span dict per line)."""
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not a JSON span record ({exc})"
                ) from None
            if not isinstance(span, dict) or "id" not in span:
                raise ValueError(
                    f"{path}:{line_no}: span record has no 'id' field"
                )
            spans.append(span)
    return spans


def merge_traces(traces: dict[str, list[dict]]) -> list[dict]:
    """Merge per-role span lists into one role-namespaced trace.

    ``traces`` maps each role (endpoint name) to its span dicts, e.g.
    ``{role: read_jsonl_trace(path) for role, path in files.items()}``.
    Every span gains a ``"role"`` key, and ``id``/``parent`` are rewritten
    to ``"<role>:<id>"`` so ids from different endpoints can never
    collide.  A duplicate id *within* one role's trace raises — that is a
    corrupt input file, not a mergeable trace.  Spans are ordered by
    ``t_start`` across all roles (the shared-monotonic-clock axis).
    """
    merged: list[dict] = []
    for role, spans in sorted(traces.items()):
        seen: set = set()
        for span in spans:
            sid = span["id"]
            if sid in seen:
                raise ValueError(
                    f"role {role!r} trace has duplicate span id {sid!r} — "
                    f"corrupt input (ids are unique within one tracer)"
                )
            seen.add(sid)
            out = dict(span)
            out["role"] = role
            out["id"] = f"{role}:{sid}"
            if out.get("parent") is not None:
                out["parent"] = f"{role}:{out['parent']}"
            merged.append(out)
    merged.sort(key=lambda s: (s.get("t_start", 0.0), s["id"]))
    return merged


def chrome_timeline(merged: list[dict]) -> dict:
    """Render a merged trace as Chrome trace-event JSON, one pid per role.

    Each role becomes its own process lane (``pid``), named via a
    ``process_name`` metadata event; parties within a role keep the
    per-``tid`` thread lanes of the single-process
    :class:`~repro.obs.sinks.ChromeTraceSink`.  Timestamps stay on the
    shared ``perf_counter`` axis (µs), so spans of different endpoints
    align — overlap between an A endpoint's encrypt and the key owner's
    in-flight transfer is directly visible.
    """
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    events: list[dict] = []
    for span in merged:
        role = span.get("role", "-")
        if role not in pids:
            pids[role] = len(pids)
        party = span.get("party") or "-"
        tkey = (role, party)
        if tkey not in tids:
            tids[tkey] = sum(1 for r, _ in tids if r == role)
        args = dict(span.get("attrs") or {})
        args.update(span.get("counters") or {})
        args["span_id"] = span["id"]
        events.append(
            {
                "name": span.get("phase", "?"),
                "cat": span.get("party") or "span",
                "ph": "X",
                "ts": span.get("t_start", 0.0) * 1e6,
                "dur": span.get("dur_s", 0.0) * 1e6,
                "pid": pids[role],
                "tid": tids[tkey],
                "args": args,
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": role},
        }
        for role, pid in pids.items()
    ] + [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pids[role],
            "tid": tid,
            "args": {"name": party},
        }
        for (role, party), tid in tids.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_timeline(path: str, merged: list[dict]) -> None:
    """Write :func:`chrome_timeline` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_timeline(merged), fh)


def cross_role_overlap(
    merged: list[dict], phase: str = "batch"
) -> float:
    """Seconds during which ``phase`` spans of *different* roles overlap.

    The pipelining evidence metric: with async sends off, one endpoint's
    ``batch`` span ends (its frames acked at the protocol level) before
    the next endpoint's work proceeds in lockstep, so cross-role overlap
    of compute-heavy phases is near total for concurrent protocols and
    the interesting comparison is between *specific* batches — use the
    span ``attrs`` for that.  This helper answers the coarse question:
    total wall-clock where at least two roles had a ``phase`` span open
    simultaneously.
    """
    edges: list[tuple[float, int, str]] = []
    for span in merged:
        if span.get("phase") != phase:
            continue
        start = float(span.get("t_start", 0.0))
        edges.append((start, +1, span.get("role", "-")))
        edges.append((start + float(span.get("dur_s", 0.0)), -1, span.get("role", "-")))
    edges.sort(key=lambda e: (e[0], -e[1]))
    open_by_role: dict[str, int] = {}
    overlap = 0.0
    prev_t: float | None = None
    for t, delta, role in edges:
        active_roles = sum(1 for n in open_by_role.values() if n > 0)
        if prev_t is not None and active_roles >= 2:
            overlap += t - prev_t
        open_by_role[role] = open_by_role.get(role, 0) + delta
        prev_t = t
    return overlap
