"""Export sinks for the span tracer.

A sink receives each span as it closes (``emit``) and is flushed once by
``Tracer.close``.  Sinks only ever see *finished* spans, so every export
format can be written incrementally.

``make_sink`` maps the ``TrainConfig.telemetry`` knob to a sink:

- ``"memory"``  no export; the tracer's in-memory span list is the trace
- ``"null"``    explicit no-op sink (exercises the sink plumbing)
- ``"jsonl"``   one span dict per line, close order
- ``"chrome"``  a ``chrome://tracing`` / Perfetto-loadable JSON file
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "NullSink",
    "JsonlSink",
    "ChromeTraceSink",
    "TeeSink",
    "make_sink",
    "TELEMETRY_KINDS",
]

TELEMETRY_KINDS = ("off", "memory", "null", "jsonl", "chrome")


class NullSink:
    """Discards everything."""

    def emit(self, span: Any) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """One JSON span dict per line, in span close order."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")

    def emit(self, span: Any) -> None:
        self._fh.write(json.dumps(span.to_dict(), sort_keys=True))
        self._fh.write("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ChromeTraceSink:
    """Chrome trace event format: complete ("X") events, microsecond units.

    Spans of one party share a ``tid`` lane so the trace viewer groups a
    party's phases on one row; counters and attrs land in ``args``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._events: list[dict[str, Any]] = []
        self._tids: dict[str, int] = {}

    def _tid(self, party: str | None) -> int:
        key = party or "-"
        if key not in self._tids:
            self._tids[key] = len(self._tids)
        return self._tids[key]

    def emit(self, span: Any) -> None:
        args: dict[str, Any] = dict(span.attrs)
        args.update(span.counters)
        self._events.append(
            {
                "name": span.phase,
                "cat": span.party or "span",
                "ph": "X",
                "ts": span.t_start * 1e6,
                "dur": span.dur_s * 1e6,
                "pid": 0,
                "tid": self._tid(span.party),
                "args": args,
            }
        )

    def close(self) -> None:
        if self._events is None:
            return
        thread_names = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": party},
            }
            for party, tid in self._tids.items()
        ]
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "traceEvents": thread_names + self._events,
                    "displayTimeUnit": "ms",
                },
                fh,
            )
        self._events = None


class TeeSink:
    """Fan one span stream out to several sinks."""

    def __init__(self, *sinks: Any) -> None:
        self.sinks = list(sinks)

    def emit(self, span: Any) -> None:
        for sink in self.sinks:
            sink.emit(span)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def make_sink(kind: str, path: str | None = None):
    """Resolve a ``TrainConfig.telemetry`` value to a sink (or ``None``)."""
    if kind not in TELEMETRY_KINDS:
        raise ValueError(
            f"unknown telemetry kind {kind!r}; expected one of {TELEMETRY_KINDS}"
        )
    if kind in ("off", "memory"):
        return None
    if kind == "null":
        return NullSink()
    if path is None:
        raise ValueError(f"telemetry kind {kind!r} requires a telemetry_path")
    if kind == "jsonl":
        return JsonlSink(path)
    return ChromeTraceSink(path)
