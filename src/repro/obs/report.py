"""Fold a trace into the paper's computation-vs-communication breakdown.

BlindFL's Table 5 reports, per party, how training cost splits between
cryptographic computation and transfer phases.  ``fold_trace`` aggregates
a span trace (``Tracer.to_dicts()`` output) into one row per
``(party, phase)`` with wall time (total and *own*, i.e. excluding child
spans), pow counts by exponent-bit class, ciphertext flow, and bytes.
``format_report`` renders the fold with ``utils.tabulate``;
``report_json`` is the same fold as a JSON-serialisable dict.

Phase classification (for the summary rows): computation phases are
where modpows burn CPU; communication phases are where masked payloads
cross the channel.
"""

from __future__ import annotations

import json
from typing import Any

from repro.utils.tabulate import format_table

__all__ = [
    "COMPUTE_PHASES",
    "COMM_PHASES",
    "fold_trace",
    "format_report",
    "report_json",
    "write_report",
]

COMPUTE_PHASES = frozenset(
    {"encrypt", "pack", "decrypt", "blinding_refill", "checkpoint"}
)
COMM_PHASES = frozenset(
    {"he2ss_send", "fw_transfer", "bw_transfer", "lkup_bw", "link_recovery"}
)

_POW_PREFIX = "pow."
_LINK_PREFIX = "link."
_BYTES_BY_PARTY_PREFIX = "bytes.sent."


def _pows(counters: dict[str, int]) -> int:
    return sum(n for k, n in counters.items() if k.startswith(_POW_PREFIX))


def fold_trace(spans: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate a span trace per ``(party, phase)``.

    Returns ``{"rows": [...], "parties": {...}, "totals": {...}}``:

    - ``rows`` — one dict per (party, phase) with span count, wall
      seconds (sum of durations), own seconds (durations minus child
      durations — what this phase itself cost), summed counters, and the
      derived ``pows`` / ``ct_enc`` / ``ct_dec`` / ``bytes_sent``.
    - ``parties`` — per-party computation vs communication seconds and
      bytes attributed by the ``bytes.sent.<party>`` counters.
    - ``totals`` — every counter summed over the whole trace.
    """
    child_dur: dict[int, float] = {}
    for sp in spans:
        if sp["parent"] is not None:
            child_dur[sp["parent"]] = child_dur.get(sp["parent"], 0.0) + sp["dur_s"]

    rows: dict[tuple[str, str], dict[str, Any]] = {}
    totals: dict[str, int] = {}
    bytes_by_party: dict[str, int] = {}
    parties: dict[str, dict[str, float]] = {}
    for sp in spans:
        party = sp["party"] or "-"
        own_s = sp["dur_s"] - child_dur.get(sp["id"], 0.0)
        key = (party, sp["phase"])
        row = rows.get(key)
        if row is None:
            row = rows[key] = {
                "party": party,
                "phase": sp["phase"],
                "spans": 0,
                "wall_s": 0.0,
                "own_s": 0.0,
                "counters": {},
            }
        row["spans"] += 1
        row["wall_s"] += sp["dur_s"]
        row["own_s"] += own_s
        for k, n in sp["counters"].items():
            row["counters"][k] = row["counters"].get(k, 0) + n
            totals[k] = totals.get(k, 0) + n
            if k.startswith(_BYTES_BY_PARTY_PREFIX):
                sender = k[len(_BYTES_BY_PARTY_PREFIX) :]
                bytes_by_party[sender] = bytes_by_party.get(sender, 0) + n
        if sp["party"] is not None or sp["phase"] in COMPUTE_PHASES | COMM_PHASES:
            side = parties.setdefault(party, {"compute_s": 0.0, "comm_s": 0.0})
            if sp["phase"] in COMM_PHASES:
                side["comm_s"] += own_s
            else:
                side["compute_s"] += own_s

    out_rows = []
    for (party, phase), row in sorted(rows.items()):
        counters = row["counters"]
        out_rows.append(
            {
                "party": party,
                "phase": phase,
                "spans": row["spans"],
                "wall_s": row["wall_s"],
                "own_s": row["own_s"],
                "pows": _pows(counters),
                "ct_enc": counters.get("ct.encrypted", 0),
                "ct_dec": counters.get("ct.decrypted", 0),
                "bytes_sent": counters.get("bytes.sent", 0),
                "frames_sent": counters.get("frames.sent", 0),
                "counters": counters,
            }
        )
    return {
        "rows": out_rows,
        "parties": {
            party: dict(side, bytes_sent=bytes_by_party.get(party, 0))
            for party, side in sorted(parties.items())
        },
        "totals": dict(sorted(totals.items())),
        "bytes_by_party": dict(sorted(bytes_by_party.items())),
        "link_events": sum(
            n
            for k, n in totals.items()
            if k.startswith(_LINK_PREFIX)
            and k not in ("link.data_sent", "link.data_received", "link.envelope_bytes", "link.fins")
        ),
    }


def format_report(folded: dict[str, Any]) -> str:
    """Render the fold as the per-party phase table plus a summary."""
    headers = [
        "party",
        "phase",
        "spans",
        "wall_s",
        "own_s",
        "pows",
        "ct_enc",
        "ct_dec",
        "KiB_sent",
    ]
    rows = [
        [
            row["party"],
            row["phase"],
            row["spans"],
            row["wall_s"],
            row["own_s"],
            row["pows"],
            row["ct_enc"],
            row["ct_dec"],
            row["bytes_sent"] / 1024.0,
        ]
        for row in folded["rows"]
    ]
    table = format_table(
        headers, rows, title="per-party phase costs (computation vs communication)"
    )
    summary_rows = [
        [
            party,
            side["compute_s"],
            side["comm_s"],
            side["bytes_sent"] / 1024.0,
        ]
        for party, side in folded["parties"].items()
    ]
    summary = format_table(
        ["party", "compute_s", "comm_s", "KiB_sent"],
        summary_rows,
        title="party summary",
    )
    return table + "\n\n" + summary


def report_json(folded: dict[str, Any]) -> str:
    return json.dumps(folded, indent=2, sort_keys=True)


def write_report(folded: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(report_json(folded))
        fh.write("\n")
