"""Federation observability: phase-attributed tracing and cost reports.

``repro.obs.tracer`` is the span/counter backbone (zero overhead when no
tracer is installed), ``repro.obs.sinks`` the export formats (JSONL,
Chrome trace), and ``repro.obs.report`` the fold into the paper's
computation-vs-communication table.  Depends only on ``repro.utils`` so
crypto, comm, and core can all import it without cycles.
"""

from repro.obs.collect import (
    chrome_timeline,
    cross_role_overlap,
    merge_traces,
    read_jsonl_trace,
    write_chrome_timeline,
)
from repro.obs.report import fold_trace, format_report, report_json, write_report
from repro.obs.sinks import (
    TELEMETRY_KINDS,
    ChromeTraceSink,
    JsonlSink,
    NullSink,
    TeeSink,
    make_sink,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    add,
    add_many,
    counter_totals,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
    validate_trace,
)

__all__ = [
    "Span",
    "Tracer",
    "add",
    "add_many",
    "counter_totals",
    "get_tracer",
    "set_tracer",
    "span",
    "use_tracer",
    "validate_trace",
    "NullSink",
    "JsonlSink",
    "ChromeTraceSink",
    "TeeSink",
    "make_sink",
    "TELEMETRY_KINDS",
    "fold_trace",
    "format_report",
    "report_json",
    "write_report",
    "read_jsonl_trace",
    "merge_traces",
    "chrome_timeline",
    "write_chrome_timeline",
    "cross_role_overlap",
]
