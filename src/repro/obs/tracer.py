"""Process-local phase tracer: nested spans + deterministic counters.

The tracer is the observability backbone for the federation: protocol
sites open nested, phase-tagged spans (``encrypt``, ``pack``,
``he2ss_send``, ``decrypt``, ``blinding_refill``, ``fw_transfer``,
``bw_transfer``, ``lkup_bw``, ``link_recovery``, plus trainer roots
``epoch``/``batch``/``checkpoint``), and instrumented kernels attribute
counters to whichever span is currently open.  Wall times are
informational; counters are exact and reproducible for a seeded run.

Counter taxonomy (see ROADMAP.md "Telemetry" for full definitions):

- ``pow.mul``            modpows with mantissa-sized exponents (raw_mul)
- ``pow.shift``          exponent-alignment shift multiplies
- ``pow.crt``            CRT half-size decrypt pows (2 per ciphertext)
- ``pow.blind.lambda``   λ-bit blinding exponentiations
- ``pow.blind.classic``  full ``r^n`` blinding pows (incl. the one-time h)
- ``ct.encrypted`` / ``ct.decrypted`` / ``ct.packed``   ciphertext flow
- ``pool.hit`` / ``pool.miss``                          blinding pool
- ``bytes.sent`` / ``frames.sent`` / ``bytes.sent.<party>``  channel
- ``link.<field>``       one per ``LinkStats`` counter, same names

Zero overhead when disabled: the module-level :func:`get_tracer` returns
``None`` and every instrumentation site bails on one ``is None`` check
per *kernel call* (never per element); :func:`span` returns a shared
null context manager.  The idiom mirrors
``crypto.parallel.get_default_context`` / ``use_parallel``.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Iterator, Mapping

from repro.utils.timer import Timer

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "span",
    "add",
    "add_many",
    "counter_totals",
    "validate_trace",
]

ROOT_PHASE = "session"


class Span:
    """One phase-tagged interval with its own counter ledger."""

    __slots__ = (
        "phase",
        "party",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "t_start",
        "t_end",
        "counters",
        "timer",
    )

    def __init__(
        self,
        phase: str,
        party: str | None,
        attrs: dict[str, Any],
        span_id: int,
        parent_id: int | None,
        depth: int,
    ) -> None:
        self.phase = phase
        self.party = party
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.t_start = 0.0
        self.t_end = 0.0
        self.counters: dict[str, int] = {}
        self.timer = Timer()

    def add(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    @property
    def dur_s(self) -> float:
        return self.timer.elapsed

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "party": self.party,
            "attrs": dict(self.attrs),
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "t_start": self.t_start,
            "dur_s": self.dur_s,
            "counters": dict(self.counters),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.phase!r}, party={self.party!r}, id={self.span_id},"
            f" counters={self.counters})"
        )


class Tracer:
    """Collects nested spans; finished spans go to ``spans`` and the sink.

    A tracer always retains finished spans in memory (``spans``, in close
    order) so reports and tests can fold them without a sink round-trip;
    an optional export sink (JSONL, Chrome trace) additionally receives
    each span as it closes.  An implicit ``session`` root span is open
    for the tracer's whole lifetime and catches counters incremented
    outside any explicit phase.
    """

    def __init__(self, sink: Any = None, clock=time.perf_counter) -> None:
        self.sink = sink
        self._clock = clock
        self._next_id = 0
        self._stack: list[Span] = []
        self.spans: list[Span] = []
        self._open(ROOT_PHASE, None, {})

    # -- span lifecycle ----------------------------------------------------

    def _open(self, phase: str, party: str | None, attrs: dict[str, Any]) -> Span:
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            phase,
            party,
            attrs,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._stack),
        )
        self._next_id += 1
        sp.t_start = self._clock()
        sp.timer.__enter__()
        self._stack.append(sp)
        return sp

    def _close(self, sp: Span) -> None:
        if not self._stack or self._stack[-1] is not sp:
            raise RuntimeError(
                f"span {sp.phase!r} closed out of order (open stack:"
                f" {[s.phase for s in self._stack]})"
            )
        self._stack.pop()
        sp.timer.__exit__(None, None, None)
        sp.t_end = self._clock()
        self.spans.append(sp)
        if self.sink is not None:
            self.sink.emit(sp)

    @contextlib.contextmanager
    def span(
        self, phase: str, party: str | None = None, **attrs: Any
    ) -> Iterator[Span]:
        sp = self._open(phase, party, attrs)
        try:
            yield sp
        finally:
            self._close(sp)

    @property
    def current(self) -> Span:
        return self._stack[-1]

    # -- counters ----------------------------------------------------------

    def add(self, key: str, n: int = 1) -> None:
        """Attribute ``n`` to the innermost open span."""
        self._stack[-1].add(key, n)

    def add_many(self, counters: Mapping[str, int]) -> None:
        sp = self._stack[-1]
        for key, n in counters.items():
            if n:
                sp.add(key, n)

    # -- teardown / export -------------------------------------------------

    def close(self) -> None:
        """Close any still-open spans (root last) and flush the sink."""
        while self._stack:
            self._close(self._stack[-1])
        if self.sink is not None:
            self.sink.close()
            self.sink = None

    def to_dicts(self) -> list[dict[str, Any]]:
        return [sp.to_dict() for sp in self.spans]


# ---------------------------------------------------------------------------
# Module-level default tracer (mirrors parallel.get_default_context).

_TRACER: Tracer | None = None

# One shared no-op context manager: ``span()`` while disabled allocates
# nothing.  nullcontext is stateless, so reuse across concurrent with-
# blocks is safe.
_NULL_SPAN = contextlib.nullcontext(None)


def get_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when telemetry is disabled.

    Instrumentation sites call this once per kernel/protocol call and
    bail on ``None`` — the zero-overhead fast path.
    """
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the process default; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Scoped :func:`set_tracer`; closes the tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        if tracer is not None:
            tracer.close()


def span(phase: str, party: str | None = None, **attrs: Any):
    """Open a phase span on the active tracer; no-op context if disabled."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(phase, party=party, **attrs)


def add(key: str, n: int = 1) -> None:
    """Attribute ``n`` to the current span of the active tracer, if any."""
    tracer = _TRACER
    if tracer is not None and n:
        tracer.add(key, n)


def add_many(counters: Mapping[str, int]) -> None:
    tracer = _TRACER
    if tracer is not None:
        tracer.add_many(counters)


# ---------------------------------------------------------------------------
# Trace-level helpers (operate on span dicts, i.e. Tracer.to_dicts()).


def counter_totals(spans: list[dict[str, Any]]) -> dict[str, int]:
    """Sum every counter across all spans of a trace."""
    totals: dict[str, int] = {}
    for sp in spans:
        for key, n in sp["counters"].items():
            totals[key] = totals.get(key, 0) + n
    return totals


_REQUIRED_KEYS = (
    "phase",
    "party",
    "attrs",
    "id",
    "parent",
    "depth",
    "t_start",
    "dur_s",
    "counters",
)


def validate_trace(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Schema-check a trace (list of span dicts); raises ``ValueError``.

    Invariants: unique ids, every parent id resolves, exactly one root
    (the ``session`` span), non-negative integer counters, non-negative
    durations, depth consistent with the parent chain.
    """
    if not isinstance(spans, list) or not spans:
        raise ValueError("trace must be a non-empty list of span dicts")
    by_id: dict[int, dict[str, Any]] = {}
    for sp in spans:
        if not isinstance(sp, dict):
            raise ValueError(f"span is not a dict: {sp!r}")
        missing = [k for k in _REQUIRED_KEYS if k not in sp]
        if missing:
            raise ValueError(f"span {sp.get('id')!r} missing keys {missing}")
        if not isinstance(sp["phase"], str) or not sp["phase"]:
            raise ValueError(f"span {sp['id']!r} has empty phase")
        if sp["party"] is not None and not isinstance(sp["party"], str):
            raise ValueError(f"span {sp['id']!r} party must be str or None")
        if not isinstance(sp["id"], int) or sp["id"] in by_id:
            raise ValueError(f"span id {sp['id']!r} duplicated or non-int")
        if not isinstance(sp["dur_s"], (int, float)) or sp["dur_s"] < 0:
            raise ValueError(f"span {sp['id']} has negative duration")
        if not isinstance(sp["counters"], dict):
            raise ValueError(f"span {sp['id']} counters must be a dict")
        for key, n in sp["counters"].items():
            if not isinstance(key, str) or not isinstance(n, int) or n < 0:
                raise ValueError(
                    f"span {sp['id']} counter {key!r}={n!r} must be a"
                    " non-negative int"
                )
        by_id[sp["id"]] = sp
    roots = [sp for sp in spans if sp["parent"] is None]
    if len(roots) != 1:
        raise ValueError(f"trace must have exactly one root span, got {len(roots)}")
    if roots[0]["phase"] != ROOT_PHASE:
        raise ValueError(f"root span must be {ROOT_PHASE!r}, got {roots[0]['phase']!r}")
    for sp in spans:
        parent_id = sp["parent"]
        if parent_id is None:
            if sp["depth"] != 0:
                raise ValueError(f"root span {sp['id']} has depth {sp['depth']}")
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            raise ValueError(f"span {sp['id']} references unknown parent {parent_id}")
        if sp["depth"] != parent["depth"] + 1:
            raise ValueError(
                f"span {sp['id']} depth {sp['depth']} inconsistent with"
                f" parent depth {parent['depth']}"
            )
    return spans
