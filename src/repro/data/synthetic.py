"""Synthetic dataset generators shaped like the paper's Table 4.

The paper evaluates on LIBSVM datasets plus an industrial one; with no
network access we synthesise datasets that preserve the properties the
evaluation actually depends on:

* **dimensionality and sparsity** (nnz per row) — drives Table 5;
* **feature type** (dense numerical / sparse binary / categorical fields) —
  drives which source layer is exercised;
* **signal split across parties** — both halves must carry predictive
  signal, so that NonFed-collocated beats NonFed-Party-B and the lossless
  property (Figure 12) is observable.

Labels are produced by a planted non-linear model over *all* features plus
label-flip noise, so collocated training has headroom over single-party
training, exactly the regime of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tensor.sparse import CSRMatrix

__all__ = [
    "Dataset",
    "make_dense_classification",
    "make_sparse_classification",
    "make_categorical_classification",
    "make_mixed_classification",
    "make_image_like",
]


@dataclass
class Dataset:
    """A supervised dataset, possibly with several feature blocks.

    Attributes:
        x_dense: dense numerical features, shape (n, d) or None.
        x_sparse: CSR sparse numerical features or None.
        x_cat: integer categorical fields, shape (n, f) or None (values of
            field j live in [0, vocab_sizes[j])).
        y: labels — {0,1} for binary tasks, [0, n_classes) otherwise.
        n_classes: 2 for binary.
        vocab_sizes: per-field vocabulary sizes for ``x_cat``.
    """

    y: np.ndarray
    n_classes: int
    x_dense: np.ndarray | None = None
    x_sparse: CSRMatrix | None = None
    x_cat: np.ndarray | None = None
    vocab_sizes: list[int] = field(default_factory=list)
    name: str = ""

    @property
    def n(self) -> int:
        return int(self.y.shape[0])

    def subset(self, idx: np.ndarray) -> "Dataset":
        """Row-slice every block (used for train/test splits and batching)."""
        return Dataset(
            y=self.y[idx],
            n_classes=self.n_classes,
            x_dense=None if self.x_dense is None else self.x_dense[idx],
            x_sparse=None if self.x_sparse is None else self.x_sparse.take_rows(idx),
            x_cat=None if self.x_cat is None else self.x_cat[idx],
            vocab_sizes=list(self.vocab_sizes),
            name=self.name,
        )


def _labels_from_scores(
    scores: np.ndarray, n_classes: int, rng: np.random.Generator, flip: float
) -> np.ndarray:
    """Turn planted scores into labels with ``flip`` label noise."""
    if n_classes == 2:
        margin = scores - np.median(scores)
        y = (margin > 0).astype(np.int64)
    else:
        y = np.argmax(scores, axis=1).astype(np.int64)
    noise = rng.random(y.shape[0]) < flip
    if n_classes == 2:
        y[noise] ^= 1
    else:
        y[noise] = rng.integers(0, n_classes, size=int(noise.sum()))
    return y


def make_dense_classification(
    n: int,
    dim: int,
    n_classes: int = 2,
    seed: int = 0,
    flip: float = 0.08,
    nonlinear: bool = True,
) -> Dataset:
    """Dense numerical dataset (the higgs-like shape)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, dim))
    w = rng.normal(size=(dim, 1 if n_classes == 2 else n_classes))
    scores = x @ w
    if nonlinear:
        # Planted pairwise interactions give collocated models headroom.
        half = dim // 2
        inter = (x[:, :half] * x[:, half : 2 * half]).sum(axis=1, keepdims=True)
        scores = scores + 0.5 * inter
    if n_classes == 2:
        scores = scores.ravel()
    y = _labels_from_scores(scores, n_classes, rng, flip)
    return Dataset(y=y, n_classes=n_classes, x_dense=x, name="dense")


def make_sparse_classification(
    n: int,
    dim: int,
    nnz_per_row: int,
    n_classes: int = 2,
    seed: int = 0,
    flip: float = 0.08,
    binary_values: bool = True,
    zipf: float = 0.6,
) -> Dataset:
    """High-dimensional sparse dataset (a9a/w8a/news20/avazu-like shapes).

    Each row activates ``~nnz_per_row`` columns drawn from a Zipf-ish
    popularity distribution with exponent ``zipf`` (like hashed/one-hot
    real data; steeper exponents concentrate mass on head features, which
    is what makes extremely high-dimensional CTR data learnable from few
    rows).
    """
    rng = np.random.default_rng(seed)
    popularity = 1.0 / np.arange(1, dim + 1) ** zipf
    popularity /= popularity.sum()
    w = rng.normal(size=(dim, 1 if n_classes == 2 else n_classes))
    rows = []
    scores = np.zeros((n, 1 if n_classes == 2 else n_classes))
    for i in range(n):
        k = max(1, int(rng.poisson(nnz_per_row)))
        k = min(k, dim)
        cols = np.sort(rng.choice(dim, size=k, replace=False, p=popularity))
        vals = (
            np.ones(k) if binary_values else rng.normal(loc=1.0, scale=0.3, size=k)
        )
        rows.append((cols, vals))
        scores[i] = vals @ w[cols]
    x = CSRMatrix.from_rows(rows, dim)
    if n_classes == 2:
        y = _labels_from_scores(scores.ravel(), 2, rng, flip)
    else:
        y = _labels_from_scores(scores, n_classes, rng, flip)
    return Dataset(y=y, n_classes=n_classes, x_sparse=x, name="sparse")


def make_categorical_classification(
    n: int,
    n_fields: int,
    vocab_size: int,
    n_classes: int = 2,
    seed: int = 0,
    flip: float = 0.08,
    emb_dim: int = 4,
) -> Dataset:
    """Categorical-field dataset (the Embed-MatMul workload).

    Labels come from a planted embedding model: each category has a latent
    vector, scores are a non-linear function of the summed latents.
    """
    rng = np.random.default_rng(seed)
    x = rng.integers(0, vocab_size, size=(n, n_fields))
    latent = rng.normal(size=(n_fields, vocab_size, emb_dim))
    summed = np.zeros((n, emb_dim))
    for j in range(n_fields):
        summed += latent[j, x[:, j]]
    w = rng.normal(size=(emb_dim, 1 if n_classes == 2 else n_classes))
    scores = np.tanh(summed) @ w
    if n_classes == 2:
        scores = scores.ravel()
    y = _labels_from_scores(scores, n_classes, rng, flip)
    return Dataset(
        y=y,
        n_classes=n_classes,
        x_cat=x,
        vocab_sizes=[vocab_size] * n_fields,
        name="categorical",
    )


def make_mixed_classification(
    n: int,
    sparse_dim: int,
    nnz_per_row: int,
    n_fields: int,
    vocab_size: int,
    seed: int = 0,
    flip: float = 0.08,
) -> Dataset:
    """Sparse numerical + categorical fields — the WDL/DLRM workload.

    Labels blend the *continuous* planted scores of both modalities (not
    their binarised labels), so margins survive and models that exploit
    both blocks have real headroom over single-block models.
    """
    rng = np.random.default_rng(seed)
    sparse_part = make_sparse_classification(
        n, sparse_dim, nnz_per_row, seed=seed + 1, flip=0.0
    )
    cat_part = make_categorical_classification(
        n, n_fields, vocab_size, seed=seed + 2, flip=0.0
    )
    # Recover continuous planted scores for each modality.
    w_sparse = np.random.default_rng(seed + 3).normal(size=(sparse_dim, 1))
    sparse_score = sparse_part.x_sparse.matmul_dense(w_sparse).ravel()
    emb_dim = 4
    latent = np.random.default_rng(seed + 4).normal(
        size=(n_fields, vocab_size, emb_dim)
    )
    summed = np.zeros((n, emb_dim))
    for j in range(n_fields):
        summed += latent[j, cat_part.x_cat[:, j]]
    w_cat = np.random.default_rng(seed + 5).normal(size=emb_dim)
    cat_score = np.tanh(summed) @ w_cat
    score = (
        _standardise(sparse_score)
        + _standardise(cat_score)
        + rng.normal(0, 0.3, n)
    )
    y = (score > np.median(score)).astype(np.int64)
    noise = rng.random(n) < flip
    y[noise] ^= 1
    return Dataset(
        y=y,
        n_classes=2,
        x_sparse=sparse_part.x_sparse,
        x_cat=cat_part.x_cat,
        vocab_sizes=list(cat_part.vocab_sizes),
        name="mixed",
    )


def _standardise(values: np.ndarray) -> np.ndarray:
    std = values.std()
    return (values - values.mean()) / (std if std > 0 else 1.0)


def make_image_like(
    n: int,
    height: int = 28,
    width: int = 28,
    n_classes: int = 10,
    seed: int = 0,
    noise: float = 0.8,
    top_half_boost: float = 1.0,
) -> Dataset:
    """Fashion-MNIST-like images: class templates + pixel noise (Appendix D.1).

    Each class has a smooth random template; samples are noisy copies.  The
    VFL split cuts each image into two halves (done by the partitioner).
    ``top_half_boost > 1`` concentrates more class signal in the top half
    (Party A's half under a contiguous split), reproducing the paper's
    regime where Party B alone underperforms the collocated model.
    """
    rng = np.random.default_rng(seed)
    templates = rng.normal(size=(n_classes, height * width))
    # Smooth the templates a little so halves share class structure.
    kernel = np.ones(5) / 5
    for c in range(n_classes):
        templates[c] = np.convolve(templates[c], kernel, mode="same")
    half = (height * width) // 2
    templates[:, :half] *= top_half_boost
    y = rng.integers(0, n_classes, size=n)
    x = templates[y] + rng.normal(0, noise, size=(n, height * width))
    return Dataset(y=y.astype(np.int64), n_classes=n_classes, x_dense=x, name="image")
