"""Private set intersection (PSI) stand-ins.

The paper *assumes* instances are pre-aligned by PSI (§7.1) and discusses
two relaxations in §8:

* Liu et al. [42] — *asymmetric* PSI: only Party B learns the
  intersection; Party A works on a superset and B zeroes the derivatives
  of rows outside the intersection.
* Sun et al. [61] — *union* PSI: both parties get the union and synthesise
  features/labels for rows they do not own.

Real deployments use OPRF/DH-based protocols; here we provide functional
equivalents with a salted-hash exchange (the alignment semantics — which
rows pair up — are identical, which is all downstream code observes).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = ["PSIResult", "hashed_psi", "asymmetric_psi", "union_alignment"]


@dataclass
class PSIResult:
    """Alignment output: positions into each party's local id list."""

    ids: list[object]
    index_a: np.ndarray
    index_b: np.ndarray


def _salted_digest(identifier: object, salt: bytes) -> bytes:
    return hashlib.sha256(salt + repr(identifier).encode()).digest()


def hashed_psi(ids_a: list, ids_b: list, salt: bytes = b"blindfl") -> PSIResult:
    """Symmetric PSI: both parties learn the intersection, nothing else.

    Parties exchange salted hashes; matching digests identify shared ids.
    The result orders the intersection deterministically (by digest) so both
    parties produce identical alignments without further coordination.
    """
    if len(set(ids_a)) != len(ids_a) or len(set(ids_b)) != len(ids_b):
        raise ValueError("party id lists must not contain duplicates")
    digest_a = {_salted_digest(i, salt): pos for pos, i in enumerate(ids_a)}
    digest_b = {_salted_digest(i, salt): pos for pos, i in enumerate(ids_b)}
    common = sorted(set(digest_a) & set(digest_b))
    index_a = np.array([digest_a[d] for d in common], dtype=np.int64)
    index_b = np.array([digest_b[d] for d in common], dtype=np.int64)
    ids = [ids_a[i] for i in index_a]
    return PSIResult(ids=ids, index_a=index_a, index_b=index_b)


def asymmetric_psi(
    ids_a: list,
    ids_b: list,
    rng: np.random.Generator,
    salt: bytes = b"blindfl",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Asymmetric PSI (Liu et al. [42]): B learns membership, A does not.

    Returns ``(order_a, index_b, member_mask)``:

    * ``order_a`` — a permutation of *all* of A's rows (A processes every
      row, so it cannot tell which ones matched);
    * ``index_b`` — for each position of ``order_a`` that matched, B's row;
      non-members get ``-1``;
    * ``member_mask`` — boolean per position, known only to B.  B zeroes
      the derivatives of non-members (§8), so gradients are unaffected.
    """
    sym = hashed_psi(ids_a, ids_b, salt)
    order_a = rng.permutation(len(ids_a)).astype(np.int64)
    pos_of_a_row = {int(a_row): int(b_row) for a_row, b_row in zip(sym.index_a, sym.index_b)}
    index_b = np.array(
        [pos_of_a_row.get(int(row), -1) for row in order_a], dtype=np.int64
    )
    member_mask = index_b >= 0
    return order_a, index_b, member_mask


def union_alignment(
    ids_a: list, ids_b: list, salt: bytes = b"blindfl"
) -> tuple[list, np.ndarray, np.ndarray]:
    """Union alignment (Sun et al. [61]): both parties see the union.

    Returns ``(union_ids, index_a, index_b)`` where an index of ``-1``
    means the party does not own that row and must synthesise features
    (done by the caller, e.g. by sampling marginals).
    """
    digests = {}
    for i in ids_a + ids_b:
        digests.setdefault(_salted_digest(i, salt), i)
    union_ids = [digests[d] for d in sorted(digests)]
    pos_a = {i: p for p, i in enumerate(ids_a)}
    pos_b = {i: p for p, i in enumerate(ids_b)}
    index_a = np.array([pos_a.get(i, -1) for i in union_ids], dtype=np.int64)
    index_b = np.array([pos_b.get(i, -1) for i in union_ids], dtype=np.int64)
    return union_ids, index_a, index_b
