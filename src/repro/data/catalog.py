"""The dataset catalog: Table 4 reproduced at laptop scale.

Each entry mirrors one row of the paper's Table 4 (instances, features,
average nnz, classes) with a documented scale factor.  Shapes — sparsity
ratio, nnz per row, class count, feature type — are preserved; instance
counts and extreme dimensionalities are scaled down so a pure-Python
single-core run finishes in seconds.

| name      | paper (train/test, dim, nnz, cls) | here (train/test, dim, nnz) |
|-----------|-----------------------------------|------------------------------|
| a9a       | 32K/16K, 123, 14, 2               | 2000/1000, 123, 14          |
| w8a       | 50K/15K, 300, 12, 2               | 2000/800, 300, 12           |
| connect-4 | 50K/17K, 126, 42, 3               | 2000/800, 126, 42           |
| news20    | 16K/4K, 62K, 80, 20               | 600/200, 6200, 80           |
| higgs     | 8M/3M, 28 dense, 2                | 4000/1500, 28 dense         |
| avazu-app | 13M/2M, 1M, 14, 2                 | 1500/500, 20000, 14         |
| industry  | 100M/8M, 10M, 12, 2               | 1500/500, 100000, 12        |
| fmnist    | 60K/10K, 784 dense, 10            | 1200/400, 784 dense         |
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data.synthetic import (
    Dataset,
    make_dense_classification,
    make_image_like,
    make_mixed_classification,
    make_sparse_classification,
)

__all__ = ["CatalogEntry", "CATALOG", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class CatalogEntry:
    """One scaled Table 4 dataset."""

    name: str
    n_train: int
    n_test: int
    dim: int
    avg_nnz: int
    n_classes: int
    kind: str  # "sparse" | "dense" | "image" | "mixed"
    paper_model: str  # the model the paper pairs it with in Table 5 / Fig 12
    sparsity: str  # the sparsity string Table 5 reports
    make: Callable[[int], tuple[Dataset, Dataset]] = None  # type: ignore[assignment]


def _sparse_entry(entry: CatalogEntry, seed: int) -> tuple[Dataset, Dataset]:
    full = make_sparse_classification(
        entry.n_train + entry.n_test,
        entry.dim,
        entry.avg_nnz,
        n_classes=entry.n_classes,
        seed=seed,
    )
    return _split(full, entry.n_train)


def _dense_entry(entry: CatalogEntry, seed: int) -> tuple[Dataset, Dataset]:
    full = make_dense_classification(
        entry.n_train + entry.n_test, entry.dim, n_classes=entry.n_classes, seed=seed
    )
    return _split(full, entry.n_train)


def _image_entry(entry: CatalogEntry, seed: int) -> tuple[Dataset, Dataset]:
    full = make_image_like(
        entry.n_train + entry.n_test, n_classes=entry.n_classes, seed=seed
    )
    return _split(full, entry.n_train)


def _mixed_entry(entry: CatalogEntry, seed: int) -> tuple[Dataset, Dataset]:
    full = make_mixed_classification(
        entry.n_train + entry.n_test,
        sparse_dim=entry.dim,
        nnz_per_row=entry.avg_nnz,
        n_fields=8,
        vocab_size=64,
        seed=seed,
    )
    return _split(full, entry.n_train)


def _split(full: Dataset, n_train: int) -> tuple[Dataset, Dataset]:
    import numpy as np

    idx = np.arange(full.n)
    return full.subset(idx[:n_train]), full.subset(idx[n_train:])


_ENTRIES = [
    CatalogEntry("a9a", 2000, 1000, 123, 14, 2, "sparse", "LR", "88.72%"),
    CatalogEntry("w8a", 2000, 800, 300, 12, 2, "sparse", "LR", "96.12%"),
    CatalogEntry("connect-4", 2000, 800, 126, 42, 3, "sparse", "MLP", "66.67%"),
    CatalogEntry("news20", 600, 200, 6200, 80, 20, "sparse", "MLR", "99.87%"),
    CatalogEntry("higgs", 4000, 1500, 28, 28, 2, "dense", "LR", "Dense"),
    CatalogEntry("avazu-app", 1500, 500, 20000, 14, 2, "sparse", "LR", "99.99%"),
    CatalogEntry("industry", 1500, 500, 100000, 12, 2, "sparse", "LR", "99.99%"),
    CatalogEntry("fmnist", 1200, 400, 784, 784, 10, "image", "MLP", "Dense"),
    CatalogEntry("avazu-wdl", 1500, 500, 2000, 14, 2, "mixed", "WDL", "99.3%"),
    CatalogEntry("industry-dlrm", 1500, 500, 4000, 12, 2, "mixed", "DLRM", "99.7%"),
]

_MAKERS = {
    "sparse": _sparse_entry,
    "dense": _dense_entry,
    "image": _image_entry,
    "mixed": _mixed_entry,
}

CATALOG: dict[str, CatalogEntry] = {e.name: e for e in _ENTRIES}


def dataset_names() -> list[str]:
    return [e.name for e in _ENTRIES]


def load_dataset(name: str, seed: int = 0) -> tuple[Dataset, Dataset]:
    """Materialise (train, test) for a catalog dataset."""
    try:
        entry = CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        ) from None
    return _MAKERS[entry.kind](entry, seed)
