"""Mini-batch iteration over vertically partitioned data.

Matches the paper's protocol assumptions: both parties iterate the *same*
batch of instance ids each step (instances are pre-aligned by PSI), labels
stay at Party B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.partition import PartyData, VerticalDataset

__all__ = ["Batch", "BatchLoader"]


@dataclass
class Batch:
    """One aligned mini-batch."""

    parties: dict[str, PartyData]
    y: np.ndarray
    indices: np.ndarray

    @property
    def size(self) -> int:
        return int(self.y.shape[0])

    def party(self, name: str) -> PartyData:
        return self.parties[name]


class BatchLoader:
    """Shuffling mini-batch loader (drops the final ragged batch)."""

    def __init__(
        self,
        dataset: VerticalDataset,
        batch_size: int,
        rng: np.random.Generator | None = None,
        shuffle: bool = True,
        drop_last: bool = True,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if batch_size > dataset.n:
            raise ValueError("batch_size exceeds dataset size")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng or np.random.default_rng(0)

    def __len__(self) -> int:
        if self.drop_last:
            return self.dataset.n // self.batch_size
        return (self.dataset.n + self.batch_size - 1) // self.batch_size

    def draw_order(self) -> np.ndarray:
        """Draw this epoch's instance order (one RNG shuffle per call).

        Split out from iteration so checkpointing can capture the exact
        order a partially-consumed epoch was following: the draw here is
        bit-identical to what ``__iter__`` always did (``np.arange`` then
        one ``rng.shuffle``), so loader RNG trajectories are unchanged.
        """
        order = np.arange(self.dataset.n)
        if self.shuffle:
            self._rng.shuffle(order)
        return order

    def batches(self, order: np.ndarray, start: int = 0) -> Iterator[tuple[int, Batch]]:
        """Yield ``(batch_no, batch)`` following a fixed instance order.

        ``start`` skips already-consumed batches without materialising
        them (resume-from-checkpoint walks straight to the next batch).
        """
        order = np.asarray(order)
        if order.shape[0] != self.dataset.n:
            raise ValueError(
                f"order covers {order.shape[0]} instances, dataset has "
                f"{self.dataset.n}"
            )
        for batch_no, lo in enumerate(range(0, self.dataset.n, self.batch_size)):
            idx = order[lo : lo + self.batch_size]
            if self.drop_last and idx.shape[0] < self.batch_size:
                break
            if batch_no < start:
                continue
            sliced = self.dataset.take_rows(idx)
            yield batch_no, Batch(parties=sliced.parties, y=sliced.y, indices=idx)

    def __iter__(self) -> Iterator[Batch]:
        for _, batch in self.batches(self.draw_order()):
            yield batch
