"""Datasets: synthetic Table-4-shaped generators, vertical partitioning,
mini-batch loading, and PSI alignment."""

from repro.data.catalog import CATALOG, CatalogEntry, dataset_names, load_dataset
from repro.data.loader import Batch, BatchLoader
from repro.data.partition import (
    PartyData,
    VerticalDataset,
    split_csr_columns,
    split_vertical,
)
from repro.data.psi import PSIResult, asymmetric_psi, hashed_psi, union_alignment
from repro.data.synthetic import (
    Dataset,
    make_categorical_classification,
    make_dense_classification,
    make_image_like,
    make_mixed_classification,
    make_sparse_classification,
)

__all__ = [
    "CATALOG",
    "CatalogEntry",
    "dataset_names",
    "load_dataset",
    "Batch",
    "BatchLoader",
    "PartyData",
    "VerticalDataset",
    "split_csr_columns",
    "split_vertical",
    "PSIResult",
    "hashed_psi",
    "asymmetric_psi",
    "union_alignment",
    "Dataset",
    "make_categorical_classification",
    "make_dense_classification",
    "make_image_like",
    "make_mixed_classification",
    "make_sparse_classification",
]
