"""Vertical partitioning: split features across parties.

The paper "evenly divide[s] the features for the two parties" (§7.1) and
keeps the labels at Party B.  The partitioner supports every block type
(dense, CSR sparse, categorical fields) and M+1-way splits for the
multi-party extension.  Image datasets are cut into contiguous pixel halves
(the 14x28 subfigures of Appendix D.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import Dataset
from repro.tensor.sparse import CSRMatrix

__all__ = ["PartyData", "VerticalDataset", "split_vertical", "split_csr_columns"]


@dataclass
class PartyData:
    """One party's feature blocks (no labels)."""

    x_dense: np.ndarray | None = None
    x_sparse: CSRMatrix | None = None
    x_cat: np.ndarray | None = None
    vocab_sizes: list[int] = field(default_factory=list)

    @property
    def dense_dim(self) -> int:
        if self.x_dense is not None:
            return self.x_dense.shape[1]
        if self.x_sparse is not None:
            return self.x_sparse.shape[1]
        return 0

    @property
    def n_fields(self) -> int:
        return 0 if self.x_cat is None else self.x_cat.shape[1]

    def take_rows(self, idx: np.ndarray) -> "PartyData":
        return PartyData(
            x_dense=None if self.x_dense is None else self.x_dense[idx],
            x_sparse=None if self.x_sparse is None else self.x_sparse.take_rows(idx),
            x_cat=None if self.x_cat is None else self.x_cat[idx],
            vocab_sizes=list(self.vocab_sizes),
        )

    def numeric_block(self) -> np.ndarray | CSRMatrix:
        """The numerical features (dense preferred) — MatMul layer input."""
        if self.x_dense is not None:
            return self.x_dense
        if self.x_sparse is not None:
            return self.x_sparse
        raise ValueError("party has no numerical features")


@dataclass
class VerticalDataset:
    """A vertically partitioned dataset: per-party features, labels at B."""

    parties: dict[str, PartyData]
    y: np.ndarray
    n_classes: int
    name: str = ""

    @property
    def n(self) -> int:
        return int(self.y.shape[0])

    def take_rows(self, idx: np.ndarray) -> "VerticalDataset":
        return VerticalDataset(
            parties={k: v.take_rows(idx) for k, v in self.parties.items()},
            y=self.y[idx],
            n_classes=self.n_classes,
            name=self.name,
        )

    def party(self, name: str) -> PartyData:
        return self.parties[name]


def split_csr_columns(
    matrix: CSRMatrix, boundaries: list[int]
) -> list[CSRMatrix]:
    """Split a CSR matrix into column ranges ``[0,b0), [b0,b1), ...``.

    Column indices are re-based inside each slice, matching how each party
    sees only its own feature space.
    """
    edges = [0] + list(boundaries) + [matrix.shape[1]]
    if any(edges[i] >= edges[i + 1] for i in range(len(edges) - 1)):
        raise ValueError(f"boundaries {boundaries} do not partition the columns")
    pieces_rows: list[list[tuple[np.ndarray, np.ndarray]]] = [
        [] for _ in range(len(edges) - 1)
    ]
    for cols, vals in matrix.iter_rows():
        for p in range(len(edges) - 1):
            lo, hi = edges[p], edges[p + 1]
            mask = (cols >= lo) & (cols < hi)
            pieces_rows[p].append((cols[mask] - lo, vals[mask]))
    return [
        CSRMatrix.from_rows(rows, edges[p + 1] - edges[p])
        for p, rows in enumerate(pieces_rows)
    ]


def _even_boundaries(total: int, n_parts: int) -> list[int]:
    base = total // n_parts
    return [base * i for i in range(1, n_parts)]


def split_vertical(
    dataset: Dataset, party_names: tuple[str, ...] = ("A", "B")
) -> VerticalDataset:
    """Evenly divide every feature block across ``party_names``.

    The last name is Party B (label holder).  Dense and sparse features are
    split by contiguous column ranges; categorical fields round-robin so
    each party gets whole fields.
    """
    n_parts = len(party_names)
    if n_parts < 2:
        raise ValueError("need at least two parties")
    blocks: dict[str, PartyData] = {name: PartyData() for name in party_names}

    if dataset.x_dense is not None:
        cuts = _even_boundaries(dataset.x_dense.shape[1], n_parts)
        pieces = np.split(dataset.x_dense, cuts, axis=1)
        for name, piece in zip(party_names, pieces):
            blocks[name].x_dense = piece

    if dataset.x_sparse is not None:
        cuts = _even_boundaries(dataset.x_sparse.shape[1], n_parts)
        for name, piece in zip(party_names, split_csr_columns(dataset.x_sparse, cuts)):
            blocks[name].x_sparse = piece

    if dataset.x_cat is not None:
        n_fields = dataset.x_cat.shape[1]
        if n_fields < n_parts:
            raise ValueError("fewer categorical fields than parties")
        for p, name in enumerate(party_names):
            fields = list(range(p, n_fields, n_parts))
            blocks[name].x_cat = dataset.x_cat[:, fields]
            blocks[name].vocab_sizes = [dataset.vocab_sizes[f] for f in fields]

    return VerticalDataset(
        parties=blocks, y=dataset.y, n_classes=dataset.n_classes, name=dataset.name
    )
