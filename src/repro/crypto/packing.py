"""SIMD-slot Paillier batching: many fixed-point values per ciphertext.

A 2048-bit Paillier plaintext has room for far more than one 72-bit
fixed-point value, yet the per-element :class:`~repro.crypto.crypto_tensor.
CryptoTensor` spends one whole ciphertext (~512 wire bytes, one blinding
exponentiation, one CRT decryption) per tensor entry.  This module packs
``slots`` values into the binary expansion of a single plaintext::

    P  =  sum_i  m_i * 2**(slot_bits * i)          (signed mantissas m_i)

so one ciphertext carries one *row segment* of a tensor, and the additive
homomorphism acts lane-wise:

* ``[[P]] + [[Q]]`` adds every lane at once (one mulmod instead of
  ``slots``);
* ``c * [[P]]`` multiplies every lane by the same plaintext scalar (one
  exponentiation instead of ``slots``) — which is exactly the access
  pattern of ``plain @ cipher`` matmuls when the *output* dimension is
  packed: ``out[i, :] = sum_t  x[i, t] * cipher_row_t``;
* a "rotate/scatter" kernel (:func:`pack_rows_flat`) lifts an existing
  per-element ciphertext batch into packed form homomorphically
  (``prod_i ct_i ** 2**(slot_bits * i)``), so already-computed tensors can
  be packed just before hitting the wire.

Lane layout and overflow safety
-------------------------------
Signed lanes use a borrow-propagating split (two's-complement style): as
long as every lane value satisfies ``|m_i| < 2**(slot_bits - 1)``, the
packed integer determines the lanes uniquely — extract ``P mod 2**B`` as a
signed residue, subtract, shift, repeat.  Lane widths are therefore
budgeted up front by :meth:`SlotLayout.design`::

    slot_bits = max(value_bits + plain_bits + log2(acc_depth),   # products
                    mask_mantissa_bits)                          # HE2SS masks
                + carry + sign

i.e. *twice* the per-operand fixed-point precision plus overflow guard
bits derived from the key size and the accumulation depth.  Every packed
tensor additionally tracks a conservative per-lane magnitude bound
(``value_bits``); any operation that could push a lane across the guard
band raises :class:`OverflowError` *before* corrupting neighbouring lanes,
and the decoder double-checks that the borrow chain terminates at zero.

By default lanes never span logical rows: a ``(rows, cols)`` tensor packs
each row into ``ceil(cols / slots)`` ciphertexts, so row gather/scatter
(embedding lookups, delta refreshes) and packed matmuls stay possible.
Transfer-only tensors — HE2SS payloads that exist just to be shipped and
decrypted — may instead pack ``contiguous=True``: one dense row-major lane
stream with no per-row padding, which is what keeps column vectors (e.g.
logistic-regression activations, ``out_dim == 1``) at the full ``slots``-
fold reduction.

What cannot be packed
---------------------
Paillier offers no homomorphic lane *extraction*: once packed, a tensor
can only be decrypted as a whole (or re-encrypted per element by the key
owner — :meth:`PackedCryptoTensor.unpack`).  ``cipher @ plain`` products
and transposes need per-lane multipliers and are likewise impossible; the
protocol layers keep those tensors in per-element form and pack only where
the slot structure lines up (forward matmuls against weight pieces packed
along the output dimension, and any HE2SS transfer just before the wire).

All arithmetic mirrors the flat kernels bit-for-bit (same mantissa
encodings, same exponent alignment), so packed pipelines decode to the
*identical* float64 arrays — the equivalence suite pins this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crypto import kernels
from repro.crypto.crypto_tensor import CryptoTensor
from repro.crypto.kernels import PLAIN_EXPONENT, TENSOR_EXPONENT, raw_mul_many
from repro.crypto.math_utils import invmod
from repro.crypto.paillier import EncryptedNumber, PaillierPublicKey
from repro.crypto.parallel import ParallelContext
from repro.obs import tracer as _obs

__all__ = [
    "SlotLayout",
    "PackedCryptoTensor",
    "protocol_layout",
    "pack_encode_flat",
    "pack_encrypt_flat",
    "pack_decrypt_flat",
    "pack_rows_flat",
    "pack_scatter_add_flat",
    "pack_add_flat",
    "pack_neg_flat",
    "pack_scalar_mul_flat",
    "pack_shift_flat",
    "pack_matmul_plain_cipher_flat",
    "pack_sparse_matmul_cipher_flat",
    "pack_matmul_plain_cipher",
    "pack_sparse_matmul_cipher",
]


def _mag_bits(bound: float) -> int:
    """Bits needed for magnitudes up to ``bound`` (at least 1)."""
    return max(1, math.ceil(math.log2(bound)) + 1)


def _acc_bits(depth: int) -> int:
    """Headroom bits for summing ``depth`` bounded terms: ceil(log2(depth))."""
    return max(0, int(depth - 1).bit_length())


def _signed_mantissa(value: float, exponent: int) -> int:
    """Signed fixed-point mantissa of ``value`` at ``exponent``.

    Same rounding as the flat kernels' encoder, but *signed* — packing
    needs true integers, not residues mod n.
    """
    if not math.isfinite(value):
        raise ValueError(f"cannot encode non-finite value {value!r}")
    try:
        return int(round(math.ldexp(value, -exponent)))
    except OverflowError:
        raise OverflowError(
            f"scalar {value} at exponent {exponent} exceeds plaintext bound"
        ) from None


@dataclass(frozen=True)
class SlotLayout:
    """The wire format of one packed ciphertext.

    Attributes:
        slot_bits: full width of one lane; lane values must stay strictly
            inside ``(-2**(slot_bits-1), 2**(slot_bits-1))``.
        slots: lanes per ciphertext.
        key_bits: modulus size the layout was derived for (sender and
            receiver must agree on all four fields — in-process transport
            ships the layout with the tensor; a networked deployment would
            serialise these ints in the message header).
        base_value_bits: the per-lane *operand* budget the layout was
            designed around (``|mantissa| < 2**base_value_bits``); used as
            the assumed bound when packing opaque ciphertexts whose true
            magnitudes are not visible.
        acc_depth: the accumulation depth the slot width budgets guard bits
            for — how many bounded product terms one lane may sum (matmul
            contractions, scatter-add fan-in).  Protocol layers validate
            batch sizes against this *before* running a batch-deep
            contraction, turning would-be silent lane corruption into a
            loud step-time error.
    """

    slot_bits: int
    slots: int
    key_bits: int
    base_value_bits: int
    acc_depth: int = 1

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("a layout needs at least one slot")
        if not 0 < self.base_value_bits < self.slot_bits:
            raise ValueError("base_value_bits must leave guard room in the slot")
        if self.acc_depth < 1:
            raise ValueError("acc_depth must be at least 1")
        if self.slot_bits * self.slots > self.key_bits - 2:
            raise ValueError(
                f"{self.slots} x {self.slot_bits}-bit slots do not fit a "
                f"{self.key_bits}-bit key's plaintext space"
            )

    @property
    def lane_cap_bits(self) -> int:
        """Hard per-lane magnitude cap (one bit reserved for the sign)."""
        return self.slot_bits - 1

    @property
    def acc_operand_bits(self) -> int:
        """Designed per-lane bound for operands still awaiting accumulation.

        A lane holding at most this many magnitude bits can be summed
        ``acc_depth``-deep and still leave the one guard bit an HE2SS mask
        add needs — the bound :meth:`design` sized the slot around.  Used
        as the ``value_bits`` promise when packing opaque product rows that
        a scatter-add will accumulate (the packed ``lkup_bw`` path).
        """
        return max(1, self.lane_cap_bits - 1 - _acc_bits(self.acc_depth))

    def acc_operand_bits_for(self, terms: int) -> int:
        """The :attr:`acc_operand_bits` promise widened for contracted rows.

        An operand that is itself the sum of ``terms`` designed-width
        products (e.g. an embedding gradient row ``gZ @ U.T + gZ V.T``,
        which contracts over the output dimension) carries up to
        ``ceil(log2(terms))`` extra magnitude bits.  Charging them to the
        pack promise keeps the scatter-add's pre-execution guard sound:
        callers must budget the matching fan-in (``terms * batch``)
        against ``acc_depth``.
        """
        return self.acc_operand_bits + _acc_bits(max(terms, 1))

    def ct_count(self, cols: int) -> int:
        """Packed ciphertexts per logical row of ``cols`` values."""
        return -(-cols // self.slots)

    def check_key(self, public_key: PaillierPublicKey) -> None:
        """Verify the packed integer fits this key's exact guard band."""
        cap = public_key.max_int.bit_length() - 1
        if self.slot_bits * self.slots > cap:
            raise ValueError(
                f"layout needs {self.slot_bits * self.slots} plaintext bits "
                f"but the {public_key.key_bits}-bit key offers {cap}"
            )

    def to_wire(self) -> tuple[int, int, int, int, int]:
        """The five layout integers, in canonical field order.

        Sender and receiver must agree on all five before a packed
        ciphertext can be interpreted; a networked transport serialises
        exactly this tuple in every packed-payload header.
        """
        return (
            self.slot_bits,
            self.slots,
            self.key_bits,
            self.base_value_bits,
            self.acc_depth,
        )

    @classmethod
    def from_wire(cls, fields: tuple[int, int, int, int, int]) -> "SlotLayout":
        """Rebuild a layout from its wire tuple (validates in __post_init__)."""
        slot_bits, slots, key_bits, base_value_bits, acc_depth = fields
        return cls(
            slot_bits=int(slot_bits),
            slots=int(slots),
            key_bits=int(key_bits),
            base_value_bits=int(base_value_bits),
            acc_depth=int(acc_depth),
        )

    @classmethod
    def design(
        cls,
        public_key: PaillierPublicKey,
        *,
        value_mag_bits: int = 8,
        plain_mag_bits: int = 8,
        acc_depth: int = 1024,
        mask_scale: float = 2.0**16,
        value_frac_bits: int = -TENSOR_EXPONENT,
        plain_frac_bits: int = -PLAIN_EXPONENT,
    ) -> "SlotLayout":
        """Derive the slot width from precision, key size and depth.

        ``value_*`` bounds the packed tensor entries (``|v| < 2**mag`` at
        ``2**-frac`` resolution), ``plain_*`` the scalars they will be
        multiplied by, ``acc_depth`` how many such products one lane may
        accumulate, and ``mask_scale`` the largest HE2SS mask that will be
        added before the wire.  Raises :class:`ValueError` when even one
        slot does not fit the key.
        """
        if acc_depth < 1:
            raise ValueError("acc_depth must be at least 1")
        base = value_frac_bits + value_mag_bits
        product = base + plain_frac_bits + plain_mag_bits
        mask = value_frac_bits + plain_frac_bits + _mag_bits(mask_scale)
        # +1 for the mask-add carry, +1 for the sign.
        slot_bits = max(product + _acc_bits(acc_depth), mask) + 2
        cap = public_key.max_int.bit_length() - 1
        slots = cap // slot_bits
        if slots < 1:
            raise ValueError(
                f"a {slot_bits}-bit slot does not fit the "
                f"{public_key.key_bits}-bit key's {cap} plaintext bits"
            )
        return cls(
            slot_bits=slot_bits,
            slots=slots,
            key_bits=public_key.key_bits,
            base_value_bits=base,
            acc_depth=acc_depth,
        )


def protocol_layout(
    public_key: PaillierPublicKey,
    mask_scale: float,
    acc_depth: int,
    *,
    value_mag_bits: int = 8,
    plain_mag_bits: int | None = None,
) -> SlotLayout | None:
    """The layout a protocol layer should use under ``public_key``.

    ``plain_mag_bits`` defaults to covering ``mask_scale``-sized plaintext
    operands: the Embed-MatMul layer multiplies HE2SS *share pieces*
    (mask-magnitude by construction) against packed weight pieces, so the
    plaintext budget must absorb the mask scale, not just the data scale.

    Returns ``None`` when the key is too small for packing to pay off
    (fewer than two slots) — callers fall back to per-element ciphertexts.
    """
    if plain_mag_bits is None:
        plain_mag_bits = max(8, _mag_bits(mask_scale) + 2)
    try:
        layout = SlotLayout.design(
            public_key,
            value_mag_bits=value_mag_bits,
            plain_mag_bits=plain_mag_bits,
            acc_depth=acc_depth,
            mask_scale=mask_scale,
        )
    except ValueError:
        return None
    return layout if layout.slots >= 2 else None


# ---------------------------------------------------------------------------
# Flat packed kernels.  Like repro.crypto.kernels, these operate on raw
# ``list[int]`` residues; shape/exponent/bound metadata lives on the caller.


def pack_encode_flat(
    public_key: PaillierPublicKey,
    values: np.ndarray,
    layout: SlotLayout,
    exponent: int,
    encode_exponent: int | None = None,
    natural: bool = False,
) -> tuple[list[int], int]:
    """Pack a 2-D float array into plaintext residues, row by row.

    Each value is encoded as a signed mantissa at ``encode_exponent``
    (default: ``exponent``) and shifted to ``exponent`` — mirroring how the
    unpacked add kernel aligns a coarser operand onto a finer ciphertext,
    so packed pipelines decode bit-identically.  ``natural=True`` instead
    encodes every value at its own float-natural exponent (the unpacked
    ``add_plain`` convention); ``exponent`` must then be at least as fine
    as the finest natural exponent involved.  Returns the residues
    (``rows * ct_count(cols)`` of them) and the largest lane magnitude in
    bits (the tensor's initial guard-band bound).
    """
    values = np.atleast_2d(np.asarray(values, dtype=np.float64))
    if natural and encode_exponent is not None:
        raise ValueError("natural encoding picks its own per-value exponents")
    if encode_exponent is None:
        encode_exponent = exponent
    if not natural and encode_exponent < exponent:
        raise ValueError("encode_exponent must be no finer than the target exponent")
    n = public_key.n
    slot_bits, slots = layout.slot_bits, layout.slots
    cap = layout.lane_cap_bits
    cache: dict[float, int] = {}
    max_bits = 1
    out: list[int] = []
    for row in values:
        lanes = row.tolist()
        for start in range(0, len(lanes), slots):
            packed = 0
            for j, v in enumerate(lanes[start : start + slots]):
                m = cache.get(v)
                if m is None:
                    ev = (
                        kernels._default_float_exponent(v)
                        if natural
                        else encode_exponent
                    )
                    m = _signed_mantissa(v, ev) << (ev - exponent)
                    bits = m.bit_length() if m >= 0 else (-m).bit_length()
                    if bits > cap:
                        raise OverflowError(
                            f"value {v} needs a {bits}-bit lane but the layout "
                            f"provides {cap} magnitude bits per {slot_bits}-bit slot"
                        )
                    cache[v] = m
                packed += m << (slot_bits * j)
            out.append(packed % n)
    for m in cache.values():
        bits = m.bit_length() if m >= 0 else (-m).bit_length()
        if bits > max_bits:
            max_bits = bits
    return out, max_bits


def pack_encrypt_flat(
    public_key: PaillierPublicKey,
    packed_residues: Sequence[int],
    obfuscate: bool = True,
    parallel: ParallelContext | None = None,
) -> list[int]:
    """Encrypt packed plaintext residues (``g = n + 1`` shortcut + pool)."""
    n = public_key.n
    nsq = public_key.nsquare
    cts = [(1 + p * n) % nsq for p in packed_residues]
    if obfuscate:
        blinders = public_key.blinding_factors(len(cts), parallel=parallel)
        cts = [(c * b) % nsq for c, b in zip(cts, blinders)]
    trc = _obs.get_tracer()
    if trc is not None:
        trc.add("ct.encrypted", len(cts))
    return cts


def _split_lanes(packed: int, layout: SlotLayout, count: int) -> list[int]:
    """Borrow-propagating signed lane extraction; loud on a dirty carry chain."""
    slot_bits = layout.slot_bits
    full = 1 << slot_bits
    half = full >> 1
    mask = full - 1
    lanes: list[int] = []
    for _ in range(count):
        r = packed & mask
        if r >= half:
            r -= full
        lanes.append(r)
        packed = (packed - r) >> slot_bits
    if packed != 0:
        raise OverflowError(
            "packed lanes overflowed the slot guard band (borrow chain did "
            "not terminate); widen slot_bits or reduce accumulation depth"
        )
    return lanes


def pack_decrypt_flat(
    private_key,
    cts: Sequence[int],
    layout: SlotLayout,
    rows: int,
    cols: int,
    exponent: int,
    parallel: ParallelContext | None = None,
) -> np.ndarray:
    """CRT-decrypt a packed batch and split lanes back to float64.

    Mirrors the unpacked ``decrypt_flat`` arithmetic exactly (same CRT,
    same guard-band check, same ``ldexp`` decode), then runs the signed
    borrow split per ciphertext.  The CRT exponentiations go through the
    batch :func:`~repro.crypto.kernels.crt_decrypt_many` path, so a
    configured parallel context shards them across the key owner's private
    worker tier, bit-identical to serial.
    """
    pk = private_key.public_key
    n, max_int = pk.n, pk.max_int
    cpr = layout.ct_count(cols)
    if len(cts) != rows * cpr:
        raise ValueError("ciphertext count does not match the packed shape")
    raw = kernels.crt_decrypt_many(private_key, cts, parallel)
    out = np.empty((rows, cols), dtype=np.float64)
    for r in range(rows):
        col = 0
        for b in range(cpr):
            m = raw[r * cpr + b]
            if m <= max_int:
                packed = m
            elif m >= n - max_int:
                packed = m - n
            else:
                raise OverflowError(
                    "packed encoding fell in the overflow guard band; "
                    "increase the key size or reduce tensor magnitudes"
                )
            lanes = _split_lanes(packed, layout, min(layout.slots, cols - col))
            for lane in lanes:
                e = exponent
                while abs(lane) > 2**1000:  # keep ldexp inside float range
                    lane >>= 64
                    e += 64
                out[r, col] = math.ldexp(float(lane), e)
                col += 1
    return out


def pack_rows_flat(
    public_key: PaillierPublicKey,
    cts: Sequence[int],
    rows: int,
    cols: int,
    layout: SlotLayout,
    parallel: ParallelContext | None = None,
) -> list[int]:
    """Homomorphic rotate/scatter: lift per-element ciphertexts into lanes.

    ``cts`` is a row-major ``rows x cols`` batch at one uniform exponent;
    each output ciphertext is ``prod_j ct_j ** 2**(slot_bits * j)`` over a
    run of ``slots`` elements.  Lane 0 is free (exponent 1); higher lanes
    cost one modexp each with exponents up to ``slot_bits * (slots - 1)``
    bits — still far below a blinding exponentiation.
    """
    if len(cts) != rows * cols:
        raise ValueError("ciphertext count does not match rows x cols")
    nsq = public_key.nsquare
    slot_bits, slots = layout.slot_bits, layout.slots
    jobs: list[tuple[int, int]] = []
    for r in range(rows):
        base = r * cols
        for start in range(0, cols, slots):
            for j in range(min(slots, cols - start)):
                jobs.append((cts[base + start + j], 1 << (slot_bits * j)))
    powered = raw_mul_many(public_key, jobs, parallel)
    out: list[int] = []
    pos = 0
    for r in range(rows):
        for start in range(0, cols, slots):
            width = min(slots, cols - start)
            acc = 1
            for j in range(width):
                acc = (acc * powered[pos + j]) % nsq
            pos += width
            out.append(acc)
    trc = _obs.get_tracer()
    if trc is not None:
        trc.add("ct.packed", len(out))
    return out


def pack_scatter_add_flat(
    public_key: PaillierPublicKey,
    cts: Sequence[int],
    indices: Sequence[int],
    num_rows: int,
    ct_per_row: int,
    parallel: ParallelContext | None = None,
    obfuscate_empty: bool = True,
) -> list[int]:
    """Packed ``lkup_bw``: sum packed batch rows into a packed table.

    A logical row is ``ct_per_row`` ciphertexts, so the accumulation is
    ``ct_per_row`` lane-wise mulmods per batch row — the ``slots``-fold
    saving over the per-element scatter.  Untouched table rows come back as
    *blinded* encryptions of zero (see :func:`repro.crypto.kernels.
    scatter_add_flat`), never as the recognisable raw residue ``1``.  The
    caller tracks ``value_bits`` growth; this kernel only moves residues.
    """
    return kernels.scatter_add_flat(
        public_key, cts, indices, num_rows, ct_per_row,
        parallel=parallel, obfuscate_empty=obfuscate_empty,
    )


def pack_add_flat(
    public_key: PaillierPublicKey, a_cts: Sequence[int], b_cts: Sequence[int]
) -> list[int]:
    """Lane-wise homomorphic add: one mulmod covers every slot."""
    nsq = public_key.nsquare
    return [(a * b) % nsq for a, b in zip(a_cts, b_cts)]


def pack_neg_flat(public_key: PaillierPublicKey, cts: Sequence[int]) -> list[int]:
    """Negate every lane (modular inverse of the packed ciphertext)."""
    nsq = public_key.nsquare
    return [invmod(c, nsq) for c in cts]


def pack_scalar_mul_flat(
    public_key: PaillierPublicKey,
    cts: Sequence[int],
    mantissa: int,
    parallel: ParallelContext | None = None,
) -> list[int]:
    """Multiply every lane of every ciphertext by one plaintext mantissa.

    ``mantissa`` is a residue mod n; the raw-mul kernel's inversion trick
    keeps negative multipliers cheap, and the borrow-splitting decoder
    recovers the per-lane signed products exactly.
    """
    return raw_mul_many(public_key, [(c, mantissa) for c in cts], parallel)


def pack_shift_flat(
    public_key: PaillierPublicKey,
    cts: Sequence[int],
    shift_bits: int,
    parallel: ParallelContext | None = None,
) -> list[int]:
    """Re-express every lane at a ``shift_bits``-finer exponent."""
    if shift_bits == 0:
        return list(cts)
    if shift_bits < 0:
        raise ValueError("cannot coarsen a ciphertext exponent losslessly")
    return pack_scalar_mul_flat(public_key, cts, 1 << shift_bits, parallel)


def _encode_plain_dedup(
    public_key: PaillierPublicKey, enc_cache: dict, v: float
) -> tuple[int, int]:
    """Residue + signed magnitude bits of a plaintext multiplier, cached."""
    cached = enc_cache.get(v)
    if cached is None:
        signed = _signed_mantissa(v, PLAIN_EXPONENT)
        bits = signed.bit_length() if signed >= 0 else (-signed).bit_length()
        cached = (signed % public_key.n, bits)
        enc_cache[v] = cached
    return cached


def _accumulate_blocks(
    public_key: PaillierPublicKey,
    cts: Sequence[int],
    blocks: Sequence[tuple[int, int, Sequence[int]]],
    out_rows: int,
    cpr: int,
    parallel: ParallelContext | None,
) -> list[int]:
    """Shared matmul core: power each cipher-row block once, scatter-mulmod.

    ``blocks`` is ``(ct_base_index, mantissa_residue, output_rows)`` — one
    entry per distinct (cipher row, plaintext value) pair, `cpr` packed
    ciphertexts wide.  This is where the slot-count saving lands: the job
    list is ``cpr`` long per block instead of the logical column count.
    """
    nsq = public_key.nsquare
    jobs: list[tuple[int, int]] = []
    for base, mant, _ in blocks:
        for b in range(cpr):
            jobs.append((cts[base + b], mant))
    powered = raw_mul_many(public_key, jobs, parallel)
    out = [1] * (out_rows * cpr)
    pos = 0
    for _, _, rows_for_block in blocks:
        block = powered[pos : pos + cpr]
        pos += cpr
        for i in rows_for_block:
            ob = i * cpr
            for b in range(cpr):
                out[ob + b] = (out[ob + b] * block[b]) % nsq
    return out


def pack_matmul_plain_cipher_flat(
    public_key: PaillierPublicKey,
    plain: np.ndarray,
    cts: Sequence[int],
    cpr: int,
    exponent: int,
    parallel: ParallelContext | None = None,
) -> tuple[list[int], int, int, int]:
    """Dense ``plain (s x m) @ packed-cipher (m rows x cpr cts)``.

    The cipher rows are packed along the *output* dimension, so each
    plaintext entry multiplies a whole row segment at once; the same
    per-column raw-mul dedup as the unpacked kernel applies on top.

    Returns ``(out_cts, prod_exponent, max_plain_bits, max_terms)`` — the
    last two feed the caller's lane-overflow bookkeeping.
    """
    plain = np.asarray(plain, dtype=np.float64)
    s, m = plain.shape
    enc_cache: dict[float, tuple[int, int]] = {}
    max_plain_bits = 1
    blocks: list[tuple[int, int, list[int]]] = []
    for t in range(m):
        col = plain[:, t]
        nz = np.nonzero(col)[0]
        if not nz.size:
            continue
        by_value: dict[float, list[int]] = {}
        for i in nz.tolist():
            by_value.setdefault(float(col[i]), []).append(i)
        for v, rows_for_value in by_value.items():
            mant, bits = _encode_plain_dedup(public_key, enc_cache, v)
            if bits > max_plain_bits:
                max_plain_bits = bits
            blocks.append((t * cpr, mant, rows_for_value))
    out = _accumulate_blocks(public_key, cts, blocks, s, cpr, parallel)
    max_terms = int(np.count_nonzero(plain, axis=1).max(initial=0))
    return out, exponent + PLAIN_EXPONENT, max_plain_bits, max_terms


def pack_sparse_matmul_cipher_flat(
    public_key: PaillierPublicKey,
    rows: Sequence[tuple[Sequence[int], Sequence[float]]],
    m: int,
    cts: Sequence[int],
    cpr: int,
    exponent: int,
    parallel: ParallelContext | None = None,
) -> tuple[list[int], int, int, int]:
    """CSR ``plain @ packed-cipher`` with batch-wide ``(col, value)`` dedup."""
    by_col_value: dict[tuple[int, float], list[int]] = {}
    terms = [0] * len(rows)
    for i, (cols, vals) in enumerate(rows):
        for col, v in zip(cols, vals):
            col = int(col)
            if col >= m:
                raise IndexError("sparse column index out of range")
            fv = float(v)
            if fv == 0.0:
                continue
            terms[i] += 1
            by_col_value.setdefault((col, fv), []).append(i)
    enc_cache: dict[float, tuple[int, int]] = {}
    max_plain_bits = 1
    blocks: list[tuple[int, int, list[int]]] = []
    for (col, v), out_rows_for_block in by_col_value.items():
        mant, bits = _encode_plain_dedup(public_key, enc_cache, v)
        if bits > max_plain_bits:
            max_plain_bits = bits
        blocks.append((col * cpr, mant, out_rows_for_block))
    out = _accumulate_blocks(public_key, cts, blocks, len(rows), cpr, parallel)
    return out, exponent + PLAIN_EXPONENT, max_plain_bits, max(terms, default=0)


# ---------------------------------------------------------------------------
# The tensor wrapper.


def _normalized_seg(cols: int, seg_cols: int | None, slots: int) -> int:
    """Canonical segment width for a ``cols``-wide row.

    Lanes never span *segments*: each run of ``seg_cols`` columns packs
    into its own ``ct_count(seg_cols)`` ciphertexts (padding the last one).
    ``None`` means whole-row segments — the historical row-aligned layout.
    When the segment width is a multiple of the slot count the lane stream
    is dense (no padding anywhere), so the finest equivalent segmentation —
    one ciphertext, ``slots`` columns — is the canonical form; that is what
    lets any two dense tensors agree on their segmentation regardless of
    how they were produced.
    """
    seg = cols if seg_cols is None else int(seg_cols)
    if seg < 1 or cols % seg:
        raise ValueError(
            f"segment width {seg} must evenly divide the {cols}-column rows"
        )
    if seg % slots == 0:
        seg = slots
    return seg


class PackedCryptoTensor:
    """A 1-D or 2-D tensor of Paillier ciphertexts, ``slots`` lanes each.

    Interops with :class:`CryptoTensor` (same exponent conventions, same
    decrypt semantics); ``CryptoTensor.pack()`` lifts into this class and
    :meth:`unpack` (key owner only) lowers back.  ``value_bits`` is the
    conservative per-lane magnitude bound that makes guard-band overflow a
    loud error instead of silent lane corruption.

    ``seg_cols`` is the segment-aware part of the layout: a row is a
    sequence of ``cols // seg_cols`` independent lane *segments*, each
    packed into its own ciphertexts.  Freshly encrypted tensors use
    whole-row segments (canonicalised to one-ciphertext segments when the
    row is a multiple of the slot count); :meth:`reshape` regroups whole
    segments into new rows without touching a single ciphertext, which is
    what lets an embedding table piece survive ``take_rows -> reshape``
    packed (the Embed-MatMul lookup pipeline).
    """

    # Make numpy defer mixed operations to our reflected methods.
    __array_ufunc__ = None
    __array_priority__ = 1100

    __slots__ = (
        "public_key", "layout", "cts", "shape", "exponent", "value_bits",
        "contiguous", "seg_cols",
    )

    def __init__(
        self,
        public_key: PaillierPublicKey,
        layout: SlotLayout,
        cts: list[int],
        shape: tuple[int, ...],
        exponent: int,
        value_bits: int,
        contiguous: bool = False,
        seg_cols: int | None = None,
    ):
        if len(shape) not in (1, 2):
            raise ValueError("PackedCryptoTensor supports 1-D and 2-D shapes")
        self.contiguous = contiguous
        if contiguous:
            if seg_cols is not None:
                raise ValueError("a contiguous pack has no row segments")
            self.seg_cols = 0
            size = int(np.prod(shape, dtype=np.int64))
            expected = layout.ct_count(size)
        else:
            rows = 1 if len(shape) == 1 else shape[0]
            seg = _normalized_seg(shape[-1], seg_cols, layout.slots)
            self.seg_cols = seg
            expected = rows * (shape[-1] // seg) * layout.ct_count(seg)
        if len(cts) != expected:
            raise ValueError("ciphertext count does not match shape and layout")
        if value_bits > layout.lane_cap_bits:
            raise OverflowError(
                f"lane bound of {value_bits} bits exceeds the "
                f"{layout.lane_cap_bits}-bit slot guard band"
            )
        self.public_key = public_key
        self.layout = layout
        self.cts = cts
        self.shape = shape
        self.exponent = exponent
        self.value_bits = value_bits

    # -- construction ---------------------------------------------------------

    @classmethod
    def encrypt(
        cls,
        public_key: PaillierPublicKey,
        array: np.ndarray,
        layout: SlotLayout,
        exponent: int = TENSOR_EXPONENT,
        obfuscate: bool = True,
        parallel: ParallelContext | None = None,
        contiguous: bool = False,
    ) -> "PackedCryptoTensor":
        """Encrypt a float array directly into packed form.

        One blinding exponentiation per ``slots`` values — the encrypt-side
        saving that makes packed share refreshes cheap.  ``contiguous``
        lets lanes span logical rows (transfer-only tensors: maximum
        density, but row ops and matmuls are then unavailable).
        """
        layout.check_key(public_key)
        array = np.asarray(array, dtype=np.float64)
        if contiguous:
            view = array.reshape(1, -1)
        else:
            view = np.atleast_2d(array)
            seg = _normalized_seg(view.shape[1], None, layout.slots)
            view = view.reshape(-1, seg)
        packed, value_bits = pack_encode_flat(public_key, view, layout, exponent)
        cts = pack_encrypt_flat(public_key, packed, obfuscate=obfuscate, parallel=parallel)
        return cls(
            public_key, layout, cts, array.shape, exponent, value_bits,
            contiguous=contiguous,
        )

    @classmethod
    def pack(
        cls,
        tensor: CryptoTensor,
        layout: SlotLayout,
        value_bits: int | None = None,
        parallel: ParallelContext | None = None,
        contiguous: bool = False,
    ) -> "PackedCryptoTensor":
        """Homomorphically pack an existing per-element ciphertext tensor.

        The true lane magnitudes are invisible inside the ciphertexts, so
        the caller promises a bound: ``value_bits`` defaults to the
        layout's full guard band less the one-bit headroom an HE2SS mask
        add needs.  A wrong promise is detected at decode time by the
        borrow-chain check rather than silently.

        ``contiguous=True`` packs row-major across row boundaries (one
        dense lane stream) — right for tensors that only travel and get
        decrypted, e.g. HE2SS transfers of column vectors, where row-
        aligned lanes would waste almost every slot.
        """
        layout.check_key(tensor.public_key)
        data = tensor.data if tensor.data.ndim == 2 else tensor.data.reshape(1, -1)
        if contiguous:
            rows, cols = 1, data.size
        else:
            cols = _normalized_seg(data.shape[1], None, layout.slots)
            rows = data.size // cols
        flat = data.ravel()
        raw = [enc.ciphertext for enc in flat]
        exps = [enc.exponent for enc in flat]
        raw, exponent = kernels.align_flat(tensor.public_key, raw, exps)
        cts = pack_rows_flat(tensor.public_key, raw, rows, cols, layout, parallel)
        if value_bits is None:
            value_bits = layout.lane_cap_bits - 1
        return cls(
            tensor.public_key, layout, cts, tensor.data.shape, exponent, value_bits,
            contiguous=contiguous,
        )

    # -- shape plumbing -------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        """Logical element count (NOT the ciphertext count)."""
        return int(np.prod(self.shape, dtype=np.int64))

    @property
    def rows(self) -> int:
        return 1 if len(self.shape) == 1 else self.shape[0]

    @property
    def cols(self) -> int:
        return self.shape[-1]

    def _pack_view(self) -> tuple[int, int]:
        """The (rows, cols) grid lanes are actually laid out on.

        One view row per *segment* — the unit lanes never cross — so every
        encoder/decoder loop sees exactly the ciphertext-aligned geometry
        whatever logical shape sits on top.
        """
        if self.contiguous:
            return 1, self.size
        return self.rows * (self.cols // self.seg_cols), self.seg_cols

    @property
    def ct_per_row(self) -> int:
        """Ciphertexts per *logical* row (all of its segments)."""
        if self.contiguous:
            return self.layout.ct_count(self.size)
        return (self.cols // self.seg_cols) * self.layout.ct_count(self.seg_cols)

    @property
    def n_ciphertexts(self) -> int:
        """Ciphertexts on the wire — the number bandwidth accounting sees."""
        return len(self.cts)

    @property
    def T(self) -> "PackedCryptoTensor":
        raise TypeError(
            "a packed tensor cannot be transposed: lanes run along the last "
            "axis only; unpack (key owner) or keep the tensor per-element"
        )

    def take_rows(self, indices: np.ndarray) -> "PackedCryptoTensor":
        """Gather logical rows (each row is a contiguous run of ciphertexts)."""
        if len(self.shape) != 2:
            raise ValueError("take_rows needs a 2-D tensor")
        if self.contiguous:
            raise TypeError("contiguously packed lanes span rows; no row gather")
        indices = np.asarray(indices, dtype=int)
        cpr = self.ct_per_row
        cts: list[int] = []
        for r in indices.tolist():
            if not 0 <= r < self.shape[0]:
                raise IndexError("row index out of range")
            cts.extend(self.cts[r * cpr : (r + 1) * cpr])
        return PackedCryptoTensor(
            self.public_key,
            self.layout,
            cts,
            (indices.shape[0], self.cols),
            self.exponent,
            self.value_bits,
            seg_cols=self.seg_cols,
        )

    def reshape(self, *shape: int) -> "PackedCryptoTensor":
        """Regroup whole lane segments into a new shape — zero crypto cost.

        Lanes survive a reshape as pure ciphertext-slice bookkeeping iff
        every new row is a whole number of existing segments (new column
        count a multiple of ``seg_cols``); in particular any row width that
        is a multiple of the slot count keeps the dense one-ciphertext
        segmentation.  The Embed-MatMul lookup relies on this:
        ``take_rows(flat_idx)`` yields ``(batch * fields, emb_dim)`` rows
        with ``emb_dim``-column segments, and ``reshape(batch, fields *
        emb_dim)`` just regroups ``fields`` segments per row.  A reshape
        that would split a segment (and so a ciphertext) across rows has no
        homomorphic implementation — it raises :class:`TypeError` and the
        caller must stay per-element or repack via the key owner.
        """
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        dims = [int(s) for s in shape]
        if self.contiguous:
            raise TypeError("a contiguous pack has no row structure to reshape")
        if dims.count(-1) > 1:
            raise ValueError("can only infer one reshape dimension")
        if -1 in dims:
            known = int(np.prod([d for d in dims if d != -1], dtype=np.int64))
            if known <= 0 or self.size % known:
                raise ValueError(f"cannot reshape {self.shape} into {tuple(dims)}")
            dims[dims.index(-1)] = self.size // known
        if len(dims) not in (1, 2) or int(np.prod(dims, dtype=np.int64)) != self.size:
            raise ValueError(f"cannot reshape {self.shape} into {tuple(dims)}")
        if dims[-1] % self.seg_cols:
            raise TypeError(
                f"a packed reshape must keep whole {self.seg_cols}-column "
                f"lane segments per row; {tuple(dims)} would split a "
                f"ciphertext across rows — unpack (key owner) or keep the "
                f"tensor per-element"
            )
        return PackedCryptoTensor(
            self.public_key,
            self.layout,
            list(self.cts),
            tuple(dims),
            self.exponent,
            self.value_bits,
            seg_cols=self.seg_cols,
        )

    def set_rows(self, indices: np.ndarray, fresh: "PackedCryptoTensor") -> None:
        """Replace logical rows in place (the packed delta-refresh path)."""
        if self.contiguous or fresh.contiguous:
            raise TypeError("contiguously packed lanes span rows; no row scatter")
        if len(self.shape) != 2 or len(fresh.shape) != 2:
            raise ValueError("set_rows needs 2-D tensors")
        if fresh.layout != self.layout or fresh.cols != self.cols:
            raise ValueError("row replacement requires an identical layout")
        if fresh.seg_cols != self.seg_cols:
            raise ValueError("row replacement requires an identical segmentation")
        if fresh.public_key != self.public_key:
            raise ValueError("cannot mix ciphertexts under different keys")
        if fresh.exponent != self.exponent:
            raise ValueError("row replacement requires matching exponents")
        indices = np.asarray(indices, dtype=int)
        if indices.shape[0] != fresh.shape[0]:
            raise ValueError("one replacement row per index required")
        cpr = self.ct_per_row
        for out_pos, r in enumerate(indices.tolist()):
            if not 0 <= r < self.shape[0]:
                raise IndexError("row index out of range")
            self.cts[r * cpr : (r + 1) * cpr] = fresh.cts[
                out_pos * cpr : (out_pos + 1) * cpr
            ]
        self.value_bits = max(self.value_bits, fresh.value_bits)

    def scatter_add_rows(
        self,
        indices: np.ndarray,
        num_rows: int,
        parallel: ParallelContext | None = None,
        obfuscate_empty: bool = True,
    ) -> "PackedCryptoTensor":
        """Packed encrypted ``lkup_bw``: sum batch rows into a packed table.

        ``self`` is a ``(batch, dim)`` packed tensor and ``indices`` the
        plaintext row ids; row ``r`` of the ``(num_rows, dim)`` result is
        the lane-wise homomorphic sum of every batch row that landed on
        ``r`` — ``ct_per_row`` mulmods per batch row instead of ``dim``,
        the slot-count saving.  ``value_bits`` grows by the worst-case
        fan-in ``ceil(log2(max hits per table row))`` and the guard band is
        checked *before* any mulmod runs, so an overaccumulation (e.g. a
        batch deeper than the layout's designed ``acc_depth``) raises
        loudly instead of corrupting neighbouring lanes.  Untouched table
        rows come back as blinded encryptions of zero, never the
        recognisable raw residue ``1``.
        """
        if len(self.shape) != 2:
            raise ValueError("scatter_add_rows needs a 2-D tensor")
        if self.contiguous:
            raise TypeError("contiguously packed lanes span rows; no row scatter")
        indices = np.asarray(indices, dtype=int)
        if indices.shape[0] != self.shape[0]:
            raise ValueError("one index per batch row required")
        if indices.size and (indices.min() < 0 or indices.max() >= num_rows):
            raise IndexError("scatter index out of range")
        max_hits = (
            int(np.bincount(indices, minlength=num_rows).max()) if indices.size else 0
        )
        bits = self._checked_bits(
            self.value_bits + _acc_bits(max(max_hits, 1)),
            f"scatter-add with {max_hits} batch rows on one table row",
        )
        cts = pack_scatter_add_flat(
            self.public_key,
            self.cts,
            indices.tolist(),
            num_rows,
            self.ct_per_row,
            parallel=parallel,
            obfuscate_empty=obfuscate_empty,
        )
        return PackedCryptoTensor(
            self.public_key,
            self.layout,
            cts,
            (num_rows, self.cols),
            self.exponent,
            bits,
            seg_cols=self.seg_cols,
        )

    # -- decrypt / unpack -----------------------------------------------------

    def decrypt(self, private_key, parallel: ParallelContext | None = None) -> np.ndarray:
        """Batched CRT decrypt + lane split back to float64."""
        if private_key.public_key != self.public_key:
            raise ValueError("ciphertext was encrypted under a different key")
        rows, cols = self._pack_view()
        out = pack_decrypt_flat(
            private_key, self.cts, self.layout, rows, cols, self.exponent,
            parallel=parallel,
        )
        return out.reshape(self.shape)

    def unpack(
        self,
        private_key,
        obfuscate: bool = False,
        parallel: ParallelContext | None = None,
    ) -> CryptoTensor:
        """Lower to a per-element :class:`CryptoTensor` (key owner only).

        Paillier has no homomorphic lane extraction, so unpacking decrypts
        each packed ciphertext to its signed lane mantissas and re-encrypts
        them individually at the same exponent — the round-trip
        ``tensor.pack(layout).unpack(sk)`` decodes bit-identically to
        ``tensor``.  The ciphertexts go through one batched (optionally
        parallel) ``crt_decrypt_many`` instead of per-element
        ``raw_decrypt`` calls.
        """
        if private_key.public_key != self.public_key:
            raise ValueError("ciphertext was encrypted under a different key")
        pk = self.public_key
        n, max_int = pk.n, pk.max_int
        flat = np.empty(self.size, dtype=object)
        rows, cols = self._pack_view()
        cpr = self.layout.ct_count(cols)  # per view row (= per segment)
        slots = self.layout.slots
        raw = kernels.crt_decrypt_many(private_key, self.cts, parallel)
        pos = 0
        for r in range(rows):
            col = 0
            for b in range(cpr):
                m = raw[r * cpr + b]
                if m > max_int and m < n - max_int:
                    raise OverflowError(
                        "packed encoding fell in the overflow guard band"
                    )
                packed = m if m <= max_int else m - n
                for lane in _split_lanes(packed, self.layout, min(slots, cols - col)):
                    ct = pk.raw_encrypt(lane % n, obfuscate=obfuscate)
                    flat[pos] = EncryptedNumber(pk, ct, self.exponent)
                    pos += 1
                    col += 1
        return CryptoTensor(pk, flat.reshape(self.shape))

    # -- wire format ----------------------------------------------------------

    @property
    def wire_value_bits(self) -> int:
        """``value_bits`` canonicalised to a layout constant for the wire.

        The live bound is derived from private operands (magnitudes,
        per-row sparsity), so shipping it verbatim would leak through the
        header.  Two public levels suffice: tensors inside the designed
        operand budget advertise ``base_value_bits`` (weight/table pieces,
        fresh encryptions), everything else the full ``lane_cap_bits``
        guard band (HE2SS transfers, which the receiver only decrypts).
        Both are ≥ the true bound, so receiver-side overflow guards stay
        sound — merely a little more conservative — and a wrong bound is
        still caught at decode by the borrow-chain check.
        """
        if self.value_bits <= self.layout.base_value_bits:
            return self.layout.base_value_bits
        return self.layout.lane_cap_bits

    def to_wire(self) -> dict:
        """Wire fields of a packed tensor (header metadata + residues).

        ``value_bits`` is canonicalised (see :attr:`wire_value_bits`) —
        the serialized header carries nothing the unpacked protocol's
        headers would not.
        """
        return {
            "layout": self.layout.to_wire(),
            "contiguous": self.contiguous,
            "seg_cols": self.seg_cols,
            "shape": self.shape,
            "exponent": self.exponent,
            "value_bits": self.wire_value_bits,
            "cts": self.cts,
        }

    @classmethod
    def from_wire(
        cls,
        public_key: PaillierPublicKey,
        layout: SlotLayout,
        cts: list[int],
        shape: tuple[int, ...],
        exponent: int,
        value_bits: int,
        contiguous: bool = False,
        seg_cols: int | None = None,
    ) -> "PackedCryptoTensor":
        """Rebuild from wire fields; the constructor re-validates geometry."""
        layout.check_key(public_key)
        return cls(
            public_key,
            layout,
            list(cts),
            tuple(int(d) for d in shape),
            int(exponent),
            int(value_bits),
            contiguous=bool(contiguous),
            seg_cols=None if contiguous else seg_cols,
        )

    # -- guard-band bookkeeping ----------------------------------------------

    def _checked_bits(self, new_bits: int, what: str) -> int:
        if new_bits > self.layout.lane_cap_bits:
            raise OverflowError(
                f"{what} would need {new_bits}-bit lanes but the layout "
                f"guards only {self.layout.lane_cap_bits} bits; widen the "
                f"slots or reduce the accumulation depth"
            )
        return new_bits

    def _shifted_to(self, exponent: int, parallel=None) -> "PackedCryptoTensor":
        """Re-express at a finer uniform exponent (consumes guard bits)."""
        if exponent == self.exponent:
            return self
        shift = self.exponent - exponent
        if shift < 0:
            raise ValueError("cannot coarsen a packed exponent losslessly")
        bits = self._checked_bits(self.value_bits + shift, "exponent alignment")
        cts = pack_shift_flat(self.public_key, self.cts, shift, parallel)
        return self._like(cts, exponent=exponent, value_bits=bits)

    def _like(
        self,
        cts: list[int],
        shape: tuple[int, ...] | None = None,
        exponent: int | None = None,
        value_bits: int | None = None,
    ) -> "PackedCryptoTensor":
        """A sibling tensor sharing this one's layout metadata."""
        return PackedCryptoTensor(
            self.public_key,
            self.layout,
            cts,
            self.shape if shape is None else shape,
            self.exponent if exponent is None else exponent,
            self.value_bits if value_bits is None else value_bits,
            contiguous=self.contiguous,
            seg_cols=None if self.contiguous else self.seg_cols,
        )

    # -- arithmetic -----------------------------------------------------------

    def _add_packed(self, other: "PackedCryptoTensor", negate: bool) -> "PackedCryptoTensor":
        if other.public_key != self.public_key:
            raise ValueError("cannot add ciphertexts under different keys")
        if other.layout != self.layout or other.shape != self.shape:
            raise ValueError("packed operands need identical shapes and layouts")
        if other.contiguous != self.contiguous or other.seg_cols != self.seg_cols:
            raise ValueError("packed operands need identical lane layouts")
        target = min(self.exponent, other.exponent)
        a = self._shifted_to(target)
        b = other._shifted_to(target)
        bits = a._checked_bits(max(a.value_bits, b.value_bits) + 1, "lane-wise add")
        b_cts = pack_neg_flat(self.public_key, b.cts) if negate else b.cts
        cts = pack_add_flat(self.public_key, a.cts, b_cts)
        return self._like(cts, exponent=target, value_bits=bits)

    def add_plain(
        self,
        values: np.ndarray,
        encode_exponent: int | None = None,
        obfuscate: bool = False,
        parallel: ParallelContext | None = None,
    ) -> "PackedCryptoTensor":
        """Lane-wise ``cipher + plain``.

        With ``encode_exponent`` given, every value is encoded at that
        fixed exponent and shifted onto the ciphertext — the HE2SS mask
        path, which mirrors ``CryptoTensor + encrypt(mask,
        TENSOR_EXPONENT)`` bit-for-bit.  Without it, each value is encoded
        at its natural float precision (the unpacked ``add_plain``
        convention) and the whole tensor lands at the finest exponent
        involved.  ``obfuscate=True`` draws fresh blinders for the mask
        encryption, re-randomising the sum before it leaves the party.
        """
        values = np.broadcast_to(
            np.asarray(values, dtype=np.float64), self.shape
        )
        if encode_exponent is None:
            flat = values.ravel()
            finite = flat[np.isfinite(flat)]
            if finite.size != flat.size:
                raise ValueError("cannot encode non-finite values")
            natural = min(
                (kernels._default_float_exponent(float(v)) for v in flat.tolist()),
                default=self.exponent,
            )
            encode_target = None  # per-element natural exponents
            target = min(self.exponent, natural)
        else:
            encode_target = encode_exponent
            target = min(self.exponent, encode_exponent)
        me = self._shifted_to(target, parallel)
        values_view = np.asarray(values).reshape(self._pack_view())
        packed_residues, max_bits = pack_encode_flat(
            self.public_key,
            values_view,
            self.layout,
            target,
            encode_exponent=encode_target,
            natural=encode_target is None,
        )
        bits = me._checked_bits(max(me.value_bits, max_bits) + 1, "plain add")
        mask_cts = pack_encrypt_flat(
            self.public_key, packed_residues, obfuscate=obfuscate, parallel=parallel
        )
        cts = pack_add_flat(self.public_key, me.cts, mask_cts)
        return self._like(cts, exponent=target, value_bits=bits)

    def __add__(self, other: object) -> "PackedCryptoTensor":
        if isinstance(other, PackedCryptoTensor):
            return self._add_packed(other, negate=False)
        if isinstance(other, (int, float, np.ndarray, list)):
            return self.add_plain(np.asarray(other, dtype=np.float64))
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: object) -> "PackedCryptoTensor":
        if isinstance(other, PackedCryptoTensor):
            return self._add_packed(other, negate=True)
        if isinstance(other, (int, float, np.ndarray, list)):
            return self.add_plain(-np.asarray(other, dtype=np.float64))
        return NotImplemented

    def __neg__(self) -> "PackedCryptoTensor":
        return self._like(pack_neg_flat(self.public_key, self.cts))

    def __mul__(self, other: object) -> "PackedCryptoTensor":
        """Scalar broadcast multiply — every lane scales by the same value."""
        if isinstance(other, PackedCryptoTensor):
            raise TypeError("cannot multiply two ciphertext tensors under Paillier")
        if not isinstance(other, (int, float)):
            raise TypeError(
                "packed tensors support scalar multipliers only (per-lane "
                "multipliers would need lane extraction)"
            )
        v = float(other)
        if v == 1.0:
            return self
        if v == 0.0:
            return self._like([1] * len(self.cts), value_bits=1)
        signed = _signed_mantissa(v, PLAIN_EXPONENT)
        sbits = signed.bit_length() if signed >= 0 else (-signed).bit_length()
        bits = self._checked_bits(self.value_bits + sbits, "scalar multiply")
        cts = pack_scalar_mul_flat(
            self.public_key, self.cts, signed % self.public_key.n
        )
        return self._like(cts, exponent=self.exponent + PLAIN_EXPONENT, value_bits=bits)

    __rmul__ = __mul__

    def __rmatmul__(self, plain: object) -> "PackedCryptoTensor":
        """``plain @ packed`` — the forward pass against packed weights."""
        if hasattr(plain, "iter_rows"):
            return pack_sparse_matmul_cipher(plain, self)
        return pack_matmul_plain_cipher(np.asarray(plain, dtype=np.float64), self)

    def __matmul__(self, plain: object) -> "PackedCryptoTensor":
        raise TypeError(
            "packed-cipher @ plain needs per-lane multipliers; keep that "
            "operand per-element"
        )

    def obfuscate(self, parallel: ParallelContext | None = None) -> "PackedCryptoTensor":
        """Re-randomise every packed ciphertext from the blinding pool."""
        nsq = self.public_key.nsquare
        blinders = self.public_key.blinding_factors(len(self.cts), parallel=parallel)
        return self._like([(c * b) % nsq for c, b in zip(self.cts, blinders)])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PackedCryptoTensor(shape={self.shape}, slots={self.layout.slots}, "
            f"cts={len(self.cts)})"
        )


# ---------------------------------------------------------------------------
# Kernel-backed packed matrix products (mirroring crypto_tensor's wrappers).


def _wrap_matmul_result(
    pt: PackedCryptoTensor,
    out: list[int],
    out_rows: int,
    prod_exp: int,
    plain_bits: int,
    max_terms: int,
    what: str,
) -> PackedCryptoTensor:
    """Shared guard-band bookkeeping for packed matmul products."""
    bits = pt.value_bits + plain_bits + _acc_bits(max(max_terms, 1))
    if bits > pt.layout.lane_cap_bits:
        raise OverflowError(
            f"{what} over {max_terms} terms would need {bits}-bit lanes but "
            f"the layout guards only {pt.layout.lane_cap_bits} bits"
        )
    return PackedCryptoTensor(
        pt.public_key, pt.layout, out, (out_rows, pt.cols), prod_exp, bits,
        seg_cols=pt.seg_cols,
    )


def pack_matmul_plain_cipher(
    plain: np.ndarray,
    pt: PackedCryptoTensor,
    parallel: ParallelContext | None = None,
) -> PackedCryptoTensor:
    """Dense ``plain (s x m) @ packed (m x k)`` with zero-skipping + dedup."""
    if pt.contiguous:
        raise TypeError("matmul needs row-aligned lanes, not a contiguous pack")
    plain = np.atleast_2d(np.asarray(plain, dtype=np.float64))
    s, m = plain.shape
    if pt.rows != m:
        raise ValueError(
            f"matmul shape mismatch: ({s},{m}) @ ({pt.rows},{pt.cols})"
        )
    out, prod_exp, plain_bits, max_terms = pack_matmul_plain_cipher_flat(
        pt.public_key, plain, pt.cts, pt.ct_per_row, pt.exponent, parallel
    )
    return _wrap_matmul_result(pt, out, s, prod_exp, plain_bits, max_terms, "matmul")


def pack_sparse_matmul_cipher(
    sparse: object,
    pt: PackedCryptoTensor,
    parallel: ParallelContext | None = None,
) -> PackedCryptoTensor:
    """CSR ``plain @ packed``: O(nnz) mulmod blocks, never touches zeros."""
    if pt.contiguous:
        raise TypeError("matmul needs row-aligned lanes, not a contiguous pack")
    rows = list(sparse.iter_rows())
    out, prod_exp, plain_bits, max_terms = pack_sparse_matmul_cipher_flat(
        pt.public_key, rows, pt.rows, pt.cts, pt.ct_per_row, pt.exponent, parallel
    )
    return _wrap_matmul_result(
        pt, out, len(rows), prod_exp, plain_bits, max_terms, "sparse matmul"
    )
