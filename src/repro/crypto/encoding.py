"""Fixed-point encoding of signed floats into Paillier plaintext space.

Paillier operates on integers mod ``n``; ML needs signed reals.  Following
the standard construction (as in the ``phe`` library and the paper's
CryptoTensor), a real ``x`` is represented as a mantissa/exponent pair
``x = m * 2**exponent`` with ``m`` an integer mod ``n``.  Negative values
occupy the top third of the ring, positives the bottom third, and the middle
third is an overflow guard band that turns silent wrap-around into a loud
``OverflowError``.
"""

from __future__ import annotations

import math
import sys
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.crypto.paillier import PaillierPublicKey

__all__ = ["EncodedNumber"]


class EncodedNumber:
    """A signed fixed-point representation of a scalar mod ``n``.

    Attributes:
        public_key: key whose modulus defines the ring.
        encoding: the integer mantissa reduced mod ``n``.
        exponent: base-2 exponent; the represented value is
            ``decode_mantissa * 2**exponent``.
    """

    BASE = 2
    FLOAT_MANTISSA_BITS = sys.float_info.mant_dig  # 53 on every platform we target

    # Default float encodings never go below this exponent.  Without a floor,
    # adding a subnormal-scale cipher to an ordinary one would demand a
    # mantissa with ~1000 bits of headroom, silently wrapping mod n on short
    # keys.  Values below 2**-64 quantise to zero, which is far finer than
    # any ML quantity in this codebase needs.
    MIN_DEFAULT_EXPONENT = -64

    __slots__ = ("public_key", "encoding", "exponent")

    def __init__(self, public_key: "PaillierPublicKey", encoding: int, exponent: int):
        self.public_key = public_key
        self.encoding = encoding
        self.exponent = exponent

    @classmethod
    def encode(
        cls,
        public_key: "PaillierPublicKey",
        scalar: float | int,
        exponent: int | None = None,
    ) -> "EncodedNumber":
        """Encode a python int/float.

        With ``exponent=None`` an int encodes exactly at exponent 0 and a
        float at the smallest exponent that preserves its full mantissa.
        Passing an explicit ``exponent`` quantises to that precision, which
        lets tensors share a uniform exponent.
        """
        if exponent is None:
            if isinstance(scalar, int):
                exponent = 0
            elif isinstance(scalar, float):
                if math.isnan(scalar) or math.isinf(scalar):
                    raise ValueError(f"cannot encode non-finite value {scalar!r}")
                bin_exp = math.frexp(scalar)[1]
                exponent = max(
                    bin_exp - cls.FLOAT_MANTISSA_BITS, cls.MIN_DEFAULT_EXPONENT
                )
            else:
                raise TypeError(f"cannot encode type {type(scalar).__name__}")
        if isinstance(scalar, int):
            if exponent <= 0:
                mantissa = scalar << -exponent
            else:
                mantissa = int(round(scalar / 2**exponent))
        else:
            try:
                # ldexp avoids intermediate overflow for subnormal scalars.
                mantissa = int(round(math.ldexp(float(scalar), -exponent)))
            except OverflowError:
                raise OverflowError(
                    f"scalar {scalar} at exponent {exponent} exceeds plaintext bound"
                ) from None
        if abs(mantissa) > public_key.max_int:
            raise OverflowError(
                f"scalar {scalar} at exponent {exponent} exceeds plaintext bound"
            )
        return cls(public_key, mantissa % public_key.n, exponent)

    def decode(self) -> float:
        """Decode back to a float (raises on guard-band overflow)."""
        if self.encoding >= self.public_key.n:
            raise ValueError("encoding is not a canonical residue")
        if self.encoding <= self.public_key.max_int:
            mantissa = self.encoding
        elif self.encoding >= self.public_key.n - self.public_key.max_int:
            mantissa = self.encoding - self.public_key.n
        else:
            raise OverflowError(
                "encoding fell in the overflow guard band; increase the key "
                "size or reduce tensor magnitudes"
            )
        # ldexp keeps huge-mantissa/negative-exponent pairs inside float range
        # (a plain ``mantissa * 2.0**exp`` would overflow converting the int).
        exponent = self.exponent
        while abs(mantissa) > 2**1000:
            mantissa >>= 64
            exponent += 64
        return math.ldexp(float(mantissa), exponent)

    def decrease_exponent_to(self, new_exponent: int) -> "EncodedNumber":
        """Re-express at a smaller exponent (finer precision, same value)."""
        if new_exponent > self.exponent:
            raise ValueError(
                f"cannot increase exponent {self.exponent} -> {new_exponent} losslessly"
            )
        factor = 2 ** (self.exponent - new_exponent)
        new_encoding = (self.encoding * factor) % self.public_key.n
        return EncodedNumber(self.public_key, new_encoding, new_exponent)

    def signed_mantissa(self) -> int:
        """The mantissa as a signed integer (small magnitude for small values)."""
        if self.encoding <= self.public_key.max_int:
            return self.encoding
        if self.encoding >= self.public_key.n - self.public_key.max_int:
            return self.encoding - self.public_key.n
        raise OverflowError("encoding fell in the overflow guard band")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EncodedNumber(exponent={self.exponent})"
