"""The Paillier additively homomorphic cryptosystem.

This is the HE primitive BlindFL builds its protocols on (§2.2).  Supported
operations mirror the paper's list exactly:

* ``Enc(v, pk)`` / ``Dec([[v]], sk)``
* homomorphic addition ``[[u]] + [[v]] = [[u + v]]``
* scalar addition ``[[u]] + v = [[u + v]]``
* scalar multiplication ``u * [[v]] = [[u * v]]``

Implementation notes (matching the paper's GMP-based CryptoTensor library in
spirit):

* ``g = n + 1`` so encryption needs a single modular exponentiation
  (``g**m = 1 + m*n  (mod n^2)``).
* decryption uses CRT over ``p`` and ``q`` (~4x faster than the textbook
  ``c**lambda mod n^2``).
* obfuscation (multiplying by ``r**n``) is applied lazily: internal
  homomorphic arithmetic skips it, and every protocol message re-randomises
  by homomorphically adding a freshly encrypted mask before hitting the
  wire (see ``repro.crypto.secret_sharing``).

Key sizes are configurable.  The test-suite defaults to short keys so the
pure-Python arithmetic stays fast; 2048-bit keys (the production setting)
work unchanged, just slower.
"""

from __future__ import annotations

import math
import random
from collections import deque

from repro.crypto.encoding import EncodedNumber
from repro.crypto.math_utils import generate_prime, invmod, powmod, powmod_base_many
from repro.obs import tracer as _obs

__all__ = [
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "generate_paillier_keypair",
    "EncryptedNumber",
    "DEFAULT_KEY_BITS",
    "DEFAULT_BLINDING_LAMBDA",
]

DEFAULT_KEY_BITS = 256

# Statistical parameter of the λ-exponent blinding shortcut: instead of a
# fresh ``r^n mod n^2`` per obfuscation (a ``key_bits``-bit exponent), the
# key precomputes one ``h = r0^n`` and draws blinders as ``h^x`` for random
# λ-bit ``x`` — still an n-th power (``h^x = (r0^x)^n``), so ciphertexts
# stay valid re-randomisations, at a λ-bit exponent each (~16x less pow
# bit-work at 2048-bit keys).  128 bits of exponent entropy is the standard
# choice (the blinder is then indistinguishable from uniform in the n-th
# power subgroup under DCR-style assumptions); ``blinding_lambda=0``
# restores the classic one-fresh-base-per-blinder behaviour.
DEFAULT_BLINDING_LAMBDA = 128


class PaillierPublicKey:
    """Public half of a Paillier key pair (the modulus ``n``)."""

    __slots__ = (
        "n", "nsquare", "max_int", "_rng", "key_bits", "_blind_pool",
        "blinding_lambda", "_h",
    )

    def __init__(
        self,
        n: int,
        rng: random.Random | None = None,
        blinding_lambda: int = DEFAULT_BLINDING_LAMBDA,
    ):
        self.n = n
        self.nsquare = n * n
        # Guard band: plaintexts live in [-n/3, n/3]; the middle third
        # detects overflow (see EncodedNumber.decode).
        self.max_int = n // 3 - 1
        self.key_bits = n.bit_length()
        # repro: nondeterministic-ok fresh blinding entropy for keys built
        # without an explicit rng (e.g. decoded outside a seeded key ring);
        # every deterministic path in the repo passes a seeded rng through.
        self._rng = rng or random.Random()
        # Precomputed obfuscation blinders r^n mod n^2 (FIFO so a seeded rng
        # yields the same ciphertext stream whether or not the pool is used).
        self._blind_pool: deque[int] = deque()
        if blinding_lambda < 0:
            raise ValueError("blinding_lambda must be non-negative (0 = classic)")
        self.blinding_lambda = blinding_lambda
        # The λ-shortcut base h = r0^n, computed lazily at first blinder use
        # so key construction stays cheap and the seeded rng stream is the
        # same whether blinders come from the pool or on demand.
        self._h: int | None = None

    # -- raw integer layer --------------------------------------------------

    def raw_encrypt(self, plaintext: int, obfuscate: bool = True) -> int:
        """Encrypt an integer residue (mod n).  ``g = n + 1`` shortcut."""
        if not 0 <= plaintext < self.n:
            plaintext %= self.n
        nude = (1 + plaintext * self.n) % self.nsquare
        if not obfuscate:
            return nude
        return (nude * self._random_blinding()) % self.nsquare

    def _draw_blinding_base(self) -> int:
        """Draw ``r`` uniform in ``(0, n)`` with ``gcd(r, n) == 1``.

        A random ``r`` sharing a factor with ``n`` is astronomically rare
        for real key sizes (it would factor the modulus), but ``r^n`` would
        then be non-invertible and the "blinded" ciphertext degenerate, so
        we guard anyway — it matters for the tiny moduli the tests use.
        """
        while True:
            r = self._rng.randrange(1, self.n)
            if math.gcd(r, self.n) == 1:
                return r

    def set_blinding_lambda(self, blinding_lambda: int) -> None:
        """Switch the blinding mode (λ-shortcut for λ > 0, classic for 0).

        Already-pooled blinders stay valid (both modes produce n-th powers)
        and drain FIFO before the new mode computes anything; the λ base
        ``h`` is re-drawn on next use so a mode flip never reuses state.
        """
        if blinding_lambda < 0:
            raise ValueError("blinding_lambda must be non-negative (0 = classic)")
        self.blinding_lambda = blinding_lambda
        self._h = None

    def _ensure_h(self) -> int:
        """The λ-shortcut base ``h = r0^n mod n^2`` (one pow per key)."""
        if self._h is None:
            self._h = powmod(self._draw_blinding_base(), self.n, self.nsquare)
            # One full n-exponent pow: same bit class as a classic blinder.
            trc = _obs.get_tracer()
            if trc is not None:
                trc.add("pow.blind.classic", 1)
        return self._h

    def _random_blinding(self) -> int:
        trc = _obs.get_tracer()
        if self._blind_pool:
            if trc is not None:
                trc.add("pool.hit", 1)
            return self._blind_pool.popleft()
        if trc is not None:
            trc.add("pool.miss", 1)
        return self._compute_blinders(1, None)[0]

    def blinding_factors(self, count: int, parallel: object | None = None) -> list[int]:
        """``count`` obfuscation factors ``r^n mod n^2``.

        Drains the precomputed pool first; any shortfall is computed as one
        batch (the dominant cost of obfuscated encryption), sharded across
        ``parallel`` when a :class:`~repro.crypto.parallel.ParallelContext`
        is given and the batch clears its gate.
        """
        out: list[int] = []
        pool = self._blind_pool
        while pool and len(out) < count:
            out.append(pool.popleft())
        need = count - len(out)
        trc = _obs.get_tracer()
        if trc is not None:
            if out:
                trc.add("pool.hit", len(out))
            if need > 0:
                trc.add("pool.miss", need)
        if need > 0:
            out.extend(self._compute_blinders(need, parallel))
        return out

    def _compute_blinders(self, count: int, parallel: object | None) -> list[int]:
        trc = _obs.get_tracer()
        if self.blinding_lambda:
            # λ-exponent shortcut: h^x for random λ-bit x (x >= 1 so a
            # degenerate blinder of 1 can never be drawn).  h^x is an n-th
            # power, so the ciphertext stays a valid re-randomisation; the
            # per-blinder exponent drops from key_bits to λ.
            h = self._ensure_h()
            # Counted at the dispatch site (exponent class is known here),
            # so serial and pool execution count identically by construction.
            if trc is not None:
                trc.add("pow.blind.lambda", count)
            top = 1 << self.blinding_lambda
            exps = [self._rng.randrange(1, top) for _ in range(count)]
            if parallel is not None and parallel.should_parallelize(count):
                return parallel.pow_base_many(self, h, exps)
            return powmod_base_many(h, exps, self.nsquare)
        if trc is not None:
            trc.add("pow.blind.classic", count)
        bases = [self._draw_blinding_base() for _ in range(count)]
        if parallel is not None and parallel.should_parallelize(count):
            return parallel.pow_n_many(self, bases)
        n, nsq = self.n, self.nsquare
        return [powmod(r, n, nsq) for r in bases]

    def blinding_bitwork(self, count: int) -> int:
        """Exponent bits a refill of ``count`` blinders costs in this mode.

        Modular-exponentiation cost is linear in exponent bit-length at a
        fixed modulus, so this is the machine-independent unit the decrypt
        benchmark gates on (wall clock is unusable on a 1-CPU CI box).  The
        λ mode charges the one-time ``h = r0^n`` pow when it has not been
        computed yet — the honest amortised accounting.
        """
        if self.blinding_lambda:
            one_time = self.key_bits if self._h is None else 0
            return count * self.blinding_lambda + one_time
        return count * self.key_bits

    def prefill_blinding(self, count: int, parallel: object | None = None) -> None:
        """Top the obfuscation pool up to ``count`` blinders, off the hot path.

        Call between batches (or from an idle worker) so subsequent
        obfuscated encryptions only pay a mulmod each.  Blinders already in
        the pool count towards ``count``, so periodic refills never
        overprovision.
        """
        need = count - len(self._blind_pool)
        if need > 0:
            self._blind_pool.extend(self._compute_blinders(need, parallel))

    def raw_add(self, c1: int, c2: int) -> int:
        return (c1 * c2) % self.nsquare

    def raw_mul(self, c: int, plaintext: int) -> int:
        """Multiply a ciphertext by a plaintext residue.

        Negative plaintexts (residues in the top half of the ring) would
        make the exponent huge; inverting the ciphertext keeps exponents
        small, the classic trick from the ``phe`` library.
        """
        plaintext %= self.n
        if plaintext >= self.n // 2:
            c = invmod(c, self.nsquare)
            plaintext = self.n - plaintext
        if plaintext == 0:
            return 1  # Enc(0) without obfuscation
        if plaintext == 1:
            return c
        return pow(c, plaintext, self.nsquare)

    # -- user-facing layer ---------------------------------------------------

    def encrypt(
        self,
        value: float | int | EncodedNumber,
        exponent: int | None = None,
        obfuscate: bool = True,
    ) -> "EncryptedNumber":
        """Encrypt a scalar (encoding it first if needed)."""
        if isinstance(value, EncodedNumber):
            encoded = value
        else:
            encoded = EncodedNumber.encode(self, value, exponent=exponent)
        ciphertext = self.raw_encrypt(encoded.encoding, obfuscate=obfuscate)
        return EncryptedNumber(self, ciphertext, encoded.exponent)

    def encrypt_zero(self, exponent: int = 0) -> "EncryptedNumber":
        """An unobfuscated encryption of zero (accumulator seed)."""
        return EncryptedNumber(self, 1, exponent)

    # -- wire format ---------------------------------------------------------

    def to_wire(self) -> int:
        """The key's public wire representation: just the modulus ``n``.

        Public keys cross the channel only during the initialisation
        handshake; everything else (``nsquare``, ``max_int``) is derived.
        """
        return self.n

    @classmethod
    def from_wire(cls, n: int) -> "PaillierPublicKey":
        """Rebuild a key from its wire modulus.

        The rebuilt key carries a *fresh* (OS-seeded) blinding RNG — fine
        for decryption and homomorphic arithmetic, but channels that need
        bit-reproducible obfuscation streams should resolve decoded keys
        against their registered originals (see the codec's key ring).
        """
        return cls(int(n))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PaillierPublicKey) and self.n == other.n

    def __hash__(self) -> int:
        return hash(("paillier-pk", self.n))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PaillierPublicKey(bits={self.key_bits})"


class PaillierPrivateKey:
    """Secret half of a Paillier key pair; decrypts via CRT.

    This object is the custody boundary of the whole protocol: whoever
    holds ``(p, q)`` can decrypt every ciphertext under the key.  It is
    therefore deliberately unserialisable — pickling raises (so it cannot
    ride a ``multiprocessing`` task, a cache, or a copy by accident) and
    the wire codec refuses it outright.  The only sanctioned way private
    material leaves this process is :attr:`crt_params` feeding a *private*
    worker-pool initializer (see :mod:`repro.crypto.parallel`), i.e. the
    key owner's own OS children.
    """

    __slots__ = ("public_key", "p", "q", "psquare", "qsquare", "p_inverse", "hp", "hq")

    def __init__(self, public_key: PaillierPublicKey, p: int, q: int):
        if p * q != public_key.n:
            raise ValueError("given primes do not match the public modulus")
        if p == q:
            raise ValueError("p and q must be distinct")
        self.public_key = public_key
        # Order them so CRT recombination is canonical.
        self.p, self.q = (p, q) if p < q else (q, p)
        self.psquare = self.p * self.p
        self.qsquare = self.q * self.q
        self.p_inverse = invmod(self.p, self.q)
        self.hp = self._h(self.p, self.psquare)
        self.hq = self._h(self.q, self.qsquare)

    def _h(self, x: int, xsquare: int) -> int:
        g = self.public_key.n + 1
        return invmod(self._l(powmod(g, x - 1, xsquare), x), x)

    @staticmethod
    def _l(u: int, x: int) -> int:
        return (u - 1) // x

    @property
    def crt_params(self) -> tuple[int, int, int, int, int]:
        """``(p, q, hp, hq, p_inverse)`` — the private worker initializer.

        Everything a CRT decrypt worker needs, precomputed once at key
        construction.  Hand this only to a pool initializer of the key
        owner's own process; it must never touch a protocol channel.
        """
        return self.p, self.q, self.hp, self.hq, self.p_inverse

    def raw_decrypt(self, ciphertext: int) -> int:
        mp = (
            self._l(powmod(ciphertext, self.p - 1, self.psquare), self.p) * self.hp
        ) % self.p
        mq = (
            self._l(powmod(ciphertext, self.q - 1, self.qsquare), self.q) * self.hq
        ) % self.q
        u = ((mq - mp) * self.p_inverse) % self.q
        return mp + u * self.p

    def __reduce__(self):
        raise TypeError(
            "PaillierPrivateKey is deliberately unpicklable: serialising it "
            "would let (p, q) leave the key owner's custody. Ship public "
            "keys instead; parallel decryption passes crt_params to the "
            "owner's own worker-pool initializer."
        )

    def decrypt(self, encrypted: "EncryptedNumber") -> float:
        if encrypted.public_key != self.public_key:
            raise ValueError("ciphertext was encrypted under a different key")
        encoded = EncodedNumber(
            self.public_key, self.raw_decrypt(encrypted.ciphertext), encrypted.exponent
        )
        return encoded.decode()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PaillierPrivateKey(bits={self.public_key.key_bits})"


def generate_paillier_keypair(
    key_bits: int = DEFAULT_KEY_BITS,
    seed: int | None = None,
    blinding_lambda: int = DEFAULT_BLINDING_LAMBDA,
) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a key pair with an ``key_bits``-bit modulus.

    A ``seed`` makes key generation *and* subsequent obfuscation
    deterministic, which the test-suite relies on.  Production use would
    pass ``seed=None`` for OS entropy.  ``blinding_lambda`` selects the
    obfuscation mode (λ-exponent shortcut by default; 0 for the classic
    fresh ``r^n`` per blinder).
    """
    if key_bits < 64:
        raise ValueError("key_bits below 64 leaves no room for fixed-point tensors")
    # repro: nondeterministic-ok seed=None is the documented production
    # contract: key material must come from OS entropy; tests pass a seed.
    rng = random.Random(seed) if seed is not None else random.SystemRandom()
    half = key_bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(key_bits - half, rng)
        if p != q and (p * q).bit_length() == key_bits:
            break
    public = PaillierPublicKey(p * q, rng=rng, blinding_lambda=blinding_lambda)
    private = PaillierPrivateKey(public, p, q)
    return public, private


class EncryptedNumber:
    """A Paillier ciphertext paired with its fixed-point exponent."""

    __slots__ = ("public_key", "ciphertext", "exponent")

    def __init__(self, public_key: PaillierPublicKey, ciphertext: int, exponent: int):
        self.public_key = public_key
        self.ciphertext = ciphertext
        self.exponent = exponent

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: object) -> "EncryptedNumber":
        if isinstance(other, EncryptedNumber):
            return self._add_encrypted(other)
        if isinstance(other, EncodedNumber):
            return self._add_encoded(other)
        if isinstance(other, (int, float)):
            encoded = EncodedNumber.encode(self.public_key, other, exponent=None)
            return self._add_encoded(encoded)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: object) -> "EncryptedNumber":
        if isinstance(other, EncryptedNumber):
            return self._add_encrypted(-other)
        if isinstance(other, (int, float)):
            return self + (-other)
        if isinstance(other, EncodedNumber):
            neg = EncodedNumber(
                other.public_key,
                (-other.encoding) % other.public_key.n,
                other.exponent,
            )
            return self._add_encoded(neg)
        return NotImplemented

    def __rsub__(self, other: object) -> "EncryptedNumber":
        return (-self) + other

    def __neg__(self) -> "EncryptedNumber":
        return self * -1

    def __mul__(self, other: object) -> "EncryptedNumber":
        if isinstance(other, EncryptedNumber):
            raise TypeError(
                "Paillier is additively homomorphic only; ciphertext-by-"
                "ciphertext products need secret sharing (see Beaver triples)"
            )
        if isinstance(other, EncodedNumber):
            encoded = other
        elif isinstance(other, (int, float)):
            # Exact identity/annihilator shortcuts: 1.0 is 1 * 2^0 (same
            # ciphertext, same exponent) and 0.0 is the trivial encryption
            # of zero — neither needs an encoding or a pow().
            if other == 1:
                return self
            if other == 0:
                return EncryptedNumber(self.public_key, 1, self.exponent)
            encoded = EncodedNumber.encode(self.public_key, other, exponent=None)
        else:
            return NotImplemented
        ciphertext = self.public_key.raw_mul(self.ciphertext, encoded.encoding)
        return EncryptedNumber(
            self.public_key, ciphertext, self.exponent + encoded.exponent
        )

    __rmul__ = __mul__

    def _add_encrypted(self, other: "EncryptedNumber") -> "EncryptedNumber":
        if self.public_key != other.public_key:
            raise ValueError("cannot add ciphertexts under different keys")
        a, b = self._align(self, other)
        return EncryptedNumber(
            self.public_key,
            self.public_key.raw_add(a.ciphertext, b.ciphertext),
            a.exponent,
        )

    def _add_encoded(self, encoded: EncodedNumber) -> "EncryptedNumber":
        if encoded.exponent > self.exponent:
            encoded = encoded.decrease_exponent_to(self.exponent)
            me = self
        elif encoded.exponent < self.exponent:
            me = self.decrease_exponent_to(encoded.exponent)
        else:
            me = self
        other_ct = (1 + encoded.encoding * self.public_key.n) % self.public_key.nsquare
        return EncryptedNumber(
            self.public_key,
            self.public_key.raw_add(me.ciphertext, other_ct),
            min(self.exponent, encoded.exponent),
        )

    @staticmethod
    def _align(
        a: "EncryptedNumber", b: "EncryptedNumber"
    ) -> tuple["EncryptedNumber", "EncryptedNumber"]:
        if a.exponent > b.exponent:
            return a.decrease_exponent_to(b.exponent), b
        if b.exponent > a.exponent:
            return a, b.decrease_exponent_to(a.exponent)
        return a, b

    def decrease_exponent_to(self, new_exponent: int) -> "EncryptedNumber":
        """Multiply the mantissa so the value is expressed at a finer exponent."""
        if new_exponent > self.exponent:
            raise ValueError("cannot increase a ciphertext exponent losslessly")
        if new_exponent == self.exponent:
            return self
        shift = self.exponent - new_exponent
        if shift > self.public_key.key_bits:
            # The shifted mantissa could not possibly fit mod n; fail loudly
            # instead of wrapping silently (operands' dynamic ranges are too
            # far apart — typically a sign of unclamped exponents upstream).
            raise OverflowError(
                f"aligning exponents {self.exponent} -> {new_exponent} needs a "
                f"{shift}-bit shift, beyond the {self.public_key.key_bits}-bit key"
            )
        factor = 2 ** shift
        ciphertext = self.public_key.raw_mul(self.ciphertext, factor)
        return EncryptedNumber(self.public_key, ciphertext, new_exponent)

    def obfuscate(self) -> "EncryptedNumber":
        """Re-randomise so the ciphertext is unlinkable to its history."""
        blinded = (self.ciphertext * self.public_key._random_blinding()) % (
            self.public_key.nsquare
        )
        return EncryptedNumber(self.public_key, blinded, self.exponent)

    # -- wire format ---------------------------------------------------------

    def to_wire(self) -> tuple[int, int, int]:
        """``(n, ciphertext, exponent)`` — everything a receiver needs."""
        return self.public_key.n, self.ciphertext, self.exponent

    @classmethod
    def from_wire(
        cls, public_key: PaillierPublicKey, ciphertext: int, exponent: int
    ) -> "EncryptedNumber":
        return cls(public_key, int(ciphertext), int(exponent))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EncryptedNumber(exponent={self.exponent})"
