"""Fixed-point ring secret sharing and Beaver triples (SecureML substrate).

SecureML [Mohassel & Zhang 2017] — the MPC baseline of Table 5 — shares all
features and weights additively over the ring Z_2^64 with a fixed-point
fractional part, and multiplies shares with one-time Beaver triples.  Two
offline phases exist:

* **crypto**: the servers generate triples themselves with Paillier (the
  expensive path; this is why SecureML's per-batch cost explodes on
  high-dimensional data);
* **client-aided**: a non-colluding third party deals triples for free.

Both are implemented here, plus the share encoding/decoding and the local
truncation trick SecureML uses after every fixed-point product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto import kernels
from repro.crypto.math_utils import powmod
from repro.crypto.paillier import PaillierPrivateKey, PaillierPublicKey

__all__ = [
    "FRAC_BITS",
    "encode_ring",
    "decode_ring",
    "share_ring",
    "reconstruct_ring",
    "truncate_share",
    "BeaverTriple",
    "ClientAidedDealer",
    "PaillierTripleGenerator",
    "beaver_matmul",
]

RING_BITS = 64
FRAC_BITS = 20
_SCALE = float(1 << FRAC_BITS)


def encode_ring(values: np.ndarray) -> np.ndarray:
    """Encode floats as fixed-point elements of Z_2^64."""
    scaled = np.round(np.asarray(values, dtype=np.float64) * _SCALE)
    if np.any(np.abs(scaled) >= 2.0**62):
        raise OverflowError("value too large for 64-bit fixed-point encoding")
    return scaled.astype(np.int64).view(np.uint64)


def decode_ring(values: np.ndarray, frac_bits: int = FRAC_BITS) -> np.ndarray:
    """Decode ring elements back to floats (centred interpretation)."""
    return np.asarray(values, dtype=np.uint64).view(np.int64).astype(np.float64) / float(
        1 << frac_bits
    )


def share_ring(
    values: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Split ring elements into two uniformly random additive shares."""
    values = np.asarray(values, dtype=np.uint64)
    piece0 = rng.integers(0, 2**64, size=values.shape, dtype=np.uint64)
    piece1 = values - piece0  # uint64 arithmetic wraps mod 2^64
    return piece0, piece1


def reconstruct_ring(piece0: np.ndarray, piece1: np.ndarray) -> np.ndarray:
    return np.asarray(piece0, dtype=np.uint64) + np.asarray(piece1, dtype=np.uint64)


def truncate_share(share: np.ndarray, server: int, frac_bits: int = FRAC_BITS) -> np.ndarray:
    """SecureML's local truncation after a fixed-point product.

    Server 0 arithmetically shifts its share; server 1 shifts the negation
    and negates back.  The reconstructed value equals the truth up to one
    unit in the last place with overwhelming probability.
    """
    signed = np.asarray(share, dtype=np.uint64).view(np.int64)
    if server == 0:
        return (signed >> frac_bits).view(np.uint64)
    if server == 1:
        return (-((-signed) >> frac_bits)).view(np.uint64)
    raise ValueError("server must be 0 or 1")


@dataclass
class BeaverTriple:
    """Shares of random A (n x m), B (m x k) and C = A @ B."""

    a: tuple[np.ndarray, np.ndarray]
    b: tuple[np.ndarray, np.ndarray]
    c: tuple[np.ndarray, np.ndarray]

    @property
    def shape(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return self.a[0].shape, self.b[0].shape


class ClientAidedDealer:
    """A trusted third party that deals Beaver triples for free.

    This is SecureML's "client-aided" variant: no cryptography during
    training at all, which is why it dominates the low-dimensional rows of
    Table 5 — and why it still loses on avazu/industry, where the *dense*
    plain-arithmetic itself is the bottleneck.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def deal(self, n: int, m: int, k: int) -> BeaverTriple:
        a = self._rng.integers(0, 2**64, size=(n, m), dtype=np.uint64)
        b = self._rng.integers(0, 2**64, size=(m, k), dtype=np.uint64)
        c = _ring_matmul(a, b)
        return BeaverTriple(
            a=share_ring(a, self._rng),
            b=share_ring(b, self._rng),
            c=share_ring(c, self._rng),
        )


class PaillierTripleGenerator:
    """Two-server Beaver-triple generation via Paillier (SecureML offline).

    Server 0 encrypts its ``A0`` under its own key; server 1 computes
    ``[[A0]] @ B1 + R`` homomorphically and returns it, giving the servers
    additive shares of the cross term ``A0 @ B1`` (and symmetrically
    ``A1 @ B0``).  Statistical masking uses 40 extra bits.

    The cost is Theta(n*m) encryptions + Theta(n*m*k) homomorphic ops *per
    triple*, i.e. per training iteration — the quantity Table 5's SecureML
    column measures.  ``unit_cost_ops`` exposes the op count so benchmarks
    can extrapolate instead of running multi-hour cells (mirroring the
    paper's ">1800 s" / "OOM" entries).
    """

    _MASK_BITS = RING_BITS + 40

    def __init__(
        self,
        rng: np.random.Generator,
        pk0: PaillierPublicKey,
        sk0: PaillierPrivateKey,
        pk1: PaillierPublicKey,
        sk1: PaillierPrivateKey,
    ):
        self._rng = rng
        self._keys = ((pk0, sk0), (pk1, sk1))
        min_bits = self._MASK_BITS + RING_BITS + 8
        if pk0.n.bit_length() < min_bits or pk1.n.bit_length() < min_bits:
            raise ValueError(
                f"Paillier modulus too small for 64-bit triples; need >= {min_bits} bits"
            )

    def deal(self, n: int, m: int, k: int) -> BeaverTriple:
        a0 = self._rng.integers(0, 2**64, size=(n, m), dtype=np.uint64)
        a1 = self._rng.integers(0, 2**64, size=(n, m), dtype=np.uint64)
        b0 = self._rng.integers(0, 2**64, size=(m, k), dtype=np.uint64)
        b1 = self._rng.integers(0, 2**64, size=(m, k), dtype=np.uint64)
        # Cross terms via HE: each is shared between the two servers.
        cross01 = self._cross_term(a0, b1, owner=0)  # shares of A0 @ B1
        cross10 = self._cross_term(a1, b0, owner=1)  # shares of A1 @ B0
        c0 = _ring_matmul(a0, b0) + cross01[0] + cross10[1]
        c1 = _ring_matmul(a1, b1) + cross01[1] + cross10[0]
        return BeaverTriple(a=(a0, a1), b=(b0, b1), c=(c0, c1))

    def _cross_term(
        self, a: np.ndarray, b: np.ndarray, owner: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return additive ring shares of ``a @ b`` (a at ``owner``)."""
        pk, sk = self._keys[owner]
        n_rows, m = a.shape
        k = b.shape[1]
        # Owner encrypts its matrix entry-wise (the n*m encryptions).
        enc_a = [[pk.raw_encrypt(int(a[i, j])) for j in range(m)] for i in range(n_rows)]
        helper_share = np.empty((n_rows, k), dtype=np.uint64)
        owner_share = np.empty((n_rows, k), dtype=np.uint64)
        nsq = pk.nsquare
        # Helper side: accumulate + mask every entry first, collecting the
        # masked ciphertexts in row-major order ...
        masked_cts: list[int] = []
        for i in range(n_rows):
            for j in range(k):
                acc = 1  # Enc(0)
                for t in range(m):
                    term = powmod(enc_a[i][t], int(b[t, j]), nsq)
                    acc = (acc * term) % nsq
                mask = int(self._rng.integers(0, 2**63)) << 40  # ~103-bit mask
                helper_share[i, j] = np.uint64((-mask) % (2**64))
                masked_cts.append((acc * pk.raw_encrypt(mask)) % nsq)
        # ... then the owner decrypts the whole batch through the CRT
        # kernel (sharded across the private worker tier when a parallel
        # context is configured) instead of n*k Python-level raw_decrypts.
        for pos, raw in enumerate(kernels.crt_decrypt_many(sk, masked_cts)):
            owner_share[pos // k, pos % k] = np.uint64(raw % (2**64))
        if owner == 0:
            return owner_share, helper_share
        return helper_share, owner_share

    @staticmethod
    def unit_cost_ops(n: int, m: int, k: int) -> int:
        """Paillier operation count for one (n, m, k) triple (both cross terms)."""
        encryptions = 2 * n * m + 2 * n * k  # matrix encs + mask encs
        homomorphic = 2 * n * m * k
        decryptions = 2 * n * k
        return encryptions + homomorphic + decryptions


def beaver_matmul(
    x_shares: tuple[np.ndarray, np.ndarray],
    w_shares: tuple[np.ndarray, np.ndarray],
    triple: BeaverTriple,
    truncate: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Multiply secret-shared matrices with a Beaver triple.

    Both servers open ``D = X - A`` and ``E = W - B`` (uniformly random, so
    nothing leaks), then assemble shares of ``X @ W`` locally.  With
    ``truncate=True`` the fixed-point scale is restored via local share
    truncation.
    """
    x0, x1 = x_shares
    w0, w1 = w_shares
    a0, a1 = triple.a
    b0, b1 = triple.b
    c0, c1 = triple.c
    if x0.shape != a0.shape or w0.shape != b0.shape:
        raise ValueError("triple shape does not match operand shapes")
    d = reconstruct_ring(x0 - a0, x1 - a1)  # opened masked X
    e = reconstruct_ring(w0 - b0, w1 - b1)  # opened masked W
    z0 = _ring_matmul(d, e) + _ring_matmul(d, b0) + _ring_matmul(a0, e) + c0
    z1 = _ring_matmul(d, b1) + _ring_matmul(a1, e) + c1
    if truncate:
        z0 = truncate_share(z0, server=0)
        z1 = truncate_share(z1, server=1)
    return z0, z1


def _ring_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product in Z_2^64 (numpy integer matmul wraps as required)."""
    with np.errstate(over="ignore"):
        return a.astype(np.uint64) @ b.astype(np.uint64)
