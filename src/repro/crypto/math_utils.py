"""Number-theoretic primitives backing the Paillier cryptosystem.

Pure-Python replacements for the GMP routines the paper's implementation
uses: Miller-Rabin primality testing, random prime generation, modular
inverses and lcm.  ``pow`` with three arguments already gives us fast
modular exponentiation on CPython.

When the optional ``gmpy2`` package is installed (``pip install
.[fast]``), :func:`powmod` and :func:`invert` route through GMP instead —
several-fold faster on the 2048-bit operands of production keys.  The fast
path is a feature flag (:func:`use_gmpy2`), defaults to on when the library
imports, and always returns plain python ``int`` so ciphertexts stay
ordinary integers either way.  The pure-python fallback is never removed;
both paths are pinned against each other in the test-suite.
"""

from __future__ import annotations

import os
import random

try:  # pragma: no cover - exercised only when gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # the container image has no gmpy2; pure python it is
    _gmpy2 = None

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "invmod",
    "lcm",
    "crt_pair",
    "powmod",
    "powmod_base_many",
    "invert",
    "to_mpz",
    "have_gmpy2",
    "gmpy2_enabled",
    "use_gmpy2",
]

# Feature flag: on iff gmpy2 imported and REPRO_PURE_PYTHON is unset.
_GMPY2_ENABLED = _gmpy2 is not None and os.environ.get("REPRO_PURE_PYTHON") != "1"


def have_gmpy2() -> bool:
    """Whether the optional gmpy2 dependency is importable at all."""
    return _gmpy2 is not None


def gmpy2_enabled() -> bool:
    """Whether :func:`powmod`/:func:`invert` currently route through GMP."""
    return _GMPY2_ENABLED


def use_gmpy2(enabled: bool) -> bool:
    """Toggle the gmpy2 fast path; returns the previous state.

    Enabling without gmpy2 installed raises so a mis-provisioned deployment
    fails loudly instead of silently running the slow path.
    """
    global _GMPY2_ENABLED
    if enabled and _gmpy2 is None:
        raise RuntimeError(
            "gmpy2 is not installed; install the '[fast]' extra to enable it"
        )
    previous = _GMPY2_ENABLED
    _GMPY2_ENABLED = bool(enabled)
    return previous


def to_mpz(value: int):
    """Convert to gmpy2's mpz when the fast path is on (identity otherwise).

    Useful for hoisting a conversion out of a loop that will call
    :func:`powmod` many times against the same modulus.
    """
    if _GMPY2_ENABLED:
        return _gmpy2.mpz(value)
    return value


def powmod(base: int, exp: int, mod: int) -> int:
    """``base ** exp % mod`` via gmpy2 when enabled, builtin ``pow`` otherwise."""
    if _GMPY2_ENABLED:
        return int(_gmpy2.powmod(base, exp, mod))
    return pow(base, exp, mod)


def powmod_base_many(base: int, exps, mod: int) -> list[int]:
    """``[base ** e % mod for e in exps]`` with the base/modulus conversion
    hoisted out of the loop on the gmpy2 fast path.

    The λ-exponent blinding refill is exactly this shape — one fixed base
    ``h = r0^n`` raised to a batch of short random exponents — as are the
    fixed-ciphertext pow batteries of CRT decryption benchmarks.
    """
    if _GMPY2_ENABLED:
        b = _gmpy2.mpz(base)
        m = _gmpy2.mpz(mod)
        return [int(_gmpy2.powmod(b, e, m)) for e in exps]
    return [pow(base, e, mod) for e in exps]


def invert(a: int, m: int) -> int:
    """Modular inverse via gmpy2 when enabled (raises if not invertible)."""
    if _GMPY2_ENABLED:
        try:
            return int(_gmpy2.invert(a, m))
        except ZeroDivisionError:
            raise ValueError("base is not invertible for the given modulus") from None
    return pow(a, -1, m)

# Deterministic witnesses make Miller-Rabin exact for n < 3.3e24; beyond
# that we add random rounds for a negligible error probability.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int, rounds: int = 16, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic witnesses cover all 64-bit integers exactly; for larger
    candidates ``rounds`` extra random witnesses bound the error below
    4**-rounds.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = rng or random.Random(0x5EED ^ (n & 0xFFFFFFFF))
    witnesses = list(_DETERMINISTIC_WITNESSES)
    witnesses += [rng.randrange(2, n - 1) for _ in range(rounds)]
    for a in witnesses:
        a %= n
        if a in (0, 1, n - 1):
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Sample a random prime with exactly ``bits`` bits (top bit set)."""
    if bits < 8:
        raise ValueError("refusing to generate primes below 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force bit length and oddness
        if is_probable_prime(candidate):
            return candidate


def invmod(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m`` (raises if not invertible)."""
    return invert(a, m)


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    import math

    return a // math.gcd(a, b) * b


def crt_pair(mp: int, mq: int, p: int, q: int, q_inv_p: int) -> int:
    """Combine residues ``mp`` mod p and ``mq`` mod q via Garner's CRT.

    ``q_inv_p`` must be ``invmod(q, p)``.  Returns the unique value mod p*q.
    """
    diff = (mp - mq) % p
    return mq + q * ((diff * q_inv_p) % p)
