"""Two-party additive secret sharing and the HE<->SS conversions.

Implements the paper's Algorithm 1 (``HE2SS``: turn a ciphertext [[v]] into
shares <phi, v - phi>) and Algorithm 2 (``SS2HE``: turn shares <v_a, v_b>
into a ciphertext [[v]] under the *other* party's key), plus the plain
float-tensor sharing used to split model weights (W = U + V) and embedding
tables (Q = S + T) at initialisation.

Masks are uniform in ``[-scale, scale]``.  Over the reals this is
statistical rather than perfect hiding (a value shifts the mask's support by
``|v|/scale``); the paper's fixed-point implementation has the same
property, and Figure 11's empirical check — share pieces dwarf and decorrelate
from the true values — is reproduced in the benchmark suite.

Every conversion that puts a ciphertext on the wire *re-randomises* it by
homomorphically adding a freshly-encrypted mask, so the lazily-unobfuscated
internal arithmetic (see ``repro.crypto.paillier``) never leaks ciphertext
history.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.comm.message import MessageKind
from repro.crypto.crypto_tensor import TENSOR_EXPONENT, CryptoTensor
from repro.crypto.packing import PackedCryptoTensor, SlotLayout
from repro.crypto.parallel import ParallelContext
from repro.obs import tracer as _obs

if TYPE_CHECKING:  # pragma: no cover - runtime uses duck typing to avoid
    # a circular import (comm.party needs crypto for key generation).
    from repro.comm.channel import Channel
    from repro.comm.party import Party

__all__ = [
    "additive_share",
    "reconstruct",
    "he2ss_split",
    "he2ss_receive",
    "ss2he_send",
    "ss2he_combine",
]


def additive_share(
    values: np.ndarray, rng: np.random.Generator, scale: float
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``values`` into ``(mask, values - mask)`` with uniform masks."""
    values = np.asarray(values, dtype=np.float64)
    if scale <= 0:
        raise ValueError("mask scale must be positive")
    mask = rng.uniform(-scale, scale, size=values.shape)
    return mask, values - mask


def reconstruct(piece_a: np.ndarray, piece_b: np.ndarray) -> np.ndarray:
    """Rebuild the secret from its two pieces."""
    return np.asarray(piece_a) + np.asarray(piece_b)


def he2ss_split(
    ciphertext: CryptoTensor | PackedCryptoTensor,
    holder: "Party",
    key_owner_name: str,
    channel: "Channel",
    tag: str,
    mask_scale: float,
    parallel: ParallelContext | None = None,
    packing: SlotLayout | None = None,
) -> np.ndarray:
    """Algorithm 1, the branch of the party that does *not* own the key.

    ``holder`` possesses ``[[v]]`` under ``key_owner``'s key.  It draws a
    random ``phi``, ships the re-randomised ``[[v - phi]]`` to the key owner
    and keeps ``phi`` as its share piece.

    A :class:`PackedCryptoTensor` input is masked lane-wise and shipped as
    is — this is how the packed Embed-MatMul table gradient (a packed
    ``scatter_add_rows`` output) crosses the wire at ``slots``-fold fewer
    ciphertexts, mask blindings and receiver decrypts.  With ``packing``
    given (a :class:`SlotLayout`), a per-element tensor is first packed
    homomorphically — the transfer then costs one ciphertext (and one mask
    blinding) per ``slots`` values instead of one per value.  Either way
    the masked lanes decode bit-identically to the unpacked protocol, and
    the ``value_bits`` metadata is canonicalised to the layout constant
    before sending (a scatter output's bound would otherwise encode the
    batch's per-row fan-in — a function of the private indices).
    """
    with _obs.span("he2ss_send", party=holder.name, tag=tag):
        phi = holder.rng.uniform(-mask_scale, mask_scale, size=ciphertext.shape)
        peer_pk = holder.peer_key(key_owner_name)
        if peer_pk != ciphertext.public_key:
            raise ValueError("ciphertext is not under the claimed key owner's key")
        if not isinstance(ciphertext, PackedCryptoTensor) and packing is not None:
            # Transfer-only tensor: pack row-major across row boundaries (the
            # receiver only ever decrypts), so even column vectors get the
            # full slots-fold reduction.
            with _obs.span("pack", party=holder.name, tag=tag):
                ciphertext = PackedCryptoTensor.pack(
                    ciphertext, packing, parallel=parallel, contiguous=True
                )
        if isinstance(ciphertext, PackedCryptoTensor):
            # Fresh obfuscated packed encryption of -phi re-randomises the sum.
            masked: object = ciphertext.add_plain(
                -phi, encode_exponent=TENSOR_EXPONENT, obfuscate=True, parallel=parallel
            )
            # The lane-bound bookkeeping is derived from the holder's private
            # operands (feature magnitudes, per-row sparsity) — canonicalise it
            # to the layout constant before the object crosses the trust
            # boundary, so the metadata carries nothing the unpacked protocol
            # would not.  Decryption never reads value_bits.
            masked.value_bits = masked.layout.lane_cap_bits
        else:
            # Fresh obfuscated encryption of -phi re-randomises the whole sum.
            masked = ciphertext + CryptoTensor.encrypt(
                peer_pk, -phi, exponent=TENSOR_EXPONENT, obfuscate=True, parallel=parallel
            )
        channel.send(holder.name, key_owner_name, tag, masked, MessageKind.CIPHERTEXT)
        return phi


def he2ss_receive(
    key_owner: "Party",
    channel: "Channel",
    tag: str,
    parallel: ParallelContext | None = None,
) -> np.ndarray:
    """Algorithm 1, the key owner's branch: receive and decrypt ``v - phi``.

    Decryption is the key owner's dominant per-batch cost; it shards across
    the private worker tier of a configured
    :class:`~repro.crypto.parallel.ParallelContext` (explicit or the
    process default installed by ``TrainConfig.parallel_workers``) —
    workers are the key owner's own OS children, so ``(p, q)`` never leave
    its custody.
    """
    with _obs.span("decrypt", party=key_owner.name, tag=tag):
        masked = channel.recv(key_owner.name, tag)
        if not isinstance(masked, (CryptoTensor, PackedCryptoTensor)):
            raise TypeError(f"expected a CryptoTensor for tag {tag!r}")
        return masked.decrypt(key_owner.private_key, parallel=parallel)


def ss2he_send(
    own_piece: np.ndarray,
    me: "Party",
    peer_name: str,
    channel: "Channel",
    tag: str,
    parallel: ParallelContext | None = None,
) -> None:
    """Algorithm 2, line 2: encrypt own piece under *own* key and send it."""
    with _obs.span("encrypt", party=me.name, tag=tag):
        ciphertext = CryptoTensor.encrypt(
            me.public_key,
            np.asarray(own_piece, dtype=np.float64),
            obfuscate=True,
            parallel=parallel,
        )
        channel.send(me.name, peer_name, tag, ciphertext, MessageKind.CIPHERTEXT)


def ss2he_combine(
    own_piece: np.ndarray, me: "Party", channel: "Channel", tag: str
) -> CryptoTensor:
    """Algorithm 2, lines 3-4: combine into ``[[v]]`` under the peer's key."""
    other_ct = channel.recv(me.name, tag)
    if not isinstance(other_ct, CryptoTensor):
        raise TypeError(f"expected a CryptoTensor for tag {tag!r}")
    return other_ct + np.asarray(own_piece, dtype=np.float64)
