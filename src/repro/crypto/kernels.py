"""Flat integer kernels for batched Paillier tensor arithmetic.

The paper's CryptoTensor library (§7.1) keeps ciphertext batches as
contiguous GMP big-int arrays and runs every primitive as a tight loop over
raw residues.  This module is the CPython analogue: a uniform-exponent
ciphertext batch travels as a flat ``list[int]`` (row-major, plus shape and
exponent metadata kept by the caller) and every primitive — encrypt, CRT
decrypt, elementwise add/sub/mul, both matmul orientations, sparse
``X.T @ cipher``, scatter-add and obfuscation — loops over those integers
directly.  No ``EncryptedNumber`` or ``EncodedNumber`` is allocated in any
inner loop; object wrappers exist only at the :class:`CryptoTensor`
boundary.

Three algorithmic optimisations are fused into the kernels:

1. **Encoding/raw-mul caching** — matmuls group the contraction by distinct
   plaintext value, so a value repeated along a row/column costs *one*
   modular exponentiation per ciphertext element instead of one per
   occurrence.  On the binary/categorical features of BlindFL's sparse
   datasets (values in {0, 1}) this collapses ``nnz`` exponentiations per
   output into one.
2. **Blinding pool** — obfuscation draws ``r^n mod n^2`` factors from the
   public key's precomputed pool (see ``PaillierPublicKey.blinding_pool``)
   and computes any shortfall as one batch, optionally in parallel.
3. **Multicore dispatch** — every exponentiation-heavy kernel builds an
   explicit job list and hands it to a :class:`~repro.crypto.parallel.
   ParallelContext` when one is configured and the job count clears the
   gate; results are bit-identical to serial execution.

All kernels mirror the legacy object path's arithmetic exactly (same
mantissa encodings, same negative-plaintext inversion trick, same exponent
bookkeeping), which the equivalence test-suite pins down.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.crypto.encoding import EncodedNumber
from repro.crypto.math_utils import invmod, powmod
from repro.crypto.parallel import ParallelContext, get_default_context
from repro.obs import tracer as _obs

__all__ = [
    "TENSOR_EXPONENT",
    "PLAIN_EXPONENT",
    "encode_flat",
    "encrypt_flat",
    "crt_decrypt_many",
    "decrypt_flat",
    "align_flat",
    "add_cipher_flat",
    "sub_cipher_flat",
    "add_plain_flat",
    "mul_plain_flat",
    "matmul_plain_cipher_flat",
    "matmul_cipher_plain_flat",
    "sparse_matmul_cipher_flat",
    "sparse_t_matmul_flat",
    "scatter_add_flat",
    "obfuscate_flat",
    "raw_mul_many",
]

# Uniform fixed-point exponents (shared with crypto_tensor, which re-exports
# them): encrypted tensors carry ~2**-40 resolution, plaintext multipliers
# ~2**-32; products land at 2**-72, far inside the plaintext bound of even
# the shortest supported keys.
TENSOR_EXPONENT = -40
PLAIN_EXPONENT = -32

_FLOAT_MANT_BITS = EncodedNumber.FLOAT_MANTISSA_BITS
_MIN_DEFAULT_EXPONENT = EncodedNumber.MIN_DEFAULT_EXPONENT


def _resolve(parallel: ParallelContext | None) -> ParallelContext | None:
    return parallel if parallel is not None else get_default_context()


# ---------------------------------------------------------------------------
# Exponentiation job execution (the one place serial/parallel diverge).


def raw_mul_many(
    public_key,
    pairs: Sequence[tuple[int, int]],
    parallel: ParallelContext | None = None,
) -> list[int]:
    """``c^m mod n^2`` for every ``(ciphertext, mantissa)`` pair.

    Mirrors ``PaillierPublicKey.raw_mul``; dispatches to the parallel
    context when one is active and the batch clears its gate.
    """
    ctx = _resolve(parallel)
    if ctx is not None and ctx.should_parallelize(len(pairs)):
        return ctx.raw_mul_many(public_key, pairs)
    n = public_key.n
    nsq = public_key.nsquare
    half = n // 2
    out: list[int] = []
    append = out.append
    pows = 0
    for c, m in pairs:
        if m >= half:
            c = invmod(c, nsq)
            m = n - m
        if m == 0:
            append(1)
        elif m == 1:
            append(c)
        else:
            append(powmod(c, m, nsq))
            pows += 1
    if pows:
        trc = _obs.get_tracer()
        if trc is not None:
            trc.add("pow.mul", pows)
    return out


# ---------------------------------------------------------------------------
# Encoding.


def _encode_mantissa(public_key, value: float, exponent: int) -> int:
    """Fixed-point mantissa residue of ``value`` at ``exponent`` (mod n)."""
    if not math.isfinite(value):
        raise ValueError(f"cannot encode non-finite value {value!r}")
    try:
        mantissa = int(round(math.ldexp(value, -exponent)))
    except OverflowError:
        raise OverflowError(
            f"scalar {value} at exponent {exponent} exceeds plaintext bound"
        ) from None
    if abs(mantissa) > public_key.max_int:
        raise OverflowError(
            f"scalar {value} at exponent {exponent} exceeds plaintext bound"
        )
    return mantissa % public_key.n


def encode_flat(public_key, values: np.ndarray, exponent: int) -> list[int]:
    """Encode a flat float64 array at a uniform exponent, caching repeats."""
    cache: dict[float, int] = {}
    out: list[int] = []
    append = out.append
    for v in np.asarray(values, dtype=np.float64).ravel().tolist():
        m = cache.get(v)
        if m is None:
            m = _encode_mantissa(public_key, v, exponent)
            cache[v] = m
        append(m)
    return out


# ---------------------------------------------------------------------------
# Encrypt / decrypt.


def encrypt_flat(
    public_key,
    values: np.ndarray,
    exponent: int = TENSOR_EXPONENT,
    obfuscate: bool = True,
    parallel: ParallelContext | None = None,
) -> list[int]:
    """Encrypt a flat float array at a uniform exponent.

    ``g = n + 1`` makes the deterministic part a single mulmod; the
    obfuscation factors come from the key's blinding pool (batch-computed,
    optionally parallel, when the pool runs dry).
    """
    n = public_key.n
    nsq = public_key.nsquare
    cts = [(1 + m * n) % nsq for m in encode_flat(public_key, values, exponent)]
    if obfuscate:
        blinders = public_key.blinding_factors(len(cts), parallel=_resolve(parallel))
        cts = [(c * b) % nsq for c, b in zip(cts, blinders)]
    trc = _obs.get_tracer()
    if trc is not None:
        trc.add("ct.encrypted", len(cts))
    return cts


def crt_decrypt_many(
    private_key,
    cts: Sequence[int],
    parallel: ParallelContext | None = None,
) -> list[int]:
    """Raw CRT decryptions ``c -> m`` with ``m in [0, n)`` for a batch.

    The serial path mirrors ``PaillierPrivateKey.raw_decrypt`` exactly;
    when a :class:`~repro.crypto.parallel.ParallelContext` is active and
    the batch clears its gate, the work shards across the context's
    *private* worker tier (CRT constants shipped once to the key owner's
    own OS children — see the custody notes in ``repro.crypto.parallel``),
    bit-identical to serial.
    """
    ctx = _resolve(parallel)
    if ctx is not None and ctx.should_parallelize(len(cts)):
        return ctx.crt_decrypt_many(private_key, cts)
    raw_decrypt = private_key.raw_decrypt
    out = [raw_decrypt(c) for c in cts]
    if out:
        trc = _obs.get_tracer()
        if trc is not None:
            trc.add("pow.crt", 2 * len(out))
            trc.add("ct.decrypted", len(out))
    return out


def decrypt_flat(
    private_key,
    cts: Sequence[int],
    exponents: int | Sequence[int],
    parallel: ParallelContext | None = None,
) -> np.ndarray:
    """CRT-decrypt a flat ciphertext batch to float64.

    ``exponents`` is either one uniform exponent or a per-element sequence
    (ragged tensors appear after the mul-by-one shortcut or mixed adds).
    The CRT exponentiations go through :func:`crt_decrypt_many`, so a
    configured parallel context shards them across the private worker tier.
    """
    pk = private_key.public_key
    n, max_int = pk.n, pk.max_int
    uniform = isinstance(exponents, int)
    out = np.empty(len(cts), dtype=np.float64)
    for i, m in enumerate(crt_decrypt_many(private_key, cts, parallel)):
        if m <= max_int:
            mantissa = m
        elif m >= n - max_int:
            mantissa = m - n
        else:
            raise OverflowError(
                "encoding fell in the overflow guard band; increase the key "
                "size or reduce tensor magnitudes"
            )
        e = exponents if uniform else exponents[i]
        # Keep huge-mantissa/negative-exponent pairs inside float range.
        while abs(mantissa) > 2**1000:
            mantissa >>= 64
            e += 64
        out[i] = math.ldexp(float(mantissa), e)
    return out


# ---------------------------------------------------------------------------
# Exponent alignment.


def _shift_ct(public_key, c: int, shift: int) -> int:
    """Re-express a ciphertext at a ``shift``-bit finer exponent."""
    if shift > public_key.key_bits:
        raise OverflowError(
            f"aligning exponents needs a {shift}-bit shift, beyond the "
            f"{public_key.key_bits}-bit key"
        )
    return public_key.raw_mul(c, 1 << shift)


def align_flat(
    public_key, cts: Sequence[int], exponents: Sequence[int]
) -> tuple[list[int], int]:
    """Bring a ragged batch to its minimum (finest) common exponent."""
    target = min(exponents)
    out = [
        c if e == target else _shift_ct(public_key, c, e - target)
        for c, e in zip(cts, exponents)
    ]
    shifted = sum(1 for e in exponents if e != target)
    if shifted:
        trc = _obs.get_tracer()
        if trc is not None:
            trc.add("pow.shift", shifted)
    return out, target


# ---------------------------------------------------------------------------
# Elementwise kernels.  These mirror EncryptedNumber's per-element exponent
# bookkeeping exactly (pairwise alignment, result at the pairwise minimum),
# so rewiring CryptoTensor onto them is behaviour-preserving.


def add_cipher_flat(
    public_key,
    a_cts: Sequence[int],
    a_exps: Sequence[int],
    b_cts: Sequence[int],
    b_exps: Sequence[int],
) -> tuple[list[int], list[int]]:
    """Elementwise homomorphic ``a + b`` with pairwise exponent alignment."""
    nsq = public_key.nsquare
    out_cts: list[int] = []
    out_exps: list[int] = []
    shifts = 0
    for ca, ea, cb, eb in zip(a_cts, a_exps, b_cts, b_exps):
        if ea > eb:
            ca = _shift_ct(public_key, ca, ea - eb)
            e = eb
            shifts += 1
        elif eb > ea:
            cb = _shift_ct(public_key, cb, eb - ea)
            e = ea
            shifts += 1
        else:
            e = ea
        out_cts.append((ca * cb) % nsq)
        out_exps.append(e)
    if shifts:
        trc = _obs.get_tracer()
        if trc is not None:
            trc.add("pow.shift", shifts)
    return out_cts, out_exps


def sub_cipher_flat(
    public_key,
    a_cts: Sequence[int],
    a_exps: Sequence[int],
    b_cts: Sequence[int],
    b_exps: Sequence[int],
) -> tuple[list[int], list[int]]:
    """Elementwise ``a - b`` (adds the modular inverse of ``b``)."""
    nsq = public_key.nsquare
    inv_b = [invmod(c, nsq) for c in b_cts]
    return add_cipher_flat(public_key, a_cts, a_exps, inv_b, b_exps)


def _default_float_exponent(value: float) -> int:
    """The exponent ``EncodedNumber.encode(..., exponent=None)`` would pick."""
    return max(math.frexp(value)[1] - _FLOAT_MANT_BITS, _MIN_DEFAULT_EXPONENT)


def add_plain_flat(
    public_key,
    cts: Sequence[int],
    exps: Sequence[int],
    values: np.ndarray,
) -> tuple[list[int], list[int]]:
    """Elementwise ``cipher + plain`` at each value's natural precision."""
    n = public_key.n
    nsq = public_key.nsquare
    out_cts: list[int] = []
    out_exps: list[int] = []
    enc_cache: dict[float, tuple[int, int]] = {}
    shifts = 0
    for c, e, v in zip(cts, exps, np.asarray(values, dtype=np.float64).ravel().tolist()):
        cached = enc_cache.get(v)
        if cached is None:
            ev = _default_float_exponent(v)
            cached = (_encode_mantissa(public_key, v, ev), ev)
            enc_cache[v] = cached
        m, ev = cached
        if ev > e:
            m = (m << (ev - e)) % n
            te = e
        elif ev < e:
            c = _shift_ct(public_key, c, e - ev)
            te = ev
            shifts += 1
        else:
            te = e
        out_cts.append((c * (1 + m * n)) % nsq)
        out_exps.append(te)
    if shifts:
        trc = _obs.get_tracer()
        if trc is not None:
            trc.add("pow.shift", shifts)
    return out_cts, out_exps


def mul_plain_flat(
    public_key,
    cts: Sequence[int],
    exps: Sequence[int],
    values: np.ndarray,
    parallel: ParallelContext | None = None,
) -> tuple[list[int], list[int]]:
    """Elementwise ``cipher * plain`` at ``PLAIN_EXPONENT``.

    Multiplying by exactly ``1.0`` returns the ciphertext untouched (the
    value is ``1 * 2^0``, so the exponent is unchanged) and by exactly
    ``0.0`` returns the trivial encryption of zero — neither pays a
    ``pow()``.  Everything else goes through one batched ``raw_mul``.
    """
    flat_vals = np.asarray(values, dtype=np.float64).ravel().tolist()
    out_cts: list[int] = [0] * len(flat_vals)
    out_exps: list[int] = [0] * len(flat_vals)
    jobs: list[tuple[int, int]] = []
    job_slots: list[int] = []
    enc_cache: dict[float, int] = {}
    for i, (c, e, v) in enumerate(zip(cts, exps, flat_vals)):
        if v == 1.0:
            out_cts[i] = c
            out_exps[i] = e
            continue
        if v == 0.0:
            out_cts[i] = 1
            out_exps[i] = e
            continue
        m = enc_cache.get(v)
        if m is None:
            m = _encode_mantissa(public_key, v, PLAIN_EXPONENT)
            enc_cache[v] = m
        jobs.append((c, m))
        job_slots.append(i)
        out_exps[i] = e + PLAIN_EXPONENT
    if jobs:
        for slot, powered in zip(job_slots, raw_mul_many(public_key, jobs, parallel)):
            out_cts[slot] = powered
    return out_cts, out_exps


# ---------------------------------------------------------------------------
# Matrix products.  Each builds a deduplicated exponentiation job list (one
# pow per distinct plaintext value per ciphertext element), executes it
# serially or across the pool, then combines with cheap mulmods.


def matmul_plain_cipher_flat(
    public_key,
    plain: np.ndarray,
    cts: Sequence[int],
    k: int,
    exponent: int,
    parallel: ParallelContext | None = None,
) -> tuple[list[int], int]:
    """Dense ``plain (s x m) @ cipher (m x k)`` over flat residues.

    Zero entries are skipped; repeated values within a plaintext column
    share one exponentiation per ciphertext row (the raw-mul cache).
    Returns the flat ``s*k`` product batch and its uniform exponent.
    """
    plain = np.asarray(plain, dtype=np.float64)
    s, m = plain.shape
    nsq = public_key.nsquare
    prod_exp = exponent + PLAIN_EXPONENT
    enc_cache: dict[float, int] = {}
    jobs: list[tuple[int, int]] = []
    groups: list[list[int]] = []  # output-row lists, one per k-sized job block
    for t in range(m):
        col = plain[:, t]
        nz = np.nonzero(col)[0]
        if not nz.size:
            continue
        by_value: dict[float, list[int]] = {}
        for i in nz.tolist():
            by_value.setdefault(float(col[i]), []).append(i)
        base = t * k
        for v, rows in by_value.items():
            mant = enc_cache.get(v)
            if mant is None:
                mant = _encode_mantissa(public_key, v, PLAIN_EXPONENT)
                enc_cache[v] = mant
            for j in range(k):
                jobs.append((cts[base + j], mant))
            groups.append(rows)
    powered = raw_mul_many(public_key, jobs, parallel)
    out = [1] * (s * k)
    pos = 0
    for rows in groups:
        block = powered[pos : pos + k]
        pos += k
        for i in rows:
            ob = i * k
            for j in range(k):
                out[ob + j] = (out[ob + j] * block[j]) % nsq
    return out, prod_exp


def matmul_cipher_plain_flat(
    public_key,
    cts: Sequence[int],
    plain: np.ndarray,
    s: int,
    exponent: int,
    parallel: ParallelContext | None = None,
) -> tuple[list[int], int]:
    """Dense ``cipher (s x m) @ plain (m x k)`` over flat residues."""
    plain = np.asarray(plain, dtype=np.float64)
    m, k = plain.shape
    nsq = public_key.nsquare
    prod_exp = exponent + PLAIN_EXPONENT
    enc_cache: dict[float, int] = {}
    jobs: list[tuple[int, int]] = []
    groups: list[list[int]] = []  # output-column lists, one per s-sized block
    for t in range(m):
        row = plain[t]
        nz = np.nonzero(row)[0]
        if not nz.size:
            continue
        by_value: dict[float, list[int]] = {}
        for j in nz.tolist():
            by_value.setdefault(float(row[j]), []).append(j)
        for v, cols in by_value.items():
            mant = enc_cache.get(v)
            if mant is None:
                mant = _encode_mantissa(public_key, v, PLAIN_EXPONENT)
                enc_cache[v] = mant
            for i in range(s):
                jobs.append((cts[i * m + t], mant))
            groups.append(cols)
    powered = raw_mul_many(public_key, jobs, parallel)
    out = [1] * (s * k)
    pos = 0
    for cols in groups:
        block = powered[pos : pos + s]
        pos += s
        for i in range(s):
            pw = block[i]
            ob = i * k
            for j in cols:
                out[ob + j] = (out[ob + j] * pw) % nsq
    return out, prod_exp


def sparse_matmul_cipher_flat(
    public_key,
    rows: Sequence[tuple[Sequence[int], Sequence[float]]],
    m: int,
    cts: Sequence[int],
    k: int,
    exponent: int,
    parallel: ParallelContext | None = None,
) -> tuple[list[int], int]:
    """CSR ``plain @ cipher``: cost proportional to nnz mulmods.

    Exponentiations are deduplicated across the whole batch by
    ``(column, value)``: every batch row multiplying cipher row ``col`` by
    the same value reuses one powered block — for binary features each
    touched column costs ``k`` pows total, however many rows hit it.
    """
    nsq = public_key.nsquare
    prod_exp = exponent + PLAIN_EXPONENT
    enc_cache: dict[float, int] = {}
    # (col, value) -> output rows that accumulate that powered block.
    by_col_value: dict[tuple[int, float], list[int]] = {}
    for i, (cols, vals) in enumerate(rows):
        for col, v in zip(cols, vals):
            col = int(col)
            if col >= m:
                raise IndexError("sparse column index out of range")
            fv = float(v)
            if fv == 0.0:
                continue
            by_col_value.setdefault((col, fv), []).append(i)
    jobs: list[tuple[int, int]] = []
    groups: list[list[int]] = []  # output-row lists, one per k-sized block
    for (col, v), out_rows_for_block in by_col_value.items():
        mant = enc_cache.get(v)
        if mant is None:
            mant = _encode_mantissa(public_key, v, PLAIN_EXPONENT)
            enc_cache[v] = mant
        base = col * k
        for j in range(k):
            jobs.append((cts[base + j], mant))
        groups.append(out_rows_for_block)
    powered = raw_mul_many(public_key, jobs, parallel)
    out = [1] * (len(rows) * k)
    pos = 0
    for out_rows_for_block in groups:
        block = powered[pos : pos + k]
        pos += k
        for i in out_rows_for_block:
            ob = i * k
            for j in range(k):
                out[ob + j] = (out[ob + j] * block[j]) % nsq
    return out, prod_exp


def sparse_t_matmul_flat(
    public_key,
    rows: Sequence[tuple[Sequence[int], Sequence[float]]],
    cts: Sequence[int],
    k: int,
    exponent: int,
    out_rows: int,
    col_to_out: dict[int, int] | None,
    parallel: ParallelContext | None = None,
) -> tuple[list[int], int]:
    """CSR ``X.T (m x batch) @ cipher (batch x k)`` in O(nnz * k) mulmods.

    Exponentiations are deduplicated per batch row: all columns of the row
    holding the same value (ubiquitous for binary features) share one
    powered cipher-row block.
    """
    nsq = public_key.nsquare
    prod_exp = exponent + PLAIN_EXPONENT
    enc_cache: dict[float, int] = {}
    jobs: list[tuple[int, int]] = []
    groups: list[list[int]] = []  # target output rows per k-sized job block
    for i, (cols, vals) in enumerate(rows):
        by_value: dict[float, list[int]] = {}
        for col, v in zip(cols, vals):
            col = int(col)
            if col_to_out is None:
                target = col
                if target >= out_rows:
                    raise IndexError("sparse column index out of range")
            else:
                if col not in col_to_out:
                    raise IndexError("batch touches a column outside `columns`")
                target = col_to_out[col]
            fv = float(v)
            if fv == 0.0:
                continue
            by_value.setdefault(fv, []).append(target)
        base = i * k
        for v, targets in by_value.items():
            mant = enc_cache.get(v)
            if mant is None:
                mant = _encode_mantissa(public_key, v, PLAIN_EXPONENT)
                enc_cache[v] = mant
            for j in range(k):
                jobs.append((cts[base + j], mant))
            groups.append(targets)
    powered = raw_mul_many(public_key, jobs, parallel)
    out = [1] * (out_rows * k)
    pos = 0
    for targets in groups:
        block = powered[pos : pos + k]
        pos += k
        for target in targets:
            ob = target * k
            for j in range(k):
                out[ob + j] = (out[ob + j] * block[j]) % nsq
    return out, prod_exp


# ---------------------------------------------------------------------------
# Scatter-add and obfuscation (no exponentiation — pure mulmod loops).


def scatter_add_flat(
    public_key,
    cts: Sequence[int],
    indices: Sequence[int],
    num_rows: int,
    dim: int,
    parallel: ParallelContext | None = None,
    obfuscate_empty: bool = True,
) -> list[int]:
    """Encrypted ``lkup_bw``: homomorphically sum batch rows into a table.

    ``dim`` is the number of ciphertexts per logical row — the column count
    for per-element tensors, or the (smaller) ciphertexts-per-row of a
    packed batch, which makes this the packed scatter-add kernel too: a
    lane-wise sum is the same mulmod either way.

    Untouched table rows would otherwise be the raw residue ``1`` — an
    unblinded, trivially recognisable encryption of zero that leaks exactly
    which rows the batch missed (i.e. the private categorical indices).
    ``obfuscate_empty`` (the default) multiplies *those* rows by fresh
    blinders from the key's pool; touched rows keep exactly their inputs'
    blinding (products of obfuscated inputs stay obfuscated — scatter
    unobfuscated inputs only if a masking step follows before the wire).
    Decoded values are unchanged.  Pass ``False`` only for in-process
    reference comparisons that never cross a party boundary.
    """
    nsq = public_key.nsquare
    out = [1] * (num_rows * dim)
    touched = bytearray(num_rows)
    for bi, r in enumerate(indices):
        r = int(r)
        touched[r] = 1
        ob = r * dim
        ib = bi * dim
        for j in range(dim):
            out[ob + j] = (out[ob + j] * cts[ib + j]) % nsq
    if obfuscate_empty:
        empty = [r for r in range(num_rows) if not touched[r]]
        if empty:
            blinders = public_key.blinding_factors(
                len(empty) * dim, parallel=_resolve(parallel)
            )
            pos = 0
            for r in empty:
                ob = r * dim
                for j in range(dim):
                    out[ob + j] = (out[ob + j] * blinders[pos]) % nsq
                    pos += 1
    return out


def obfuscate_flat(
    public_key,
    cts: Sequence[int],
    parallel: ParallelContext | None = None,
) -> list[int]:
    """Re-randomise a batch with blinders from the precomputed pool."""
    nsq = public_key.nsquare
    blinders = public_key.blinding_factors(len(cts), parallel=_resolve(parallel))
    return [(c * b) % nsq for c, b in zip(cts, blinders)]
