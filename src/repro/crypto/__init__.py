"""Cryptographic substrate: Paillier HE, fixed-point encoding, encrypted
tensors, additive secret sharing, and Beaver triples.

These are the privacy-preserving building blocks of §2.2 of the paper; the
federated source layers in :mod:`repro.core` are written entirely in terms
of this package.
"""

from repro.crypto.beaver import (
    BeaverTriple,
    ClientAidedDealer,
    PaillierTripleGenerator,
    beaver_matmul,
    decode_ring,
    encode_ring,
    share_ring,
)
from repro.crypto.crypto_tensor import (
    PLAIN_EXPONENT,
    TENSOR_EXPONENT,
    CryptoTensor,
    matmul_cipher_plain,
    matmul_plain_cipher,
    sparse_matmul_cipher,
    sparse_t_matmul_cipher,
)
from repro.crypto.encoding import EncodedNumber
from repro.crypto.packing import (
    PackedCryptoTensor,
    SlotLayout,
    pack_matmul_plain_cipher,
    pack_sparse_matmul_cipher,
    protocol_layout,
)
from repro.crypto.parallel import (
    ParallelContext,
    get_default_context,
    set_default_context,
    use_parallel,
)
from repro.crypto.paillier import (
    DEFAULT_BLINDING_LAMBDA,
    DEFAULT_KEY_BITS,
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
)
from repro.crypto.secret_sharing import (
    additive_share,
    he2ss_receive,
    he2ss_split,
    reconstruct,
    ss2he_combine,
    ss2he_send,
)

__all__ = [
    "BeaverTriple",
    "ClientAidedDealer",
    "PaillierTripleGenerator",
    "beaver_matmul",
    "decode_ring",
    "encode_ring",
    "share_ring",
    "CryptoTensor",
    "PackedCryptoTensor",
    "SlotLayout",
    "protocol_layout",
    "pack_matmul_plain_cipher",
    "pack_sparse_matmul_cipher",
    "TENSOR_EXPONENT",
    "PLAIN_EXPONENT",
    "matmul_plain_cipher",
    "matmul_cipher_plain",
    "sparse_matmul_cipher",
    "sparse_t_matmul_cipher",
    "ParallelContext",
    "get_default_context",
    "set_default_context",
    "use_parallel",
    "EncodedNumber",
    "EncryptedNumber",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "generate_paillier_keypair",
    "DEFAULT_KEY_BITS",
    "DEFAULT_BLINDING_LAMBDA",
    "additive_share",
    "reconstruct",
    "he2ss_split",
    "he2ss_receive",
    "ss2he_send",
    "ss2he_combine",
]
