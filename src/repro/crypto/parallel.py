"""Multicore execution engine for the flat ciphertext kernels.

The expensive step of every CryptoTensor primitive is a modular
exponentiation over ``Z_{n^2}`` — ``pow(c, m, n^2)`` for plaintext products
and ``pow(r, n, n^2)`` for obfuscation blinders.  Those exponentiations are
embarrassingly parallel and carry no shared state beyond the public modulus,
so :class:`ParallelContext` shards them across a ``multiprocessing`` pool:

* workers receive ``(n, n^2)`` **once**, through the pool initializer, and
  thereafter only chunks of integer limbs travel over the pipe;
* dispatch is threshold-gated (``min_jobs``): small tensors never pay the
  pickling/IPC tax and run serial, bit-identically to the parallel path;
* the pool is lazily created on first use and rebuilt if a different public
  key shows up, so one context can serve a whole training run.

Private worker tier (key custody)
---------------------------------
Decryption is just as embarrassingly parallel — two half-size CRT
exponentiations per ciphertext — but its shared state is the private key's
CRT constants ``(p, q, hp, hq, p_inverse)``.  Those are catastrophic to
leak: any party holding ``(p, q)`` can decrypt every ciphertext under the
key, so the BlindFL trust model confines them to the key-owning party.  The
*private* pool tier (:meth:`ParallelContext.crt_decrypt_many`) keeps that
custody boundary intact by construction:

* private workers are direct OS children of the calling process — which, to
  possess a :class:`~repro.crypto.paillier.PaillierPrivateKey` at all, must
  *be* the key owner;
* the CRT constants travel exactly once, through the pool initializer's
  ``initargs`` (a fork inheritance or a spawn pipe between a process and
  its own child — never a protocol :class:`~repro.comm.channel.Channel`,
  never the wire codec, which refuses to serialise private-key material
  outright);
* thereafter only ciphertext residue chunks cross the pipe, and only
  plaintext residues come back.

Private pools live in a separate dict from the public ones, keyed by the
public modulus, so a context serving both parties of an in-process
simulation still keeps each key's primes inside the pool that owns them.

A process-wide default context can be installed with
:func:`set_default_context` (or scoped with the :func:`use_parallel` context
manager, which the trainer uses); every kernel resolves ``parallel=None`` to
that default, so enabling multicore execution is a one-line config change.

The paper's CryptoTensor runs its GMP loops under OpenMP (§7.1); a process
pool is the CPython equivalent — the GIL never sees the inner loops because
each worker is its own interpreter.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
from typing import Iterator, Sequence

from repro.crypto.math_utils import invmod, powmod, powmod_base_many
from repro.obs import tracer as _obs

__all__ = [
    "ParallelContext",
    "get_default_context",
    "set_default_context",
    "use_parallel",
]

# ---------------------------------------------------------------------------
# Worker-side state and chunk kernels.
#
# Workers are initialised once per pool with the public modulus; every task
# afterwards is a plain list of integers.  The functions must live at module
# top level so the "spawn" start method can import them.

_W_N: int = 0
_W_NSQ: int = 0
_W_HALF: int = 0


def _init_worker(n: int, nsquare: int) -> None:
    global _W_N, _W_NSQ, _W_HALF
    _W_N = n
    _W_NSQ = nsquare
    _W_HALF = n // 2


def _raw_mul_chunk(pairs: Sequence[tuple[int, int]]) -> tuple[list[int], int]:
    """Chunk kernel: ``[(c, mantissa), ...] -> [c^mantissa mod n^2, ...]``.

    Mirrors ``PaillierPublicKey.raw_mul`` exactly (including the
    negative-mantissa ciphertext-inversion trick) so serial and parallel
    execution produce bit-identical ciphertexts.  Returns the results plus
    the chunk's modpow count (the 0/±1 shortcuts make it data-dependent)
    so the worker's counter delta rides the result pipe back to the
    parent, which attributes it to the span in flight there — worker
    processes never see the tracer.
    """
    n, nsq, half = _W_N, _W_NSQ, _W_HALF
    out = []
    append = out.append
    pows = 0
    for c, m in pairs:
        if m >= half:
            c = invmod(c, nsq)
            m = n - m
        if m == 0:
            append(1)
        elif m == 1:
            append(c)
        else:
            append(powmod(c, m, nsq))
            pows += 1
    return out, pows


def _pow_n_chunk(bases: Sequence[int]) -> list[int]:
    """Chunk kernel: obfuscation blinders ``r -> r^n mod n^2``."""
    n, nsq = _W_N, _W_NSQ
    return [powmod(r, n, nsq) for r in bases]


def _pow_base_chunk(args: tuple[int, Sequence[int]]) -> list[int]:
    """Chunk kernel: fixed-base pows ``x -> base^x mod n^2``.

    The λ-exponent blinding refill: every exponent shares the precomputed
    base ``h = r0^n``, so the base crosses the pipe once per chunk (not
    once per blinder) and the modular-arithmetic conversions hoist out of
    the loop on the gmpy2 fast path.
    """
    base, exps = args
    return powmod_base_many(base, exps, _W_NSQ)


# ---------------------------------------------------------------------------
# Private worker tier: CRT decryption.
#
# These workers hold the key owner's CRT constants.  They are initialised
# exactly once per pool via initargs (an OS pipe between this process and
# its own children — never a protocol Channel) and afterwards see only
# ciphertext residues.

_W_P: int = 0
_W_Q: int = 0
_W_PSQ: int = 0
_W_QSQ: int = 0
_W_HP: int = 0
_W_HQ: int = 0
_W_PINV: int = 0


def _init_private_worker(p: int, q: int, hp: int, hq: int, p_inverse: int) -> None:
    global _W_P, _W_Q, _W_PSQ, _W_QSQ, _W_HP, _W_HQ, _W_PINV
    _W_P = p
    _W_Q = q
    _W_PSQ = p * p
    _W_QSQ = q * q
    _W_HP = hp
    _W_HQ = hq
    _W_PINV = p_inverse


def _crt_decrypt_chunk(cts: Sequence[int]) -> tuple[list[int], int]:
    """Chunk kernel: raw CRT decryptions ``c -> m`` with ``m in [0, p*q)``.

    Mirrors ``PaillierPrivateKey.raw_decrypt`` exactly (same Paillier-CRT
    recombination) so serial and parallel decryption produce bit-identical
    plaintext residues.  The second element is the chunk's half-size
    modpow count (two per ciphertext), reported like ``_raw_mul_chunk``'s.
    """
    p, q = _W_P, _W_Q
    psq, qsq = _W_PSQ, _W_QSQ
    hp, hq, p_inv = _W_HP, _W_HQ, _W_PINV
    pm1, qm1 = p - 1, q - 1
    out = []
    append = out.append
    for c in cts:
        mp = ((powmod(c, pm1, psq) - 1) // p * hp) % p
        mq = ((powmod(c, qm1, qsq) - 1) // q * hq) % q
        append(mp + ((mq - mp) * p_inv % q) * p)
    return out, 2 * len(out)


class ParallelContext:
    """A threshold-gated multiprocessing pool for kernel exponentiations.

    Args:
        workers: process count; defaults to the CPU count.
        min_jobs: below this many exponentiations a call stays serial
            (IPC would dominate); tuned for ~256-bit keys, conservative for
            longer ones where each pow is worth far more than its pickle.
        start_method: multiprocessing start method; defaults to ``fork``
            where available (cheap, inherits the interpreter) else
            ``spawn``.
    """

    def __init__(
        self,
        workers: int | None = None,
        min_jobs: int = 512,
        start_method: str | None = None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.min_jobs = min_jobs
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._start_method = start_method
        # One warm pool per modulus: two-party protocols interleave kernels
        # under both parties' keys every batch, and rebuilding a pool on each
        # key switch would cost more than the exponentiations it shards.
        # Federations have a handful of keys, so the dict stays tiny.
        self._pools: dict[int, object] = {}
        # Private decrypt pools, keyed by public modulus.  Kept apart from
        # the public pools: their workers were initialised with the key
        # owner's CRT primes and must never be handed public-key work under
        # a different key (nor vice versa).
        self._private_pools: dict[int, object] = {}

    # -- pool plumbing -------------------------------------------------------

    def should_parallelize(self, n_jobs: int) -> bool:
        return self.workers >= 2 and n_jobs >= self.min_jobs

    def _ensure_pool(self, n: int, nsquare: int):
        pool = self._pools.get(n)
        if pool is None:
            ctx = multiprocessing.get_context(self._start_method)
            pool = ctx.Pool(
                self.workers, initializer=_init_worker, initargs=(n, nsquare)
            )
            self._pools[n] = pool
        return pool

    def _ensure_private_pool(self, private_key):
        """A decrypt pool whose workers hold ``private_key``'s CRT constants.

        The constants ship exactly once, via ``initargs`` — a fork
        inheritance or spawn pipe from this process to its own OS children.
        A process can only reach this code while holding the private-key
        *object*, i.e. while being the key-owning party; the wire codec
        refuses to serialise that object, so the primes cannot have crossed
        a protocol channel to get here.
        """
        n = private_key.public_key.n
        pool = self._private_pools.get(n)
        if pool is None:
            ctx = multiprocessing.get_context(self._start_method)
            pool = ctx.Pool(
                self.workers,
                initializer=_init_private_worker,
                initargs=private_key.crt_params,
            )
            self._private_pools[n] = pool
        return pool

    def _chunks(self, items: Sequence, n_chunks: int) -> list[Sequence]:
        size = max(1, (len(items) + n_chunks - 1) // n_chunks)
        return [items[i : i + size] for i in range(0, len(items), size)]

    def _map(self, fn, public_key, items: Sequence) -> list[int]:
        pool = self._ensure_pool(public_key.n, public_key.nsquare)
        chunks = self._chunks(items, self.workers * 4)
        out: list[int] = []
        for part in pool.map(fn, chunks):
            out.extend(part)
        return out

    # -- kernel entry points -------------------------------------------------

    def raw_mul_many(self, public_key, pairs: Sequence[tuple[int, int]]) -> list[int]:
        """Parallel ``c^m mod n^2`` over ``(ciphertext, mantissa)`` pairs.

        Each worker returns its chunk's modpow count alongside the
        residues; the aggregated delta is attributed to the current span
        *here*, in the parent, so serial and parallel runs count
        identically.
        """
        pool = self._ensure_pool(public_key.n, public_key.nsquare)
        chunks = self._chunks(pairs, self.workers * 4)
        out: list[int] = []
        pows = 0
        for part, chunk_pows in pool.map(_raw_mul_chunk, chunks):
            out.extend(part)
            pows += chunk_pows
        if pows:
            trc = _obs.get_tracer()
            if trc is not None:
                trc.add("pow.mul", pows)
        return out

    def pow_n_many(self, public_key, bases: Sequence[int]) -> list[int]:
        """Parallel obfuscation blinders ``r^n mod n^2``."""
        return self._map(_pow_n_chunk, public_key, bases)

    def pow_base_many(self, public_key, base: int, exps: Sequence[int]) -> list[int]:
        """Parallel fixed-base ``base^x mod n^2`` (λ-shortcut blinders)."""
        pool = self._ensure_pool(public_key.n, public_key.nsquare)
        out: list[int] = []
        for part in pool.map(
            _pow_base_chunk,
            [(base, chunk) for chunk in self._chunks(exps, self.workers * 4)],
        ):
            out.extend(part)
        return out

    def crt_decrypt_many(self, private_key, cts: Sequence[int]) -> list[int]:
        """Parallel raw CRT decryptions over the *private* worker tier.

        Returns plaintext residues in ``[0, n)``, bit-identical to a serial
        ``raw_decrypt`` loop.  Only the key-owning process can call this —
        it requires the live private-key object — and the primes never
        leave that process except to its own pool children.
        """
        pool = self._ensure_private_pool(private_key)
        chunks = self._chunks(cts, self.workers * 4)
        out: list[int] = []
        pows = 0
        for part, chunk_pows in pool.map(_crt_decrypt_chunk, chunks):
            out.extend(part)
            pows += chunk_pows
        if out:
            trc = _obs.get_tracer()
            if trc is not None:
                trc.add("pow.crt", pows)
                trc.add("ct.decrypted", len(out))
        return out

    def close(self) -> None:
        for pools in (self._pools, self._private_pools):
            for pool in pools.values():
                pool.terminate()
                pool.join()
            pools.clear()

    def __enter__(self) -> "ParallelContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ParallelContext(workers={self.workers}, min_jobs={self.min_jobs})"


# ---------------------------------------------------------------------------
# Process-wide default context.

_DEFAULT_CONTEXT: ParallelContext | None = None


def get_default_context() -> ParallelContext | None:
    """The context kernels fall back to when called with ``parallel=None``."""
    return _DEFAULT_CONTEXT


def set_default_context(ctx: ParallelContext | None) -> ParallelContext | None:
    """Install (or clear) the process-wide default; returns the previous one."""
    global _DEFAULT_CONTEXT
    previous = _DEFAULT_CONTEXT
    _DEFAULT_CONTEXT = ctx
    return previous


@contextlib.contextmanager
def use_parallel(ctx: ParallelContext | None) -> Iterator[ParallelContext | None]:
    """Scope a default context: installed on entry, restored (and the pool
    closed) on exit.  ``use_parallel(None)`` forces serial execution inside."""
    previous = set_default_context(ctx)
    try:
        yield ctx
    finally:
        set_default_context(previous)
        if ctx is not None:
            ctx.close()
