"""CryptoTensor: vectorised operations over tensors of Paillier ciphertexts.

The paper's implementation section (§7.1) introduces "an abstraction called
CryptoTensor, which supports fruitful primitives for both dense and sparse
computation of encrypted tensors such as matrix multiplication and scatter
addition".  This module is that abstraction.

Supported primitives (all additively homomorphic, so one side of every
product is plaintext):

* elementwise ``+``, ``-``, negation, multiplication by plaintext scalars
  and arrays;
* ``plain @ cipher`` and ``cipher @ plain`` matrix products with
  **zero-skipping** — zero plaintext entries contribute no modular
  exponentiation, which is the sparsity speed-up BlindFL's Table 5 is
  about;
* row lookup (``take_rows``) — the encrypted embedding-table lookup of the
  Embed-MatMul layer;
* scatter addition (``scatter_add_rows``) — the encrypted ``lkup_bw``.

Plaintext operands may be dense numpy arrays or any object exposing
``iter_rows() -> (col_indices, values)`` per row (our CSR matrices), so
sparse datasets never materialise their zeros.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.crypto.encoding import EncodedNumber
from repro.crypto.paillier import EncryptedNumber, PaillierPrivateKey, PaillierPublicKey

__all__ = [
    "CryptoTensor",
    "TENSOR_EXPONENT",
    "PLAIN_EXPONENT",
    "sparse_t_matmul_cipher",
]

# Uniform fixed-point exponents: encrypted tensors carry ~2**-40 resolution,
# plaintext multipliers ~2**-32.  Products land at 2**-72, far inside the
# plaintext bound of even the shortest supported keys.
TENSOR_EXPONENT = -40
PLAIN_EXPONENT = -32


class CryptoTensor:
    """A 1-D or 2-D numpy object-array of :class:`EncryptedNumber`."""

    # Make numpy defer all mixed operations to our reflected methods.
    __array_ufunc__ = None
    __array_priority__ = 1000

    __slots__ = ("public_key", "data")

    def __init__(self, public_key: PaillierPublicKey, data: np.ndarray):
        if data.dtype != object:
            raise TypeError("CryptoTensor wraps an object-dtype array")
        self.public_key = public_key
        self.data = data

    # -- construction ---------------------------------------------------------

    @classmethod
    def encrypt(
        cls,
        public_key: PaillierPublicKey,
        array: np.ndarray,
        exponent: int = TENSOR_EXPONENT,
        obfuscate: bool = True,
    ) -> "CryptoTensor":
        """Encrypt a float array elementwise at a uniform exponent."""
        array = np.asarray(array, dtype=np.float64)
        flat = array.ravel()
        out = np.empty(flat.shape[0], dtype=object)
        for i, value in enumerate(flat):
            out[i] = public_key.encrypt(
                float(value), exponent=exponent, obfuscate=obfuscate
            )
        return cls(public_key, out.reshape(array.shape))

    @classmethod
    def zeros(
        cls,
        public_key: PaillierPublicKey,
        shape: tuple[int, ...],
        exponent: int = TENSOR_EXPONENT,
    ) -> "CryptoTensor":
        """Unobfuscated encryptions of zero (cheap accumulator seeds)."""
        out = np.empty(shape, dtype=object)
        flat = out.ravel()
        for i in range(flat.shape[0]):
            flat[i] = public_key.encrypt_zero(exponent)
        return cls(public_key, flat.reshape(shape))

    def decrypt(self, private_key: PaillierPrivateKey) -> np.ndarray:
        """Decrypt elementwise back to float64."""
        flat = self.data.ravel()
        out = np.empty(flat.shape[0], dtype=np.float64)
        for i, enc in enumerate(flat):
            out[i] = private_key.decrypt(enc)
        return out.reshape(self.data.shape)

    # -- shape plumbing --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "CryptoTensor":
        return CryptoTensor(self.public_key, self.data.T)

    def reshape(self, *shape: int) -> "CryptoTensor":
        return CryptoTensor(self.public_key, self.data.reshape(*shape))

    def __getitem__(self, key: object) -> "CryptoTensor | EncryptedNumber":
        item = self.data[key]
        if isinstance(item, np.ndarray):
            return CryptoTensor(self.public_key, item)
        return item

    def take_rows(self, indices: np.ndarray) -> "CryptoTensor":
        """Encrypted-table lookup: gather rows by plaintext indices."""
        if self.data.ndim != 2:
            raise ValueError("take_rows needs a 2-D tensor")
        return CryptoTensor(self.public_key, self.data[np.asarray(indices, dtype=int)])

    # -- elementwise arithmetic -----------------------------------------------

    def _binary(self, other: object, op: str) -> "CryptoTensor":
        if isinstance(other, CryptoTensor):
            other_arr: np.ndarray = other.data
        elif isinstance(other, (int, float)):
            other_arr = np.full(self.data.shape, float(other), dtype=np.float64)
        else:
            other_arr = np.asarray(other, dtype=np.float64)
            other_arr = np.broadcast_to(other_arr, self.data.shape)
        if other_arr.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch: {self.data.shape} vs {other_arr.shape}"
            )
        flat_a = self.data.ravel()
        flat_b = other_arr.ravel()
        out = np.empty(flat_a.shape[0], dtype=object)
        if op == "add":
            for i in range(out.shape[0]):
                b = flat_b[i]
                out[i] = flat_a[i] + (b if isinstance(b, EncryptedNumber) else float(b))
        elif op == "sub":
            for i in range(out.shape[0]):
                b = flat_b[i]
                out[i] = flat_a[i] - (b if isinstance(b, EncryptedNumber) else float(b))
        elif op == "mul":
            for i in range(out.shape[0]):
                encoded = EncodedNumber.encode(
                    self.public_key, float(flat_b[i]), exponent=PLAIN_EXPONENT
                )
                out[i] = flat_a[i] * encoded
        else:  # pragma: no cover - internal misuse
            raise ValueError(op)
        return CryptoTensor(self.public_key, out.reshape(self.data.shape))

    def __add__(self, other: object) -> "CryptoTensor":
        return self._binary(other, "add")

    __radd__ = __add__

    def __sub__(self, other: object) -> "CryptoTensor":
        return self._binary(other, "sub")

    def __rsub__(self, other: object) -> "CryptoTensor":
        return (-self) + other

    def __neg__(self) -> "CryptoTensor":
        return self * -1.0

    def __mul__(self, other: object) -> "CryptoTensor":
        if isinstance(other, CryptoTensor):
            raise TypeError("cannot multiply two ciphertext tensors under Paillier")
        return self._binary(other, "mul")

    __rmul__ = __mul__

    # -- matrix products --------------------------------------------------------

    def __matmul__(self, plain: object) -> "CryptoTensor":
        """``cipher @ plain`` — e.g. ``[[grad_Z]] @ U.T`` in Embed-MatMul."""
        return _matmul_cipher_plain(self, np.asarray(plain, dtype=np.float64))

    def __rmatmul__(self, plain: object) -> "CryptoTensor":
        """``plain @ cipher`` — e.g. ``X_A @ [[V_A]]`` in MatMul forward."""
        if hasattr(plain, "iter_rows"):
            return _matmul_sparse_cipher(plain, self)
        return _matmul_plain_cipher(np.asarray(plain, dtype=np.float64), self)

    def scatter_add_rows(self, indices: np.ndarray, num_rows: int) -> "CryptoTensor":
        """Encrypted ``lkup_bw``: scatter batch rows into a table.

        ``self`` is a (batch, dim) ciphertext tensor and ``indices`` the
        plaintext row ids; the result is a (num_rows, dim) tensor whose row
        ``r`` is the homomorphic sum of all batch rows with index ``r`` (and
        an encryption of zero where no batch row landed).
        """
        if self.data.ndim != 2:
            raise ValueError("scatter_add_rows needs a 2-D tensor")
        indices = np.asarray(indices, dtype=int)
        if indices.shape[0] != self.data.shape[0]:
            raise ValueError("one index per batch row required")
        if indices.size and (indices.min() < 0 or indices.max() >= num_rows):
            raise IndexError("scatter index out of range")
        dim = self.data.shape[1]
        exponent = _common_exponent(self.data)
        out = CryptoTensor.zeros(self.public_key, (num_rows, dim), exponent).data
        for batch_row, table_row in enumerate(indices):
            for j in range(dim):
                out[table_row, j] = out[table_row, j] + self.data[batch_row, j]
        return CryptoTensor(self.public_key, out)

    def obfuscate(self) -> "CryptoTensor":
        """Re-randomise every ciphertext (used before leaving the party)."""
        flat = self.data.ravel()
        out = np.empty(flat.shape[0], dtype=object)
        for i, enc in enumerate(flat):
            out[i] = enc.obfuscate()
        return CryptoTensor(self.public_key, out.reshape(self.data.shape))

    @staticmethod
    def vstack(tensors: Iterable["CryptoTensor"]) -> "CryptoTensor":
        tensors = list(tensors)
        pk = tensors[0].public_key
        return CryptoTensor(pk, np.vstack([t.data for t in tensors]))

    @staticmethod
    def hstack(tensors: Iterable["CryptoTensor"]) -> "CryptoTensor":
        tensors = list(tensors)
        pk = tensors[0].public_key
        return CryptoTensor(pk, np.hstack([t.data for t in tensors]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CryptoTensor(shape={self.data.shape})"


def _common_exponent(data: np.ndarray) -> int:
    return min(enc.exponent for enc in data.ravel())


def _encode_matrix(pk: PaillierPublicKey, arr: np.ndarray) -> np.ndarray:
    """Pre-encode a plaintext matrix once so products reuse the encodings."""
    flat = arr.ravel()
    out = np.empty(flat.shape[0], dtype=object)
    for i, value in enumerate(flat):
        out[i] = EncodedNumber.encode(pk, float(value), exponent=PLAIN_EXPONENT)
    return out.reshape(arr.shape)


def _matmul_plain_cipher(plain: np.ndarray, ct: CryptoTensor) -> CryptoTensor:
    """Dense ``plain (s x m) @ cipher (m x k)`` with zero-skipping."""
    plain = np.atleast_2d(plain)
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(-1, 1)
    s, m = plain.shape
    m2, k = cdata.shape
    if m != m2:
        raise ValueError(f"matmul shape mismatch: ({s},{m}) @ ({m2},{k})")
    pk = ct.public_key
    prod_exp = _common_exponent(cdata) + PLAIN_EXPONENT
    encoded = _encode_matrix(pk, plain)
    out = np.empty((s, k), dtype=object)
    for i in range(s):
        row = plain[i]
        nz = np.nonzero(row)[0]
        for j in range(k):
            acc = pk.encrypt_zero(prod_exp)
            for t in nz:
                acc = acc + (cdata[t, j] * encoded[i, t])
            out[i, j] = acc
    return CryptoTensor(pk, out)


def _matmul_sparse_cipher(sparse: object, ct: CryptoTensor) -> CryptoTensor:
    """CSR ``plain @ cipher``: cost proportional to nnz, never touches zeros."""
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(-1, 1)
    m2, k = cdata.shape
    pk = ct.public_key
    prod_exp = _common_exponent(cdata) + PLAIN_EXPONENT
    rows = list(sparse.iter_rows())
    out = np.empty((len(rows), k), dtype=object)
    for i, (cols, vals) in enumerate(rows):
        encoded_vals = [
            EncodedNumber.encode(pk, float(v), exponent=PLAIN_EXPONENT) for v in vals
        ]
        for j in range(k):
            acc = pk.encrypt_zero(prod_exp)
            for col, enc_val in zip(cols, encoded_vals):
                if col >= m2:
                    raise IndexError("sparse column index out of range")
                acc = acc + (cdata[col, j] * enc_val)
            out[i, j] = acc
    return CryptoTensor(pk, out)


def sparse_t_matmul_cipher(
    sparse: object, ct: CryptoTensor, columns: np.ndarray | None = None
) -> CryptoTensor:
    """``sparse.T @ cipher`` in O(nnz * k) — the X^T [[grad_Z]] of backprop.

    ``sparse`` is (batch, m) CSR, ``ct`` is (batch, k) ciphertext; the result
    is (m, k).  With ``columns`` given (sorted unique column ids), only those
    rows of the result are produced, shaped (len(columns), k) — the
    sparse-aware "touched coordinates" path of the delta refresh mode.
    """
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(-1, 1)
    batch, k = cdata.shape
    n_rows, m = sparse.shape
    if n_rows != batch:
        raise ValueError(f"t_matmul shape mismatch: {sparse.shape}.T @ ({batch},{k})")
    pk = ct.public_key
    prod_exp = _common_exponent(cdata) + PLAIN_EXPONENT
    if columns is None:
        out_rows = m
        col_to_out = None
    else:
        columns = np.asarray(columns, dtype=np.int64)
        out_rows = columns.shape[0]
        col_to_out = {int(c): i for i, c in enumerate(columns)}
    out = np.empty((out_rows, k), dtype=object)
    for i in range(out_rows):
        for j in range(k):
            out[i, j] = pk.encrypt_zero(prod_exp)
    for i, (cols, vals) in enumerate(sparse.iter_rows()):
        for col, val in zip(cols, vals):
            if col_to_out is None:
                target = int(col)
            elif int(col) in col_to_out:
                target = col_to_out[int(col)]
            else:
                raise IndexError("batch touches a column outside `columns`")
            encoded = EncodedNumber.encode(pk, float(val), exponent=PLAIN_EXPONENT)
            for j in range(k):
                out[target, j] = out[target, j] + (cdata[i, j] * encoded)
    return CryptoTensor(pk, out)


def _matmul_cipher_plain(ct: CryptoTensor, plain: np.ndarray) -> CryptoTensor:
    """Dense ``cipher (s x m) @ plain (m x k)`` with zero-skipping."""
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(1, -1)
    plain = np.atleast_2d(plain)
    s, m = cdata.shape
    m2, k = plain.shape
    if m != m2:
        raise ValueError(f"matmul shape mismatch: ({s},{m}) @ ({m2},{k})")
    pk = ct.public_key
    prod_exp = _common_exponent(cdata) + PLAIN_EXPONENT
    encoded = _encode_matrix(pk, plain)
    out = np.empty((s, k), dtype=object)
    for j in range(k):
        nz = np.nonzero(plain[:, j])[0]
        for i in range(s):
            acc = pk.encrypt_zero(prod_exp)
            for t in nz:
                acc = acc + (cdata[i, t] * encoded[t, j])
            out[i, j] = acc
    return CryptoTensor(pk, out)
