"""CryptoTensor: batched operations over tensors of Paillier ciphertexts.

The paper's implementation section (§7.1) introduces "an abstraction called
CryptoTensor, which supports fruitful primitives for both dense and sparse
computation of encrypted tensors such as matrix multiplication and scatter
addition", backed by a multi-threaded GMP kernel library.  This module is
that abstraction; since the flat-kernel refactor it is a thin object-array
facade over :mod:`repro.crypto.kernels`, which does all real work on flat
``list[int]`` ciphertext batches:

* every primitive — encrypt, CRT decrypt, elementwise ``+``/``-``/``*``,
  both matmul orientations, sparse ``X.T @ cipher``, ``scatter_add_rows``
  and re-randomisation — lowers the tensor to raw residues, runs an
  allocation-free integer loop, and wraps :class:`EncryptedNumber` objects
  only around the *outputs*;
* matmuls deduplicate modular exponentiations by distinct plaintext value
  (the kernel's raw-mul cache), so binary/categorical features cost one
  ``pow`` per ciphertext element instead of one per nonzero — the sparsity
  speed-up BlindFL's Table 5 is about, compounded;
* obfuscation draws ``r^n`` blinders from the public key's precomputed
  pool (see ``PaillierPublicKey.prefill_blinding``);
* exponentiation-heavy kernels shard across a
  :class:`~repro.crypto.parallel.ParallelContext` when one is passed in
  (or installed as the process default) — the multicore execution engine.

Plaintext operands may be dense numpy arrays or any object exposing
``iter_rows() -> (col_indices, values)`` per row (our CSR matrices), so
sparse datasets never materialise their zeros.

The pre-kernel, per-``EncryptedNumber`` implementations are kept as
``legacy_*`` functions: they are the reference the equivalence tests pin
the kernels against and the baseline the benchmark suite measures speedups
over.  New code should never call them.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.crypto import kernels
from repro.crypto.encoding import EncodedNumber
from repro.crypto.kernels import PLAIN_EXPONENT, TENSOR_EXPONENT
from repro.crypto.paillier import EncryptedNumber, PaillierPrivateKey, PaillierPublicKey
from repro.crypto.parallel import ParallelContext

__all__ = [
    "CryptoTensor",
    "TENSOR_EXPONENT",
    "PLAIN_EXPONENT",
    "matmul_plain_cipher",
    "matmul_cipher_plain",
    "sparse_matmul_cipher",
    "sparse_t_matmul_cipher",
    "legacy_encrypt",
    "legacy_matmul_plain_cipher",
    "legacy_matmul_cipher_plain",
    "legacy_matmul_sparse_cipher",
    "legacy_sparse_t_matmul_cipher",
    "legacy_scatter_add_rows",
    "legacy_obfuscate",
]


def _flat_parts(data: np.ndarray) -> tuple[list[int], list[int]]:
    """Lower an object array to (ciphertexts, exponents) flat lists."""
    flat = data.ravel()
    cts = [enc.ciphertext for enc in flat]
    exps = [enc.exponent for enc in flat]
    return cts, exps


def _wrap(
    public_key: PaillierPublicKey,
    cts: list[int],
    exponent: int | list[int],
    shape: tuple[int, ...],
) -> np.ndarray:
    """Raise a flat ciphertext batch back into an EncryptedNumber array."""
    out = np.empty(len(cts), dtype=object)
    if isinstance(exponent, int):
        for i, c in enumerate(cts):
            out[i] = EncryptedNumber(public_key, c, exponent)
    else:
        for i, (c, e) in enumerate(zip(cts, exponent)):
            out[i] = EncryptedNumber(public_key, c, e)
    return out.reshape(shape)


class CryptoTensor:
    """A 1-D or 2-D numpy object-array of :class:`EncryptedNumber`."""

    # Make numpy defer all mixed operations to our reflected methods.
    __array_ufunc__ = None
    __array_priority__ = 1000

    __slots__ = ("public_key", "data")

    def __init__(self, public_key: PaillierPublicKey, data: np.ndarray):
        if data.dtype != object:
            raise TypeError("CryptoTensor wraps an object-dtype array")
        self.public_key = public_key
        self.data = data

    # -- construction ---------------------------------------------------------

    @classmethod
    def encrypt(
        cls,
        public_key: PaillierPublicKey,
        array: np.ndarray,
        exponent: int = TENSOR_EXPONENT,
        obfuscate: bool = True,
        parallel: ParallelContext | None = None,
    ) -> "CryptoTensor":
        """Encrypt a float array elementwise at a uniform exponent."""
        array = np.asarray(array, dtype=np.float64)
        cts = kernels.encrypt_flat(
            public_key, array.ravel(), exponent, obfuscate=obfuscate, parallel=parallel
        )
        return cls(public_key, _wrap(public_key, cts, exponent, array.shape))

    @classmethod
    def zeros(
        cls,
        public_key: PaillierPublicKey,
        shape: tuple[int, ...],
        exponent: int = TENSOR_EXPONENT,
    ) -> "CryptoTensor":
        """Unobfuscated encryptions of zero (cheap accumulator seeds)."""
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return cls(public_key, _wrap(public_key, [1] * size, exponent, shape))

    def decrypt(
        self,
        private_key: PaillierPrivateKey,
        parallel: ParallelContext | None = None,
    ) -> np.ndarray:
        """Decrypt elementwise back to float64 (batched CRT kernel).

        With a :class:`~repro.crypto.parallel.ParallelContext` configured
        (explicitly or as the process default), the CRT exponentiations
        shard across the key owner's private worker tier, bit-identically.
        """
        if private_key.public_key != self.public_key:
            raise ValueError("ciphertext was encrypted under a different key")
        cts, exps = _flat_parts(self.data)
        return kernels.decrypt_flat(private_key, cts, exps, parallel).reshape(
            self.data.shape
        )

    # -- shape plumbing --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "CryptoTensor":
        return CryptoTensor(self.public_key, self.data.T)

    def reshape(self, *shape: int) -> "CryptoTensor":
        return CryptoTensor(self.public_key, self.data.reshape(*shape))

    def __getitem__(self, key: object) -> "CryptoTensor | EncryptedNumber":
        item = self.data[key]
        if isinstance(item, np.ndarray):
            return CryptoTensor(self.public_key, item)
        return item

    def take_rows(self, indices: np.ndarray) -> "CryptoTensor":
        """Encrypted-table lookup: gather rows by plaintext indices."""
        if self.data.ndim != 2:
            raise ValueError("take_rows needs a 2-D tensor")
        return CryptoTensor(self.public_key, self.data[np.asarray(indices, dtype=int)])

    # -- elementwise arithmetic -----------------------------------------------

    def _binary(self, other: object, op: str) -> "CryptoTensor":
        pk = self.public_key
        cts, exps = _flat_parts(self.data)
        if isinstance(other, CryptoTensor):
            if other.public_key != pk:
                raise ValueError("cannot add ciphertexts under different keys")
            if other.data.shape != self.data.shape:
                raise ValueError(
                    f"shape mismatch: {self.data.shape} vs {other.data.shape}"
                )
            o_cts, o_exps = _flat_parts(other.data)
            if op == "add":
                out, oexps = kernels.add_cipher_flat(pk, cts, exps, o_cts, o_exps)
            elif op == "sub":
                out, oexps = kernels.sub_cipher_flat(pk, cts, exps, o_cts, o_exps)
            else:
                raise TypeError("cannot multiply two ciphertext tensors under Paillier")
            return CryptoTensor(pk, _wrap(pk, out, oexps, self.data.shape))
        if isinstance(other, (int, float)):
            other_arr = np.full(self.data.shape, float(other), dtype=np.float64)
        else:
            other_arr = np.asarray(other, dtype=np.float64)
            other_arr = np.broadcast_to(other_arr, self.data.shape)
        if other_arr.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch: {self.data.shape} vs {other_arr.shape}"
            )
        values = other_arr.ravel()
        if op == "add":
            out, oexps = kernels.add_plain_flat(pk, cts, exps, values)
        elif op == "sub":
            out, oexps = kernels.add_plain_flat(pk, cts, exps, -values)
        elif op == "mul":
            out, oexps = kernels.mul_plain_flat(pk, cts, exps, values)
        else:  # pragma: no cover - internal misuse
            raise ValueError(op)
        return CryptoTensor(pk, _wrap(pk, out, oexps, self.data.shape))

    def __add__(self, other: object) -> "CryptoTensor":
        return self._binary(other, "add")

    __radd__ = __add__

    def __sub__(self, other: object) -> "CryptoTensor":
        return self._binary(other, "sub")

    def __rsub__(self, other: object) -> "CryptoTensor":
        return (-self) + other

    def __neg__(self) -> "CryptoTensor":
        return self * -1.0

    def __mul__(self, other: object) -> "CryptoTensor":
        if isinstance(other, CryptoTensor):
            raise TypeError("cannot multiply two ciphertext tensors under Paillier")
        return self._binary(other, "mul")

    __rmul__ = __mul__

    # -- matrix products --------------------------------------------------------

    def __matmul__(self, plain: object) -> "CryptoTensor":
        """``cipher @ plain`` — e.g. ``[[grad_Z]] @ U.T`` in Embed-MatMul."""
        return matmul_cipher_plain(self, np.asarray(plain, dtype=np.float64))

    def __rmatmul__(self, plain: object) -> "CryptoTensor":
        """``plain @ cipher`` — e.g. ``X_A @ [[V_A]]`` in MatMul forward."""
        if hasattr(plain, "iter_rows"):
            return sparse_matmul_cipher(plain, self)
        return matmul_plain_cipher(np.asarray(plain, dtype=np.float64), self)

    def scatter_add_rows(
        self,
        indices: np.ndarray,
        num_rows: int,
        parallel: ParallelContext | None = None,
        obfuscate_empty: bool = True,
    ) -> "CryptoTensor":
        """Encrypted ``lkup_bw``: scatter batch rows into a table.

        ``self`` is a (batch, dim) ciphertext tensor and ``indices`` the
        plaintext row ids; the result is a (num_rows, dim) tensor whose row
        ``r`` is the homomorphic sum of all batch rows with index ``r``.
        Rows no batch row landed on are *blinded* encryptions of zero —
        never the raw residue ``1``, which would advertise exactly which
        table rows the private indices missed (``obfuscate_empty=False``
        is for in-process reference comparisons only).
        """
        if self.data.ndim != 2:
            raise ValueError("scatter_add_rows needs a 2-D tensor")
        indices = np.asarray(indices, dtype=int)
        if indices.shape[0] != self.data.shape[0]:
            raise ValueError("one index per batch row required")
        if indices.size and (indices.min() < 0 or indices.max() >= num_rows):
            raise IndexError("scatter index out of range")
        dim = self.data.shape[1]
        pk = self.public_key
        cts, exps = _flat_parts(self.data)
        acts, exp = kernels.align_flat(pk, cts, exps)
        out = kernels.scatter_add_flat(
            pk, acts, indices.tolist(), num_rows, dim,
            parallel=parallel, obfuscate_empty=obfuscate_empty,
        )
        return CryptoTensor(pk, _wrap(pk, out, exp, (num_rows, dim)))

    def obfuscate(self, parallel: ParallelContext | None = None) -> "CryptoTensor":
        """Re-randomise every ciphertext (used before leaving the party)."""
        cts, exps = _flat_parts(self.data)
        out = kernels.obfuscate_flat(self.public_key, cts, parallel=parallel)
        return CryptoTensor(
            self.public_key, _wrap(self.public_key, out, exps, self.data.shape)
        )

    def pack(
        self,
        layout: object,
        value_bits: int | None = None,
        parallel: ParallelContext | None = None,
        contiguous: bool = False,
    ) -> "object":
        """Pack ``slots`` values per ciphertext (see :mod:`repro.crypto.packing`).

        The homomorphic rotate/scatter kernel shifts each element into its
        lane, cutting ciphertext count and wire bytes by the layout's slot
        factor; decryption of the packed tensor decodes bit-identically.
        ``contiguous=True`` packs one dense row-major lane stream
        (transfer-only tensors; no row ops afterwards).
        """
        from repro.crypto.packing import PackedCryptoTensor

        return PackedCryptoTensor.pack(
            self, layout, value_bits=value_bits, parallel=parallel,
            contiguous=contiguous,
        )

    # -- wire format ----------------------------------------------------------

    def to_wire(self) -> tuple[tuple[int, ...], list[int], int | list[int]]:
        """``(shape, ciphertexts, exponents)`` for the wire codec.

        Exponents collapse to a single int when uniform (the overwhelmingly
        common case — kernels emit aligned batches), so the wire header
        stays O(1) instead of O(size).
        """
        cts, exps = _flat_parts(self.data)
        first = exps[0] if exps else TENSOR_EXPONENT
        uniform = all(e == first for e in exps)
        return self.data.shape, cts, (first if uniform else exps)

    @classmethod
    def from_wire(
        cls,
        public_key: PaillierPublicKey,
        shape: tuple[int, ...],
        cts: list[int],
        exponents: int | list[int],
    ) -> "CryptoTensor":
        """Rebuild a tensor from wire fields (inverse of :meth:`to_wire`)."""
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if len(cts) != size:
            raise ValueError(
                f"wire tensor carries {len(cts)} ciphertexts for shape {shape}"
            )
        if not isinstance(exponents, int) and len(exponents) != size:
            raise ValueError("wire tensor exponent count does not match its shape")
        return cls(public_key, _wrap(public_key, cts, exponents, tuple(shape)))

    @staticmethod
    def vstack(tensors: Iterable["CryptoTensor"]) -> "CryptoTensor":
        tensors = list(tensors)
        pk = tensors[0].public_key
        return CryptoTensor(pk, np.vstack([t.data for t in tensors]))

    @staticmethod
    def hstack(tensors: Iterable["CryptoTensor"]) -> "CryptoTensor":
        tensors = list(tensors)
        pk = tensors[0].public_key
        return CryptoTensor(pk, np.hstack([t.data for t in tensors]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CryptoTensor(shape={self.data.shape})"


# ---------------------------------------------------------------------------
# Kernel-backed matrix products.  The explicit functions exist so protocol
# code can thread a ParallelContext; the ``@`` operators route here with the
# process default.


def _aligned_flat(ct: CryptoTensor, cdata: np.ndarray) -> tuple[list[int], int]:
    cts, exps = _flat_parts(cdata)
    return kernels.align_flat(ct.public_key, cts, exps)


def matmul_plain_cipher(
    plain: np.ndarray, ct: CryptoTensor, parallel: ParallelContext | None = None
) -> CryptoTensor:
    """Dense ``plain (s x m) @ cipher (m x k)`` with zero-skipping.

    Accepts a :class:`~repro.crypto.packing.PackedCryptoTensor` right
    operand too (weights packed along the output dimension), in which case
    the product stays packed.
    """
    if not isinstance(ct, CryptoTensor):
        from repro.crypto import packing

        if isinstance(ct, packing.PackedCryptoTensor):
            return packing.pack_matmul_plain_cipher(plain, ct, parallel=parallel)
        raise TypeError(f"expected a CryptoTensor, got {type(ct).__name__}")
    plain = np.atleast_2d(np.asarray(plain, dtype=np.float64))
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(-1, 1)
    s, m = plain.shape
    m2, k = cdata.shape
    if m != m2:
        raise ValueError(f"matmul shape mismatch: ({s},{m}) @ ({m2},{k})")
    pk = ct.public_key
    cts, exp = _aligned_flat(ct, cdata)
    out, oexp = kernels.matmul_plain_cipher_flat(pk, plain, cts, k, exp, parallel)
    return CryptoTensor(pk, _wrap(pk, out, oexp, (s, k)))


def matmul_cipher_plain(
    ct: CryptoTensor, plain: np.ndarray, parallel: ParallelContext | None = None
) -> CryptoTensor:
    """Dense ``cipher (s x m) @ plain (m x k)`` with zero-skipping."""
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(1, -1)
    plain = np.atleast_2d(np.asarray(plain, dtype=np.float64))
    s, m = cdata.shape
    m2, k = plain.shape
    if m != m2:
        raise ValueError(f"matmul shape mismatch: ({s},{m}) @ ({m2},{k})")
    pk = ct.public_key
    cts, exp = _aligned_flat(ct, cdata)
    out, oexp = kernels.matmul_cipher_plain_flat(pk, cts, plain, s, exp, parallel)
    return CryptoTensor(pk, _wrap(pk, out, oexp, (s, k)))


def sparse_matmul_cipher(
    sparse: object, ct: CryptoTensor, parallel: ParallelContext | None = None
) -> CryptoTensor:
    """CSR ``plain @ cipher``: cost proportional to nnz, never touches zeros.

    Packed right operands are routed to the packed kernel (product stays
    packed along the output dimension).
    """
    if not isinstance(ct, CryptoTensor):
        from repro.crypto import packing

        if isinstance(ct, packing.PackedCryptoTensor):
            return packing.pack_sparse_matmul_cipher(sparse, ct, parallel=parallel)
        raise TypeError(f"expected a CryptoTensor, got {type(ct).__name__}")
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(-1, 1)
    m2, k = cdata.shape
    pk = ct.public_key
    rows = list(sparse.iter_rows())
    cts, exp = _aligned_flat(ct, cdata)
    out, oexp = kernels.sparse_matmul_cipher_flat(pk, rows, m2, cts, k, exp, parallel)
    return CryptoTensor(pk, _wrap(pk, out, oexp, (len(rows), k)))


def sparse_t_matmul_cipher(
    sparse: object,
    ct: CryptoTensor,
    columns: np.ndarray | None = None,
    parallel: ParallelContext | None = None,
) -> CryptoTensor:
    """``sparse.T @ cipher`` in O(nnz * k) — the X^T [[grad_Z]] of backprop.

    ``sparse`` is (batch, m) CSR, ``ct`` is (batch, k) ciphertext; the result
    is (m, k).  With ``columns`` given (sorted unique column ids), only those
    rows of the result are produced, shaped (len(columns), k) — the
    sparse-aware "touched coordinates" path of the delta refresh mode.
    """
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(-1, 1)
    batch, k = cdata.shape
    n_rows, m = sparse.shape
    if n_rows != batch:
        raise ValueError(f"t_matmul shape mismatch: {sparse.shape}.T @ ({batch},{k})")
    pk = ct.public_key
    if columns is None:
        out_rows = m
        col_to_out = None
    else:
        columns = np.asarray(columns, dtype=np.int64)
        out_rows = columns.shape[0]
        col_to_out = {int(c): i for i, c in enumerate(columns)}
    rows = list(sparse.iter_rows())
    cts, exp = _aligned_flat(ct, cdata)
    out, oexp = kernels.sparse_t_matmul_flat(
        pk, rows, cts, k, exp, out_rows, col_to_out, parallel
    )
    return CryptoTensor(pk, _wrap(pk, out, oexp, (out_rows, k)))


# ---------------------------------------------------------------------------
# Legacy object-path reference implementations.
#
# These are the pre-kernel per-EncryptedNumber loops, kept verbatim for two
# reasons: the equivalence tests assert the kernels decrypt to the same
# arrays, and the benchmark suite measures kernel speedups against them.
# They are not used by any protocol code.


def _common_exponent(data: np.ndarray) -> int:
    return min(enc.exponent for enc in data.ravel())


def _encode_matrix(pk: PaillierPublicKey, arr: np.ndarray) -> np.ndarray:
    """Pre-encode a plaintext matrix once so products reuse the encodings."""
    flat = arr.ravel()
    out = np.empty(flat.shape[0], dtype=object)
    for i, value in enumerate(flat):
        out[i] = EncodedNumber.encode(pk, float(value), exponent=PLAIN_EXPONENT)
    return out.reshape(arr.shape)


def legacy_encrypt(
    public_key: PaillierPublicKey,
    array: np.ndarray,
    exponent: int = TENSOR_EXPONENT,
    obfuscate: bool = True,
) -> CryptoTensor:
    """Per-element object-path encryption (reference/benchmark baseline)."""
    array = np.asarray(array, dtype=np.float64)
    flat = array.ravel()
    out = np.empty(flat.shape[0], dtype=object)
    for i, value in enumerate(flat):
        out[i] = public_key.encrypt(float(value), exponent=exponent, obfuscate=obfuscate)
    return CryptoTensor(public_key, out.reshape(array.shape))


def legacy_matmul_plain_cipher(plain: np.ndarray, ct: CryptoTensor) -> CryptoTensor:
    """Dense ``plain (s x m) @ cipher (m x k)`` via EncryptedNumber ops."""
    plain = np.atleast_2d(plain)
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(-1, 1)
    s, m = plain.shape
    m2, k = cdata.shape
    if m != m2:
        raise ValueError(f"matmul shape mismatch: ({s},{m}) @ ({m2},{k})")
    pk = ct.public_key
    prod_exp = _common_exponent(cdata) + PLAIN_EXPONENT
    encoded = _encode_matrix(pk, plain)
    out = np.empty((s, k), dtype=object)
    for i in range(s):
        row = plain[i]
        nz = np.nonzero(row)[0]
        for j in range(k):
            acc = pk.encrypt_zero(prod_exp)
            for t in nz:
                acc = acc + (cdata[t, j] * encoded[i, t])
            out[i, j] = acc
    return CryptoTensor(pk, out)


def legacy_matmul_sparse_cipher(sparse: object, ct: CryptoTensor) -> CryptoTensor:
    """CSR ``plain @ cipher`` via EncryptedNumber ops."""
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(-1, 1)
    m2, k = cdata.shape
    pk = ct.public_key
    prod_exp = _common_exponent(cdata) + PLAIN_EXPONENT
    rows = list(sparse.iter_rows())
    out = np.empty((len(rows), k), dtype=object)
    for i, (cols, vals) in enumerate(rows):
        encoded_vals = [
            EncodedNumber.encode(pk, float(v), exponent=PLAIN_EXPONENT) for v in vals
        ]
        for j in range(k):
            acc = pk.encrypt_zero(prod_exp)
            for col, enc_val in zip(cols, encoded_vals):
                if col >= m2:
                    raise IndexError("sparse column index out of range")
                acc = acc + (cdata[col, j] * enc_val)
            out[i, j] = acc
    return CryptoTensor(pk, out)


def legacy_sparse_t_matmul_cipher(
    sparse: object, ct: CryptoTensor, columns: np.ndarray | None = None
) -> CryptoTensor:
    """``sparse.T @ cipher`` via EncryptedNumber ops."""
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(-1, 1)
    batch, k = cdata.shape
    n_rows, m = sparse.shape
    if n_rows != batch:
        raise ValueError(f"t_matmul shape mismatch: {sparse.shape}.T @ ({batch},{k})")
    pk = ct.public_key
    prod_exp = _common_exponent(cdata) + PLAIN_EXPONENT
    if columns is None:
        out_rows = m
        col_to_out = None
    else:
        columns = np.asarray(columns, dtype=np.int64)
        out_rows = columns.shape[0]
        col_to_out = {int(c): i for i, c in enumerate(columns)}
    out = np.empty((out_rows, k), dtype=object)
    for i in range(out_rows):
        for j in range(k):
            out[i, j] = pk.encrypt_zero(prod_exp)
    for i, (cols, vals) in enumerate(sparse.iter_rows()):
        for col, val in zip(cols, vals):
            if col_to_out is None:
                target = int(col)
            elif int(col) in col_to_out:
                target = col_to_out[int(col)]
            else:
                raise IndexError("batch touches a column outside `columns`")
            encoded = EncodedNumber.encode(pk, float(val), exponent=PLAIN_EXPONENT)
            for j in range(k):
                out[target, j] = out[target, j] + (cdata[i, j] * encoded)
    return CryptoTensor(pk, out)


def legacy_matmul_cipher_plain(ct: CryptoTensor, plain: np.ndarray) -> CryptoTensor:
    """Dense ``cipher (s x m) @ plain (m x k)`` via EncryptedNumber ops."""
    cdata = ct.data if ct.data.ndim == 2 else ct.data.reshape(1, -1)
    plain = np.atleast_2d(plain)
    s, m = cdata.shape
    m2, k = plain.shape
    if m != m2:
        raise ValueError(f"matmul shape mismatch: ({s},{m}) @ ({m2},{k})")
    pk = ct.public_key
    prod_exp = _common_exponent(cdata) + PLAIN_EXPONENT
    encoded = _encode_matrix(pk, plain)
    out = np.empty((s, k), dtype=object)
    for j in range(k):
        nz = np.nonzero(plain[:, j])[0]
        for i in range(s):
            acc = pk.encrypt_zero(prod_exp)
            for t in nz:
                acc = acc + (cdata[i, t] * encoded[t, j])
            out[i, j] = acc
    return CryptoTensor(pk, out)


def legacy_scatter_add_rows(
    ct: CryptoTensor, indices: np.ndarray, num_rows: int
) -> CryptoTensor:
    """Encrypted ``lkup_bw`` via EncryptedNumber ops."""
    if ct.data.ndim != 2:
        raise ValueError("scatter_add_rows needs a 2-D tensor")
    indices = np.asarray(indices, dtype=int)
    if indices.shape[0] != ct.data.shape[0]:
        raise ValueError("one index per batch row required")
    if indices.size and (indices.min() < 0 or indices.max() >= num_rows):
        raise IndexError("scatter index out of range")
    dim = ct.data.shape[1]
    exponent = _common_exponent(ct.data)
    pk = ct.public_key
    out = np.empty((num_rows, dim), dtype=object)
    for i in range(num_rows):
        for j in range(dim):
            out[i, j] = pk.encrypt_zero(exponent)
    for batch_row, table_row in enumerate(indices):
        for j in range(dim):
            out[table_row, j] = out[table_row, j] + ct.data[batch_row, j]
    return CryptoTensor(pk, out)


def legacy_obfuscate(ct: CryptoTensor) -> CryptoTensor:
    """Per-element re-randomisation via EncryptedNumber ops."""
    flat = ct.data.ravel()
    out = np.empty(flat.shape[0], dtype=object)
    for i, enc in enumerate(flat):
        out[i] = enc.obfuscate()
    return CryptoTensor(ct.public_key, out.reshape(ct.data.shape))
