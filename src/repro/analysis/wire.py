"""BF004 — wire-format coverage and codec exception discipline.

The codec's "Complete" property (its own module docstring) is a pairing
invariant: every payload type code that can be *encoded* must be
*decodable* and vice versa, and every code must have a human-readable
name in the type table — otherwise a frame written by one version of
the tree is unreadable garbage to another (checkpoints make this a
persistence problem, not just a wire one).  The same applies to
``MessageKind``: every enum member needs a stable wire code.

Statically checked, on ``comm/codec.py``:

* every module-level ``T_*`` type-code constant appears in at least one
  ``encode``-family function, at least one ``decode``-family function,
  and as a key of the ``_TYPE_NAMES`` table — both directions (a ``T_*``
  used by an encoder/decoder but never defined is a NameError anyway);
* every ``raise`` in the codec uses the codec taxonomy — a subclass of
  ``WireFormatError`` (structural/integrity failures) or
  ``UnsupportedWireType`` (the custody/type refusal branch) — so callers
  can classify failures without string-matching, and the transport can
  tell retryable corruption from protocol bugs.

And on ``comm/message.py``: every ``MessageKind`` member has an entry in
``_WIRE_CODES`` (the reverse table is derived, so one direction
suffices for it), and every ``_WIRE_CODES`` key is a live member.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Rule,
    dotted_name,
    register,
)

CODEC_SUBPATH = "comm/codec.py"
MESSAGE_SUBPATH = "comm/message.py"
TYPE_TABLE = "_TYPE_NAMES"
WIRE_CODE_TABLE = "_WIRE_CODES"
KIND_CLASS = "MessageKind"

# Roots of the codec exception taxonomy.  WireFormatError covers the
# structural/integrity branch; UnsupportedWireType is the deliberate
# type-refusal branch (a TypeError, so accidental sends fail loudly at
# the call site).  Subclasses defined in the module are resolved
# statically and inherit permission.
CODEC_EXC_ROOTS = {"WireFormatError", "UnsupportedWireType"}


def _module_assign_names(tree: ast.Module, prefix: str) -> dict[str, int]:
    names: dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.startswith(prefix):
                    names[target.id] = node.lineno
    return names


def _names_in_functions(tree: ast.Module, name_part: str, prefix: str) -> set[str]:
    """``prefix``-named identifiers used inside functions whose name contains
    ``name_part`` (leading underscores ignored)."""
    used: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if name_part not in node.name.lstrip("_"):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id.startswith(prefix):
                used.add(sub.id)
    return used


def _dict_key_names(tree: ast.Module, table: str) -> set[str] | None:
    """Last-segment names keying a module-level dict literal."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == table for t in node.targets
            )
            and isinstance(node.value, ast.Dict)
        ):
            keys: set[str] = set()
            for key in node.value.keys:
                name = dotted_name(key) if key is not None else None
                if name:
                    keys.add(name.split(".")[-1] if "." in name else name)
            return keys
    return None


def _local_subclasses(tree: ast.Module, roots: set[str]) -> set[str]:
    """Names of classes statically subclassing any root (fixpoint)."""
    allowed = set(roots)
    bases: dict[str, set[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            bases[node.name] = {
                dotted_name(b).split(".")[-1]
                for b in node.bases
                if dotted_name(b)
            }
    for _ in range(len(bases) + 1):
        grew = False
        for cls, cls_bases in bases.items():
            if cls not in allowed and cls_bases & allowed:
                allowed.add(cls)
                grew = True
        if not grew:
            break
    return allowed


class WireCoverageRule(Rule):
    code = "BF004"
    name = "wire-coverage"
    rationale = (
        "every encodable payload type / MessageKind must be decodable and "
        "named, and codec raise sites must use the codec exception taxonomy"
    )

    def check(self, module: ModuleInfo) -> list[Finding]:
        if module.subpath == CODEC_SUBPATH:
            return self._check_codec(module)
        if module.subpath == MESSAGE_SUBPATH:
            return self._check_message(module)
        return []

    # -- comm/codec.py -----------------------------------------------------

    def _check_codec(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        tree = module.tree
        defined = _module_assign_names(tree, "T_")
        encoders = _names_in_functions(tree, "encode", "T_")
        decoders = _names_in_functions(tree, "decode", "T_")
        table = _dict_key_names(tree, TYPE_TABLE)
        for name, lineno in sorted(defined.items(), key=lambda kv: kv[1]):
            site = _LineAnchor(lineno)
            if name not in encoders:
                findings.append(
                    self.finding(
                        module, site, f"payload type code {name} has no encoder"
                    )
                )
            if name not in decoders:
                findings.append(
                    self.finding(
                        module,
                        site,
                        f"payload type code {name} is encoded but has no "
                        f"decoder — frames written with it are unreadable",
                    )
                )
            if table is not None and name not in table:
                findings.append(
                    self.finding(
                        module,
                        site,
                        f"payload type code {name} missing from {TYPE_TABLE}",
                    )
                )
        if table is None:
            findings.append(
                self.finding(
                    module,
                    _LineAnchor(1),
                    f"codec defines no {TYPE_TABLE} dict literal",
                )
            )
        findings.extend(self._check_codec_raises(module))
        return findings

    def _check_codec_raises(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        allowed = _local_subclasses(module.tree, CODEC_EXC_ROOTS)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc)
            if name is None:
                continue  # re-raise of a bound exception variable
            last = name.split(".")[-1]
            if last not in allowed:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"codec raises {last}; only the codec taxonomy "
                        f"(WireFormatError subclasses / UnsupportedWireType) "
                        f"is allowed so callers can classify failures",
                    )
                )
        return findings

    # -- comm/message.py ---------------------------------------------------

    def _check_message(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        members: dict[str, int] = {}
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == KIND_CLASS:
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if (
                                isinstance(target, ast.Name)
                                and target.id.isupper()
                            ):
                                members[target.id] = stmt.lineno
        table = _dict_key_names(module.tree, WIRE_CODE_TABLE)
        if table is None:
            findings.append(
                self.finding(
                    module,
                    _LineAnchor(1),
                    f"message module defines no {WIRE_CODE_TABLE} dict literal",
                )
            )
            return findings
        for name, lineno in sorted(members.items(), key=lambda kv: kv[1]):
            if name not in table:
                findings.append(
                    self.finding(
                        module,
                        _LineAnchor(lineno),
                        f"MessageKind.{name} has no wire code in "
                        f"{WIRE_CODE_TABLE} — it cannot cross a channel",
                    )
                )
        for name in sorted(table - set(members)):
            findings.append(
                self.finding(
                    module,
                    _LineAnchor(1),
                    f"{WIRE_CODE_TABLE} maps unknown member "
                    f"MessageKind.{name}",
                )
            )
        return findings


class _LineAnchor:
    """Minimal node stand-in so findings can anchor to a known line."""

    def __init__(self, lineno: int):
        self.lineno = lineno
        self.end_lineno = lineno


register(WireCoverageRule())
