"""BF003 — telemetry cost discipline.

The observability layer's core promise (ROADMAP "Telemetry") is that
**disabled telemetry is free**: every instrumentation site consults the
module global via :func:`repro.obs.tracer.get_tracer` **at most once per
kernel call** and bails on one ``is None`` check — never per element.
The promise is pinned dynamically by a consultation-counting test; this
rule pins it statically, per function body:

* more than one ``get_tracer()`` consultation in the same function body
  is flagged (hoist to one ``trc = _obs.get_tracer()`` at the top);
* any consultation inside a loop or comprehension is flagged — that is
  a per-element read of the module global, exactly the overhead the
  design rule forbids.

Nested functions are separate bodies (a closure captures its own
consultation budget).  Sites with a justified double-consult (none exist
today) would take ``# repro: telemetry-ok <reason>``.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Rule,
    dotted_name,
    iter_scopes,
    register,
    scope_calls,
)

CONSULT = "get_tracer"


class TelemetryCostRule(Rule):
    code = "BF003"
    name = "telemetry-cost"
    rationale = (
        "disabled telemetry must cost one get_tracer() read per kernel "
        "call: at most one consultation per function body, never in a loop"
    )

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for qualname, _, body in iter_scopes(module.tree):
            consults: list[tuple[ast.Call, bool]] = []
            for call, in_loop in scope_calls(body):
                name = dotted_name(call.func)
                if name and name.split(".")[-1] == CONSULT:
                    consults.append((call, in_loop))
            consults.sort(key=lambda item: (item[0].lineno, item[0].col_offset))
            for call, in_loop in consults:
                if in_loop:
                    findings.append(
                        self.finding(
                            module,
                            call,
                            f"get_tracer() consulted inside a loop in "
                            f"{qualname} — hoist the consultation out; "
                            f"disabled telemetry must not pay per element",
                        )
                    )
            if len(consults) > 1:
                first_line = consults[0][0].lineno
                for call, _ in consults[1:]:
                    findings.append(
                        self.finding(
                            module,
                            call,
                            f"{qualname} consults get_tracer() "
                            f"{len(consults)} times (first at line "
                            f"{first_line}) — consult once per call and "
                            f"reuse the result",
                        )
                    )
        return findings


register(TelemetryCostRule())
