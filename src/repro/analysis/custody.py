"""BF001 — private-key custody taint.

The custody boundary (ROADMAP "Key custody and the decrypt engine"): the
Paillier primes ``(p, q)`` may exist only in the key-owning party's OS
process and its direct pool children.  The runtime already enforces this
at two choke points — ``PaillierPrivateKey.__reduce__`` raises and the
wire codec refuses private-key carriers — but both are *dynamic*: a new
call site that ships key material over a channel, into a pickle, into a
checkpoint frame, or as a worker-pool argument only fails when that code
path actually runs.  This rule makes the invariant static: any dataflow
from private-key material into one of those sinks is flagged at analysis
time.

**Taint sources** (with forward alias propagation per scope):

* ``<x>.crt_params`` — the precomputed ``(p, q, hp, hq, p_inverse)``;
* ``<x>.private_key`` / ``<x>._private_key`` attribute reads;
* ``PaillierPrivateKey(...)`` constructor results;
* parameters named/annotated as private keys.

Referencing the *class* (e.g. in an ``isinstance`` refusal check) is not
a source — only values that can expose the primes are.

**Sinks**: ``*.send(...)`` (every channel tier), the codec's
``encode_*`` family (wire frames and checkpoint frames), ``pickle`` /
``copyreg``, checkpoint writers, and ``multiprocessing`` constructors or
pool-submission methods (``Pool``/``Process`` args and ``initargs``,
``apply``/``map``/``starmap``/... arguments).

**Allowlist**: exactly one blessed flow — the private decrypt pool's
``initargs`` in ``crypto/parallel.py``'s ``_ensure_private_pool``, where
the CRT constants cross a fork/spawn pipe from the key owner to its own
OS children, never a protocol ``Channel``.  Anything else needs a
``# repro: custody-ok <reason>`` pragma, which this rule's tier-1 gate
keeps at zero in the live tree.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Rule,
    dotted_name,
    iter_scopes,
    register,
    scope_calls,
    tainted_names,
)

PRIVATE_CLASS = "PaillierPrivateKey"
SOURCE_ATTRS = {"crt_params"}
PRIVATE_NAME_HINTS = {"private_key", "_private_key", "priv_key"}

ENCODE_SINKS = {
    "encode_payload",
    "encode_message",
    "encode_payload_frame",
    "encode_hello",
}
PICKLE_MODULES = ("pickle.", "cPickle.", "copyreg.", "dill.", "cloudpickle.")
CHECKPOINT_SINKS = {"save_checkpoint", "write_checkpoint"}
MP_CONSTRUCTORS = {"Pool", "Process"}
MP_SUBMITS = {
    "apply",
    "apply_async",
    "map",
    "map_async",
    "starmap",
    "starmap_async",
    "imap",
    "imap_unordered",
    "submit",
}

# The one blessed sink: (module subpath, enclosing function, keyword).
ALLOWED_SINKS = {("crypto/parallel.py", "_ensure_private_pool", "initargs")}


def _is_private_ctor(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    return bool(name) and name.split(".")[-1] == PRIVATE_CLASS


def _expr_tainted(expr: ast.AST, tainted: set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and (
            node.attr in SOURCE_ATTRS or node.attr in PRIVATE_NAME_HINTS
        ):
            return True
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        if isinstance(node, ast.Call) and _is_private_ctor(node):
            return True
    return False


def _param_seed(scope_node: ast.AST) -> set[str]:
    """Parameters that carry private-key material by name or annotation."""
    seed: set[str] = set()
    args = getattr(scope_node, "args", None)
    if args is None:
        return seed
    all_args = [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]
    for arg in all_args:
        if arg.arg in PRIVATE_NAME_HINTS:
            seed.add(arg.arg)
        elif arg.annotation is not None and PRIVATE_CLASS in ast.dump(arg.annotation):
            seed.add(arg.arg)
    return seed


def _sink_kind(call: ast.Call, module: ModuleInfo) -> str | None:
    """Classify a call as a custody sink, or None."""
    func = call.func
    attr = func.attr if isinstance(func, ast.Attribute) else None
    resolved = module.imports.resolve_call(call) or ""
    last = resolved.split(".")[-1] if resolved else (attr or "")
    if attr == "send":
        return "Channel.send"
    if last in ENCODE_SINKS or (
        last.lstrip("_").startswith("encode") and ".codec." in f".{resolved}."
    ):
        return f"codec.{last}"
    if resolved.startswith(PICKLE_MODULES) or resolved in ("pickle", "copyreg"):
        return resolved
    if last in CHECKPOINT_SINKS:
        return f"checkpoint writer {last}"
    if last in MP_CONSTRUCTORS or (attr in MP_CONSTRUCTORS):
        return f"multiprocessing {last or attr}"
    if attr in MP_SUBMITS:
        return f"worker-pool {attr}()"
    return None


class CustodyTaintRule(Rule):
    code = "BF001"
    name = "custody-taint"
    rationale = (
        "private-key material (PaillierPrivateKey, crt_params, (p, q)) must "
        "never flow into a Channel, the wire codec, a pickle, a checkpoint, "
        "or worker-pool arguments outside the blessed private-pool initargs"
    )

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for qualname, scope_node, body in iter_scopes(module.tree):
            seed = _param_seed(scope_node)
            tainted = tainted_names(scope_node, body, _expr_tainted, seed)
            scope_name = qualname.split(".")[-1]
            for call, _ in scope_calls(body):
                kind = _sink_kind(call, module)
                if kind is None:
                    continue
                for arg_expr, keyword in self._sink_args(call, kind):
                    if not _expr_tainted(arg_expr, tainted):
                        continue
                    if (module.subpath, scope_name, keyword) in ALLOWED_SINKS:
                        continue
                    findings.append(
                        self.finding(
                            module,
                            call,
                            f"private-key material flows into {kind} "
                            f"(in {qualname}); (p, q) must never leave the "
                            f"key owner's process",
                        )
                    )
                    break  # one finding per sink call
        return findings

    @staticmethod
    def _sink_args(call: ast.Call, kind: str):
        """Candidate argument expressions for a sink, with keyword names."""
        if kind.startswith("multiprocessing"):
            # Constructors: taint can ride positionally or via initargs/args.
            for arg in call.args:
                yield arg, ""
            for kw in call.keywords:
                if kw.arg in (None, "initargs", "args", "kwargs", "initializer", "target"):
                    yield kw.value, kw.arg or ""
            return
        for arg in call.args:
            yield arg, ""
        for kw in call.keywords:
            yield kw.value, kw.arg or ""


register(CustodyTaintRule())
