"""``repro.analysis`` — AST-based static invariant checker for BlindFL.

The repo's trust story makes claims that live in prose and runtime
spot-checks: private keys never cross a wire, protocol modules are
seeded-deterministic, disabled telemetry is free, the codec encodes what
it decodes, transport errors split retryable/fatal.  This package turns
those claims into machine-checked lint over the tree itself — the first
step of ROADMAP's "attack claims CI-pinned, not prose".

Rules (see each module's docstring for rationale and examples):

========  ====================  =============================================
code      name                  invariant
========  ====================  =============================================
BF001     custody-taint         (p, q)/crt_params never flow into Channel.
                                send, codec encode_*, pickle, checkpoints,
                                or multiprocessing args (one blessed
                                private-pool initargs site)
BF002     determinism           no global-state / unseeded / OS-entropy RNG
                                calls; no wall-clock control flow in
                                crypto/, comm/, core/
BF003     telemetry-cost        at most one get_tracer() consultation per
                                function body, never inside a loop
BF004     wire-coverage         every T_* payload code encoded <-> decoded
                                <-> named; codec raises its own taxonomy;
                                every MessageKind has a wire code
BF005     transport-taxonomy    transport raise sites pick Retryable vs
                                Fatal, never the unsplit base / Exception
BF006     unused-pragma         a suppression pragma that matches nothing
BF000     parse-error           a scanned file does not parse
========  ====================  =============================================

Suppressions: ``# repro: <tag> <reason>`` on the offending statement's
first line, or on its own line directly above.  Tags: ``custody-ok``,
``nondeterministic-ok``, ``telemetry-ok``, ``wire-ok``, ``transport-ok``.
Stale pragmas are themselves findings (BF006).

Usage::

    PYTHONPATH=src python -m repro.analysis src/repro          # text
    PYTHONPATH=src python -m repro.analysis --json src/repro   # machine
    blindfl-lint src/repro                                     # installed

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

from repro.analysis.engine import (
    PARSE_ERROR_CODE,
    PRAGMA_TAGS,
    RULES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    UNUSED_PRAGMA_CODE,
    Finding,
    Rule,
    analyze_paths,
    analyze_source,
)

# Importing the rule modules registers each rule with the engine; keep
# this list the single place a new rule module gets wired in.
from repro.analysis import custody  # noqa: E402,F401
from repro.analysis import determinism  # noqa: E402,F401
from repro.analysis import telemetry  # noqa: E402,F401
from repro.analysis import transport_rules  # noqa: E402,F401
from repro.analysis import wire  # noqa: E402,F401

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "PRAGMA_TAGS",
    "PARSE_ERROR_CODE",
    "UNUSED_PRAGMA_CODE",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "analyze_paths",
    "analyze_source",
]
