"""CLI for the static invariant checker.

``python -m repro.analysis [paths...]`` scans the given files/directories
(default: ``src/repro`` if present, else the current directory) with
every registered rule and prints findings as clickable ``file:line``
lines, or as one JSON document with ``--json``.

Exit-code semantics (CI-friendly)::

    0  clean — no findings
    1  findings (any severity; a stale pragma is a finding too)
    2  usage error / unreadable path

The tier-1 gate (``tests/test_analysis.py``) runs this over ``src/repro``
and asserts exit 0, so the live tree stays violation-free by
construction.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import RULES, analyze_paths


def _default_paths() -> list[str]:
    candidate = Path("src/repro")
    return [str(candidate)] if candidate.is_dir() else ["."]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="BlindFL static invariant checker (custody, determinism, "
        "telemetry, wire coverage, transport taxonomy)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document instead of text lines",
    )
    parser.add_argument(
        "--rules",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line on stderr",
    )
    args = parser.parse_args(argv)

    # Ensure rule modules are registered before any registry access.
    import repro.analysis  # noqa: F401

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code}  {rule.name:20s} {rule.rationale}")
        return 0

    rules = None
    if args.rules:
        wanted = [code.strip().upper() for code in args.rules.split(",") if code.strip()]
        unknown = [code for code in wanted if code not in RULES]
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [RULES[code] for code in wanted]

    paths = args.paths or _default_paths()
    try:
        findings, files_scanned = analyze_paths(paths, rules)
    except (FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(
            json.dumps(
                {
                    "files_scanned": files_scanned,
                    "rules": sorted(r.code for r in (rules or RULES.values())),
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
    if not args.quiet:
        print(
            f"repro.analysis: {files_scanned} files, "
            f"{len(findings)} finding(s)",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
