"""BF005 — transport exception taxonomy.

The reliable link's whole recovery strategy keys off one bit: is this
failure **retryable** (timeout, drop, corruption, disconnect — the link
retransmits, backs off, reconnects) or **fatal** (mirror divergence,
ownership overlap, framing loss — retrying cannot help, abort loudly)?
A raise site that throws the unsplit ``TransportError`` base — or worse,
a bare ``Exception``/``RuntimeError`` — forces every caller back to
string-matching, and a recovery loop that guesses wrong either hangs on
an unfixable failure or papers over a protocol bug.

Statically checked, on ``comm/transport.py``, ``comm/fabric.py`` (the
N-party endpoint grid raises the same taxonomy) and ``comm/faults.py``
(the chaos layer injects into the same recovery loops, so its failures
must speak the same language — real socket exceptions like
``ConnectionResetError`` for injected faults, ``ValueError`` for plan
misconfiguration, never a catch-all): every ``raise`` with an
explicit exception must not use ``Exception``, ``BaseException``,
``RuntimeError``, or the unsplit ``TransportError`` — pick a side via
``RetryableTransportError`` / ``FatalTransportError`` or one of their
subclasses (``TransportTimeout``, ``TransportDisconnected``,
``LinkCorruptionError``, ...), which the rule resolves statically from
the module's class definitions.  Non-transport error types (``ValueError``
for misconfiguration, ``LookupError`` for routing misses) are API-misuse
signals, not link failures, and stay allowed.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Rule,
    dotted_name,
    register,
)

# Every module that raises into the transport taxonomy: the two-party
# link layer, the N-party fabric built on top of it, and the fault
# injection layer whose induced failures feed the same recovery loops.
TRANSPORT_SUBPATHS = frozenset(
    {"comm/transport.py", "comm/fabric.py", "comm/faults.py"}
)

# Never acceptable at a transport raise site: the catch-all builtins and
# the unsplit taxonomy base.
FORBIDDEN = {"Exception", "BaseException", "RuntimeError", "TransportError"}
SPLIT_ROOTS = {"RetryableTransportError", "FatalTransportError"}


def _split_subclasses(tree: ast.Module) -> set[str]:
    allowed = set(SPLIT_ROOTS)
    bases: dict[str, set[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            bases[node.name] = {
                dotted_name(b).split(".")[-1]
                for b in node.bases
                if dotted_name(b)
            }
    for _ in range(len(bases) + 1):
        grew = False
        for cls, cls_bases in bases.items():
            if cls not in allowed and cls_bases & allowed:
                allowed.add(cls)
                grew = True
        if not grew:
            break
    return allowed


class TransportTaxonomyRule(Rule):
    code = "BF005"
    name = "transport-taxonomy"
    rationale = (
        "transport raise sites must pick a side of the Retryable/Fatal "
        "split — never the unsplit TransportError base or a bare Exception"
    )

    def check(self, module: ModuleInfo) -> list[Finding]:
        if module.subpath not in TRANSPORT_SUBPATHS:
            return []
        findings: list[Finding] = []
        split = _split_subclasses(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc)
            if name is None:
                continue  # re-raising a bound variable keeps its class
            last = name.split(".")[-1]
            if last in FORBIDDEN and last not in split:
                hint = (
                    "RetryableTransportError if the link can recover, "
                    "FatalTransportError if it must not"
                )
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"raise {last} is unsplit — use {hint}",
                    )
                )
        return findings


register(TransportTaxonomyRule())
