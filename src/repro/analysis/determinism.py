"""BF002 — seeded determinism.

Everything downstream of a protocol RNG assumes seeded reproducibility:
lockstep mirroring drives both endpoints from identical random streams,
golden transcripts pin exact bytes, fault replay re-runs a chaos
schedule bit-for-bit, and checkpoints resume float-exact.  One call to a
global-state or OS-entropy RNG anywhere in that chain silently breaks
all four.  This rule flags, tree-wide:

* global-state RNG calls — ``random.random()``, ``random.shuffle()``,
  ``np.random.rand()``, ``np.random.seed()``, ... (anything drawing from
  or mutating the shared module state instead of an explicit seeded
  ``Generator`` from :mod:`repro.utils.rng`);
* **unseeded** constructors — ``random.Random()`` /
  ``np.random.default_rng()`` with no seed argument;
* OS-entropy sources — ``random.SystemRandom``.

and, inside the protocol core (``crypto/``, ``comm/``, ``core/``):

* wall-clock reads (``time.time()``, ``time.monotonic()``,
  ``time.perf_counter()`` and their ``_ns`` variants) — control flow
  hanging off these diverges between mirrored endpoints and across
  replays.  ``time.sleep`` is allowed (it delays, it doesn't decide).

Sites that are *deliberately* nondeterministic — production keygen
entropy, socket deadline bookkeeping, seeded-backoff timers — carry a
``# repro: nondeterministic-ok <reason>`` pragma instead; the engine
reports any pragma that stops matching, so allowances can't go stale.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Rule,
    iter_scopes,
    register,
    scope_calls,
)

# Directories (below the repro package root) forming the protocol core,
# where time-dependent control flow is also a determinism hazard.
TIME_SCOPED_DIRS = {"crypto", "comm", "core"}

# numpy.random attributes that are *not* global state: seeded-generator
# and bit-generator constructors, which this repo's utils/rng wraps.
NP_RANDOM_SAFE = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # constructor; flagged separately below when unseeded
}

TIME_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}


def _has_seed_argument(call: ast.Call) -> bool:
    if call.args:
        return not (
            isinstance(call.args[0], ast.Constant) and call.args[0].value is None
        )
    for kw in call.keywords:
        if kw.arg in (None, "seed", "x"):  # random.Random's positional is 'x'
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            )
    return False


class DeterminismRule(Rule):
    code = "BF002"
    name = "determinism"
    rationale = (
        "global-state / unseeded RNG calls and (in crypto/comm/core) "
        "wall-clock reads break lockstep mirroring, golden transcripts, "
        "and fault replay; seed through utils/rng or pragma the site"
    )

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        time_scoped = module.package_dir in TIME_SCOPED_DIRS
        for qualname, _, body in iter_scopes(module.tree):
            for call, _ in scope_calls(body):
                resolved = module.imports.resolve_call(call)
                if not resolved:
                    continue
                message = self._classify(resolved, call, time_scoped)
                if message is not None:
                    findings.append(
                        self.finding(module, call, f"{message} (in {qualname})")
                    )
        return findings

    @staticmethod
    def _classify(resolved: str, call: ast.Call, time_scoped: bool) -> str | None:
        head, _, tail = resolved.partition(".")
        if head == "random" and tail:
            fn = tail
            if fn == "SystemRandom":
                return (
                    "random.SystemRandom draws OS entropy — nondeterministic "
                    "across runs"
                )
            if fn == "Random":
                if not _has_seed_argument(call):
                    return "unseeded random.Random() — pass an explicit seed"
                return None
            if "." not in fn:
                # Module-level function => the shared global-state generator.
                return (
                    f"global-state RNG call random.{fn}() — use an explicit "
                    f"seeded random.Random / utils.rng generator"
                )
            return None
        if resolved.startswith("numpy.random.") or resolved == "numpy.random":
            fn = resolved.split("numpy.random.", 1)[-1]
            if fn in ("default_rng", "RandomState"):
                if not _has_seed_argument(call):
                    return (
                        f"unseeded np.random.{fn}() — pass an explicit seed "
                        f"(see utils/rng.new_rng)"
                    )
                return None
            if fn in NP_RANDOM_SAFE or "." in fn:
                return None
            return (
                f"global-state RNG call np.random.{fn}() — use an explicit "
                f"seeded Generator from utils/rng"
            )
        if time_scoped and resolved in TIME_CALLS:
            return (
                f"{resolved}()-dependent control flow in the protocol core "
                f"diverges across mirrored endpoints and replays"
            )
        return None


register(DeterminismRule())
