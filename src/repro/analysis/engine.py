"""Rule engine for the BlindFL static invariant checker.

The repo's trust story rests on invariants that are cheap to state and
easy to erode one refactor at a time: private keys never reach a wire or
a pickle, every protocol module is seeded-deterministic, disabled
telemetry costs one global read per kernel call, the wire codec encodes
exactly what it decodes, and transport errors pick a side of the
retryable/fatal split.  This module provides the machinery the rules in
this package share:

* a **module walker** (:func:`analyze_paths` / :func:`analyze_source`)
  that parses each file once into a :class:`ModuleInfo` and hands it to
  every registered rule;
* **scope and alias resolution**: :class:`ImportMap` resolves dotted
  call targets through ``import``/``from-import`` aliases (``np.random.
  rand`` -> ``numpy.random.rand``), :func:`iter_scopes` yields each
  function body exactly once (nested defs are their own scope), and
  :func:`tainted_names` does forward assignment-alias propagation for
  the custody taint rule;
* the **per-rule visitor registry** (:class:`Rule`, :data:`RULES`,
  :func:`register`) — a rule is one object with a ``code``, a one-line
  ``rationale`` and a ``check(module) -> list[Finding]``;
* :class:`Finding` — ``(file, line, rule_code, severity, message)``,
  formatted as clickable ``file:line`` text;
* **pragma suppressions**: ``# repro: <tag>`` comments suppress one
  rule's findings on the statement they annotate (same line, or a
  standalone comment directly above), and a pragma that suppresses
  nothing is itself reported (:data:`UNUSED_PRAGMA_CODE`) so stale
  allowances cannot accumulate.

Rules key their file scoping off :attr:`ModuleInfo.subpath`, the path
relative to the ``repro`` package root (``crypto/paillier.py``), so the
checker works from any checkout layout and fixtures can impersonate any
module via ``analyze_source(..., path=...)``.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "PRAGMA_PREFIX",
    "PRAGMA_TAGS",
    "PARSE_ERROR_CODE",
    "UNUSED_PRAGMA_CODE",
    "Finding",
    "Pragma",
    "ModuleInfo",
    "ImportMap",
    "Rule",
    "RULES",
    "register",
    "dotted_name",
    "iter_scopes",
    "scope_calls",
    "tainted_names",
    "analyze_source",
    "analyze_paths",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

PARSE_ERROR_CODE = "BF000"
UNUSED_PRAGMA_CODE = "BF006"

# Pragma tags -> the rule they suppress.  One tag per rule keeps every
# suppression self-describing at the site (`# repro: nondeterministic-ok
# <reason>`); the reason text is free-form but strongly encouraged.
PRAGMA_PREFIX = "repro:"
PRAGMA_TAGS = {
    "custody-ok": "BF001",
    "nondeterministic-ok": "BF002",
    "telemetry-ok": "BF003",
    "wire-ok": "BF004",
    "transport-ok": "BF005",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a clickable ``file:line``."""

    file: str
    line: int
    rule_code: str
    severity: str
    message: str
    end_line: int = 0  # statement extent, used only for pragma matching

    def format(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_code} [{self.severity}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule_code": self.rule_code,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class Pragma:
    """One ``# repro: <tag>`` suppression comment."""

    comment_line: int  # where the comment physically sits
    target_line: int  # the code line it suppresses
    tag: str
    rule_code: str | None  # None for an unknown tag
    reason: str
    used: bool = False


def _parse_pragmas(source: str) -> list[Pragma]:
    """Extract pragmas with tokenize so strings containing '# repro:' don't count."""
    comments: list[tuple[int, str]] = []
    code_lines: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
                tokenize.ENCODING,
            ):
                for line in range(tok.start[0], tok.end[0] + 1):
                    code_lines.add(line)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    pragmas: list[Pragma] = []
    for line, text in comments:
        body = text.lstrip("#").strip()
        if not body.startswith(PRAGMA_PREFIX):
            continue
        rest = body[len(PRAGMA_PREFIX) :].strip()
        tag, _, reason = rest.partition(" ")
        if line in code_lines:
            target = line
        else:
            later = [c for c in code_lines if c > line]
            target = min(later) if later else line
        pragmas.append(
            Pragma(
                comment_line=line,
                target_line=target,
                tag=tag,
                rule_code=PRAGMA_TAGS.get(tag),
                reason=reason.strip(),
            )
        )
    return pragmas


# ---------------------------------------------------------------------------
# Scope and alias resolution.


class ImportMap:
    """Resolves local names through the module's import aliases.

    ``import numpy as np`` maps ``np -> numpy``; ``from repro.obs import
    tracer as _obs`` maps ``_obs -> repro.obs.tracer``; ``from pickle
    import dumps`` maps ``dumps -> pickle.dumps``.  :meth:`resolve`
    rewrites a dotted expression's first segment through the map, so a
    rule can match call targets by canonical module path no matter how
    the file spelled its imports.
    """

    def __init__(self, tree: ast.AST):
        self._alias: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._alias[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._alias[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str | None) -> str | None:
        if not dotted:
            return None
        head, _, tail = dotted.partition(".")
        head = self._alias.get(head, head)
        return f"{head}.{tail}" if tail else head

    def resolve_call(self, call: ast.Call) -> str | None:
        """Canonical dotted target of a call, or None for computed targets."""
        return self.resolve(dotted_name(call.func))


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def iter_scopes(tree: ast.Module) -> Iterator[tuple[str, ast.AST, list[ast.stmt]]]:
    """Yield ``(qualname, node, body)`` for the module and every function.

    Each function body is yielded exactly once under its own qualname;
    statements inside nested defs belong to the nested scope only.
    """
    yield "<module>", tree, tree.body
    stack: list[tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTION_NODES):
                qual = f"{prefix}{child.name}"
                yield qual, child, child.body
                stack.append((f"{qual}.", child))
            elif isinstance(child, ast.ClassDef):
                stack.append((f"{prefix}{child.name}.", child))
            elif not isinstance(child, ast.Lambda):
                stack.append((prefix, child))


def scope_calls(body: list[ast.stmt]) -> Iterator[tuple[ast.Call, bool]]:
    """Yield ``(call, in_loop)`` for calls belonging to this scope.

    Does not descend into nested function/class definitions (those are
    separate scopes); ``in_loop`` is True inside for/while bodies and
    comprehensions, which rules like BF003 treat as per-element sites.
    """
    work: list[tuple[ast.AST, bool]] = [(stmt, False) for stmt in body]
    while work:
        node, in_loop = work.pop()
        if isinstance(node, (*_FUNCTION_NODES, ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node, in_loop
        child_in_loop = in_loop or isinstance(
            node,
            (ast.For, ast.AsyncFor, ast.While, ast.comprehension),
        ) or isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp))
        for child in ast.iter_child_nodes(node):
            work.append((child, child_in_loop))


def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)


def tainted_names(
    scope_node: ast.AST,
    body: list[ast.stmt],
    is_source,
    seed: Iterable[str] = (),
) -> set[str]:
    """Forward alias propagation: names assigned from tainted expressions.

    ``is_source(expr, tainted) -> bool`` decides whether an expression is
    tainted given the current alias set.  Runs the assignment sweep to a
    fixpoint (bounded) so chained aliases like ``a = src; b = a`` resolve
    regardless of statement interleaving.  Parameters are pre-seeded by
    the caller via ``seed``.
    """
    tainted = set(seed)
    for _ in range(4):  # chains deeper than this don't occur in practice
        before = len(tainted)
        for node in ast.walk(scope_node):
            if isinstance(node, _FUNCTION_NODES) and node is not scope_node:
                continue
            value = None
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.AugAssign):
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.NamedExpr):
                value, targets = node.value, [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                value, targets = node.iter, [node.target]
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                value, targets = node.context_expr, [node.optional_vars]
            if value is not None and is_source(value, tainted):
                for target in targets:
                    tainted.update(_target_names(target))
        if len(tainted) == before:
            break
    return tainted


# ---------------------------------------------------------------------------
# Rule registry.


class Rule:
    """Base class: one invariant, one code, one ``check`` pass."""

    code: str = "BF???"
    name: str = "unnamed"
    rationale: str = ""

    def check(self, module: "ModuleInfo") -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self,
        module: "ModuleInfo",
        node: ast.AST,
        message: str,
        severity: str = SEVERITY_ERROR,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            file=module.path,
            line=line,
            rule_code=self.code,
            severity=severity,
            message=message,
            end_line=getattr(node, "end_lineno", line) or line,
        )


RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return rule


# ---------------------------------------------------------------------------
# Module loading and the analysis driver.


@dataclass
class ModuleInfo:
    """One parsed module plus everything rules need to scope themselves."""

    path: str  # display path (clickable, as given by the caller)
    subpath: str  # '/'-joined path below the repro package root
    tree: ast.Module = field(repr=False, default=None)
    source: str = field(repr=False, default="")
    imports: ImportMap = field(repr=False, default=None)
    pragmas: list[Pragma] = field(default_factory=list)

    @property
    def package_dir(self) -> str:
        """First path component below the package root ('crypto', 'comm', ...)."""
        return self.subpath.split("/", 1)[0] if "/" in self.subpath else ""


def _subpath_for(path: str) -> str:
    """Path below the last ``repro`` component, '/'-joined ('' if absent)."""
    parts = Path(path).as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1 :])
    return parts[-1]


def _active_rules(rules: Iterable[Rule] | None) -> list[Rule]:
    if rules is None:
        # Import for side effect: rule modules register themselves.
        from repro import analysis as _pkg  # noqa: F401

        return [RULES[code] for code in sorted(RULES)]
    return list(rules)


def _apply_pragmas(
    module: ModuleInfo, findings: list[Finding], active_codes: set[str]
) -> list[Finding]:
    """Drop suppressed findings; report unknown and unused pragmas."""
    kept: list[Finding] = []
    for finding in findings:
        suppressed = False
        for pragma in module.pragmas:
            if pragma.rule_code != finding.rule_code:
                continue
            if finding.line <= pragma.target_line <= (finding.end_line or finding.line):
                pragma.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    for pragma in module.pragmas:
        if pragma.rule_code is None:
            known = ", ".join(sorted(PRAGMA_TAGS))
            kept.append(
                Finding(
                    file=module.path,
                    line=pragma.comment_line,
                    rule_code=UNUSED_PRAGMA_CODE,
                    severity=SEVERITY_ERROR,
                    message=f"unknown pragma tag {pragma.tag!r} (known: {known})",
                )
            )
        elif not pragma.used and pragma.rule_code in active_codes:
            kept.append(
                Finding(
                    file=module.path,
                    line=pragma.comment_line,
                    rule_code=UNUSED_PRAGMA_CODE,
                    severity=SEVERITY_WARNING,
                    message=(
                        f"pragma 'repro: {pragma.tag}' suppresses nothing on "
                        f"line {pragma.target_line} — remove it or fix the site"
                    ),
                )
            )
    return kept


def analyze_source(
    source: str,
    path: str,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Run the rule set over one module's source text.

    ``path`` is both the display path of findings and the scoping key:
    rules that only apply to e.g. ``comm/codec.py`` match on the portion
    of ``path`` below the ``repro`` package root, so fixtures can
    impersonate any module.
    """
    active = _active_rules(rules)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                file=path,
                line=exc.lineno or 1,
                rule_code=PARSE_ERROR_CODE,
                severity=SEVERITY_ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    module = ModuleInfo(
        path=path,
        subpath=_subpath_for(path),
        tree=tree,
        source=source,
        imports=ImportMap(tree),
        pragmas=_parse_pragmas(source),
    )
    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.check(module))
    findings = _apply_pragmas(module, findings, {rule.code for rule in active})
    return sorted(findings, key=lambda f: (f.file, f.line, f.rule_code))


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")


def analyze_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
) -> tuple[list[Finding], int]:
    """Analyze every ``.py`` file under ``paths``.

    Returns ``(findings, files_scanned)``; findings are sorted by
    ``(file, line, rule_code)`` for stable, diffable output.
    """
    active = _active_rules(rules)
    findings: list[Finding] = []
    count = 0
    for file in _iter_python_files(paths):
        count += 1
        findings.extend(
            analyze_source(file.read_text(encoding="utf-8"), str(file), active)
        )
    return sorted(findings, key=lambda f: (f.file, f.line, f.rule_code)), count
