"""Label inference from forward activations (Figure 9).

§3/§4.2: forward activations are fit to the labels, so a party that can
compute *any* unaggregated activation — e.g. ``X_A W_A`` when Party A owns
its bottom model, or ``X_A U_A`` plus a constant offset in the
ModelSS-without-GradSS ablation — can predict the labels directly.  The
attack is trivial by design: use the partial logits as scores.
"""

from __future__ import annotations

import numpy as np

from repro.utils.metrics import accuracy, roc_auc

__all__ = ["activation_attack_score"]


def activation_attack_score(
    partial_logits: np.ndarray, y_true: np.ndarray, n_classes: int = 2
) -> float:
    """Score Party A's label guesses made from its partial activations.

    Binary tasks return the AUC of the partial logit as a score (the
    paper's w8a plot); multi-class tasks the argmax accuracy (the news20
    plot).  An output near 0.5 AUC / chance accuracy means the activation
    carries no label signal — BlindFL's target; ~0.9 means leakage.
    """
    partial_logits = np.asarray(partial_logits, dtype=np.float64)
    y_true = np.asarray(y_true).ravel()
    if n_classes == 2:
        return roc_auc(y_true, partial_logits.ravel())
    if partial_logits.ndim != 2 or partial_logits.shape[1] != n_classes:
        raise ValueError("multi-class attack needs (n, n_classes) activations")
    return accuracy(y_true, partial_logits.argmax(axis=1))
