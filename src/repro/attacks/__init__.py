"""The empirical privacy attacks of §7.2."""

from repro.attacks.activation_attack import activation_attack_score
from repro.attacks.derivative_attack import (
    attack_accuracy_over_batches,
    cosine_direction_attack,
)
from repro.attacks.feature_similarity import pairwise_distance_correlation
from repro.attacks.model_attack import PieceLeakageStats, piece_vs_weight_stats

__all__ = [
    "activation_attack_score",
    "attack_accuracy_over_batches",
    "cosine_direction_attack",
    "pairwise_distance_correlation",
    "PieceLeakageStats",
    "piece_vs_weight_stats",
]
