"""Model-information leakage analysis (Figure 11).

§4.2 Req 5/6: the signs and magnitudes of weights express feature
importance, so no party may learn them — not even its own.  Figure 11
verifies this empirically by plotting a share piece (``U_A``, ``S_A``)
against the true value (``W_A``, ``Q_A``) coordinate by coordinate: the
pieces are large, random, and uncorrelated with the truth.  This module
computes those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PieceLeakageStats", "piece_vs_weight_stats"]


@dataclass
class PieceLeakageStats:
    """How much a share piece reveals about the true tensor."""

    piece_abs_mean: float
    weight_abs_mean: float
    correlation: float
    sign_agreement: float  # 0.5 = coin flip (no leak)
    magnitude_ratio: float  # how much the piece dwarfs the truth

    def leaks(self, corr_tol: float = 0.2, sign_tol: float = 0.1) -> bool:
        """True when the piece carries usable weight information."""
        return (
            abs(self.correlation) > corr_tol
            or abs(self.sign_agreement - 0.5) > sign_tol
        )


def piece_vs_weight_stats(
    piece: np.ndarray, weight: np.ndarray
) -> PieceLeakageStats:
    """Per-coordinate comparison of a share piece and the true tensor."""
    piece = np.asarray(piece, dtype=np.float64).ravel()
    weight = np.asarray(weight, dtype=np.float64).ravel()
    if piece.shape != weight.shape:
        raise ValueError("piece and weight must have the same shape")
    if piece.size < 2:
        raise ValueError("need at least two coordinates")
    piece_std = piece.std()
    weight_std = weight.std()
    if piece_std == 0 or weight_std == 0:
        correlation = 0.0
    else:
        correlation = float(np.corrcoef(piece, weight)[0, 1])
    sign_agreement = float(np.mean(np.sign(piece) == np.sign(weight)))
    weight_abs = float(np.abs(weight).mean())
    piece_abs = float(np.abs(piece).mean())
    return PieceLeakageStats(
        piece_abs_mean=piece_abs,
        weight_abs_mean=weight_abs,
        correlation=correlation,
        sign_agreement=sign_agreement,
        magnitude_ratio=piece_abs / max(weight_abs, 1e-12),
    )
