"""Label inference from backward derivatives (Figure 10).

The cosine-direction attack of Li et al. [36], as described in §7.2: for
binary classification "the backward derivatives for positive and negative
instances ought to have opposite directions since they contribute
oppositely to the model".  Party A receives ``grad_E_A`` in the clear under
split learning; clustering the rows by direction recovers the batch labels
almost perfectly, *regardless of how many layers separate the embedding
from the loss*.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cosine_direction_attack", "attack_accuracy_over_batches"]


def cosine_direction_attack(grad_rows: np.ndarray) -> np.ndarray:
    """Split one batch's derivative rows into two direction clusters.

    Returns a boolean cluster assignment per row.  Rows are normalised and
    projected onto their dominant singular direction — the robust version
    of "compare cosine similarities pairwise": the top singular vector of
    the normalised rows is the axis along which positive and negative
    instances anti-align, so the projection's sign is the cluster.
    """
    grad_rows = np.asarray(grad_rows, dtype=np.float64)
    if grad_rows.ndim != 2:
        raise ValueError("expected one gradient row per instance")
    norms = np.linalg.norm(grad_rows, axis=1, keepdims=True)
    if not norms.any():
        return np.zeros(grad_rows.shape[0], dtype=bool)
    unit = grad_rows / np.maximum(norms, 1e-12)
    # Dominant right-singular vector of the unit rows.
    _, _, vt = np.linalg.svd(unit, full_matrices=False)
    projection = unit @ vt[0]
    return projection > 0


def attack_accuracy_over_batches(
    grads: list[np.ndarray], labels: list[np.ndarray]
) -> float:
    """Fraction of *all* training instances whose label the attack recovers.

    Cluster-to-label assignment is resolved per batch the way an attacker
    with any side information would (majority matching), i.e. we score
    ``max(acc, 1 - acc)`` per batch — the standard two-cluster accuracy.
    """
    if len(grads) != len(labels) or not grads:
        raise ValueError("need parallel non-empty grad/label lists")
    correct = 0
    total = 0
    for g, y in zip(grads, labels):
        y = np.asarray(y).ravel().astype(int)
        assignment = cosine_direction_attack(g).astype(int)
        hits = int((assignment == y).sum())
        correct += max(hits, y.shape[0] - hits)
        total += y.shape[0]
    return correct / total
