"""Party A feature-similarity leakage (§3, Req 2).

"If the features of two instances are very similar, the corresponding
activations would also be very close" — so Party B observing ``X_A W_A``
(split learning) learns the similarity structure of Party A's data.  The
attack statistic: Spearman-style correlation between the pairwise-distance
matrices of the true features and of the observed values.  Under BlindFL,
Party B only ever sees masked shares, so the correlation collapses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_distance_correlation"]


def pairwise_distance_correlation(
    features: np.ndarray, observed: np.ndarray
) -> float:
    """Correlation of instance-pair distances in feature vs observed space.

    Near 1.0 means the observer can rank which of A's instances resemble
    each other (a real leak); near 0 means no usable structure.
    """
    features = np.asarray(features, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.float64)
    if features.shape[0] != observed.shape[0]:
        raise ValueError("need one observed row per instance")
    n = features.shape[0]
    if n < 4:
        raise ValueError("too few instances for a distance correlation")
    d_feat = _pairwise(features)
    d_obs = _pairwise(observed)
    if d_feat.std() == 0 or d_obs.std() == 0:
        return 0.0
    return float(np.corrcoef(d_feat, d_obs)[0, 1])


def _pairwise(x: np.ndarray) -> np.ndarray:
    sq = (x * x).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2 * (x @ x.T)
    iu = np.triu_indices(x.shape[0], k=1)
    return np.sqrt(np.maximum(d2[iu], 0.0))
