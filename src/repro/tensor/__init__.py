"""Numpy autograd engine: the substrate BlindFL's top models run on."""

from repro.tensor.functional import embedding, linear, logsumexp, sparse_linear
from repro.tensor.losses import bce_with_logits, mse, softmax_cross_entropy
from repro.tensor.nn import (
    Bias,
    Embedding,
    Identity,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    mlp,
)
from repro.tensor.optim import SGD, Adam
from repro.tensor.sparse import CSRMatrix
from repro.tensor.tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "CSRMatrix",
    "embedding",
    "linear",
    "sparse_linear",
    "logsumexp",
    "bce_with_logits",
    "softmax_cross_entropy",
    "mse",
    "Module",
    "Linear",
    "Embedding",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Sequential",
    "Bias",
    "mlp",
    "SGD",
    "Adam",
]
